// abg_sim — scenario-driven command-line simulator.
//
// Composes a workload, a scheduler and an allocator from flags, runs the
// simulation, validates the result, and prints (or dumps) the outcome.
//
//   abg_sim --workload=forkjoin --transition=16 --scheduler=abg
//   abg_sim --workload=jobset --load=2 --scheduler=a-greedy --allocator=rr
//   abg_sim --workload=constant --width=10 --scheduler=static:8
//   abg_sim --workload=randomwalk --scheduler=abg-auto --cost=2
//
// Flags (defaults in brackets):
//   --workload   forkjoin | constant | randomwalk | jobset   [forkjoin]
//   --scheduler  abg | abg-auto | a-greedy | filtered | static:N   [abg]
//   --allocator  deq | rr | unconstrained                    [auto]
//   --processors P [128]      --quantum L [1000]   --seed S [1]
//   --rate r [0.2]            --cost c [0]  (reallocation steps/proc)
//   --transition C [16]       (forkjoin)
//   --width W [10] --levels N [20000]  (constant / randomwalk)
//   --load X [1.0] --jobs-cap N [0]    (jobset)
//   --trace FILE   dump the first job's per-quantum CSV
//   --report       print sparkline feedback report per job
//   --gantt        print an ASCII Gantt chart of the whole run
//   --compare      also run A-Greedy on the identical workload
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "alloc/equipartition.hpp"
#include "alloc/round_robin.hpp"
#include "alloc/unconstrained.hpp"
#include "core/run.hpp"
#include "dag/profile_job.hpp"
#include "metrics/lower_bounds.hpp"
#include "metrics/parallelism_stats.hpp"
#include "metrics/scheduler_diagnostics.hpp"
#include "sim/report.hpp"
#include "sim/trace_io.hpp"
#include "sim/validate.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/fork_join.hpp"
#include "workload/job_set.hpp"
#include "workload/profiles.hpp"

namespace {

using abg::util::Cli;

abg::core::SchedulerSpec make_scheduler(const Cli& cli) {
  const std::string name = cli.get("scheduler", "abg");
  const double rate = cli.get_double("rate", 0.2);
  if (name == "abg") {
    return abg::core::abg_spec(
        abg::core::AbgConfig{.convergence_rate = rate});
  }
  if (name == "abg-auto") {
    return abg::core::abg_auto_spec();
  }
  if (name == "a-greedy") {
    return abg::core::a_greedy_spec();
  }
  if (name == "filtered") {
    return abg::core::SchedulerSpec{
        "ABG-filtered", std::make_unique<abg::sched::BGreedyExecution>(),
        std::make_unique<abg::sched::FilteredAControlRequest>(
            abg::sched::FilteredAControlConfig{rate, 0.5})};
  }
  if (name.rfind("static:", 0) == 0) {
    return abg::core::static_spec(std::stoi(name.substr(7)));
  }
  throw std::invalid_argument("unknown --scheduler '" + name + "'");
}

std::unique_ptr<abg::alloc::Allocator> make_allocator(const Cli& cli) {
  const std::string name = cli.get("allocator", "auto");
  if (name == "deq") {
    return std::make_unique<abg::alloc::EquiPartition>();
  }
  if (name == "rr") {
    return std::make_unique<abg::alloc::RoundRobin>();
  }
  if (name == "unconstrained") {
    return std::make_unique<abg::alloc::Unconstrained>();
  }
  if (name == "auto") {
    return nullptr;  // run drivers pick the conventional default
  }
  throw std::invalid_argument("unknown --allocator '" + name + "'");
}

std::vector<abg::sim::JobSubmission> make_workload(const Cli& cli,
                                                   abg::util::Rng& rng,
                                                   int processors,
                                                   abg::dag::Steps quantum) {
  const std::string kind = cli.get("workload", "forkjoin");
  std::vector<abg::sim::JobSubmission> subs;
  if (kind == "forkjoin") {
    abg::sim::JobSubmission s;
    s.job = abg::workload::make_fork_join_job(
        rng, abg::workload::figure5_spec(
                 cli.get_double("transition", 16.0), quantum));
    subs.push_back(std::move(s));
    return subs;
  }
  if (kind == "constant") {
    abg::sim::JobSubmission s;
    s.job = std::make_unique<abg::dag::ProfileJob>(
        abg::workload::constant_profile(cli.get_int("width", 10),
                                        cli.get_int("levels", 20000)));
    subs.push_back(std::move(s));
    return subs;
  }
  if (kind == "randomwalk") {
    abg::sim::JobSubmission s;
    s.job = std::make_unique<abg::dag::ProfileJob>(
        abg::workload::random_walk_profile(
            rng, cli.get_int("levels", 20000),
            std::max<abg::dag::TaskCount>(1, cli.get_int("width", 64)),
            2.0));
    subs.push_back(std::move(s));
    return subs;
  }
  if (kind == "jobset") {
    abg::workload::JobSetSpec spec;
    spec.load = cli.get_double("load", 1.0);
    spec.processors = processors;
    spec.min_phase_levels = quantum / 2;
    spec.max_phase_levels = 2 * quantum;
    for (auto& g : abg::workload::make_job_set(rng, spec)) {
      abg::sim::JobSubmission s;
      s.job = std::move(g.job);
      subs.push_back(std::move(s));
    }
    return subs;
  }
  throw std::invalid_argument("unknown --workload '" + kind + "'");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Cli cli(argc, argv);
    const int processors =
        static_cast<int>(cli.get_int("processors", 128));
    const abg::dag::Steps quantum = cli.get_int("quantum", 1000);
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

    const abg::core::SchedulerSpec scheduler = make_scheduler(cli);
    const auto allocator = make_allocator(cli);
    // Workload construction is a pure function of the seed, so the
    // comparison run can rebuild the byte-identical job set.
    auto build_workload = [&] {
      abg::util::Rng rng(seed);
      return make_workload(cli, rng, processors, quantum);
    };
    auto submissions = build_workload();

    std::vector<abg::metrics::JobSummary> summaries;
    for (const auto& s : submissions) {
      summaries.push_back(abg::metrics::JobSummary{
          s.job->total_work(), s.job->critical_path(), s.release_step});
    }

    const abg::sim::SimConfig config{
        .processors = processors,
        .quantum_length = quantum,
        .max_active_jobs =
            static_cast<int>(cli.get_int("jobs-cap", 0)),
        .reallocation_cost_per_proc = cli.get_int("cost", 0)};
    const abg::sim::SimResult result = abg::core::run_set(
        scheduler, std::move(submissions), config, allocator.get());

    for (const std::string& issue :
         abg::sim::validate_result(result, processors)) {
      std::cerr << "VALIDATION: " << issue << "\n";
    }

    std::cout << "scheduler " << scheduler.name << ", allocator "
              << (allocator ? allocator->name() : "default") << ", P = "
              << processors << ", L = " << quantum << ", jobs = "
              << result.jobs.size() << "\n\n";
    abg::util::Table table({"job", "work", "T_inf", "response", "resp/Tinf",
                            "waste/T1", "measured C_L", "quanta"});
    for (std::size_t j = 0; j < result.jobs.size(); ++j) {
      const auto& t = result.jobs[j];
      table.add_row(
          {std::to_string(j), std::to_string(t.work),
           std::to_string(t.critical_path),
           std::to_string(t.response_time()),
           abg::util::format_double(
               static_cast<double>(t.response_time()) /
                   static_cast<double>(std::max<abg::dag::Steps>(
                       1, t.critical_path)), 2),
           abg::util::format_double(
               static_cast<double>(t.total_waste()) /
                   static_cast<double>(std::max<abg::dag::TaskCount>(
                       1, t.work)), 3),
           abg::util::format_double(
               abg::metrics::empirical_transition_factor(t), 2),
           std::to_string(t.quanta.size())});
    }
    table.print(std::cout);
    std::cout << "\nmakespan " << result.makespan << " (lower bound "
              << abg::util::format_double(
                     abg::metrics::makespan_lower_bound(summaries,
                                                        processors), 1)
              << "), mean response "
              << abg::util::format_double(result.mean_response_time, 1)
              << ", total waste " << result.total_waste
              << ", machine utilization "
              << abg::util::format_double(
                     abg::sim::machine_utilization(result, processors), 3)
              << "\n";

    if (result.jobs.size() > 1) {
      std::cout << "slowdown fairness (Jain) = "
                << abg::util::format_double(
                       abg::metrics::jain_slowdown_fairness(result), 3)
                << "\n";
    }

    if (cli.get_bool("report", false)) {
      for (std::size_t j = 0; j < result.jobs.size(); ++j) {
        std::cout << "\njob " << j << ":\n"
                  << abg::sim::feedback_report(result.jobs[j]);
      }
    }
    if (cli.get_bool("gantt", false)) {
      std::cout << "\n" << abg::sim::gantt_chart(result, processors);
    }
    if (cli.get_bool("compare", false)) {
      const auto baseline_alloc = make_allocator(cli);
      const abg::sim::SimResult baseline = abg::core::run_set(
          abg::core::a_greedy_spec(), build_workload(), config,
          baseline_alloc.get());
      std::cout << "\nA-Greedy on the identical workload: makespan "
                << baseline.makespan << " ("
                << abg::util::format_double(
                       static_cast<double>(baseline.makespan) /
                           static_cast<double>(result.makespan), 3)
                << "x " << scheduler.name << "), mean response "
                << abg::util::format_double(baseline.mean_response_time, 1)
                << ", total waste " << baseline.total_waste << "\n";
    }
    if (cli.has("trace")) {
      std::ofstream out(cli.get("trace", ""));
      abg::sim::write_trace_csv(out, result.jobs.at(0));
      std::cout << "\nwrote " << cli.get("trace", "") << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "abg_sim: " << e.what() << "\n";
    return 1;
  }
}
