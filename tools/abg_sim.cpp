// abg_sim — scenario-driven command-line simulator.
//
// Composes a workload, a scheduler and an allocator from flags, runs the
// simulation, validates the result, and prints (or dumps) the outcome.
//
//   abg_sim --workload=forkjoin --transition=16 --scheduler=abg
//   abg_sim --workload=jobset --load=2 --scheduler=a-greedy --allocator=rr
//   abg_sim --workload=constant --width=10 --scheduler=static:8
//   abg_sim --workload=randomwalk --scheduler=abg-auto --cost=2
//
// Flags (defaults in brackets):
//   --workload   forkjoin | constant | randomwalk | jobset   [forkjoin]
//   --scenario FILE   declarative scenario from the scenario library
//                (mutually exclusive with --workload; supplies machine
//                defaults and, via its arrival block, can engage --open)
//   --scheduler  abg | abg-auto | a-greedy | filtered | static:N   [abg]
//   --allocator  deq | rr | hesrpt | unconstrained           [auto]
//   --engine     sync | async  (boundary model)              [sync]
//   --hier-groups N    hierarchical allocation with N groups on the
//                      sharded engine (sync only, no faults)  [flat]
//   --hier-alloc deq|rr  group/root allocator of the tree    [--allocator]
//   --hier-rebalance N  rebalance epoch in quanta            [1]
//   --hier-threads N    group-loop workers; 0 = hw concurrency [1]
//   --cluster-machines N   simulate a cluster of N machines of P
//                      processors each (sync only, no faults, no hier);
//                      a scenario's cluster block engages this too [flat]
//   --router least-loaded|round-robin|desire-aware|class-affinity
//                      job-placement policy            [least-loaded]
//   --migration-period N   inter-machine migration epoch in quanta;
//                      0 disables migration                   [0]
//   --cluster-threads N    machine-loop workers; 0 = hw concurrency [1]
//   --processors P [128]      --quantum L [1000]   --seed S [1]
//   --rate r [0.2]            --cost c [0]  (reallocation steps/proc)
//   --transition C [16]       (forkjoin)
//   --width W [10] --levels N [20000]  (constant / randomwalk)
//   --load X [1.0] --jobs-cap N [0]    (jobset)
//   --trace FILE   dump the first job's per-quantum CSV
//   --trace-out FILE    write a Chrome/Perfetto trace of the run (open in
//                       ui.perfetto.dev): per-job quantum slices colored by
//                       the desire-vs-allotment regime, d/a/A counter
//                       tracks, machine utilization
//   --metrics-out FILE  write the run's aggregated metrics registry (JSON)
//   --profile[=FILE]    time the configured workload under BOTH engines and
//                       write simulated-steps/sec spans
//                       [FILE defaults to BENCH_profile.json]
//   --report       print sparkline feedback report per job
//   --gantt        print an ASCII Gantt chart of the whole run
//   --compare      also run A-Greedy on the identical workload
//   --faults SPEC  inject faults: step:STEP:N | impulse:STEP:N:OUTAGE |
//                  poisson:RATE:HORIZON | crash:JOB:FIRST:PERIOD:COUNT
//   --crash-policy checkpoint | scratch    [checkpoint]
//   --policy-restart preserve | reset      [preserve]
//   --restart-delay N [0]
//   --resilience   also run fault-free and print the resilience report
//
// Open-system mode (streams continuously arriving jobs through the
// scheduler instead of simulating a closed job set; composes with
// --scheduler / --allocator / --processors / --quantum / --cost but not
// with faults, hierarchy, or the async engine):
//   --open                switch to the streaming driver
//   --arrival  poisson | mmpp | diurnal | heavytail | trace   [poisson]
//   --jobs-total N        arrivals to stream                  [100000]
//   --load X              offered load rho; calibrates the arrival gap
//                         from a pre-sample of the job factory  [0.8]
//   --arrival-gap G       fix the mean inter-arrival gap instead of
//                         calibrating (use with --load=0)
//   --trace-path FILE     JSONL arrival trace (--arrival=trace)
//   --stats-out FILE      write the online-statistics summary (JSON)
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "alloc/equipartition.hpp"
#include "alloc/hesrpt.hpp"
#include "alloc/round_robin.hpp"
#include "alloc/unconstrained.hpp"
#include "cluster/router.hpp"
#include "core/run.hpp"
#include "scenario/generators.hpp"
#include "scenario/library.hpp"
#include "fault/fault_plan.hpp"
#include "dag/profile_job.hpp"
#include "metrics/lower_bounds.hpp"
#include "metrics/parallelism_stats.hpp"
#include "metrics/scheduler_diagnostics.hpp"
#include "obs/event_bus.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_sink.hpp"
#include "obs/perfetto.hpp"
#include "obs/profile.hpp"
#include "obs/trace_sink.hpp"
#include "sim/report.hpp"
#include "sim/trace_io.hpp"
#include "sim/validate.hpp"
#include "util/atomic_file.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/fork_join.hpp"
#include "workload/job_set.hpp"
#include "workload/profiles.hpp"

namespace {

using abg::util::Cli;

abg::core::SchedulerSpec make_scheduler(const Cli& cli) {
  const std::string name = cli.get("scheduler", "abg");
  const double rate = cli.get_double("rate", 0.2);
  if (name == "abg") {
    return abg::core::abg_spec(
        abg::core::AbgConfig{.convergence_rate = rate});
  }
  if (name == "abg-auto") {
    return abg::core::abg_auto_spec();
  }
  if (name == "a-greedy") {
    return abg::core::a_greedy_spec();
  }
  if (name == "filtered") {
    return abg::core::SchedulerSpec{
        "ABG-filtered", std::make_unique<abg::sched::BGreedyExecution>(),
        std::make_unique<abg::sched::FilteredAControlRequest>(
            abg::sched::FilteredAControlConfig{rate, 0.5})};
  }
  if (name.rfind("static:", 0) == 0) {
    return abg::core::static_spec(std::stoi(name.substr(7)));
  }
  throw std::invalid_argument("unknown --scheduler '" + name + "'");
}

std::unique_ptr<abg::alloc::Allocator> make_allocator(const Cli& cli) {
  const std::string name = cli.get("allocator", "auto");
  if (name == "deq") {
    return std::make_unique<abg::alloc::EquiPartition>();
  }
  if (name == "rr") {
    return std::make_unique<abg::alloc::RoundRobin>();
  }
  if (name == "hesrpt") {
    return std::make_unique<abg::alloc::HeSrpt>();
  }
  if (name == "unconstrained") {
    return std::make_unique<abg::alloc::Unconstrained>();
  }
  if (name == "auto") {
    return nullptr;  // run drivers pick the conventional default
  }
  throw std::invalid_argument("unknown --allocator '" + name + "'");
}

std::vector<abg::sim::JobSubmission> make_workload(
    const Cli& cli, const abg::scenario::ScenarioSpec* scenario,
    abg::util::Rng& rng, int processors, abg::dag::Steps quantum) {
  if (scenario != nullptr) {
    return abg::scenario::generate_jobs(*scenario, rng, processors, quantum);
  }
  const std::string kind = cli.get("workload", "forkjoin");
  std::vector<abg::sim::JobSubmission> subs;
  if (kind == "forkjoin") {
    abg::sim::JobSubmission s;
    s.job = abg::workload::make_fork_join_job(
        rng, abg::workload::figure5_spec(
                 cli.get_double("transition", 16.0), quantum));
    subs.push_back(std::move(s));
    return subs;
  }
  if (kind == "constant") {
    abg::sim::JobSubmission s;
    s.job = std::make_unique<abg::dag::ProfileJob>(
        abg::workload::constant_profile(cli.get_int("width", 10),
                                        cli.get_int("levels", 20000)));
    subs.push_back(std::move(s));
    return subs;
  }
  if (kind == "randomwalk") {
    abg::sim::JobSubmission s;
    s.job = std::make_unique<abg::dag::ProfileJob>(
        abg::workload::random_walk_profile(
            rng, cli.get_int("levels", 20000),
            std::max<abg::dag::TaskCount>(1, cli.get_int("width", 64)),
            2.0));
    subs.push_back(std::move(s));
    return subs;
  }
  if (kind == "jobset") {
    abg::workload::JobSetSpec spec;
    spec.load = cli.get_double("load", 1.0);
    spec.processors = processors;
    spec.min_phase_levels = quantum / 2;
    spec.max_phase_levels = 2 * quantum;
    for (auto& g : abg::workload::make_job_set(rng, spec)) {
      abg::sim::JobSubmission s;
      s.job = std::move(g.job);
      subs.push_back(std::move(s));
    }
    return subs;
  }
  throw std::invalid_argument("unknown --workload '" + kind + "'");
}

// Splits "step:500:8" into its ':'-separated fields.
std::vector<std::string> split_spec(const std::string& spec) {
  std::vector<std::string> fields;
  std::string::size_type from = 0;
  while (true) {
    const auto colon = spec.find(':', from);
    if (colon == std::string::npos) {
      fields.push_back(spec.substr(from));
      return fields;
    }
    fields.push_back(spec.substr(from, colon - from));
    from = colon + 1;
  }
}

abg::fault::FaultPlan make_fault_plan(const Cli& cli, std::uint64_t seed) {
  abg::fault::FaultPlan plan;
  if (cli.has("faults")) {
    const std::string spec = cli.get("faults", "");
    const std::vector<std::string> f = split_spec(spec);
    try {
      if (f[0] == "step" && f.size() == 3) {
        plan = abg::fault::step_failure_plan(std::stoll(f[1]),
                                             std::stoi(f[2]));
      } else if (f[0] == "impulse" && f.size() == 4) {
        plan = abg::fault::impulse_failure_plan(
            std::stoll(f[1]), std::stoi(f[2]), std::stoll(f[3]));
      } else if (f[0] == "poisson" && f.size() == 3) {
        // Deterministic given --seed; a distinct stream from the
        // workload's so the job set is unchanged by adding faults.
        abg::util::Rng rng = abg::util::Rng::derive(seed, 1);
        plan = abg::fault::poisson_churn_plan(rng, std::stoll(f[2]),
                                              std::stod(f[1]),
                                              /*mean_outage=*/500,
                                              /*max_down=*/8);
      } else if (f[0] == "crash" && f.size() == 5) {
        plan = abg::fault::periodic_crash_plan(
            std::stoi(f[1]), std::stoll(f[2]), std::stoll(f[3]),
            std::stoi(f[4]));
      } else {
        throw std::invalid_argument("unrecognized pattern");
      }
    } catch (const std::invalid_argument&) {
      throw std::invalid_argument(
          "malformed --faults '" + spec +
          "' (expected step:STEP:N, impulse:STEP:N:OUTAGE, "
          "poisson:RATE:HORIZON or crash:JOB:FIRST:PERIOD:COUNT)");
    } catch (const std::out_of_range&) {
      throw std::invalid_argument("--faults '" + spec +
                                  "' has an out-of-range field");
    }
  }
  const std::string crash_policy = cli.get("crash-policy", "checkpoint");
  if (crash_policy == "checkpoint") {
    plan.work_loss = abg::fault::WorkLoss::kCheckpointQuantum;
  } else if (crash_policy == "scratch") {
    plan.work_loss = abg::fault::WorkLoss::kRestartFromScratch;
  } else {
    throw std::invalid_argument("unknown --crash-policy '" + crash_policy +
                                "' (checkpoint | scratch)");
  }
  const std::string restart = cli.get("policy-restart", "preserve");
  if (restart == "preserve") {
    plan.policy_on_restart = abg::fault::PolicyOnRestart::kPreserve;
  } else if (restart == "reset") {
    plan.policy_on_restart = abg::fault::PolicyOnRestart::kReset;
  } else {
    throw std::invalid_argument("unknown --policy-restart '" + restart +
                                "' (preserve | reset)");
  }
  plan.restart_delay = cli.get_non_negative_int("restart-delay", 0);
  plan.normalize();
  return plan;
}

// The open-system path: streams --jobs-total arrivals through the
// scheduler and prints the constant-memory statistics summary.  Fully
// self-contained (own bus, own outputs) because it shares no SimConfig /
// SimResult machinery with the closed path.
int run_open_mode(const Cli& cli,
                  const abg::scenario::ScenarioSpec* scenario,
                  const abg::core::SchedulerSpec& scheduler,
                  abg::alloc::Allocator* allocator, int processors,
                  abg::dag::Steps quantum, std::uint64_t seed) {
  for (const char* flag :
       {"faults", "hier-groups", "cluster-machines", "compare",
        "resilience", "gantt", "report", "trace", "profile"}) {
    if (cli.has(flag)) {
      throw std::invalid_argument(std::string("--") + flag +
                                  " does not apply to --open runs");
    }
  }
  if (cli.get("engine", "sync") != "sync") {
    throw std::invalid_argument("--open requires the sync engine");
  }

  // A scenario with an arrival block supplies arrival / jobs-total / load
  // defaults; explicit flags still win.
  const bool scenario_open =
      scenario != nullptr &&
      scenario->arrival.kind != abg::open::ArrivalKind::kNone;
  abg::open::OpenConfig config;
  config.processors = processors;
  config.quantum_length = quantum;
  config.jobs_total = cli.get_positive_int(
      "jobs-total", scenario_open && scenario->arrival.jobs_total > 0
                        ? scenario->arrival.jobs_total
                        : 100000);
  config.arrival =
      cli.has("arrival") || !scenario_open
          ? abg::open::arrival_kind_from_name(cli.get("arrival", "poisson"))
          : scenario->arrival.kind;
  config.trace_path = cli.get("trace-path", "");
  config.load = cli.get_double(
      "load", scenario_open && scenario->arrival.load > 0.0
                  ? scenario->arrival.load
                  : 0.8);
  config.reallocation_cost_per_proc = cli.get_non_negative_int("cost", 0);
  if (cli.has("arrival-gap")) {
    config.arrivals.mean_gap = cli.get_double("arrival-gap", 1000.0);
    if (config.load != 0.0) {
      throw std::invalid_argument(
          "--arrival-gap requires --load=0 (load calibration would "
          "override the fixed gap)");
    }
  }

  abg::obs::EventBus bus;
  abg::obs::PerfettoTrace perfetto;
  abg::obs::SimTraceSink perfetto_sink(perfetto);
  abg::obs::MetricsRegistry registry;
  abg::obs::MetricsSink metrics_sink(registry);
  if (cli.has("trace-out")) {
    bus.subscribe(&perfetto_sink);
  }
  if (cli.has("metrics-out")) {
    bus.subscribe(&metrics_sink);
  }
  if (cli.has("trace-out") || cli.has("metrics-out")) {
    config.bus = &bus;
  }

  abg::open::JobFactory factory;
  if (scenario != nullptr) {
    factory = abg::scenario::make_open_factory(*scenario, processors,
                                               quantum);
  }
  const abg::open::OpenResult result =
      abg::core::run_open(scheduler, config, seed, factory, allocator);

  std::cout << "scheduler " << scheduler.name << ", allocator "
            << (allocator ? allocator->name() : "default") << ", arrival "
            << abg::open::to_string(config.arrival) << ", P = " << processors
            << ", L = " << quantum << "\n\n";
  abg::util::Table table({"metric", "value"});
  const auto row = [&table](const std::string& name,
                            const std::string& value) {
    table.add_row({name, value});
  };
  row("jobs streamed", std::to_string(result.completed));
  row("makespan", std::to_string(result.makespan));
  row("quanta", std::to_string(result.quanta));
  row("in-system high water", std::to_string(result.in_system_high_water));
  if (result.mean_gap > 0.0) {
    row("calibrated mean gap",
        abg::util::format_double(result.mean_gap, 1));
  }
  row("mean response",
      abg::util::format_double(result.stats.response().mean(), 1));
  row("response p50",
      abg::util::format_double(result.stats.response_quantile(0.5), 1));
  row("response p95",
      abg::util::format_double(result.stats.response_quantile(0.95), 1));
  row("response p99",
      abg::util::format_double(result.stats.response_quantile(0.99), 1));
  row("mean slowdown",
      abg::util::format_double(result.stats.slowdown().mean(), 2));
  row("max slowdown",
      abg::util::format_double(result.stats.slowdown().max(), 2));
  row("queue depth mean",
      abg::util::format_double(result.stats.queue_depth().mean(), 2));
  row("queue depth p95",
      abg::util::format_double(result.stats.queue_depth_quantile(0.95), 1));
  row("total work", std::to_string(result.total_work));
  row("total waste", std::to_string(result.total_waste));
  table.print(std::cout);

  if (cli.has("stats-out")) {
    const std::string path = cli.get("stats-out", "");
    const abg::util::Json summary = result.stats.to_json();
    abg::util::write_file_atomic(path, [&summary](std::ostream& out) {
      summary.write(out);
      out << "\n";
    });
    std::cout << "\nwrote statistics to " << path << "\n";
  }
  if (cli.has("trace-out")) {
    const std::string path = cli.get("trace-out", "");
    abg::util::write_file_atomic(
        path, [&perfetto](std::ostream& out) { perfetto.write(out); });
    std::cout << "\nwrote Perfetto trace to " << path << " ("
              << perfetto.event_count()
              << " events; open in ui.perfetto.dev)\n";
  }
  if (cli.has("metrics-out")) {
    const std::string path = cli.get("metrics-out", "");
    abg::util::write_file_atomic(path, [&registry](std::ostream& out) {
      registry.write(out);
      out << "\n";
    });
    std::cout << "\nwrote metrics to " << path << "\n";
  }
  return 0;
}

void print_usage(std::ostream& os) {
  os << "usage: abg_sim [--workload=forkjoin|constant|randomwalk|jobset]\n"
        "               [--scenario=FILE]\n"
        "               [--scheduler=abg|abg-auto|a-greedy|filtered|"
        "static:N]\n"
        "               [--allocator=deq|rr|hesrpt|unconstrained]\n"
        "               [--engine=sync|async]\n"
        "               [--hier-groups=N] [--hier-alloc=deq|rr]\n"
        "               [--hier-rebalance=N] [--hier-threads=N]\n"
        "               [--cluster-machines=N] [--router=least-loaded|"
        "round-robin|desire-aware|class-affinity]\n"
        "               [--migration-period=N] [--cluster-threads=N]\n"
        "               [--processors=P] [--quantum=L] [--seed=S]\n"
        "               [--rate=r] [--cost=c] [--transition=C]\n"
        "               [--width=W] [--levels=N] [--load=X] "
        "[--jobs-cap=N]\n"
        "               [--faults=step:STEP:N|impulse:STEP:N:OUTAGE|"
        "poisson:RATE:HORIZON|crash:JOB:FIRST:PERIOD:COUNT]\n"
        "               [--crash-policy=checkpoint|scratch]\n"
        "               [--policy-restart=preserve|reset] "
        "[--restart-delay=N]\n"
        "               [--resilience] [--trace=FILE] [--report] "
        "[--gantt] [--compare]\n"
        "               [--trace-out=FILE] [--metrics-out=FILE] "
        "[--profile[=FILE]]\n"
        "               [--open] [--arrival=poisson|mmpp|diurnal|"
        "heavytail|trace]\n"
        "               [--jobs-total=N] [--arrival-gap=G] "
        "[--trace-path=FILE]\n"
        "               [--stats-out=FILE]\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Cli cli(argc, argv);
    // A --scenario file replaces the --workload axis and may carry machine
    // defaults; explicit --processors / --quantum flags still win.
    const abg::scenario::ScenarioSpec* scenario = nullptr;
    if (cli.has("scenario")) {
      if (cli.has("workload")) {
        throw std::invalid_argument(
            "--scenario and --workload are mutually exclusive");
      }
      scenario = &abg::scenario::load_cached(cli.get("scenario", ""));
    }
    // Count-like flags reject zero / negative / garbage values up front
    // (Cli throws std::invalid_argument, which exits 2 with usage).
    const int processors = static_cast<int>(cli.get_positive_int(
        "processors", scenario != nullptr && scenario->machine.processors > 0
                          ? scenario->machine.processors
                          : 128));
    const abg::dag::Steps quantum = cli.get_positive_int(
        "quantum", scenario != nullptr && scenario->machine.quantum > 0
                       ? scenario->machine.quantum
                       : 1000);
    const auto seed =
        static_cast<std::uint64_t>(cli.get_non_negative_int("seed", 1));

    const abg::core::SchedulerSpec scheduler = make_scheduler(cli);
    const auto allocator = make_allocator(cli);

    // A scenario with an arrival block engages the open driver by itself.
    const bool scenario_open =
        scenario != nullptr &&
        scenario->arrival.kind != abg::open::ArrivalKind::kNone;
    if (cli.get_bool("open", false) || cli.has("arrival") || scenario_open) {
      return run_open_mode(cli, scenario, scheduler, allocator.get(),
                           processors, quantum, seed);
    }

    // Workload construction is a pure function of the seed, so the
    // comparison run can rebuild the byte-identical job set.
    auto build_workload = [&] {
      abg::util::Rng rng(seed);
      return make_workload(cli, scenario, rng, processors, quantum);
    };
    auto submissions = build_workload();

    std::vector<abg::metrics::JobSummary> summaries;
    for (const auto& s : submissions) {
      summaries.push_back(abg::metrics::JobSummary{
          s.job->total_work(), s.job->critical_path(), s.release_step});
    }

    const abg::fault::FaultPlan faults = make_fault_plan(cli, seed);
    abg::sim::SimConfig config{
        .processors = processors,
        .quantum_length = quantum,
        .max_active_jobs =
            static_cast<int>(cli.get_non_negative_int("jobs-cap", 0)),
        .reallocation_cost_per_proc = cli.get_non_negative_int("cost", 0),
        .engine =
            abg::sim::engine_kind_from_name(cli.get("engine", "sync"))};
    if (!faults.empty()) {
      config.faults = &faults;
    }

    // Hierarchical allocation: --hier-groups switches run_set onto the
    // sharded engine; the companion flags refine the tree and are
    // contradictions without it.
    config.hier.groups =
        static_cast<int>(cli.get_positive_int("hier-groups", 0));
    config.hier.allocator = cli.get("hier-alloc", "");
    config.hier.rebalance_quanta = cli.get_positive_int("hier-rebalance", 1);
    config.hier.threads =
        static_cast<int>(cli.get_non_negative_int("hier-threads", 1));
    if (config.hier.groups == 0) {
      for (const char* flag : {"hier-alloc", "hier-rebalance",
                               "hier-threads"}) {
        if (cli.has(flag)) {
          throw std::invalid_argument(std::string("--") + flag +
                                      " requires --hier-groups");
        }
      }
    }
    if (!config.hier.allocator.empty() && config.hier.allocator != "deq" &&
        config.hier.allocator != "rr") {
      throw std::invalid_argument("unknown --hier-alloc '" +
                                  config.hier.allocator +
                                  "' (expected deq|rr)");
    }

    // Cluster mode: --cluster-machines switches run_set onto the cluster
    // driver; the companion flags refine it and are contradictions
    // without it.  A scenario with a cluster block engages cluster mode
    // by itself (explicit flags still win).
    config.cluster.machines = static_cast<int>(cli.get_positive_int(
        "cluster-machines",
        scenario != nullptr ? scenario->cluster.machines : 0));
    config.cluster.router = cli.get(
        "router", scenario != nullptr ? scenario->cluster.router : "");
    config.cluster.migration_period = cli.get_non_negative_int(
        "migration-period",
        scenario != nullptr ? scenario->cluster.migration_period : 0);
    config.cluster.threads =
        static_cast<int>(cli.get_non_negative_int("cluster-threads", 1));
    if (config.cluster.machines == 0) {
      for (const char* flag :
           {"router", "migration-period", "cluster-threads"}) {
        if (cli.has(flag)) {
          throw std::invalid_argument(std::string("--") + flag +
                                      " requires --cluster-machines");
        }
      }
    } else {
      // Validate the router name up front so a typo exits with usage
      // instead of surfacing mid-run.
      abg::cluster::make_router(config.cluster.router);
      if (config.hier.groups != 0) {
        throw std::invalid_argument(
            "--cluster-machines does not compose with --hier-groups");
      }
      if (!faults.empty()) {
        throw std::invalid_argument(
            "--cluster-machines does not compose with --faults");
      }
      if (config.engine != abg::sim::EngineKind::kSync) {
        throw std::invalid_argument(
            "--cluster-machines requires the sync engine");
      }
      // Heterogeneous shapes from the scenario apply when the effective
      // machine count matches the shape list.
      if (scenario != nullptr &&
          static_cast<int>(scenario->cluster.shapes.size()) ==
              config.cluster.machines) {
        config.cluster.shapes = scenario->cluster.shapes;
      }
    }

    // Observability: the bus stays inactive (and the engine untouched)
    // unless an output flag subscribes a sink.
    abg::obs::EventBus bus;
    abg::obs::PerfettoTrace perfetto;
    abg::obs::SimTraceSink perfetto_sink(perfetto);
    abg::obs::MetricsRegistry registry;
    abg::obs::MetricsSink metrics_sink(registry);
    if (cli.has("trace-out")) {
      bus.subscribe(&perfetto_sink);
    }
    if (cli.has("metrics-out")) {
      bus.subscribe(&metrics_sink);
    }
    config.obs.event_bus = &bus;

    const abg::sim::SimResult result = abg::core::run_set(
        scheduler, std::move(submissions), config, allocator.get());

    // Validate against the run's real capacity: a cluster run schedules
    // over every machine, not the per-machine --processors value.
    int capacity = processors;
    if (config.cluster.machines > 0) {
      if (config.cluster.shapes.empty()) {
        capacity = config.cluster.machines * processors;
      } else {
        capacity = 0;
        for (const abg::sim::ClusterMachine& shape : config.cluster.shapes) {
          capacity += shape.processors;
        }
      }
    }
    const abg::sim::ValidationReport validation =
        abg::sim::validate_result_report(result, capacity);
    for (const std::string& issue : validation.issues) {
      std::cerr << "VALIDATION: " << issue << "\n";
    }
    for (const std::string& note : validation.notes) {
      std::cerr << "VALIDATION NOTE: " << note << "\n";
    }

    std::cout << "scheduler " << scheduler.name << ", allocator "
              << (allocator ? allocator->name() : "default");
    if (config.engine != abg::sim::EngineKind::kSync) {
      // The default engine is not printed so historic outputs are stable.
      std::cout << ", engine " << abg::sim::to_string(config.engine);
    }
    if (config.hier.groups > 0) {
      // Flat runs stay byte-identical: the hier clause only appears when
      // the axis is in use.
      std::cout << ", hier groups = " << config.hier.groups << " ("
                << (config.hier.allocator.empty() ? "inherit"
                                                  : config.hier.allocator)
                << ")";
    }
    if (config.cluster.machines > 0) {
      // Same omission rule as the hier clause.
      std::cout << ", cluster machines = " << config.cluster.machines << " ("
                << (config.cluster.router.empty() ? "least-loaded"
                                                  : config.cluster.router)
                << ")";
    }
    std::cout << ", P = " << processors << ", L = " << quantum << ", jobs = "
              << result.jobs.size() << "\n\n";
    abg::util::Table table({"job", "work", "T_inf", "response", "resp/Tinf",
                            "waste/T1", "measured C_L", "quanta"});
    for (std::size_t j = 0; j < result.jobs.size(); ++j) {
      const auto& t = result.jobs[j];
      table.add_row(
          {std::to_string(j), std::to_string(t.work),
           std::to_string(t.critical_path),
           std::to_string(t.response_time()),
           abg::util::format_double(
               static_cast<double>(t.response_time()) /
                   static_cast<double>(std::max<abg::dag::Steps>(
                       1, t.critical_path)), 2),
           abg::util::format_double(
               static_cast<double>(t.total_waste()) /
                   static_cast<double>(std::max<abg::dag::TaskCount>(
                       1, t.work)), 3),
           abg::util::format_double(
               abg::metrics::empirical_transition_factor(t), 2),
           std::to_string(t.quanta.size())});
    }
    table.print(std::cout);
    std::cout << "\nmakespan " << result.makespan << " (lower bound "
              << abg::util::format_double(
                     abg::metrics::makespan_lower_bound(summaries,
                                                        capacity), 1)
              << "), mean response "
              << abg::util::format_double(result.mean_response_time, 1)
              << ", total waste " << result.total_waste
              << ", machine utilization "
              << abg::util::format_double(
                     abg::sim::machine_utilization(result, capacity), 3)
              << "\n";

    if (result.jobs.size() > 1) {
      std::cout << "slowdown fairness (Jain) = "
                << abg::util::format_double(
                       abg::metrics::jain_slowdown_fairness(result), 3)
                << "\n";
    }

    if (cli.get_bool("report", false)) {
      for (std::size_t j = 0; j < result.jobs.size(); ++j) {
        std::cout << "\njob " << j << ":\n"
                  << abg::sim::feedback_report(result.jobs[j]);
      }
    }
    if (cli.get_bool("gantt", false)) {
      std::cout << "\n" << abg::sim::gantt_chart(result, processors);
    }
    if (cli.get_bool("compare", false)) {
      const auto baseline_alloc = make_allocator(cli);
      // The comparison run is not part of the observed run: detach the bus
      // so --trace-out / --metrics-out describe the primary result only.
      abg::sim::SimConfig baseline_config = config;
      baseline_config.obs = {};
      const abg::sim::SimResult baseline = abg::core::run_set(
          abg::core::a_greedy_spec(), build_workload(), baseline_config,
          baseline_alloc.get());
      std::cout << "\nA-Greedy on the identical workload: makespan "
                << baseline.makespan << " ("
                << abg::util::format_double(
                       static_cast<double>(baseline.makespan) /
                           static_cast<double>(result.makespan), 3)
                << "x " << scheduler.name << "), mean response "
                << abg::util::format_double(baseline.mean_response_time, 1)
                << ", total waste " << baseline.total_waste << "\n";
    }
    if (cli.get_bool("resilience", false)) {
      // Fault-free reference on the byte-identical workload.
      abg::sim::SimConfig reference_config = config;
      reference_config.faults = nullptr;
      reference_config.obs = {};
      const auto reference_alloc = make_allocator(cli);
      const abg::sim::SimResult reference = abg::core::run_set(
          scheduler, build_workload(), reference_config,
          reference_alloc.get());
      std::cout << "\n"
                << abg::sim::resilience_report(result, reference);
    }
    if (cli.has("trace")) {
      const std::string path = cli.get("trace", "");
      abg::util::write_file_atomic(path, [&result](std::ostream& out) {
        abg::sim::write_trace_csv(out, result.jobs.at(0));
      });
      std::cout << "\nwrote " << path << "\n";
    }
    if (cli.has("trace-out")) {
      const std::string path = cli.get("trace-out", "");
      abg::util::write_file_atomic(
          path, [&perfetto](std::ostream& out) { perfetto.write(out); });
      std::cout << "\nwrote Perfetto trace to " << path << " ("
                << perfetto.event_count()
                << " events; open in ui.perfetto.dev)\n";
    }
    if (cli.has("metrics-out")) {
      const std::string path = cli.get("metrics-out", "");
      abg::util::write_file_atomic(path, [&registry](std::ostream& out) {
        registry.write(out);
        out << "\n";
      });
      std::cout << "\nwrote metrics to " << path << "\n";
    }
    if (cli.has("profile")) {
      // Self-profiling: rerun the configured scenario under BOTH boundary
      // models, timed, and report simulated-steps/sec per engine.
      std::string path = cli.get("profile", "");
      if (path.empty() || path == "true") {
        path = "BENCH_profile.json";
      }
      const auto simulated_steps = [](const abg::sim::SimResult& r) {
        std::int64_t steps = 0;
        for (const auto& trace : r.jobs) {
          for (const auto& q : trace.quanta) {
            steps += q.steps_used;
          }
        }
        return steps;
      };
      abg::obs::Profiler profiler;
      for (const abg::sim::EngineKind kind :
           {abg::sim::EngineKind::kSync, abg::sim::EngineKind::kAsync}) {
        abg::sim::SimConfig profile_config = config;
        profile_config.engine = kind;
        profile_config.obs = {};
        // The flat legs compare the two boundary models; the sharded
        // engine (sync-only) gets its own leg below when configured.
        profile_config.hier = {};
        profile_config.cluster = {};
        const auto profile_alloc = make_allocator(cli);
        auto scope = profiler.time(
            "engine." + std::string(abg::sim::to_string(kind)));
        const abg::sim::SimResult timed = abg::core::run_set(
            scheduler, build_workload(), profile_config,
            profile_alloc.get());
        scope.add_items(simulated_steps(timed));
      }
      if (config.hier.groups > 0) {
        // Third leg: the configured hierarchical run itself, with the
        // aggregation-latency span ("hier.rebalance") attached.
        abg::sim::SimConfig profile_config = config;
        profile_config.obs = {};
        profile_config.hier.profiler = &profiler;
        const auto profile_alloc = make_allocator(cli);
        auto scope = profiler.time("engine.hier");
        const abg::sim::SimResult timed = abg::core::run_set(
            scheduler, build_workload(), profile_config,
            profile_alloc.get());
        scope.add_items(simulated_steps(timed));
      }
      abg::util::write_file_atomic(
          path, [&profiler](std::ostream& out) { profiler.write(out); });
      const auto rate = [&profiler](const char* span) {
        const abg::obs::ProfileSpan s = profiler.span(span);
        return s.seconds > 0.0 ? static_cast<double>(s.items) / s.seconds
                               : 0.0;
      };
      std::cout << "\nwrote profile to " << path << " (sync "
                << abg::util::format_double(rate("engine.sync"), 0)
                << " steps/s, async "
                << abg::util::format_double(rate("engine.async"), 0)
                << " steps/s";
      if (config.hier.groups > 0) {
        std::cout << ", hier "
                  << abg::util::format_double(rate("engine.hier"), 0)
                  << " steps/s";
      }
      std::cout << ")\n";
    }
    return 0;
  } catch (const std::invalid_argument& e) {
    // Bad flag or flag value: say what was wrong, show the usage, and
    // exit distinctly from runtime failures.
    std::cerr << "abg_sim: " << e.what() << "\n\n";
    print_usage(std::cerr);
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "abg_sim: " << e.what() << "\n";
    return 1;
  }
}
