// abg_sweep — the unified parameter-sweep CLI.
//
// Replaces the ad-hoc nested loops of the figure harnesses with one grid
// runner: a sweep is the cartesian product of repeated `--param` flags,
// executed on the exp::SweepRunner thread pool with deterministic per-run
// seeding (results are byte-identical at any --jobs level), aggregated by
// exp::ResultSink into JSONL plus a BENCH_sweeps.json summary.
//
//   ./abg_sweep --param scheduler=abg,a-greedy --param load=0.5,1,2
//               --reps 30 --jobs 8
//
// Grid parameters (each takes a comma-separated value list):
//   scheduler   abg | a-greedy | abg-auto | static   [default abg,a-greedy]
//   r           ABG convergence rate                  [default 0.2]
//   workload    job-set | fork-join | square-wave     [default job-set]
//   scenario    scenario file path(s) — declarative workloads from the
//               scenario library (mutually exclusive with workload; the
//               file's machine / arrival defaults apply unless the grid
//               overrides them).  Also settable as repeated --scenario
//               flags.
//   load        job-set target load                   [default 1]
//   factor      fork-join transition factor           [default 10]
//   njobs       fork-join / square-wave job count     [default 4]
//   levels      square-wave profile length            [default 600]
//   processors  machine size P                        [default 128]
//   quantum     quantum length L                      [default 1000]
//   allocator   deq | rr | hesrpt                     [default deq]
//   fault       none | step | impulse | poisson | crash  [default none]
//   engine      sync | async boundary model           [default sync]
//   release     batched | staggered | poisson closed-release schedule
//               [default batched]
//   gap         release-schedule (mean) inter-release gap in steps
//   arrival     none | poisson | mmpp | diurnal | heavytail | trace —
//               open-system streaming runs (the load param doubles as the
//               offered load; composes with scheduler / allocator /
//               machine params but not fault, engine=async, or
//               --hier-groups)                        [default none]
//   cluster-machines  machine counts for the cluster engine (0 = flat;
//               processors is then the per-machine size; composes with
//               scheduler / allocator / machine params but not fault,
//               engine=async, arrival params, or --hier-groups)
//               [default 0]
//   router      least-loaded | round-robin | desire-aware |
//               class-affinity job-placement policy (requires a
//               cluster-machines param)               [default least-loaded]
//
// Other flags:
//   --reps=N      replications per grid point (default 5)
//   --seed=S      base seed (default 2008)
//   --jobs=N      worker threads; 0 = hardware concurrency (default 1)
//   --hier-groups=N   run every point on the sharded hierarchical engine
//                 with N allocation groups (N >= 1; sync engine, no fault
//                 scenarios).  Default: flat engines.
//   --hier-alloc=deq|rr  group/root allocator of the hierarchical tree
//                 (requires --hier-groups; default: the run's allocator)
//   --jsonl=PATH  per-run records; '-' = stdout, 'none' = skip
//                 (default sweep.jsonl)
//   --summary=PATH  aggregated summary; 'none' = skip
//                 (default BENCH_sweeps.json)
//   --quiet       suppress the stderr progress line
//   --metrics-out=PATH  merged engine-metrics registry of every run (JSON;
//                 thread-count independent, cmp-able across --jobs levels)
//   --trace-out=PATH    Perfetto timeline of the sweep execution itself
//                 (one track per worker thread, one slice per run;
//                 wall-clock, open in ui.perfetto.dev)
//   --profile[=PATH]    sweep throughput spans (runs/sec)
//                 [PATH defaults to BENCH_profile.json]
//   --hier-threads=N    worker threads per hier run's group loops
//                 (requires --hier-groups; default 1; results are
//                 thread-count independent)
//   --migration-period=N   inter-machine migration epoch in quanta for
//                 cluster runs (requires a cluster-machines param;
//                 default 0 = migration disabled)
//   --cluster-threads=N    worker threads per cluster run's machine loops
//                 (requires a cluster-machines param; default 1; results
//                 are thread-count independent)
//   --jobs-total=N      arrivals per open-system run (requires a
//                 non-none arrival param; default 100000)
//   --trace-path=FILE   JSONL arrival trace of arrival=trace runs
//
// Robustness (see docs/robustness.md):
//   --journal=PATH      append-only JSONL run journal of every cell's
//                 lifecycle; survives crashes (at most one torn tail line)
//   --resume=PATH       replay a journal: completed cells are re-used
//                 verbatim, everything else re-executes; final artifacts
//                 are byte-identical to an uninterrupted run.  The journal
//                 keeps growing at the same path (--journal not needed).
//   --run-timeout=SECS  wall-clock deadline per run; overdue runs are
//                 cancelled cooperatively by the watchdog and retried
//   --max-retries=N     extra attempts for a failing cell before it is
//                 quarantined (default 0)
//   --backoff=SECS      base of the exponential retry backoff (default 0.1)
//
// All artifacts are written atomically (temp file + rename), so a crash
// never leaves a half-written JSONL/JSON behind.  SIGINT/SIGTERM drain
// the sweep: the first signal stops new cells (in-flight runs finish and
// are journaled), a second cancels in-flight runs too, a third exits
// immediately.  An interrupted sweep skips the final artifacts, prints a
// --resume hint and exits 130.
//
// Exit codes: 0 complete, 2 usage/config error, 3 completed with
// quarantined cells (degraded coverage), 130 interrupted.
//
// Scheduler-side parameters (scheduler, r) do not advance the workload
// seed index: every scheduler variant runs the exact same workloads, so
// paired ratios between schedulers are free of sampling noise.
#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/router.hpp"
#include "exp/journal.hpp"
#include "exp/result_sink.hpp"
#include "exp/runner.hpp"
#include "scenario/library.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/sweep_timeline.hpp"
#include "util/atomic_file.hpp"
#include "util/cancel.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using abg::exp::RunRecord;
using abg::exp::RunSpec;

// Shutdown tokens set from the signal handler (CancelToken::cancel is a
// single lock-free CAS, hence async-signal-safe).  First signal: drain —
// no new cells start, in-flight runs finish and are journaled.  Second:
// abort — the watchdog cancels in-flight runs too.  Third: give up and
// exit immediately.
abg::util::CancelToken g_drain;
abg::util::CancelToken g_abort;
std::atomic<int> g_signals{0};

void handle_shutdown_signal(int /*signum*/) {
  const int count = g_signals.fetch_add(1) + 1;
  if (count == 1) {
    g_drain.cancel(abg::util::CancelCause::kShutdown);
  } else if (count == 2) {
    g_abort.cancel(abg::util::CancelCause::kShutdown);
  } else {
    std::_Exit(130);
  }
}

/// One grid dimension: a key and its value list.
struct Dimension {
  std::string key;
  std::vector<std::string> values;
};

/// Canonical dimension order (fixes expansion order and run ids).
const std::vector<std::string> kKnownKeys = {
    "scheduler", "r",       "workload",   "scenario",   "load",
    "factor",    "njobs",   "levels",     "quantum",    "processors",
    "allocator", "fault",   "engine",     "release",    "gap",
    "arrival",   "cluster-machines",      "router"};

/// Every flag this tool understands; anything else is a usage error
/// (Cli::reject_unknown) so a misspelled flag cannot silently vanish.
const std::vector<std::string> kKnownFlags = {
    "param",        "scenario",    "reps",        "seed",
    "jobs",         "jsonl",       "summary",     "quiet",
    "metrics-out",  "trace-out",   "profile",     "hier-groups",
    "hier-alloc",   "hier-threads", "jobs-total", "trace-path",
    "migration-period", "cluster-threads",
    "journal",      "resume",      "run-timeout", "max-retries",
    "backoff",      "test-hang-run", "test-fail-run"};

/// Keys that select the scheduler rather than the simulated scenario;
/// they are excluded from the workload seed index and the group label.
bool is_scheduler_key(const std::string& key) {
  return key == "scheduler" || key == "r";
}

/// Keys that shape the generated workload (seed-index-relevant).  The
/// allocator and fault plan perturb the simulation of a workload, not the
/// workload itself, so they share seeds across their values too.
bool is_workload_key(const std::string& key) {
  return key == "workload" || key == "scenario" || key == "load" ||
         key == "factor" || key == "njobs" || key == "levels" ||
         key == "quantum" || key == "processors" || key == "release" ||
         key == "gap" || key == "arrival";
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    if (end > start) {
      out.push_back(text.substr(start, end - start));
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return out;
}

double parse_double(const std::string& key, const std::string& value) {
  try {
    std::size_t pos = 0;
    const double parsed = std::stod(value, &pos);
    if (pos != value.size()) {
      throw std::invalid_argument("trailing characters");
    }
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("--param " + key + ": '" + value +
                                "' is not a number");
  }
}

int parse_int(const std::string& key, const std::string& value) {
  const double parsed = parse_double(key, value);
  const int as_int = static_cast<int>(parsed);
  if (static_cast<double>(as_int) != parsed) {
    throw std::invalid_argument("--param " + key + ": '" + value +
                                "' is not an integer");
  }
  return as_int;
}

/// Parses the repeated --param flags into ordered dimensions, injecting
/// defaults for absent keys.
std::vector<Dimension> build_dimensions(const abg::util::Cli& cli) {
  std::map<std::string, std::vector<std::string>> params;
  for (const std::string& flag : cli.get_all("param")) {
    const std::size_t eq = flag.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("--param expects key=v1,v2,..., got '" +
                                  flag + "'");
    }
    const std::string key = flag.substr(0, eq);
    if (std::find(kKnownKeys.begin(), kKnownKeys.end(), key) ==
        kKnownKeys.end()) {
      std::string known;
      for (const std::string& k : kKnownKeys) {
        if (!known.empty()) {
          known += ", ";
        }
        known += k;
      }
      throw std::invalid_argument("--param " + key +
                                  ": unknown key (known: " + known + ")");
    }
    const std::vector<std::string> values = split_csv(flag.substr(eq + 1));
    if (values.empty()) {
      throw std::invalid_argument("--param " + key + ": empty value list");
    }
    auto& slot = params[key];
    slot.insert(slot.end(), values.begin(), values.end());
  }
  // Repeated --scenario FILE flags merge into the scenario dimension, the
  // ergonomic spelling of --param scenario=FILE1,FILE2.
  for (const std::string& path : cli.get_all("scenario")) {
    if (path.empty() || path == "true") {
      throw std::invalid_argument("--scenario expects a scenario file path");
    }
    params["scenario"].push_back(path);
  }
  if (params.contains("scenario") && params.contains("workload")) {
    throw std::invalid_argument(
        "--param workload and scenario are mutually exclusive (a scenario "
        "file fully describes its workload)");
  }
  if (!params.contains("scheduler")) {
    params["scheduler"] = {"abg", "a-greedy"};
  }

  std::vector<Dimension> dims;
  for (const std::string& key : kKnownKeys) {
    const auto it = params.find(key);
    if (it != params.end()) {
      dims.push_back({key, it->second});
    }
  }
  return dims;
}

/// Builds the RunSpec of one fully bound grid point.
RunSpec spec_of(const std::map<std::string, std::string>& point) {
  RunSpec spec;
  std::string group;
  for (const std::string& key : kKnownKeys) {
    const auto it = point.find(key);
    if (it == point.end()) {
      continue;
    }
    const std::string& value = it->second;
    if (key == "scheduler") {
      spec.scheduler = abg::exp::scheduler_kind_from_name(value);
    } else if (key == "r") {
      spec.scheduler_params.convergence_rate = parse_double(key, value);
    } else if (key == "workload") {
      spec.workload.kind = abg::exp::workload_kind_from_name(value);
    } else if (key == "scenario") {
      spec.workload.kind = abg::exp::WorkloadKind::kScenario;
      spec.workload.scenario_path = value;
    } else if (key == "load") {
      spec.workload.load = parse_double(key, value);
    } else if (key == "factor") {
      spec.workload.transition_factor = parse_double(key, value);
    } else if (key == "njobs") {
      spec.workload.jobs = parse_int(key, value);
    } else if (key == "levels") {
      spec.workload.levels = parse_int(key, value);
    } else if (key == "quantum") {
      spec.machine.quantum_length = parse_int(key, value);
    } else if (key == "processors") {
      spec.machine.processors = parse_int(key, value);
    } else if (key == "allocator") {
      spec.allocator = abg::exp::allocator_kind_from_name(value);
    } else if (key == "fault") {
      spec.faults.scenario = abg::exp::fault_scenario_from_name(value);
    } else if (key == "engine") {
      spec.engine = abg::sim::engine_kind_from_name(value);
    } else if (key == "release") {
      spec.workload.release = abg::exp::release_kind_from_name(value);
    } else if (key == "gap") {
      spec.workload.release_gap = parse_double(key, value);
    } else if (key == "arrival") {
      spec.open.arrival = abg::open::arrival_kind_from_name(value);
    } else if (key == "cluster-machines") {
      const int machines = parse_int(key, value);
      if (machines < 0) {
        throw std::invalid_argument(
            "--param cluster-machines: '" + value +
            "' must be >= 0 (0 = flat single machine)");
      }
      spec.cluster_machines = machines;
    } else if (key == "router") {
      abg::cluster::make_router(value);  // validates the policy name
      spec.router = value;
    }
    if (!is_scheduler_key(key)) {
      // Scenario identity is the spec's *name*, not its path: an imported
      // copy of a scenario at a different path yields identical group
      // labels, hence identical aggregated artifacts.
      const std::string label =
          key == "scenario" ? abg::scenario::load_cached(value).name : value;
      group += (group.empty() ? "" : ",") + key + "=" + label;
    }
  }
  // Scenario machine / arrival defaults apply where the grid is silent.
  if (spec.workload.kind == abg::exp::WorkloadKind::kScenario) {
    const abg::scenario::ScenarioSpec& scenario =
        abg::scenario::load_cached(spec.workload.scenario_path);
    if (scenario.machine.processors > 0 && !point.contains("processors")) {
      spec.machine.processors = scenario.machine.processors;
    }
    if (scenario.machine.quantum > 0 && !point.contains("quantum")) {
      spec.machine.quantum_length = scenario.machine.quantum;
    }
    if (scenario.arrival.kind != abg::open::ArrivalKind::kNone &&
        !point.contains("arrival")) {
      spec.open.arrival = scenario.arrival.kind;
      if (scenario.arrival.jobs_total > 0) {
        spec.open.jobs_total = scenario.arrival.jobs_total;
      }
      if (scenario.arrival.load > 0.0 && !point.contains("load")) {
        spec.workload.load = scenario.arrival.load;
      }
    }
    // A scenario's cluster block engages the cluster engine where the
    // grid is silent (its migration period rides along; the
    // --migration-period flag still wins in main()).
    if (scenario.cluster.machines > 0 &&
        !point.contains("cluster-machines")) {
      spec.cluster_machines = scenario.cluster.machines;
      spec.migration_period = scenario.cluster.migration_period;
      if (!point.contains("router")) {
        spec.router = scenario.cluster.router;
      }
    }
  }
  spec.group = group.empty() ? "all" : group;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGINT, handle_shutdown_signal);
  std::signal(SIGTERM, handle_shutdown_signal);
  try {
    const abg::util::Cli cli(argc, argv);
    cli.reject_unknown(kKnownFlags);
    if (!cli.positional().empty()) {
      throw std::invalid_argument("unexpected argument '" +
                                  cli.positional().front() +
                                  "' (abg_sweep takes only --flags)");
    }
    const auto reps = static_cast<int>(cli.get_positive_int("reps", 5));
    const auto seed =
        static_cast<std::uint64_t>(cli.get_non_negative_int("seed", 2008));
    const auto threads =
        static_cast<int>(cli.get_non_negative_int("jobs", 1));
    const std::string jsonl_path = cli.get("jsonl", "sweep.jsonl");
    const std::string summary_path = cli.get("summary", "BENCH_sweeps.json");

    // Robustness knobs.  Contradictory values (negative retries, zero
    // timeout, garbage) are Cli errors up front, not mid-sweep surprises.
    const double run_timeout = cli.get_positive_double("run-timeout", 0.0);
    const auto max_retries =
        static_cast<int>(cli.get_non_negative_int("max-retries", 0));
    const double backoff = cli.get_positive_double("backoff", 0.1);
    const std::string resume_path = cli.get("resume", "");
    std::string journal_path = cli.get("journal", "");
    if (!resume_path.empty()) {
      if (!journal_path.empty() && journal_path != resume_path) {
        throw std::invalid_argument(
            "--resume already names the journal; drop --journal or make "
            "them equal");
      }
      journal_path = resume_path;
    }

    // Hierarchical axis: a global switch, not a grid dimension — every
    // grid point runs on the same tree.  Contradictory values (0,
    // negative, junk) are Cli errors, not silent fallbacks.
    const auto hier_groups =
        static_cast<int>(cli.get_positive_int("hier-groups", 0));
    const std::string hier_alloc = cli.get("hier-alloc", "");
    const auto hier_threads =
        static_cast<int>(cli.get_positive_int("hier-threads", 1));
    if (!hier_alloc.empty() && hier_groups == 0) {
      throw std::invalid_argument("--hier-alloc requires --hier-groups");
    }
    if (!hier_alloc.empty() && hier_alloc != "deq" && hier_alloc != "rr") {
      throw std::invalid_argument("--hier-alloc: expected deq or rr, got '" +
                                  hier_alloc + "'");
    }
    if (hier_threads > 1 && hier_groups == 0) {
      throw std::invalid_argument("--hier-threads requires --hier-groups");
    }

    // Open-system knobs: global (not grid dimensions) — every open grid
    // point streams the same number of arrivals.
    const auto jobs_total =
        static_cast<std::int64_t>(cli.get_positive_int("jobs-total", 100000));
    const std::string trace_path = cli.get("trace-path", "");

    // Cluster knobs: global like the hier/open ones — every cluster grid
    // point shares the migration epoch and machine-loop thread count.
    const abg::dag::Steps migration_period =
        cli.get_non_negative_int("migration-period", 0);
    const auto cluster_threads =
        static_cast<int>(cli.get_positive_int("cluster-threads", 1));

    const std::vector<Dimension> dims = build_dimensions(cli);
    bool any_open = false;
    bool any_grid_arrival = false;
    for (const Dimension& dim : dims) {
      if (dim.key != "arrival") {
        continue;
      }
      for (const std::string& value : dim.values) {
        if (value != "none") {
          any_open = true;
          any_grid_arrival = true;
        }
        if (value == "trace" && trace_path.empty()) {
          throw std::invalid_argument(
              "--param arrival=trace requires --trace-path");
        }
      }
    }
    // A scenario file can engage the open axis on its own (its arrival
    // block), unless the grid pins an explicit arrival dimension.
    if (!any_grid_arrival) {
      for (const Dimension& dim : dims) {
        if (dim.key != "scenario") {
          continue;
        }
        for (const std::string& value : dim.values) {
          if (abg::scenario::load_cached(value).arrival.kind !=
              abg::open::ArrivalKind::kNone) {
            any_open = true;
          }
        }
      }
    }
    if (any_open) {
      // The streaming driver composes with scheduler / machine /
      // allocator axes only; reject the rest up front with a clear
      // message instead of quarantining every cell mid-sweep.
      if (hier_groups > 0) {
        throw std::invalid_argument(
            "--hier-groups does not compose with open-system arrival "
            "params");
      }
      for (const Dimension& dim : dims) {
        for (const std::string& value : dim.values) {
          if (dim.key == "fault" && value != "none") {
            throw std::invalid_argument(
                "open-system runs do not compose with fault scenarios "
                "(drop --param fault=" + value + ")");
          }
          if (dim.key == "engine" && value != "sync") {
            throw std::invalid_argument(
                "open-system runs require the sync engine (drop --param "
                "engine=" + value + ")");
          }
          if (dim.key == "release" && value != "batched") {
            throw std::invalid_argument(
                "open-system runs own their arrival process (drop "
                "--param release=" + value + ")");
          }
        }
      }
    } else if (cli.has("jobs-total") || cli.has("trace-path")) {
      throw std::invalid_argument(
          "--jobs-total / --trace-path require an open-system arrival "
          "param (e.g. --param arrival=poisson)");
    }
    if (hier_groups > 0) {
      // The sharded engine supports neither fault plans nor the async
      // boundary model; reject the combination up front with a clear
      // message instead of failing mid-sweep.
      for (const Dimension& dim : dims) {
        for (const std::string& value : dim.values) {
          if (dim.key == "fault" && value != "none") {
            throw std::invalid_argument(
                "--hier-groups: fault scenarios are not supported by the "
                "sharded engine (drop --param fault=" + value + ")");
          }
          if (dim.key == "engine" && value != "sync") {
            throw std::invalid_argument(
                "--hier-groups requires the sync engine (drop --param "
                "engine=" + value + ")");
          }
        }
      }
    }

    // Cluster detection mirrors the open-axis scan: an explicit
    // cluster-machines dimension, or a scenario whose cluster block
    // engages the engine on its own (unless the grid pins the dimension).
    bool any_cluster = false;
    bool has_cluster_dim = false;
    bool has_router_dim = false;
    for (const Dimension& dim : dims) {
      if (dim.key == "router") {
        has_router_dim = true;
      }
      if (dim.key != "cluster-machines") {
        continue;
      }
      has_cluster_dim = true;
      for (const std::string& value : dim.values) {
        if (value != "0") {
          any_cluster = true;
        }
      }
    }
    if (!has_cluster_dim) {
      for (const Dimension& dim : dims) {
        if (dim.key != "scenario") {
          continue;
        }
        for (const std::string& value : dim.values) {
          if (abg::scenario::load_cached(value).cluster.machines > 0) {
            any_cluster = true;
          }
        }
      }
    }
    if (has_router_dim && !any_cluster) {
      throw std::invalid_argument(
          "--param router requires a cluster axis (add --param "
          "cluster-machines=N)");
    }
    if ((cli.has("migration-period") || cli.has("cluster-threads")) &&
        !any_cluster) {
      throw std::invalid_argument(
          "--migration-period / --cluster-threads require a cluster axis "
          "(add --param cluster-machines=N)");
    }
    if (any_cluster) {
      // The cluster driver composes with scheduler / allocator / machine
      // params only; reject the rest up front with actionable messages
      // instead of quarantining every cell mid-sweep.
      if (any_open) {
        throw std::invalid_argument(
            "cluster runs do not compose with open-system arrival params "
            "(drop --param arrival=... or --param cluster-machines=...)");
      }
      if (hier_groups > 0) {
        throw std::invalid_argument(
            "--hier-groups does not compose with the cluster axes (drop "
            "--hier-groups or --param cluster-machines=...)");
      }
      for (const Dimension& dim : dims) {
        for (const std::string& value : dim.values) {
          if (dim.key == "fault" && value != "none") {
            throw std::invalid_argument(
                "cluster runs do not compose with fault scenarios (drop "
                "--param fault=" + value + ")");
          }
          if (dim.key == "engine" && value != "sync") {
            throw std::invalid_argument(
                "cluster runs require the sync engine (drop --param "
                "engine=" + value + ")");
          }
        }
      }
    }

    // Odometer over the dimensions, last dimension fastest.  The workload
    // seed index enumerates only workload-shaping dimensions, so scheduler
    // / allocator / fault variants replay identical workloads.
    std::size_t workload_points = 1;
    for (const Dimension& dim : dims) {
      if (is_workload_key(dim.key)) {
        workload_points *= dim.values.size();
      }
    }
    std::vector<RunSpec> specs;
    std::vector<std::size_t> odometer(dims.size(), 0);
    for (;;) {
      std::map<std::string, std::string> point;
      std::size_t workload_index = 0;
      for (std::size_t d = 0; d < dims.size(); ++d) {
        point[dims[d].key] = dims[d].values[odometer[d]];
        if (is_workload_key(dims[d].key)) {
          workload_index =
              workload_index * dims[d].values.size() + odometer[d];
        }
      }
      RunSpec base = spec_of(point);
      base.hier_groups = hier_groups;
      base.hier_alloc = hier_alloc;
      base.hier_threads = hier_threads;
      if (base.cluster_machines > 0) {
        base.cluster_threads = cluster_threads;
        // The flag overrides a scenario-adopted migration period.
        if (cli.has("migration-period")) {
          base.migration_period = migration_period;
        }
      }
      if (base.open.arrival != abg::open::ArrivalKind::kNone) {
        // A scenario's own jobs_total survives unless the flag was given.
        if (cli.has("jobs-total") || base.open.jobs_total <= 0) {
          base.open.jobs_total = jobs_total;
        }
        if (!trace_path.empty()) {
          base.open.trace_path = trace_path;
        }
      }
      for (int rep = 0; rep < reps; ++rep) {
        RunSpec spec = base;
        spec.seed_index = static_cast<std::uint64_t>(rep) * workload_points +
                          workload_index;
        specs.push_back(std::move(spec));
      }
      // Advance the odometer; stop after the most significant digit wraps.
      bool wrapped = true;
      for (std::size_t d = dims.size(); d-- > 0;) {
        if (++odometer[d] < dims[d].values.size()) {
          wrapped = false;
          break;
        }
        odometer[d] = 0;
      }
      if (dims.empty() || wrapped) {
        break;
      }
    }

    // Undocumented fixture hooks: make run ID hang until cancelled /
    // fail its first N attempts.  They never enter the spec digest, so a
    // journal written with a hook resumes cleanly without it.
    const std::int64_t hang_run = cli.get_int("test-hang-run", -1);
    if (hang_run >= 0) {
      if (static_cast<std::size_t>(hang_run) >= specs.size()) {
        throw std::invalid_argument("--test-hang-run: run id out of range");
      }
      specs[static_cast<std::size_t>(hang_run)].debug.hang = true;
    }
    const std::string fail_run = cli.get("test-fail-run", "");
    if (!fail_run.empty()) {
      const std::size_t colon = fail_run.find(':');
      if (colon == std::string::npos) {
        throw std::invalid_argument("--test-fail-run expects RUN_ID:N");
      }
      const std::int64_t id = std::stoll(fail_run.substr(0, colon));
      const int attempts = std::stoi(fail_run.substr(colon + 1));
      if (id < 0 || static_cast<std::size_t>(id) >= specs.size() ||
          attempts < 1) {
        throw std::invalid_argument("--test-fail-run: bad RUN_ID:N");
      }
      specs[static_cast<std::size_t>(id)].debug.fail_attempts = attempts;
    }

    // Fail fast on unwritable outputs: probe every artifact path before
    // any sweep CPU is spent.
    if (jsonl_path != "-" && jsonl_path != "none") {
      abg::util::probe_writable(jsonl_path);
    }
    if (summary_path != "none") {
      abg::util::probe_writable(summary_path);
    }
    for (const char* flag : {"metrics-out", "trace-out"}) {
      if (cli.has(flag)) {
        abg::util::probe_writable(cli.get(flag, ""));
      }
    }
    std::string profile_path = cli.get("profile", "");
    if (profile_path.empty() || profile_path == "true") {
      profile_path = "BENCH_profile.json";
    }
    if (cli.has("profile")) {
      abg::util::probe_writable(profile_path);
    }

    // Journal / resume: the replay is validated against this exact grid
    // before any cell is skipped.
    const std::uint64_t grid = abg::exp::grid_digest(specs, seed);
    std::optional<abg::exp::JournalReplay> replay;
    if (!resume_path.empty()) {
      replay.emplace(abg::exp::load_journal(resume_path));
      if (replay->grid != grid) {
        throw std::invalid_argument(
            "--resume: journal " + resume_path +
            " records a different grid (digest " +
            abg::exp::digest_to_hex(replay->grid) + " vs " +
            abg::exp::digest_to_hex(grid) +
            "); refusing to mix sweeps");
      }
    }
    std::optional<abg::exp::RunJournal> journal;
    if (!journal_path.empty()) {
      journal.emplace(journal_path, seed, specs.size(), grid);
    }

    abg::exp::SweepConfig sweep;
    sweep.threads = threads;
    sweep.base_seed = seed;
    sweep.robustness.run_timeout_seconds = run_timeout;
    sweep.robustness.max_retries = max_retries;
    sweep.robustness.backoff_seconds = backoff;
    sweep.robustness.journal = journal.has_value() ? &*journal : nullptr;
    sweep.robustness.resume = replay.has_value() ? &*replay : nullptr;
    sweep.robustness.drain = &g_drain;
    sweep.robustness.abort = &g_abort;
    if (!cli.get_bool("quiet", false)) {
      sweep.on_progress = abg::exp::stderr_progress();
    }
    // Observability outputs: all three are opt-in and none touches the
    // deterministic records (metrics merges are thread-count independent;
    // the timeline and profiler are wall-clock by design).
    abg::obs::MetricsRegistry registry;
    abg::obs::SweepTimeline timeline;
    abg::obs::Profiler profiler;
    if (cli.has("metrics-out")) {
      sweep.metrics = &registry;
    }
    if (cli.has("trace-out")) {
      sweep.timeline = &timeline;
    }
    if (cli.has("profile")) {
      sweep.profiler = &profiler;
    }
    abg::exp::SweepOutcome outcome;
    {
      std::optional<abg::obs::Profiler::Scope> total_scope;
      if (cli.has("profile")) {
        total_scope.emplace(&profiler, "sweep.total",
                            static_cast<std::int64_t>(specs.size()));
      }
      outcome = abg::exp::SweepRunner(sweep).run_monitored(specs);
    }

    // Interrupted: the grid is incomplete, so no final artifact is
    // written (partial files would be mistaken for results).  The journal
    // already holds every completed cell; resume picks them up.
    if (outcome.interrupted) {
      std::cerr << "\nabg_sweep: interrupted — " << outcome.skipped
                << " of " << specs.size() << " cells not completed\n";
      if (journal_path.empty()) {
        std::cerr << "abg_sweep: no journal was kept; rerun with "
                     "--journal=PATH to make sweeps resumable\n";
      } else {
        std::cerr << "abg_sweep: resume with --resume=" << journal_path
                  << "\n";
      }
      return 130;
    }
    const std::vector<RunRecord>& records = outcome.records;

    // Aggregate table on stdout: one row per (group, scheduler) in order
    // of first appearance.
    struct Agg {
      std::string group;
      std::string scheduler;
      abg::util::RunningStats makespan;
      abg::util::RunningStats m_over_lb;
      abg::util::RunningStats r_over_lb;
      abg::util::RunningStats waste;
    };
    std::vector<Agg> aggs;
    for (const RunRecord& record : records) {
      if (!record.failure.empty()) {
        continue;  // quarantined cells have no metrics to aggregate
      }
      auto it = std::find_if(aggs.begin(), aggs.end(), [&](const Agg& a) {
        return a.group == record.group && a.scheduler == record.scheduler;
      });
      if (it == aggs.end()) {
        aggs.push_back(Agg{record.group, record.scheduler, {}, {}, {}, {}});
        it = std::prev(aggs.end());
      }
      it->makespan.add(record.metric("makespan"));
      if (record.has_metric("makespan_over_lb")) {
        it->m_over_lb.add(record.metric("makespan_over_lb"));
      }
      if (record.has_metric("response_over_lb")) {
        it->r_over_lb.add(record.metric("response_over_lb"));
      }
      it->waste.add(record.metric("total_waste"));
    }
    abg::util::Table table({"group", "scheduler", "runs", "makespan", "M/LB",
                            "R/LB", "waste"});
    for (const Agg& agg : aggs) {
      table.add_row({agg.group, agg.scheduler,
                     std::to_string(agg.makespan.count()),
                     abg::util::format_double(agg.makespan.mean(), 1),
                     abg::util::format_double(agg.m_over_lb.mean(), 3),
                     abg::util::format_double(agg.r_over_lb.mean(), 3),
                     abg::util::format_double(agg.waste.mean(), 1)});
    }
    std::cout << "abg_sweep: " << specs.size() << " runs ("
              << reps << " rep(s) x " << specs.size() / std::max(1, reps)
              << " grid points), base seed " << seed << "\n";
    if (outcome.resumed > 0) {
      std::cout << "abg_sweep: resumed " << outcome.resumed
                << " completed cell(s) from " << resume_path << ", executed "
                << outcome.executed << "\n";
    }
    if (outcome.retries > 0 || outcome.timeouts > 0) {
      std::cout << "abg_sweep: " << outcome.retries << " retr"
                << (outcome.retries == 1 ? "y" : "ies") << ", "
                << outcome.timeouts << " timeout(s)\n";
    }
    std::cout << "\n";
    table.print(std::cout);

    // The degraded-coverage report: name every excluded cell and why.
    if (outcome.quarantined > 0) {
      std::cout << "\nabg_sweep: QUARANTINED " << outcome.quarantined
                << " run(s) — coverage is degraded:\n";
      for (const RunRecord& record : records) {
        if (!record.failure.empty()) {
          std::cout << "  run " << record.run_id << " [" << record.group
                    << " / " << record.scheduler << "]: " << record.failure
                    << "\n";
        }
      }
    }

    abg::exp::ResultSink sink("sweeps", seed);
    sink.add_all(records);
    if (jsonl_path == "-") {
      sink.write_jsonl(std::cout);
    } else if (jsonl_path != "none") {
      sink.write_jsonl_file(jsonl_path);
      std::cout << "\nwrote " << records.size() << " records to "
                << jsonl_path;
    }
    if (summary_path != "none") {
      sink.write_summary_file(summary_path);
      std::cout << "\nwrote summary to " << summary_path;
    }
    if (cli.has("metrics-out")) {
      const std::string path = cli.get("metrics-out", "");
      abg::util::write_file_atomic(path, [&registry](std::ostream& out) {
        registry.write(out);
        out << "\n";
      });
      std::cout << "\nwrote merged metrics to " << path;
    }
    if (cli.has("trace-out")) {
      const std::string path = cli.get("trace-out", "");
      const abg::obs::PerfettoTrace trace = timeline.to_trace();
      abg::util::write_file_atomic(
          path, [&trace](std::ostream& out) { trace.write(out); });
      std::cout << "\nwrote sweep timeline to " << path << " ("
                << timeline.size() << " run slices)";
    }
    if (cli.has("profile")) {
      abg::util::write_file_atomic(
          profile_path,
          [&profiler](std::ostream& out) { profiler.write(out); });
      const abg::obs::ProfileSpan total = profiler.span("sweep.total");
      std::cout << "\nwrote profile to " << profile_path << " ("
                << abg::util::format_double(
                       total.seconds > 0.0
                           ? static_cast<double>(total.items) / total.seconds
                           : 0.0,
                       1)
                << " runs/s)";
    }
    std::cout << "\n";
    return outcome.quarantined > 0 ? 3 : 0;
  } catch (const std::exception& error) {
    std::cerr << "abg_sweep: " << error.what() << "\n";
    return 2;
  }
}
