// abg_sweep — the unified parameter-sweep CLI.
//
// Replaces the ad-hoc nested loops of the figure harnesses with one grid
// runner: a sweep is the cartesian product of repeated `--param` flags,
// executed on the exp::SweepRunner thread pool with deterministic per-run
// seeding (results are byte-identical at any --jobs level), aggregated by
// exp::ResultSink into JSONL plus a BENCH_sweeps.json summary.
//
//   ./abg_sweep --param scheduler=abg,a-greedy --param load=0.5,1,2
//               --reps 30 --jobs 8
//
// Grid parameters (each takes a comma-separated value list):
//   scheduler   abg | a-greedy | abg-auto | static   [default abg,a-greedy]
//   r           ABG convergence rate                  [default 0.2]
//   workload    job-set | fork-join | square-wave     [default job-set]
//   load        job-set target load                   [default 1]
//   factor      fork-join transition factor           [default 10]
//   njobs       fork-join / square-wave job count     [default 4]
//   levels      square-wave profile length            [default 600]
//   processors  machine size P                        [default 128]
//   quantum     quantum length L                      [default 1000]
//   allocator   deq | rr                              [default deq]
//   fault       none | step | impulse | poisson | crash  [default none]
//   engine      sync | async boundary model           [default sync]
//
// Other flags:
//   --reps=N      replications per grid point (default 5)
//   --seed=S      base seed (default 2008)
//   --jobs=N      worker threads; 0 = hardware concurrency (default 1)
//   --hier-groups=N   run every point on the sharded hierarchical engine
//                 with N allocation groups (N >= 1; sync engine, no fault
//                 scenarios).  Default: flat engines.
//   --hier-alloc=deq|rr  group/root allocator of the hierarchical tree
//                 (requires --hier-groups; default: the run's allocator)
//   --jsonl=PATH  per-run records; '-' = stdout, 'none' = skip
//                 (default sweep.jsonl)
//   --summary=PATH  aggregated summary; 'none' = skip
//                 (default BENCH_sweeps.json)
//   --quiet       suppress the stderr progress line
//   --metrics-out=PATH  merged engine-metrics registry of every run (JSON;
//                 thread-count independent, cmp-able across --jobs levels)
//   --trace-out=PATH    Perfetto timeline of the sweep execution itself
//                 (one track per worker thread, one slice per run;
//                 wall-clock, open in ui.perfetto.dev)
//   --profile[=PATH]    sweep throughput spans (runs/sec)
//                 [PATH defaults to BENCH_profile.json]
//
// Scheduler-side parameters (scheduler, r) do not advance the workload
// seed index: every scheduler variant runs the exact same workloads, so
// paired ratios between schedulers are free of sampling noise.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/result_sink.hpp"
#include "exp/runner.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/sweep_timeline.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using abg::exp::RunRecord;
using abg::exp::RunSpec;

/// One grid dimension: a key and its value list.
struct Dimension {
  std::string key;
  std::vector<std::string> values;
};

/// Canonical dimension order (fixes expansion order and run ids).
const std::vector<std::string> kKnownKeys = {
    "scheduler", "r",       "workload",   "load",      "factor", "njobs",
    "levels",    "quantum", "processors", "allocator", "fault",  "engine"};

/// Keys that select the scheduler rather than the simulated scenario;
/// they are excluded from the workload seed index and the group label.
bool is_scheduler_key(const std::string& key) {
  return key == "scheduler" || key == "r";
}

/// Keys that shape the generated workload (seed-index-relevant).  The
/// allocator and fault plan perturb the simulation of a workload, not the
/// workload itself, so they share seeds across their values too.
bool is_workload_key(const std::string& key) {
  return key == "workload" || key == "load" || key == "factor" ||
         key == "njobs" || key == "levels" || key == "quantum" ||
         key == "processors";
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    if (end > start) {
      out.push_back(text.substr(start, end - start));
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return out;
}

double parse_double(const std::string& key, const std::string& value) {
  try {
    std::size_t pos = 0;
    const double parsed = std::stod(value, &pos);
    if (pos != value.size()) {
      throw std::invalid_argument("trailing characters");
    }
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("--param " + key + ": '" + value +
                                "' is not a number");
  }
}

int parse_int(const std::string& key, const std::string& value) {
  const double parsed = parse_double(key, value);
  const int as_int = static_cast<int>(parsed);
  if (static_cast<double>(as_int) != parsed) {
    throw std::invalid_argument("--param " + key + ": '" + value +
                                "' is not an integer");
  }
  return as_int;
}

/// Parses the repeated --param flags into ordered dimensions, injecting
/// defaults for absent keys.
std::vector<Dimension> build_dimensions(const abg::util::Cli& cli) {
  std::map<std::string, std::vector<std::string>> params;
  for (const std::string& flag : cli.get_all("param")) {
    const std::size_t eq = flag.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("--param expects key=v1,v2,..., got '" +
                                  flag + "'");
    }
    const std::string key = flag.substr(0, eq);
    if (std::find(kKnownKeys.begin(), kKnownKeys.end(), key) ==
        kKnownKeys.end()) {
      std::string known;
      for (const std::string& k : kKnownKeys) {
        if (!known.empty()) {
          known += ", ";
        }
        known += k;
      }
      throw std::invalid_argument("--param " + key +
                                  ": unknown key (known: " + known + ")");
    }
    const std::vector<std::string> values = split_csv(flag.substr(eq + 1));
    if (values.empty()) {
      throw std::invalid_argument("--param " + key + ": empty value list");
    }
    auto& slot = params[key];
    slot.insert(slot.end(), values.begin(), values.end());
  }
  if (!params.contains("scheduler")) {
    params["scheduler"] = {"abg", "a-greedy"};
  }

  std::vector<Dimension> dims;
  for (const std::string& key : kKnownKeys) {
    const auto it = params.find(key);
    if (it != params.end()) {
      dims.push_back({key, it->second});
    }
  }
  return dims;
}

/// Builds the RunSpec of one fully bound grid point.
RunSpec spec_of(const std::map<std::string, std::string>& point) {
  RunSpec spec;
  std::string group;
  for (const std::string& key : kKnownKeys) {
    const auto it = point.find(key);
    if (it == point.end()) {
      continue;
    }
    const std::string& value = it->second;
    if (key == "scheduler") {
      spec.scheduler = abg::exp::scheduler_kind_from_name(value);
    } else if (key == "r") {
      spec.scheduler_params.convergence_rate = parse_double(key, value);
    } else if (key == "workload") {
      spec.workload.kind = abg::exp::workload_kind_from_name(value);
    } else if (key == "load") {
      spec.workload.load = parse_double(key, value);
    } else if (key == "factor") {
      spec.workload.transition_factor = parse_double(key, value);
    } else if (key == "njobs") {
      spec.workload.jobs = parse_int(key, value);
    } else if (key == "levels") {
      spec.workload.levels = parse_int(key, value);
    } else if (key == "quantum") {
      spec.machine.quantum_length = parse_int(key, value);
    } else if (key == "processors") {
      spec.machine.processors = parse_int(key, value);
    } else if (key == "allocator") {
      if (value != "deq" && value != "rr") {
        throw std::invalid_argument("--param allocator: expected deq or rr");
      }
      spec.allocator = value == "rr" ? abg::exp::AllocatorKind::kRoundRobin
                                     : abg::exp::AllocatorKind::kDefault;
    } else if (key == "fault") {
      spec.faults.scenario = abg::exp::fault_scenario_from_name(value);
    } else if (key == "engine") {
      spec.engine = abg::sim::engine_kind_from_name(value);
    }
    if (!is_scheduler_key(key)) {
      group += (group.empty() ? "" : ",") + key + "=" + value;
    }
  }
  spec.group = group.empty() ? "all" : group;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const abg::util::Cli cli(argc, argv);
    const auto reps = static_cast<int>(cli.get_int("reps", 5));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2008));
    const auto threads = static_cast<int>(cli.get_int("jobs", 1));
    const std::string jsonl_path = cli.get("jsonl", "sweep.jsonl");
    const std::string summary_path = cli.get("summary", "BENCH_sweeps.json");
    if (reps < 1) {
      throw std::invalid_argument("--reps must be >= 1");
    }

    // Hierarchical axis: a global switch, not a grid dimension — every
    // grid point runs on the same tree.  Contradictory values (0,
    // negative, junk) are Cli errors, not silent fallbacks.
    const auto hier_groups =
        static_cast<int>(cli.get_positive_int("hier-groups", 0));
    const std::string hier_alloc = cli.get("hier-alloc", "");
    if (!hier_alloc.empty() && hier_groups == 0) {
      throw std::invalid_argument("--hier-alloc requires --hier-groups");
    }
    if (!hier_alloc.empty() && hier_alloc != "deq" && hier_alloc != "rr") {
      throw std::invalid_argument("--hier-alloc: expected deq or rr, got '" +
                                  hier_alloc + "'");
    }

    const std::vector<Dimension> dims = build_dimensions(cli);
    if (hier_groups > 0) {
      // The sharded engine supports neither fault plans nor the async
      // boundary model; reject the combination up front with a clear
      // message instead of failing mid-sweep.
      for (const Dimension& dim : dims) {
        for (const std::string& value : dim.values) {
          if (dim.key == "fault" && value != "none") {
            throw std::invalid_argument(
                "--hier-groups: fault scenarios are not supported by the "
                "sharded engine (drop --param fault=" + value + ")");
          }
          if (dim.key == "engine" && value != "sync") {
            throw std::invalid_argument(
                "--hier-groups requires the sync engine (drop --param "
                "engine=" + value + ")");
          }
        }
      }
    }

    // Odometer over the dimensions, last dimension fastest.  The workload
    // seed index enumerates only workload-shaping dimensions, so scheduler
    // / allocator / fault variants replay identical workloads.
    std::size_t workload_points = 1;
    for (const Dimension& dim : dims) {
      if (is_workload_key(dim.key)) {
        workload_points *= dim.values.size();
      }
    }
    std::vector<RunSpec> specs;
    std::vector<std::size_t> odometer(dims.size(), 0);
    for (;;) {
      std::map<std::string, std::string> point;
      std::size_t workload_index = 0;
      for (std::size_t d = 0; d < dims.size(); ++d) {
        point[dims[d].key] = dims[d].values[odometer[d]];
        if (is_workload_key(dims[d].key)) {
          workload_index =
              workload_index * dims[d].values.size() + odometer[d];
        }
      }
      RunSpec base = spec_of(point);
      base.hier_groups = hier_groups;
      base.hier_alloc = hier_alloc;
      for (int rep = 0; rep < reps; ++rep) {
        RunSpec spec = base;
        spec.seed_index = static_cast<std::uint64_t>(rep) * workload_points +
                          workload_index;
        specs.push_back(std::move(spec));
      }
      // Advance the odometer; stop after the most significant digit wraps.
      bool wrapped = true;
      for (std::size_t d = dims.size(); d-- > 0;) {
        if (++odometer[d] < dims[d].values.size()) {
          wrapped = false;
          break;
        }
        odometer[d] = 0;
      }
      if (dims.empty() || wrapped) {
        break;
      }
    }

    abg::exp::SweepConfig sweep;
    sweep.threads = threads;
    sweep.base_seed = seed;
    if (!cli.get_bool("quiet", false)) {
      sweep.on_progress = abg::exp::stderr_progress();
    }
    // Observability outputs: all three are opt-in and none touches the
    // deterministic records (metrics merges are thread-count independent;
    // the timeline and profiler are wall-clock by design).
    abg::obs::MetricsRegistry registry;
    abg::obs::SweepTimeline timeline;
    abg::obs::Profiler profiler;
    if (cli.has("metrics-out")) {
      sweep.metrics = &registry;
    }
    if (cli.has("trace-out")) {
      sweep.timeline = &timeline;
    }
    if (cli.has("profile")) {
      sweep.profiler = &profiler;
    }
    std::vector<RunRecord> records;
    {
      std::optional<abg::obs::Profiler::Scope> total_scope;
      if (cli.has("profile")) {
        total_scope.emplace(&profiler, "sweep.total",
                            static_cast<std::int64_t>(specs.size()));
      }
      records = abg::exp::SweepRunner(sweep).run(specs);
    }

    // Aggregate table on stdout: one row per (group, scheduler) in order
    // of first appearance.
    struct Agg {
      std::string group;
      std::string scheduler;
      abg::util::RunningStats makespan;
      abg::util::RunningStats m_over_lb;
      abg::util::RunningStats r_over_lb;
      abg::util::RunningStats waste;
    };
    std::vector<Agg> aggs;
    for (const RunRecord& record : records) {
      auto it = std::find_if(aggs.begin(), aggs.end(), [&](const Agg& a) {
        return a.group == record.group && a.scheduler == record.scheduler;
      });
      if (it == aggs.end()) {
        aggs.push_back(Agg{record.group, record.scheduler, {}, {}, {}, {}});
        it = std::prev(aggs.end());
      }
      it->makespan.add(record.metric("makespan"));
      if (record.has_metric("makespan_over_lb")) {
        it->m_over_lb.add(record.metric("makespan_over_lb"));
      }
      if (record.has_metric("response_over_lb")) {
        it->r_over_lb.add(record.metric("response_over_lb"));
      }
      it->waste.add(record.metric("total_waste"));
    }
    abg::util::Table table({"group", "scheduler", "runs", "makespan", "M/LB",
                            "R/LB", "waste"});
    for (const Agg& agg : aggs) {
      table.add_row({agg.group, agg.scheduler,
                     std::to_string(agg.makespan.count()),
                     abg::util::format_double(agg.makespan.mean(), 1),
                     abg::util::format_double(agg.m_over_lb.mean(), 3),
                     abg::util::format_double(agg.r_over_lb.mean(), 3),
                     abg::util::format_double(agg.waste.mean(), 1)});
    }
    std::cout << "abg_sweep: " << specs.size() << " runs ("
              << reps << " rep(s) x " << specs.size() / std::max(1, reps)
              << " grid points), base seed " << seed << "\n\n";
    table.print(std::cout);

    abg::exp::ResultSink sink("sweeps", seed);
    sink.add_all(records);
    if (jsonl_path == "-") {
      sink.write_jsonl(std::cout);
    } else if (jsonl_path != "none") {
      std::ofstream out(jsonl_path);
      if (!out) {
        throw std::runtime_error("cannot open --jsonl path " + jsonl_path);
      }
      sink.write_jsonl(out);
      std::cout << "\nwrote " << records.size() << " records to "
                << jsonl_path;
    }
    if (summary_path != "none") {
      std::ofstream out(summary_path);
      if (!out) {
        throw std::runtime_error("cannot open --summary path " +
                                 summary_path);
      }
      sink.write_summary(out);
      std::cout << "\nwrote summary to " << summary_path;
    }
    if (cli.has("metrics-out")) {
      const std::string path = cli.get("metrics-out", "");
      std::ofstream out(path);
      if (!out) {
        throw std::runtime_error("cannot open --metrics-out path " + path);
      }
      registry.write(out);
      out << "\n";
      std::cout << "\nwrote merged metrics to " << path;
    }
    if (cli.has("trace-out")) {
      const std::string path = cli.get("trace-out", "");
      std::ofstream out(path);
      if (!out) {
        throw std::runtime_error("cannot open --trace-out path " + path);
      }
      const abg::obs::PerfettoTrace trace = timeline.to_trace();
      trace.write(out);
      std::cout << "\nwrote sweep timeline to " << path << " ("
                << timeline.size() << " run slices)";
    }
    if (cli.has("profile")) {
      std::string path = cli.get("profile", "");
      if (path.empty() || path == "true") {
        path = "BENCH_profile.json";
      }
      std::ofstream out(path);
      if (!out) {
        throw std::runtime_error("cannot open --profile path " + path);
      }
      profiler.write(out);
      const abg::obs::ProfileSpan total = profiler.span("sweep.total");
      std::cout << "\nwrote profile to " << path << " ("
                << abg::util::format_double(
                       total.seconds > 0.0
                           ? static_cast<double>(total.items) / total.seconds
                           : 0.0,
                       1)
                << " runs/s)";
    }
    std::cout << "\n";
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "abg_sweep: " << error.what() << "\n";
    return 2;
  }
}
