// trace_check: structural validator for the observability artifacts.
//
// CI and ctest use this to prove that what the tools emit actually loads:
//
//   trace_check trace FILE     Chrome/Perfetto trace-event JSON: parses,
//                              has >= 1 named job track, >= 1 quantum
//                              slice per job track, and the d/a counter
//                              series the exporter promises.
//   trace_check metrics FILE   metrics-registry JSON: parses, has the
//                              counters/gauges/histograms sections, and
//                              every histogram carries a consistent count.
//   trace_check profile FILE [SPAN...]
//                              BENCH_profile.json: parses, every span has
//                              seconds/count/items/items_per_second, and
//                              each SPAN argument names an existing span.
//   trace_check stats FILE     open-system online-statistics summary
//                              (abg_sim --open --stats-out): parses, has
//                              the completed/work totals, every
//                              distribution carries mean/max/percentiles,
//                              and the queue-depth series is step-ordered.
//   trace_check journal FILE   abg_sweep run journal (JSONL): has a
//                              header, every complete line is a known
//                              event with consistent run ids/digests.  A
//                              crash-torn trailing line is tolerated (and
//                              reported) — that is the format's contract.
//   trace_check bench CURRENT BASELINE [--max-regress=R]
//                              micro-benchmark summary (ResultSink JSON,
//                              e.g. BENCH_micro_throughput.json): every
//                              group in BASELINE must exist in CURRENT
//                              with items_per_second mean no worse than
//                              (1 - R) x the baseline (default R = 0.3).
//                              A regression is an invariant violation
//                              (exit 5), which is what lets CI fail the
//                              perf smoke on it.
//   trace_check scenario FILE  scenario-library file: parses, passes
//                              ScenarioSpec validation, and prints the
//                              generator / jobs / machine summary.
//   trace_check import IN.jsonl OUT.json [--name=X]
//                              converts an external JSONL job trace into
//                              an explicit scenario file (validated and
//                              normalized); the scenario name defaults to
//                              the input filename stem.
//   trace_check export SCENARIO.json OUT.jsonl [--seed=N]
//                              [--processors=P] [--quantum=L]
//                              materializes a scenario's generator and
//                              writes the jobs as a JSONL trace, so
//                              export -> import round-trips exactly.
//
// Prints one summary line on success.  Exit codes classify the failure so
// scripts can react without scraping stderr:
//   0  artifact ok
//   2  usage error
//   3  file missing / unreadable
//   4  file is not valid JSON / JSONL (parse error)
//   5  file parsed but violates a structural invariant
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "scenario/import.hpp"
#include "scenario/spec.hpp"
#include "util/atomic_file.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace {

using abg::util::Json;

/// The file could not be opened or read (exit 3).
struct MissingFileError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// The file parsed but breaks a structural promise (exit 5).  JSON parse
/// errors keep their std::invalid_argument type from Json::parse and map
/// to exit 4.
struct InvariantError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw MissingFileError("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

[[noreturn]] void fail(const std::string& what) {
  throw InvariantError(what);
}

const Json& require(const Json& parent, const std::string& key) {
  const Json* found = parent.find(key);
  if (found == nullptr) {
    fail("missing required key '" + key + "'");
  }
  return *found;
}

int check_trace(const std::string& path) {
  const Json doc = Json::parse(read_file(path));
  const Json& events = require(doc, "traceEvents");
  if (!events.is_array()) {
    fail("traceEvents is not an array");
  }
  // Job tracks are announced as thread_name metadata ("job N (...)");
  // quantum slices are X events on the same tid.
  std::map<std::int64_t, std::string> job_tracks;
  std::map<std::int64_t, std::int64_t> slices_per_tid;
  std::set<std::string> counter_tracks;
  for (const Json& event : events.items()) {
    const std::string& phase = require(event, "ph").as_string();
    if (phase == "M" && require(event, "name").as_string() == "thread_name") {
      const std::string& label =
          require(require(event, "args"), "name").as_string();
      if (label.rfind("job ", 0) == 0) {
        job_tracks[require(event, "tid").as_integer()] = label;
      }
    } else if (phase == "X") {
      ++slices_per_tid[require(event, "tid").as_integer()];
      if (require(event, "dur").as_number() < 0) {
        fail("slice with negative duration");
      }
    } else if (phase == "C") {
      counter_tracks.insert(require(event, "name").as_string());
    }
  }
  if (job_tracks.empty()) {
    fail("no job tracks (thread_name metadata) found");
  }
  std::int64_t total_slices = 0;
  std::int64_t da_tracks = 0;
  for (const auto& [tid, label] : job_tracks) {
    const auto found = slices_per_tid.find(tid);
    if (found == slices_per_tid.end() || found->second == 0) {
      fail("track '" + label + "' has no quantum slices");
    }
    total_slices += found->second;
    // "job N d/a" counter series accompany every job track.
    const std::string job_id = label.substr(0, label.find(" ("));
    if (counter_tracks.count(job_id + " d/a") > 0) {
      ++da_tracks;
    }
  }
  if (da_tracks == 0) {
    fail("no 'job N d/a' counter tracks found");
  }
  std::cout << "trace_check: " << path << " ok (" << job_tracks.size()
            << " job tracks, " << total_slices << " slices, " << da_tracks
            << " d/a counter tracks)\n";
  return 0;
}

int check_metrics(const std::string& path) {
  const Json doc = Json::parse(read_file(path));
  const Json& counters = require(doc, "counters");
  const Json& gauges = require(doc, "gauges");
  const Json& histograms = require(doc, "histograms");
  if (!counters.is_object() || !gauges.is_object() ||
      !histograms.is_object()) {
    fail("counters/gauges/histograms must be objects");
  }
  for (const auto& [name, histogram] : histograms.members()) {
    const std::int64_t count = require(histogram, "count").as_integer();
    std::int64_t bucketed = 0;
    for (const Json& bucket : require(histogram, "buckets").items()) {
      bucketed += bucket.as_integer();
    }
    if (bucketed != count) {
      fail("histogram '" + name + "' buckets sum to " +
           std::to_string(bucketed) + " but count is " +
           std::to_string(count));
    }
  }
  std::cout << "trace_check: " << path << " ok (" << counters.size()
            << " counters, " << gauges.size() << " gauges, "
            << histograms.size() << " histograms)\n";
  return 0;
}

int check_profile(const std::string& path,
                  const std::vector<std::string>& required_spans) {
  const Json doc = Json::parse(read_file(path));
  if (require(doc, "benchmark").as_string() != "profile") {
    fail("benchmark field is not 'profile'");
  }
  const Json& spans = require(doc, "spans");
  for (const auto& [name, span] : spans.members()) {
    if (require(span, "seconds").as_number() < 0) {
      fail("span '" + name + "' has negative seconds");
    }
    require(span, "count");
    require(span, "items");
    require(span, "items_per_second");
  }
  for (const std::string& name : required_spans) {
    if (spans.find(name) == nullptr) {
      fail("required span '" + name + "' missing");
    }
  }
  std::cout << "trace_check: " << path << " ok (" << spans.size()
            << " spans)\n";
  return 0;
}

int check_stats(const std::string& path) {
  const Json doc = Json::parse(read_file(path));
  const std::int64_t completed = require(doc, "completed").as_integer();
  if (completed < 0) {
    fail("completed is negative");
  }
  if (require(doc, "total_work").as_integer() < 0 ||
      require(doc, "total_waste").as_integer() < 0) {
    fail("work totals must be non-negative");
  }
  for (const std::string& name : {"response", "slowdown", "queue_depth"}) {
    const Json& dist = require(doc, name);
    for (const std::string& key : {"mean", "max", "p50", "p95", "p99"}) {
      require(dist, key);
    }
    // Percentiles of a completed stream are ordered; an empty stream
    // serialises NaN percentiles, which the comparisons skip.
    const double p50 = dist.at("p50").as_number();
    const double p99 = dist.at("p99").as_number();
    if (p50 == p50 && p99 == p99 && p50 > p99) {
      fail("distribution '" + name + "' has p50 > p99");
    }
  }
  const Json& series = require(doc, "queue_series");
  if (!series.is_array()) {
    fail("queue_series is not an array");
  }
  std::int64_t previous_step = -1;
  for (const Json& point : series.items()) {
    const std::int64_t step = require(point, "step").as_integer();
    require(point, "value");
    if (step <= previous_step) {
      fail("queue_series steps are not strictly increasing");
    }
    previous_step = step;
  }
  std::cout << "trace_check: " << path << " ok (" << completed
            << " completed, " << series.size()
            << " queue-series points)\n";
  return 0;
}

/// Group name -> items_per_second mean of a ResultSink summary document.
std::map<std::string, double> bench_rates(const Json& doc,
                                          const std::string& label) {
  const Json& groups = require(doc, "groups");
  if (!groups.is_array()) {
    fail(label + ": groups is not an array");
  }
  std::map<std::string, double> rates;
  for (const Json& group : groups.items()) {
    const std::string& name = require(group, "group").as_string();
    const Json& metrics = require(group, "metrics");
    const Json* rate = metrics.find("items_per_second");
    if (rate == nullptr) {
      continue;  // timing-only benchmarks carry no throughput metric
    }
    const double mean = require(*rate, "mean").as_number();
    if (mean < 0) {
      fail(label + ": group '" + name + "' has negative items_per_second");
    }
    rates[name] = mean;
  }
  if (rates.empty()) {
    fail(label + ": no groups with an items_per_second metric");
  }
  return rates;
}

int check_bench(const std::string& current_path,
                const std::string& baseline_path, double max_regress) {
  const Json current_doc = Json::parse(read_file(current_path));
  const Json baseline_doc = Json::parse(read_file(baseline_path));
  const std::map<std::string, double> current =
      bench_rates(current_doc, "current");
  const std::map<std::string, double> baseline =
      bench_rates(baseline_doc, "baseline");
  std::int64_t compared = 0;
  double worst_ratio = 1e300;
  std::string worst_group;
  for (const auto& [name, base_rate] : baseline) {
    const auto found = current.find(name);
    if (found == current.end()) {
      fail("baseline group '" + name + "' missing from current results");
    }
    ++compared;
    if (base_rate == 0) {
      continue;  // nothing to regress against
    }
    const double ratio = found->second / base_rate;
    if (ratio < worst_ratio) {
      worst_ratio = ratio;
      worst_group = name;
    }
    if (ratio < 1.0 - max_regress) {
      std::ostringstream msg;
      msg << "group '" << name << "' regressed: " << found->second
          << " items/s vs baseline " << base_rate << " ("
          << static_cast<std::int64_t>((1.0 - ratio) * 100.0)
          << "% slower, tolerance "
          << static_cast<std::int64_t>(max_regress * 100.0) << "%)";
      fail(msg.str());
    }
  }
  std::cout << "trace_check: " << current_path << " ok (" << compared
            << " groups vs baseline";
  if (!worst_group.empty()) {
    std::cout << ", worst '" << worst_group << "' at "
              << static_cast<std::int64_t>(worst_ratio * 100.0)
              << "% of baseline";
  }
  std::cout << ")\n";
  return 0;
}

bool is_hex_digest(const std::string& text) {
  if (text.size() != 16) {
    return false;
  }
  for (const char c : text) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) {
      return false;
    }
  }
  return true;
}

int check_journal(const std::string& path) {
  const std::string text = read_file(path);
  bool saw_header = false;
  bool torn_tail = false;
  std::int64_t cells = -1;
  std::int64_t done = 0;
  std::int64_t fails = 0;
  std::int64_t quarantines = 0;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const bool last_and_unterminated = eol == std::string::npos;
    const std::string line = text.substr(
        pos, last_and_unterminated ? std::string::npos : eol - pos);
    pos = last_and_unterminated ? text.size() : eol + 1;
    ++line_no;
    if (line.empty()) {
      continue;
    }
    Json j = Json::null();
    try {
      j = Json::parse(line);
    } catch (const std::invalid_argument&) {
      if (last_and_unterminated) {
        // A crash tore the final append mid-line — by design recoverable.
        torn_tail = true;
        break;
      }
      throw std::invalid_argument("line " + std::to_string(line_no) +
                                  " is not valid JSON");
    }
    const std::string& kind = require(j, "kind").as_string();
    if (kind == "journal") {
      if (saw_header) {
        fail("line " + std::to_string(line_no) + ": duplicate header");
      }
      require(j, "base_seed");
      cells = require(j, "cells").as_integer();
      if (!is_hex_digest(require(j, "grid_digest").as_string())) {
        fail("header grid_digest is not a 16-digit hex digest");
      }
      saw_header = true;
      continue;
    }
    if (!saw_header) {
      fail("line " + std::to_string(line_no) +
           ": event before the header line");
    }
    if (kind != "start" && kind != "done" && kind != "fail" &&
        kind != "quarantine") {
      fail("line " + std::to_string(line_no) + ": unknown kind '" + kind +
           "'");
    }
    const std::int64_t run_id = require(j, "run_id").as_integer();
    if (run_id < 0 || (cells >= 0 && run_id >= cells)) {
      fail("line " + std::to_string(line_no) + ": run_id " +
           std::to_string(run_id) + " outside [0, " + std::to_string(cells) +
           ")");
    }
    if (!is_hex_digest(require(j, "spec").as_string())) {
      fail("line " + std::to_string(line_no) +
           ": spec is not a 16-digit hex digest");
    }
    if (kind == "done") {
      const Json& record = require(j, "record");
      if (require(record, "run_id").as_integer() != run_id) {
        fail("line " + std::to_string(line_no) +
             ": embedded record run_id mismatch");
      }
      require(record, "metrics");
      ++done;
    } else if (kind == "fail") {
      require(j, "attempt");
      require(j, "cause");
      ++fails;
    } else if (kind == "quarantine") {
      require(j, "attempts");
      require(j, "cause");
      ++quarantines;
    }
  }
  if (!saw_header) {
    fail("no header line");
  }
  std::cout << "trace_check: " << path << " ok (" << cells << " cells, "
            << done << " done, " << fails << " failures, " << quarantines
            << " quarantines" << (torn_tail ? ", torn tail line" : "")
            << ")\n";
  return 0;
}

/// Loads and structurally validates a scenario file.  JSON syntax errors
/// keep their std::invalid_argument type (exit 4); a document that parses
/// but fails ScenarioSpec validation is an invariant violation (exit 5).
abg::scenario::ScenarioSpec load_scenario(const std::string& path) {
  const Json doc = Json::parse(read_file(path));
  try {
    return abg::scenario::ScenarioSpec::from_json(doc);
  } catch (const std::invalid_argument& e) {
    fail(path + ": " + e.what());
  }
}

int check_scenario(const std::string& path) {
  const abg::scenario::ScenarioSpec spec = load_scenario(path);
  const std::size_t jobs =
      spec.generator == abg::scenario::GeneratorKind::kExplicit
          ? spec.explicit_jobs.size()
          : static_cast<std::size_t>(spec.jobs);
  std::cout << "trace_check: " << path << " ok (scenario '" << spec.name
            << "', generator " << abg::scenario::to_string(spec.generator)
            << ", " << jobs << " jobs";
  if (spec.machine.processors > 0) {
    std::cout << ", P = " << spec.machine.processors;
  }
  if (spec.machine.quantum > 0) {
    std::cout << ", L = " << spec.machine.quantum;
  }
  if (spec.arrival.kind != abg::open::ArrivalKind::kNone) {
    std::cout << ", arrival " << abg::open::to_string(spec.arrival.kind);
  }
  std::cout << ")\n";
  return 0;
}

/// "path/to/cluster-day.jsonl" -> "cluster-day".
std::string filename_stem(const std::string& path) {
  const std::size_t slash = path.find_last_of("/\\");
  const std::size_t from = slash == std::string::npos ? 0 : slash + 1;
  const std::size_t dot = path.find_last_of('.');
  const std::size_t to =
      dot == std::string::npos || dot <= from ? path.size() : dot;
  return path.substr(from, to - from);
}

int import_scenario(const std::string& in_path, const std::string& out_path,
                    const std::string& name) {
  const std::string default_name =
      name.empty() ? filename_stem(in_path) : name;
  std::istringstream in(read_file(in_path));
  const abg::scenario::ScenarioSpec spec =
      abg::scenario::import_trace(in, default_name);
  spec.save_file(out_path);
  std::cout << "trace_check: imported " << in_path << " -> " << out_path
            << " (scenario '" << spec.name << "', "
            << spec.explicit_jobs.size() << " jobs)\n";
  return 0;
}

int export_scenario(const std::string& in_path, const std::string& out_path,
                    std::uint64_t seed, int processors,
                    abg::dag::Steps quantum) {
  const abg::scenario::ScenarioSpec spec = load_scenario(in_path);
  const int p = processors > 0 ? processors
              : spec.machine.processors > 0 ? spec.machine.processors
                                            : 128;
  const abg::dag::Steps l = quantum > 0 ? quantum
                          : spec.machine.quantum > 0 ? spec.machine.quantum
                                                     : 1000;
  abg::util::write_file_atomic(out_path, [&](std::ostream& out) {
    abg::util::Rng rng(seed);
    abg::scenario::export_trace(out, spec, rng, p, l);
  });
  std::cout << "trace_check: exported " << in_path << " -> " << out_path
            << " (scenario '" << spec.name << "', P = " << p << ", L = " << l
            << ", seed " << seed << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  const std::string target = args.size() >= 2 ? args[1] : "";
  try {
    if (args.size() >= 2 && args[0] == "trace") {
      return check_trace(args[1]);
    }
    if (args.size() >= 2 && args[0] == "metrics") {
      return check_metrics(args[1]);
    }
    if (args.size() >= 2 && args[0] == "profile") {
      return check_profile(
          args[1], std::vector<std::string>(args.begin() + 2, args.end()));
    }
    if (args.size() >= 2 && args[0] == "stats") {
      return check_stats(args[1]);
    }
    if (args.size() >= 2 && args[0] == "journal") {
      return check_journal(args[1]);
    }
    if (args.size() >= 2 && args[0] == "scenario") {
      return check_scenario(args[1]);
    }
    if (args.size() >= 3 && args[0] == "import") {
      std::string name;
      for (std::size_t i = 3; i < args.size(); ++i) {
        const std::string prefix = "--name=";
        if (args[i].rfind(prefix, 0) == 0) {
          name = args[i].substr(prefix.size());
        } else {
          std::cerr << "trace_check: unknown import option '" << args[i]
                    << "'\n";
          return 2;
        }
      }
      return import_scenario(args[1], args[2], name);
    }
    if (args.size() >= 3 && args[0] == "export") {
      std::uint64_t seed = 1;
      int processors = 0;
      abg::dag::Steps quantum = 0;
      for (std::size_t i = 3; i < args.size(); ++i) {
        const std::string& opt = args[i];
        const auto value_of = [&opt](const std::string& prefix) {
          return std::stoll(opt.substr(prefix.size()));
        };
        if (opt.rfind("--seed=", 0) == 0) {
          seed = static_cast<std::uint64_t>(value_of("--seed="));
        } else if (opt.rfind("--processors=", 0) == 0) {
          processors = static_cast<int>(value_of("--processors="));
        } else if (opt.rfind("--quantum=", 0) == 0) {
          quantum = value_of("--quantum=");
        } else {
          std::cerr << "trace_check: unknown export option '" << opt
                    << "'\n";
          return 2;
        }
      }
      return export_scenario(args[1], args[2], seed, processors, quantum);
    }
    if (args.size() >= 3 && args[0] == "bench") {
      double max_regress = 0.3;
      for (std::size_t i = 3; i < args.size(); ++i) {
        const std::string prefix = "--max-regress=";
        if (args[i].rfind(prefix, 0) == 0) {
          max_regress = std::stod(args[i].substr(prefix.size()));
        } else {
          std::cerr << "trace_check: unknown bench option '" << args[i]
                    << "'\n";
          return 2;
        }
      }
      if (max_regress < 0 || max_regress >= 1) {
        std::cerr << "trace_check: --max-regress must be in [0, 1)\n";
        return 2;
      }
      return check_bench(args[1], args[2], max_regress);
    }
    std::cerr
        << "usage: trace_check trace|metrics|profile|stats|journal|scenario "
           "FILE [SPAN...]\n"
           "       trace_check bench CURRENT BASELINE [--max-regress=R]\n"
           "       trace_check import IN.jsonl OUT.json [--name=X]\n"
           "       trace_check export SCENARIO.json OUT.jsonl [--seed=N] "
           "[--processors=P] [--quantum=L]\n";
    return 2;
  } catch (const MissingFileError& e) {
    std::cerr << "trace_check: " << target << ": " << e.what() << "\n";
    return 3;
  } catch (const std::invalid_argument& e) {
    // Json::parse rejects malformed documents with std::invalid_argument.
    std::cerr << "trace_check: " << target << ": parse error: " << e.what()
              << "\n";
    return 4;
  } catch (const std::exception& e) {
    // Structural invariant violations (InvariantError and the Json
    // accessors' logic/range errors on shape mismatches).
    std::cerr << "trace_check: " << target << ": " << e.what() << "\n";
    return 5;
  }
}
