// trace_check: structural validator for the observability artifacts.
//
// CI and ctest use this to prove that what the tools emit actually loads:
//
//   trace_check trace FILE     Chrome/Perfetto trace-event JSON: parses,
//                              has >= 1 named job track, >= 1 quantum
//                              slice per job track, and the d/a counter
//                              series the exporter promises.
//   trace_check metrics FILE   metrics-registry JSON: parses, has the
//                              counters/gauges/histograms sections, and
//                              every histogram carries a consistent count.
//   trace_check profile FILE [SPAN...]
//                              BENCH_profile.json: parses, every span has
//                              seconds/count/items/items_per_second, and
//                              each SPAN argument names an existing span.
//
// Prints one summary line on success; prints the failure and exits 1
// otherwise.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace {

using abg::util::Json;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error(what);
}

const Json& require(const Json& parent, const std::string& key) {
  const Json* found = parent.find(key);
  if (found == nullptr) {
    fail("missing required key '" + key + "'");
  }
  return *found;
}

int check_trace(const std::string& path) {
  const Json doc = Json::parse(read_file(path));
  const Json& events = require(doc, "traceEvents");
  if (!events.is_array()) {
    fail("traceEvents is not an array");
  }
  // Job tracks are announced as thread_name metadata ("job N (...)");
  // quantum slices are X events on the same tid.
  std::map<std::int64_t, std::string> job_tracks;
  std::map<std::int64_t, std::int64_t> slices_per_tid;
  std::set<std::string> counter_tracks;
  for (const Json& event : events.items()) {
    const std::string& phase = require(event, "ph").as_string();
    if (phase == "M" && require(event, "name").as_string() == "thread_name") {
      const std::string& label =
          require(require(event, "args"), "name").as_string();
      if (label.rfind("job ", 0) == 0) {
        job_tracks[require(event, "tid").as_integer()] = label;
      }
    } else if (phase == "X") {
      ++slices_per_tid[require(event, "tid").as_integer()];
      if (require(event, "dur").as_number() < 0) {
        fail("slice with negative duration");
      }
    } else if (phase == "C") {
      counter_tracks.insert(require(event, "name").as_string());
    }
  }
  if (job_tracks.empty()) {
    fail("no job tracks (thread_name metadata) found");
  }
  std::int64_t total_slices = 0;
  std::int64_t da_tracks = 0;
  for (const auto& [tid, label] : job_tracks) {
    const auto found = slices_per_tid.find(tid);
    if (found == slices_per_tid.end() || found->second == 0) {
      fail("track '" + label + "' has no quantum slices");
    }
    total_slices += found->second;
    // "job N d/a" counter series accompany every job track.
    const std::string job_id = label.substr(0, label.find(" ("));
    if (counter_tracks.count(job_id + " d/a") > 0) {
      ++da_tracks;
    }
  }
  if (da_tracks == 0) {
    fail("no 'job N d/a' counter tracks found");
  }
  std::cout << "trace_check: " << path << " ok (" << job_tracks.size()
            << " job tracks, " << total_slices << " slices, " << da_tracks
            << " d/a counter tracks)\n";
  return 0;
}

int check_metrics(const std::string& path) {
  const Json doc = Json::parse(read_file(path));
  const Json& counters = require(doc, "counters");
  const Json& gauges = require(doc, "gauges");
  const Json& histograms = require(doc, "histograms");
  if (!counters.is_object() || !gauges.is_object() ||
      !histograms.is_object()) {
    fail("counters/gauges/histograms must be objects");
  }
  for (const auto& [name, histogram] : histograms.members()) {
    const std::int64_t count = require(histogram, "count").as_integer();
    std::int64_t bucketed = 0;
    for (const Json& bucket : require(histogram, "buckets").items()) {
      bucketed += bucket.as_integer();
    }
    if (bucketed != count) {
      fail("histogram '" + name + "' buckets sum to " +
           std::to_string(bucketed) + " but count is " +
           std::to_string(count));
    }
  }
  std::cout << "trace_check: " << path << " ok (" << counters.size()
            << " counters, " << gauges.size() << " gauges, "
            << histograms.size() << " histograms)\n";
  return 0;
}

int check_profile(const std::string& path,
                  const std::vector<std::string>& required_spans) {
  const Json doc = Json::parse(read_file(path));
  if (require(doc, "benchmark").as_string() != "profile") {
    fail("benchmark field is not 'profile'");
  }
  const Json& spans = require(doc, "spans");
  for (const auto& [name, span] : spans.members()) {
    if (require(span, "seconds").as_number() < 0) {
      fail("span '" + name + "' has negative seconds");
    }
    require(span, "count");
    require(span, "items");
    require(span, "items_per_second");
  }
  for (const std::string& name : required_spans) {
    if (spans.find(name) == nullptr) {
      fail("required span '" + name + "' missing");
    }
  }
  std::cout << "trace_check: " << path << " ok (" << spans.size()
            << " spans)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.size() >= 2 && args[0] == "trace") {
      return check_trace(args[1]);
    }
    if (args.size() >= 2 && args[0] == "metrics") {
      return check_metrics(args[1]);
    }
    if (args.size() >= 2 && args[0] == "profile") {
      return check_profile(
          args[1], std::vector<std::string>(args.begin() + 2, args.end()));
    }
    std::cerr << "usage: trace_check trace|metrics|profile FILE [SPAN...]\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "trace_check: " << (args.size() >= 2 ? args[1] : "") << ": "
              << e.what() << "\n";
    return 1;
  }
}
