// run_monitored(): the durable sweep path — retry with backoff, watchdog
// deadlines, quarantine, journaling and resume — exercised at the library
// level with the RunSpec debug hooks standing in for flaky and hung runs.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "exp/journal.hpp"
#include "exp/result_sink.hpp"
#include "exp/runner.hpp"
#include "obs/metrics.hpp"
#include "util/cancel.hpp"

namespace abg::exp {
namespace {

std::vector<RunSpec> tiny_grid(int cells) {
  std::vector<RunSpec> specs;
  for (int i = 0; i < cells; ++i) {
    RunSpec spec;
    spec.scheduler = SchedulerKind::kAbg;
    spec.workload.kind = WorkloadKind::kSquareWave;
    spec.workload.jobs = 2;
    spec.workload.levels = 100;
    spec.machine = {.processors = 16, .quantum_length = 50};
    spec.seed_index = static_cast<std::uint64_t>(i);
    spec.group = "cell=" + std::to_string(i);
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::string jsonl_of(const std::vector<RunRecord>& records) {
  ResultSink sink("monitored_test", 2008);
  sink.add_all(records);
  std::ostringstream os;
  sink.write_jsonl(os);
  return os.str();
}

class ScratchFile {
 public:
  explicit ScratchFile(const std::string& name)
      : path_(testing::TempDir() + name) {
    std::remove(path_.c_str());
  }
  ~ScratchFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(RunMonitored, DefaultConfigMatchesLegacyRunByteForByte) {
  const std::vector<RunSpec> specs = tiny_grid(3);
  SweepConfig config;
  config.threads = 2;
  const SweepRunner runner(config);
  const std::vector<RunRecord> legacy = runner.run(specs);
  const SweepOutcome outcome = runner.run_monitored(specs);
  EXPECT_EQ(outcome.executed, 3);
  EXPECT_EQ(outcome.quarantined, 0);
  EXPECT_FALSE(outcome.interrupted);
  EXPECT_EQ(jsonl_of(outcome.records), jsonl_of(legacy));
}

TEST(RunMonitored, RetriesTransientFailureAndConverges) {
  std::vector<RunSpec> specs = tiny_grid(2);
  specs[1].debug.fail_attempts = 2;  // attempts 0 and 1 throw, 2 succeeds

  SweepConfig config;
  config.threads = 1;
  config.robustness.max_retries = 2;
  config.robustness.backoff_seconds = 0.001;
  obs::MetricsRegistry metrics;
  config.metrics = &metrics;
  const SweepOutcome outcome = SweepRunner(config).run_monitored(specs);

  EXPECT_EQ(outcome.retries, 2);
  EXPECT_EQ(outcome.quarantined, 0);
  EXPECT_EQ(metrics.counter("exp.retries").value(), 2);
  ASSERT_EQ(outcome.records.size(), 2u);
  EXPECT_TRUE(outcome.records[1].failure.empty());
  EXPECT_FALSE(outcome.records[1].metrics.empty());

  // The retried cell's record must equal a clean run's: failed attempts
  // leave no trace in results or metrics.
  SweepConfig clean_config;
  clean_config.threads = 1;
  const std::vector<RunRecord> clean =
      SweepRunner(clean_config).run(tiny_grid(2));
  EXPECT_EQ(jsonl_of(outcome.records), jsonl_of(clean));
}

TEST(RunMonitored, QuarantinesAfterRetryBudgetExhausted) {
  std::vector<RunSpec> specs = tiny_grid(2);
  specs[0].debug.fail_attempts = 99;

  SweepConfig config;
  config.threads = 2;
  config.robustness.max_retries = 1;
  config.robustness.backoff_seconds = 0.001;
  obs::MetricsRegistry metrics;
  config.metrics = &metrics;
  const SweepOutcome outcome = SweepRunner(config).run_monitored(specs);

  EXPECT_EQ(outcome.quarantined, 1);
  EXPECT_EQ(outcome.retries, 1);
  EXPECT_EQ(metrics.counter("exp.quarantined").value(), 1);
  ASSERT_EQ(outcome.records.size(), 2u);
  EXPECT_EQ(outcome.records[0].failure.rfind("error: ", 0), 0u);
  EXPECT_TRUE(outcome.records[0].metrics.empty());
  EXPECT_TRUE(outcome.records[1].failure.empty());

  // Quarantine is not interruption: the sweep covered every cell it could.
  EXPECT_FALSE(outcome.interrupted);
}

TEST(RunMonitored, WatchdogKillsHungRunAndQuarantinesIt) {
  std::vector<RunSpec> specs = tiny_grid(1);
  specs[0].debug.hang = true;

  SweepConfig config;
  config.threads = 1;
  config.robustness.run_timeout_seconds = 0.05;
  config.robustness.max_retries = 1;
  config.robustness.backoff_seconds = 0.001;
  obs::MetricsRegistry metrics;
  config.metrics = &metrics;
  const SweepOutcome outcome = SweepRunner(config).run_monitored(specs);

  EXPECT_EQ(outcome.timeouts, 2);  // first attempt + one retry
  EXPECT_EQ(outcome.quarantined, 1);
  EXPECT_EQ(metrics.counter("exp.timeouts").value(), 2);
  ASSERT_EQ(outcome.records.size(), 1u);
  EXPECT_EQ(outcome.records[0].failure, "timeout");
}

TEST(RunMonitored, ResumeSkipsCompletedCellsByteForByte) {
  const std::vector<RunSpec> specs = tiny_grid(3);
  ScratchFile journal_file("monitored_resume.jsonl");
  const std::uint64_t grid = grid_digest(specs, 2008);

  SweepConfig first_config;
  first_config.threads = 1;
  const std::vector<RunRecord> reference =
      SweepRunner(first_config).run(specs);

  // Journal only the first two cells, as an interrupted sweep would have.
  {
    RunJournal journal(journal_file.path(), 2008, specs.size(), grid);
    journal.record_done(0, spec_digest(specs[0]), reference[0]);
    journal.record_done(1, spec_digest(specs[1]), reference[1]);
  }
  const JournalReplay replay = load_journal(journal_file.path());

  SweepConfig config;
  config.threads = 2;
  config.robustness.resume = &replay;
  obs::MetricsRegistry metrics;
  config.metrics = &metrics;
  const SweepOutcome outcome = SweepRunner(config).run_monitored(specs);

  EXPECT_EQ(outcome.resumed, 2);
  EXPECT_EQ(outcome.executed, 1);
  EXPECT_EQ(metrics.counter("exp.resumed_cells").value(), 2);
  EXPECT_EQ(jsonl_of(outcome.records), jsonl_of(reference));
}

TEST(RunMonitored, PreFiredDrainSkipsEverything) {
  util::CancelToken drain;
  drain.cancel(util::CancelCause::kShutdown);

  SweepConfig config;
  config.threads = 2;
  config.robustness.drain = &drain;
  const SweepOutcome outcome =
      SweepRunner(config).run_monitored(tiny_grid(3));

  EXPECT_TRUE(outcome.interrupted);
  EXPECT_EQ(outcome.skipped, 3);
  EXPECT_EQ(outcome.executed, 0);
  for (const RunRecord& record : outcome.records) {
    EXPECT_EQ(record.run_id, -1);
  }
}

}  // namespace
}  // namespace abg::exp
