#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace abg::obs {
namespace {

TEST(Counter, AddsAndMerges) {
  Counter a;
  a.add();
  a.add(4);
  EXPECT_EQ(a.value(), 5);
  Counter b;
  b.add(7);
  a.merge(b);
  EXPECT_EQ(a.value(), 12);
}

TEST(Gauge, MergeTakesMaxAndRespectsUnset) {
  Gauge a;
  Gauge b;
  b.set(3.0);
  a.merge(b);
  EXPECT_TRUE(a.has_value());
  EXPECT_DOUBLE_EQ(a.value(), 3.0);

  Gauge lower;
  lower.set(1.0);
  a.merge(lower);
  EXPECT_DOUBLE_EQ(a.value(), 3.0);

  Gauge unset;
  a.merge(unset);
  EXPECT_DOUBLE_EQ(a.value(), 3.0);
}

TEST(HistogramTest, BucketsByPowerOfTwo) {
  Histogram h;
  h.observe(0.5);   // bucket 0 (< 1)
  h.observe(-2.0);  // clamps into bucket 0
  h.observe(1.0);   // bucket 1: [1, 2)
  h.observe(3.0);   // bucket 2: [2, 4)
  h.observe(4.0);   // bucket 3: [4, 8)
  EXPECT_EQ(h.bucket(0), 2);
  EXPECT_EQ(h.bucket(1), 1);
  EXPECT_EQ(h.bucket(2), 1);
  EXPECT_EQ(h.bucket(3), 1);
  EXPECT_EQ(h.count(), 5);
  EXPECT_DOUBLE_EQ(h.min(), -2.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
  EXPECT_DOUBLE_EQ(h.sum(), 6.5);
}

TEST(HistogramTest, EmptyStatsAreNaN) {
  const Histogram h;
  EXPECT_TRUE(std::isnan(h.min()));
  EXPECT_TRUE(std::isnan(h.max()));
  EXPECT_TRUE(std::isnan(h.mean()));
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));
}

TEST(HistogramTest, QuantileWithinFactorOfTwoAndClamped) {
  Histogram h;
  for (int i = 0; i < 100; ++i) {
    h.observe(10.0);
  }
  // All mass in [8, 16); the estimate is the bucket upper bound clamped to
  // the exact extrema.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 10.0);
}

MetricsRegistry sample_registry(int scale) {
  MetricsRegistry r;
  r.counter("runs").add(scale);
  r.counter("crashes").add(scale * 2);
  r.gauge("max_makespan").set(100.0 * scale);
  for (int i = 1; i <= scale * 4; ++i) {
    r.histogram("quantum.steps").observe(static_cast<double>(i));
  }
  return r;
}

TEST(MetricsRegistry, MergeIsCommutative) {
  // The sweep runner's determinism contract: merged registries must be
  // byte-identical regardless of merge order.
  const MetricsRegistry a = sample_registry(1);
  const MetricsRegistry b = sample_registry(3);
  const MetricsRegistry c = sample_registry(7);

  MetricsRegistry abc;
  abc.merge(a);
  abc.merge(b);
  abc.merge(c);
  MetricsRegistry cba;
  cba.merge(c);
  cba.merge(b);
  cba.merge(a);
  EXPECT_EQ(abc.to_json().dump(), cba.to_json().dump());

  MetricsRegistry assoc;
  MetricsRegistry bc;
  bc.merge(b);
  bc.merge(c);
  assoc.merge(a);
  assoc.merge(bc);
  EXPECT_EQ(abc.to_json().dump(), assoc.to_json().dump());
}

TEST(MetricsRegistry, SerializationShape) {
  MetricsRegistry r;
  EXPECT_TRUE(r.empty());
  r.counter("sim.runs").add();
  r.gauge("makespan").set(42.0);
  r.histogram("steps").observe(3.0);
  EXPECT_FALSE(r.empty());
  std::ostringstream out;
  r.write(out);
  EXPECT_EQ(out.str(),
            "{\"counters\":{\"sim.runs\":1},\"gauges\":{\"makespan\":42},"
            "\"histograms\":{\"steps\":{\"count\":1,\"sum\":3,\"min\":3,"
            "\"max\":3,\"mean\":3,\"p50\":3,\"p95\":3,\"buckets\":[0,0,1]}}}"
            "\n");
}

TEST(MetricsRegistry, KeysSerializeSorted) {
  MetricsRegistry r;
  r.counter("zeta").add();
  r.counter("alpha").add();
  const std::string text = r.to_json().dump();
  EXPECT_LT(text.find("alpha"), text.find("zeta"));
}

}  // namespace
}  // namespace abg::obs
