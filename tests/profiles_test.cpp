#include "workload/profiles.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace abg::workload {
namespace {

TEST(ConstantProfile, Shape) {
  const auto w = constant_profile(7, 5);
  EXPECT_EQ(w, (std::vector<dag::TaskCount>{7, 7, 7, 7, 7}));
}

TEST(ConstantProfile, ZeroLevelsIsEmpty) {
  EXPECT_TRUE(constant_profile(3, 0).empty());
}

TEST(ConstantProfile, Validation) {
  EXPECT_THROW(constant_profile(0, 5), std::invalid_argument);
  EXPECT_THROW(constant_profile(3, -1), std::invalid_argument);
}

TEST(ConstantParallelismChains, FullUtilizationBelowWidth) {
  // The chain job keeps utilization exact for any allotment <= width —
  // unlike the barrier profile, whose ceil(width/allotment) quantization
  // wastes partial steps.
  const auto job = constant_parallelism_chains(10, 50);
  EXPECT_EQ(job->total_work(), 500);
  EXPECT_EQ(job->critical_path(), 50);
  // Warm-up: first step only the 10 chain heads are ready.
  EXPECT_EQ(job->step(7, dag::PickOrder::kBreadthFirst), 7);
  // From then on, 7 processors always find 7 ready tasks.
  for (int s = 0; s < 30; ++s) {
    ASSERT_EQ(job->step(7, dag::PickOrder::kBreadthFirst), 7);
  }
}

TEST(ConstantParallelismChains, MeasuresWidthAsParallelism) {
  const auto job = constant_parallelism_chains(8, 100);
  // Execute one "quantum" of 40 steps at allotment 4: work 160, and the
  // measured parallelism T1/T∞ equals the width 8.
  const auto exec = job->run_quantum(4, 40, dag::PickOrder::kBreadthFirst);
  EXPECT_EQ(exec.work, 160);
  EXPECT_NEAR(static_cast<double>(exec.work) / exec.cpl, 8.0, 1e-9);
}

TEST(ConstantParallelismChains, Validation) {
  EXPECT_THROW(constant_parallelism_chains(0, 5), std::invalid_argument);
  EXPECT_THROW(constant_parallelism_chains(3, 0), std::invalid_argument);
}

TEST(StepProfile, Shape) {
  const auto w = step_profile(1, 2, 9, 3);
  EXPECT_EQ(w, (std::vector<dag::TaskCount>{1, 1, 9, 9, 9}));
}

TEST(RampProfile, EndsAtBothEndpoints) {
  const auto w = ramp_profile(2, 10, 5);
  ASSERT_EQ(w.size(), 5u);
  EXPECT_EQ(w.front(), 2);
  EXPECT_EQ(w.back(), 10);
  EXPECT_TRUE(std::is_sorted(w.begin(), w.end()));
}

TEST(RampProfile, DownwardRamp) {
  const auto w = ramp_profile(10, 2, 5);
  EXPECT_EQ(w.front(), 10);
  EXPECT_EQ(w.back(), 2);
  EXPECT_TRUE(std::is_sorted(w.rbegin(), w.rend()));
}

TEST(RampProfile, SingleLevel) {
  const auto w = ramp_profile(3, 9, 1);
  EXPECT_EQ(w, (std::vector<dag::TaskCount>{3}));
}

TEST(SquareWave, RepeatsPeriods) {
  const auto w = square_wave_profile(1, 1, 5, 2, 3);
  EXPECT_EQ(w, (std::vector<dag::TaskCount>{1, 5, 5, 1, 5, 5, 1, 5, 5}));
}

TEST(SquareWave, RejectsZeroPeriods) {
  EXPECT_THROW(square_wave_profile(1, 1, 5, 1, 0), std::invalid_argument);
}

TEST(RandomWalk, StaysInBounds) {
  util::Rng rng(3);
  const auto w = random_walk_profile(rng, 500, 64, 2.0);
  ASSERT_EQ(w.size(), 500u);
  for (const auto x : w) {
    EXPECT_GE(x, 1);
    EXPECT_LE(x, 64);
  }
}

TEST(RandomWalk, StepRatioBounded) {
  util::Rng rng(9);
  const auto w = random_walk_profile(rng, 300, 128, 1.5);
  for (std::size_t i = 1; i < w.size(); ++i) {
    const double ratio = static_cast<double>(w[i]) /
                         static_cast<double>(w[i - 1]);
    // Rounding can push slightly past the multiplicative step bound.
    EXPECT_LE(ratio, 1.5 + 0.51);
    EXPECT_GE(ratio, 1.0 / (1.5 + 0.51));
  }
}

TEST(RandomWalk, Deterministic) {
  util::Rng a(21);
  util::Rng b(21);
  EXPECT_EQ(random_walk_profile(a, 100, 32, 2.0),
            random_walk_profile(b, 100, 32, 2.0));
}

TEST(RandomWalk, Validation) {
  util::Rng rng(1);
  EXPECT_THROW(random_walk_profile(rng, -1, 8, 2.0), std::invalid_argument);
  EXPECT_THROW(random_walk_profile(rng, 5, 0, 2.0), std::invalid_argument);
  EXPECT_THROW(random_walk_profile(rng, 5, 8, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace abg::workload
