#include "metrics/lower_bounds.hpp"

#include <gtest/gtest.h>

namespace abg::metrics {
namespace {

TEST(MakespanLowerBound, WorkDominates) {
  // Total work 1000 on 10 processors: at least 100 steps, which exceeds
  // every individual span.
  const std::vector<JobSummary> jobs{{500, 10, 0}, {500, 20, 0}};
  EXPECT_DOUBLE_EQ(makespan_lower_bound(jobs, 10), 100.0);
}

TEST(MakespanLowerBound, CriticalPathDominates) {
  const std::vector<JobSummary> jobs{{10, 10, 0}, {10, 500, 0}};
  EXPECT_DOUBLE_EQ(makespan_lower_bound(jobs, 10), 500.0);
}

TEST(MakespanLowerBound, ReleaseTimesShiftSpans) {
  const std::vector<JobSummary> jobs{{10, 50, 0}, {10, 50, 200}};
  EXPECT_DOUBLE_EQ(makespan_lower_bound(jobs, 100), 250.0);
}

TEST(MakespanLowerBound, SingleJob) {
  const std::vector<JobSummary> jobs{{1000, 10, 0}};
  EXPECT_DOUBLE_EQ(makespan_lower_bound(jobs, 4), 250.0);
}

TEST(MakespanLowerBound, ValidatesInput) {
  EXPECT_THROW(makespan_lower_bound({}, 4), std::invalid_argument);
  EXPECT_THROW(makespan_lower_bound({{1, 1, 0}}, 0), std::invalid_argument);
}

TEST(ResponseLowerBound, CriticalPathTerm) {
  // Tiny work, long critical paths: bound is the mean critical path.
  const std::vector<JobSummary> jobs{{10, 100, 0}, {10, 300, 0}};
  EXPECT_DOUBLE_EQ(response_lower_bound(jobs, 1000), 200.0);
}

TEST(ResponseLowerBound, SquashedAreaTerm) {
  // Heavy work, trivial critical paths.  Works {100, 300} on P = 10 in
  // SPT order: completions 10 and 40; mean 25.
  const std::vector<JobSummary> jobs{{300, 1, 0}, {100, 1, 0}};
  EXPECT_DOUBLE_EQ(response_lower_bound(jobs, 10), 25.0);
}

TEST(ResponseLowerBound, SquashedAreaSortsByWork) {
  // Same multiset of works in any submission order gives the same bound.
  const std::vector<JobSummary> a{{100, 1, 0}, {300, 1, 0}, {200, 1, 0}};
  const std::vector<JobSummary> b{{300, 1, 0}, {200, 1, 0}, {100, 1, 0}};
  EXPECT_DOUBLE_EQ(response_lower_bound(a, 10), response_lower_bound(b, 10));
}

TEST(ResponseLowerBound, TakesMaxOfBothTerms) {
  // CPL term: (100 + 2)/2 = 51.  Squashed: works {10, 1000} on 10:
  // (1 + 101)/2 = 51... tune so squashed wins: works {10, 2000}:
  // (1 + 201)/2 = 101.
  const std::vector<JobSummary> jobs{{10, 100, 0}, {2000, 2, 0}};
  EXPECT_DOUBLE_EQ(response_lower_bound(jobs, 10), 101.0);
}

TEST(ResponseLowerBound, ValidatesInput) {
  EXPECT_THROW(response_lower_bound({}, 4), std::invalid_argument);
  EXPECT_THROW(response_lower_bound({{1, 1, 0}}, -1), std::invalid_argument);
}

TEST(LowerBounds, MakespanAtLeastMeanResponseForBatched) {
  // For batched jobs the makespan is at least any single completion, so
  // M* >= mean critical path is not guaranteed in general, but M* >= the
  // largest critical path always holds; check internal consistency.
  const std::vector<JobSummary> jobs{{50, 30, 0}, {60, 40, 0}, {10, 5, 0}};
  const double m = makespan_lower_bound(jobs, 8);
  EXPECT_GE(m, 40.0);
  EXPECT_GE(m, (50.0 + 60.0 + 10.0) / 8.0);
}

}  // namespace
}  // namespace abg::metrics
