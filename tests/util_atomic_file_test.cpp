#include "util/atomic_file.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace abg::util {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(AtomicFile, WritesContentAndLeavesNoTempBehind) {
  const std::string path = testing::TempDir() + "atomic_write.txt";
  std::remove(path.c_str());
  write_file_atomic(path, [](std::ostream& os) { os << "hello\nworld\n"; });
  EXPECT_EQ(slurp(path), "hello\nworld\n");

  // No .tmp.* sibling may survive a successful write.
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  for (const auto& entry : std::filesystem::directory_iterator(parent)) {
    EXPECT_EQ(entry.path().string().find("atomic_write.txt.tmp"),
              std::string::npos)
        << "leftover temp file: " << entry.path();
  }
  std::remove(path.c_str());
}

TEST(AtomicFile, ReplacesExistingFileCompletely) {
  const std::string path = testing::TempDir() + "atomic_replace.txt";
  write_file_atomic(path,
                    [](std::ostream& os) { os << "a much longer first body"; });
  write_file_atomic(path, [](std::ostream& os) { os << "short"; });
  EXPECT_EQ(slurp(path), "short");
  std::remove(path.c_str());
}

TEST(AtomicFile, UnwritablePathThrowsNamingThePath) {
  const std::string path = "/nonexistent-dir-abg/out.json";
  try {
    write_file_atomic(path, [](std::ostream& os) { os << "x"; });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << "diagnostic must name the path: " << e.what();
  }
}

TEST(AtomicFile, ProbeWritableAcceptsWritableDirAndCleansUp) {
  const std::string path = testing::TempDir() + "probe_target.json";
  EXPECT_NO_THROW(probe_writable(path));
  // The probe must not create the target (the sweep has not produced it
  // yet) nor leave its temp file behind.
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(AtomicFile, ProbeWritableRejectsUnwritablePathNamingIt) {
  const std::string path = "/nonexistent-dir-abg/out.json";
  try {
    probe_writable(path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
}

}  // namespace
}  // namespace abg::util
