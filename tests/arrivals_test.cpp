#include "workload/arrivals.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "core/run.hpp"
#include "dag/profile_job.hpp"
#include "metrics/lower_bounds.hpp"
#include "workload/profiles.hpp"

namespace abg::workload {
namespace {

TEST(Arrivals, BatchedAllZero) {
  const auto releases = batched_releases(5);
  ASSERT_EQ(releases.size(), 5u);
  for (const auto r : releases) {
    EXPECT_EQ(r, 0);
  }
  EXPECT_TRUE(batched_releases(0).empty());
}

TEST(Arrivals, StaggeredEvenlySpaced) {
  const auto releases = staggered_releases(4, 100);
  EXPECT_EQ(releases, (std::vector<dag::Steps>{0, 100, 200, 300}));
}

TEST(Arrivals, StaggeredZeroGapIsBatched) {
  EXPECT_EQ(staggered_releases(3, 0), batched_releases(3));
}

TEST(Arrivals, StaggeredRejectsNegativeGap) {
  EXPECT_THROW(staggered_releases(3, -1), std::invalid_argument);
}

TEST(Arrivals, StaggeredRejectsOverflowingSchedule) {
  // (jobs - 1) * gap must fit in the step counter; the last release of
  // this schedule would wrap to a negative step.
  const dag::Steps huge = std::numeric_limits<dag::Steps>::max() / 2 + 1;
  EXPECT_THROW(staggered_releases(3, huge), std::invalid_argument);
  // The boundary itself is fine: one job never multiplies the gap.
  EXPECT_EQ(staggered_releases(1, huge), (std::vector<dag::Steps>{0}));
}

TEST(Arrivals, PoissonMonotoneFromZero) {
  util::Rng rng(5);
  const auto releases = poisson_releases(rng, 50, 200.0);
  ASSERT_EQ(releases.size(), 50u);
  EXPECT_EQ(releases.front(), 0);
  EXPECT_TRUE(std::is_sorted(releases.begin(), releases.end()));
}

TEST(Arrivals, PoissonMeanGapRoughlyCorrect) {
  util::Rng rng(9);
  const auto releases = poisson_releases(rng, 2000, 100.0);
  const double mean_gap =
      static_cast<double>(releases.back()) /
      static_cast<double>(releases.size() - 1);
  EXPECT_NEAR(mean_gap, 100.0, 15.0);
}

TEST(Arrivals, PoissonDeterministic) {
  util::Rng a(3);
  util::Rng b(3);
  EXPECT_EQ(poisson_releases(a, 20, 50.0), poisson_releases(b, 20, 50.0));
}

TEST(Arrivals, PoissonRejectsBadMean) {
  util::Rng rng(1);
  EXPECT_THROW(poisson_releases(rng, 3, 0.0), std::invalid_argument);
  EXPECT_THROW(poisson_releases(rng, 3, -1.0), std::invalid_argument);
  // Sub-step means would silently degenerate to batched release (gaps are
  // whole steps), and huge means would overflow the truncation bound.
  EXPECT_THROW(poisson_releases(rng, 3, 0.5), std::invalid_argument);
  EXPECT_THROW(poisson_releases(rng, 3, 2e12), std::invalid_argument);
  EXPECT_NO_THROW(poisson_releases(rng, 3, 1.0));
}

TEST(Arrivals, StaggeredJobsFinishInArrivalFriendlyOrder) {
  // End-to-end: identical jobs released far apart complete in release
  // order, and each sees a lightly loaded machine.
  std::vector<sim::JobSubmission> subs;
  const auto releases = staggered_releases(3, 1000);
  for (std::size_t i = 0; i < 3; ++i) {
    sim::JobSubmission s;
    s.job = std::make_unique<dag::ProfileJob>(constant_profile(4, 200));
    s.release_step = releases[i];
    subs.push_back(std::move(s));
  }
  const auto result = core::run_set(
      core::abg_spec(), std::move(subs),
      sim::SimConfig{.processors = 32, .quantum_length = 50});
  EXPECT_LT(result.jobs[0].completion_step, result.jobs[1].completion_step);
  EXPECT_LT(result.jobs[1].completion_step, result.jobs[2].completion_step);
  for (const auto& t : result.jobs) {
    // Far-apart releases: each job runs essentially alone.
    EXPECT_LE(t.response_time(), 3 * t.critical_path);
  }
  // The makespan lower bound with releases is respected.
  std::vector<metrics::JobSummary> summaries;
  for (std::size_t i = 0; i < 3; ++i) {
    summaries.push_back(metrics::JobSummary{
        result.jobs[i].work, result.jobs[i].critical_path, releases[i]});
  }
  EXPECT_GE(static_cast<double>(result.makespan),
            metrics::makespan_lower_bound(summaries, 32));
}

}  // namespace
}  // namespace abg::workload
