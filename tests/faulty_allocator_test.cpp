// FaultyAllocator decorator: transparency with no active faults, capacity
// shrinking, revocation clamping, and clone semantics.
#include "fault/faulty_allocator.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "alloc/equipartition.hpp"
#include "fault/fault_injector.hpp"

namespace abg::fault {
namespace {

TEST(FaultyAllocator, TransparentWithoutActiveFaults) {
  alloc::EquiPartition inner;
  alloc::EquiPartition reference;
  FaultInjector injector((FaultPlan()));
  FaultyAllocator wrapped(inner, injector);

  const std::vector<int> requests{5, 9, 2, 0};
  EXPECT_EQ(wrapped.allocate(requests, 12),
            reference.allocate(requests, 12));
  EXPECT_EQ(wrapped.pool(12), reference.pool(12));
  EXPECT_EQ(wrapped.last_revoked(), 0);
  EXPECT_EQ(wrapped.name(), "faulty(equi-partition)");
}

TEST(FaultyAllocator, FailuresShrinkTheMachine) {
  alloc::EquiPartition inner;
  FaultInjector injector(step_failure_plan(0, 5));
  injector.advance(0, 10);
  FaultyAllocator wrapped(inner, injector);

  const std::vector<int> requests{8, 8, 8};
  const std::vector<int> allotments = wrapped.allocate(requests, 12);
  EXPECT_EQ(std::accumulate(allotments.begin(), allotments.end(), 0), 7);
  EXPECT_EQ(wrapped.pool(12), 7);
}

TEST(FaultyAllocator, RevocationClampsTheVictimOnly) {
  alloc::EquiPartition inner;
  FaultPlan plan;
  FaultEvent revoke;
  revoke.step = 0;
  revoke.kind = FaultKind::kAllotmentRevocation;
  revoke.job = 1;
  revoke.cap = 1;
  revoke.duration = 100;
  plan.events.push_back(revoke);
  FaultInjector injector(plan);
  injector.advance(0, 10);
  FaultyAllocator wrapped(inner, injector);

  const std::vector<int> requests{4, 4, 4};
  const std::vector<int> allotments = wrapped.allocate(requests, 12);
  ASSERT_EQ(allotments.size(), 3u);
  EXPECT_EQ(allotments[0], 4);
  EXPECT_EQ(allotments[1], 1);
  EXPECT_EQ(allotments[2], 4);
  EXPECT_EQ(wrapped.last_revoked(), 3);

  // The conservative invariant survives the clamp.
  for (std::size_t i = 0; i < allotments.size(); ++i) {
    EXPECT_LE(allotments[i], requests[i]);
    EXPECT_GE(allotments[i], 0);
  }
}

TEST(FaultyAllocator, CloneSharesTheInjector) {
  alloc::EquiPartition inner;
  FaultInjector injector(step_failure_plan(0, 2));
  injector.advance(0, 10);
  FaultyAllocator wrapped(inner, injector);
  const auto copy = wrapped.clone();

  const std::vector<int> requests{6, 6};
  EXPECT_EQ(copy->allocate(requests, 8), wrapped.allocate(requests, 8));
  EXPECT_EQ(copy->pool(8), 6);
  EXPECT_EQ(copy->name(), wrapped.name());
}

TEST(FaultyAllocator, ResetClearsRevocationCounter) {
  alloc::EquiPartition inner;
  FaultPlan plan;
  FaultEvent revoke;
  revoke.kind = FaultKind::kAllotmentRevocation;
  revoke.job = 0;
  revoke.cap = 0;
  revoke.duration = 50;
  plan.events.push_back(revoke);
  FaultInjector injector(plan);
  injector.advance(0, 10);
  FaultyAllocator wrapped(inner, injector);
  wrapped.allocate({3}, 4);
  EXPECT_GT(wrapped.last_revoked(), 0);
  wrapped.reset();
  EXPECT_EQ(wrapped.last_revoked(), 0);
}

}  // namespace
}  // namespace abg::fault
