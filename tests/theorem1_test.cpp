// Theorem 1, verified end-to-end: when ABG schedules a job whose average
// parallelism stays constant at A, the request sequence satisfies
// (1) BIBO stability, (2) zero steady-state error, (3) zero overshoot and
// (4) convergence at the configured rate r — both symbolically on the
// closed-loop transfer function and empirically on the actual scheduler
// driving an actual job.
#include <gtest/gtest.h>

#include <tuple>

#include "alloc/unconstrained.hpp"
#include "control/analysis.hpp"
#include "control/closed_loop.hpp"
#include "core/run.hpp"
#include "dag/profile_job.hpp"
#include "sim/quantum_engine.hpp"
#include "workload/profiles.hpp"

namespace abg {
namespace {

class Theorem1 : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(Theorem1, SymbolicProperties) {
  const auto [rate, parallelism] = GetParam();
  const double a = static_cast<double>(parallelism);
  const control::TransferFunction loop =
      control::abg_closed_loop(control::theorem1_gain(rate, a), a);
  if (rate == 0.0) {
    // Pole at the origin: deadbeat (one-step) convergence.
    ASSERT_EQ(loop.poles().size(), 1u);
    EXPECT_NEAR(std::abs(loop.poles()[0]), 0.0, 1e-12);
  }
  EXPECT_TRUE(control::is_bibo_stable(loop));
  EXPECT_NEAR(control::steady_state_error(loop), 0.0, 1e-12);
}

TEST_P(Theorem1, EmpiricalRequestSeries) {
  const auto [rate, parallelism] = GetParam();
  // A constant-parallelism job: every level has the same width, so the
  // measured A(q) is the width in every full quantum.
  const dag::Steps quantum_length = 100;
  const dag::Steps levels = 40 * quantum_length;
  dag::ProfileJob job(
      workload::constant_profile(parallelism, levels));

  const core::SchedulerSpec abg =
      core::abg_spec(core::AbgConfig{.convergence_rate = rate});
  const sim::JobTrace trace = core::run_single(
      abg, job,
      sim::SingleJobConfig{.processors = 4 * parallelism,
                           .quantum_length = quantum_length});
  ASSERT_TRUE(trace.finished());

  // Drop the final (possibly non-full) quantum from the analysis.
  std::vector<double> requests = trace.request_series();
  ASSERT_GE(requests.size(), 8u);
  requests.pop_back();

  // rate_floor 4: request errors within integer-rounding distance carry no
  // information about the contraction rate.
  const control::StepResponseMetrics m = control::analyze_series(
      requests, static_cast<double>(parallelism), /*settle_tolerance=*/0.02,
      /*rate_floor=*/4.0);
  EXPECT_TRUE(m.settled) << "requests never settled at A";
  EXPECT_LE(m.steady_state_error, 0.5 + 0.01 * parallelism);
  EXPECT_NEAR(m.max_overshoot, 0.0, 0.51);  // integer rounding only
  // Measured contraction can exceed r slightly due to integer rounding of
  // requests; allow a small margin.
  EXPECT_LE(m.convergence_rate, rate + 0.1);
  // No A-Greedy-style oscillation: the settled tail stays within the
  // 2% settle band (plus integer rounding), far below A-Greedy's ~0.8·A
  // ping-pong.
  EXPECT_LT(m.residual_oscillation, 0.05 * parallelism + 1.01);
}

INSTANTIATE_TEST_SUITE_P(
    RatesAndParallelism, Theorem1,
    ::testing::Combine(::testing::Values(0.0, 0.2, 0.5),
                       ::testing::Values(5, 10, 32, 100)),
    [](const auto& param_info) {
      const double rate = std::get<0>(param_info.param);
      const int parallelism = std::get<1>(param_info.param);
      return "R" + std::to_string(static_cast<int>(rate * 10)) + "A" +
             std::to_string(parallelism);
    });

TEST(Theorem1Contrast, AGreedyViolatesStability) {
  // The same constant-parallelism job under A-Greedy: the request series
  // oscillates and never settles (Figure 4(b)).
  const dag::Steps quantum_length = 100;
  const auto job =
      workload::constant_parallelism_chains(10, 30 * quantum_length);
  const core::SchedulerSpec ag = core::a_greedy_spec();
  const sim::JobTrace trace = core::run_single(
      ag, *job,
      sim::SingleJobConfig{.processors = 64,
                           .quantum_length = quantum_length});
  ASSERT_TRUE(trace.finished());
  std::vector<double> requests = trace.request_series();
  requests.pop_back();
  const control::StepResponseMetrics m =
      control::analyze_series(requests, 10.0);
  EXPECT_FALSE(m.settled);
  // A-Greedy ping-pongs between two desires a factor rho apart (here the
  // barrier quantization locks it onto 4 <-> 8).
  EXPECT_GE(m.residual_oscillation, 3.0);
  EXPECT_GT(m.max_overshoot, 1.5);
}

}  // namespace
}  // namespace abg
