#include "metrics/parallelism_stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.hpp"

namespace abg::metrics {
namespace {

sched::QuantumStats quantum(double parallelism, bool full = true) {
  sched::QuantumStats q;
  q.length = 100;
  q.steps_used = 100;
  q.cpl = 10.0;
  q.work = static_cast<dag::TaskCount>(std::llround(parallelism * 10.0));
  q.allotment = 1;
  q.full = full;
  return q;
}

sim::JobTrace trace_of(std::initializer_list<double> parallelism) {
  sim::JobTrace t;
  for (const double a : parallelism) {
    t.quanta.push_back(quantum(a));
  }
  return t;
}

TEST(TransitionFactorSeries, ConstantSeriesSeededByInitial) {
  // A(0) = 1 and A(q) = 4: the first transition contributes factor 4.
  EXPECT_DOUBLE_EQ(transition_factor_of_series({4.0, 4.0, 4.0}), 4.0);
}

TEST(TransitionFactorSeries, WithoutSeedConstantIsOne) {
  EXPECT_DOUBLE_EQ(transition_factor_of_series({4.0, 4.0, 4.0}, false), 1.0);
}

TEST(TransitionFactorSeries, MaxOfUpAndDownRatios) {
  // 2 -> 6 is x3; 6 -> 1 is /6: factor 6.
  EXPECT_DOUBLE_EQ(transition_factor_of_series({2.0, 6.0, 1.0}, false), 6.0);
}

TEST(TransitionFactorSeries, EmptySeries) {
  EXPECT_DOUBLE_EQ(transition_factor_of_series({}, true), 1.0);
  EXPECT_DOUBLE_EQ(transition_factor_of_series({}, false), 1.0);
}

TEST(TransitionFactorSeries, RejectsNonPositive) {
  EXPECT_THROW(transition_factor_of_series({1.0, 0.0}),
               std::invalid_argument);
}

TEST(EmpiricalTransitionFactor, UsesOnlyFullQuanta) {
  sim::JobTrace t;
  t.quanta.push_back(quantum(2.0));
  t.quanta.push_back(quantum(100.0, /*full=*/false));  // ignored
  t.quanta.push_back(quantum(4.0));
  // Ratios considered: 1->2 (A(0)=1) and 2->4.
  EXPECT_DOUBLE_EQ(empirical_transition_factor(t), 2.0);
}

TEST(EmpiricalTransitionFactor, EmptyTraceIsOne) {
  sim::JobTrace t;
  EXPECT_DOUBLE_EQ(empirical_transition_factor(t), 1.0);
}

TEST(EmpiricalTransitionFactor, SquareWaveMeasuresSwing) {
  const sim::JobTrace t = trace_of({1.0, 8.0, 1.0, 8.0});
  EXPECT_DOUBLE_EQ(empirical_transition_factor(t), 8.0);
}

TEST(ChangeFrequency, CountsRelativeChanges) {
  // Pairs: 4->4 (0%), 4->8 (100%), 8->8.4 (5%): one change above 10%.
  const sim::JobTrace t = trace_of({4.0, 4.0, 8.0, 8.4});
  EXPECT_DOUBLE_EQ(parallelism_change_frequency(t, 0.1), 1.0 / 3.0);
}

TEST(ChangeFrequency, ThresholdZeroCountsAnyChange) {
  const sim::JobTrace t = trace_of({4.0, 4.0, 8.0, 8.4});
  EXPECT_DOUBLE_EQ(parallelism_change_frequency(t, 0.0), 2.0 / 3.0);
}

TEST(ChangeFrequency, ShortTracesAreZero) {
  EXPECT_DOUBLE_EQ(parallelism_change_frequency(trace_of({4.0}), 0.1), 0.0);
  EXPECT_DOUBLE_EQ(parallelism_change_frequency(sim::JobTrace{}, 0.1), 0.0);
}

TEST(ChangeFrequency, RejectsNegativeThreshold) {
  EXPECT_THROW(parallelism_change_frequency(trace_of({1.0, 2.0}), -0.1),
               std::invalid_argument);
}

TEST(ParallelismVariance, ConstantIsZero) {
  EXPECT_DOUBLE_EQ(parallelism_variance(trace_of({5.0, 5.0, 5.0})), 0.0);
}

TEST(ParallelismVariance, MatchesRunningStats) {
  const sim::JobTrace t = trace_of({2.0, 4.0, 6.0, 8.0});
  util::RunningStats expected;
  for (const double a : {2.0, 4.0, 6.0, 8.0}) {
    expected.add(a);
  }
  EXPECT_NEAR(parallelism_variance(t), expected.variance(), 1e-12);
}

TEST(ParallelismVariance, FewerThanTwoFullQuanta) {
  EXPECT_DOUBLE_EQ(parallelism_variance(trace_of({7.0})), 0.0);
}

}  // namespace
}  // namespace abg::metrics
