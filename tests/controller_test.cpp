#include "control/controller.hpp"

#include <gtest/gtest.h>

#include "sched/a_control.hpp"

namespace abg::control {
namespace {

TEST(IntegralController, AccumulatesScaledError) {
  IntegralController c(2.0, 1.0);
  EXPECT_DOUBLE_EQ(c.update(0.5), 2.0);   // 1 + 2*0.5
  EXPECT_DOUBLE_EQ(c.update(-1.0), 0.0);  // 2 - 2
  EXPECT_DOUBLE_EQ(c.output(), 0.0);
}

TEST(IntegralController, GainCanBeRetuned) {
  IntegralController c(1.0, 0.0);
  c.set_gain(10.0);
  EXPECT_DOUBLE_EQ(c.gain(), 10.0);
  EXPECT_DOUBLE_EQ(c.update(1.0), 10.0);
}

TEST(IntegralController, ResetRestoresOutput) {
  IntegralController c(1.0, 5.0);
  c.update(3.0);
  c.reset(5.0);
  EXPECT_DOUBLE_EQ(c.output(), 5.0);
}

TEST(SelfTuningRegulator, RejectsEmptySchedule) {
  EXPECT_THROW(
      SelfTuningRegulator(SelfTuningRegulator::GainSchedule{}, 1.0, 1.0),
      std::invalid_argument);
}

TEST(SelfTuningRegulator, RejectsNonPositiveMeasurement) {
  SelfTuningRegulator reg([](double a) { return a; }, 1.0, 1.0);
  EXPECT_THROW(reg.update(0.0), std::invalid_argument);
  EXPECT_THROW(reg.update(-1.0), std::invalid_argument);
}

TEST(SelfTuningRegulator, ReducesToEquation3WithTheorem1Schedule) {
  // The general self-tuning regulator with K = (1-r)A and setpoint 1 must
  // produce exactly the Equation 3 recurrence d(q+1) = r d(q) + (1-r) A(q).
  const double r = 0.2;
  SelfTuningRegulator reg([r](double a) { return (1.0 - r) * a; }, 1.0, 1.0);
  double expected = 1.0;
  for (const double a : {10.0, 10.0, 40.0, 3.0, 3.0, 3.0}) {
    const double out = reg.update(a);
    expected = r * expected + (1.0 - r) * a;
    EXPECT_NEAR(out, expected, 1e-12);
  }
}

TEST(SelfTuningRegulator, MatchesAControlImplementation) {
  // Cross-check the scheduling-specific AControlRequest against the
  // general control-theoretic regulator on the same measurement stream.
  const double r = 0.35;
  SelfTuningRegulator reg([r](double a) { return (1.0 - r) * a; }, 1.0, 1.0);
  sched::AControlRequest policy(sched::AControlConfig{r});
  for (const double a : {6.0, 12.5, 12.5, 2.0, 80.0, 80.0, 80.0}) {
    sched::QuantumStats q;
    q.length = 100;
    q.cpl = 4.0;
    q.work = static_cast<dag::TaskCount>(a * q.cpl);
    policy.next_request(q);
    const double regulated = reg.update(q.average_parallelism());
    EXPECT_NEAR(policy.desire(), regulated, 1e-12);
  }
}

TEST(SelfTuningRegulator, ResetRestoresInitialOutput) {
  SelfTuningRegulator reg([](double a) { return a; }, 1.0, 1.0);
  reg.update(10.0);
  reg.reset(1.0);
  EXPECT_DOUBLE_EQ(reg.output(), 1.0);
}

}  // namespace
}  // namespace abg::control
