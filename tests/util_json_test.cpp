#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

namespace abg::util {
namespace {

TEST(JsonWrite, NullRendersAsLiteral) {
  EXPECT_EQ(Json::null().dump(), "null");
  EXPECT_EQ(Json::object().set("x", Json::null()).dump(), "{\"x\":null}");
}

TEST(JsonWrite, NanRendersAsNull) {
  EXPECT_EQ(Json::number(std::nan("")).dump(), "null");
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_boolean());
  EXPECT_FALSE(Json::parse("false").as_boolean());
  EXPECT_EQ(Json::parse("-42").as_integer(), -42);
  EXPECT_DOUBLE_EQ(Json::parse("2.5e2").as_number(), 250.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, IntegerWidensToNumberOnDemand) {
  const Json v = Json::parse("7");
  EXPECT_TRUE(v.is_integer());
  EXPECT_DOUBLE_EQ(v.as_number(), 7.0);
}

TEST(JsonParse, ObjectAndArrayAccessors) {
  const Json doc = Json::parse(
      R"({"name":"abg","runs":[1,2,3],"meta":{"ok":true},"gap":null})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.size(), 4u);
  EXPECT_EQ(doc.at("name").as_string(), "abg");
  ASSERT_TRUE(doc.at("runs").is_array());
  EXPECT_EQ(doc.at("runs").size(), 3u);
  EXPECT_EQ(doc.at("runs").at(std::size_t{1}).as_integer(), 2);
  EXPECT_TRUE(doc.at("meta").at("ok").as_boolean());
  EXPECT_TRUE(doc.at("gap").is_null());
  EXPECT_EQ(doc.find("absent"), nullptr);
  EXPECT_THROW(doc.at("absent"), std::out_of_range);
  EXPECT_THROW(doc.at("runs").at(std::size_t{3}), std::out_of_range);
}

TEST(JsonParse, MembersKeepInsertionOrder) {
  const Json doc = Json::parse(R"({"b":1,"a":2})");
  ASSERT_EQ(doc.members().size(), 2u);
  EXPECT_EQ(doc.members()[0].first, "b");
  EXPECT_EQ(doc.members()[1].first, "a");
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(Json::parse(R"("a\"b\\c\nd\te")").as_string(), "a\"b\\c\nd\te");
  EXPECT_EQ(Json::parse(R"("\u0041")").as_string(), "A");
  // U+00E9 (é) as a two-byte UTF-8 sequence.
  EXPECT_EQ(Json::parse(R"("\u00e9")").as_string(), "\xC3\xA9");
  // Surrogate pair for U+1F600.
  EXPECT_EQ(Json::parse(R"("\ud83d\ude00")").as_string(),
            "\xF0\x9F\x98\x80");
}

TEST(JsonParse, RoundTripsWriterOutput) {
  Json original = Json::object();
  original.set("label", Json::string("q=100 \"sync\""))
      .set("count", Json::integer(12))
      .set("ratio", Json::number(0.125))
      .set("flags", Json::array()
                        .push(Json::boolean(true))
                        .push(Json::null())
                        .push(Json::integer(-3)));
  const std::string text = original.dump();
  EXPECT_EQ(Json::parse(text).dump(), text);
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), std::invalid_argument);
  EXPECT_THROW(Json::parse("{"), std::invalid_argument);
  EXPECT_THROW(Json::parse("[1,]"), std::invalid_argument);
  EXPECT_THROW(Json::parse("{\"a\":1,}"), std::invalid_argument);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), std::invalid_argument);
  EXPECT_THROW(Json::parse("\"unterminated"), std::invalid_argument);
  EXPECT_THROW(Json::parse("nul"), std::invalid_argument);
  EXPECT_THROW(Json::parse("1 2"), std::invalid_argument);
  EXPECT_THROW(Json::parse("\"\\ud83d\""), std::invalid_argument);
  EXPECT_THROW(Json::parse("--1"), std::invalid_argument);
}

TEST(JsonParse, RejectsExcessiveNesting) {
  const std::string deep(100, '[');
  EXPECT_THROW(Json::parse(deep + std::string(100, ']')),
               std::invalid_argument);
}

TEST(JsonParse, ErrorsCarryByteOffset) {
  try {
    Json::parse("[1, oops]");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("at byte"), std::string::npos);
  }
}

TEST(JsonAccessors, KindMismatchesThrow) {
  EXPECT_THROW(Json::integer(1).as_string(), std::logic_error);
  EXPECT_THROW(Json::string("x").as_integer(), std::logic_error);
  EXPECT_THROW(Json::number(1.0).as_boolean(), std::logic_error);
  EXPECT_THROW(Json::array().members(), std::logic_error);
  EXPECT_THROW(Json::object().items(), std::logic_error);
  EXPECT_EQ(Json::integer(5).size(), 0u);
}

}  // namespace
}  // namespace abg::util
