// Determinism contract of the cluster driver: byte-identical results at
// any worker-thread count and across repeated runs, flat equivalence at
// one machine, and clear rejection of the features cluster mode does not
// compose with.  Also pins the sweep-layer JSONL: cluster fields
// round-trip when set and stay absent when the run is flat.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "alloc/equipartition.hpp"
#include "cluster/cluster_engine.hpp"
#include "dag/profile_job.hpp"
#include "cluster/cluster_spec.hpp"
#include "cluster/router.hpp"
#include "core/run.hpp"
#include "exp/result_sink.hpp"
#include "exp/runner.hpp"
#include "fault/fault_plan.hpp"
#include "obs/event_bus.hpp"
#include "sched/a_control.hpp"
#include "sched/execution_policy.hpp"
#include "sched/quantum_length.hpp"
#include "sim/quantum_engine.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "workload/job_set.hpp"
#include "workload/profiles.hpp"

namespace abg::cluster {
namespace {

/// A moderately loaded labeled job set with staggered releases, so
/// admission, the idle fast-path, routing and migration all fire.
std::vector<sim::JobSubmission> make_submissions(std::uint64_t seed) {
  util::Rng rng(seed);
  workload::JobSetSpec spec;
  spec.load = 1.5;
  spec.processors = 16;
  spec.min_phase_levels = 60;
  spec.max_phase_levels = 250;
  auto generated = workload::make_job_set(rng, spec);
  std::vector<sim::JobSubmission> subs;
  for (std::size_t i = 0; i < generated.size(); ++i) {
    sim::JobSubmission s;
    s.job = std::move(generated[i].job);
    s.release_step = static_cast<dag::Steps>(i % 3) * 40;
    s.name = "class" + std::to_string(i % 2);
    subs.push_back(std::move(s));
  }
  return subs;
}

sim::SimConfig cluster_config(int machines, int threads,
                              dag::Steps migration_period = 0) {
  sim::SimConfig config{.processors = 16, .quantum_length = 50};
  config.cluster.machines = machines;
  config.cluster.threads = threads;
  config.cluster.migration_period = migration_period;
  return config;
}

sim::SimResult run_cluster(const sim::SimConfig& config,
                           std::uint64_t seed = 11) {
  return core::run_set(core::abg_spec(), make_submissions(seed), config);
}

void expect_results_identical(const sim::SimResult& a,
                              const sim::SimResult& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.mean_response_time, b.mean_response_time);
  EXPECT_EQ(a.total_waste, b.total_waste);
  EXPECT_EQ(a.quanta, b.quanta);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    const sim::JobTrace& x = a.jobs[j];
    const sim::JobTrace& y = b.jobs[j];
    EXPECT_EQ(x.release_step, y.release_step) << "job " << j;
    EXPECT_EQ(x.completion_step, y.completion_step) << "job " << j;
    EXPECT_EQ(x.work, y.work) << "job " << j;
    ASSERT_EQ(x.quanta.size(), y.quanta.size()) << "job " << j;
    for (std::size_t q = 0; q < x.quanta.size(); ++q) {
      const sched::QuantumStats& s = x.quanta[q];
      const sched::QuantumStats& t = y.quanta[q];
      EXPECT_EQ(s.start_step, t.start_step) << "job " << j << " q " << q;
      EXPECT_EQ(s.request, t.request) << "job " << j << " q " << q;
      EXPECT_EQ(s.allotment, t.allotment) << "job " << j << " q " << q;
      EXPECT_EQ(s.length, t.length) << "job " << j << " q " << q;
      EXPECT_EQ(s.steps_used, t.steps_used) << "job " << j << " q " << q;
      EXPECT_EQ(s.work, t.work) << "job " << j << " q " << q;
      EXPECT_EQ(s.finished, t.finished) << "job " << j << " q " << q;
    }
  }
}

// --- ClusterSpec -----------------------------------------------------------

TEST(ClusterSpec, ResolvesUniformMachinesFromProcessors) {
  sim::SimConfig config{.processors = 24, .quantum_length = 50};
  config.cluster.machines = 3;
  const ClusterSpec spec = ClusterSpec::resolve(config, "test");
  ASSERT_EQ(spec.machines.size(), 3u);
  for (const sim::ClusterMachine& machine : spec.machines) {
    EXPECT_EQ(machine.processors, 24);
    EXPECT_TRUE(machine.regions.empty());
  }
  EXPECT_EQ(spec.total_processors(), 72);
}

TEST(ClusterSpec, RejectsContradictoryShapes) {
  sim::SimConfig config{.processors = 16, .quantum_length = 50};
  config.cluster.machines = 2;
  config.cluster.shapes.resize(1);
  config.cluster.shapes[0].processors = 16;
  // Shape count must equal the machine count.
  EXPECT_THROW(ClusterSpec::resolve(config, "test"), std::invalid_argument);

  config.cluster.shapes.resize(2);
  config.cluster.shapes[1].processors = 0;
  EXPECT_THROW(ClusterSpec::resolve(config, "test"), std::invalid_argument);

  // Regions must cover the machine exactly, with positive multipliers.
  config.cluster.shapes[1].processors = 8;
  config.cluster.shapes[1].regions = {{4, 1.0}, {2, 2.0}};
  EXPECT_THROW(ClusterSpec::resolve(config, "test"), std::invalid_argument);
  config.cluster.shapes[1].regions = {{4, 1.0}, {4, 0.0}};
  EXPECT_THROW(ClusterSpec::resolve(config, "test"), std::invalid_argument);
  config.cluster.shapes[1].regions = {{4, 1.0}, {4, 2.0}};
  EXPECT_NO_THROW(ClusterSpec::resolve(config, "test"));
}

TEST(ClusterSpec, RegionPenaltyMatchesFlatWithoutRegions) {
  sim::ClusterMachine machine;
  machine.processors = 16;
  for (int prev = 0; prev <= 16; prev += 4) {
    for (int cur = 0; cur <= 16; cur += 4) {
      EXPECT_EQ(region_reallocation_penalty(machine, prev, cur, 3, 50),
                sim::reallocation_penalty(prev, cur, 3, 50))
          << prev << " -> " << cur;
    }
  }
}

TEST(ClusterSpec, RegionPenaltyWeighsRemoteRegions) {
  sim::ClusterMachine machine;
  machine.processors = 8;
  machine.regions = {{4, 1.0}, {4, 2.0}};
  // Growth inside the near region pays the flat rate: 2 procs x cost 5.
  EXPECT_EQ(region_reallocation_penalty(machine, 0, 2, 5, 1000), 10);
  // Growth spanning into the remote region: 4 x 1.0 + 2 x 2.0 = 8 units.
  EXPECT_EQ(region_reallocation_penalty(machine, 0, 6, 5, 1000), 40);
  // Shrink pays the same as the growth that mirrors it.
  EXPECT_EQ(region_reallocation_penalty(machine, 6, 0, 5, 1000), 40);
  // The penalty is capped at the quantum length.
  EXPECT_EQ(region_reallocation_penalty(machine, 0, 8, 5, 30), 30);
  // No change or zero cost: no penalty.
  EXPECT_EQ(region_reallocation_penalty(machine, 4, 4, 5, 1000), 0);
  EXPECT_EQ(region_reallocation_penalty(machine, 0, 8, 0, 1000), 0);
}

// --- Routers ---------------------------------------------------------------

TEST(Router, EquilibriumDesireIsAverageParallelism) {
  EXPECT_EQ(equilibrium_desire(1000, 100), 10);
  EXPECT_EQ(equilibrium_desire(1001, 100), 11);  // ceiling
  EXPECT_EQ(equilibrium_desire(10, 100), 1);     // at least 1
  EXPECT_EQ(equilibrium_desire(0, 0), 1);
}

TEST(Router, MakeRouterRejectsUnknownPolicies) {
  EXPECT_THROW(make_router("warp"), std::invalid_argument);
  EXPECT_EQ(router_names().size(), 4u);
  for (const std::string& name : router_names()) {
    const std::unique_ptr<Router> router = make_router(name);
    ASSERT_NE(router, nullptr);
    EXPECT_EQ(router->name(), name);
  }
  // Empty selects the default least-loaded policy.
  EXPECT_EQ(make_router("")->name(), "least-loaded");
}

std::vector<MachineLoad> four_machines() {
  std::vector<MachineLoad> loads(4);
  for (std::size_t m = 0; m < loads.size(); ++m) {
    loads[m].processors = 16;
  }
  return loads;
}

RouteRequest request_of(std::size_t index, dag::TaskCount work,
                        dag::Steps span, std::string_view job_class = {}) {
  RouteRequest r;
  r.submission_index = index;
  r.work = work;
  r.critical_path = span;
  r.job_class = job_class;
  return r;
}

TEST(Router, IdenticalInputsProduceIdenticalPlacements) {
  // Routers are pure choosers over (request, ledger): two fresh instances
  // fed the same sequence must agree placement for placement.
  for (const std::string& name : router_names()) {
    const std::unique_ptr<Router> a = make_router(name);
    const std::unique_ptr<Router> b = make_router(name);
    std::vector<MachineLoad> loads_a = four_machines();
    std::vector<MachineLoad> loads_b = four_machines();
    for (std::size_t i = 0; i < 32; ++i) {
      const RouteRequest request = request_of(
          i, 100 * (i % 7 + 1), 10 * (i % 3 + 1),
          i % 2 == 0 ? "alpha" : "beta");
      const std::size_t ma = a->route(request, loads_a);
      const std::size_t mb = b->route(request, loads_b);
      ASSERT_LT(ma, loads_a.size());
      EXPECT_EQ(ma, mb) << name << " diverged at job " << i;
      loads_a[ma].assigned_work += request.work;
      loads_a[ma].assigned_jobs += 1;
      loads_b[mb].assigned_work += request.work;
      loads_b[mb].assigned_jobs += 1;
    }
  }
}

TEST(Router, LeastLoadedPicksLowestDensityTiesLowestIndex) {
  const std::unique_ptr<Router> router = make_router("least-loaded");
  std::vector<MachineLoad> loads = four_machines();
  // All empty: ties resolve to machine 0.
  EXPECT_EQ(router->route(request_of(0, 100, 10), loads), 0u);
  loads[0].assigned_work = 100;
  // 1..3 still empty: the tie among them goes to machine 1.
  EXPECT_EQ(router->route(request_of(1, 100, 10), loads), 1u);
  loads[1].assigned_work = 50;
  loads[2].assigned_work = 200;
  loads[3].assigned_work = 300;
  // Lowest density wins outright.
  EXPECT_EQ(router->route(request_of(2, 100, 10), loads), 1u);
  // Density is per processor: a bigger machine absorbs more work.
  loads[1].assigned_work = 400;
  loads[3].processors = 64;  // 300/64 is now the lowest density
  EXPECT_EQ(router->route(request_of(3, 100, 10), loads), 3u);
}

TEST(Router, RoundRobinCycles) {
  const std::unique_ptr<Router> router = make_router("round-robin");
  std::vector<MachineLoad> loads = four_machines();
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(router->route(request_of(i, 100, 10), loads), i % 4);
  }
}

TEST(Router, ClassAffinityCoLocatesClasses) {
  const std::unique_ptr<Router> router = make_router("class-affinity");
  std::vector<MachineLoad> loads = four_machines();
  const std::size_t alpha = router->route(request_of(0, 100, 10, "alpha"),
                                          loads);
  for (std::size_t i = 1; i < 8; ++i) {
    EXPECT_EQ(router->route(request_of(i, 50 * i, 10, "alpha"), loads),
              alpha);
  }
}

// --- Cluster engine --------------------------------------------------------

TEST(ClusterEngine, OneMachineMatchesFlatRunSet) {
  // The golden-fixture contract in unit-test form: a 1-machine cluster
  // reproduces the flat sync engine trace for trace.
  const sim::SimConfig flat{.processors = 16, .quantum_length = 50};
  const sim::SimResult flat_result =
      core::run_set(core::abg_spec(), make_submissions(11), flat);
  const sim::SimResult one_machine = run_cluster(cluster_config(1, 2));
  expect_results_identical(flat_result, one_machine);
}

TEST(ClusterEngine, IdenticalAtAnyThreadCount) {
  const sim::SimResult one = run_cluster(cluster_config(4, 1));
  const sim::SimResult two = run_cluster(cluster_config(4, 2));
  const sim::SimResult four = run_cluster(cluster_config(4, 4));
  expect_results_identical(one, two);
  expect_results_identical(one, four);
}

TEST(ClusterEngine, IdenticalOnRepeatedRuns) {
  const sim::SimResult first = run_cluster(cluster_config(3, 2, 4));
  const sim::SimResult second = run_cluster(cluster_config(3, 2, 4));
  expect_results_identical(first, second);
}

TEST(ClusterEngine, MigrationStaysDeterministicAcrossThreads) {
  const sim::SimResult serial = run_cluster(cluster_config(4, 1, 2));
  const sim::SimResult pooled = run_cluster(cluster_config(4, 4, 2));
  expect_results_identical(serial, pooled);
  EXPECT_GT(serial.makespan, 0);
}

TEST(ClusterEngine, EveryRouterRunsDeterministically) {
  for (const std::string& name : router_names()) {
    sim::SimConfig config = cluster_config(4, 1, 4);
    config.cluster.router = name;
    const sim::SimResult serial = run_cluster(config);
    config.cluster.threads = 4;
    const sim::SimResult pooled = run_cluster(config);
    expect_results_identical(serial, pooled);
  }
}

TEST(ClusterEngine, HeterogeneousShapesRunDeterministically) {
  sim::SimConfig config = cluster_config(3, 1, 4);
  config.cluster.shapes.resize(3);
  config.cluster.shapes[0].processors = 8;
  config.cluster.shapes[1].processors = 16;
  config.cluster.shapes[1].regions = {{8, 1.0}, {8, 2.5}};
  config.cluster.shapes[2].processors = 4;
  config.reallocation_cost_per_proc = 2;
  const sim::SimResult serial = run_cluster(config);
  config.cluster.threads = 4;
  const sim::SimResult pooled = run_cluster(config);
  expect_results_identical(serial, pooled);
}

TEST(ClusterEngine, AllJobsCompleteAndConserveWork) {
  const sim::SimResult result = run_cluster(cluster_config(4, 2, 2));
  ASSERT_FALSE(result.jobs.empty());
  for (std::size_t j = 0; j < result.jobs.size(); ++j) {
    EXPECT_GT(result.jobs[j].completion_step, result.jobs[j].release_step)
        << "job " << j << " never completed";
    dag::TaskCount executed = 0;
    for (const auto& q : result.jobs[j].quanta) {
      executed += q.work;
    }
    EXPECT_EQ(executed, result.jobs[j].work) << "job " << j;
  }
}

/// Captures the cluster events the driver publishes.
struct ClusterEventProbe final : obs::Sink {
  std::int64_t routes = 0;
  std::int64_t migrations = 0;
  dag::Steps debt_steps = 0;
  std::int64_t summaries = 0;
  std::int64_t summarized_jobs = 0;

  void on_event(const obs::Event& event) override {
    switch (event.kind) {
      case obs::EventKind::kClusterRoute:
        ++routes;
        break;
      case obs::EventKind::kClusterMigrate:
        ++migrations;
        debt_steps += event.debt_steps;
        break;
      case obs::EventKind::kClusterMachineSummary:
        ++summaries;
        summarized_jobs += event.active_jobs;
        break;
      default:
        break;
    }
  }
};

TEST(ClusterEngine, MigrationDebtIsOneQuantumPerMove) {
  // Overload one machine via class-affinity (every job hashes one way when
  // all share a class) with more jobs than it can admit, then let the
  // imbalance pass spread the queue; each move charges exactly one quantum
  // of transfer debt.  Only queued jobs migrate, so the set must exceed
  // the machine's admission cap (16 = its processors).
  std::vector<sim::JobSubmission> subs;
  for (int i = 0; i < 24; ++i) {
    sim::JobSubmission sub;
    sub.job = std::make_unique<dag::ProfileJob>(
        workload::square_wave_profile(4, 150, 4, 150, 1));
    sub.name = "hot";
    subs.push_back(std::move(sub));
  }
  sim::SimConfig config = cluster_config(4, 2, 1);
  config.cluster.router = "class-affinity";
  obs::EventBus bus;
  ClusterEventProbe probe;
  bus.subscribe(&probe);
  config.obs.event_bus = &bus;
  const sim::SimResult result =
      core::run_set(core::abg_spec(), std::move(subs), config);
  EXPECT_EQ(probe.routes, static_cast<std::int64_t>(result.jobs.size()));
  EXPECT_GT(probe.migrations, 0);
  EXPECT_EQ(probe.debt_steps, probe.migrations * config.quantum_length);
  EXPECT_EQ(probe.summaries, 4);
  // Every job finishes on exactly one machine, tombstones notwithstanding.
  EXPECT_EQ(probe.summarized_jobs,
            static_cast<std::int64_t>(result.jobs.size()));
}

TEST(ClusterEngine, ObserversDoNotPerturbResults) {
  sim::SimConfig config = cluster_config(4, 2, 2);
  const sim::SimResult bare = run_cluster(config);
  obs::EventBus bus;
  ClusterEventProbe probe;
  bus.subscribe(&probe);
  config.obs.event_bus = &bus;
  const sim::SimResult observed = run_cluster(config);
  expect_results_identical(bare, observed);
}

TEST(ClusterEngine, RejectsUnsupportedFeatures) {
  sched::BGreedyExecution exec;
  sched::AControlRequest request;
  alloc::EquiPartition deq;

  {
    // machines < 1 is a contract violation of the direct entry point (via
    // core::run_set, 0 machines selects the flat path instead).
    sim::SimConfig config = cluster_config(0, 1);
    EXPECT_THROW(simulate_job_set_cluster(make_submissions(5), exec,
                                          request, deq, config),
                 std::invalid_argument);
  }
  {
    sim::SimConfig config = cluster_config(2, 1);
    const fault::FaultPlan plan = fault::periodic_crash_plan(0, 65, 90, 2);
    config.faults = &plan;
    EXPECT_THROW(simulate_job_set_cluster(make_submissions(5), exec,
                                          request, deq, config),
                 std::invalid_argument);
  }
  {
    sim::SimConfig config = cluster_config(2, 1);
    config.engine = sim::EngineKind::kAsync;
    EXPECT_THROW(simulate_job_set_cluster(make_submissions(5), exec,
                                          request, deq, config),
                 std::invalid_argument);
  }
  {
    sim::SimConfig config = cluster_config(2, 1);
    sched::AdaptiveQuantumLength policy{sched::AdaptiveQuantumConfig{}};
    config.quantum_length_policy = &policy;
    EXPECT_THROW(simulate_job_set_cluster(make_submissions(5), exec,
                                          request, deq, config),
                 std::invalid_argument);
  }
  {
    sim::SimConfig config = cluster_config(2, 1);
    config.hier.groups = 2;
    EXPECT_THROW(simulate_job_set_cluster(make_submissions(5), exec,
                                          request, deq, config),
                 std::invalid_argument);
  }
}

// --- Sweep layer -----------------------------------------------------------

/// Sweep grid with a cluster axis: the same workload flat, at 2 machines
/// and at 4 machines under desire-aware routing.
std::vector<exp::RunSpec> cluster_grid() {
  std::vector<exp::RunSpec> specs;
  for (const int machines : {0, 2, 4}) {
    exp::RunSpec spec;
    spec.scheduler = exp::SchedulerKind::kAbg;
    spec.workload.kind = exp::WorkloadKind::kSquareWave;
    spec.workload.jobs = 3;
    spec.workload.levels = 150;
    spec.machine = {.processors = 16, .quantum_length = 50};
    spec.cluster_machines = machines;
    if (machines > 0) {
      spec.router = "desire-aware";
      spec.migration_period = 2;
    }
    spec.group = "machines=" + std::to_string(machines);
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::string jsonl_of(const std::vector<exp::RunRecord>& records) {
  exp::ResultSink sink("cluster_test", 2008);
  sink.add_all(records);
  std::ostringstream os;
  sink.write_jsonl(os);
  return os.str();
}

TEST(ClusterSweep, JsonlByteIdenticalAcrossWorkerCounts) {
  const std::vector<exp::RunSpec> specs = cluster_grid();
  std::string baseline;
  for (const int jobs : {1, 4}) {
    exp::SweepConfig config;
    config.threads = jobs;
    const std::string jsonl = jsonl_of(exp::SweepRunner(config).run(specs));
    if (baseline.empty()) {
      baseline = jsonl;
    } else {
      EXPECT_EQ(jsonl, baseline) << "diverged at --jobs " << jobs;
    }
  }
  EXPECT_FALSE(baseline.empty());
}

TEST(ClusterSweep, JsonlCarriesClusterFieldsOnlyWhenSet) {
  exp::SweepConfig config;
  config.threads = 2;
  const std::vector<exp::RunRecord> records =
      exp::SweepRunner(config).run(cluster_grid());
  ASSERT_EQ(records.size(), 3u);
  const std::string jsonl = jsonl_of(records);
  std::istringstream lines(jsonl);
  std::string line;
  std::vector<std::string> rows;
  while (std::getline(lines, line)) {
    rows.push_back(line);
  }
  ASSERT_EQ(rows.size(), 3u);
  // Flat record: the cluster fields are omitted so pre-cluster artifacts
  // stay byte-identical.
  EXPECT_EQ(rows[0].find("cluster_machines"), std::string::npos);
  EXPECT_EQ(rows[0].find("router"), std::string::npos);
  EXPECT_NE(rows[1].find("\"cluster_machines\":2"), std::string::npos);
  EXPECT_NE(rows[1].find("\"router\":\"desire-aware\""), std::string::npos);
  EXPECT_NE(rows[2].find("\"cluster_machines\":4"), std::string::npos);
}

TEST(ClusterSweep, RunnerRejectsContradictoryCompositions) {
  exp::SweepConfig config;
  config.threads = 1;
  {
    std::vector<exp::RunSpec> specs = cluster_grid();
    specs[1].hier_groups = 2;
    specs[1].hier_alloc = "deq";
    EXPECT_THROW(exp::SweepRunner(config).run(specs),
                 std::invalid_argument);
  }
  {
    std::vector<exp::RunSpec> specs = cluster_grid();
    specs[2].engine = sim::EngineKind::kAsync;
    EXPECT_THROW(exp::SweepRunner(config).run(specs),
                 std::invalid_argument);
  }
  {
    // The monitored path quarantines the contradictory cell instead of
    // tearing down the sweep.
    std::vector<exp::RunSpec> specs = cluster_grid();
    specs[1].hier_groups = 2;
    specs[1].hier_alloc = "deq";
    const exp::SweepOutcome outcome =
        exp::SweepRunner(config).run_monitored(specs);
    ASSERT_EQ(outcome.records.size(), 3u);
    EXPECT_FALSE(outcome.records[1].failure.empty());
    EXPECT_TRUE(outcome.records[0].failure.empty());
  }
}

}  // namespace
}  // namespace abg::cluster
