#include "obs/event_bus.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "core/run.hpp"
#include "dag/profile_job.hpp"
#include "fault/fault_plan.hpp"
#include "sim/trace_io.hpp"
#include "workload/profiles.hpp"

namespace abg::obs {
namespace {

/// Copies every event kind (and the quantum count) for assertions.
class RecordingSink final : public Sink {
 public:
  void on_event(const Event& event) override {
    kinds.push_back(event.kind);
    if (event.kind == EventKind::kQuantum) {
      quantum_events.push_back(*event.stats);
    }
  }

  std::vector<EventKind> kinds;
  std::vector<sched::QuantumStats> quantum_events;
};

TEST(EventBus, InactiveUntilSubscribed) {
  EventBus bus;
  EXPECT_FALSE(bus.active());
  bus.subscribe(nullptr);  // Ignored.
  EXPECT_FALSE(bus.active());
  RecordingSink sink;
  bus.subscribe(&sink);
  EXPECT_TRUE(bus.active());
}

TEST(EventBus, FansOutInSubscriptionOrder) {
  EventBus bus;
  std::vector<int> order;
  class OrderSink final : public Sink {
   public:
    OrderSink(std::vector<int>& log, int id) : log_(&log), id_(id) {}
    void on_event(const Event&) override { log_->push_back(id_); }

   private:
    std::vector<int>* log_;
    int id_;
  };
  OrderSink first(order, 1);
  OrderSink second(order, 2);
  bus.subscribe(&first);
  bus.subscribe(&second);
  bus.publish(Event{});
  bus.publish(Event{});
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2}));
}

TEST(EventBus, BusesChain) {
  // An EventBus is a Sink, so a run's private bus can forward into an
  // outer one (the sweep runner relies on this).
  EventBus outer;
  RecordingSink sink;
  outer.subscribe(&sink);
  EventBus inner;
  inner.subscribe(&outer);
  Event event;
  event.kind = EventKind::kRunEnd;
  inner.publish(event);
  ASSERT_EQ(sink.kinds.size(), 1u);
  EXPECT_EQ(sink.kinds[0], EventKind::kRunEnd);
}

sim::SimConfig faulted_config(const fault::FaultPlan* plan,
                              sim::EngineKind engine) {
  sim::SimConfig config{.processors = 8, .quantum_length = 20};
  config.faults = plan;
  config.engine = engine;
  return config;
}

std::vector<sim::JobSubmission> two_job_set() {
  std::vector<sim::JobSubmission> subs;
  for (int j = 0; j < 2; ++j) {
    sim::JobSubmission s;
    s.job = std::make_unique<dag::ProfileJob>(
        workload::square_wave_profile(2, 24, 8, 40, 3));
    subs.push_back(std::move(s));
  }
  return subs;
}

std::string result_fingerprint(const sim::SimResult& result) {
  std::stringstream out;
  sim::write_result_csv(out, result);
  for (const sim::JobTrace& trace : result.jobs) {
    sim::write_trace_csv(out, trace);
  }
  return out.str();
}

class BusIdentity : public testing::TestWithParam<sim::EngineKind> {};

TEST_P(BusIdentity, AttachingSinksDoesNotChangeResults) {
  // The observation-only contract: a run with a recording bus attached is
  // byte-identical to the same run without one.
  fault::FaultPlan plan = fault::periodic_crash_plan(0, 30, 90, 2);
  const sim::SimResult bare = core::run_set(
      core::abg_spec(), two_job_set(), faulted_config(&plan, GetParam()));

  EventBus bus;
  RecordingSink sink;
  bus.subscribe(&sink);
  sim::SimConfig observed_config = faulted_config(&plan, GetParam());
  observed_config.obs.event_bus = &bus;
  const sim::SimResult observed =
      core::run_set(core::abg_spec(), two_job_set(), observed_config);

  EXPECT_EQ(result_fingerprint(bare), result_fingerprint(observed));

  // The stream brackets the run and reports every lifecycle stage.
  ASSERT_FALSE(sink.kinds.empty());
  EXPECT_EQ(sink.kinds.front(), EventKind::kRunStart);
  EXPECT_EQ(sink.kinds.back(), EventKind::kRunEnd);
  const auto count = [&sink](EventKind kind) {
    std::size_t n = 0;
    for (EventKind k : sink.kinds) {
      n += (k == kind) ? 1u : 0u;
    }
    return n;
  };
  EXPECT_EQ(count(EventKind::kJobSubmit), observed.jobs.size());
  EXPECT_EQ(count(EventKind::kJobComplete), observed.jobs.size());
  EXPECT_EQ(count(EventKind::kJobCrash), observed.fault_log.crashes.size());
  EXPECT_GE(observed.fault_log.crashes.size(), 1u);
  EXPECT_GE(count(EventKind::kAllocation), 1u);
  // Under checkpoint semantics nothing is voided retroactively, so the
  // published quanta are exactly what the traces retained.
  std::size_t traced = 0;
  for (const sim::JobTrace& trace : observed.jobs) {
    traced += trace.quanta.size();
  }
  EXPECT_EQ(sink.quantum_events.size(), traced);
}

INSTANTIATE_TEST_SUITE_P(BothEngines, BusIdentity,
                         testing::Values(sim::EngineKind::kSync,
                                         sim::EngineKind::kAsync),
                         [](const auto& param_info) {
                           return std::string(
                               sim::to_string(param_info.param));
                         });

}  // namespace
}  // namespace abg::obs
