// Property test: ProfileJob (closed-form level-barrier execution) is
// behaviourally identical to a DagJob over the equivalent barrier DAG, for
// both pick orders and arbitrary allotment sequences.  This ties the fast
// path used by the paper-scale experiments to the fully general model.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "dag/builders.hpp"
#include "dag/dag_job.hpp"
#include "dag/profile_job.hpp"
#include "util/rng.hpp"

namespace abg::dag {
namespace {

class JobEquivalence
    : public ::testing::TestWithParam<std::tuple<PickOrder, std::uint64_t>> {
};

TEST_P(JobEquivalence, StepByStepAgreement) {
  const auto [order, seed] = GetParam();
  util::Rng rng(seed);
  const auto levels = rng.uniform_int(1, 15);
  std::vector<TaskCount> widths;
  for (int l = 0; l < levels; ++l) {
    widths.push_back(rng.uniform_int(1, 8));
  }
  ProfileJob profile(widths);
  DagJob dag{builders::barrier_profile(widths)};

  while (!profile.finished()) {
    const int procs = static_cast<int>(rng.uniform_int(1, 10));
    const TaskCount done_profile = profile.step(procs, order);
    const TaskCount done_dag = dag.step(procs, order);
    ASSERT_EQ(done_profile, done_dag);
    ASSERT_EQ(profile.completed_work(), dag.completed_work());
    ASSERT_NEAR(profile.level_progress(), dag.level_progress(), 1e-9);
    ASSERT_EQ(profile.ready_count(), dag.ready_count());
    ASSERT_EQ(profile.finished(), dag.finished());
  }
  EXPECT_TRUE(dag.finished());
}

TEST_P(JobEquivalence, QuantumAgreement) {
  const auto [order, seed] = GetParam();
  util::Rng rng(seed ^ 0xABCDULL);
  const auto levels = rng.uniform_int(1, 12);
  std::vector<TaskCount> widths;
  for (int l = 0; l < levels; ++l) {
    widths.push_back(rng.uniform_int(1, 6));
  }
  ProfileJob profile(widths);
  DagJob dag{builders::barrier_profile(widths)};

  while (!profile.finished()) {
    const int procs = static_cast<int>(rng.uniform_int(1, 7));
    const Steps budget = rng.uniform_int(1, 6);
    const QuantumExecution a = profile.run_quantum(procs, budget, order);
    const QuantumExecution b = dag.run_quantum(procs, budget, order);
    ASSERT_EQ(a.work, b.work);
    ASSERT_EQ(a.steps, b.steps);
    ASSERT_EQ(a.idle_steps, b.idle_steps);
    ASSERT_EQ(a.finished, b.finished);
    ASSERT_NEAR(a.cpl, b.cpl, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomProfiles, JobEquivalence,
    ::testing::Combine(::testing::Values(PickOrder::kFifo,
                                         PickOrder::kBreadthFirst),
                       ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                         55u, 89u)),
    [](const auto& param_info) {
      const PickOrder order = std::get<0>(param_info.param);
      const std::uint64_t seed = std::get<1>(param_info.param);
      return std::string(order == PickOrder::kFifo ? "Fifo" : "Bf") +
             "Seed" + std::to_string(seed);
    });

}  // namespace
}  // namespace abg::dag
