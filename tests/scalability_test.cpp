#include "metrics/scalability.hpp"

#include <gtest/gtest.h>

#include "dag/builders.hpp"
#include "dag/dag_job.hpp"
#include "dag/profile_job.hpp"
#include "workload/profiles.hpp"

namespace abg::metrics {
namespace {

TEST(Scalability, Validation) {
  dag::ProfileJob job({2, 2});
  EXPECT_THROW(scalability_curve(job, {}), std::invalid_argument);
  EXPECT_THROW(scalability_curve(job, {0}), std::invalid_argument);
}

TEST(Scalability, SerialTimeEqualsWork) {
  dag::ProfileJob job(workload::constant_profile(4, 50));
  const auto curve = scalability_curve(job, {1});
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_EQ(curve[0].time, job.total_work());
  EXPECT_DOUBLE_EQ(curve[0].speedup, 1.0);
  EXPECT_DOUBLE_EQ(curve[0].efficiency, 1.0);
}

TEST(Scalability, PerfectScalingUpToWidth) {
  // Constant width 8: linear speedup at p = 1, 2, 4, 8; flat beyond.
  dag::ProfileJob job(workload::constant_profile(8, 64));
  const auto curve = scalability_curve(job, {1, 2, 4, 8, 16});
  EXPECT_EQ(curve[0].time, 512);
  EXPECT_EQ(curve[1].time, 256);
  EXPECT_EQ(curve[2].time, 128);
  EXPECT_EQ(curve[3].time, 64);
  EXPECT_EQ(curve[4].time, 64);  // capped by the profile width
  EXPECT_DOUBLE_EQ(curve[3].speedup, 8.0);
  EXPECT_DOUBLE_EQ(curve[4].efficiency, 0.5);
}

TEST(Scalability, TimeBoundedByWorkAndSpanLaws) {
  util::Rng rng(6);
  dag::DagJob job{dag::builders::random_layered(rng, 20, 10, 0.3)};
  const auto curve = scalability_curve(job, {1, 3, 7, 16});
  for (const auto& point : curve) {
    // Work law: T(p) >= T1/p;  span law: T(p) >= T_inf.
    EXPECT_GE(point.time,
              (job.total_work() + point.processors - 1) /
                  point.processors);
    EXPECT_GE(point.time, job.critical_path());
    // Greedy bound: T(p) <= T1/p + T_inf.
    EXPECT_LE(static_cast<double>(point.time),
              static_cast<double>(job.total_work()) / point.processors +
                  static_cast<double>(job.critical_path()) + 1e-9);
    EXPECT_LE(point.efficiency, 1.0 + 1e-12);
  }
  // Monotone: more processors never slow a greedy schedule down here.
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].time, curve[i - 1].time);
  }
}

TEST(Scalability, JobLeftUntouched) {
  dag::ProfileJob job({4, 4});
  scalability_curve(job, {2});
  EXPECT_EQ(job.completed_work(), 0);
  EXPECT_FALSE(job.finished());
}

TEST(PowerOfTwoCounts, Shape) {
  EXPECT_EQ(power_of_two_counts(1), (std::vector<int>{1}));
  EXPECT_EQ(power_of_two_counts(8), (std::vector<int>{1, 2, 4, 8}));
  EXPECT_EQ(power_of_two_counts(10), (std::vector<int>{1, 2, 4, 8}));
  EXPECT_THROW(power_of_two_counts(0), std::invalid_argument);
}

}  // namespace
}  // namespace abg::metrics
