#include "steal/work_stealing_job.hpp"

#include <gtest/gtest.h>

#include "core/run.hpp"
#include "dag/builders.hpp"
#include "sim/quantum_engine.hpp"
#include "steal/schedulers.hpp"
#include "workload/fork_join.hpp"

namespace abg::steal {
namespace {

TEST(WorkStealingJob, ExecutesChainSequentially) {
  WorkStealingJob job(dag::builders::chain(5), 1);
  dag::Steps steps = 0;
  while (!job.finished()) {
    job.step(4, dag::PickOrder::kFifo);
    ++steps;
    ASSERT_LE(steps, 100);
  }
  EXPECT_EQ(job.completed_work(), 5);
  EXPECT_EQ(steps, 5);  // a chain admits no parallelism
}

TEST(WorkStealingJob, CompletesArbitraryDags) {
  util::Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    WorkStealingJob job(dag::builders::random_layered(rng, 12, 8, 0.3),
                        trial * 7ULL);
    dag::Steps guard = 0;
    while (!job.finished()) {
      job.step(4, dag::PickOrder::kFifo);
      ASSERT_LE(++guard, 100000);
    }
    EXPECT_EQ(job.completed_work(), job.total_work());
    // Fractional level accounting accumulates rounding across many tasks.
    EXPECT_NEAR(job.level_progress(),
                static_cast<double>(job.critical_path()), 1e-9);
    EXPECT_EQ(job.ready_count(), 0);
  }
}

TEST(WorkStealingJob, SingleWorkerNeverSteals) {
  WorkStealingJob job(dag::builders::diamond(6), 42);
  while (!job.finished()) {
    job.step(1, dag::PickOrder::kFifo);
  }
  EXPECT_EQ(job.counters().successful_steals, 0);
  EXPECT_EQ(job.counters().steal_attempts, 0);
}

TEST(WorkStealingJob, StealsSpreadWork) {
  // A wide diamond with several workers: after the source completes, the
  // other workers must steal to participate.
  WorkStealingJob job(dag::builders::diamond(64), 42);
  while (!job.finished()) {
    job.step(8, dag::PickOrder::kFifo);
  }
  EXPECT_GT(job.counters().successful_steals, 0);
  EXPECT_GT(job.counters().steal_attempts,
            job.counters().successful_steals / 2);
}

TEST(WorkStealingJob, StealLatencySlowsFirstSpread) {
  // With 8 workers, the 64 middle tasks of a diamond take at least
  // 64/8 = 8 steps plus the initial spread; total completion must exceed
  // the greedy bound of 1 + 8 + 1 steps.
  WorkStealingJob job(dag::builders::diamond(64), 7);
  dag::Steps steps = 0;
  while (!job.finished()) {
    job.step(8, dag::PickOrder::kFifo);
    ++steps;
  }
  EXPECT_GE(steps, 10);
}

TEST(WorkStealingJob, DeterministicForSameSeed) {
  auto run = [](std::uint64_t seed) {
    WorkStealingJob job(dag::builders::diamond(32), seed);
    std::vector<dag::TaskCount> per_step;
    while (!job.finished()) {
      per_step.push_back(job.step(4, dag::PickOrder::kFifo));
    }
    return per_step;
  };
  EXPECT_EQ(run(9), run(9));
}

TEST(WorkStealingJob, ZeroProcsNoProgress) {
  WorkStealingJob job(dag::builders::chain(3), 1);
  EXPECT_EQ(job.step(0, dag::PickOrder::kFifo), 0);
  EXPECT_EQ(job.completed_work(), 0);
}

TEST(WorkStealingJob, NegativeProcsThrow) {
  WorkStealingJob job(dag::builders::chain(3), 1);
  EXPECT_THROW(job.step(-1, dag::PickOrder::kFifo), std::invalid_argument);
}

TEST(WorkStealingJob, MuggingPreservesTasks) {
  // Grow to many workers, then shrink the allotment: no task may be lost.
  WorkStealingJob job(dag::builders::diamond(40), 11);
  job.step(8, dag::PickOrder::kFifo);  // source done; 40 middles enabled
  job.step(8, dag::PickOrder::kFifo);
  job.step(8, dag::PickOrder::kFifo);
  const dag::TaskCount before = job.completed_work();
  // Shrink to 2 workers; orphan deques must be mugged, not dropped.
  while (!job.finished()) {
    job.step(2, dag::PickOrder::kFifo);
  }
  EXPECT_GT(job.counters().muggings, 0);
  EXPECT_EQ(job.completed_work(), 42);
  EXPECT_GT(job.completed_work(), before);
}

TEST(WorkStealingJob, FreshCloneReplaysIdentically) {
  WorkStealingJob job(dag::builders::diamond(16), 5);
  std::vector<dag::TaskCount> first;
  while (!job.finished()) {
    first.push_back(job.step(3, dag::PickOrder::kFifo));
  }
  const auto clone = job.fresh_clone();
  std::vector<dag::TaskCount> second;
  while (!clone->finished()) {
    second.push_back(clone->step(3, dag::PickOrder::kFifo));
  }
  EXPECT_EQ(first, second);
}

TEST(WorkStealingJob, RejectsCyclicStructure) {
  dag::DagStructure cyclic;
  cyclic.children = {{1}, {0}};
  EXPECT_THROW(WorkStealingJob(cyclic, 1), std::invalid_argument);
}

TEST(AStealScheduler, SpecShape) {
  const core::SchedulerSpec spec = a_steal_spec();
  EXPECT_EQ(spec.name, "A-Steal");
  EXPECT_EQ(spec.execution->name(), "work-stealing");
  EXPECT_EQ(spec.request->name(), "a-steal");
  const auto clone = spec.request->clone();
  EXPECT_EQ(clone->name(), "a-steal");
}

TEST(AbpScheduler, SpecShape) {
  const core::SchedulerSpec spec = abp_spec(64);
  EXPECT_EQ(spec.name, "ABP");
  EXPECT_EQ(spec.request->first_request(), 64);
}

TEST(AStealScheduler, RunsForkJoinJobToCompletion) {
  util::Rng rng(17);
  const auto widths_job = workload::make_fork_join_job(
      rng, workload::ForkJoinSpec{.transition_factor = 6.0,
                                  .phase_pairs = 2,
                                  .min_phase_levels = 50,
                                  .max_phase_levels = 150});
  // Work stealing needs the explicit DAG form.
  WorkStealingJob job(
      dag::builders::barrier_profile(widths_job->widths()), 23);
  const sim::JobTrace trace = core::run_single(
      a_steal_spec(), job,
      sim::SingleJobConfig{.processors = 32, .quantum_length = 50});
  EXPECT_TRUE(trace.finished());
  EXPECT_EQ(trace.work, widths_job->total_work());
  EXPECT_GE(trace.response_time(), trace.critical_path);
}

TEST(AbpScheduler, WastesMoreThanASteal) {
  // ABP holds the whole machine; on a mostly serial job that is pure
  // waste, while A-Steal's feedback shrinks its allotment.
  const dag::DagStructure structure = dag::builders::fork_join(
      {{1, 400}, {8, 100}, {1, 400}});
  const sim::SingleJobConfig config{.processors = 64, .quantum_length = 50};
  WorkStealingJob asteal_job(structure, 3);
  const sim::JobTrace asteal_trace =
      core::run_single(a_steal_spec(), asteal_job, config);
  WorkStealingJob abp_job(structure, 3);
  const sim::JobTrace abp_trace =
      core::run_single(abp_spec(64), abp_job, config);
  EXPECT_TRUE(asteal_trace.finished());
  EXPECT_TRUE(abp_trace.finished());
  EXPECT_LT(asteal_trace.total_waste(), abp_trace.total_waste() / 2);
}

}  // namespace
}  // namespace abg::steal
