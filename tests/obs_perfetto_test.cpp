#include "obs/perfetto.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/json.hpp"

namespace abg::obs {
namespace {

TEST(PerfettoTrace, EmitsChromeTraceEventShape) {
  PerfettoTrace trace;
  trace.set_process_name(1, "abg machine P=8 L=20");
  trace.set_thread_name(1, 2, "job 1 (T1=100, Tinf=10)");
  trace.add_slice(1, 2, "q0", 0.0, 20.0, "good",
                  {{"d", 4.0}, {"a", 2.0}});
  trace.add_instant(1, 2, "complete", 20.0);
  trace.add_counter(1, "job 1 d/a", 0.0, {{"d", 4.0}, {"a", 2.0}});
  EXPECT_EQ(trace.event_count(), 5u);

  const util::Json doc = util::Json::parse(trace.to_json().dump());
  const util::Json& events = doc.at("traceEvents");
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");

  const util::Json& meta = events.at(std::size_t{1});
  EXPECT_EQ(meta.at("ph").as_string(), "M");
  EXPECT_EQ(meta.at("name").as_string(), "thread_name");
  EXPECT_EQ(meta.at("args").at("name").as_string(), "job 1 (T1=100, Tinf=10)");

  const util::Json& slice = events.at(std::size_t{2});
  EXPECT_EQ(slice.at("ph").as_string(), "X");
  EXPECT_EQ(slice.at("tid").as_integer(), 2);
  EXPECT_EQ(slice.at("ts").as_integer(), 0);
  EXPECT_EQ(slice.at("dur").as_integer(), 20);
  EXPECT_EQ(slice.at("cname").as_string(), "good");
  EXPECT_DOUBLE_EQ(slice.at("args").at("d").as_number(), 4.0);

  const util::Json& instant = events.at(std::size_t{3});
  EXPECT_EQ(instant.at("ph").as_string(), "i");
  EXPECT_EQ(instant.at("s").as_string(), "t");

  const util::Json& counter = events.at(std::size_t{4});
  EXPECT_EQ(counter.at("ph").as_string(), "C");
  EXPECT_EQ(counter.at("name").as_string(), "job 1 d/a");
  EXPECT_EQ(counter.at("args").at("a").as_integer(), 2);
}

TEST(PerfettoTrace, IntegralTimesSerializeAsIntegers) {
  PerfettoTrace trace;
  trace.add_slice(1, 1, "q", 10.0, 2.5);
  const std::string text = trace.to_json().dump();
  EXPECT_NE(text.find("\"ts\":10,"), std::string::npos);
  EXPECT_NE(text.find("\"dur\":2.5"), std::string::npos);
}

TEST(PerfettoTrace, OmitsEmptyColorAndArgs) {
  PerfettoTrace trace;
  trace.add_slice(1, 1, "q", 0.0, 1.0);
  const std::string text = trace.to_json().dump();
  EXPECT_EQ(text.find("cname"), std::string::npos);
  EXPECT_EQ(text.find("args"), std::string::npos);
}

TEST(PerfettoTrace, WriteEndsWithNewline) {
  PerfettoTrace trace;
  std::ostringstream out;
  trace.write(out);
  const std::string text = out.str();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  EXPECT_EQ(text, "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}\n");
}

}  // namespace
}  // namespace abg::obs
