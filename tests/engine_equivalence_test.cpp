// The unified-core equivalence contract: a job set of one pushed through
// simulate_job_set must reproduce run_single_job quantum-for-quantum —
// same boundaries, requests, allotments, work, and completion — because
// both are now thin wrappers over the same run_global_quanta loop.  The
// suite exercises the full feature matrix: plain runs, reallocation
// overhead, adaptive quantum lengths, and fault plans.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "alloc/equipartition.hpp"
#include "dag/profile_job.hpp"
#include "fault/fault_plan.hpp"
#include "sched/a_control.hpp"
#include "sched/execution_policy.hpp"
#include "sched/quantum_length.hpp"
#include "sim/quantum_engine.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "workload/profiles.hpp"

namespace abg::sim {
namespace {

/// A profile with several parallelism transitions so the request policy's
/// feedback loop actually moves (constant profiles converge immediately).
std::vector<dag::TaskCount> test_profile() {
  return workload::square_wave_profile(2, 70, 11, 70, 4);
}

/// Requires the two traces to agree on every field of every quantum.
void expect_traces_equal(const JobTrace& single, const JobTrace& set) {
  EXPECT_EQ(single.release_step, set.release_step);
  EXPECT_EQ(single.completion_step, set.completion_step);
  EXPECT_EQ(single.work, set.work);
  EXPECT_EQ(single.critical_path, set.critical_path);
  ASSERT_EQ(single.quanta.size(), set.quanta.size());
  for (std::size_t q = 0; q < single.quanta.size(); ++q) {
    const sched::QuantumStats& a = single.quanta[q];
    const sched::QuantumStats& b = set.quanta[q];
    EXPECT_EQ(a.index, b.index) << "quantum " << q;
    EXPECT_EQ(a.start_step, b.start_step) << "quantum " << q;
    EXPECT_EQ(a.request, b.request) << "quantum " << q;
    EXPECT_EQ(a.allotment, b.allotment) << "quantum " << q;
    EXPECT_EQ(a.available, b.available) << "quantum " << q;
    EXPECT_EQ(a.length, b.length) << "quantum " << q;
    EXPECT_EQ(a.steps_used, b.steps_used) << "quantum " << q;
    EXPECT_EQ(a.work, b.work) << "quantum " << q;
    EXPECT_DOUBLE_EQ(a.cpl, b.cpl) << "quantum " << q;
    EXPECT_EQ(a.finished, b.finished) << "quantum " << q;
    EXPECT_EQ(a.full, b.full) << "quantum " << q;
  }
}

/// Runs the same profile through both entry points and compares traces.
/// `single_config` and `set_config` must describe the same scenario.
void expect_engines_agree(const SingleJobConfig& single_config,
                          const SimConfig& set_config) {
  sched::BGreedyExecution exec;

  dag::ProfileJob single_job(test_profile());
  sched::AControlRequest single_request;
  alloc::EquiPartition single_deq;
  const JobTrace single = run_single_job(single_job, exec, single_request,
                                         single_deq, single_config);

  std::vector<JobSubmission> subs;
  subs.push_back(JobSubmission{
      std::make_unique<dag::ProfileJob>(test_profile()), 0, {}});
  sched::AControlRequest proto;
  alloc::EquiPartition set_deq;
  const SimResult set =
      simulate_job_set(std::move(subs), exec, proto, set_deq, set_config);

  ASSERT_EQ(set.jobs.size(), 1u);
  expect_traces_equal(single, set.jobs.front());
  EXPECT_EQ(set.makespan, single.completion_step);
}

TEST(EngineEquivalence, SetOfOneMatchesSingleJob) {
  const SingleJobConfig single{.processors = 16, .quantum_length = 30};
  const SimConfig set{.processors = 16, .quantum_length = 30};
  expect_engines_agree(single, set);
}

TEST(EngineEquivalence, WithReallocationCost) {
  SingleJobConfig single{.processors = 16, .quantum_length = 30};
  single.reallocation_cost_per_proc = 2;
  SimConfig set{.processors = 16, .quantum_length = 30};
  set.reallocation_cost_per_proc = 2;
  expect_engines_agree(single, set);
}

TEST(EngineEquivalence, WithCheckpointCrash) {
  fault::FaultPlan plan = fault::periodic_crash_plan(0, 65, 90, 2);
  plan.work_loss = fault::WorkLoss::kCheckpointQuantum;
  SingleJobConfig single{.processors = 16, .quantum_length = 30};
  single.faults = &plan;
  SimConfig set{.processors = 16, .quantum_length = 30};
  set.faults = &plan;
  expect_engines_agree(single, set);
}

TEST(EngineEquivalence, WithAdaptiveQuantumLength) {
  // The set engine's quantum-length hook sees the sole job's stats
  // verbatim when only one job ran the quantum, which is exactly what the
  // single-job engine feeds its policy — so the adaptive schedule of
  // lengths must coincide too.
  sched::AdaptiveQuantumConfig qconfig;
  qconfig.min_length = 20;
  qconfig.max_length = 160;

  sched::BGreedyExecution exec;
  dag::ProfileJob single_job(test_profile());
  sched::AControlRequest single_request;
  sched::AdaptiveQuantumLength single_policy(qconfig);
  alloc::EquiPartition single_deq;
  const SingleJobConfig single_config{.processors = 16};
  const JobTrace single =
      run_single_job(single_job, exec, single_request, single_policy,
                     single_deq, single_config);

  std::vector<JobSubmission> subs;
  subs.push_back(JobSubmission{
      std::make_unique<dag::ProfileJob>(test_profile()), 0, {}});
  sched::AControlRequest proto;
  sched::AdaptiveQuantumLength set_policy(qconfig);
  alloc::EquiPartition set_deq;
  SimConfig set_config{.processors = 16};
  set_config.quantum_length_policy = &set_policy;
  const SimResult set =
      simulate_job_set(std::move(subs), exec, proto, set_deq, set_config);

  ASSERT_EQ(set.jobs.size(), 1u);
  expect_traces_equal(single, set.jobs.front());
  // The adaptive policy actually grew: more than one distinct length.
  bool grew = false;
  for (const auto& q : single.quanta) {
    grew = grew || q.length != single.quanta.front().length;
  }
  EXPECT_TRUE(grew);
}

}  // namespace
}  // namespace abg::sim
