#include "obs/profile.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "obs/sweep_timeline.hpp"
#include "util/json.hpp"

namespace abg::obs {
namespace {

TEST(Profiler, RecordAccumulates) {
  Profiler profiler;
  profiler.record("engine.sync", 0.5, 1000);
  profiler.record("engine.sync", 1.5, 3000);
  const ProfileSpan span = profiler.span("engine.sync");
  EXPECT_DOUBLE_EQ(span.seconds, 2.0);
  EXPECT_EQ(span.count, 2);
  EXPECT_EQ(span.items, 4000);
}

TEST(Profiler, UnknownSpanIsZeros) {
  const Profiler profiler;
  const ProfileSpan span = profiler.span("never");
  EXPECT_DOUBLE_EQ(span.seconds, 0.0);
  EXPECT_EQ(span.count, 0);
  EXPECT_EQ(span.items, 0);
}

TEST(Profiler, ScopeRecordsOnDestruction) {
  Profiler profiler;
  {
    auto scope = profiler.time("region", 10);
    scope.add_items(5);
    EXPECT_EQ(profiler.span("region").count, 0);  // Not recorded yet.
  }
  const ProfileSpan span = profiler.span("region");
  EXPECT_EQ(span.count, 1);
  EXPECT_EQ(span.items, 15);
  EXPECT_GE(span.seconds, 0.0);
}

TEST(Profiler, JsonShape) {
  Profiler profiler;
  profiler.record("engine.sync", 2.0, 1000);
  profiler.record("engine.async", 0.0, 500);  // Zero time: rate omitted as 0.
  std::ostringstream out;
  profiler.write(out);
  const std::string text = out.str();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');

  const util::Json doc = util::Json::parse(text);
  EXPECT_EQ(doc.at("benchmark").as_string(), "profile");
  const util::Json& sync = doc.at("spans").at("engine.sync");
  EXPECT_DOUBLE_EQ(sync.at("seconds").as_number(), 2.0);
  EXPECT_EQ(sync.at("count").as_integer(), 1);
  EXPECT_EQ(sync.at("items").as_integer(), 1000);
  EXPECT_DOUBLE_EQ(sync.at("items_per_second").as_number(), 500.0);
  const util::Json& async_span = doc.at("spans").at("engine.async");
  EXPECT_DOUBLE_EQ(async_span.at("items_per_second").as_number(), 0.0);
}

TEST(SweepTimeline, OneTrackPerWorkerOneSlicePerRun) {
  SweepTimeline timeline;
  timeline.record(0, "abg/fig5", 0.0, 1.5);
  timeline.record(1, "a-greedy/fig5", 1.5, 2.0);
  std::thread other(
      [&timeline] { timeline.record(2, "abg/fig6", 0.5, 2.5); });
  other.join();
  EXPECT_EQ(timeline.size(), 3u);

  const util::Json doc = util::Json::parse(timeline.to_trace().to_json().dump());
  const util::Json& events = doc.at("traceEvents");
  std::int64_t slices = 0;
  std::int64_t worker_tracks = 0;
  for (const util::Json& event : events.items()) {
    const std::string& phase = event.at("ph").as_string();
    if (phase == "X") {
      ++slices;
      EXPECT_GE(event.at("dur").as_number(), 0.0);
    } else if (phase == "M" && event.at("name").as_string() == "thread_name") {
      const std::string& label = event.at("args").at("name").as_string();
      EXPECT_EQ(label.rfind("worker ", 0), 0u) << label;
      ++worker_tracks;
    }
  }
  EXPECT_EQ(slices, 3);
  // The main thread ran two runs on one worker track; the helper thread
  // got its own.
  EXPECT_EQ(worker_tracks, 2);
}

TEST(SweepTimeline, SliceCarriesRunIdAndLabel) {
  SweepTimeline timeline;
  timeline.record(7, "abg/fig5", 0.25, 1.0);
  const util::Json doc = util::Json::parse(timeline.to_trace().to_json().dump());
  bool found = false;
  for (const util::Json& event : doc.at("traceEvents").items()) {
    if (event.at("ph").as_string() != "X") {
      continue;
    }
    found = true;
    EXPECT_EQ(event.at("name").as_string(), "run 7 abg/fig5");
    EXPECT_EQ(event.at("args").at("run_id").as_integer(), 7);
    EXPECT_DOUBLE_EQ(event.at("ts").as_number(), 250000.0);
    EXPECT_DOUBLE_EQ(event.at("dur").as_number(), 750000.0);
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace abg::obs
