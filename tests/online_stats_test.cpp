#include "open/online_stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace abg::open {
namespace {

TEST(Reservoir, ExactWhileUnderCapacity) {
  Reservoir reservoir(100, 1);
  for (int i = 1; i <= 99; ++i) {
    reservoir.add(static_cast<double>(i));
  }
  EXPECT_EQ(reservoir.seen(), 99);
  EXPECT_EQ(reservoir.size(), 99u);
  EXPECT_DOUBLE_EQ(reservoir.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(reservoir.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(reservoir.quantile(1.0), 99.0);
}

TEST(Reservoir, EmptyQuantileIsNan) {
  Reservoir reservoir(16, 1);
  EXPECT_TRUE(std::isnan(reservoir.quantile(0.5)));
}

TEST(Reservoir, BoundedMemoryAndApproximateQuantiles) {
  Reservoir reservoir(512, 9);
  const std::int64_t n = 100000;
  for (std::int64_t i = 0; i < n; ++i) {
    reservoir.add(static_cast<double>(i));
  }
  EXPECT_EQ(reservoir.seen(), n);
  EXPECT_EQ(reservoir.size(), 512u);
  // Rank standard error ~ sqrt(q(1-q)/512) ~ 2.2% at the median; allow
  // four sigma.
  EXPECT_NEAR(reservoir.quantile(0.5), 50000.0, 9000.0);
  EXPECT_NEAR(reservoir.quantile(0.95), 95000.0, 9000.0);
}

TEST(Reservoir, DeterministicForSeed) {
  Reservoir a(64, 5);
  Reservoir b(64, 5);
  for (int i = 0; i < 5000; ++i) {
    a.add(static_cast<double>(i % 997));
    b.add(static_cast<double>(i % 997));
  }
  EXPECT_EQ(a.samples(), b.samples());
}

TEST(Reservoir, MergeIsCommutative) {
  const auto fill = [](Reservoir& r, std::uint64_t seed, double shift) {
    util::Rng rng(seed);
    for (int i = 0; i < 3000; ++i) {
      r.add(shift + rng.uniform01() * 100.0);
    }
  };
  Reservoir ab(128, 1);
  Reservoir ba(128, 2);
  {
    Reservoir a(128, 3);
    Reservoir b(128, 4);
    fill(a, 11, 0.0);
    fill(b, 12, 1000.0);
    ab = a;
    ab.merge(b);
    ba = b;
    ba.merge(a);
  }
  EXPECT_EQ(ab.seen(), ba.seen());
  EXPECT_EQ(ab.samples(), ba.samples());
  // The merged sample covers both halves of the union.
  EXPECT_LT(ab.quantile(0.25), 100.0);
  EXPECT_GT(ab.quantile(0.75), 1000.0);
}

TEST(DownsampledSeries, SpansStreamAtBoundedCapacity) {
  DownsampledSeries series(64);
  for (int i = 0; i < 10000; ++i) {
    series.add(i, static_cast<double>(i));
  }
  EXPECT_LE(series.points().size(), 64u);
  ASSERT_FALSE(series.points().empty());
  EXPECT_EQ(series.points().front().step, 0);
  // Stride doubling keeps the retained points spread over the whole run.
  EXPECT_GT(series.points().back().step, 9000);
  for (std::size_t i = 1; i < series.points().size(); ++i) {
    EXPECT_GT(series.points()[i].step, series.points()[i - 1].step);
  }
}

TEST(OnlineStats, AggregatesMatchDirectComputation) {
  OnlineStats stats(OnlineStatsConfig{.reservoir_capacity = 1024,
                                      .series_capacity = 64,
                                      .seed = 3});
  // Jobs with known responses 100, 200, 300 and critical paths 50.
  stats.record_completion(0, 100, 50, 400, 10);
  stats.record_completion(10, 210, 50, 500, 20);
  stats.record_completion(20, 320, 50, 600, 30);
  EXPECT_EQ(stats.completed(), 3);
  EXPECT_EQ(stats.total_work(), 1500);
  EXPECT_EQ(stats.total_waste(), 60);
  EXPECT_DOUBLE_EQ(stats.response().mean(), 200.0);
  EXPECT_DOUBLE_EQ(stats.response_quantile(0.5), 200.0);
  EXPECT_DOUBLE_EQ(stats.slowdown().mean(), 4.0);
  EXPECT_DOUBLE_EQ(stats.slowdown().max(), 6.0);
}

TEST(OnlineStats, SlowdownClampsCriticalPath) {
  OnlineStats stats;
  stats.record_completion(0, 100, 0, 1, 0);  // degenerate critical path
  EXPECT_DOUBLE_EQ(stats.slowdown().mean(), 100.0);
}

TEST(OnlineStats, MergeCombinesShardsCommutatively) {
  const auto run_shard = [](std::uint64_t seed, int jobs) {
    OnlineStats stats(OnlineStatsConfig{.reservoir_capacity = 256,
                                        .series_capacity = 32,
                                        .seed = seed});
    util::Rng rng(seed);
    dag::Steps now = 0;
    for (int i = 0; i < jobs; ++i) {
      const auto response =
          static_cast<dag::Steps>(50.0 + rng.uniform01() * 500.0);
      stats.record_completion(now, now + response, 40, 100, 5);
      stats.record_queue_depth(now, i % 7);
      now += 10;
    }
    return stats;
  };
  const OnlineStats a = run_shard(1, 900);
  const OnlineStats b = run_shard(2, 1100);
  OnlineStats ab = a;
  ab.merge(b);
  OnlineStats ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.completed(), 2000);
  EXPECT_EQ(ab.completed(), ba.completed());
  EXPECT_EQ(ab.total_work(), ba.total_work());
  EXPECT_DOUBLE_EQ(ab.response().mean(), ba.response().mean());
  EXPECT_DOUBLE_EQ(ab.response_quantile(0.95), ba.response_quantile(0.95));
  EXPECT_DOUBLE_EQ(ab.queue_depth().mean(), ba.queue_depth().mean());
  EXPECT_EQ(ab.merges(), 1);
  EXPECT_EQ(ba.merges(), 1);
}

TEST(OnlineStats, ToJsonCarriesTheSummary) {
  OnlineStats stats;
  stats.record_completion(0, 100, 50, 400, 10);
  stats.record_queue_depth(0, 3);
  const util::Json j = stats.to_json();
  EXPECT_EQ(j.at("completed").as_integer(), 1);
  EXPECT_DOUBLE_EQ(j.at("response").at("mean").as_number(), 100.0);
  EXPECT_DOUBLE_EQ(j.at("slowdown").at("mean").as_number(), 2.0);
  EXPECT_TRUE(j.at("queue_series").is_array());
}

TEST(OnlineStats, ConstantMemoryOverLongStreams) {
  OnlineStats stats(OnlineStatsConfig{.reservoir_capacity = 128,
                                      .series_capacity = 32,
                                      .seed = 7});
  util::Rng rng(7);
  for (int i = 0; i < 200000; ++i) {
    const auto response =
        static_cast<dag::Steps>(1.0 + rng.uniform01() * 1000.0);
    stats.record_completion(i, i + response, 100, 50, 1);
    if (i % 16 == 0) {
      stats.record_queue_depth(i, i % 11);
    }
  }
  EXPECT_EQ(stats.completed(), 200000);
  // Percentiles of U(1, 1001) responses land near the uniform quantiles
  // (reservoir of 128: rank stderr ~4.4%; allow wide tolerance).
  EXPECT_NEAR(stats.response_quantile(0.5), 500.0, 150.0);
  EXPECT_LE(stats.queue_series().points().size(), 32u);
}

}  // namespace
}  // namespace abg::open
