#include "sched/a_greedy_request.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace abg::sched {
namespace {

QuantumStats quantum(int request, int allotment, dag::TaskCount work,
                     dag::Steps length = 100) {
  QuantumStats q;
  q.request = request;
  q.allotment = allotment;
  q.work = work;
  q.length = length;
  q.cpl = 1.0;
  q.full = true;
  return q;
}

TEST(AGreedy, RejectsBadParameters) {
  EXPECT_THROW(AGreedyRequest(AGreedyConfig{0.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(AGreedyRequest(AGreedyConfig{1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(AGreedyRequest(AGreedyConfig{0.8, 1.0}), std::invalid_argument);
  EXPECT_NO_THROW(AGreedyRequest(AGreedyConfig{0.8, 2.0}));
}

TEST(AGreedy, FirstRequestIsOne) {
  AGreedyRequest policy;
  EXPECT_EQ(policy.first_request(), 1);
}

TEST(AGreedy, EfficientSatisfiedMultiplies) {
  AGreedyRequest policy;  // delta = 0.8, rho = 2
  // usage = capacity (fully efficient), allotment == request.
  EXPECT_EQ(policy.next_request(quantum(1, 1, 100)), 2);
  EXPECT_EQ(policy.next_request(quantum(2, 2, 200)), 4);
  EXPECT_EQ(policy.next_request(quantum(4, 4, 400)), 8);
}

TEST(AGreedy, EfficientDeprivedHolds) {
  AGreedyRequest policy;
  policy.next_request(quantum(1, 1, 100));  // desire -> 2
  // Deprived: requested 2, got 1; efficient: used all of it.
  EXPECT_EQ(policy.next_request(quantum(2, 1, 100)), 2);
  EXPECT_DOUBLE_EQ(policy.desire(), 2.0);
}

TEST(AGreedy, InefficientDivides) {
  AGreedyRequest policy;
  policy.next_request(quantum(1, 1, 100));   // 2
  policy.next_request(quantum(2, 2, 200));   // 4
  // Usage 100 < 0.8 * 4 * 100: inefficient -> halve.
  EXPECT_EQ(policy.next_request(quantum(4, 4, 100)), 2);
}

TEST(AGreedy, DesireNeverDropsBelowOne) {
  AGreedyRequest policy;
  for (int i = 0; i < 5; ++i) {
    EXPECT_GE(policy.next_request(quantum(1, 1, 0)), 1);
  }
  EXPECT_DOUBLE_EQ(policy.desire(), 1.0);
}

TEST(AGreedy, OscillatesOnConstantParallelism) {
  // The Figure 1 phenomenon: a job with constant parallelism A = 10 under
  // granted requests.  Usage per quantum = min(allotment, 10) * L.
  // A-Greedy grows 1,2,4,8,16, finds 16 inefficient (10L < 0.8*16L),
  // drops to 8, finds 8 efficient+satisfied, doubles to 16, ... forever.
  AGreedyRequest policy;
  const double parallelism = 10.0;
  const dag::Steps length = 100;
  int desire = policy.first_request();
  std::vector<int> series;
  for (int q = 0; q < 24; ++q) {
    const auto usage = static_cast<dag::TaskCount>(
        std::min<double>(desire, parallelism) * static_cast<double>(length));
    desire = policy.next_request(quantum(desire, desire, usage, length));
    series.push_back(desire);
  }
  // Tail alternates 8, 16, 8, 16 ...
  const std::size_t n = series.size();
  EXPECT_NE(series[n - 1], series[n - 2]);
  EXPECT_EQ(series[n - 1], series[n - 3]);
  EXPECT_EQ(series[n - 2], series[n - 4]);
  const int lo = std::min(series[n - 1], series[n - 2]);
  const int hi = std::max(series[n - 1], series[n - 2]);
  EXPECT_EQ(lo, 8);
  EXPECT_EQ(hi, 16);
}

TEST(AGreedy, ResponsivenessControlsGrowthRate) {
  AGreedyRequest fast(AGreedyConfig{0.8, 4.0});
  EXPECT_EQ(fast.next_request(quantum(1, 1, 100)), 4);
  EXPECT_EQ(fast.next_request(quantum(4, 4, 400)), 16);
}

TEST(AGreedy, UtilizationThresholdBoundary) {
  // usage exactly delta * a * L counts as efficient (strict `<` for
  // inefficiency).
  AGreedyRequest policy(AGreedyConfig{0.5, 2.0});
  EXPECT_EQ(policy.next_request(quantum(1, 1, 50)), 2);  // 50 == 0.5*100
  // Just below the threshold: inefficient.
  AGreedyRequest policy2(AGreedyConfig{0.5, 2.0});
  policy2.next_request(quantum(1, 1, 100));  // -> 2
  EXPECT_EQ(policy2.next_request(quantum(2, 2, 99)), 1);
}

TEST(AGreedy, ResetRestoresInitialDesire) {
  AGreedyRequest policy;
  policy.next_request(quantum(1, 1, 100));
  policy.next_request(quantum(2, 2, 200));
  policy.reset();
  EXPECT_DOUBLE_EQ(policy.desire(), 1.0);
}

TEST(AGreedy, CloneCopiesConfig) {
  AGreedyRequest policy(AGreedyConfig{0.6, 3.0});
  const auto clone = policy.clone();
  auto* typed = dynamic_cast<AGreedyRequest*>(clone.get());
  ASSERT_NE(typed, nullptr);
  EXPECT_DOUBLE_EQ(typed->config().utilization, 0.6);
  EXPECT_DOUBLE_EQ(typed->config().responsiveness, 3.0);
}

TEST(AGreedy, NameIsStable) {
  AGreedyRequest policy;
  EXPECT_EQ(policy.name(), "a-greedy");
}

TEST(StaticRequest, ConstantAndValidated) {
  EXPECT_THROW(StaticRequest(0), std::invalid_argument);
  StaticRequest policy(16);
  EXPECT_EQ(policy.first_request(), 16);
  EXPECT_EQ(policy.next_request(quantum(16, 8, 100)), 16);
  EXPECT_EQ(policy.name(), "static");
  const auto clone = policy.clone();
  EXPECT_EQ(clone->first_request(), 16);
}

}  // namespace
}  // namespace abg::sched
