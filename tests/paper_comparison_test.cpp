// The paper's headline empirical claims (Section 7), asserted with
// conservative margins so the suite is robust to workload randomness:
//   * single jobs: ABG runs faster and wastes far fewer processor cycles
//     than A-Greedy (paper: ~20% time, ~50% waste on average);
//   * job sets at light load: ABG's makespan and mean response time are no
//     worse than A-Greedy's (paper: 10-15% better);
//   * both schedulers approach optimal running time for individual jobs
//     (running time close to the critical path in an unconstrained
//     environment).
// Exact paper-style series are produced by the bench/ harnesses.
#include <gtest/gtest.h>

#include <vector>

#include "core/run.hpp"
#include "sim/quantum_engine.hpp"
#include "util/stats.hpp"
#include "workload/fork_join.hpp"
#include "workload/job_set.hpp"

namespace abg {
namespace {

constexpr dag::Steps kQuantum = 200;
constexpr int kProcessors = 128;

struct SingleJobOutcome {
  double time_ratio_agreedy_over_abg = 0.0;
  double waste_abg_per_work = 0.0;
  double waste_agreedy_per_work = 0.0;
  double abg_time_over_cpl = 0.0;
};

SingleJobOutcome compare_on_job(std::uint64_t seed, double transition) {
  util::Rng rng(seed);
  const auto job = workload::make_fork_join_job(
      rng, workload::figure5_spec(transition, kQuantum));
  const sim::SingleJobConfig config{.processors = kProcessors,
                                    .quantum_length = kQuantum};

  const auto abg_job = job->fresh_clone();
  const sim::JobTrace abg_trace =
      core::run_single(core::abg_spec(), *abg_job, config);
  const auto ag_job = job->fresh_clone();
  const sim::JobTrace ag_trace =
      core::run_single(core::a_greedy_spec(), *ag_job, config);

  SingleJobOutcome out;
  out.time_ratio_agreedy_over_abg =
      static_cast<double>(ag_trace.response_time()) /
      static_cast<double>(abg_trace.response_time());
  out.waste_abg_per_work = static_cast<double>(abg_trace.total_waste()) /
                           static_cast<double>(abg_trace.work);
  out.waste_agreedy_per_work = static_cast<double>(ag_trace.total_waste()) /
                               static_cast<double>(ag_trace.work);
  out.abg_time_over_cpl = static_cast<double>(abg_trace.response_time()) /
                          static_cast<double>(abg_trace.critical_path);
  return out;
}

TEST(PaperComparison, SingleJobsAbgBeatsAGreedy) {
  util::RunningStats time_ratio;
  util::RunningStats abg_waste;
  util::RunningStats ag_waste;
  util::RunningStats abg_optimality;
  for (const double transition : {10.0, 30.0, 60.0}) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const SingleJobOutcome out =
          compare_on_job(seed * 7919, transition);
      time_ratio.add(out.time_ratio_agreedy_over_abg);
      abg_waste.add(out.waste_abg_per_work);
      ag_waste.add(out.waste_agreedy_per_work);
      abg_optimality.add(out.abg_time_over_cpl);
    }
  }
  // ABG is at least as fast on average (paper: ~20% faster).
  EXPECT_GT(time_ratio.mean(), 1.0);
  // ABG wastes substantially less than A-Greedy (paper: ~50% reduction).
  EXPECT_LT(abg_waste.mean(), 0.75 * ag_waste.mean());
  // Near-linear speedup: in the unconstrained environment the critical
  // path is the optimal running time; ABG stays within 2x of it.
  EXPECT_LT(abg_optimality.mean(), 2.0);
  EXPECT_GE(abg_optimality.min(), 1.0);  // nobody beats the critical path
}

TEST(PaperComparison, AbgNeverSlowerThanCriticalPathBound) {
  // Sanity on both schedulers: running time >= T_inf always (unit tasks).
  for (std::uint64_t seed : {11u, 22u}) {
    util::Rng rng(seed);
    const auto job = workload::make_fork_join_job(
        rng, workload::figure5_spec(20.0, kQuantum));
    const sim::SingleJobConfig config{.processors = kProcessors,
                                      .quantum_length = kQuantum};
    for (const auto& spec : {core::abg_spec(), core::a_greedy_spec()}) {
      const auto clone = job->fresh_clone();
      const sim::JobTrace trace = core::run_single(spec, *clone, config);
      EXPECT_GE(trace.response_time(), trace.critical_path) << spec.name;
      EXPECT_EQ(trace.work, job->total_work());
    }
  }
}

TEST(PaperComparison, LightlyLoadedJobSetsAbgCompetitive) {
  // Paper Figure 6 at light load: ABG outperforms A-Greedy by 10-15% in
  // makespan and mean response time.  Assert the direction with margin:
  // ABG is at worst 3% slower, and on average at least as good.
  util::RunningStats makespan_ratio;
  util::RunningStats response_ratio;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    util::Rng rng(seed * 104729);
    workload::JobSetSpec spec;
    spec.load = 0.5;
    spec.processors = kProcessors;
    spec.min_transition_factor = 2.0;
    spec.max_transition_factor = 50.0;
    spec.phase_pairs = 3;
    spec.min_phase_levels = kQuantum / 2;
    spec.max_phase_levels = 2 * kQuantum;
    auto generated = workload::make_job_set(rng, spec);

    auto to_submissions = [](const std::vector<workload::GeneratedJob>& gs) {
      std::vector<sim::JobSubmission> subs;
      for (const auto& g : gs) {
        sim::JobSubmission s;
        s.job = std::make_unique<dag::ProfileJob>(g.job->widths());
        subs.push_back(std::move(s));
      }
      return subs;
    };
    const sim::SimConfig config{.processors = kProcessors,
                                .quantum_length = kQuantum};
    const auto abg = core::run_set(core::abg_spec(),
                                   to_submissions(generated), config);
    const auto ag = core::run_set(core::a_greedy_spec(),
                                  to_submissions(generated), config);
    makespan_ratio.add(static_cast<double>(ag.makespan) /
                       static_cast<double>(abg.makespan));
    response_ratio.add(ag.mean_response_time / abg.mean_response_time);
  }
  EXPECT_GE(makespan_ratio.mean(), 1.0);
  EXPECT_GE(response_ratio.mean(), 1.0);
  EXPECT_GE(makespan_ratio.min(), 0.97);
  EXPECT_GE(response_ratio.min(), 0.97);
}

TEST(PaperComparison, HeavyLoadAdvantageDiminishes) {
  // Paper: under heavy load requests are deprived and the two schedulers
  // perform comparably.  Assert the ratio is close to 1.
  util::Rng rng(31337);
  workload::JobSetSpec spec;
  spec.load = 4.0;
  spec.processors = 64;
  spec.min_transition_factor = 2.0;
  spec.max_transition_factor = 50.0;
  spec.phase_pairs = 2;
  spec.min_phase_levels = kQuantum / 2;
  spec.max_phase_levels = 2 * kQuantum;
  auto generated = workload::make_job_set(rng, spec);

  auto to_submissions = [&generated] {
    std::vector<sim::JobSubmission> subs;
    for (const auto& g : generated) {
      sim::JobSubmission s;
      s.job = std::make_unique<dag::ProfileJob>(g.job->widths());
      subs.push_back(std::move(s));
    }
    return subs;
  };
  const sim::SimConfig config{.processors = 64, .quantum_length = kQuantum};
  const auto abg = core::run_set(core::abg_spec(), to_submissions(), config);
  const auto ag =
      core::run_set(core::a_greedy_spec(), to_submissions(), config);
  const double ratio = static_cast<double>(ag.makespan) /
                       static_cast<double>(abg.makespan);
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.6);
}

}  // namespace
}  // namespace abg
