#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace abg::util {
namespace {

TEST(Table, RejectsEmptyHeaderList) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, CountsRowsAndColumns) {
  Table t({"x", "y", "z"});
  EXPECT_EQ(t.column_count(), 3u);
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1", "2", "3"});
  t.add_numeric_row({4.0, 5.0, 6.0});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvOutput) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "name,value\nalpha,1\nbeta,2\n");
}

TEST(Table, AlignedOutputContainsAllCells) {
  Table t({"col", "value"});
  t.add_row({"long-cell-name", "7"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("col"), std::string::npos);
  EXPECT_NE(out.find("long-cell-name"), std::string::npos);
  EXPECT_NE(out.find("7"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, NumericRowUsesPrecision) {
  Table t({"v"});
  t.add_numeric_row({1.23456}, 2);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "v\n1.23\n");
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
  EXPECT_EQ(format_double(-1.5, 1), "-1.5");
}

}  // namespace
}  // namespace abg::util
