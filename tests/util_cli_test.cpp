#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace abg::util {
namespace {

Cli make_cli(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Cli(static_cast<int>(args.size()), args.data());
}

TEST(Cli, ParsesEqualsForm) {
  const Cli cli = make_cli({"--seed=42", "--rate=0.25"});
  EXPECT_EQ(cli.get_int("seed", 0), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("rate", 0.0), 0.25);
}

TEST(Cli, ParsesSpaceForm) {
  const Cli cli = make_cli({"--seed", "7"});
  EXPECT_EQ(cli.get_int("seed", 0), 7);
}

TEST(Cli, BareFlagIsBooleanTrue) {
  const Cli cli = make_cli({"--full"});
  EXPECT_TRUE(cli.has("full"));
  EXPECT_TRUE(cli.get_bool("full", false));
}

TEST(Cli, MissingFlagUsesFallback) {
  const Cli cli = make_cli({});
  EXPECT_FALSE(cli.has("seed"));
  EXPECT_EQ(cli.get_int("seed", 99), 99);
  EXPECT_DOUBLE_EQ(cli.get_double("rate", 0.5), 0.5);
  EXPECT_FALSE(cli.get_bool("full", false));
  EXPECT_EQ(cli.get("name", "dflt"), "dflt");
}

TEST(Cli, BooleanValueForms) {
  EXPECT_TRUE(make_cli({"--x=true"}).get_bool("x", false));
  EXPECT_TRUE(make_cli({"--x=1"}).get_bool("x", false));
  EXPECT_TRUE(make_cli({"--x=yes"}).get_bool("x", false));
  EXPECT_FALSE(make_cli({"--x=false"}).get_bool("x", true));
  EXPECT_FALSE(make_cli({"--x=0"}).get_bool("x", true));
  EXPECT_FALSE(make_cli({"--x=off"}).get_bool("x", true));
}

TEST(Cli, RejectsMalformedValues) {
  EXPECT_THROW(make_cli({"--n=abc"}).get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(make_cli({"--n=1.5x"}).get_double("n", 0.0),
               std::invalid_argument);
  EXPECT_THROW(make_cli({"--b=maybe"}).get_bool("b", false),
               std::invalid_argument);
  EXPECT_THROW(make_cli({"--=3"}), std::invalid_argument);
}

TEST(Cli, PositiveIntAcceptsValidValues) {
  EXPECT_EQ(make_cli({"--hier-groups=4"}).get_positive_int("hier-groups", 0),
            4);
  EXPECT_EQ(make_cli({"--hier-groups", "1"}).get_positive_int("hier-groups",
                                                              0),
            1);
}

TEST(Cli, PositiveIntAbsentFlagReturnsFallbackUnvalidated) {
  // The fallback expresses "feature off" (0 here) and is exempt from the
  // >= 1 check — only user-supplied values are validated.
  const Cli cli = make_cli({});
  EXPECT_EQ(cli.get_positive_int("hier-groups", 0), 0);
  EXPECT_EQ(cli.get_positive_int("hier-groups", -5), -5);
}

TEST(Cli, PositiveIntRejectsZeroNegativeAndJunk) {
  EXPECT_THROW(
      make_cli({"--hier-groups=0"}).get_positive_int("hier-groups", 1),
      std::invalid_argument);
  EXPECT_THROW(
      make_cli({"--hier-groups=-3"}).get_positive_int("hier-groups", 1),
      std::invalid_argument);
  EXPECT_THROW(
      make_cli({"--hier-groups=four"}).get_positive_int("hier-groups", 1),
      std::invalid_argument);
  // The diagnostic names the flag and the offending value.
  try {
    make_cli({"--hier-groups=0"}).get_positive_int("hier-groups", 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("--hier-groups"), std::string::npos);
    EXPECT_NE(what.find("positive integer"), std::string::npos);
    EXPECT_NE(what.find("'0'"), std::string::npos);
  }
}

TEST(Cli, CollectsPositionalArguments) {
  const Cli cli = make_cli({"input.txt", "--seed=1", "more"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.txt");
  EXPECT_EQ(cli.positional()[1], "more");
}

TEST(Cli, LastValueWinsOnRepeat) {
  const Cli cli = make_cli({"--seed=1", "--seed=2"});
  EXPECT_EQ(cli.get_int("seed", 0), 2);
}

TEST(Cli, NegativeNumbersAsValues) {
  // `--n -3`: the token "-3" is not a --flag, so it is consumed as a value.
  const Cli cli = make_cli({"--n", "-3"});
  EXPECT_EQ(cli.get_int("n", 0), -3);
}


TEST(Cli, GetAllCollectsRepeatedFlags) {
  const Cli cli = make_cli(
      {"--param=scheduler=abg", "--param", "load=1,2", "--seed=3"});
  const std::vector<std::string> params = cli.get_all("param");
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0], "scheduler=abg");
  EXPECT_EQ(params[1], "load=1,2");
  EXPECT_EQ(cli.get_all("seed"), std::vector<std::string>{"3"});
}

TEST(Cli, GetAllOfAbsentFlagIsEmpty) {
  const Cli cli = make_cli({"--seed=3"});
  EXPECT_TRUE(cli.get_all("param").empty());
}

TEST(Cli, RepeatedScalarFlagLastOccurrenceWins) {
  const Cli cli = make_cli({"--seed=3", "--seed=9"});
  EXPECT_EQ(cli.get_int("seed", 0), 9);
  EXPECT_EQ(cli.get_all("seed").size(), 2u);
}

TEST(Cli, PositiveIntRejectsZeroNegativeAndGarbage) {
  EXPECT_EQ(make_cli({"--jobs=4"}).get_positive_int("jobs", 1), 4);
  // The fallback is the caller's business and returns unvalidated.
  EXPECT_EQ(make_cli({}).get_positive_int("jobs", 0), 0);
  EXPECT_THROW(make_cli({"--jobs=0"}).get_positive_int("jobs", 1),
               std::invalid_argument);
  EXPECT_THROW(make_cli({"--jobs=-2"}).get_positive_int("jobs", 1),
               std::invalid_argument);
  EXPECT_THROW(make_cli({"--jobs=many"}).get_positive_int("jobs", 1),
               std::invalid_argument);
}

TEST(Cli, NonNegativeIntAcceptsZeroRejectsNegative) {
  EXPECT_EQ(make_cli({"--max-retries=0"}).get_non_negative_int(
                "max-retries", 3),
            0);
  EXPECT_EQ(make_cli({}).get_non_negative_int("max-retries", 3), 3);
  EXPECT_THROW(
      make_cli({"--max-retries=-1"}).get_non_negative_int("max-retries", 0),
      std::invalid_argument);
  EXPECT_THROW(
      make_cli({"--max-retries=x"}).get_non_negative_int("max-retries", 0),
      std::invalid_argument);
}

TEST(Cli, PositiveDoubleRejectsZeroNegativeAndGarbage) {
  EXPECT_DOUBLE_EQ(
      make_cli({"--run-timeout=2.5"}).get_positive_double("run-timeout", 0.0),
      2.5);
  EXPECT_DOUBLE_EQ(make_cli({}).get_positive_double("run-timeout", 0.0), 0.0);
  EXPECT_THROW(
      make_cli({"--run-timeout=0"}).get_positive_double("run-timeout", 1.0),
      std::invalid_argument);
  EXPECT_THROW(
      make_cli({"--run-timeout=-0.5"}).get_positive_double("run-timeout", 1.0),
      std::invalid_argument);
  EXPECT_THROW(
      make_cli({"--run-timeout=soon"}).get_positive_double("run-timeout", 1.0),
      std::invalid_argument);
  EXPECT_THROW(
      make_cli({"--run-timeout=nan"}).get_positive_double("run-timeout", 1.0),
      std::invalid_argument);
}

TEST(Cli, ValidationErrorNamesTheFlag) {
  try {
    make_cli({"--backoff=-1"}).get_positive_double("backoff", 0.1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--backoff"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace abg::util
