// Generator semantics: explicit replay, determinism, machine-relative
// defaults, and the open-system job factory.
#include "scenario/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "scenario/spec.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace abg::scenario {
namespace {

ScenarioSpec parse(const std::string& text) {
  return ScenarioSpec::from_json(util::Json::parse(text));
}

std::int64_t profile_work(const std::vector<dag::TaskCount>& widths) {
  return std::accumulate(widths.begin(), widths.end(), std::int64_t{0});
}

const char* kExplicitDoc = R"({
  "name": "explicit-three",
  "generator": "explicit",
  "params": {"jobs": [
    {"release": 0, "phases": [[8, 400], [1, 100], [16, 300]]},
    {"release": 250, "phases": [[4, 600]]},
    {"release": 800, "phases": [[32, 200], [2, 500]]}
  ]}
})";

TEST(ScenarioGenerators, ExplicitJobsReplayExactly) {
  const ScenarioSpec spec = parse(kExplicitDoc);
  util::Rng rng(7);
  const auto jobs = generate_jobs(spec, rng, 128, 1000);
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].release_step, 0);
  EXPECT_EQ(jobs[1].release_step, 250);
  EXPECT_EQ(jobs[2].release_step, 800);
  // Work is the literal sum of width * levels per phase.
  EXPECT_EQ(jobs[0].job->total_work(), 8 * 400 + 1 * 100 + 16 * 300);
  EXPECT_EQ(jobs[1].job->total_work(), 4 * 600);
  EXPECT_EQ(jobs[2].job->total_work(), 32 * 200 + 2 * 500);
}

TEST(ScenarioGenerators, ExplicitIgnoresSeedEntirely) {
  const ScenarioSpec spec = parse(kExplicitDoc);
  util::Rng a(1);
  util::Rng b(999);
  const auto pa = sample_profile(spec, a, 128, 1000, 1.0, 0);
  const auto pb = sample_profile(spec, b, 128, 1000, 1.0, 0);
  EXPECT_EQ(pa, pb);
  // job_index wraps modulo the literal list.
  const auto p3 = sample_profile(spec, a, 128, 1000, 1.0, 3);
  EXPECT_EQ(p3, pa);
}

TEST(ScenarioGenerators, SampleProfileIsSeedDeterministic) {
  const ScenarioSpec spec = parse(R"({
    "name": "mp", "generator": "multiphase", "jobs": 4,
    "params": {"phases": [{"width": [2, 16], "levels": [50, 200]},
                          {"width": 1, "levels": [10, 40]}]}
  })");
  util::Rng a(42);
  util::Rng b(42);
  EXPECT_EQ(sample_profile(spec, a, 64, 1000, 1.0, 0),
            sample_profile(spec, b, 64, 1000, 1.0, 0));
  util::Rng c(43);
  util::Rng d(42);
  // A different seed draws a different job (with overwhelming probability
  // for these ranges; pinned here as a regression canary).
  EXPECT_NE(sample_profile(spec, c, 64, 1000, 1.0, 0),
            sample_profile(spec, d, 64, 1000, 1.0, 0));
}

TEST(ScenarioGenerators, OscillatorResolvesMachineRelativeDefaults) {
  const ScenarioSpec spec = parse(R"({
    "name": "osc", "generator": "oscillator", "jobs": 1,
    "params": {"low": 1, "high": 0, "half_period": 0, "periods": 2}
  })");
  util::Rng rng(5);
  const auto widths = sample_profile(spec, rng, 32, 500, 1.0, 0);
  // high = 0 -> P, half_period = 0 -> L: two periods of (L low, L high).
  ASSERT_EQ(widths.size(), 4u * 500u);
  EXPECT_EQ(widths.front(), 1);
  EXPECT_EQ(widths[500], 32);
  EXPECT_EQ(*std::max_element(widths.begin(), widths.end()), 32);
}

TEST(ScenarioGenerators, SublinearMaxWidthZeroCapsAtMachineSize) {
  const ScenarioSpec spec = parse(R"({
    "name": "sub", "generator": "sublinear", "jobs": 1,
    "params": {"classes": [{"alpha": 0.5, "work": 5000, "max_width": 0}]}
  })");
  util::Rng rng(11);
  const auto widths = sample_profile(spec, rng, 16, 1000, 1.0, 0);
  ASSERT_FALSE(widths.empty());
  EXPECT_EQ(*std::max_element(widths.begin(), widths.end()), 16);
  // The staircase preserves the work budget to within rounding.
  EXPECT_GE(profile_work(widths), 5000 / 2);
}

TEST(ScenarioGenerators, ReleaseSchedulesShapeReleaseSteps) {
  const char* base = R"({
    "name": "rel", "generator": "multiphase", "jobs": 5,
    "release": {"schedule": "%s", "gap": 100},
    "params": {"phases": [{"width": 2, "levels": 10}]}
  })";
  char staggered_doc[512];
  std::snprintf(staggered_doc, sizeof(staggered_doc), base, "staggered");
  util::Rng rng(3);
  const auto staggered =
      generate_jobs(parse(staggered_doc), rng, 8, 100);
  ASSERT_EQ(staggered.size(), 5u);
  for (std::size_t i = 0; i < staggered.size(); ++i) {
    EXPECT_EQ(staggered[i].release_step,
              static_cast<dag::Steps>(100 * i));
  }

  char batched_doc[512];
  std::snprintf(batched_doc, sizeof(batched_doc), base, "batched");
  util::Rng rng2(3);
  const auto batched = generate_jobs(parse(batched_doc), rng2, 8, 100);
  for (const auto& submission : batched) {
    EXPECT_EQ(submission.release_step, 0);
  }

  char poisson_doc[512];
  std::snprintf(poisson_doc, sizeof(poisson_doc), base, "poisson");
  util::Rng rng3(3);
  const auto poisson = generate_jobs(parse(poisson_doc), rng3, 8, 100);
  for (std::size_t i = 1; i < poisson.size(); ++i) {
    EXPECT_GE(poisson[i].release_step, poisson[i - 1].release_step);
  }
}

TEST(ScenarioGenerators, OpenFactoryBuildsJobsAndScalesWork) {
  const ScenarioSpec spec = parse(kExplicitDoc);
  const open::JobFactory factory = make_open_factory(spec, 128, 1000);
  util::Rng rng(9);
  open::Arrival arrival;
  const auto job = factory(rng, arrival);
  ASSERT_NE(job, nullptr);
  EXPECT_GT(job->total_work(), 0);
}

TEST(ScenarioGenerators, RejectsDegenerateMachine) {
  const ScenarioSpec spec = parse(kExplicitDoc);
  util::Rng rng(1);
  EXPECT_THROW(sample_profile(spec, rng, 0, 1000, 1.0, 0),
               std::invalid_argument);
  EXPECT_THROW(sample_profile(spec, rng, 8, 0, 1.0, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace abg::scenario
