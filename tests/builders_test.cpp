#include "dag/builders.hpp"

#include <gtest/gtest.h>

#include "dag/characteristics.hpp"
#include "dag/profile_job.hpp"

namespace abg::dag::builders {
namespace {

TEST(Chain, Shape) {
  const DagStructure s = chain(4);
  EXPECT_EQ(s.node_count(), 4u);
  EXPECT_EQ(s.edge_count(), 3u);
  DagJob job{s};
  EXPECT_EQ(job.critical_path(), 4);
}

TEST(Chain, SingleNode) {
  const DagStructure s = chain(1);
  EXPECT_EQ(s.node_count(), 1u);
  EXPECT_EQ(s.edge_count(), 0u);
}

TEST(Chain, RejectsNonPositive) {
  EXPECT_THROW(chain(0), std::invalid_argument);
}

TEST(Diamond, Shape) {
  const DagStructure s = diamond(6);
  EXPECT_EQ(s.node_count(), 8u);
  EXPECT_EQ(s.edge_count(), 12u);
  DagJob job{s};
  EXPECT_EQ(job.critical_path(), 3);
}

TEST(Diamond, RejectsNonPositive) {
  EXPECT_THROW(diamond(0), std::invalid_argument);
}

TEST(BarrierProfile, LevelsMatchWidths) {
  const std::vector<TaskCount> widths{2, 3, 1};
  DagJob job{barrier_profile(widths)};
  EXPECT_EQ(job.total_work(), 6);
  EXPECT_EQ(job.critical_path(), 3);
  const auto& sizes = job.level_sizes();
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 2);
  EXPECT_EQ(sizes[1], 3);
  EXPECT_EQ(sizes[2], 1);
}

TEST(BarrierProfile, EdgeCountIsSumOfAdjacentProducts) {
  const DagStructure s = barrier_profile({2, 3, 4});
  EXPECT_EQ(s.edge_count(), 2u * 3u + 3u * 4u);
}

TEST(BarrierProfile, EmptyAndSingle) {
  EXPECT_EQ(barrier_profile({}).node_count(), 0u);
  const DagStructure s = barrier_profile({5});
  EXPECT_EQ(s.node_count(), 5u);
  EXPECT_EQ(s.edge_count(), 0u);
}

TEST(BarrierProfile, RejectsZeroWidth) {
  EXPECT_THROW(barrier_profile({1, 0}), std::invalid_argument);
}

TEST(ForkJoin, SerialOnlyIsChain) {
  const DagStructure s = fork_join({{1, 5}});
  EXPECT_EQ(s.node_count(), 5u);
  DagJob job{s};
  EXPECT_EQ(job.critical_path(), 5);
}

TEST(ForkJoin, ClassicShape) {
  // serial(2) -> parallel(3 branches x 2) -> serial(1)
  const DagStructure s = fork_join({{1, 2}, {3, 2}, {1, 1}});
  DagJob job{s};
  EXPECT_EQ(job.total_work(), 2 + 6 + 1);
  // Critical path: 2 serial + 2 branch + 1 join = 5.
  EXPECT_EQ(job.critical_path(), 5);
  const auto& sizes = job.level_sizes();
  ASSERT_EQ(sizes.size(), 5u);
  EXPECT_EQ(sizes[0], 1);
  EXPECT_EQ(sizes[1], 1);
  EXPECT_EQ(sizes[2], 3);
  EXPECT_EQ(sizes[3], 3);
  EXPECT_EQ(sizes[4], 1);
}

TEST(ForkJoin, BranchesAreIndependentChains) {
  // Width-2, length-3 parallel phase between two serial tasks: branch
  // tasks depend only on their own predecessor, not on the sibling branch.
  const DagStructure s = fork_join({{1, 1}, {2, 3}, {1, 1}});
  DagJob job{s};
  // With 1 processor and FIFO order, one branch can advance while the
  // other waits — possible only without cross-branch barriers.
  job.step(10, PickOrder::kFifo);             // fork task
  EXPECT_EQ(job.ready_count(), 2);            // both branch heads
  EXPECT_EQ(job.step(1, PickOrder::kFifo), 1);
  EXPECT_EQ(job.ready_count(), 2);            // next of branch A + head of B
}

TEST(ForkJoin, RejectsBadSpecs) {
  EXPECT_THROW(fork_join({{0, 1}}), std::invalid_argument);
  EXPECT_THROW(fork_join({{1, 0}}), std::invalid_argument);
}

TEST(ForkJoin, StartsWithParallelPhase) {
  const DagStructure s = fork_join({{4, 1}, {1, 1}});
  DagJob job{s};
  EXPECT_EQ(job.ready_count(), 4);
  EXPECT_EQ(job.critical_path(), 2);
}

TEST(RandomLayered, LayerEqualsLevel) {
  util::Rng rng(5);
  const DagStructure s = random_layered(rng, 10, 5, 0.5);
  DagJob job{s};
  EXPECT_EQ(job.critical_path(), 10);
  // Every non-source node has at least one parent (guaranteed by builder),
  // so level l is non-empty for all l < 10.
  for (const TaskCount size : job.level_sizes()) {
    EXPECT_GE(size, 1);
  }
}

TEST(RandomLayered, Deterministic) {
  util::Rng a(42);
  util::Rng b(42);
  const DagStructure sa = random_layered(a, 8, 4, 0.3);
  const DagStructure sb = random_layered(b, 8, 4, 0.3);
  ASSERT_EQ(sa.node_count(), sb.node_count());
  for (std::size_t i = 0; i < sa.node_count(); ++i) {
    EXPECT_EQ(sa.children[i], sb.children[i]);
  }
}

TEST(RandomLayered, RejectsBadArguments) {
  util::Rng rng(1);
  EXPECT_THROW(random_layered(rng, 0, 4, 0.5), std::invalid_argument);
  EXPECT_THROW(random_layered(rng, 3, 0, 0.5), std::invalid_argument);
}

TEST(ProfileFromPhases, ExpandsWidths) {
  const auto widths = profile_from_phases({{1, 2}, {5, 3}});
  const std::vector<TaskCount> expected{1, 1, 5, 5, 5};
  EXPECT_EQ(widths, expected);
}

TEST(ProfileFromPhases, MatchesForkJoinWorkAndCpl) {
  const std::vector<PhaseSpec> phases{{1, 3}, {4, 2}, {1, 1}, {7, 2}};
  const auto widths = profile_from_phases(phases);
  DagJob dag_job{fork_join(phases)};
  ProfileJob profile_job{widths};
  EXPECT_EQ(dag_job.total_work(), profile_job.total_work());
  EXPECT_EQ(dag_job.critical_path(), profile_job.critical_path());
}

}  // namespace
}  // namespace abg::dag::builders
