// Differential suite for the skip-ahead engines: the stride-planned async
// driver (SimConfig::skip_ahead = true, the default) must produce traces
// BYTE-IDENTICAL to the stepwise reference driver (skip_ahead = false) on
// randomized job sets across the whole feature matrix — quantum-length
// policies, reallocation overhead, admission caps, staggered releases —
// and a job without a phase view must take the stepwise fallback
// transparently, inside a batch that otherwise skips ahead.  "Byte
// identical" is checked on the serialized CSV traces (sim/trace_io.hpp),
// the same serialization the golden fixtures pin.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "alloc/equipartition.hpp"
#include "dag/profile_job.hpp"
#include "fault/fault_plan.hpp"
#include "sched/a_control.hpp"
#include "sched/execution_policy.hpp"
#include "sched/quantum_length.hpp"
#include "sim/async_simulator.hpp"
#include "sim/simulator.hpp"
#include "sim/trace_io.hpp"
#include "util/rng.hpp"
#include "workload/profiles.hpp"

namespace abg::sim {
namespace {

/// A ProfileJob with its closed form hidden: no phase view, and the
/// generic stepwise run_quantum.  Behaviourally identical to the wrapped
/// profile, so it drives the engines' stepwise fallback with known-good
/// semantics.
class OpaqueProfileJob final : public dag::Job {
 public:
  explicit OpaqueProfileJob(std::vector<dag::TaskCount> widths)
      : inner_(std::move(widths)) {}

  bool finished() const override { return inner_.finished(); }
  dag::TaskCount step(int procs, dag::PickOrder order) override {
    return inner_.step(procs, order);
  }
  // run_quantum: the Job base-class unit-step loop.  phase_view: the null
  // default.  Both inherited on purpose.
  dag::TaskCount total_work() const override { return inner_.total_work(); }
  dag::Steps critical_path() const override {
    return inner_.critical_path();
  }
  dag::TaskCount completed_work() const override {
    return inner_.completed_work();
  }
  double level_progress() const override { return inner_.level_progress(); }
  dag::TaskCount ready_count() const override {
    return inner_.ready_count();
  }
  std::unique_ptr<dag::Job> fresh_clone() const override {
    return std::make_unique<OpaqueProfileJob>(inner_.widths());
  }

 private:
  dag::ProfileJob inner_;
};

std::vector<dag::TaskCount> random_profile(util::Rng& rng) {
  const auto levels = static_cast<std::size_t>(rng.uniform_int(2, 10));
  std::vector<dag::TaskCount> widths(levels);
  for (auto& w : widths) {
    w = rng.uniform_int(1, 60);
  }
  return widths;
}

std::vector<JobSubmission> random_set(std::uint64_t seed, std::size_t jobs,
                                      bool opaque_mix = false) {
  util::Rng rng(util::Rng::derive_seed(4242, seed));
  std::vector<JobSubmission> subs;
  for (std::size_t i = 0; i < jobs; ++i) {
    auto widths = random_profile(rng);
    std::unique_ptr<dag::Job> job;
    if (opaque_mix && i % 3 == 1) {
      job = std::make_unique<OpaqueProfileJob>(std::move(widths));
    } else {
      job = std::make_unique<dag::ProfileJob>(std::move(widths));
    }
    subs.push_back(JobSubmission{
        std::move(job),
        static_cast<dag::Steps>(rng.uniform_int(0, 200)),
        {}});
  }
  return subs;
}

std::string serialize(const SimResult& result) {
  std::ostringstream os;
  for (const JobTrace& trace : result.jobs) {
    write_trace_csv(os, trace);
    os << "\n";
  }
  os << "makespan=" << result.makespan << " quanta=" << result.quanta
     << " waste=" << result.total_waste
     << " mrt=" << result.mean_response_time << "\n";
  return os.str();
}

/// Runs the identical scenario under both advance modes and requires the
/// serialized results to match byte for byte.
void expect_modes_identical(std::uint64_t seed, SimConfig config,
                            std::size_t jobs, bool opaque_mix = false) {
  sched::BGreedyExecution exec;
  sched::AControlRequest proto;

  config.skip_ahead = true;
  alloc::EquiPartition deq_fast;
  const SimResult fast = simulate_job_set_async(
      random_set(seed, jobs, opaque_mix), exec, proto, deq_fast, config);

  config.skip_ahead = false;
  alloc::EquiPartition deq_slow;
  const SimResult slow = simulate_job_set_async(
      random_set(seed, jobs, opaque_mix), exec, proto, deq_slow, config);

  ASSERT_EQ(serialize(fast), serialize(slow)) << "seed " << seed;
}

TEST(SkipAheadDifferentialTest, PlainRandomSets) {
  SimConfig config;
  config.processors = 32;
  config.quantum_length = 50;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    expect_modes_identical(seed, config, 6);
  }
}

TEST(SkipAheadDifferentialTest, SmallQuantaManyBoundaries) {
  SimConfig config;
  config.processors = 16;
  config.quantum_length = 3;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    expect_modes_identical(seed, config, 5);
  }
}

TEST(SkipAheadDifferentialTest, AdmissionCapQueuesJobs) {
  SimConfig config;
  config.processors = 32;
  config.quantum_length = 40;
  config.max_active_jobs = 2;  // forces queue churn and admission events
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    expect_modes_identical(seed, config, 7);
  }
}

TEST(SkipAheadDifferentialTest, ReallocationOverheadMigrationDebt) {
  SimConfig config;
  config.processors = 24;
  config.quantum_length = 30;
  config.reallocation_cost_per_proc = 3;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    expect_modes_identical(seed, config, 6);
  }
}

TEST(SkipAheadDifferentialTest, AdaptiveQuantumLengths) {
  sched::AdaptiveQuantumConfig qc;
  qc.min_length = 8;
  qc.max_length = 128;
  sched::AdaptiveQuantumLength policy(qc);
  SimConfig config;
  config.processors = 32;
  config.quantum_length = 8;
  config.quantum_length_policy = &policy;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    expect_modes_identical(seed, config, 5);
  }
}

TEST(SkipAheadDifferentialTest, OpaqueJobsForceStepwiseFallback) {
  // A mixed batch: jobs without a phase view drop the whole planner to
  // unit strides, and the result must still match the pure reference.
  SimConfig config;
  config.processors = 32;
  config.quantum_length = 25;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    expect_modes_identical(seed, config, 6, /*opaque_mix=*/true);
  }
}

TEST(SkipAheadDifferentialTest, FaultPlansForceStepwise) {
  // With a fault plan both modes must take the identical stepwise path —
  // skip_ahead is documented as a no-op under faults.
  fault::FaultPlan plan;
  fault::FaultEvent fail;
  fail.step = 40;
  fail.kind = fault::FaultKind::kProcessorFailure;
  fail.processors = 8;
  plan.events.push_back(fail);
  fault::FaultEvent repair;
  repair.step = 120;
  repair.kind = fault::FaultKind::kProcessorRepair;
  repair.processors = 8;
  plan.events.push_back(repair);
  fault::FaultEvent crash;
  crash.step = 90;
  crash.kind = fault::FaultKind::kJobCrash;
  crash.job = 1;
  plan.events.push_back(crash);

  SimConfig config;
  config.processors = 24;
  config.quantum_length = 20;
  config.faults = &plan;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    expect_modes_identical(seed, config, 5);
  }
}

/// The combinatorial stress case: everything at once.
TEST(SkipAheadDifferentialTest, KitchenSink) {
  sched::AdaptiveQuantumConfig qc;
  qc.min_length = 5;
  qc.max_length = 60;
  sched::AdaptiveQuantumLength policy(qc);
  SimConfig config;
  config.processors = 20;
  config.quantum_length = 10;
  config.max_active_jobs = 3;
  config.reallocation_cost_per_proc = 2;
  config.quantum_length_policy = &policy;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    expect_modes_identical(seed, config, 8, /*opaque_mix=*/true);
  }
}

/// The sync engine's whole-quantum path must be unaffected by job opacity:
/// an opaque job runs through ExecutionPolicy::run_quantum's stepwise
/// loop and must land on the identical trace as the closed-form profile.
TEST(SkipAheadDifferentialTest, SyncEngineOpaqueEquivalence) {
  sched::BGreedyExecution exec;
  sched::AControlRequest proto;
  SimConfig config;
  config.processors = 32;
  config.quantum_length = 40;

  alloc::EquiPartition deq_a;
  const SimResult closed = simulate_job_set(
      random_set(7, 5, /*opaque_mix=*/false), exec, proto, deq_a, config);
  alloc::EquiPartition deq_b;
  SimResult opaque;
  {
    // Same profiles, every job opaque.
    util::Rng rng(util::Rng::derive_seed(4242, 7));
    std::vector<JobSubmission> subs;
    for (std::size_t i = 0; i < 5; ++i) {
      auto widths = random_profile(rng);
      subs.push_back(JobSubmission{
          std::make_unique<OpaqueProfileJob>(std::move(widths)),
          static_cast<dag::Steps>(rng.uniform_int(0, 200)),
          {}});
    }
    opaque = simulate_job_set(std::move(subs), exec, proto, deq_b, config);
  }
  EXPECT_EQ(serialize(closed), serialize(opaque));
}

}  // namespace
}  // namespace abg::sim
