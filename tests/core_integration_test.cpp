#include <gtest/gtest.h>

#include "alloc/round_robin.hpp"
#include "core/run.hpp"
#include "dag/profile_job.hpp"
#include "workload/profiles.hpp"

namespace abg::core {
namespace {

TEST(AbgScheduler, DefaultConfiguration) {
  AbgScheduler abg;
  EXPECT_DOUBLE_EQ(abg.config().convergence_rate, 0.2);
  EXPECT_EQ(abg.execution().name(), "b-greedy");
  EXPECT_EQ(abg.request().name(), "a-control");
  EXPECT_EQ(AbgScheduler::kName, "ABG");
}

TEST(AbgScheduler, MakeRequestPolicyIsIndependent) {
  AbgScheduler abg(AbgConfig{.convergence_rate = 0.4});
  const auto p1 = abg.make_request_policy();
  const auto p2 = abg.make_request_policy();
  EXPECT_NE(p1.get(), p2.get());
  EXPECT_EQ(p1->first_request(), 1);
}

TEST(AGreedyScheduler, DefaultConfiguration) {
  AGreedyScheduler ag;
  EXPECT_DOUBLE_EQ(ag.config().utilization, 0.8);
  EXPECT_DOUBLE_EQ(ag.config().responsiveness, 2.0);
  EXPECT_EQ(ag.execution().name(), "greedy");
  EXPECT_EQ(ag.request().name(), "a-greedy");
}

TEST(SchedulerSpec, FactoriesProduceCompleteSpecs) {
  for (const SchedulerSpec& spec :
       {abg_spec(), a_greedy_spec(), static_spec(8)}) {
    EXPECT_FALSE(spec.name.empty());
    EXPECT_NE(spec.execution, nullptr);
    EXPECT_NE(spec.request, nullptr);
  }
}

TEST(SchedulerSpec, CopyIsDeep) {
  const SchedulerSpec spec = abg_spec();
  const SchedulerSpec copy = spec.copy();
  EXPECT_EQ(copy.name, spec.name);
  EXPECT_NE(copy.execution.get(), spec.execution.get());
  EXPECT_NE(copy.request.get(), spec.request.get());
}

TEST(SchedulerSpec, CopyOfIncompleteSpecThrows) {
  SchedulerSpec broken;
  EXPECT_THROW(broken.copy(), std::logic_error);
}

TEST(RunSingle, DefaultsToUnconstrainedAllocator) {
  dag::ProfileJob job(workload::constant_profile(8, 200));
  const sim::JobTrace trace = run_single(
      abg_spec(), job,
      sim::SingleJobConfig{.processors = 64, .quantum_length = 50});
  ASSERT_TRUE(trace.finished());
  // Once converged, requests are granted in full.
  const auto& last = trace.quanta[trace.quanta.size() - 2];
  EXPECT_EQ(last.allotment, last.request);
}

TEST(RunSingle, SpecStaysReusable) {
  const SchedulerSpec spec = abg_spec();
  dag::ProfileJob job1(workload::constant_profile(4, 100));
  dag::ProfileJob job2(workload::constant_profile(4, 100));
  const auto t1 = run_single(
      spec, job1, sim::SingleJobConfig{.processors = 16, .quantum_length = 20});
  const auto t2 = run_single(
      spec, job2, sim::SingleJobConfig{.processors = 16, .quantum_length = 20});
  EXPECT_EQ(t1.quanta.size(), t2.quanta.size());
  EXPECT_EQ(t1.completion_step, t2.completion_step);
}

TEST(RunSingle, RejectsIncompleteSpec) {
  SchedulerSpec broken;
  dag::ProfileJob job({1});
  EXPECT_THROW(run_single(broken, job, sim::SingleJobConfig{}),
               std::invalid_argument);
}

TEST(RunSet, DefaultsToEquiPartition) {
  std::vector<sim::JobSubmission> subs;
  for (int j = 0; j < 3; ++j) {
    sim::JobSubmission s;
    s.job = std::make_unique<dag::ProfileJob>(
        workload::constant_profile(16, 100));
    subs.push_back(std::move(s));
  }
  const sim::SimResult result =
      run_set(abg_spec(), std::move(subs),
              sim::SimConfig{.processors = 12, .quantum_length = 25});
  ASSERT_EQ(result.jobs.size(), 3u);
  for (const auto& t : result.jobs) {
    EXPECT_TRUE(t.finished());
    // 3 competing jobs on 12 processors: nobody can hold more than the
    // fair share once all are converged and greedy.
    for (const auto& q : t.quanta) {
      EXPECT_LE(q.allotment, 12);
    }
  }
}

TEST(RunSet, ExplicitAllocatorIsUsed) {
  std::vector<sim::JobSubmission> subs;
  sim::JobSubmission s;
  s.job = std::make_unique<dag::ProfileJob>(
      workload::constant_profile(4, 60));
  subs.push_back(std::move(s));
  alloc::RoundRobin rr;
  const sim::SimResult result =
      run_set(abg_spec(), std::move(subs),
              sim::SimConfig{.processors = 8, .quantum_length = 20}, &rr);
  EXPECT_TRUE(result.jobs[0].finished());
}

TEST(RunSet, StaticSpecBracketsAdaptive) {
  // A static scheduler pinned at the job's max parallelism finishes a
  // constant-parallelism job at least as fast as ABG (it never spends
  // quanta converging), at the cost of waste on the serial prefix.
  auto make_subs = [] {
    std::vector<sim::JobSubmission> subs;
    sim::JobSubmission s;
    s.job = std::make_unique<dag::ProfileJob>(
        workload::constant_profile(10, 400));
    subs.push_back(std::move(s));
    return subs;
  };
  const sim::SimConfig config{.processors = 32, .quantum_length = 50};
  const auto adaptive = run_set(abg_spec(), make_subs(), config);
  const auto pinned = run_set(static_spec(10), make_subs(), config);
  EXPECT_LE(pinned.makespan, adaptive.makespan);
}

}  // namespace
}  // namespace abg::core
