#include "dag/profile_job.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/rng.hpp"

namespace abg::dag {
namespace {

TEST(ProfileJob, RejectsZeroWidth) {
  EXPECT_THROW(ProfileJob({1, 0, 2}), std::invalid_argument);
}

TEST(ProfileJob, EmptyProfileIsFinished) {
  ProfileJob job({});
  EXPECT_TRUE(job.finished());
  EXPECT_EQ(job.total_work(), 0);
  EXPECT_EQ(job.critical_path(), 0);
  EXPECT_EQ(job.ready_count(), 0);
}

TEST(ProfileJob, WorkAndCriticalPath) {
  ProfileJob job({1, 5, 1, 3});
  EXPECT_EQ(job.total_work(), 10);
  EXPECT_EQ(job.critical_path(), 4);
}

TEST(ProfileJob, WidthAccessors) {
  ProfileJob job({2, 7});
  EXPECT_EQ(job.width_at(0), 2);
  EXPECT_EQ(job.width_at(1), 7);
  EXPECT_THROW(job.width_at(2), std::invalid_argument);
  ASSERT_EQ(job.widths().size(), 2u);
}

TEST(ProfileJob, StepRespectsBarrier) {
  // Level widths {3, 2}: with 5 processors the first step can only run the
  // 3 tasks of level 0.
  ProfileJob job({3, 2});
  EXPECT_EQ(job.step(5, PickOrder::kFifo), 3);
  EXPECT_EQ(job.step(5, PickOrder::kFifo), 2);
  EXPECT_TRUE(job.finished());
}

TEST(ProfileJob, StepPartialLevel) {
  ProfileJob job({5});
  EXPECT_EQ(job.step(2, PickOrder::kFifo), 2);
  EXPECT_EQ(job.ready_count(), 3);
  EXPECT_EQ(job.step(2, PickOrder::kFifo), 2);
  EXPECT_EQ(job.step(2, PickOrder::kFifo), 1);
  EXPECT_TRUE(job.finished());
}

TEST(ProfileJob, ZeroProcsNoProgress) {
  ProfileJob job({2});
  EXPECT_EQ(job.step(0, PickOrder::kFifo), 0);
  EXPECT_FALSE(job.finished());
}

TEST(ProfileJob, NegativeProcsThrow) {
  ProfileJob job({2});
  EXPECT_THROW(job.step(-1, PickOrder::kFifo), std::invalid_argument);
}

TEST(ProfileJob, LevelProgressFractions) {
  ProfileJob job({4, 2});
  EXPECT_DOUBLE_EQ(job.level_progress(), 0.0);
  job.step(1, PickOrder::kFifo);
  EXPECT_DOUBLE_EQ(job.level_progress(), 0.25);
  job.step(3, PickOrder::kFifo);
  EXPECT_DOUBLE_EQ(job.level_progress(), 1.0);
  job.step(1, PickOrder::kFifo);
  EXPECT_DOUBLE_EQ(job.level_progress(), 1.5);
  job.step(1, PickOrder::kFifo);
  EXPECT_DOUBLE_EQ(job.level_progress(), 2.0);
  EXPECT_TRUE(job.finished());
}

TEST(ProfileJob, RunQuantumClosedFormMatchesStepLoop) {
  util::Rng rng(77);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<TaskCount> widths;
    const auto levels = rng.uniform_int(1, 30);
    widths.reserve(static_cast<std::size_t>(levels));
    for (int l = 0; l < levels; ++l) {
      widths.push_back(rng.uniform_int(1, 12));
    }
    ProfileJob fast(widths);
    ProfileJob slow(widths);
    while (!fast.finished() || !slow.finished()) {
      const int procs = static_cast<int>(rng.uniform_int(0, 6));
      const Steps budget = rng.uniform_int(1, 9);
      const QuantumExecution qf =
          fast.run_quantum(procs, budget, PickOrder::kFifo);
      // Reference: the generic per-step loop from the Job base class.
      QuantumExecution qs;
      const double cpl_before = slow.level_progress();
      for (Steps s = 0; s < budget && !slow.finished(); ++s) {
        const TaskCount done = slow.step(procs, PickOrder::kFifo);
        ++qs.steps;
        qs.work += done;
        if (done == 0) {
          ++qs.idle_steps;
        }
      }
      qs.cpl = slow.level_progress() - cpl_before;
      qs.finished = slow.finished();

      ASSERT_EQ(qf.work, qs.work) << "trial " << trial;
      ASSERT_EQ(qf.steps, qs.steps);
      ASSERT_EQ(qf.idle_steps, qs.idle_steps);
      ASSERT_EQ(qf.finished, qs.finished);
      ASSERT_NEAR(qf.cpl, qs.cpl, 1e-12);
      ASSERT_EQ(fast.completed_work(), slow.completed_work());
      if (procs == 0 && !qs.finished) {
        break;  // neither job progresses; avoid an infinite loop
      }
    }
    if (!fast.finished()) {
      // Drain to completion for the next trial's invariants.
      fast.run_quantum(4, 1 << 20, PickOrder::kFifo);
      slow.run_quantum(4, 1 << 20, PickOrder::kFifo);
      EXPECT_TRUE(fast.finished());
      EXPECT_TRUE(slow.finished());
    }
  }
}

TEST(ProfileJob, RunQuantumBarrierWastesTailOfStep) {
  // Level {3} then {4} with 4 processors: step 1 completes the 3 tasks of
  // level 0 (the 4th processor idles across the barrier), step 2 the next
  // level.
  ProfileJob job({3, 4});
  const QuantumExecution exec = job.run_quantum(4, 2, PickOrder::kFifo);
  EXPECT_EQ(exec.work, 7);
  EXPECT_EQ(exec.steps, 2);
  EXPECT_TRUE(exec.finished);
}

TEST(ProfileJob, RunQuantumZeroProcsBurnsBudget) {
  ProfileJob job({2});
  const QuantumExecution exec = job.run_quantum(0, 5, PickOrder::kFifo);
  EXPECT_EQ(exec.work, 0);
  EXPECT_EQ(exec.steps, 5);
  EXPECT_EQ(exec.idle_steps, 5);
  EXPECT_FALSE(exec.finished);
}

TEST(ProfileJob, RunQuantumFinishedJobConsumesNothing) {
  ProfileJob job({1});
  job.step(1, PickOrder::kFifo);
  ASSERT_TRUE(job.finished());
  const QuantumExecution exec = job.run_quantum(3, 5, PickOrder::kFifo);
  EXPECT_EQ(exec.steps, 0);
  EXPECT_EQ(exec.work, 0);
  EXPECT_TRUE(exec.finished);
}

TEST(ProfileJob, FreshCloneRestarts) {
  ProfileJob job({2, 3});
  job.step(2, PickOrder::kFifo);
  const auto clone = job.fresh_clone();
  EXPECT_EQ(clone->completed_work(), 0);
  EXPECT_EQ(clone->total_work(), 5);
  EXPECT_DOUBLE_EQ(clone->level_progress(), 0.0);
  EXPECT_FALSE(clone->finished());
}

TEST(ProfileJob, ReadyCountTracksCurrentLevel) {
  ProfileJob job({2, 3});
  EXPECT_EQ(job.ready_count(), 2);
  job.step(2, PickOrder::kFifo);
  EXPECT_EQ(job.ready_count(), 3);
  job.step(3, PickOrder::kFifo);
  EXPECT_EQ(job.ready_count(), 0);
}

}  // namespace
}  // namespace abg::dag
