// ScenarioSpec parsing: schema acceptance, strict-key rejection at every
// nesting level, Range forms, validation rules, and file round-trips.
#include "scenario/spec.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>

#include "util/json.hpp"
#include "util/rng.hpp"

namespace abg::scenario {
namespace {

ScenarioSpec parse(const std::string& text) {
  return ScenarioSpec::from_json(util::Json::parse(text));
}

TEST(ScenarioSpecParse, MinimalMultiphaseDocument) {
  const ScenarioSpec spec = parse(R"({
    "name": "tiny",
    "generator": "multiphase",
    "jobs": 3,
    "params": {"phases": [{"width": [2, 8], "levels": 100}]}
  })");
  EXPECT_EQ(spec.name, "tiny");
  EXPECT_EQ(spec.generator, GeneratorKind::kMultiphase);
  EXPECT_EQ(spec.jobs, 3);
  ASSERT_EQ(spec.phases.size(), 1u);
  EXPECT_EQ(spec.phases[0].width.lo, 2);
  EXPECT_EQ(spec.phases[0].width.hi, 8);
  EXPECT_TRUE(spec.phases[0].levels.is_fixed());
  EXPECT_EQ(spec.phases[0].levels.lo, 100);
  // Untouched blocks keep their neutral defaults.
  EXPECT_EQ(spec.machine.processors, 0);
  EXPECT_EQ(spec.machine.quantum, 0);
  EXPECT_EQ(spec.release.schedule, ReleaseSchedule::kBatched);
  EXPECT_EQ(spec.arrival.kind, open::ArrivalKind::kNone);
}

TEST(ScenarioSpecParse, FullDocumentWithAllBlocks) {
  const ScenarioSpec spec = parse(R"({
    "name": "full",
    "description": "everything set",
    "generator": "oscillator",
    "jobs": 4,
    "machine": {"processors": 32, "quantum": 500},
    "release": {"schedule": "staggered", "gap": 2000},
    "arrival": {"kind": "poisson", "jobs_total": 100, "load": 0.8},
    "params": {"low": 1, "high": 0, "half_period": 0, "periods": [8, 16]}
  })");
  EXPECT_EQ(spec.description, "everything set");
  EXPECT_EQ(spec.machine.processors, 32);
  EXPECT_EQ(spec.machine.quantum, 500);
  EXPECT_EQ(spec.release.schedule, ReleaseSchedule::kStaggered);
  EXPECT_DOUBLE_EQ(spec.release.gap, 2000.0);
  EXPECT_EQ(spec.arrival.kind, open::ArrivalKind::kPoisson);
  EXPECT_EQ(spec.arrival.jobs_total, 100);
  EXPECT_DOUBLE_EQ(spec.arrival.load, 0.8);
  EXPECT_EQ(spec.periods.lo, 8);
  EXPECT_EQ(spec.periods.hi, 16);
}

TEST(ScenarioSpecParse, UnknownDocumentKeyIsRejected) {
  try {
    parse(R"({"name": "x", "generator": "explicit", "bogus": 1,
              "params": {"jobs": [{"release": 0, "phases": [[1, 1]]}]}})");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown key 'bogus'"), std::string::npos) << what;
    // The diagnostic lists the valid keys so the fix is self-evident.
    EXPECT_NE(what.find("expected one of"), std::string::npos) << what;
  }
}

TEST(ScenarioSpecParse, UnknownMachineKeyIsRejected) {
  EXPECT_THROW(parse(R"({
    "name": "x", "generator": "explicit",
    "machine": {"processors": 8, "cores": 8},
    "params": {"jobs": [{"release": 0, "phases": [[1, 1]]}]}
  })"),
               std::invalid_argument);
}

TEST(ScenarioSpecParse, UnknownParamsKeyIsRejected) {
  // "phases" belongs to multiphase, not oscillator.
  EXPECT_THROW(parse(R"({
    "name": "x", "generator": "oscillator", "jobs": 1,
    "params": {"low": 1, "phases": []}
  })"),
               std::invalid_argument);
}

TEST(ScenarioSpecParse, UnknownGeneratorNameIsRejected) {
  EXPECT_THROW(parse(R"({"name": "x", "generator": "quantum-annealer",
                         "jobs": 1, "params": {}})"),
               std::invalid_argument);
}

TEST(ScenarioRange, ScalarAndArrayForms) {
  const Range fixed = Range::from_json(util::Json::parse("5"), "w");
  EXPECT_EQ(fixed.lo, 5);
  EXPECT_EQ(fixed.hi, 5);
  EXPECT_TRUE(fixed.is_fixed());
  const Range spread = Range::from_json(util::Json::parse("[2, 8]"), "w");
  EXPECT_EQ(spread.lo, 2);
  EXPECT_EQ(spread.hi, 8);
  EXPECT_FALSE(spread.is_fixed());
}

TEST(ScenarioRange, RejectsInvertedAndMalformedRanges) {
  // Inversion is a validate()-level check: the full parse rejects it with
  // a diagnostic naming the field.
  try {
    parse(R"({"name": "x", "generator": "multiphase", "jobs": 1,
              "params": {"phases": [{"width": [8, 2], "levels": 1}]}})");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("lo > hi"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(Range::from_json(util::Json::parse("[1]"), "w"),
               std::invalid_argument);
  EXPECT_THROW(Range::from_json(util::Json::parse("[1, 2, 3]"), "w"),
               std::invalid_argument);
  EXPECT_THROW(Range::from_json(util::Json::parse("\"5\""), "w"),
               std::invalid_argument);
}

TEST(ScenarioRange, FixedRangeConsumesNoRandomness) {
  util::Rng a(1);
  util::Rng b(2);
  EXPECT_EQ(Range::fixed(7).sample(a), 7);
  EXPECT_EQ(Range::fixed(7).sample(b), 7);
  // Both rngs are still in their initial state: the next draw matches.
  EXPECT_EQ(util::Rng(1).uniform_int(0, 1000000), a.uniform_int(0, 1000000));
}

TEST(ScenarioSpecValidate, RejectsStructuralViolations) {
  // Empty name.
  EXPECT_THROW(parse(R"({"name": "", "generator": "explicit",
      "params": {"jobs": [{"release": 0, "phases": [[1, 1]]}]}})"),
               std::invalid_argument);
  // Staggered release needs gap >= 1.
  EXPECT_THROW(parse(R"({"name": "x", "generator": "explicit",
      "release": {"schedule": "staggered", "gap": 0},
      "params": {"jobs": [{"release": 0, "phases": [[1, 1]]}]}})"),
               std::invalid_argument);
  // Trace arrivals need an external trace file; a scenario cannot carry one.
  EXPECT_THROW(parse(R"({"name": "x", "generator": "explicit",
      "arrival": {"kind": "trace"},
      "params": {"jobs": [{"release": 0, "phases": [[1, 1]]}]}})"),
               std::invalid_argument);
  // Sublinear alpha must sit in (0, 1].
  EXPECT_THROW(parse(R"({"name": "x", "generator": "sublinear", "jobs": 1,
      "params": {"classes": [{"alpha": 1.5, "work": 10}]}})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"name": "x", "generator": "sublinear", "jobs": 1,
      "params": {"classes": [{"alpha": 0.5, "work": 10, "weight": 0}]}})"),
               std::invalid_argument);
  // Non-explicit scenarios need jobs >= 1.
  EXPECT_THROW(parse(R"({"name": "x", "generator": "multiphase", "jobs": 0,
      "params": {"phases": [{"width": 1, "levels": 1}]}})"),
               std::invalid_argument);
  // Explicit scenarios need at least one job with at least one phase.
  EXPECT_THROW(parse(R"({"name": "x", "generator": "explicit",
      "params": {"jobs": []}})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"name": "x", "generator": "explicit",
      "params": {"jobs": [{"release": 0, "phases": []}]}})"),
               std::invalid_argument);
  // Widths and level counts must be >= 1.
  EXPECT_THROW(parse(R"({"name": "x", "generator": "explicit",
      "params": {"jobs": [{"release": 0, "phases": [[0, 5]]}]}})"),
               std::invalid_argument);
}

TEST(ScenarioSpecRoundTrip, ToJsonFromJsonIsExact) {
  const ScenarioSpec spec = parse(R"({
    "name": "round",
    "description": "a trip",
    "generator": "sublinear",
    "jobs": 12,
    "machine": {"processors": 64},
    "release": {"schedule": "poisson", "gap": 1500},
    "params": {"classes": [
      {"alpha": 0.9, "work": [500, 2000], "weight": 3},
      {"alpha": 0.5, "work": 90000, "max_width": 0}
    ]}
  })");
  const ScenarioSpec again = ScenarioSpec::from_json(spec.to_json());
  EXPECT_EQ(spec.to_json().dump(), again.to_json().dump());
}

TEST(ScenarioSpecFiles, SaveThenLoadReproducesTheSpec) {
  const ScenarioSpec spec = parse(R"({
    "name": "disk",
    "generator": "mapreduce",
    "jobs": 2,
    "params": {"maps": [16, 64], "map_levels": 300, "shuffle_levels": 100,
               "reduces": 8, "reduce_levels": 200}
  })");
  const std::string path = ::testing::TempDir() + "scenario_spec_disk.json";
  spec.save_file(path);
  const ScenarioSpec loaded = ScenarioSpec::load_file(path);
  EXPECT_EQ(spec.to_json().dump(), loaded.to_json().dump());
}

TEST(ScenarioSpecFiles, LoadErrorsCarryThePath) {
  EXPECT_THROW(ScenarioSpec::load_file("/nonexistent/nope.json"),
               std::runtime_error);
  const std::string path = ::testing::TempDir() + "scenario_spec_bad.json";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"name\": \"x\"", f);
    std::fclose(f);
  }
  try {
    ScenarioSpec::load_file(path);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
}

}  // namespace
}  // namespace abg::scenario
