// JSONL trace import/export: header handling, normalization (sort +
// merge), validation diagnostics, round-trip idempotence, and the
// process-wide scenario cache.
#include "scenario/import.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "scenario/library.hpp"
#include "scenario/spec.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace abg::scenario {
namespace {

ScenarioSpec import_text(const std::string& text,
                         const std::string& default_name = "fallback") {
  std::istringstream in(text);
  return import_trace(in, default_name);
}

TEST(ScenarioImport, HeaderSuppliesNameAndMachine) {
  const ScenarioSpec spec = import_text(
      R"({"kind":"abg-jobs-trace","name":"cluster-a","processors":48,"quantum":800}
{"release":0,"phases":[[4,100]]}
)");
  EXPECT_EQ(spec.name, "cluster-a");
  EXPECT_EQ(spec.machine.processors, 48);
  EXPECT_EQ(spec.machine.quantum, 800);
  EXPECT_EQ(spec.generator, GeneratorKind::kExplicit);
  ASSERT_EQ(spec.explicit_jobs.size(), 1u);
}

TEST(ScenarioImport, MissingHeaderFallsBackToDefaultName) {
  const ScenarioSpec spec = import_text(
      "{\"release\":0,\"phases\":[[2,50]]}\n", "from-file-stem");
  EXPECT_EQ(spec.name, "from-file-stem");
  EXPECT_EQ(spec.machine.processors, 0);
  ASSERT_EQ(spec.explicit_jobs.size(), 1u);
}

TEST(ScenarioImport, JobsAreSortedByRelease) {
  const ScenarioSpec spec = import_text(
      R"({"release":500,"phases":[[1,10]]}
{"release":0,"phases":[[2,10]]}
{"release":250,"phases":[[3,10]]}
)");
  ASSERT_EQ(spec.explicit_jobs.size(), 3u);
  EXPECT_EQ(spec.explicit_jobs[0].release, 0);
  EXPECT_EQ(spec.explicit_jobs[0].phases[0].width, 2);
  EXPECT_EQ(spec.explicit_jobs[1].release, 250);
  EXPECT_EQ(spec.explicit_jobs[2].release, 500);
}

TEST(ScenarioImport, AdjacentEqualWidthPhasesMerge) {
  const ScenarioSpec spec = import_text(
      R"({"release":0,"phases":[[40,300],[40,200],[8,100]]}
)");
  ASSERT_EQ(spec.explicit_jobs.size(), 1u);
  ASSERT_EQ(spec.explicit_jobs[0].phases.size(), 2u);
  EXPECT_EQ(spec.explicit_jobs[0].phases[0].width, 40);
  EXPECT_EQ(spec.explicit_jobs[0].phases[0].levels, 500);
  EXPECT_EQ(spec.explicit_jobs[0].phases[1].width, 8);
}

TEST(ScenarioImport, DiagnosticsNameTheOffendingLine) {
  const auto expect_throws_naming_line = [](const std::string& text,
                                            const std::string& line_tag) {
    try {
      import_text(text);
      FAIL() << "expected std::invalid_argument for: " << text;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(line_tag), std::string::npos)
          << e.what();
    }
  };
  // Zero width on line 2.
  expect_throws_naming_line(
      "{\"release\":0,\"phases\":[[1,10]]}\n"
      "{\"release\":0,\"phases\":[[0,10]]}\n",
      "line 2");
  // Negative release.
  expect_throws_naming_line("{\"release\":-5,\"phases\":[[1,10]]}\n",
                            "line 1");
  // A job with no phases.
  expect_throws_naming_line("{\"release\":0,\"phases\":[]}\n", "line 1");
  // A line that is not JSON at all.
  expect_throws_naming_line("not json\n", "line 1");
}

TEST(ScenarioImport, EmptyTraceIsRejected) {
  EXPECT_THROW(import_text(""), std::invalid_argument);
  EXPECT_THROW(
      import_text("{\"kind\":\"abg-jobs-trace\",\"name\":\"empty\"}\n"),
      std::invalid_argument);
}

TEST(ScenarioExport, ExportImportExportIsIdempotent) {
  const ScenarioSpec spec = ScenarioSpec::from_json(util::Json::parse(R"({
    "name": "idem", "generator": "explicit",
    "machine": {"processors": 24, "quantum": 600},
    "params": {"jobs": [
      {"release": 0, "phases": [[8, 40], [1, 10]]},
      {"release": 100, "phases": [[4, 60]]}
    ]}
  })"));
  std::ostringstream first;
  util::Rng rng1(5);
  export_trace(first, spec, rng1, 24, 600);

  std::istringstream back(first.str());
  const ScenarioSpec imported = import_trace(back, "unused");
  EXPECT_EQ(imported.name, "idem");

  // A different seed must not matter: explicit scenarios draw nothing.
  std::ostringstream second;
  util::Rng rng2(99);
  export_trace(second, imported, rng2, 24, 600);
  EXPECT_EQ(first.str(), second.str());
}

TEST(ScenarioExport, SameSeedSameBytesForRandomizedScenarios) {
  const ScenarioSpec spec = ScenarioSpec::from_json(util::Json::parse(R"({
    "name": "rand", "generator": "multiphase", "jobs": 4,
    "params": {"phases": [{"width": [2, 8], "levels": [50, 150]}]}
  })"));
  std::ostringstream a;
  std::ostringstream b;
  util::Rng ra(17);
  util::Rng rb(17);
  export_trace(a, spec, ra, 32, 1000);
  export_trace(b, spec, rb, 32, 1000);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("\"kind\":"), std::string::npos);
}

TEST(ScenarioLibrary, CacheReturnsTheSameSpecInstance) {
  const std::string path = ::testing::TempDir() + "scenario_cache_probe.json";
  ScenarioSpec spec;
  spec.name = "cached";
  spec.generator = GeneratorKind::kExplicit;
  spec.explicit_jobs.push_back(ExplicitJob{0, {ExplicitPhase{2, 10}}});
  spec.save_file(path);

  clear_cache();
  const ScenarioSpec& first = load_cached(path);
  const ScenarioSpec& second = load_cached(path);
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(first.name, "cached");
  clear_cache();
}

TEST(ScenarioLibrary, FailedLoadsAreNotCached) {
  const std::string path = ::testing::TempDir() + "scenario_cache_retry.json";
  {
    std::ofstream out(path);
    out << "{\"name\": \"broken\"";
  }
  clear_cache();
  EXPECT_THROW(load_cached(path), std::invalid_argument);
  ScenarioSpec spec;
  spec.name = "fixed";
  spec.generator = GeneratorKind::kExplicit;
  spec.explicit_jobs.push_back(ExplicitJob{0, {ExplicitPhase{1, 5}}});
  spec.save_file(path);
  EXPECT_EQ(load_cached(path).name, "fixed");
  clear_cache();
}

}  // namespace
}  // namespace abg::scenario
