#include "control/closed_loop.hpp"

#include <gtest/gtest.h>

namespace abg::control {
namespace {

TEST(ClosedLoop, IntegralControllerShape) {
  const TransferFunction g = integral_controller_tf(0.5);
  EXPECT_EQ(g.num(), Polynomial({0.5}));
  EXPECT_EQ(g.den(), Polynomial({-1.0, 1.0}));
}

TEST(ClosedLoop, PlantShape) {
  const TransferFunction s = parallelism_plant_tf(4.0);
  EXPECT_EQ(s.num(), Polynomial({0.25}));
  EXPECT_EQ(s.den(), Polynomial({1.0}));
}

TEST(ClosedLoop, PlantRejectsNonPositiveParallelism) {
  EXPECT_THROW(parallelism_plant_tf(0.0), std::invalid_argument);
  EXPECT_THROW(parallelism_plant_tf(-3.0), std::invalid_argument);
}

TEST(ClosedLoop, Equation2Shape) {
  // T(z) = (K/A) / (z - (1 - K/A)).
  const double K = 2.0;
  const double A = 8.0;
  const TransferFunction t = abg_closed_loop(K, A);
  ASSERT_EQ(t.poles().size(), 1u);
  EXPECT_NEAR(t.poles()[0].real(), 1.0 - K / A, 1e-12);
  EXPECT_NEAR(t.dc_gain(), 1.0, 1e-12);  // integral control: unity DC gain
}

TEST(ClosedLoop, PoleFormula) {
  EXPECT_DOUBLE_EQ(abg_closed_loop_pole(2.0, 8.0), 0.75);
  EXPECT_DOUBLE_EQ(abg_closed_loop_pole(8.0, 8.0), 0.0);
  EXPECT_THROW(abg_closed_loop_pole(1.0, 0.0), std::invalid_argument);
}

TEST(ClosedLoop, Theorem1GainPlacesPoleAtRate) {
  for (const double r : {0.0, 0.2, 0.5, 0.9}) {
    for (const double A : {1.0, 5.0, 128.0}) {
      const double K = theorem1_gain(r, A);
      EXPECT_NEAR(abg_closed_loop_pole(K, A), r, 1e-12)
          << "r=" << r << " A=" << A;
    }
  }
}

TEST(ClosedLoop, Theorem1GainValidation) {
  EXPECT_THROW(theorem1_gain(-0.1, 5.0), std::invalid_argument);
  EXPECT_THROW(theorem1_gain(1.0, 5.0), std::invalid_argument);
  EXPECT_THROW(theorem1_gain(0.2, 0.0), std::invalid_argument);
}

TEST(ClosedLoop, StepResponseMatchesGeometricConvergence) {
  // With K = (1-r)A the step response is y[n] = 1 - r^n: geometric
  // convergence to the reference at rate r.
  const double r = 0.3;
  const double A = 12.0;
  const TransferFunction t = abg_closed_loop(theorem1_gain(r, A), A);
  const auto y = t.simulate(unit_step(30));
  for (std::size_t n = 0; n < y.size(); ++n) {
    EXPECT_NEAR(y[n], 1.0 - std::pow(r, static_cast<double>(n)), 1e-12);
  }
}

}  // namespace
}  // namespace abg::control
