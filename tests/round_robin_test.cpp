#include "alloc/round_robin.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace abg::alloc {
namespace {

int sum(const std::vector<int>& v) {
  return std::accumulate(v.begin(), v.end(), 0);
}

TEST(RoundRobin, DealsOneAtATime) {
  RoundRobin rr;
  const auto a = rr.allocate({10, 10, 10}, 7);
  EXPECT_EQ(sum(a), 7);
  // 7 = 3+2+2 starting at job 0.
  EXPECT_EQ(a, (std::vector<int>{3, 2, 2}));
}

TEST(RoundRobin, SkipsSatisfiedJobs) {
  RoundRobin rr;
  const auto a = rr.allocate({1, 10, 1}, 9);
  EXPECT_EQ(a.at(0), 1);
  EXPECT_EQ(a.at(2), 1);
  EXPECT_EQ(a.at(1), 7);
}

TEST(RoundRobin, StopsWhenAllSatisfied) {
  RoundRobin rr;
  const auto a = rr.allocate({2, 2}, 100);
  EXPECT_EQ(a, (std::vector<int>{2, 2}));
}

TEST(RoundRobin, Conservative) {
  RoundRobin rr;
  const std::vector<int> requests{0, 3, 5};
  const auto a = rr.allocate(requests, 50);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_LE(a[i], requests[i]);
  }
}

TEST(RoundRobin, RotationAdvancesEachQuantum) {
  RoundRobin rr;
  const auto q1 = rr.allocate({10, 10, 10}, 7);
  const auto q2 = rr.allocate({10, 10, 10}, 7);
  // Quantum 2 starts dealing from job 1.
  EXPECT_EQ(q1, (std::vector<int>{3, 2, 2}));
  EXPECT_EQ(q2, (std::vector<int>{2, 3, 2}));
}

TEST(RoundRobin, WithinOneOfEquiShareForGreedyJobs) {
  RoundRobin rr;
  const auto a = rr.allocate({100, 100, 100, 100}, 18);
  const auto [lo, hi] = std::minmax_element(a.begin(), a.end());
  EXPECT_LE(*hi - *lo, 1);
  EXPECT_EQ(sum(a), 18);
}

TEST(RoundRobin, EmptyAndZeroMachine) {
  RoundRobin rr;
  EXPECT_TRUE(rr.allocate({}, 5).empty());
  EXPECT_EQ(rr.allocate({3}, 0), (std::vector<int>{0}));
}

TEST(RoundRobin, AllZeroRequests) {
  RoundRobin rr;
  EXPECT_EQ(rr.allocate({0, 0}, 8), (std::vector<int>{0, 0}));
}

TEST(RoundRobin, RejectsNegativeInputs) {
  RoundRobin rr;
  EXPECT_THROW(rr.allocate({-2}, 4), std::invalid_argument);
  EXPECT_THROW(rr.allocate({2}, -1), std::invalid_argument);
}

TEST(RoundRobin, ResetRestartsRotation) {
  RoundRobin rr;
  const auto first = rr.allocate({10, 10}, 3);
  rr.allocate({10, 10}, 3);
  rr.reset();
  EXPECT_EQ(rr.allocate({10, 10}, 3), first);
}

}  // namespace
}  // namespace abg::alloc
