#include "sim/validate.hpp"

#include <gtest/gtest.h>

#include "core/run.hpp"
#include "dag/profile_job.hpp"
#include "workload/fork_join.hpp"
#include "workload/profiles.hpp"

namespace abg::sim {
namespace {

JobTrace valid_trace() {
  JobTrace t;
  t.work = 30;
  t.critical_path = 20;
  t.completion_step = 25;
  sched::QuantumStats q1;
  q1.index = 1;
  q1.request = 1;
  q1.allotment = 1;
  q1.available = 4;
  q1.length = 10;
  q1.steps_used = 10;
  q1.work = 10;
  q1.cpl = 10.0;
  q1.full = true;
  sched::QuantumStats q2;
  q2.index = 2;
  q2.request = 2;
  q2.allotment = 2;
  q2.available = 4;
  q2.length = 10;
  q2.steps_used = 10;
  q2.work = 15;
  q2.cpl = 7.5;
  q2.full = true;
  q2.start_step = 10;
  sched::QuantumStats q3;
  q3.index = 3;
  q3.request = 2;
  q3.allotment = 2;
  q3.available = 4;
  q3.length = 10;
  q3.steps_used = 5;
  q3.work = 5;
  q3.cpl = 2.5;
  q3.finished = true;
  q3.start_step = 20;
  t.quanta = {q1, q2, q3};
  return t;
}

TEST(ValidateTrace, AcceptsConsistentTrace) {
  EXPECT_TRUE(validate_trace(valid_trace()).empty());
}

TEST(ValidateTrace, DetectsNonSequentialIndex) {
  JobTrace t = valid_trace();
  t.quanta[1].index = 7;
  EXPECT_FALSE(validate_trace(t).empty());
}

TEST(ValidateTrace, DetectsOverAllotment) {
  JobTrace t = valid_trace();
  t.quanta[0].allotment = t.quanta[0].request + 1;
  EXPECT_FALSE(validate_trace(t).empty());
}

TEST(ValidateTrace, DetectsImpossibleWork) {
  JobTrace t = valid_trace();
  t.quanta[0].work = 999;  // above allotment * length
  EXPECT_FALSE(validate_trace(t).empty());
}

TEST(ValidateTrace, DetectsEarlyFinishedFlag) {
  JobTrace t = valid_trace();
  t.quanta[0].finished = true;
  EXPECT_FALSE(validate_trace(t).empty());
}

TEST(ValidateTrace, DetectsWorkSumMismatch) {
  JobTrace t = valid_trace();
  t.work = 999;
  EXPECT_FALSE(validate_trace(t).empty());
}

TEST(ValidateTrace, DetectsAvailabilityBelowAllotment) {
  JobTrace t = valid_trace();
  t.quanta[1].available = 1;
  EXPECT_FALSE(validate_trace(t).empty());
}

TEST(ValidateTrace, DetectsWorkWithoutProgress) {
  JobTrace t = valid_trace();
  t.quanta[1].cpl = 0.0;
  EXPECT_FALSE(validate_trace(t).empty());
}

TEST(ValidateTrace, EmptyTraceIsValid) {
  EXPECT_TRUE(validate_trace(JobTrace{}).empty());
}

TEST(ValidateResult, AcceptsRealSimulations) {
  // Every trace the actual engines produce must validate cleanly.
  for (const auto& spec : {core::abg_spec(), core::a_greedy_spec(),
                           core::abg_auto_spec()}) {
    std::vector<JobSubmission> subs;
    for (int j = 0; j < 4; ++j) {
      JobSubmission s;
      s.job = std::make_unique<dag::ProfileJob>(
          workload::square_wave_profile(1, 30, 5 + j, 30, 2));
      s.release_step = 15 * j;
      subs.push_back(std::move(s));
    }
    const SimResult result = core::run_set(
        spec, std::move(subs),
        SimConfig{.processors = 16, .quantum_length = 25});
    const auto issues = validate_result(result, 16);
    EXPECT_TRUE(issues.empty())
        << spec.name << ": " << (issues.empty() ? "" : issues.front());
  }
}

TEST(ValidateResult, DetectsWrongMakespan) {
  SimResult result;
  result.jobs.push_back(valid_trace());
  result.makespan = 999;
  result.mean_response_time = 25.0;
  EXPECT_FALSE(validate_result(result, 16).empty());
}

TEST(ValidateResult, DetectsOversubscription) {
  SimResult result;
  JobTrace a = valid_trace();
  JobTrace b = valid_trace();
  for (auto* t : {&a, &b}) {
    for (auto& q : t->quanta) {
      q.allotment = 2;
      q.request = 2;
      q.work = std::min<dag::TaskCount>(q.work, 20);
    }
  }
  result.jobs = {a, b};
  result.makespan = 25;
  result.mean_response_time = 25.0;
  result.total_waste = a.total_waste() + b.total_waste();
  // Machine with 3 processors: 2 + 2 allotted in the same quantum slots.
  EXPECT_FALSE(validate_result(result, 3).empty());
}

TEST(ValidateResult, RejectsBadProcessorCount) {
  EXPECT_FALSE(validate_result(SimResult{}, 0).empty());
}

// Two single-quantum traces with different quantum lengths whose holding
// intervals overlap on [10, 20): job A holds 2 processors over [0, 30),
// job B holds 2 over [10, 20).
SimResult non_uniform_result() {
  SimResult result;
  JobTrace a;
  a.work = 10;
  a.critical_path = 5;
  a.completion_step = 30;
  sched::QuantumStats qa;
  qa.index = 1;
  qa.request = 2;
  qa.allotment = 2;
  qa.available = 2;
  qa.length = 30;
  qa.steps_used = 30;
  qa.work = 10;
  qa.cpl = 5.0;
  qa.finished = true;
  a.quanta = {qa};

  JobTrace b;
  b.work = 8;
  b.critical_path = 4;
  b.completion_step = 20;
  sched::QuantumStats qb;
  qb.index = 1;
  qb.start_step = 10;
  qb.request = 2;
  qb.allotment = 2;
  qb.available = 2;
  qb.length = 10;
  qb.steps_used = 10;
  qb.work = 8;
  qb.cpl = 4.0;
  qb.finished = true;
  b.quanta = {qb};

  result.jobs = {a, b};
  result.makespan = 30;
  result.mean_response_time = 25.0;
  result.total_waste = a.total_waste() + b.total_waste();
  return result;
}

TEST(ValidateResult, DetectsOversubscriptionWithNonUniformLengths) {
  // 4 processors held on [10, 20) but the machine only has 3: the old
  // uniform-length-only check skipped this case entirely.
  const SimResult result = non_uniform_result();
  const auto issues = validate_result(result, 3);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues.front().find("oversubscribed"), std::string::npos);
}

TEST(ValidateResult, AcceptsNonUniformLengthsWithinCapacity) {
  EXPECT_TRUE(validate_result(non_uniform_result(), 4).empty());
}

TEST(ValidateResult, AveragedAllotmentsSkipTheCapacitySweep) {
  // Async-engine results record rounded time-averaged allotments whose
  // instantaneous sum can legitimately exceed P; the sweep must not fire.
  SimResult result = non_uniform_result();
  result.averaged_allotments = true;
  EXPECT_TRUE(validate_result(result, 3).empty());
}

TEST(ValidateResult, AveragedAllotmentsDegradeWithAnExplicitNote) {
  // The skipped capacity sweep is not silent: the report carries an
  // advisory note naming the checks that could not run, while issues stay
  // empty (notes never make a result invalid).
  SimResult result = non_uniform_result();
  result.averaged_allotments = true;
  const ValidationReport report = validate_result_report(result, 3);
  EXPECT_TRUE(report.valid());
  ASSERT_EQ(report.notes.size(), 1u);
  EXPECT_NE(report.notes.front().find("machine-capacity checks skipped"),
            std::string::npos);
  EXPECT_NE(report.notes.front().find("asynchronous engine"),
            std::string::npos);
}

TEST(ValidateResult, ExactResultsCarryNoNotes) {
  const ValidationReport report =
      validate_result_report(non_uniform_result(), 4);
  EXPECT_TRUE(report.valid());
  EXPECT_TRUE(report.notes.empty());
}

}  // namespace
}  // namespace abg::sim
