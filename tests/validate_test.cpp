#include "sim/validate.hpp"

#include <gtest/gtest.h>

#include "core/run.hpp"
#include "dag/profile_job.hpp"
#include "workload/fork_join.hpp"
#include "workload/profiles.hpp"

namespace abg::sim {
namespace {

JobTrace valid_trace() {
  JobTrace t;
  t.work = 30;
  t.critical_path = 20;
  t.completion_step = 25;
  sched::QuantumStats q1;
  q1.index = 1;
  q1.request = 1;
  q1.allotment = 1;
  q1.available = 4;
  q1.length = 10;
  q1.steps_used = 10;
  q1.work = 10;
  q1.cpl = 10.0;
  q1.full = true;
  sched::QuantumStats q2;
  q2.index = 2;
  q2.request = 2;
  q2.allotment = 2;
  q2.available = 4;
  q2.length = 10;
  q2.steps_used = 10;
  q2.work = 15;
  q2.cpl = 7.5;
  q2.full = true;
  q2.start_step = 10;
  sched::QuantumStats q3;
  q3.index = 3;
  q3.request = 2;
  q3.allotment = 2;
  q3.available = 4;
  q3.length = 10;
  q3.steps_used = 5;
  q3.work = 5;
  q3.cpl = 2.5;
  q3.finished = true;
  q3.start_step = 20;
  t.quanta = {q1, q2, q3};
  return t;
}

TEST(ValidateTrace, AcceptsConsistentTrace) {
  EXPECT_TRUE(validate_trace(valid_trace()).empty());
}

TEST(ValidateTrace, DetectsNonSequentialIndex) {
  JobTrace t = valid_trace();
  t.quanta[1].index = 7;
  EXPECT_FALSE(validate_trace(t).empty());
}

TEST(ValidateTrace, DetectsOverAllotment) {
  JobTrace t = valid_trace();
  t.quanta[0].allotment = t.quanta[0].request + 1;
  EXPECT_FALSE(validate_trace(t).empty());
}

TEST(ValidateTrace, DetectsImpossibleWork) {
  JobTrace t = valid_trace();
  t.quanta[0].work = 999;  // above allotment * length
  EXPECT_FALSE(validate_trace(t).empty());
}

TEST(ValidateTrace, DetectsEarlyFinishedFlag) {
  JobTrace t = valid_trace();
  t.quanta[0].finished = true;
  EXPECT_FALSE(validate_trace(t).empty());
}

TEST(ValidateTrace, DetectsWorkSumMismatch) {
  JobTrace t = valid_trace();
  t.work = 999;
  EXPECT_FALSE(validate_trace(t).empty());
}

TEST(ValidateTrace, DetectsAvailabilityBelowAllotment) {
  JobTrace t = valid_trace();
  t.quanta[1].available = 1;
  EXPECT_FALSE(validate_trace(t).empty());
}

TEST(ValidateTrace, DetectsWorkWithoutProgress) {
  JobTrace t = valid_trace();
  t.quanta[1].cpl = 0.0;
  EXPECT_FALSE(validate_trace(t).empty());
}

TEST(ValidateTrace, EmptyTraceIsValid) {
  EXPECT_TRUE(validate_trace(JobTrace{}).empty());
}

TEST(ValidateResult, AcceptsRealSimulations) {
  // Every trace the actual engines produce must validate cleanly.
  for (const auto& spec : {core::abg_spec(), core::a_greedy_spec(),
                           core::abg_auto_spec()}) {
    std::vector<JobSubmission> subs;
    for (int j = 0; j < 4; ++j) {
      JobSubmission s;
      s.job = std::make_unique<dag::ProfileJob>(
          workload::square_wave_profile(1, 30, 5 + j, 30, 2));
      s.release_step = 15 * j;
      subs.push_back(std::move(s));
    }
    const SimResult result = core::run_set(
        spec, std::move(subs),
        SimConfig{.processors = 16, .quantum_length = 25});
    const auto issues = validate_result(result, 16);
    EXPECT_TRUE(issues.empty())
        << spec.name << ": " << (issues.empty() ? "" : issues.front());
  }
}

TEST(ValidateResult, DetectsWrongMakespan) {
  SimResult result;
  result.jobs.push_back(valid_trace());
  result.makespan = 999;
  result.mean_response_time = 25.0;
  EXPECT_FALSE(validate_result(result, 16).empty());
}

TEST(ValidateResult, DetectsOversubscription) {
  SimResult result;
  JobTrace a = valid_trace();
  JobTrace b = valid_trace();
  for (auto* t : {&a, &b}) {
    for (auto& q : t->quanta) {
      q.allotment = 2;
      q.request = 2;
      q.work = std::min<dag::TaskCount>(q.work, 20);
    }
  }
  result.jobs = {a, b};
  result.makespan = 25;
  result.mean_response_time = 25.0;
  result.total_waste = a.total_waste() + b.total_waste();
  // Machine with 3 processors: 2 + 2 allotted in the same quantum slots.
  EXPECT_FALSE(validate_result(result, 3).empty());
}

TEST(ValidateResult, RejectsBadProcessorCount) {
  EXPECT_FALSE(validate_result(SimResult{}, 0).empty());
}

}  // namespace
}  // namespace abg::sim
