#include "sched/execution_policy.hpp"

#include <gtest/gtest.h>

#include "dag/builders.hpp"
#include "dag/dag_job.hpp"
#include "dag/profile_job.hpp"

namespace abg::sched {
namespace {

TEST(ExecutionPolicy, NamesAndOrders) {
  GreedyExecution greedy;
  BGreedyExecution bgreedy;
  EXPECT_EQ(greedy.name(), "greedy");
  EXPECT_EQ(bgreedy.name(), "b-greedy");
  EXPECT_EQ(greedy.order(), dag::PickOrder::kFifo);
  EXPECT_EQ(bgreedy.order(), dag::PickOrder::kBreadthFirst);
}

TEST(ExecutionPolicy, CloneRoundTrips) {
  BGreedyExecution bgreedy;
  const auto clone = bgreedy.clone();
  EXPECT_EQ(clone->name(), "b-greedy");
  EXPECT_EQ(clone->order(), dag::PickOrder::kBreadthFirst);
}

TEST(ExecutionPolicy, RunQuantumRecordsIdentity) {
  BGreedyExecution policy;
  dag::ProfileJob job({1, 4, 1});
  const QuantumStats stats = policy.run_quantum(job, 7, 5, 3, 10);
  EXPECT_EQ(stats.index, 7);
  EXPECT_EQ(stats.request, 5);
  EXPECT_EQ(stats.allotment, 3);
  EXPECT_EQ(stats.length, 10);
}

TEST(ExecutionPolicy, PaperFigure2Example) {
  // Figure 2 of the paper: a quantum completing 12 tasks across three
  // levels, advancing 0.8 + 1 + 0.6 = 2.4 levels, measures average
  // parallelism 12 / 2.4 = 5.
  //
  // Reconstruction with level-barrier execution: widths {5, 5, 5}; before
  // the quantum the first level has 1 task already done (0.2 of the
  // level).  The quantum runs 4 steps at allotment 4 and completes
  // 4 + 1+3? — choose widths and allotment so the quantum does exactly
  // 0.8 + 1.0 + 0.6 of the three levels:
  //   level 0: 5 tasks, 1 pre-done, quantum completes 4  -> 0.8
  //   level 1: 5 tasks, quantum completes all 5          -> 1.0
  //   level 2: 5 tasks, quantum completes 3              -> 0.6
  dag::ProfileJob job({5, 5, 5});
  job.step(1, dag::PickOrder::kBreadthFirst);  // pre-complete one task
  ASSERT_DOUBLE_EQ(job.level_progress(), 0.2);

  BGreedyExecution policy;
  // 4 steps at 4 procs: step1 completes the 4 left in level 0, step2 4 of
  // level 1, step3 the last of level 1 (barrier), step4 starts level 2...
  // That yields 4+4+1+4 = 13 tasks.  Use explicit steps: allotment 4,
  // quantum length 3 gives 4+4+1 = 9 tasks = 0.8+0.8+... — instead drive
  // exact counts with allotment 12 and length 1?  Level barrier caps a
  // step at the current level.  Simplest faithful reconstruction: three
  // steps with allotments 4, 5, 3 — emulated as three one-step quanta.
  const QuantumStats s1 = policy.run_quantum(job, 1, 4, 4, 1);
  const QuantumStats s2 = policy.run_quantum(job, 2, 5, 5, 1);
  const QuantumStats s3 = policy.run_quantum(job, 3, 3, 3, 1);
  const dag::TaskCount work = s1.work + s2.work + s3.work;
  const double cpl = s1.cpl + s2.cpl + s3.cpl;
  EXPECT_EQ(work, 12);
  EXPECT_NEAR(cpl, 2.4, 1e-12);
  EXPECT_NEAR(static_cast<double>(work) / cpl, 5.0, 1e-12);
}

TEST(ExecutionPolicy, FullQuantumDetection) {
  BGreedyExecution policy;
  dag::ProfileJob job({1, 1, 1, 1, 1, 1});
  // 3 steps, job not finished, work every step: full.
  const QuantumStats s1 = policy.run_quantum(job, 1, 1, 1, 3);
  EXPECT_TRUE(s1.full);
  EXPECT_FALSE(s1.finished);
  // Remaining 3 tasks finish exactly on the last step: still full.
  const QuantumStats s2 = policy.run_quantum(job, 2, 1, 1, 3);
  EXPECT_TRUE(s2.full);
  EXPECT_TRUE(s2.finished);
}

TEST(ExecutionPolicy, NonFullWhenFinishingEarly) {
  BGreedyExecution policy;
  dag::ProfileJob job({2});
  const QuantumStats stats = policy.run_quantum(job, 1, 2, 2, 5);
  EXPECT_TRUE(stats.finished);
  EXPECT_FALSE(stats.full);
  EXPECT_EQ(stats.steps_used, 1);
}

TEST(ExecutionPolicy, NonFullOnZeroAllotment) {
  BGreedyExecution policy;
  dag::ProfileJob job({2});
  const QuantumStats stats = policy.run_quantum(job, 1, 2, 0, 5);
  EXPECT_FALSE(stats.full);
  EXPECT_EQ(stats.work, 0);
}

TEST(ExecutionPolicy, RejectsBadArguments) {
  BGreedyExecution policy;
  dag::ProfileJob job({2});
  EXPECT_THROW(policy.run_quantum(job, 1, 2, -1, 5), std::invalid_argument);
  EXPECT_THROW(policy.run_quantum(job, 1, 2, 1, 0), std::invalid_argument);
}

TEST(ExecutionPolicy, GreedyAndBGreedySameTotalsOnBarrierJobs) {
  // On barrier (fork-join) jobs the pick order cannot matter.
  dag::ProfileJob a({1, 6, 2, 6, 1});
  dag::ProfileJob b({1, 6, 2, 6, 1});
  GreedyExecution greedy;
  BGreedyExecution bgreedy;
  const QuantumStats sa = greedy.run_quantum(a, 1, 3, 3, 8);
  const QuantumStats sb = bgreedy.run_quantum(b, 1, 3, 3, 8);
  EXPECT_EQ(sa.work, sb.work);
  EXPECT_NEAR(sa.cpl, sb.cpl, 1e-12);
}

}  // namespace
}  // namespace abg::sched
