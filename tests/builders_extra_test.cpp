// Tests for the extended DAG shapes: trees, wavefront grids and random
// series-parallel compositions.
#include <gtest/gtest.h>

#include "dag/builders.hpp"
#include "dag/dag_job.hpp"

namespace abg::dag::builders {
namespace {

TEST(OutTree, BinaryShape) {
  DagJob job{out_tree(4, 2)};
  EXPECT_EQ(job.total_work(), 15);  // 1+2+4+8
  EXPECT_EQ(job.critical_path(), 4);
  EXPECT_EQ(job.level_sizes(), (std::vector<TaskCount>{1, 2, 4, 8}));
}

TEST(OutTree, DepthOneIsSingleTask) {
  DagJob job{out_tree(1, 3)};
  EXPECT_EQ(job.total_work(), 1);
  EXPECT_EQ(job.critical_path(), 1);
}

TEST(OutTree, UnaryFanoutIsChain) {
  DagJob job{out_tree(5, 1)};
  EXPECT_EQ(job.total_work(), 5);
  EXPECT_EQ(job.critical_path(), 5);
}

TEST(OutTree, Validation) {
  EXPECT_THROW(out_tree(0, 2), std::invalid_argument);
  EXPECT_THROW(out_tree(3, 0), std::invalid_argument);
}

TEST(InTree, MirrorsOutTree) {
  DagJob job{in_tree(4, 2)};
  EXPECT_EQ(job.total_work(), 15);
  EXPECT_EQ(job.critical_path(), 4);
  EXPECT_EQ(job.level_sizes(), (std::vector<TaskCount>{8, 4, 2, 1}));
  // Reduction: starts with 8 ready leaves.
  EXPECT_EQ(job.ready_count(), 8);
}

TEST(InTree, ExecutesAsReduction) {
  DagJob job{in_tree(3, 2)};  // 4 leaves, 2 mids, 1 root
  EXPECT_EQ(job.step(10, PickOrder::kBreadthFirst), 4);
  EXPECT_EQ(job.step(10, PickOrder::kBreadthFirst), 2);
  EXPECT_EQ(job.step(10, PickOrder::kBreadthFirst), 1);
  EXPECT_TRUE(job.finished());
}

TEST(Grid, WavefrontShape) {
  DagJob job{grid(3, 4)};
  EXPECT_EQ(job.total_work(), 12);
  EXPECT_EQ(job.critical_path(), 6);  // 3 + 4 - 1
  EXPECT_EQ(job.level_sizes(), (std::vector<TaskCount>{1, 2, 3, 3, 2, 1}));
}

TEST(Grid, SingleRowIsChain) {
  DagJob job{grid(1, 6)};
  EXPECT_EQ(job.critical_path(), 6);
  EXPECT_EQ(job.total_work(), 6);
}

TEST(Grid, WavefrontParallelismRampsUpAndDown) {
  DagJob job{grid(4, 4)};
  std::vector<TaskCount> per_step;
  while (!job.finished()) {
    per_step.push_back(job.step(100, PickOrder::kBreadthFirst));
  }
  EXPECT_EQ(per_step,
            (std::vector<TaskCount>{1, 2, 3, 4, 3, 2, 1}));
}

TEST(Grid, Validation) {
  EXPECT_THROW(grid(0, 3), std::invalid_argument);
  EXPECT_THROW(grid(3, 0), std::invalid_argument);
}

TEST(SeriesParallel, DepthZeroIsSingleTask) {
  util::Rng rng(1);
  const DagStructure s = series_parallel(rng, 0, 3);
  EXPECT_EQ(s.node_count(), 1u);
}

TEST(SeriesParallel, ProducesValidDags) {
  util::Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const DagStructure s = series_parallel(rng, 5, 4);
    // DagJob's constructor validates acyclicity; executing it checks that
    // every task is reachable from the sources.
    DagJob job{s};
    while (!job.finished()) {
      job.step(16, PickOrder::kBreadthFirst);
    }
    EXPECT_EQ(job.completed_work(), job.total_work());
  }
}

TEST(SeriesParallel, Deterministic) {
  util::Rng a(5);
  util::Rng b(5);
  const DagStructure sa = series_parallel(a, 4, 3);
  const DagStructure sb = series_parallel(b, 4, 3);
  ASSERT_EQ(sa.node_count(), sb.node_count());
  for (std::size_t i = 0; i < sa.node_count(); ++i) {
    EXPECT_EQ(sa.children[i], sb.children[i]);
  }
}

TEST(SeriesParallel, Validation) {
  util::Rng rng(1);
  EXPECT_THROW(series_parallel(rng, -1, 3), std::invalid_argument);
  EXPECT_THROW(series_parallel(rng, 3, 1), std::invalid_argument);
}

}  // namespace
}  // namespace abg::dag::builders
