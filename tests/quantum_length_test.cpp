#include "sched/quantum_length.hpp"

#include <gtest/gtest.h>

#include "alloc/unconstrained.hpp"
#include "core/run.hpp"
#include "sim/quantum_engine.hpp"
#include "workload/fork_join.hpp"
#include "workload/profiles.hpp"

namespace abg::sched {
namespace {

QuantumStats stats_with_parallelism(double parallelism) {
  QuantumStats q;
  q.length = 100;
  q.cpl = 10.0;
  q.work = static_cast<dag::TaskCount>(parallelism * 10.0);
  q.full = true;
  return q;
}

TEST(FixedQuantumLength, ConstantAndValidated) {
  EXPECT_THROW(FixedQuantumLength(0), std::invalid_argument);
  FixedQuantumLength fixed(500);
  EXPECT_EQ(fixed.initial_length(), 500);
  EXPECT_EQ(fixed.next_length(stats_with_parallelism(3.0)), 500);
  EXPECT_EQ(fixed.clone()->initial_length(), 500);
  EXPECT_EQ(fixed.name(), "fixed");
}

TEST(AdaptiveQuantumLength, Validation) {
  EXPECT_THROW(AdaptiveQuantumLength(AdaptiveQuantumConfig{0, 100, 0.2, 2}),
               std::invalid_argument);
  EXPECT_THROW(AdaptiveQuantumLength(AdaptiveQuantumConfig{100, 50, 0.2, 2}),
               std::invalid_argument);
  EXPECT_THROW(AdaptiveQuantumLength(AdaptiveQuantumConfig{10, 100, 0.0, 2}),
               std::invalid_argument);
  EXPECT_THROW(AdaptiveQuantumLength(AdaptiveQuantumConfig{10, 100, 0.2, 0}),
               std::invalid_argument);
}

TEST(AdaptiveQuantumLength, GrowsOnStableParallelism) {
  AdaptiveQuantumLength policy(
      AdaptiveQuantumConfig{100, 1600, 0.2, 2});
  EXPECT_EQ(policy.initial_length(), 100);
  // First measurement establishes the baseline; not yet "stable".
  EXPECT_EQ(policy.next_length(stats_with_parallelism(10.0)), 100);
  EXPECT_EQ(policy.next_length(stats_with_parallelism(10.0)), 100);
  // Second consecutive stable quantum: double.
  EXPECT_EQ(policy.next_length(stats_with_parallelism(10.0)), 200);
  EXPECT_EQ(policy.next_length(stats_with_parallelism(10.5)), 200);
  EXPECT_EQ(policy.next_length(stats_with_parallelism(10.5)), 400);
}

TEST(AdaptiveQuantumLength, CapsAtMax) {
  AdaptiveQuantumLength policy(AdaptiveQuantumConfig{100, 300, 0.2, 1});
  policy.next_length(stats_with_parallelism(10.0));
  EXPECT_EQ(policy.next_length(stats_with_parallelism(10.0)), 200);
  EXPECT_EQ(policy.next_length(stats_with_parallelism(10.0)), 300);
  EXPECT_EQ(policy.next_length(stats_with_parallelism(10.0)), 300);
}

TEST(AdaptiveQuantumLength, ResetsOnParallelismJump) {
  AdaptiveQuantumLength policy(AdaptiveQuantumConfig{100, 1600, 0.2, 1});
  policy.next_length(stats_with_parallelism(10.0));
  policy.next_length(stats_with_parallelism(10.0));   // -> 200
  policy.next_length(stats_with_parallelism(10.0));   // -> 400
  // Parallelism doubles: back to the floor.
  EXPECT_EQ(policy.next_length(stats_with_parallelism(20.0)), 100);
}

TEST(AdaptiveQuantumLength, HoldsWithoutMeasurement) {
  AdaptiveQuantumLength policy(AdaptiveQuantumConfig{100, 1600, 0.2, 1});
  policy.next_length(stats_with_parallelism(10.0));
  policy.next_length(stats_with_parallelism(10.0));  // -> 200
  QuantumStats empty;
  EXPECT_EQ(policy.next_length(empty), 200);
}

TEST(AdaptiveQuantumLength, ResetRestoresFloor) {
  AdaptiveQuantumLength policy(AdaptiveQuantumConfig{100, 1600, 0.2, 1});
  policy.next_length(stats_with_parallelism(10.0));
  policy.next_length(stats_with_parallelism(10.0));
  policy.reset();
  EXPECT_EQ(policy.initial_length(), 100);
  EXPECT_EQ(policy.next_length(stats_with_parallelism(10.0)), 100);
}

TEST(DynamicQuantumEngine, FixedOverloadMatchesBase) {
  // The two run_single_job overloads agree when the policy is fixed.
  const sim::SingleJobConfig config{.processors = 32, .quantum_length = 50};
  dag::ProfileJob job1(workload::constant_profile(8, 400));
  BGreedyExecution exec;
  AControlRequest req1;
  alloc::Unconstrained alloc1;
  const sim::JobTrace base =
      sim::run_single_job(job1, exec, req1, alloc1, config);

  dag::ProfileJob job2(workload::constant_profile(8, 400));
  AControlRequest req2;
  FixedQuantumLength fixed(50);
  alloc::Unconstrained alloc2;
  const sim::JobTrace dynamic =
      sim::run_single_job(job2, exec, req2, fixed, alloc2, config);

  ASSERT_EQ(base.quanta.size(), dynamic.quanta.size());
  EXPECT_EQ(base.completion_step, dynamic.completion_step);
  for (std::size_t i = 0; i < base.quanta.size(); ++i) {
    EXPECT_EQ(base.quanta[i].allotment, dynamic.quanta[i].allotment);
    EXPECT_EQ(base.quanta[i].length, dynamic.quanta[i].length);
  }
}

TEST(DynamicQuantumEngine, AdaptiveLengthensOnStableJob) {
  // A long constant-parallelism job: quanta should grow to the cap.
  dag::ProfileJob job(workload::constant_profile(8, 20000));
  BGreedyExecution exec;
  AControlRequest request;
  AdaptiveQuantumLength adaptive(AdaptiveQuantumConfig{100, 1600, 0.2, 2});
  alloc::Unconstrained allocator;
  const sim::JobTrace trace = sim::run_single_job(
      job, exec, request, adaptive, allocator,
      sim::SingleJobConfig{.processors = 32, .quantum_length = 100});
  ASSERT_TRUE(trace.finished());
  dag::Steps longest = 0;
  for (const auto& q : trace.quanta) {
    longest = std::max(longest, q.length);
  }
  EXPECT_EQ(longest, 1600);
  // Fewer quanta than the fixed-length run would need.
  EXPECT_LT(trace.quanta.size(), 20000u / 100u);
}

TEST(DynamicQuantumEngine, CompletionStepStillExact) {
  dag::ProfileJob job(workload::constant_profile(1, 777));
  BGreedyExecution exec;
  AControlRequest request;
  AdaptiveQuantumLength adaptive(AdaptiveQuantumConfig{50, 400, 0.2, 1});
  alloc::Unconstrained allocator;
  const sim::JobTrace trace = sim::run_single_job(
      job, exec, request, adaptive, allocator,
      sim::SingleJobConfig{.processors = 8, .quantum_length = 50});
  EXPECT_EQ(trace.completion_step, 777);
}

}  // namespace
}  // namespace abg::sched
