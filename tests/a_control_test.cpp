#include "sched/a_control.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace abg::sched {
namespace {

QuantumStats stats_with_parallelism(double parallelism,
                                    dag::Steps length = 100) {
  QuantumStats q;
  q.length = length;
  q.cpl = 10.0;
  q.work = static_cast<dag::TaskCount>(std::llround(parallelism * q.cpl));
  q.full = true;
  return q;
}

TEST(AControl, RejectsBadConvergenceRate) {
  EXPECT_THROW(AControlRequest(AControlConfig{-0.1}), std::invalid_argument);
  EXPECT_THROW(AControlRequest(AControlConfig{1.0}), std::invalid_argument);
  EXPECT_NO_THROW(AControlRequest(AControlConfig{0.0}));
  EXPECT_NO_THROW(AControlRequest(AControlConfig{0.99}));
}

TEST(AControl, FirstRequestIsOne) {
  AControlRequest policy;
  EXPECT_EQ(policy.first_request(), 1);
}

TEST(AControl, Equation3Recurrence) {
  // d(q+1) = r d(q) + (1-r) A(q), d(1) = 1.
  const double r = 0.2;
  AControlRequest policy(AControlConfig{r});
  double expected = 1.0;
  const double parallelism[] = {10.0, 10.0, 40.0, 5.0, 5.0};
  for (const double a : parallelism) {
    const int request = policy.next_request(stats_with_parallelism(a));
    expected = r * expected + (1.0 - r) * a;
    EXPECT_NEAR(policy.desire(), expected, 1e-9);
    EXPECT_EQ(request, static_cast<int>(std::llround(expected)));
  }
}

TEST(AControl, OneStepConvergenceAtRateZero) {
  AControlRequest policy(AControlConfig{0.0});
  EXPECT_EQ(policy.next_request(stats_with_parallelism(17.0)), 17);
  EXPECT_EQ(policy.next_request(stats_with_parallelism(3.0)), 3);
}

TEST(AControl, GainScheduleMatchesTheorem1) {
  const double r = 0.3;
  AControlRequest policy(AControlConfig{r});
  policy.next_request(stats_with_parallelism(20.0));
  EXPECT_NEAR(policy.current_gain(), (1.0 - r) * 20.0, 1e-12);
}

TEST(AControl, HoldsDesireWithoutMeasurement) {
  AControlRequest policy(AControlConfig{0.2});
  policy.next_request(stats_with_parallelism(12.0));
  const double desire = policy.desire();
  QuantumStats empty;
  empty.length = 100;  // zero work, zero cpl: no measurable progress
  const int request = policy.next_request(empty);
  EXPECT_DOUBLE_EQ(policy.desire(), desire);
  EXPECT_EQ(request, static_cast<int>(std::llround(desire)));
}

TEST(AControl, ResetRestoresInitialState) {
  AControlRequest policy(AControlConfig{0.2});
  policy.next_request(stats_with_parallelism(50.0));
  policy.reset();
  EXPECT_DOUBLE_EQ(policy.desire(), 1.0);
  EXPECT_EQ(policy.first_request(), 1);
}

TEST(AControl, CloneCopiesConfigNotState) {
  AControlRequest policy(AControlConfig{0.35});
  policy.next_request(stats_with_parallelism(50.0));
  const auto clone = policy.clone();
  auto* typed = dynamic_cast<AControlRequest*>(clone.get());
  ASSERT_NE(typed, nullptr);
  EXPECT_DOUBLE_EQ(typed->config().convergence_rate, 0.35);
}

TEST(AControl, ConvergesMonotonicallyFromBelow) {
  // Constant parallelism A: error shrinks by exactly r each quantum with
  // no overshoot (Theorem 1's zero-overshoot + rate-r claims in the time
  // domain).
  const double r = 0.5;
  const double target = 32.0;
  AControlRequest policy(AControlConfig{r});
  double prev_error = target - 1.0;
  for (int q = 0; q < 20; ++q) {
    policy.next_request(stats_with_parallelism(target));
    const double error = target - policy.desire();
    EXPECT_GE(error, -1e-9) << "overshoot at quantum " << q;
    EXPECT_NEAR(error, prev_error * r, 1e-9);
    prev_error = error;
  }
  EXPECT_NEAR(policy.desire(), target, 1e-3);
}

TEST(AControl, NameIsStable) {
  AControlRequest policy;
  EXPECT_EQ(policy.name(), "a-control");
}

TEST(RoundRequest, Behaviour) {
  EXPECT_EQ(round_request(0.2), 1);   // clamped to >= 1
  EXPECT_EQ(round_request(1.4), 1);
  EXPECT_EQ(round_request(1.5), 2);
  EXPECT_EQ(round_request(99.6), 100);
  EXPECT_THROW(round_request(std::nan("")), std::invalid_argument);
}

}  // namespace
}  // namespace abg::sched
