#include "dag/topology.hpp"

#include <gtest/gtest.h>

#include "dag/builders.hpp"

namespace abg::dag {
namespace {

TEST(Topology, ChainLevelsAndCriticalPath) {
  const auto topo = build_topology(builders::chain(4));
  EXPECT_EQ(topo->critical_path, 4);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(topo->level[i], i);
  }
  EXPECT_EQ(topo->level_size, (std::vector<TaskCount>{1, 1, 1, 1}));
  EXPECT_EQ(topo->initial_parents[0], 0u);
  EXPECT_EQ(topo->initial_parents[3], 1u);
}

TEST(Topology, DiamondParentCounts) {
  const auto topo = build_topology(builders::diamond(3));
  EXPECT_EQ(topo->initial_parents[0], 0u);
  EXPECT_EQ(topo->initial_parents[1], 1u);
  EXPECT_EQ(topo->initial_parents[4], 3u);  // sink joins all 3 middles
}

TEST(Topology, EmptyDag) {
  const auto topo = build_topology(DagStructure{});
  EXPECT_EQ(topo->critical_path, 0);
  EXPECT_TRUE(topo->level.empty());
  EXPECT_TRUE(topo->level_size.empty());
}

TEST(Topology, RejectsCycle) {
  DagStructure s;
  s.children = {{1}, {2}, {0}};
  EXPECT_THROW(build_topology(s), std::invalid_argument);
}

TEST(Topology, RejectsSelfLoopAndRange) {
  DagStructure self_loop;
  self_loop.children = {{0}};
  EXPECT_THROW(build_topology(self_loop), std::invalid_argument);
  DagStructure out_of_range;
  out_of_range.children = {{7}};
  EXPECT_THROW(build_topology(out_of_range), std::invalid_argument);
}

TEST(Topology, SharedAcrossConsumers) {
  const auto topo = build_topology(builders::grid(3, 3));
  EXPECT_EQ(topo->critical_path, 5);  // rows + cols - 1
  // Anti-diagonal level sizes: 1, 2, 3, 2, 1.
  EXPECT_EQ(topo->level_size, (std::vector<TaskCount>{1, 2, 3, 2, 1}));
}

}  // namespace
}  // namespace abg::dag
