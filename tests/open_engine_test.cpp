#include "open/streaming_engine.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "alloc/equipartition.hpp"
#include "core/run.hpp"
#include "obs/event_bus.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_sink.hpp"
#include "util/cancel.hpp"

namespace abg::open {
namespace {

OpenConfig small_config() {
  OpenConfig config;
  config.processors = 16;
  config.quantum_length = 100;
  config.jobs_total = 300;
  config.load = 0.7;
  return config;
}

TEST(OpenEngine, StreamsEveryJobToCompletion) {
  const OpenResult result =
      core::run_open(core::abg_spec(), small_config(), 11);
  EXPECT_EQ(result.admitted, 300);
  EXPECT_EQ(result.completed, 300);
  EXPECT_EQ(result.stats.completed(), 300);
  EXPECT_GT(result.makespan, 0);
  EXPECT_GT(result.quanta, 0);
  EXPECT_GE(result.in_system_high_water, 1);
  EXPECT_GT(result.total_work, 0);
  EXPECT_GT(result.mean_gap, 0.0);
  EXPECT_GT(result.stats.response().mean(), 0.0);
  // Slowdown is response / critical path >= 1 for every job.
  EXPECT_GE(result.stats.slowdown().min(), 1.0);
}

TEST(OpenEngine, ByteReproducibleForSeed) {
  const OpenResult a = core::run_open(core::abg_spec(), small_config(), 5);
  const OpenResult b = core::run_open(core::abg_spec(), small_config(), 5);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.quanta, b.quanta);
  EXPECT_EQ(a.in_system_high_water, b.in_system_high_water);
  EXPECT_EQ(a.total_work, b.total_work);
  EXPECT_EQ(a.total_waste, b.total_waste);
  EXPECT_EQ(a.stats.to_json().dump(), b.stats.to_json().dump());
  // A different seed changes the stream.
  const OpenResult c = core::run_open(core::abg_spec(), small_config(), 6);
  EXPECT_NE(a.makespan, c.makespan);
}

TEST(OpenEngine, EveryArrivalFamilyRuns) {
  for (const ArrivalKind kind :
       {ArrivalKind::kPoisson, ArrivalKind::kMmpp, ArrivalKind::kDiurnal,
        ArrivalKind::kHeavyTail}) {
    OpenConfig config = small_config();
    config.arrival = kind;
    config.jobs_total = 120;
    const OpenResult result = core::run_open(core::abg_spec(), config, 3);
    EXPECT_EQ(result.completed, 120) << to_string(kind);
  }
}

TEST(OpenEngine, FixedGapWhenLoadIsZero) {
  OpenConfig config = small_config();
  config.load = 0.0;
  config.arrivals.mean_gap = 50.0;
  const OpenResult result = core::run_open(core::abg_spec(), config, 2);
  EXPECT_DOUBLE_EQ(result.mean_gap, 50.0);
  EXPECT_EQ(result.completed, 300);
}

TEST(OpenEngine, HigherLoadCompressesTheStream) {
  OpenConfig light = small_config();
  light.load = 0.3;
  OpenConfig heavy = small_config();
  heavy.load = 0.9;
  const OpenResult l = core::run_open(core::abg_spec(), light, 7);
  const OpenResult h = core::run_open(core::abg_spec(), heavy, 7);
  EXPECT_LT(h.mean_gap, l.mean_gap);
  EXPECT_LT(h.makespan, l.makespan);
  EXPECT_GE(h.in_system_high_water, l.in_system_high_water);
}

TEST(OpenEngine, TraceArrivalsReplayTheFile) {
  const std::string path = "open_engine_trace_test.jsonl";
  {
    std::ofstream out(path);
    write_arrival_trace(out, {{0, 1.0}, {200, 1.0}, {500, 2.0}});
  }
  OpenConfig config = small_config();
  config.arrival = ArrivalKind::kTrace;
  config.trace_path = path;
  config.load = 0.0;
  config.jobs_total = 9;  // tiles the 3-entry trace three times
  const OpenResult result = core::run_open(core::abg_spec(), config, 4);
  std::remove(path.c_str());
  EXPECT_EQ(result.completed, 9);
  // The trace owns its timing: no calibrated gap to report.
  EXPECT_DOUBLE_EQ(result.mean_gap, 0.0);
}

TEST(OpenEngine, PublishesOpenEventsAndCounters) {
  obs::EventBus bus;
  obs::MetricsRegistry registry;
  obs::MetricsSink sink(registry);
  bus.subscribe(&sink);
  OpenConfig config = small_config();
  config.jobs_total = 50;
  config.bus = &bus;
  const OpenResult result = core::run_open(core::abg_spec(), config, 13);
  EXPECT_EQ(registry.counter("open.arrivals").value(), 50);
  EXPECT_EQ(registry.counter("open.completed").value(), 50);
  EXPECT_EQ(registry.counter("open.admitted").value(), 50);
  EXPECT_EQ(registry.counter("open.stats_merges").value(), 0);
  EXPECT_DOUBLE_EQ(registry.gauge("open.in_system_high_water").value(),
                   static_cast<double>(result.in_system_high_water));
}

TEST(OpenEngine, AdmissionCapBoundsActiveJobs) {
  OpenConfig config = small_config();
  config.max_active = 4;
  config.jobs_total = 60;
  config.load = 0.9;
  const OpenResult result = core::run_open(core::abg_spec(), config, 21);
  EXPECT_EQ(result.completed, 60);
  // The backlog (and therefore the high water) can exceed the cap; the
  // queue-depth statistics must have seen at least the cap.
  EXPECT_GE(result.in_system_high_water, 4);
}

TEST(OpenEngine, ValidatesConfig) {
  const auto run = [](const OpenConfig& config) {
    return core::run_open(core::abg_spec(), config, 1);
  };
  OpenConfig config = small_config();
  config.jobs_total = 0;
  EXPECT_THROW(run(config), std::invalid_argument);
  config = small_config();
  config.arrival = ArrivalKind::kNone;
  EXPECT_THROW(run(config), std::invalid_argument);
  config = small_config();
  config.arrival = ArrivalKind::kTrace;  // no trace_path
  EXPECT_THROW(run(config), std::invalid_argument);
  config = small_config();
  config.load = -1.0;
  EXPECT_THROW(run(config), std::invalid_argument);
  config = small_config();
  config.processors = 0;
  EXPECT_THROW(run(config), std::invalid_argument);
}

TEST(OpenEngine, CancellationUnwindsPromptly) {
  util::CancelToken cancel;
  cancel.cancel(util::CancelCause::kShutdown);
  OpenConfig config = small_config();
  config.cancel = &cancel;
  EXPECT_THROW(core::run_open(core::abg_spec(), config, 1),
               util::CancelledError);
}

TEST(OpenEngine, SafetyBoundTripsOnOverload) {
  // Load far above 1 with a tight explicit step bound: the driver must
  // throw rather than spin forever behind an unbounded backlog.
  OpenConfig config = small_config();
  config.load = 8.0;
  config.jobs_total = 5000;
  config.max_steps = 2000;
  EXPECT_THROW(core::run_open(core::abg_spec(), config, 1),
               std::runtime_error);
}

TEST(OpenEngine, RunStreamMatchesRunOpenPlumbing) {
  // core::run_open is a thin adapter over run_stream: driving run_stream
  // directly with the same policies and default factory must agree.
  const OpenConfig config = small_config();
  const core::SchedulerSpec spec = core::abg_spec();
  alloc::EquiPartition allocator;
  const JobFactory factory =
      default_open_job_factory(config.quantum_length);
  const OpenResult direct = run_stream(*spec.execution, *spec.request,
                                       factory, allocator, config, 11);
  const OpenResult wrapped =
      core::run_open(core::abg_spec(), config, 11);
  EXPECT_EQ(direct.makespan, wrapped.makespan);
  EXPECT_EQ(direct.total_work, wrapped.total_work);
  EXPECT_EQ(direct.stats.to_json().dump(), wrapped.stats.to_json().dump());
}

}  // namespace
}  // namespace abg::open
