#include "alloc/equipartition.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace abg::alloc {
namespace {

int sum(const std::vector<int>& v) {
  return std::accumulate(v.begin(), v.end(), 0);
}

TEST(EquiPartition, EmptyRequestList) {
  EquiPartition deq;
  EXPECT_TRUE(deq.allocate({}, 16).empty());
}

TEST(EquiPartition, SingleJobGetsMinOfRequestAndMachine) {
  EquiPartition deq;
  EXPECT_EQ(deq.allocate({10}, 16).at(0), 10);
  EXPECT_EQ(deq.allocate({100}, 16).at(0), 16);
}

TEST(EquiPartition, EqualSplitWhenAllDemandMore) {
  EquiPartition deq;
  const auto a = deq.allocate({100, 100, 100, 100}, 16);
  EXPECT_EQ(a, (std::vector<int>{4, 4, 4, 4}));
}

TEST(EquiPartition, SmallRequestersFreeSurplusForOthers) {
  EquiPartition deq;
  // Fair share is 4, job 0 only wants 1; the other three split 15.
  const auto a = deq.allocate({1, 100, 100, 100}, 16);
  EXPECT_EQ(a.at(0), 1);
  EXPECT_EQ(sum(a), 16);
  for (int i = 1; i < 4; ++i) {
    EXPECT_GE(a.at(static_cast<std::size_t>(i)), 5);
  }
}

TEST(EquiPartition, Conservative) {
  // a(q) <= d(q) always.
  EquiPartition deq;
  const std::vector<int> requests{3, 0, 7, 2, 9};
  const auto a = deq.allocate(requests, 100);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_LE(a[i], requests[i]);
  }
  // Machine is big enough: everyone satisfied.
  EXPECT_EQ(a, requests);
}

TEST(EquiPartition, NonReserving) {
  // No processor idles while someone wants more.
  EquiPartition deq;
  const auto a = deq.allocate({5, 50}, 16);
  EXPECT_EQ(sum(a), 16);
  EXPECT_EQ(a.at(0), 5);
  EXPECT_EQ(a.at(1), 11);
}

TEST(EquiPartition, FairnessWithinOne) {
  // Jobs demanding more than the fair share differ by at most 1.
  EquiPartition deq;
  const auto a = deq.allocate({50, 50, 50}, 16);
  EXPECT_EQ(sum(a), 16);
  const auto [lo, hi] = std::minmax_element(a.begin(), a.end());
  EXPECT_LE(*hi - *lo, 1);
}

TEST(EquiPartition, RemainderRotatesAcrossQuanta) {
  EquiPartition deq;
  // 16 over 3 greedy jobs: someone gets the extra processor; over three
  // quanta each job gets it at least once.
  std::vector<int> extras(3, 0);
  for (int q = 0; q < 3; ++q) {
    const auto a = deq.allocate({50, 50, 50}, 16);
    for (std::size_t i = 0; i < 3; ++i) {
      if (a[i] == 6) {
        ++extras[i];
      }
    }
  }
  EXPECT_EQ(extras, (std::vector<int>{1, 1, 1}));
}

TEST(EquiPartition, MoreJobsThanProcessors) {
  EquiPartition deq;
  const auto a = deq.allocate({5, 5, 5, 5, 5}, 3);
  EXPECT_EQ(sum(a), 3);
  for (const int x : a) {
    EXPECT_LE(x, 1);
  }
}

TEST(EquiPartition, ZeroRequestsGetNothing) {
  EquiPartition deq;
  const auto a = deq.allocate({0, 10, 0}, 8);
  EXPECT_EQ(a.at(0), 0);
  EXPECT_EQ(a.at(2), 0);
  EXPECT_EQ(a.at(1), 8);
}

TEST(EquiPartition, ZeroMachine) {
  EquiPartition deq;
  const auto a = deq.allocate({4, 4}, 0);
  EXPECT_EQ(a, (std::vector<int>{0, 0}));
}

TEST(EquiPartition, RejectsNegativeInputs) {
  EquiPartition deq;
  EXPECT_THROW(deq.allocate({-1}, 4), std::invalid_argument);
  EXPECT_THROW(deq.allocate({1}, -4), std::invalid_argument);
}

TEST(EquiPartition, CascadingRedistribution) {
  // Shares cascade: {2, 5, 100} on 12: share 4 -> job0 takes 2; remaining
  // 10 over two: share 5 -> job1 takes 5; job2 gets 5.
  EquiPartition deq;
  const auto a = deq.allocate({2, 5, 100}, 12);
  EXPECT_EQ(a, (std::vector<int>{2, 5, 5}));
}

TEST(EquiPartition, ResetRestartsRotation) {
  EquiPartition deq;
  const auto first = deq.allocate({50, 50, 50}, 16);
  deq.reset();
  const auto again = deq.allocate({50, 50, 50}, 16);
  EXPECT_EQ(first, again);
}

TEST(EquiPartition, CloneIsIndependent) {
  EquiPartition deq;
  deq.allocate({50, 50, 50}, 16);  // advance rotation
  const auto clone = deq.clone();
  EXPECT_EQ(clone->name(), "equi-partition");
}

}  // namespace
}  // namespace abg::alloc
