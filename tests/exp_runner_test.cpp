#include "exp/runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exp/result_sink.hpp"
#include "util/rng.hpp"

namespace abg::exp {
namespace {

/// A small but non-trivial grid: two square-wave workload points under
/// both schedulers, plus one fault run.  Small levels keep it fast.
std::vector<RunSpec> small_grid() {
  std::vector<RunSpec> specs;
  for (const SchedulerKind scheduler :
       {SchedulerKind::kAbg, SchedulerKind::kAGreedy}) {
    for (std::uint64_t index = 0; index < 2; ++index) {
      RunSpec spec;
      spec.scheduler = scheduler;
      spec.workload.kind = WorkloadKind::kSquareWave;
      spec.workload.jobs = 2;
      spec.workload.levels = 200;
      spec.machine = {.processors = 16, .quantum_length = 50};
      spec.seed_index = index;
      spec.group = "point=" + std::to_string(index);
      specs.push_back(std::move(spec));
    }
  }
  RunSpec faulty = specs.front();
  faulty.faults.scenario = FaultScenario::kImpulse;
  faulty.group = "impulse";
  specs.push_back(std::move(faulty));
  return specs;
}

std::string jsonl_of(const std::vector<RunRecord>& records) {
  ResultSink sink("runner_test", 2008);
  sink.add_all(records);
  std::ostringstream os;
  sink.write_jsonl(os);
  return os.str();
}

TEST(SweepRunner, EmptyGridIsANoOp) {
  SweepConfig config;
  config.threads = 4;
  const std::vector<RunRecord> records = SweepRunner(config).run({});
  EXPECT_TRUE(records.empty());
}

TEST(SweepRunner, RecordsArriveInGridOrder) {
  const std::vector<RunSpec> specs = small_grid();
  SweepConfig config;
  config.threads = 2;
  const std::vector<RunRecord> records = SweepRunner(config).run(specs);
  ASSERT_EQ(records.size(), specs.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].run_id, static_cast<std::int64_t>(i));
    EXPECT_EQ(records[i].group, specs[i].group);
    EXPECT_EQ(records[i].seed,
              util::Rng::derive_seed(config.base_seed, specs[i].seed_index));
    EXPECT_TRUE(records[i].has_metric("makespan"));
    EXPECT_GT(records[i].metric("makespan"), 0.0);
  }
  // Paired scheduler variants share the seed (common random numbers).
  EXPECT_EQ(records[0].seed, records[2].seed);
  EXPECT_EQ(records[1].seed, records[3].seed);
  EXPECT_NE(records[0].seed, records[1].seed);
}

TEST(SweepRunner, IdenticalResultsAtAnyThreadCount) {
  // The ISSUE's headline guarantee: one worker and a full-width pool
  // produce byte-identical JSONL after ordering by run id.
  const std::vector<RunSpec> specs = small_grid();
  const int wide = std::max(
      4, static_cast<int>(std::thread::hardware_concurrency()));

  SweepConfig serial;
  serial.threads = 1;
  const std::vector<RunRecord> one = SweepRunner(serial).run(specs);

  SweepConfig pooled;
  pooled.threads = wide;
  const std::vector<RunRecord> many = SweepRunner(pooled).run(specs);

  ASSERT_EQ(one.size(), many.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].run_id, many[i].run_id);
    EXPECT_EQ(one[i].seed, many[i].seed);
    EXPECT_EQ(one[i].metrics, many[i].metrics) << "run " << i;
  }
  EXPECT_EQ(jsonl_of(one), jsonl_of(many));
}

TEST(SweepRunner, ExceptionInARunPropagates) {
  RunSpec bad;
  bad.workload.kind = WorkloadKind::kForkJoin;
  bad.workload.jobs = 0;  // invalid: build_workload rejects jobs < 1
  SweepConfig config;
  config.threads = 2;
  EXPECT_THROW(SweepRunner(config).run({bad}), std::invalid_argument);
}

TEST(SweepRunner, ProgressReportsEveryRun) {
  const std::vector<RunSpec> specs = small_grid();
  SweepConfig config;
  config.threads = 2;
  std::vector<std::int64_t> completions;
  config.on_progress = [&completions](const Progress& progress) {
    completions.push_back(progress.completed);
    EXPECT_EQ(progress.total, 5);
  };
  SweepRunner(config).run(specs);
  // The callback runs under the runner's lock, once per finished run.
  ASSERT_EQ(completions.size(), specs.size());
  std::sort(completions.begin(), completions.end());
  for (std::size_t i = 0; i < completions.size(); ++i) {
    EXPECT_EQ(completions[i], static_cast<std::int64_t>(i) + 1);
  }
}

TEST(RunRecord, MetricLookup) {
  RunRecord record;
  record.metrics = {{"makespan", 12.0}, {"total_work", 7.0}};
  EXPECT_TRUE(record.has_metric("makespan"));
  EXPECT_FALSE(record.has_metric("absent"));
  EXPECT_DOUBLE_EQ(record.metric("total_work"), 7.0);
  EXPECT_THROW(record.metric("absent"), std::out_of_range);
}

TEST(ResultSink, SummaryGroupsByGroupAndScheduler) {
  SweepConfig config;
  config.threads = 2;
  const std::vector<RunRecord> records = SweepRunner(config).run(small_grid());
  ResultSink sink("runner_test", config.base_seed);
  sink.add_all(records);
  const std::string summary = sink.summary().dump();
  EXPECT_NE(summary.find("\"benchmark\":\"runner_test\""), std::string::npos);
  EXPECT_NE(summary.find("\"total_runs\":5"), std::string::npos);
  EXPECT_NE(summary.find("\"group\":\"point=0\""), std::string::npos);
  EXPECT_NE(summary.find("\"group\":\"impulse\""), std::string::npos);
  EXPECT_NE(summary.find("\"scheduler\":\"a-greedy\""), std::string::npos);
  // Fault runs carry the resilience metrics into the summary.
  EXPECT_NE(summary.find("makespan_degradation"), std::string::npos);
}

}  // namespace
}  // namespace abg::exp
