#include "alloc/weighted_equipartition.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "alloc/equipartition.hpp"
#include "util/rng.hpp"

namespace abg::alloc {
namespace {

int sum(const std::vector<int>& v) {
  return std::accumulate(v.begin(), v.end(), 0);
}

TEST(WeightedEqui, Validation) {
  EXPECT_THROW(WeightedEquiPartition({}), std::invalid_argument);
  EXPECT_THROW(WeightedEquiPartition({1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(WeightedEquiPartition({1.0, -2.0}), std::invalid_argument);
  WeightedEquiPartition alloc({1.0, 2.0});
  EXPECT_THROW(alloc.allocate({5}, 8), std::invalid_argument);  // size
}

TEST(WeightedEqui, ProportionalSplitForGreedyJobs) {
  WeightedEquiPartition alloc({1.0, 3.0});
  const auto a = alloc.allocate({100, 100}, 16);
  EXPECT_EQ(sum(a), 16);
  EXPECT_EQ(a.at(0), 4);
  EXPECT_EQ(a.at(1), 12);
}

TEST(WeightedEqui, EqualWeightsMatchDeq) {
  WeightedEquiPartition weighted({1.0, 1.0, 1.0});
  EquiPartition deq;
  util::Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int> requests;
    for (int j = 0; j < 3; ++j) {
      requests.push_back(static_cast<int>(rng.uniform_int(0, 20)));
    }
    const int machine = static_cast<int>(rng.uniform_int(0, 16));
    const auto a = weighted.allocate(requests, machine);
    const auto b = deq.allocate(requests, machine);
    // Same totals and same multiset (the rotation offsets may distribute
    // the indivisible remainder to different jobs).
    ASSERT_EQ(sum(a), sum(b));
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_LE(std::abs(a[i] - b[i]), 1);
    }
  }
}

TEST(WeightedEqui, SmallRequesterFreesSurplusProportionally) {
  // Job 0 wants only 2; jobs 1 and 2 split the remaining 14 by weights
  // 1:2, within rounding.
  WeightedEquiPartition alloc({5.0, 1.0, 2.0});
  const auto a = alloc.allocate({2, 100, 100}, 16);
  EXPECT_EQ(a.at(0), 2);
  EXPECT_EQ(sum(a), 16);
  EXPECT_GE(a.at(2), a.at(1));
  EXPECT_NEAR(static_cast<double>(a.at(2)) / a.at(1), 2.0, 0.7);
}

TEST(WeightedEqui, Conservative) {
  WeightedEquiPartition alloc({2.0, 1.0});
  const auto a = alloc.allocate({3, 100}, 32);
  EXPECT_EQ(a.at(0), 3);
  EXPECT_EQ(a.at(1), 29);
}

TEST(WeightedEqui, NonReserving) {
  WeightedEquiPartition alloc({1.0, 4.0});
  const auto a = alloc.allocate({10, 10}, 64);
  EXPECT_EQ(a, (std::vector<int>{10, 10}));
}

TEST(WeightedEqui, RemainderRotates) {
  WeightedEquiPartition alloc({1.0, 1.0, 1.0});
  std::vector<int> extras(3, 0);
  for (int q = 0; q < 3; ++q) {
    const auto a = alloc.allocate({50, 50, 50}, 16);
    for (std::size_t i = 0; i < 3; ++i) {
      if (a[i] == 6) {
        ++extras[i];
      }
    }
  }
  EXPECT_EQ(extras, (std::vector<int>{1, 1, 1}));
}

TEST(WeightedEqui, HighPriorityJobFinishesFirst) {
  // End-to-end: two identical greedy jobs; the weight-4 job gets 4/5 of
  // the machine and finishes first.
  WeightedEquiPartition alloc({1.0, 4.0});
  const std::vector<int> a = alloc.allocate({100, 100}, 20);
  EXPECT_EQ(a.at(0), 4);
  EXPECT_EQ(a.at(1), 16);
}

TEST(WeightedEqui, CloneAndName) {
  WeightedEquiPartition alloc({1.0, 2.0});
  EXPECT_EQ(alloc.name(), "weighted-equi");
  const auto clone = alloc.clone();
  EXPECT_EQ(clone->allocate({100, 100}, 9),
            alloc.allocate({100, 100}, 9));
}

}  // namespace
}  // namespace abg::alloc
