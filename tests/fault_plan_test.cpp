// FaultPlan builders, validation and normalization, plus FaultInjector
// window-walking semantics.
#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "fault/fault_injector.hpp"
#include "util/rng.hpp"

namespace abg::fault {
namespace {

TEST(FaultPlan, EmptyPlanIsEmpty) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.last_event_step(), 0);
  EXPECT_EQ(plan.crash_count(), 0u);
  plan.normalize();  // empty is valid
}

TEST(FaultPlan, NormalizeSortsByStep) {
  FaultPlan plan;
  plan.events.push_back(FaultEvent{90, FaultKind::kProcessorRepair, 2});
  plan.events.push_back(FaultEvent{10, FaultKind::kProcessorFailure, 2});
  plan.normalize();
  EXPECT_EQ(plan.events[0].step, 10);
  EXPECT_EQ(plan.events[1].step, 90);
}

TEST(FaultPlan, NormalizeRejectsMalformedEvents) {
  {
    FaultPlan plan;
    plan.events.push_back(FaultEvent{-1, FaultKind::kProcessorFailure, 1});
    EXPECT_THROW(plan.normalize(), std::invalid_argument);
  }
  {
    FaultPlan plan;
    plan.events.push_back(FaultEvent{0, FaultKind::kProcessorFailure, 0});
    EXPECT_THROW(plan.normalize(), std::invalid_argument);
  }
  {
    FaultPlan plan;
    FaultEvent crash;
    crash.kind = FaultKind::kJobCrash;
    crash.job = -1;
    plan.events.push_back(crash);
    EXPECT_THROW(plan.normalize(), std::invalid_argument);
  }
  {
    FaultPlan plan;
    FaultEvent revoke;
    revoke.kind = FaultKind::kAllotmentRevocation;
    revoke.job = 0;
    revoke.cap = -3;
    plan.events.push_back(revoke);
    EXPECT_THROW(plan.normalize(), std::invalid_argument);
  }
  {
    FaultPlan plan;
    plan.restart_delay = -5;
    EXPECT_THROW(plan.normalize(), std::invalid_argument);
  }
}

TEST(FaultPlan, StepAndImpulseBuilders) {
  const FaultPlan step = step_failure_plan(500, 8);
  ASSERT_EQ(step.events.size(), 1u);
  EXPECT_EQ(step.events[0].kind, FaultKind::kProcessorFailure);
  EXPECT_EQ(step.events[0].processors, 8);
  EXPECT_EQ(step.last_event_step(), 500);

  const FaultPlan impulse = impulse_failure_plan(100, 4, 250);
  ASSERT_EQ(impulse.events.size(), 2u);
  EXPECT_EQ(impulse.events[0].kind, FaultKind::kProcessorFailure);
  EXPECT_EQ(impulse.events[1].kind, FaultKind::kProcessorRepair);
  EXPECT_EQ(impulse.events[1].step, 350);
  EXPECT_THROW(impulse_failure_plan(0, 4, 0), std::invalid_argument);
}

TEST(FaultPlan, PeriodicCrashBuilder) {
  const FaultPlan plan = periodic_crash_plan(3, 50, 200, 4);
  ASSERT_EQ(plan.events.size(), 4u);
  EXPECT_EQ(plan.crash_count(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(plan.events[static_cast<std::size_t>(i)].step, 50 + 200 * i);
    EXPECT_EQ(plan.events[static_cast<std::size_t>(i)].job, 3);
  }
  EXPECT_THROW(periodic_crash_plan(0, 0, 0, 1), std::invalid_argument);
}

TEST(FaultPlan, PoissonChurnIsDeterministicGivenSeed) {
  util::Rng rng_a(42);
  util::Rng rng_b(42);
  const FaultPlan a = poisson_churn_plan(rng_a, 10000, 0.01, 200, 3);
  const FaultPlan b = poisson_churn_plan(rng_b, 10000, 0.01, 200, 3);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].step, b.events[i].step);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
  }
  EXPECT_FALSE(a.empty());  // rate * horizon = 100 expected failures
}

TEST(FaultPlan, PoissonChurnRespectsConcurrencyCap) {
  util::Rng rng(7);
  const int max_down = 2;
  const FaultPlan plan = poisson_churn_plan(rng, 20000, 0.05, 500, max_down);
  // Replay the failure/repair stream and track concurrent failures.
  int down = 0;
  for (const FaultEvent& e : plan.events) {
    if (e.kind == FaultKind::kProcessorFailure) {
      down += e.processors;
    } else if (e.kind == FaultKind::kProcessorRepair) {
      down -= e.processors;
    }
    EXPECT_LE(down, max_down);
    EXPECT_GE(down, 0);
  }
}

TEST(FaultInjector, AdvanceConsumesEventsInWindowOrder) {
  FaultPlan plan;
  plan.events.push_back(FaultEvent{5, FaultKind::kProcessorFailure, 3});
  plan.events.push_back(FaultEvent{25, FaultKind::kProcessorRepair, 2});
  FaultInjector injector(plan);

  WindowFaults w0 = injector.advance(0, 10);
  ASSERT_EQ(w0.applied.size(), 1u);
  EXPECT_TRUE(w0.capacity_changed);
  EXPECT_EQ(injector.failed_processors(), 3);
  EXPECT_EQ(injector.capacity(16), 13);

  WindowFaults w1 = injector.advance(10, 20);
  EXPECT_TRUE(w1.applied.empty());
  EXPECT_FALSE(w1.capacity_changed);

  WindowFaults w2 = injector.advance(20, 30);
  ASSERT_EQ(w2.applied.size(), 1u);
  EXPECT_EQ(injector.failed_processors(), 1);
  EXPECT_EQ(injector.capacity(16), 15);
}

TEST(FaultInjector, CapacityFlooredAtZero) {
  FaultInjector injector(step_failure_plan(0, 100));
  injector.advance(0, 1);
  EXPECT_EQ(injector.capacity(8), 0);
}

TEST(FaultInjector, RevocationWindowCapsAndExpires) {
  FaultPlan plan;
  FaultEvent revoke;
  revoke.step = 10;
  revoke.kind = FaultKind::kAllotmentRevocation;
  revoke.job = 2;
  revoke.cap = 1;
  revoke.duration = 20;  // active over [10, 30)
  plan.events.push_back(revoke);
  FaultInjector injector(plan);

  injector.advance(0, 10);
  EXPECT_FALSE(injector.revocation_active());
  EXPECT_EQ(injector.allotment_cap(2), std::numeric_limits<int>::max());

  injector.advance(10, 20);
  EXPECT_TRUE(injector.revocation_active());
  EXPECT_EQ(injector.allotment_cap(2), 1);
  EXPECT_EQ(injector.allotment_cap(0), std::numeric_limits<int>::max());

  injector.advance(20, 30);
  EXPECT_TRUE(injector.revocation_active());  // [20,30) still inside

  injector.advance(30, 40);
  EXPECT_FALSE(injector.revocation_active());
}

TEST(FaultInjector, ZeroDurationRevocationLastsOneWindow) {
  FaultPlan plan;
  FaultEvent revoke;
  revoke.step = 0;
  revoke.kind = FaultKind::kAllotmentRevocation;
  revoke.job = 0;
  revoke.cap = 2;
  plan.events.push_back(revoke);
  FaultInjector injector(plan);

  injector.advance(0, 10);
  EXPECT_EQ(injector.allotment_cap(0), 2);
  injector.advance(10, 20);
  EXPECT_EQ(injector.allotment_cap(0), std::numeric_limits<int>::max());
}

TEST(FaultInjector, ResetRewindsThePlan) {
  FaultInjector injector(step_failure_plan(0, 4));
  injector.advance(0, 100);
  EXPECT_EQ(injector.failed_processors(), 4);
  injector.reset();
  EXPECT_EQ(injector.failed_processors(), 0);
  const WindowFaults replay = injector.advance(0, 100);
  EXPECT_EQ(replay.applied.size(), 1u);
  EXPECT_EQ(injector.failed_processors(), 4);
}

}  // namespace
}  // namespace abg::fault
