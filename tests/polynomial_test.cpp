#include <gtest/gtest.h>

#include <algorithm>
#include <complex>

#include "control/transfer_function.hpp"

namespace abg::control {
namespace {

TEST(Polynomial, DefaultIsZero) {
  Polynomial p;
  EXPECT_TRUE(p.is_zero());
  EXPECT_EQ(p.degree(), -1);
  EXPECT_DOUBLE_EQ(p.eval(3.0), 0.0);
}

TEST(Polynomial, TrimsTrailingZeros) {
  Polynomial p({1.0, 2.0, 0.0, 0.0});
  EXPECT_EQ(p.degree(), 1);
  EXPECT_DOUBLE_EQ(p.coeff(0), 1.0);
  EXPECT_DOUBLE_EQ(p.coeff(1), 2.0);
  EXPECT_DOUBLE_EQ(p.coeff(5), 0.0);
}

TEST(Polynomial, AllZeroCoefficientsIsZero) {
  Polynomial p({0.0, 0.0});
  EXPECT_TRUE(p.is_zero());
}

TEST(Polynomial, EvalHorner) {
  // p(z) = 2 - 3z + z^2; p(2) = 2 - 6 + 4 = 0; p(5) = 2 - 15 + 25 = 12.
  Polynomial p({2.0, -3.0, 1.0});
  EXPECT_DOUBLE_EQ(p.eval(2.0), 0.0);
  EXPECT_DOUBLE_EQ(p.eval(5.0), 12.0);
}

TEST(Polynomial, ComplexEval) {
  // p(z) = z^2 + 1; p(i) = 0.
  Polynomial p({1.0, 0.0, 1.0});
  const auto v = p.eval(std::complex<double>(0.0, 1.0));
  EXPECT_NEAR(std::abs(v), 0.0, 1e-12);
}

TEST(Polynomial, Addition) {
  Polynomial a({1.0, 2.0});
  Polynomial b({3.0, -2.0, 5.0});
  const Polynomial c = a + b;
  EXPECT_EQ(c.degree(), 2);
  EXPECT_DOUBLE_EQ(c.coeff(0), 4.0);
  EXPECT_DOUBLE_EQ(c.coeff(1), 0.0);
  EXPECT_DOUBLE_EQ(c.coeff(2), 5.0);
}

TEST(Polynomial, AdditionCancelsToLowerDegree) {
  Polynomial a({1.0, 1.0});
  Polynomial b({0.0, -1.0});
  const Polynomial c = a + b;
  EXPECT_EQ(c.degree(), 0);
}

TEST(Polynomial, Subtraction) {
  Polynomial a({5.0, 5.0});
  Polynomial b({2.0, 3.0});
  const Polynomial c = a - b;
  EXPECT_DOUBLE_EQ(c.coeff(0), 3.0);
  EXPECT_DOUBLE_EQ(c.coeff(1), 2.0);
}

TEST(Polynomial, Multiplication) {
  // (1 + z)(1 - z) = 1 - z^2.
  Polynomial a({1.0, 1.0});
  Polynomial b({1.0, -1.0});
  const Polynomial c = a * b;
  EXPECT_EQ(c.degree(), 2);
  EXPECT_DOUBLE_EQ(c.coeff(0), 1.0);
  EXPECT_DOUBLE_EQ(c.coeff(1), 0.0);
  EXPECT_DOUBLE_EQ(c.coeff(2), -1.0);
}

TEST(Polynomial, MultiplicationByZero) {
  Polynomial a({1.0, 1.0});
  const Polynomial c = a * Polynomial();
  EXPECT_TRUE(c.is_zero());
}

TEST(Polynomial, ScalarMultiplication) {
  Polynomial a({1.0, -2.0});
  const Polynomial c = a * 3.0;
  EXPECT_DOUBLE_EQ(c.coeff(0), 3.0);
  EXPECT_DOUBLE_EQ(c.coeff(1), -6.0);
}

TEST(Polynomial, RootsLinear) {
  // 3z - 6 = 0 -> z = 2.
  Polynomial p({-6.0, 3.0});
  const auto roots = p.roots();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_NEAR(roots[0].real(), 2.0, 1e-12);
  EXPECT_NEAR(roots[0].imag(), 0.0, 1e-12);
}

TEST(Polynomial, RootsQuadraticReal) {
  // (z-1)(z-3) = 3 - 4z + z^2.
  Polynomial p({3.0, -4.0, 1.0});
  auto roots = p.roots();
  ASSERT_EQ(roots.size(), 2u);
  std::sort(roots.begin(), roots.end(),
            [](auto a, auto b) { return a.real() < b.real(); });
  EXPECT_NEAR(roots[0].real(), 1.0, 1e-9);
  EXPECT_NEAR(roots[1].real(), 3.0, 1e-9);
  EXPECT_NEAR(roots[0].imag(), 0.0, 1e-9);
}

TEST(Polynomial, RootsComplexConjugates) {
  // z^2 + 1 = 0 -> z = ±i.
  Polynomial p({1.0, 0.0, 1.0});
  const auto roots = p.roots();
  ASSERT_EQ(roots.size(), 2u);
  for (const auto& r : roots) {
    EXPECT_NEAR(std::abs(r), 1.0, 1e-9);
    EXPECT_NEAR(r.real(), 0.0, 1e-9);
  }
}

TEST(Polynomial, RootsCubic) {
  // (z-1)(z-2)(z+3) = z^3 - 7z + 6... expand: (z-1)(z-2) = z^2-3z+2;
  // times (z+3): z^3 + 3z^2 - 3z^2 - 9z + 2z + 6 = z^3 - 7z + 6.
  Polynomial p({6.0, -7.0, 0.0, 1.0});
  auto roots = p.roots();
  ASSERT_EQ(roots.size(), 3u);
  std::vector<double> reals;
  for (const auto& r : roots) {
    EXPECT_NEAR(r.imag(), 0.0, 1e-8);
    reals.push_back(r.real());
  }
  std::sort(reals.begin(), reals.end());
  EXPECT_NEAR(reals[0], -3.0, 1e-8);
  EXPECT_NEAR(reals[1], 1.0, 1e-8);
  EXPECT_NEAR(reals[2], 2.0, 1e-8);
}

TEST(Polynomial, RootsConstantHasNone) {
  Polynomial p({4.0});
  EXPECT_TRUE(p.roots().empty());
}

TEST(Polynomial, RootsZeroThrows) {
  Polynomial p;
  EXPECT_THROW(p.roots(), std::invalid_argument);
}

TEST(Polynomial, Equality) {
  EXPECT_EQ(Polynomial({1.0, 2.0}), Polynomial({1.0, 2.0, 0.0}));
  EXPECT_NE(Polynomial({1.0}), Polynomial({2.0}));
}

}  // namespace
}  // namespace abg::control
