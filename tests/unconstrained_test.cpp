#include "alloc/unconstrained.hpp"

#include <gtest/gtest.h>

namespace abg::alloc {
namespace {

TEST(Unconstrained, GrantsUpToMachineSize) {
  Unconstrained u;
  EXPECT_EQ(u.allocate({5}, 16), (std::vector<int>{5}));
  EXPECT_EQ(u.allocate({50}, 16), (std::vector<int>{16}));
}

TEST(Unconstrained, IndependentPerJob) {
  // Intentionally oversubscribes: intended for single-job studies.
  Unconstrained u;
  EXPECT_EQ(u.allocate({10, 10}, 16), (std::vector<int>{10, 10}));
}

TEST(Unconstrained, PoolIsMachineSize) {
  Unconstrained u;
  EXPECT_EQ(u.pool(128), 128);
}

TEST(Unconstrained, RejectsNegativeInputs) {
  Unconstrained u;
  EXPECT_THROW(u.allocate({-1}, 4), std::invalid_argument);
}

TEST(Unconstrained, CloneAndName) {
  Unconstrained u;
  EXPECT_EQ(u.name(), "unconstrained");
  EXPECT_EQ(u.clone()->name(), "unconstrained");
}

}  // namespace
}  // namespace abg::alloc
