#include "sim/async_simulator.hpp"

#include <gtest/gtest.h>

#include "alloc/equipartition.hpp"
#include "core/run.hpp"
#include "dag/profile_job.hpp"
#include "fault/fault_plan.hpp"
#include "fault/resilience.hpp"
#include "sim/validate.hpp"
#include "workload/fork_join.hpp"
#include "workload/job_set.hpp"
#include "workload/profiles.hpp"

namespace abg::sim {
namespace {

JobSubmission submit(std::vector<dag::TaskCount> widths,
                     dag::Steps release = 0) {
  JobSubmission s;
  s.job = std::make_unique<dag::ProfileJob>(std::move(widths));
  s.release_step = release;
  return s;
}

TEST(AsyncSimulator, Validation) {
  sched::BGreedyExecution exec;
  sched::AControlRequest proto;
  {
    std::vector<JobSubmission> subs;
    subs.push_back(JobSubmission{});
    EXPECT_THROW(simulate_job_set_async(std::move(subs), exec, proto,
                                        SimConfig{}),
                 std::invalid_argument);
  }
  {
    std::vector<JobSubmission> subs;
    subs.push_back(submit({1}));
    SimConfig config;
    config.processors = 0;
    EXPECT_THROW(
        simulate_job_set_async(std::move(subs), exec, proto, config),
        std::invalid_argument);
  }
}

TEST(AsyncSimulator, ReallocationCostChargesMigrationDebt) {
  // Reallocation overhead is now supported by the asynchronous engine:
  // repartitions charge a migration debt that stalls the job, so a costed
  // run can only be slower than the free one, never cheaper.
  auto subs_for = [] {
    std::vector<JobSubmission> subs;
    subs.push_back(submit(workload::square_wave_profile(2, 40, 12, 40, 4)));
    subs.push_back(submit(workload::square_wave_profile(12, 40, 2, 40, 4),
                          23));
    return subs;
  };
  sched::BGreedyExecution exec;
  sched::AControlRequest proto;
  SimConfig config{.processors = 16, .quantum_length = 25};
  const SimResult free_run =
      simulate_job_set_async(subs_for(), exec, proto, config);
  config.reallocation_cost_per_proc = 3;
  const SimResult costed =
      simulate_job_set_async(subs_for(), exec, proto, config);
  for (const JobTrace& trace : costed.jobs) {
    EXPECT_TRUE(trace.finished());
  }
  EXPECT_GE(costed.makespan, free_run.makespan);
  const auto issues = validate_result(costed, 16);
  EXPECT_TRUE(issues.empty()) << (issues.empty() ? "" : issues.front());
}

TEST(AsyncSimulator, FaultedRunWithReallocationCostBalances) {
  // Faults and reallocation overhead compose in the asynchronous engine:
  // the crashed job restarts, every job finishes, and the lost-work
  // accounting identity (allotted = work + lost + waste) still holds.
  auto subs_for = [] {
    std::vector<JobSubmission> subs;
    for (int j = 0; j < 3; ++j) {
      subs.push_back(submit(workload::constant_profile(6, 120)));
    }
    return subs;
  };
  sched::BGreedyExecution exec;
  sched::AControlRequest proto;
  SimConfig config{.processors = 12, .quantum_length = 20};
  config.reallocation_cost_per_proc = 2;
  const SimResult reference =
      simulate_job_set_async(subs_for(), exec, proto, config);

  fault::FaultPlan plan = fault::periodic_crash_plan(0, 45, 60, 2);
  plan.work_loss = fault::WorkLoss::kCheckpointQuantum;
  config.faults = &plan;
  const SimResult faulty =
      simulate_job_set_async(subs_for(), exec, proto, config);
  for (const JobTrace& trace : faulty.jobs) {
    EXPECT_TRUE(trace.finished());
  }
  EXPECT_GE(faulty.makespan, reference.makespan);
  const fault::ResilienceReport report =
      fault::analyze_resilience(faulty, reference);
  EXPECT_GE(report.crash_events, 1);
  EXPECT_TRUE(report.accounting_balances())
      << "allotted " << report.allotted_cycles << " != work "
      << report.work_done << " + lost " << report.lost_work << " + waste "
      << report.waste;
  const auto issues = validate_result(faulty, 12);
  EXPECT_TRUE(issues.empty()) << (issues.empty() ? "" : issues.front());
}

TEST(AsyncSimulator, SingleJobMatchesSynchronousEngine) {
  // With one job the boundaries coincide with the synchronous engine's, so
  // completion time and per-quantum requests must agree exactly.
  auto subs_for = [] {
    std::vector<JobSubmission> subs;
    subs.push_back(submit(workload::square_wave_profile(1, 60, 8, 60, 3)));
    return subs;
  };
  sched::BGreedyExecution exec;
  sched::AControlRequest proto;
  const SimConfig config{.processors = 16, .quantum_length = 25};
  alloc::EquiPartition deq;
  const SimResult sync =
      simulate_job_set(subs_for(), exec, proto, deq, config);
  const SimResult async =
      simulate_job_set_async(subs_for(), exec, proto, config);
  EXPECT_EQ(sync.makespan, async.makespan);
  ASSERT_EQ(sync.jobs[0].quanta.size(), async.jobs[0].quanta.size());
  for (std::size_t q = 0; q < sync.jobs[0].quanta.size(); ++q) {
    EXPECT_EQ(sync.jobs[0].quanta[q].request,
              async.jobs[0].quanta[q].request)
        << "quantum " << q;
    EXPECT_EQ(sync.jobs[0].quanta[q].work, async.jobs[0].quanta[q].work);
  }
}

TEST(AsyncSimulator, StaggeredBoundariesInterleave) {
  // Jobs admitted at off-quantum offsets keep their own boundaries: the
  // second job's quanta start at its admission step, not at a global
  // multiple of L.
  std::vector<JobSubmission> subs;
  subs.push_back(submit(workload::constant_profile(4, 300), 0));
  subs.push_back(submit(workload::constant_profile(4, 300), 37));
  sched::BGreedyExecution exec;
  sched::AControlRequest proto;
  const SimConfig config{.processors = 16, .quantum_length = 50};
  const SimResult result =
      simulate_job_set_async(std::move(subs), exec, proto, config);
  ASSERT_TRUE(result.jobs[1].finished());
  EXPECT_EQ(result.jobs[1].quanta.front().start_step, 37);
  EXPECT_EQ(result.jobs[1].quanta[1].start_step, 87);
  // The synchronous engine would have delayed admission to step 50.
  EXPECT_EQ(result.jobs[1].response_time(),
            result.jobs[1].completion_step - 37);
}

TEST(AsyncSimulator, ResultsValidate) {
  std::vector<JobSubmission> subs;
  util::Rng rng(8);
  for (int j = 0; j < 4; ++j) {
    util::Rng job_rng = rng.split();
    subs.push_back(submit(
        workload::random_walk_profile(job_rng, 200, 12, 2.0),
        rng.uniform_int(0, 60)));
  }
  sched::BGreedyExecution exec;
  sched::AControlRequest proto;
  const SimConfig config{.processors = 12, .quantum_length = 30};
  const SimResult result =
      simulate_job_set_async(std::move(subs), exec, proto, config);
  const auto issues = validate_result(result, 12);
  EXPECT_TRUE(issues.empty()) << (issues.empty() ? "" : issues.front());
  for (const auto& t : result.jobs) {
    EXPECT_TRUE(t.finished());
    EXPECT_GE(t.response_time(), t.critical_path);
  }
}

TEST(AsyncSimulator, ComparableToSynchronousOnJobSets) {
  // The two boundary models should produce similar global performance on
  // the paper's workload — asynchrony is a modeling detail, not a
  // different scheduler.
  util::Rng rng(21);
  workload::JobSetSpec spec;
  spec.load = 1.0;
  spec.processors = 32;
  spec.min_phase_levels = 50;
  spec.max_phase_levels = 200;
  const auto generated = workload::make_job_set(rng, spec);
  auto subs_for = [&generated] {
    std::vector<JobSubmission> subs;
    for (const auto& g : generated) {
      subs.push_back(JobSubmission{
          std::make_unique<dag::ProfileJob>(g.job->widths()), 0, {}});
    }
    return subs;
  };
  sched::BGreedyExecution exec;
  sched::AControlRequest proto;
  const SimConfig config{.processors = 32, .quantum_length = 50};
  alloc::EquiPartition deq;
  const SimResult sync =
      simulate_job_set(subs_for(), exec, proto, deq, config);
  const SimResult async =
      simulate_job_set_async(subs_for(), exec, proto, config);
  const double ratio = static_cast<double>(async.makespan) /
                       static_cast<double>(sync.makespan);
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.4);
}

TEST(AsyncSimulator, AdmissionCapRespected) {
  std::vector<JobSubmission> subs;
  for (int j = 0; j < 5; ++j) {
    subs.push_back(submit(workload::constant_profile(1, 40)));
  }
  sched::BGreedyExecution exec;
  sched::AControlRequest proto;
  SimConfig config{.processors = 8, .quantum_length = 20};
  config.max_active_jobs = 1;
  const SimResult result =
      simulate_job_set_async(std::move(subs), exec, proto, config);
  // One at a time: completions at 40, 80, ..., 200.
  std::vector<dag::Steps> completions;
  for (const auto& t : result.jobs) {
    completions.push_back(t.completion_step);
  }
  std::sort(completions.begin(), completions.end());
  EXPECT_EQ(completions,
            (std::vector<dag::Steps>{40, 80, 120, 160, 200}));
}

}  // namespace
}  // namespace abg::sim
