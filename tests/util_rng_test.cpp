#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace abg::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000000), b.uniform_int(0, 1000000));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.uniform_int(0, 1 << 30) != b.uniform_int(0, 1 << 30)) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 32);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform_int(3, 3), 3);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform_int(2, 1), std::invalid_argument);
}

TEST(Rng, UniformRealStaysInRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_real(0.5, 2.5);
    EXPECT_GE(v, 0.5);
    EXPECT_LT(v, 2.5);
  }
}

TEST(Rng, UniformRealRejectsEmptyRange) {
  Rng rng(11);
  EXPECT_THROW(rng.uniform_real(1.0, 1.0), std::invalid_argument);
}

TEST(Rng, LogUniformStaysInRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.log_uniform(2.0, 100.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LE(v, 100.0);
  }
}

TEST(Rng, LogUniformDegenerateRange) {
  Rng rng(13);
  EXPECT_DOUBLE_EQ(rng.log_uniform(5.0, 5.0), 5.0);
}

TEST(Rng, LogUniformRejectsNonPositive) {
  Rng rng(13);
  EXPECT_THROW(rng.log_uniform(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.log_uniform(-1.0, 1.0), std::invalid_argument);
}

TEST(Rng, LogUniformFavorsSmallValues) {
  // Median of log-uniform on [1, 100] is 10 — far below the arithmetic
  // midpoint 50.5.
  Rng rng(17);
  int below_ten = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    if (rng.log_uniform(1.0, 100.0) < 10.0) {
      ++below_ten;
    }
  }
  EXPECT_NEAR(static_cast<double>(below_ten) / n, 0.5, 0.05);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliClampsOutOfRange) {
  Rng rng(19);
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(Rng, BernoulliRoughlyFair) {
  Rng rng(23);
  int heads = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    heads += rng.bernoulli(0.5) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.5, 0.05);
}

TEST(Rng, GeometricTruncates) {
  Rng rng(29);
  for (int i = 0; i < 200; ++i) {
    EXPECT_LE(rng.geometric(0.01, 5), 5);
  }
}

TEST(Rng, GeometricCertainSuccessIsZero) {
  Rng rng(29);
  EXPECT_EQ(rng.geometric(1.0, 100), 0);
}

TEST(Rng, GeometricRejectsBadProbability) {
  Rng rng(29);
  EXPECT_THROW(rng.geometric(0.0, 10), std::invalid_argument);
  EXPECT_THROW(rng.geometric(1.5, 10), std::invalid_argument);
  EXPECT_THROW(rng.geometric(0.5, -1), std::invalid_argument);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(99);
  Rng b(99);
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(ca.uniform_int(0, 1 << 30), cb.uniform_int(0, 1 << 30));
  }
}

TEST(Rng, SplitChildDiffersFromParentContinuation) {
  Rng parent(123);
  Rng child = parent.split();
  int differences = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.uniform_int(0, 1 << 30) != child.uniform_int(0, 1 << 30)) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 32);
}

TEST(Rng, SequentialSplitsDiffer) {
  Rng parent(7);
  Rng c1 = parent.split();
  Rng c2 = parent.split();
  int differences = 0;
  for (int i = 0; i < 64; ++i) {
    if (c1.uniform_int(0, 1 << 30) != c2.uniform_int(0, 1 << 30)) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 32);
}


TEST(Rng, DeriveSeedIsAPureFunction) {
  EXPECT_EQ(Rng::derive_seed(2008, 0), Rng::derive_seed(2008, 0));
  EXPECT_EQ(Rng::derive_seed(2008, 41), Rng::derive_seed(2008, 41));
  EXPECT_NE(Rng::derive_seed(2008, 0), Rng::derive_seed(2008, 1));
  EXPECT_NE(Rng::derive_seed(2008, 0), Rng::derive_seed(2009, 0));
}

TEST(Rng, DeriveMatchesDeriveSeed) {
  Rng from_seed(Rng::derive_seed(5, 17));
  Rng derived = Rng::derive(5, 17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(from_seed.uniform_int(0, 1 << 30),
              derived.uniform_int(0, 1 << 30));
  }
}

TEST(Rng, DerivedStreamsAreIndependent) {
  // Neighbouring indices and neighbouring bases must not produce
  // correlated streams (ad-hoc `seed + 1` reseeding used to risk this).
  Rng a = Rng::derive(1000, 1);
  Rng b = Rng::derive(1000, 2);
  Rng c = Rng::derive(1001, 1);
  int ab = 0;
  int ac = 0;
  for (int i = 0; i < 64; ++i) {
    const auto va = a.uniform_int(0, 1 << 30);
    const auto vb = b.uniform_int(0, 1 << 30);
    const auto vc = c.uniform_int(0, 1 << 30);
    ab += va != vb;
    ac += va != vc;
  }
  EXPECT_GT(ab, 32);
  EXPECT_GT(ac, 32);
}

}  // namespace
}  // namespace abg::util
