// Determinism contract of the sharded set engine: byte-identical results
// at any worker-thread count and across repeated runs, flat equivalence at
// one group, and clear rejection of the features the sharded engine does
// not model.  Also pins the sweep-layer JSONL: hier fields round-trip when
// set and stay absent when the run is flat.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "alloc/equipartition.hpp"
#include "core/run.hpp"
#include "exp/result_sink.hpp"
#include "exp/runner.hpp"
#include "fault/fault_plan.hpp"
#include "sched/a_control.hpp"
#include "sched/execution_policy.hpp"
#include "sched/quantum_length.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "workload/job_set.hpp"

namespace abg::sim {
namespace {

/// A moderately loaded job set with staggered releases, so admission,
/// completion and the idle fast-path all fire inside the group loops.
std::vector<JobSubmission> make_submissions(std::uint64_t seed) {
  util::Rng rng(seed);
  workload::JobSetSpec spec;
  spec.load = 1.5;
  spec.processors = 16;
  spec.min_phase_levels = 60;
  spec.max_phase_levels = 250;
  auto generated = workload::make_job_set(rng, spec);
  std::vector<JobSubmission> subs;
  for (std::size_t i = 0; i < generated.size(); ++i) {
    JobSubmission s;
    s.job = std::move(generated[i].job);
    s.release_step = static_cast<dag::Steps>(i % 3) * 40;
    subs.push_back(std::move(s));
  }
  return subs;
}

SimConfig hier_config(int groups, int threads,
                      dag::Steps rebalance_quanta = 1) {
  SimConfig config{.processors = 16, .quantum_length = 50};
  config.hier.groups = groups;
  config.hier.threads = threads;
  config.hier.rebalance_quanta = rebalance_quanta;
  return config;
}

SimResult run_hier(const SimConfig& config, std::uint64_t seed = 11) {
  return core::run_set(core::abg_spec(), make_submissions(seed), config);
}

void expect_results_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.mean_response_time, b.mean_response_time);
  EXPECT_EQ(a.total_waste, b.total_waste);
  EXPECT_EQ(a.quanta, b.quanta);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    const JobTrace& x = a.jobs[j];
    const JobTrace& y = b.jobs[j];
    EXPECT_EQ(x.release_step, y.release_step) << "job " << j;
    EXPECT_EQ(x.completion_step, y.completion_step) << "job " << j;
    EXPECT_EQ(x.work, y.work) << "job " << j;
    ASSERT_EQ(x.quanta.size(), y.quanta.size()) << "job " << j;
    for (std::size_t q = 0; q < x.quanta.size(); ++q) {
      const sched::QuantumStats& s = x.quanta[q];
      const sched::QuantumStats& t = y.quanta[q];
      EXPECT_EQ(s.start_step, t.start_step) << "job " << j << " q " << q;
      EXPECT_EQ(s.request, t.request) << "job " << j << " q " << q;
      EXPECT_EQ(s.allotment, t.allotment) << "job " << j << " q " << q;
      EXPECT_EQ(s.available, t.available) << "job " << j << " q " << q;
      EXPECT_EQ(s.length, t.length) << "job " << j << " q " << q;
      EXPECT_EQ(s.steps_used, t.steps_used) << "job " << j << " q " << q;
      EXPECT_EQ(s.work, t.work) << "job " << j << " q " << q;
      EXPECT_EQ(s.finished, t.finished) << "job " << j << " q " << q;
      EXPECT_EQ(s.full, t.full) << "job " << j << " q " << q;
    }
  }
}

TEST(ShardedEngine, OneGroupMatchesFlatRunSet) {
  // The golden-fixture contract in unit-test form: hier-groups=1 under the
  // default allocator reproduces the flat sync engine trace for trace.
  const SimConfig flat{.processors = 16, .quantum_length = 50};
  const SimResult flat_result =
      core::run_set(core::abg_spec(), make_submissions(11), flat);
  const SimResult hier_result = run_hier(hier_config(1, 2));
  expect_results_identical(flat_result, hier_result);
}

TEST(ShardedEngine, IdenticalAtAnyThreadCount) {
  const SimResult one = run_hier(hier_config(4, 1));
  const SimResult two = run_hier(hier_config(4, 2));
  const SimResult four = run_hier(hier_config(4, 4));
  expect_results_identical(one, two);
  expect_results_identical(one, four);
}

TEST(ShardedEngine, IdenticalOnRepeatedRuns) {
  const SimResult first = run_hier(hier_config(4, 3));
  const SimResult second = run_hier(hier_config(4, 3));
  expect_results_identical(first, second);
}

TEST(ShardedEngine, LongerRebalanceEpochsStayDeterministic) {
  // Epochs of 3 quanta change the allocation sequence (fewer root splits)
  // but must not change it across thread counts.
  const SimResult serial = run_hier(hier_config(4, 1, 3));
  const SimResult pooled = run_hier(hier_config(4, 4, 3));
  expect_results_identical(serial, pooled);
  EXPECT_GT(serial.makespan, 0);
}

TEST(ShardedEngine, NamedGroupAllocatorRunsDeterministically) {
  SimConfig config = hier_config(3, 1);
  config.hier.allocator = "rr";
  const SimResult serial = run_hier(config);
  config.hier.threads = 4;
  const SimResult pooled = run_hier(config);
  expect_results_identical(serial, pooled);
}

TEST(ShardedEngine, AllJobsCompleteAndConserveWork) {
  const SimResult result = run_hier(hier_config(4, 2));
  ASSERT_FALSE(result.jobs.empty());
  for (std::size_t j = 0; j < result.jobs.size(); ++j) {
    EXPECT_GT(result.jobs[j].completion_step, result.jobs[j].release_step)
        << "job " << j << " never completed";
    dag::TaskCount executed = 0;
    for (const auto& q : result.jobs[j].quanta) {
      executed += q.work;
    }
    EXPECT_EQ(executed, result.jobs[j].work) << "job " << j;
  }
}

TEST(ShardedEngine, RejectsUnsupportedFeatures) {
  sched::BGreedyExecution exec;
  sched::AControlRequest request;
  alloc::EquiPartition deq;

  {
    // groups < 1 is a contract violation of the direct entry point (via
    // core::run_set, 0 groups selects the flat path instead).
    SimConfig config = hier_config(0, 1);
    EXPECT_THROW(simulate_job_set_sharded(make_submissions(5), exec, request,
                                          deq, config),
                 std::invalid_argument);
  }
  {
    SimConfig config = hier_config(2, 1);
    const fault::FaultPlan plan = fault::periodic_crash_plan(0, 65, 90, 2);
    config.faults = &plan;
    EXPECT_THROW(simulate_job_set_sharded(make_submissions(5), exec, request,
                                          deq, config),
                 std::invalid_argument);
  }
  {
    SimConfig config = hier_config(2, 1);
    config.engine = EngineKind::kAsync;
    EXPECT_THROW(simulate_job_set_sharded(make_submissions(5), exec, request,
                                          deq, config),
                 std::invalid_argument);
  }
  {
    SimConfig config = hier_config(2, 1);
    sched::AdaptiveQuantumLength policy{sched::AdaptiveQuantumConfig{}};
    config.quantum_length_policy = &policy;
    EXPECT_THROW(simulate_job_set_sharded(make_submissions(5), exec, request,
                                          deq, config),
                 std::invalid_argument);
  }
}

/// Sweep grid with a hier axis: the same workload flat, at 2 groups and at
/// 4 groups.
std::vector<exp::RunSpec> hier_grid() {
  std::vector<exp::RunSpec> specs;
  for (const int groups : {0, 2, 4}) {
    exp::RunSpec spec;
    spec.scheduler = exp::SchedulerKind::kAbg;
    spec.workload.kind = exp::WorkloadKind::kSquareWave;
    spec.workload.jobs = 3;
    spec.workload.levels = 150;
    spec.machine = {.processors = 16, .quantum_length = 50};
    spec.hier_groups = groups;
    if (groups > 0) {
      spec.hier_alloc = "deq";
    }
    spec.group = "groups=" + std::to_string(groups);
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::string jsonl_of(const std::vector<exp::RunRecord>& records) {
  exp::ResultSink sink("hier_test", 2008);
  sink.add_all(records);
  std::ostringstream os;
  sink.write_jsonl(os);
  return os.str();
}

TEST(HierSweep, JsonlByteIdenticalAcrossWorkerCounts) {
  const std::vector<exp::RunSpec> specs = hier_grid();
  std::string baseline;
  for (const int jobs : {1, 4, 8}) {
    exp::SweepConfig config;
    config.threads = jobs;
    const std::string jsonl =
        jsonl_of(exp::SweepRunner(config).run(specs));
    if (baseline.empty()) {
      baseline = jsonl;
    } else {
      EXPECT_EQ(jsonl, baseline) << "diverged at --jobs " << jobs;
    }
  }
  EXPECT_FALSE(baseline.empty());
}

TEST(HierSweep, JsonlCarriesHierFieldsOnlyWhenSet) {
  exp::SweepConfig config;
  config.threads = 2;
  const std::vector<exp::RunRecord> records =
      exp::SweepRunner(config).run(hier_grid());
  ASSERT_EQ(records.size(), 3u);
  const std::string jsonl = jsonl_of(records);
  std::istringstream lines(jsonl);
  std::string line;
  std::vector<std::string> rows;
  while (std::getline(lines, line)) {
    rows.push_back(line);
  }
  ASSERT_EQ(rows.size(), 3u);
  // Flat record: the hier fields are omitted so pre-hier artifacts stay
  // byte-identical.
  EXPECT_EQ(rows[0].find("hier_groups"), std::string::npos);
  EXPECT_EQ(rows[0].find("hier_alloc"), std::string::npos);
  EXPECT_NE(rows[1].find("\"hier_groups\":2"), std::string::npos);
  EXPECT_NE(rows[1].find("\"hier_alloc\":\"deq\""), std::string::npos);
  EXPECT_NE(rows[2].find("\"hier_groups\":4"), std::string::npos);
}

TEST(HierSweep, GroupCountChangesScheduleButNotJobCount) {
  exp::SweepConfig config;
  config.threads = 2;
  const std::vector<exp::RunRecord> records =
      exp::SweepRunner(config).run(hier_grid());
  ASSERT_EQ(records.size(), 3u);
  for (const auto& record : records) {
    EXPECT_TRUE(record.has_metric("makespan"));
    EXPECT_GT(record.metric("makespan"), 0.0);
  }
}

}  // namespace
}  // namespace abg::sim
