// Edge cases of the JSON parser beyond the happy paths in
// util_json_test.cpp: the exact nesting-depth boundary, integer overflow
// and widening, duplicate object keys, escape-sequence corner cases, and
// malformed documents that should fail with a clear diagnostic rather
// than parse loosely.
#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace abg::util {
namespace {

std::string nested_arrays(int depth) {
  return std::string(static_cast<std::size_t>(depth), '[') +
         std::string(static_cast<std::size_t>(depth), ']');
}

TEST(JsonDepth, AcceptsNestingUpToTheLimit) {
  EXPECT_NO_THROW(Json::parse(nested_arrays(64)));
}

TEST(JsonDepth, RejectsNestingJustPastTheLimit) {
  try {
    Json::parse(nested_arrays(66));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("nesting"), std::string::npos);
  }
}

TEST(JsonDepth, MixedObjectArrayNestingCountsBothKinds) {
  std::string deep;
  for (int i = 0; i < 40; ++i) {
    deep += "{\"k\":[";
  }
  deep += "1";
  for (int i = 0; i < 40; ++i) {
    deep += "]}";
  }
  EXPECT_THROW(Json::parse(deep), std::invalid_argument);
}

TEST(JsonNumbers, Int64BoundsStayIntegral) {
  const auto max = std::numeric_limits<std::int64_t>::max();
  const auto min = std::numeric_limits<std::int64_t>::min();
  EXPECT_TRUE(Json::parse(std::to_string(max)).is_integer());
  EXPECT_EQ(Json::parse(std::to_string(max)).as_integer(), max);
  EXPECT_TRUE(Json::parse(std::to_string(min)).is_integer());
  EXPECT_EQ(Json::parse(std::to_string(min)).as_integer(), min);
}

TEST(JsonNumbers, BeyondInt64WidensToDouble) {
  // One past int64 max: no longer representable as an integer, so the
  // parser falls back to double instead of rejecting or wrapping.
  const Json v = Json::parse("9223372036854775808");
  EXPECT_FALSE(v.is_integer());
  EXPECT_TRUE(v.is_number());
  EXPECT_DOUBLE_EQ(v.as_number(), 9223372036854775808.0);
}

TEST(JsonNumbers, OverflowingExponentIsRejected) {
  EXPECT_THROW(Json::parse("1e999"), std::invalid_argument);
  EXPECT_THROW(Json::parse("-1e999"), std::invalid_argument);
}

TEST(JsonNumbers, MalformedNumbersAreRejected) {
  EXPECT_THROW(Json::parse("1.2.3"), std::invalid_argument);
  EXPECT_THROW(Json::parse("1e"), std::invalid_argument);
  EXPECT_THROW(Json::parse("+1"), std::invalid_argument);
  EXPECT_THROW(Json::parse("-"), std::invalid_argument);
  EXPECT_THROW(Json::parse("0x10"), std::invalid_argument);
}

TEST(JsonDuplicates, DuplicateKeysAreKeptAndLookupFindsTheFirst) {
  // The member list preserves the document verbatim (both entries); key
  // lookup resolves to the first occurrence, deterministically.
  const Json doc = Json::parse(R"({"a":1,"a":2})");
  ASSERT_EQ(doc.members().size(), 2u);
  EXPECT_EQ(doc.members()[0].second.as_integer(), 1);
  EXPECT_EQ(doc.members()[1].second.as_integer(), 2);
  EXPECT_EQ(doc.at("a").as_integer(), 1);
}

TEST(JsonEscapes, ControlCharactersMustBeEscaped) {
  EXPECT_THROW(Json::parse(std::string("\"a\tb\"")), std::invalid_argument);
  EXPECT_THROW(Json::parse(std::string("\"a\nb\"")), std::invalid_argument);
  EXPECT_EQ(Json::parse(R"("a\tb")").as_string(), "a\tb");
}

TEST(JsonEscapes, TruncatedAndInvalidEscapesAreRejected) {
  EXPECT_THROW(Json::parse(R"("\u12")"), std::invalid_argument);
  EXPECT_THROW(Json::parse(R"("\u12g4")"), std::invalid_argument);
  EXPECT_THROW(Json::parse(R"("\q")"), std::invalid_argument);
  EXPECT_THROW(Json::parse("\"\\"), std::invalid_argument);
}

TEST(JsonEscapes, SurrogateCornerCases) {
  // Low surrogate with no preceding high surrogate.
  EXPECT_THROW(Json::parse(R"("\udc00")"), std::invalid_argument);
  // High surrogate followed by a non-surrogate escape.
  EXPECT_THROW(Json::parse(R"("\ud83dA")"), std::invalid_argument);
  // Null escape round-trips as an embedded NUL byte.
  const std::string with_nul = Json::parse("\"a\\u0000b\"").as_string();
  ASSERT_EQ(with_nul.size(), 3u);
  EXPECT_EQ(with_nul[1], '\0');
}

TEST(JsonWriteEscapes, ControlCharactersRenderAsEscapes) {
  const std::string dumped = Json::string("a\x01z").dump();
  EXPECT_EQ(dumped, "\"a\\u0001z\"");
  // And the writer's output re-parses to the original bytes.
  EXPECT_EQ(Json::parse(dumped).as_string(), "a\x01z");
}

TEST(JsonWhitespace, OnlyStandardWhitespaceIsSkipped) {
  EXPECT_EQ(Json::parse(" \t\r\n 7 \t\r\n ").as_integer(), 7);
  EXPECT_THROW(Json::parse("\f7"), std::invalid_argument);
}

TEST(JsonDocuments, TrailingGarbageIsRejected) {
  EXPECT_THROW(Json::parse("{} {}"), std::invalid_argument);
  EXPECT_THROW(Json::parse("[1] x"), std::invalid_argument);
  EXPECT_THROW(Json::parse("null,"), std::invalid_argument);
}

}  // namespace
}  // namespace abg::util
