#include "alloc/hesrpt.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <vector>

namespace abg::alloc {
namespace {

int total(const std::vector<int>& allotments) {
  return std::accumulate(allotments.begin(), allotments.end(), 0);
}

TEST(HeSrpt, RejectsPowerOutsideUnitInterval) {
  EXPECT_THROW(HeSrpt(0.0), std::invalid_argument);
  EXPECT_THROW(HeSrpt(-0.5), std::invalid_argument);
  EXPECT_THROW(HeSrpt(1.5), std::invalid_argument);
  EXPECT_NO_THROW(HeSrpt(1.0));
}

TEST(HeSrpt, SharesTelescopeToWholeMachine) {
  HeSrpt alloc(0.5);
  const std::vector<int> requests = {64, 64, 64, 64};
  const std::vector<double> remaining = {400.0, 300.0, 200.0, 100.0};
  const std::vector<int> result = alloc.allocate_sized(requests, remaining, 64);
  EXPECT_EQ(total(result), 64);
  for (std::size_t i = 0; i < result.size(); ++i) {
    EXPECT_LE(result[i], requests[i]);
    EXPECT_GE(result[i], 0);
  }
}

TEST(HeSrpt, SmallestRemainingGetsLargestShare) {
  HeSrpt alloc(0.5);
  const std::vector<int> requests = {64, 64, 64};
  const std::vector<double> remaining = {900.0, 500.0, 100.0};
  const std::vector<int> result = alloc.allocate_sized(requests, remaining, 64);
  // Rank order is largest-remaining first, so shares ascend with rank:
  // job 2 (smallest remaining) strictly dominates job 0 (largest).
  EXPECT_GT(result[2], result[1]);
  EXPECT_GT(result[1], result[0]);
}

TEST(HeSrpt, PowerOneSplitsEvenly) {
  HeSrpt alloc(1.0);
  const std::vector<int> requests = {32, 32, 32};
  const std::vector<double> remaining = {300.0, 100.0, 200.0};
  const std::vector<int> result = alloc.allocate_sized(requests, remaining, 32);
  // p = 1 makes boundary(k) = k/n: equal increments, i.e. equipartition.
  // The two leftover processors go to the later ranks (smaller jobs) by
  // the deterministic largest-remainder tie-break.
  EXPECT_EQ(result[0], 10);
  EXPECT_EQ(result[1], 11);
  EXPECT_EQ(result[2], 11);
}

TEST(HeSrpt, SmallPowerApproachesSrpt) {
  HeSrpt alloc(0.05);
  const std::vector<int> requests = {32, 32, 32};
  const std::vector<double> remaining = {300.0, 100.0, 200.0};
  const std::vector<int> result = alloc.allocate_sized(requests, remaining, 32);
  // p -> 0 concentrates the whole boundary on the last rank: the
  // smallest-remaining job takes the machine.
  EXPECT_EQ(result[1], 32);
  EXPECT_EQ(result[0], 0);
  EXPECT_EQ(result[2], 0);
}

TEST(HeSrpt, RequestCapsWaterFillToNextSmallest) {
  HeSrpt alloc(0.05);
  const std::vector<int> requests = {32, 4, 32};
  const std::vector<double> remaining = {300.0, 100.0, 200.0};
  const std::vector<int> result = alloc.allocate_sized(requests, remaining, 32);
  // Near-SRPT wants everything on job 1, but its request caps at 4; the
  // surplus water-fills to the next-smallest remaining job.
  EXPECT_EQ(result[1], 4);
  EXPECT_EQ(result[2], 28);
  EXPECT_EQ(result[0], 0);
}

TEST(HeSrpt, ZeroRequestsGetNothing) {
  HeSrpt alloc(0.5);
  const std::vector<int> requests = {16, 0, 16};
  const std::vector<double> remaining = {100.0, 50.0, 200.0};
  const std::vector<int> result = alloc.allocate_sized(requests, remaining, 16);
  EXPECT_EQ(result[1], 0);
  EXPECT_EQ(total(result), 16);
}

TEST(HeSrpt, SizeFreeFallbackIsDeterministic) {
  HeSrpt alloc(0.5);
  const std::vector<int> requests = {8, 8, 8, 8};
  const std::vector<int> first = alloc.allocate(requests, 16);
  const std::vector<int> second = alloc.allocate(requests, 16);
  EXPECT_EQ(first, second);
  EXPECT_EQ(total(first), 16);
  EXPECT_TRUE(alloc.size_aware());
}

TEST(HeSrpt, MismatchedSizesVectorThrows) {
  HeSrpt alloc(0.5);
  EXPECT_THROW(alloc.allocate_sized({8, 8}, {1.0}, 16),
               std::invalid_argument);
}

TEST(HeSrpt, NeverExceedsMachineOrRequests) {
  HeSrpt alloc(0.3);
  const std::vector<int> requests = {5, 9, 2, 7, 1, 12};
  const std::vector<double> remaining = {60.0, 10.0, 80.0, 20.0, 90.0, 40.0};
  for (const int p : {1, 3, 8, 17, 36, 100}) {
    const std::vector<int> result =
        alloc.allocate_sized(requests, remaining, p);
    int sum = 0;
    for (std::size_t i = 0; i < result.size(); ++i) {
      EXPECT_GE(result[i], 0);
      EXPECT_LE(result[i], requests[i]);
      sum += result[i];
    }
    EXPECT_LE(sum, p);
  }
}

TEST(HeSrpt, CloneCarriesPower) {
  HeSrpt alloc(0.7);
  const auto copy = alloc.clone();
  EXPECT_EQ(copy->name(), "hesrpt");
  EXPECT_TRUE(copy->size_aware());
}

}  // namespace
}  // namespace abg::alloc
