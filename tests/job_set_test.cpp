#include "workload/job_set.hpp"

#include <gtest/gtest.h>

namespace abg::workload {
namespace {

JobSetSpec small_spec(double load) {
  JobSetSpec spec;
  spec.load = load;
  spec.processors = 32;
  spec.min_transition_factor = 2.0;
  spec.max_transition_factor = 20.0;
  spec.phase_pairs = 2;
  spec.min_phase_levels = 20;
  spec.max_phase_levels = 60;
  return spec;
}

TEST(JobSet, AlwaysAtLeastOneJob) {
  util::Rng rng(1);
  const auto jobs = make_job_set(rng, small_spec(0.001));
  EXPECT_GE(jobs.size(), 1u);
}

TEST(JobSet, NeverMoreJobsThanProcessors) {
  util::Rng rng(2);
  const auto jobs = make_job_set(rng, small_spec(100.0));
  EXPECT_LE(jobs.size(), 32u);
}

TEST(JobSet, RealizedLoadReachesTarget) {
  util::Rng rng(3);
  for (const double load : {0.5, 1.0, 2.0}) {
    const auto jobs = make_job_set(rng, small_spec(load));
    const double realized = realized_load(jobs, 32);
    // The generator stops at the first job crossing the target, so realized
    // load is at least the target (unless capped by |J| <= P).
    if (jobs.size() < 32u) {
      EXPECT_GE(realized, load);
    }
    // ... and overshoots by at most one job's parallelism.
    EXPECT_LE(realized, load + jobs.back().average_parallelism / 32.0 + 1e-9);
  }
}

TEST(JobSet, TransitionFactorsWithinRange) {
  util::Rng rng(4);
  const auto jobs = make_job_set(rng, small_spec(3.0));
  for (const GeneratedJob& j : jobs) {
    EXPECT_GE(j.target_transition_factor, 2.0);
    EXPECT_LE(j.target_transition_factor, 20.0);
  }
}

TEST(JobSet, AverageParallelismMatchesJob) {
  util::Rng rng(5);
  const auto jobs = make_job_set(rng, small_spec(1.0));
  for (const GeneratedJob& j : jobs) {
    const double expected =
        static_cast<double>(j.job->total_work()) /
        static_cast<double>(j.job->critical_path());
    EXPECT_DOUBLE_EQ(j.average_parallelism, expected);
  }
}

TEST(JobSet, Deterministic) {
  util::Rng a(6);
  util::Rng b(6);
  const auto ja = make_job_set(a, small_spec(1.5));
  const auto jb = make_job_set(b, small_spec(1.5));
  ASSERT_EQ(ja.size(), jb.size());
  for (std::size_t i = 0; i < ja.size(); ++i) {
    EXPECT_EQ(ja[i].job->widths(), jb[i].job->widths());
  }
}

TEST(JobSet, Validation) {
  util::Rng rng(7);
  JobSetSpec spec = small_spec(1.0);
  spec.load = 0.0;
  EXPECT_THROW(make_job_set(rng, spec), std::invalid_argument);
  spec = small_spec(1.0);
  spec.processors = 0;
  EXPECT_THROW(make_job_set(rng, spec), std::invalid_argument);
  spec = small_spec(1.0);
  spec.min_transition_factor = 0.5;
  EXPECT_THROW(make_job_set(rng, spec), std::invalid_argument);
  spec = small_spec(1.0);
  spec.max_transition_factor = 1.0;
  EXPECT_THROW(make_job_set(rng, spec), std::invalid_argument);
  EXPECT_THROW(realized_load({}, 0), std::invalid_argument);
}

}  // namespace
}  // namespace abg::workload
