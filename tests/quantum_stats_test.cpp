#include "sched/quantum_stats.hpp"

#include <gtest/gtest.h>

namespace abg::sched {
namespace {

QuantumStats make_stats() {
  QuantumStats q;
  q.index = 3;
  q.request = 10;
  q.allotment = 8;
  q.length = 100;
  q.steps_used = 100;
  q.work = 600;
  q.cpl = 50.0;
  q.full = true;
  return q;
}

TEST(QuantumStats, AverageParallelism) {
  const QuantumStats q = make_stats();
  EXPECT_DOUBLE_EQ(q.average_parallelism(), 12.0);
}

TEST(QuantumStats, AverageParallelismZeroCpl) {
  QuantumStats q = make_stats();
  q.cpl = 0.0;
  EXPECT_DOUBLE_EQ(q.average_parallelism(), 0.0);
}

TEST(QuantumStats, WorkEfficiency) {
  const QuantumStats q = make_stats();
  EXPECT_DOUBLE_EQ(q.work_efficiency(), 600.0 / 800.0);
}

TEST(QuantumStats, WorkEfficiencyZeroAllotment) {
  QuantumStats q = make_stats();
  q.allotment = 0;
  EXPECT_DOUBLE_EQ(q.work_efficiency(), 0.0);
}

TEST(QuantumStats, CplEfficiency) {
  const QuantumStats q = make_stats();
  EXPECT_DOUBLE_EQ(q.cpl_efficiency(), 0.5);
}

TEST(QuantumStats, Deprived) {
  QuantumStats q = make_stats();
  EXPECT_TRUE(q.deprived());
  q.allotment = 10;
  EXPECT_FALSE(q.deprived());
}

TEST(QuantumStats, Waste) {
  const QuantumStats q = make_stats();
  EXPECT_EQ(q.waste(), 8 * 100 - 600);
}

TEST(QuantumStats, WasteZeroWhenFullyUsed) {
  QuantumStats q = make_stats();
  q.work = 800;
  EXPECT_EQ(q.waste(), 0);
}

}  // namespace
}  // namespace abg::sched
