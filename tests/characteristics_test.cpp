#include "dag/characteristics.hpp"

#include <gtest/gtest.h>

#include "dag/builders.hpp"
#include "dag/profile_job.hpp"

namespace abg::dag {
namespace {

TEST(Characteristics, ProfileJobValues) {
  ProfileJob job({1, 8, 1, 4});
  const JobCharacteristics c = characteristics_of(job);
  EXPECT_EQ(c.work, 14);
  EXPECT_EQ(c.critical_path, 4);
  EXPECT_DOUBLE_EQ(c.average_parallelism, 14.0 / 4.0);
  EXPECT_EQ(c.max_level_width, 8);
}

TEST(Characteristics, DagJobValues) {
  DagJob job{builders::diamond(5)};
  const JobCharacteristics c = characteristics_of(job);
  EXPECT_EQ(c.work, 7);
  EXPECT_EQ(c.critical_path, 3);
  EXPECT_DOUBLE_EQ(c.average_parallelism, 7.0 / 3.0);
  EXPECT_EQ(c.max_level_width, 5);
}

TEST(Characteristics, EmptyJob) {
  ProfileJob job({});
  const JobCharacteristics c = characteristics_of(job);
  EXPECT_EQ(c.work, 0);
  EXPECT_EQ(c.critical_path, 0);
  EXPECT_DOUBLE_EQ(c.average_parallelism, 0.0);
}

TEST(LevelHistogram, MatchesBuilder) {
  const auto hist =
      level_histogram(builders::barrier_profile({2, 5, 3}));
  const std::vector<TaskCount> expected{2, 5, 3};
  EXPECT_EQ(hist, expected);
}

TEST(LevelHistogram, ValidatesStructure) {
  DagStructure cyclic;
  cyclic.children = {{1}, {0}};
  EXPECT_THROW(level_histogram(cyclic), std::invalid_argument);
}

}  // namespace
}  // namespace abg::dag
