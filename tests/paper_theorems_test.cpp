// Empirical verification of the paper's algorithmic results on actual
// scheduled runs: Inequality 5 (α + β >= 1 per full quantum, up to the
// 1/L fractional-level slack), Lemma 2 (request/parallelism ratio bounds),
// Theorem 3 (running time under trim analysis), Theorem 4 (waste) and
// Theorem 5 (makespan / mean response time under DEQ).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "alloc/availability_profile.hpp"
#include "core/run.hpp"
#include "metrics/bounds.hpp"
#include "metrics/lower_bounds.hpp"
#include "metrics/parallelism_stats.hpp"
#include "metrics/trim.hpp"
#include "sim/quantum_engine.hpp"
#include "workload/fork_join.hpp"
#include "workload/job_set.hpp"

namespace abg {
namespace {

constexpr dag::Steps kQuantum = 200;
constexpr int kProcessors = 128;
// Small convergence rate so r < 1/C_L holds for the generated workloads.
constexpr double kRate = 0.05;

sim::JobTrace run_abg_on(dag::Job& job, alloc::Allocator* allocator = nullptr) {
  return core::run_single(
      core::abg_spec(core::AbgConfig{.convergence_rate = kRate}), job,
      sim::SingleJobConfig{.processors = kProcessors,
                           .quantum_length = kQuantum},
      allocator);
}

class PaperTheorems : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PaperTheorems, Inequality5GreedyEfficiencyBound) {
  util::Rng rng(GetParam());
  const auto job =
      workload::make_fork_join_job(rng, workload::figure5_spec(8.0, kQuantum));
  const sim::JobTrace trace = run_abg_on(*job);
  ASSERT_TRUE(trace.finished());
  const double slack = 1.0 / static_cast<double>(kQuantum);
  for (const auto& q : trace.quanta) {
    if (q.full) {
      EXPECT_GE(q.work_efficiency() + q.cpl_efficiency(),
                1.0 - slack - 1e-9)
          << "quantum " << q.index;
    }
  }
}

TEST_P(PaperTheorems, Lemma2RequestBounds) {
  util::Rng rng(GetParam() ^ 0x1111ULL);
  const auto job =
      workload::make_fork_join_job(rng, workload::figure5_spec(4.0, kQuantum));
  const sim::JobTrace trace = run_abg_on(*job);
  ASSERT_TRUE(trace.finished());

  const double transition = metrics::empirical_transition_factor(trace);
  ASSERT_LT(kRate, 1.0 / transition)
      << "workload violates the r < 1/C_L precondition";
  const metrics::Lemma2Bounds bounds =
      metrics::lemma2_bounds(transition, kRate);

  for (const auto& q : trace.quanta) {
    if (!q.full || q.cpl <= 0.0) {
      continue;
    }
    const double parallelism = q.average_parallelism();
    // +/- 1 allows for the integer rounding of requests (the paper's d(q)
    // is real-valued).
    EXPECT_GE(q.request + 1.0, bounds.lower_ratio * parallelism)
        << "quantum " << q.index;
    EXPECT_LE(q.request - 1.0, bounds.upper_ratio * parallelism)
        << "quantum " << q.index;
  }
}

TEST_P(PaperTheorems, Theorem3RunningTime) {
  util::Rng rng(GetParam() ^ 0x2222ULL);
  const auto job =
      workload::make_fork_join_job(rng, workload::figure5_spec(6.0, kQuantum));
  const sim::JobTrace trace = run_abg_on(*job);
  ASSERT_TRUE(trace.finished());

  const double transition = metrics::empirical_transition_factor(trace);
  const double trim_steps =
      metrics::theorem3_trim_steps(trace.critical_path, transition, kRate,
                                   kQuantum);
  const double trimmed = metrics::trimmed_availability(
      trace, static_cast<dag::Steps>(std::ceil(trim_steps)));
  const double bound = metrics::theorem3_time_bound(
      trace.work, trace.critical_path, transition, kRate, trimmed, kQuantum);
  // 5% slack for the fractional-level measurement (footnote: α + β >= 1
  // only up to 1/L).
  EXPECT_LE(static_cast<double>(trace.response_time()), 1.05 * bound);
}

TEST_P(PaperTheorems, Theorem3UnderAdversarialAvailability) {
  // An adversarial allocator that floods the job with processors during
  // low parallelism and starves it during high parallelism.  The trimmed
  // availability absorbs the adversary; the bound must still hold.
  util::Rng rng(GetParam() ^ 0x3333ULL);
  const auto job =
      workload::make_fork_join_job(rng, workload::figure5_spec(6.0, kQuantum));
  util::Rng pattern = rng.split();
  std::vector<int> availability;
  for (int q = 0; q < 400; ++q) {
    availability.push_back(
        static_cast<int>(pattern.uniform_int(1, kProcessors)));
  }
  alloc::AvailabilityProfile allocator(availability);
  const sim::JobTrace trace = run_abg_on(*job, &allocator);
  ASSERT_TRUE(trace.finished());

  const double transition = metrics::empirical_transition_factor(trace);
  const double trim_steps = metrics::theorem3_trim_steps(
      trace.critical_path, transition, kRate, kQuantum);
  const double trimmed = metrics::trimmed_availability(
      trace, static_cast<dag::Steps>(std::ceil(trim_steps)));
  const double bound = metrics::theorem3_time_bound(
      trace.work, trace.critical_path, transition, kRate, trimmed, kQuantum);
  EXPECT_LE(static_cast<double>(trace.response_time()), 1.05 * bound);
}

TEST_P(PaperTheorems, Theorem4Waste) {
  util::Rng rng(GetParam() ^ 0x4444ULL);
  const auto job =
      workload::make_fork_join_job(rng, workload::figure5_spec(4.0, kQuantum));
  const sim::JobTrace trace = run_abg_on(*job);
  ASSERT_TRUE(trace.finished());

  const double transition = metrics::empirical_transition_factor(trace);
  ASSERT_LT(kRate, 1.0 / transition);
  const double bound = metrics::theorem4_waste_bound(
      trace.work, transition, kRate, kProcessors, kQuantum);
  EXPECT_LE(static_cast<double>(trace.total_waste()), 1.05 * bound);
}

TEST_P(PaperTheorems, Theorem5MakespanAndResponse) {
  util::Rng rng(GetParam() ^ 0x5555ULL);
  workload::JobSetSpec spec;
  spec.load = 1.5;
  spec.processors = 64;
  spec.min_transition_factor = 2.0;
  spec.max_transition_factor = 6.0;
  spec.phase_pairs = 3;
  spec.min_phase_levels = kQuantum / 2;
  spec.max_phase_levels = 2 * kQuantum;
  auto generated = workload::make_job_set(rng, spec);

  std::vector<metrics::JobSummary> summaries;
  std::vector<sim::JobSubmission> subs;
  for (auto& g : generated) {
    summaries.push_back(metrics::JobSummary{
        g.job->total_work(), g.job->critical_path(), 0});
    sim::JobSubmission s;
    s.job = std::move(g.job);
    subs.push_back(std::move(s));
  }
  const sim::SimResult result = core::run_set(
      core::abg_spec(core::AbgConfig{.convergence_rate = kRate}),
      std::move(subs),
      sim::SimConfig{.processors = 64, .quantum_length = kQuantum});

  double max_transition = 1.0;
  for (const auto& t : result.jobs) {
    max_transition =
        std::max(max_transition, metrics::empirical_transition_factor(t));
  }
  ASSERT_LT(kRate, 1.0 / max_transition)
      << "workload violates the r < 1/C_L precondition";

  const double makespan_star = metrics::makespan_lower_bound(summaries, 64);
  const double response_star = metrics::response_lower_bound(summaries, 64);
  const double makespan_bound = metrics::theorem5_makespan_bound(
      makespan_star, max_transition, kRate, kQuantum, summaries.size());
  const double response_bound = metrics::theorem5_response_bound(
      response_star, max_transition, kRate, kQuantum, summaries.size());

  EXPECT_LE(static_cast<double>(result.makespan), 1.05 * makespan_bound);
  EXPECT_LE(result.mean_response_time, 1.05 * response_bound);
  // ... and the lower bounds really are lower bounds:
  EXPECT_GE(static_cast<double>(result.makespan), makespan_star - 1e-9);
  EXPECT_GE(result.mean_response_time, response_star - 1e-9);
}

// Lemma 2 and Theorem 4 swept across convergence rates: the bounds must
// hold for every r satisfying r < 1/C_L, not just one operating point.
class RateSweep
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(RateSweep, Lemma2AndTheorem4HoldAcrossRates) {
  const double rate = std::get<0>(GetParam());
  const std::uint64_t seed = std::get<1>(GetParam());
  util::Rng rng(seed);
  const auto job =
      workload::make_fork_join_job(rng, workload::figure5_spec(4.0, kQuantum));
  const sim::JobTrace trace = core::run_single(
      core::abg_spec(core::AbgConfig{.convergence_rate = rate}), *job,
      sim::SingleJobConfig{.processors = kProcessors,
                           .quantum_length = kQuantum});
  ASSERT_TRUE(trace.finished());

  const double transition = metrics::empirical_transition_factor(trace);
  if (!(rate < 1.0 / transition)) {
    GTEST_SKIP() << "r >= 1/C_L for this draw; bounds not defined";
  }
  const metrics::Lemma2Bounds bounds =
      metrics::lemma2_bounds(transition, rate);
  for (const auto& q : trace.quanta) {
    if (!q.full || q.cpl <= 0.0) {
      continue;
    }
    const double parallelism = q.average_parallelism();
    EXPECT_GE(q.request + 1.0, bounds.lower_ratio * parallelism);
    EXPECT_LE(q.request - 1.0, bounds.upper_ratio * parallelism);
  }
  const double waste_bound = metrics::theorem4_waste_bound(
      trace.work, transition, rate, kProcessors, kQuantum);
  EXPECT_LE(static_cast<double>(trace.total_waste()), 1.05 * waste_bound);
}

INSTANTIATE_TEST_SUITE_P(
    Rates, RateSweep,
    ::testing::Combine(::testing::Values(0.0, 0.02, 0.08, 0.15),
                       ::testing::Values(11u, 22u, 33u)),
    [](const auto& param_info) {
      const double rate = std::get<0>(param_info.param);
      const std::uint64_t seed = std::get<1>(param_info.param);
      return "R" + std::to_string(static_cast<int>(rate * 100)) + "Seed" +
             std::to_string(seed);
    });

INSTANTIATE_TEST_SUITE_P(Seeds, PaperTheorems,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u),
                         [](const auto& param_info) {
                           return "Seed" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace abg
