#include "exp/watchdog.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "util/cancel.hpp"

namespace abg::exp {
namespace {

using namespace std::chrono_literals;

/// Spins until `token` is cancelled or `budget` elapses; true on cancel.
bool wait_cancelled(const util::CancelToken& token,
                    std::chrono::milliseconds budget) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (token.cancelled()) {
      return true;
    }
    std::this_thread::sleep_for(1ms);
  }
  return token.cancelled();
}

TEST(Backoff, DoublesFromBaseAndCaps) {
  EXPECT_DOUBLE_EQ(backoff_seconds(0.1, 0), 0.1);
  EXPECT_DOUBLE_EQ(backoff_seconds(0.1, 1), 0.2);
  EXPECT_DOUBLE_EQ(backoff_seconds(0.1, 2), 0.4);
  EXPECT_DOUBLE_EQ(backoff_seconds(0.5, 3), 4.0);
  // The cap bounds the wait however deep the retry budget goes.
  EXPECT_DOUBLE_EQ(backoff_seconds(1.0, 20), 30.0);
  EXPECT_DOUBLE_EQ(backoff_seconds(1.0, 4, 10.0), 10.0);
}

TEST(Watchdog, CancelsOverdueTokenWithTimeout) {
  Watchdog watchdog({.run_timeout_seconds = 0.05});
  util::CancelToken token;
  const Watchdog::Lease lease = watchdog.watch(&token);
  ASSERT_TRUE(wait_cancelled(token, 2s));
  EXPECT_EQ(token.cause(), util::CancelCause::kTimeout);
}

TEST(Watchdog, ReleasedLeaseIsNeverCancelled) {
  Watchdog watchdog({.run_timeout_seconds = 0.02});
  util::CancelToken token;
  {
    Watchdog::Lease lease = watchdog.watch(&token);
    lease.release();
    lease.release();  // idempotent
  }
  std::this_thread::sleep_for(100ms);
  EXPECT_FALSE(token.cancelled());
}

TEST(Watchdog, DisabledDeadlineNeverFires) {
  Watchdog watchdog({.run_timeout_seconds = 0.0});
  util::CancelToken token;
  const Watchdog::Lease lease = watchdog.watch(&token);
  std::this_thread::sleep_for(80ms);
  EXPECT_FALSE(token.cancelled());
}

TEST(Watchdog, AbortTokenTearsDownEveryLeaseAsShutdown) {
  util::CancelToken abort;
  Watchdog watchdog({.run_timeout_seconds = 60.0, .abort = &abort});
  util::CancelToken first;
  util::CancelToken second;
  const Watchdog::Lease lease_a = watchdog.watch(&first);
  const Watchdog::Lease lease_b = watchdog.watch(&second);
  abort.cancel(util::CancelCause::kShutdown);
  ASSERT_TRUE(wait_cancelled(first, 2s));
  ASSERT_TRUE(wait_cancelled(second, 2s));
  EXPECT_EQ(first.cause(), util::CancelCause::kShutdown);
  EXPECT_EQ(second.cause(), util::CancelCause::kShutdown);
}

TEST(Watchdog, LeaseMoveTransfersOwnership) {
  Watchdog watchdog({.run_timeout_seconds = 0.02});
  util::CancelToken token;
  Watchdog::Lease outer;
  {
    Watchdog::Lease inner = watchdog.watch(&token);
    outer = std::move(inner);
  }  // inner's destruction must not deregister the moved-from lease
  ASSERT_TRUE(wait_cancelled(token, 2s));
  EXPECT_EQ(token.cause(), util::CancelCause::kTimeout);
}

TEST(CancelToken, FirstCauseWinsAndResetRearms) {
  util::CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.cause(), util::CancelCause::kNone);
  token.cancel(util::CancelCause::kTimeout);
  token.cancel(util::CancelCause::kShutdown);
  EXPECT_EQ(token.cause(), util::CancelCause::kTimeout);
  token.reset();
  EXPECT_FALSE(token.cancelled());
  token.cancel(util::CancelCause::kShutdown);
  EXPECT_EQ(token.cause(), util::CancelCause::kShutdown);
}

}  // namespace
}  // namespace abg::exp
