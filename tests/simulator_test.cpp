#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "alloc/equipartition.hpp"
#include "dag/profile_job.hpp"
#include "sched/a_control.hpp"
#include "sched/execution_policy.hpp"
#include "workload/profiles.hpp"

namespace abg::sim {
namespace {

JobSubmission submit(std::vector<dag::TaskCount> widths,
                     dag::Steps release = 0, std::string name = {}) {
  JobSubmission s;
  s.job = std::make_unique<dag::ProfileJob>(std::move(widths));
  s.release_step = release;
  s.name = std::move(name);
  return s;
}

SimConfig small_config() {
  return SimConfig{.processors = 16, .quantum_length = 10};
}

TEST(Simulator, SingleBatchedJobMatchesEngineSemantics) {
  std::vector<JobSubmission> subs;
  subs.push_back(submit(workload::constant_profile(4, 100)));
  sched::BGreedyExecution exec;
  sched::AControlRequest proto;
  alloc::EquiPartition deq;
  const SimResult result =
      simulate_job_set(std::move(subs), exec, proto, deq, small_config());
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_TRUE(result.jobs[0].finished());
  EXPECT_EQ(result.makespan, result.jobs[0].completion_step);
  EXPECT_DOUBLE_EQ(result.mean_response_time,
                   static_cast<double>(result.jobs[0].response_time()));
}

TEST(Simulator, AllJobsComplete) {
  std::vector<JobSubmission> subs;
  for (int j = 0; j < 5; ++j) {
    subs.push_back(submit(workload::constant_profile(2 + j, 50)));
  }
  sched::BGreedyExecution exec;
  sched::AControlRequest proto;
  alloc::EquiPartition deq;
  const SimResult result =
      simulate_job_set(std::move(subs), exec, proto, deq, small_config());
  for (const JobTrace& t : result.jobs) {
    EXPECT_TRUE(t.finished());
    EXPECT_GE(t.response_time(), t.critical_path);
  }
}

TEST(Simulator, MakespanIsMaxCompletion) {
  std::vector<JobSubmission> subs;
  subs.push_back(submit(workload::constant_profile(1, 30)));
  subs.push_back(submit(workload::constant_profile(1, 120)));
  sched::BGreedyExecution exec;
  sched::AControlRequest proto;
  alloc::EquiPartition deq;
  const SimResult result =
      simulate_job_set(std::move(subs), exec, proto, deq, small_config());
  dag::Steps max_completion = 0;
  for (const JobTrace& t : result.jobs) {
    max_completion = std::max(max_completion, t.completion_step);
  }
  EXPECT_EQ(result.makespan, max_completion);
}

TEST(Simulator, MachineNeverOversubscribedUnderDeq) {
  std::vector<JobSubmission> subs;
  for (int j = 0; j < 6; ++j) {
    subs.push_back(submit(workload::constant_profile(8, 60)));
  }
  sched::BGreedyExecution exec;
  sched::AControlRequest proto;
  alloc::EquiPartition deq;
  const SimConfig config = small_config();
  const SimResult result =
      simulate_job_set(std::move(subs), exec, proto, deq, config);
  // Reconstruct global per-quantum usage: jobs record their local quantum
  // index, but since all jobs are batched at 0 the local index equals the
  // global one while the job is alive.
  std::vector<int> usage;
  for (const JobTrace& t : result.jobs) {
    for (std::size_t q = 0; q < t.quanta.size(); ++q) {
      if (usage.size() <= q) {
        usage.resize(q + 1, 0);
      }
      usage[q] += t.quanta[q].allotment;
    }
  }
  for (const int u : usage) {
    EXPECT_LE(u, config.processors);
  }
}

TEST(Simulator, EveryActiveJobGetsAProcessorWhenJobsFewerThanP) {
  // The fairness prerequisite of Section 5.1: with |J| <= P under DEQ each
  // job receives at least one processor every quantum it is active.
  std::vector<JobSubmission> subs;
  for (int j = 0; j < 4; ++j) {
    subs.push_back(submit(workload::constant_profile(32, 40)));
  }
  sched::BGreedyExecution exec;
  sched::AControlRequest proto;
  alloc::EquiPartition deq;
  const SimResult result =
      simulate_job_set(std::move(subs), exec, proto, deq, small_config());
  for (const JobTrace& t : result.jobs) {
    for (const auto& q : t.quanta) {
      EXPECT_GE(q.allotment, 1);
    }
  }
}

TEST(Simulator, ReleaseTimesDelayActivation) {
  std::vector<JobSubmission> subs;
  subs.push_back(submit(workload::constant_profile(1, 20), 0));
  subs.push_back(submit(workload::constant_profile(1, 20), 35));
  sched::BGreedyExecution exec;
  sched::AControlRequest proto;
  alloc::EquiPartition deq;
  const SimResult result =
      simulate_job_set(std::move(subs), exec, proto, deq, small_config());
  // Job 1 released at step 35 activates at the next boundary (40) and so
  // completes at 60; response time 60 - 35 = 25.
  EXPECT_EQ(result.jobs[1].completion_step, 60);
  EXPECT_EQ(result.jobs[1].response_time(), 25);
  // Job 0 runs alone from step 0.
  EXPECT_EQ(result.jobs[0].completion_step, 20);
}

TEST(Simulator, IdleGapBeforeLateRelease) {
  // Only one job, released far in the future: the simulator skips idle
  // quanta rather than spinning.
  std::vector<JobSubmission> subs;
  subs.push_back(submit(workload::constant_profile(1, 10), 1000));
  sched::BGreedyExecution exec;
  sched::AControlRequest proto;
  alloc::EquiPartition deq;
  const SimResult result =
      simulate_job_set(std::move(subs), exec, proto, deq, small_config());
  EXPECT_EQ(result.jobs[0].completion_step, 1010);
  EXPECT_EQ(result.jobs[0].response_time(), 10);
}

TEST(Simulator, MeanResponseTimeIsAverage) {
  std::vector<JobSubmission> subs;
  subs.push_back(submit(workload::constant_profile(1, 30)));
  subs.push_back(submit(workload::constant_profile(1, 50)));
  sched::BGreedyExecution exec;
  sched::AControlRequest proto;
  alloc::EquiPartition deq;
  const SimResult result =
      simulate_job_set(std::move(subs), exec, proto, deq, small_config());
  const double expected =
      (static_cast<double>(result.jobs[0].response_time()) +
       static_cast<double>(result.jobs[1].response_time())) /
      2.0;
  EXPECT_DOUBLE_EQ(result.mean_response_time, expected);
}

TEST(Simulator, TotalWasteAggregates) {
  std::vector<JobSubmission> subs;
  subs.push_back(submit(workload::square_wave_profile(1, 20, 6, 20, 2)));
  subs.push_back(submit(workload::constant_profile(3, 60)));
  sched::BGreedyExecution exec;
  sched::AControlRequest proto;
  alloc::EquiPartition deq;
  const SimResult result =
      simulate_job_set(std::move(subs), exec, proto, deq, small_config());
  EXPECT_EQ(result.total_waste,
            result.jobs[0].total_waste() + result.jobs[1].total_waste());
  EXPECT_GE(result.total_waste, 0);
}

TEST(Simulator, ZeroWorkJobCompletesAtRelease) {
  std::vector<JobSubmission> subs;
  subs.push_back(submit({}, 0));
  subs.push_back(submit(workload::constant_profile(1, 10)));
  sched::BGreedyExecution exec;
  sched::AControlRequest proto;
  alloc::EquiPartition deq;
  const SimResult result =
      simulate_job_set(std::move(subs), exec, proto, deq, small_config());
  EXPECT_EQ(result.jobs[0].completion_step, 0);
  EXPECT_TRUE(result.jobs[0].quanta.empty());
}

TEST(Simulator, RejectsBadInputs) {
  sched::BGreedyExecution exec;
  sched::AControlRequest proto;
  alloc::EquiPartition deq;
  {
    std::vector<JobSubmission> subs;
    subs.push_back(JobSubmission{});  // null job
    EXPECT_THROW(
        simulate_job_set(std::move(subs), exec, proto, deq, small_config()),
        std::invalid_argument);
  }
  {
    std::vector<JobSubmission> subs;
    subs.push_back(submit({1}, -5));
    EXPECT_THROW(
        simulate_job_set(std::move(subs), exec, proto, deq, small_config()),
        std::invalid_argument);
  }
  {
    std::vector<JobSubmission> subs;
    subs.push_back(submit({1}));
    EXPECT_THROW(simulate_job_set(std::move(subs), exec, proto, deq,
                                  SimConfig{.processors = 0}),
                 std::invalid_argument);
  }
}

TEST(Simulator, EmptyJobSet) {
  sched::BGreedyExecution exec;
  sched::AControlRequest proto;
  alloc::EquiPartition deq;
  const SimResult result =
      simulate_job_set({}, exec, proto, deq, small_config());
  EXPECT_TRUE(result.jobs.empty());
  EXPECT_EQ(result.makespan, 0);
  EXPECT_DOUBLE_EQ(result.mean_response_time, 0.0);
}

TEST(Simulator, AdmissionCapLimitsConcurrency) {
  // 6 identical jobs, cap 2: at most two run per quantum; the rest queue.
  std::vector<JobSubmission> subs;
  for (int j = 0; j < 6; ++j) {
    subs.push_back(submit(workload::constant_profile(1, 20)));
  }
  sched::BGreedyExecution exec;
  sched::AControlRequest proto;
  alloc::EquiPartition deq;
  SimConfig config = small_config();
  config.max_active_jobs = 2;
  const SimResult result =
      simulate_job_set(std::move(subs), exec, proto, deq, config);
  // Reconstruct concurrent activity per global quantum slot.
  std::map<dag::Steps, int> active;
  for (const JobTrace& t : result.jobs) {
    for (const auto& q : t.quanta) {
      ++active[q.start_step];
    }
  }
  for (const auto& [start, count] : active) {
    EXPECT_LE(count, 2) << "slot " << start;
  }
  for (const JobTrace& t : result.jobs) {
    EXPECT_TRUE(t.finished());
  }
  // Serial 20-step jobs, two at a time: the last pair completes at 60.
  EXPECT_EQ(result.makespan, 60);
}

TEST(Simulator, AdmissionIsFcfsByRelease) {
  std::vector<JobSubmission> subs;
  // Submission order deliberately reversed from release order.
  subs.push_back(submit(workload::constant_profile(1, 20), 40, "late"));
  subs.push_back(submit(workload::constant_profile(1, 20), 0, "early"));
  subs.push_back(submit(workload::constant_profile(1, 20), 20, "middle"));
  sched::BGreedyExecution exec;
  sched::AControlRequest proto;
  alloc::EquiPartition deq;
  SimConfig config = small_config();
  config.max_active_jobs = 1;
  const SimResult result =
      simulate_job_set(std::move(subs), exec, proto, deq, config);
  // One at a time, FCFS by release: early (0-20), middle (20-40),
  // late (40-60).
  EXPECT_EQ(result.jobs[1].completion_step, 20);
  EXPECT_EQ(result.jobs[2].completion_step, 40);
  EXPECT_EQ(result.jobs[0].completion_step, 60);
}

TEST(Simulator, DefaultCapIsMachineSize) {
  // 5 jobs on a 3-processor machine: the default cap (P) keeps at most 3
  // concurrent so each running job can hold a processor.
  std::vector<JobSubmission> subs;
  for (int j = 0; j < 5; ++j) {
    subs.push_back(submit(workload::constant_profile(2, 30)));
  }
  sched::BGreedyExecution exec;
  sched::AControlRequest proto;
  alloc::EquiPartition deq;
  const SimConfig config{.processors = 3, .quantum_length = 10};
  const SimResult result =
      simulate_job_set(std::move(subs), exec, proto, deq, config);
  std::map<dag::Steps, int> active;
  for (const JobTrace& t : result.jobs) {
    EXPECT_TRUE(t.finished());
    for (const auto& q : t.quanta) {
      ++active[q.start_step];
      EXPECT_GE(q.allotment, 1);
    }
  }
  for (const auto& [start, count] : active) {
    EXPECT_LE(count, 3);
  }
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto build = [] {
    std::vector<JobSubmission> subs;
    subs.push_back(submit(workload::square_wave_profile(1, 15, 9, 15, 2)));
    subs.push_back(submit(workload::constant_profile(5, 70), 12));
    return subs;
  };
  sched::BGreedyExecution exec;
  sched::AControlRequest proto;
  alloc::EquiPartition deq1;
  alloc::EquiPartition deq2;
  const SimResult r1 =
      simulate_job_set(build(), exec, proto, deq1, small_config());
  const SimResult r2 =
      simulate_job_set(build(), exec, proto, deq2, small_config());
  EXPECT_EQ(r1.makespan, r2.makespan);
  EXPECT_DOUBLE_EQ(r1.mean_response_time, r2.mean_response_time);
  EXPECT_EQ(r1.total_waste, r2.total_waste);
}

}  // namespace
}  // namespace abg::sim
