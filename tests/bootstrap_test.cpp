#include "util/bootstrap.hpp"

#include <gtest/gtest.h>

namespace abg::util {
namespace {

TEST(Bootstrap, Validation) {
  EXPECT_THROW(bootstrap_mean({}, 1), std::invalid_argument);
  EXPECT_THROW(bootstrap_mean({1.0}, 1, 0), std::invalid_argument);
  EXPECT_THROW(bootstrap_mean({1.0}, 1, 100, 0.0), std::invalid_argument);
  EXPECT_THROW(bootstrap_mean({1.0}, 1, 100, 1.0), std::invalid_argument);
}

TEST(Bootstrap, SingleSampleDegenerate) {
  const ConfidenceInterval ci = bootstrap_mean({3.5}, 1);
  EXPECT_DOUBLE_EQ(ci.point, 3.5);
  EXPECT_DOUBLE_EQ(ci.lower, 3.5);
  EXPECT_DOUBLE_EQ(ci.upper, 3.5);
}

TEST(Bootstrap, PointIsSampleMean) {
  const ConfidenceInterval ci = bootstrap_mean({1.0, 2.0, 3.0}, 7);
  EXPECT_DOUBLE_EQ(ci.point, 2.0);
}

TEST(Bootstrap, IntervalBracketsPoint) {
  std::vector<double> samples;
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    samples.push_back(rng.uniform_real(5.0, 15.0));
  }
  const ConfidenceInterval ci = bootstrap_mean(samples, 3);
  EXPECT_LE(ci.lower, ci.point);
  EXPECT_GE(ci.upper, ci.point);
  // 95% interval for 100 uniform(5,15) samples: roughly +/- 0.6.
  EXPECT_GT(ci.upper - ci.lower, 0.1);
  EXPECT_LT(ci.upper - ci.lower, 3.0);
}

TEST(Bootstrap, ConstantSamplesGiveZeroWidth) {
  const ConfidenceInterval ci = bootstrap_mean({4.0, 4.0, 4.0, 4.0}, 5);
  EXPECT_DOUBLE_EQ(ci.lower, 4.0);
  EXPECT_DOUBLE_EQ(ci.upper, 4.0);
}

TEST(Bootstrap, Deterministic) {
  const std::vector<double> samples{1.0, 5.0, 2.0, 8.0, 3.0};
  const ConfidenceInterval a = bootstrap_mean(samples, 42);
  const ConfidenceInterval b = bootstrap_mean(samples, 42);
  EXPECT_DOUBLE_EQ(a.lower, b.lower);
  EXPECT_DOUBLE_EQ(a.upper, b.upper);
}

TEST(Bootstrap, WiderConfidenceWiderInterval) {
  std::vector<double> samples;
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    samples.push_back(rng.uniform_real(0.0, 10.0));
  }
  const ConfidenceInterval narrow = bootstrap_mean(samples, 1, 2000, 0.5);
  const ConfidenceInterval wide = bootstrap_mean(samples, 1, 2000, 0.99);
  EXPECT_LT(narrow.upper - narrow.lower, wide.upper - wide.lower);
}

}  // namespace
}  // namespace abg::util
