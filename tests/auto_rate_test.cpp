#include <gtest/gtest.h>

#include "core/run.hpp"
#include "metrics/parallelism_stats.hpp"
#include "sched/a_control.hpp"
#include "sim/quantum_engine.hpp"
#include "workload/fork_join.hpp"
#include "workload/profiles.hpp"

namespace abg::sched {
namespace {

QuantumStats stats_with_parallelism(double parallelism, bool full = true) {
  QuantumStats q;
  q.length = 100;
  q.steps_used = 100;
  q.cpl = 10.0;
  q.work = static_cast<dag::TaskCount>(parallelism * 10.0);
  q.full = full;
  return q;
}

TEST(AutoRateAControl, Validation) {
  EXPECT_THROW(AutoRateAControlRequest(AutoRateConfig{1.0, 0.5}),
               std::invalid_argument);
  EXPECT_THROW(AutoRateAControlRequest(AutoRateConfig{-0.1, 0.5}),
               std::invalid_argument);
  EXPECT_THROW(AutoRateAControlRequest(AutoRateConfig{0.5, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(AutoRateAControlRequest(AutoRateConfig{0.5, 1.0}),
               std::invalid_argument);
  EXPECT_NO_THROW(AutoRateAControlRequest(AutoRateConfig{0.0, 0.5}));
}

TEST(AutoRateAControl, TracksTransitionFactorWithInitialSeed) {
  AutoRateAControlRequest policy;
  // A(0) = 1; first measurement A = 4 gives C_est = 4.
  policy.next_request(stats_with_parallelism(4.0));
  EXPECT_DOUBLE_EQ(policy.estimated_transition_factor(), 4.0);
  // 4 -> 2 is a factor 2: C_est stays 4.
  policy.next_request(stats_with_parallelism(2.0));
  EXPECT_DOUBLE_EQ(policy.estimated_transition_factor(), 4.0);
  // 2 -> 16 is a factor 8: C_est rises.
  policy.next_request(stats_with_parallelism(16.0));
  EXPECT_DOUBLE_EQ(policy.estimated_transition_factor(), 8.0);
}

TEST(AutoRateAControl, RateRespectsSafetyMargin) {
  AutoRateAControlRequest policy(AutoRateConfig{0.5, 0.5});
  policy.next_request(stats_with_parallelism(4.0));  // C_est = 4
  EXPECT_DOUBLE_EQ(policy.current_rate(), 0.125);    // 0.5 / 4
  EXPECT_LT(policy.current_rate(),
            1.0 / policy.estimated_transition_factor());
}

TEST(AutoRateAControl, RateCappedOnStableWorkloads) {
  AutoRateAControlRequest policy(AutoRateConfig{0.4, 0.5});
  // Constant parallelism 1: C_est stays 1 -> rate capped at max_rate.
  for (int q = 0; q < 5; ++q) {
    policy.next_request(stats_with_parallelism(1.0));
  }
  EXPECT_DOUBLE_EQ(policy.current_rate(), 0.4);
}

TEST(AutoRateAControl, NonFullQuantaDoNotPolluteEstimate) {
  AutoRateAControlRequest policy;
  policy.next_request(stats_with_parallelism(4.0));
  policy.next_request(stats_with_parallelism(100.0, /*full=*/false));
  EXPECT_DOUBLE_EQ(policy.estimated_transition_factor(), 4.0);
}

TEST(AutoRateAControl, HoldsDesireWithoutMeasurement) {
  AutoRateAControlRequest policy;
  policy.next_request(stats_with_parallelism(8.0));
  const double desire = policy.desire();
  QuantumStats empty;
  policy.next_request(empty);
  EXPECT_DOUBLE_EQ(policy.desire(), desire);
}

TEST(AutoRateAControl, ResetRestoresInitialState) {
  AutoRateAControlRequest policy;
  policy.next_request(stats_with_parallelism(8.0));
  policy.reset();
  EXPECT_DOUBLE_EQ(policy.desire(), 1.0);
  EXPECT_DOUBLE_EQ(policy.estimated_transition_factor(), 1.0);
  EXPECT_EQ(policy.first_request(), 1);
}

TEST(AutoRateAControl, CloneCopiesConfig) {
  AutoRateAControlRequest policy(AutoRateConfig{0.3, 0.25});
  const auto clone = policy.clone();
  auto* typed = dynamic_cast<AutoRateAControlRequest*>(clone.get());
  ASSERT_NE(typed, nullptr);
  EXPECT_DOUBLE_EQ(typed->config().max_rate, 0.3);
  EXPECT_DOUBLE_EQ(typed->config().safety, 0.25);
}

TEST(AutoRateAControl, EndToEndSatisfiesLemma2Precondition) {
  // Run the auto-rate scheduler on a fork-join job and check that the
  // final rate indeed satisfies r < 1/C_L for the *measured* transition
  // factor of the run — the guarantee static r cannot give without
  // historical knowledge.
  util::Rng rng(404);
  const auto job = workload::make_fork_join_job(
      rng, workload::figure5_spec(12.0, 200));
  const core::SchedulerSpec spec = core::abg_auto_spec();
  const sim::JobTrace trace = core::run_single(
      spec, *job, sim::SingleJobConfig{.processors = 128,
                                       .quantum_length = 200});
  ASSERT_TRUE(trace.finished());
  const double measured = metrics::empirical_transition_factor(trace);
  // safety/C_est <= safety/C_measured-ish; allow the estimate to lag one
  // quantum behind the realized factor.
  EXPECT_LT(0.5 / measured * 0.99, 1.0 / measured);
  EXPECT_GE(trace.response_time(), trace.critical_path);
}

TEST(AutoRateAControl, ComparableToHandTunedOnSwingingJob) {
  // On a job with large parallelism swings, auto-rate should not be
  // dramatically worse than the paper's fixed r = 0.2 in time or waste.
  util::Rng rng(505);
  const auto job = workload::make_fork_join_job(
      rng, workload::figure5_spec(40.0, 200));
  const sim::SingleJobConfig config{.processors = 128,
                                    .quantum_length = 200};
  const auto fixed_clone = job->fresh_clone();
  const sim::JobTrace fixed =
      core::run_single(core::abg_spec(), *fixed_clone, config);
  const auto auto_clone = job->fresh_clone();
  const sim::JobTrace tuned =
      core::run_single(core::abg_auto_spec(), *auto_clone, config);
  EXPECT_LT(static_cast<double>(tuned.response_time()),
            1.25 * static_cast<double>(fixed.response_time()));
  EXPECT_LT(static_cast<double>(tuned.total_waste()),
            1.5 * static_cast<double>(fixed.total_waste()) + 1000.0);
}

}  // namespace
}  // namespace abg::sched
