// Unit tests for the hierarchical allocation tree: desire roll-up, the
// root split (sums to exactly P, rotating surplus spread), rebalance
// accounting, and clone() state preservation — the contract the sharded
// engine's determinism rests on.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <stdexcept>

#include "alloc/equipartition.hpp"
#include "alloc/round_robin.hpp"
#include "hier/desire_aggregator.hpp"
#include "hier/hierarchical_allocator.hpp"
#include "util/rng.hpp"

namespace abg::hier {
namespace {

int sum(const std::vector<int>& v) {
  return std::accumulate(v.begin(), v.end(), 0);
}

std::unique_ptr<alloc::Allocator> deq() {
  return std::make_unique<alloc::EquiPartition>();
}

TEST(GroupOf, DealsRoundRobin) {
  EXPECT_EQ(group_of(0, 4), 0u);
  EXPECT_EQ(group_of(1, 4), 1u);
  EXPECT_EQ(group_of(4, 4), 0u);
  EXPECT_EQ(group_of(7, 4), 3u);
  // One group absorbs everything: the flat special case.
  for (std::size_t job = 0; job < 10; ++job) {
    EXPECT_EQ(group_of(job, 1), 0u);
  }
}

TEST(DesireAggregator, RejectsBadConstruction) {
  EXPECT_THROW(DesireAggregator(0, deq()), std::invalid_argument);
  EXPECT_THROW(DesireAggregator(-3, deq()), std::invalid_argument);
  EXPECT_THROW(DesireAggregator(2, nullptr), std::invalid_argument);
}

TEST(DesireAggregator, RollUpSumsPerGroup) {
  DesireAggregator agg(3, deq());
  // Jobs 0..6 dealt to groups 0,1,2,0,1,2,0.
  const std::vector<int> desires = agg.roll_up({1, 2, 3, 4, 5, 6, 7});
  ASSERT_EQ(desires.size(), 3u);
  EXPECT_EQ(desires[0], 1 + 4 + 7);
  EXPECT_EQ(desires[1], 2 + 5);
  EXPECT_EQ(desires[2], 3 + 6);
}

TEST(DesireAggregator, RollUpOfShortVectorLeavesEmptyGroupsAtZero) {
  DesireAggregator agg(4, deq());
  const std::vector<int> desires = agg.roll_up({9, 8});
  ASSERT_EQ(desires.size(), 4u);
  EXPECT_EQ(desires[0], 9);
  EXPECT_EQ(desires[1], 8);
  EXPECT_EQ(desires[2], 0);
  EXPECT_EQ(desires[3], 0);
  EXPECT_EQ(sum(agg.roll_up({})), 0);
}

TEST(DesireAggregator, RollUpRejectsNegativeRequests) {
  DesireAggregator agg(2, deq());
  EXPECT_THROW(agg.roll_up({3, -1}), std::invalid_argument);
}

TEST(DesireAggregator, SplitBudgetsSumToExactlyTheMachine) {
  // The budgets must always exhaust the machine — surplus processors are
  // spread over the groups — on saturated, undersubscribed and idle
  // desire vectors alike.
  util::Rng rng(2024);
  for (int groups : {1, 3, 8}) {
    DesireAggregator agg(groups, deq());
    for (int trial = 0; trial < 100; ++trial) {
      std::vector<int> desires(static_cast<std::size_t>(groups));
      for (int& d : desires) {
        d = static_cast<int>(rng.uniform_int(0, 60));
      }
      const int machine = static_cast<int>(rng.uniform_int(0, 48));
      const std::vector<int> budgets = agg.split(desires, machine);
      ASSERT_EQ(budgets.size(), desires.size());
      EXPECT_EQ(sum(budgets), machine) << groups << " groups, trial "
                                       << trial;
      for (int b : budgets) {
        EXPECT_GE(b, 0);
      }
    }
  }
}

TEST(DesireAggregator, OneGroupBudgetIsTheWholeMachine) {
  // The flat-equivalence contract: with one group the budget is P no
  // matter the desire, so the group allocator sees the full machine.
  DesireAggregator agg(1, deq());
  EXPECT_EQ(agg.split({5}, 32), std::vector<int>{32});
  EXPECT_EQ(agg.split({0}, 32), std::vector<int>{32});
  EXPECT_EQ(agg.split({1000}, 32), std::vector<int>{32});
}

TEST(DesireAggregator, SaturatedSplitIsConservative) {
  // When demand covers the machine there is no surplus, so the root's
  // water-fill bound budget_g <= desire_g survives the spread.
  DesireAggregator agg(4, deq());
  const std::vector<int> desires = {10, 20, 30, 40};
  const std::vector<int> budgets = agg.split(desires, 32);
  EXPECT_EQ(sum(budgets), 32);
  for (std::size_t g = 0; g < budgets.size(); ++g) {
    EXPECT_LE(budgets[g], desires[g]) << "group " << g;
  }
}

TEST(DesireAggregator, SurplusSpreadRotates) {
  // 3 groups, desires met, surplus 2: the two extra processors land on a
  // rotating pair of groups so repeated splits don't pin the same groups.
  DesireAggregator agg(3, deq());
  const std::vector<int> desires = {2, 2, 2};
  const std::vector<int> first = agg.split(desires, 8);
  const std::vector<int> second = agg.split(desires, 8);
  EXPECT_EQ(sum(first), 8);
  EXPECT_EQ(sum(second), 8);
  EXPECT_NE(first, second) << "surplus landed on the same groups twice";
}

TEST(DesireAggregator, CountsRebalancesAndResets) {
  DesireAggregator agg(2, deq());
  EXPECT_EQ(agg.rebalances(), 0);
  agg.split({1, 2}, 8);
  agg.split({1, 2}, 8);
  EXPECT_EQ(agg.rebalances(), 2);
  agg.reset();
  EXPECT_EQ(agg.rebalances(), 0);
  // Reset also rewinds the surplus rotation: the post-reset sequence
  // replays the from-scratch sequence.
  DesireAggregator fresh(2, deq());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(agg.split({1, 1}, 9), fresh.split({1, 1}, 9)) << "split " << i;
  }
}

TEST(DesireAggregator, ClonePreservesRotationState) {
  DesireAggregator agg(3, deq());
  agg.split({2, 2, 2}, 10);
  agg.split({2, 2, 2}, 10);
  const auto copy = agg.clone();
  EXPECT_EQ(copy->groups(), agg.groups());
  EXPECT_EQ(copy->rebalances(), agg.rebalances());
  // The clone continues the exact allocation sequence.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(copy->split({2, 2, 2}, 10), agg.split({2, 2, 2}, 10))
        << "diverged " << i << " splits after clone";
  }
}

TEST(MakeGroupAllocator, KnownNamesAndRejection) {
  EXPECT_EQ(make_group_allocator("deq")->name(), "equi-partition");
  EXPECT_EQ(make_group_allocator("rr")->name(), "round-robin");
  EXPECT_THROW(make_group_allocator("greedy"), std::invalid_argument);
  EXPECT_THROW(make_group_allocator(""), std::invalid_argument);
}

TEST(HierarchicalAllocator, NameEncodesShape) {
  const alloc::EquiPartition proto;
  EXPECT_EQ(HierarchicalAllocator(4, proto).name(),
            "hier-4-equi-partition");
  EXPECT_EQ(HierarchicalAllocator(1, alloc::RoundRobin()).name(),
            "hier-1-round-robin");
  EXPECT_THROW(HierarchicalAllocator(0, proto), std::invalid_argument);
}

TEST(HierarchicalAllocator, OneGroupMatchesInnerAllocatorExactly) {
  // Stateful equivalence: the same random request stream through the
  // 1-group tree and through a bare allocator, including the rotation
  // state both carry across calls.
  for (const bool use_rr : {false, true}) {
    std::unique_ptr<alloc::Allocator> flat =
        use_rr ? std::unique_ptr<alloc::Allocator>(
                     std::make_unique<alloc::RoundRobin>())
               : std::make_unique<alloc::EquiPartition>();
    HierarchicalAllocator tree(1, *flat);
    util::Rng rng(77);
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<int> requests;
      const auto jobs = rng.uniform_int(1, 12);
      for (int j = 0; j < jobs; ++j) {
        requests.push_back(static_cast<int>(rng.uniform_int(0, 40)));
      }
      const int machine = static_cast<int>(rng.uniform_int(1, 32));
      EXPECT_EQ(tree.allocate(requests, machine),
                flat->allocate(requests, machine))
          << (use_rr ? "rr" : "deq") << " diverged at trial " << trial;
    }
  }
}

TEST(HierarchicalAllocator, ScatterRestoresSubmissionOrder) {
  // 2 groups: jobs 0,2 are group 0 and jobs 1,3 group 1.  Give group 0
  // plenty and group 1 nothing to ask for, then check each flat slot got
  // its own group's grant.
  const alloc::EquiPartition proto;
  HierarchicalAllocator tree(2, proto);
  const std::vector<int> requests = {5, 0, 7, 0};
  const std::vector<int> a = tree.allocate(requests, 12);
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a[0], 5);
  EXPECT_EQ(a[1], 0);
  EXPECT_EQ(a[2], 7);
  EXPECT_EQ(a[3], 0);
  ASSERT_EQ(tree.last_budgets().size(), 2u);
  EXPECT_EQ(sum(tree.last_budgets()), 12);
}

TEST(HierarchicalAllocator, MoreGroupsThanJobsIsHarmless) {
  const alloc::EquiPartition proto;
  HierarchicalAllocator tree(8, proto);
  const std::vector<int> a = tree.allocate({3, 4}, 16);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0], 3);
  EXPECT_EQ(a[1], 4);
}

TEST(HierarchicalAllocator, CountsRebalances) {
  const alloc::EquiPartition proto;
  HierarchicalAllocator tree(4, proto);
  tree.allocate({1, 1, 1, 1}, 8);
  tree.allocate({1, 1, 1, 1}, 8);
  EXPECT_EQ(tree.rebalances(), 2);
  tree.reset();
  EXPECT_EQ(tree.rebalances(), 0);
}

TEST(HierarchicalAllocator, ClonePreservesTreeState) {
  const alloc::RoundRobin proto;  // rotation-heavy: divergence shows fast
  HierarchicalAllocator tree(3, proto);
  util::Rng rng(13);
  std::vector<int> requests(9, 4);
  for (int warm = 0; warm < 5; ++warm) {
    tree.allocate(requests, 7);
  }
  const auto copy = tree.clone();
  EXPECT_EQ(copy->name(), tree.name());
  for (int trial = 0; trial < 20; ++trial) {
    for (int& r : requests) {
      r = static_cast<int>(rng.uniform_int(0, 6));
    }
    const int machine = static_cast<int>(rng.uniform_int(1, 12));
    EXPECT_EQ(copy->allocate(requests, machine),
              tree.allocate(requests, machine))
        << "clone diverged at trial " << trial;
  }
}

}  // namespace
}  // namespace abg::hier
