#include "sim/quantum_engine.hpp"

#include <gtest/gtest.h>

#include "alloc/availability_profile.hpp"
#include "alloc/unconstrained.hpp"
#include "dag/profile_job.hpp"
#include "sched/a_control.hpp"
#include "sched/execution_policy.hpp"
#include "sched/request_policy.hpp"
#include "workload/profiles.hpp"

namespace abg::sim {
namespace {

SingleJobConfig small_config() {
  return SingleJobConfig{.processors = 16, .quantum_length = 10};
}

TEST(QuantumEngine, RunsJobToCompletion) {
  dag::ProfileJob job(workload::constant_profile(4, 100));
  sched::BGreedyExecution exec;
  sched::AControlRequest request;
  alloc::Unconstrained allocator;
  const JobTrace trace =
      run_single_job(job, exec, request, allocator, small_config());
  EXPECT_TRUE(trace.finished());
  EXPECT_TRUE(job.finished());
  EXPECT_EQ(trace.work, 400);
  EXPECT_EQ(trace.critical_path, 100);
}

TEST(QuantumEngine, FirstQuantumRequestsOne) {
  dag::ProfileJob job(workload::constant_profile(4, 100));
  sched::BGreedyExecution exec;
  sched::AControlRequest request;
  alloc::Unconstrained allocator;
  const JobTrace trace =
      run_single_job(job, exec, request, allocator, small_config());
  ASSERT_FALSE(trace.quanta.empty());
  EXPECT_EQ(trace.quanta.front().request, 1);
  EXPECT_EQ(trace.quanta.front().allotment, 1);
  EXPECT_EQ(trace.quanta.front().index, 1);
}

TEST(QuantumEngine, QuantumIndicesAreSequential) {
  dag::ProfileJob job(workload::constant_profile(4, 100));
  sched::BGreedyExecution exec;
  sched::AControlRequest request;
  alloc::Unconstrained allocator;
  const JobTrace trace =
      run_single_job(job, exec, request, allocator, small_config());
  for (std::size_t i = 0; i < trace.quanta.size(); ++i) {
    EXPECT_EQ(trace.quanta[i].index, static_cast<std::int64_t>(i + 1));
  }
}

TEST(QuantumEngine, CompletionStepIsExact) {
  // 25 serial tasks with L = 10: finishes mid-third-quantum at step 25.
  dag::ProfileJob job(workload::constant_profile(1, 25));
  sched::BGreedyExecution exec;
  sched::AControlRequest request;
  alloc::Unconstrained allocator;
  const JobTrace trace =
      run_single_job(job, exec, request, allocator, small_config());
  EXPECT_EQ(trace.completion_step, 25);
  EXPECT_EQ(trace.response_time(), 25);
  EXPECT_EQ(trace.quanta.size(), 3u);
  EXPECT_TRUE(trace.quanta.back().finished);
  EXPECT_EQ(trace.quanta.back().steps_used, 5);
}

TEST(QuantumEngine, WorkConservation) {
  dag::ProfileJob job(workload::square_wave_profile(1, 20, 8, 20, 3));
  sched::BGreedyExecution exec;
  sched::AControlRequest request;
  alloc::Unconstrained allocator;
  const JobTrace trace =
      run_single_job(job, exec, request, allocator, small_config());
  dag::TaskCount total = 0;
  double cpl = 0.0;
  for (const auto& q : trace.quanta) {
    total += q.work;
    cpl += q.cpl;
  }
  EXPECT_EQ(total, trace.work);
  EXPECT_NEAR(cpl, static_cast<double>(trace.critical_path), 1e-9);
}

TEST(QuantumEngine, AllotmentNeverExceedsRequest) {
  dag::ProfileJob job(workload::square_wave_profile(1, 30, 12, 30, 2));
  sched::BGreedyExecution exec;
  sched::AControlRequest request;
  alloc::Unconstrained allocator;
  const JobTrace trace =
      run_single_job(job, exec, request, allocator, small_config());
  for (const auto& q : trace.quanta) {
    EXPECT_LE(q.allotment, q.request);
    EXPECT_LE(q.allotment, 16);
  }
}

TEST(QuantumEngine, AvailabilityRecordedFromProfile) {
  dag::ProfileJob job(workload::constant_profile(4, 60));
  sched::BGreedyExecution exec;
  sched::AControlRequest request;
  alloc::AvailabilityProfile allocator({1, 2, 3, 4, 5, 6, 7, 8});
  const JobTrace trace = run_single_job(job, exec, request, allocator,
                                        small_config());
  for (std::size_t i = 0; i < trace.quanta.size(); ++i) {
    EXPECT_EQ(trace.quanta[i].available,
              allocator.availability_at(i + 1));
  }
}

TEST(QuantumEngine, ZeroWorkJobFinishesImmediately) {
  dag::ProfileJob job({});
  sched::BGreedyExecution exec;
  sched::AControlRequest request;
  alloc::Unconstrained allocator;
  const JobTrace trace =
      run_single_job(job, exec, request, allocator, small_config());
  EXPECT_TRUE(trace.finished());
  EXPECT_EQ(trace.completion_step, 0);
  EXPECT_TRUE(trace.quanta.empty());
}

TEST(QuantumEngine, ThrowsWhenStarvedForever) {
  dag::ProfileJob job(workload::constant_profile(2, 50));
  sched::BGreedyExecution exec;
  sched::AControlRequest request;
  alloc::AvailabilityProfile allocator({0});  // never grants anything
  SingleJobConfig config = small_config();
  config.max_steps = 500;
  EXPECT_THROW(run_single_job(job, exec, request, allocator, config),
               std::runtime_error);
}

TEST(QuantumEngine, RejectsBadConfig) {
  dag::ProfileJob job({1});
  sched::BGreedyExecution exec;
  sched::AControlRequest request;
  alloc::Unconstrained allocator;
  EXPECT_THROW(
      run_single_job(job, exec, request, allocator,
                     SingleJobConfig{.processors = 0, .quantum_length = 10}),
      std::invalid_argument);
  EXPECT_THROW(
      run_single_job(job, exec, request, allocator,
                     SingleJobConfig{.processors = 4, .quantum_length = 0}),
      std::invalid_argument);
}

TEST(QuantumEngine, RequestPolicyIsResetBeforeRun) {
  // Run twice with the same request policy object: both runs must start
  // from d(1) = 1.
  sched::BGreedyExecution exec;
  sched::AControlRequest request;
  alloc::Unconstrained allocator;
  dag::ProfileJob job1(workload::constant_profile(8, 100));
  const JobTrace t1 =
      run_single_job(job1, exec, request, allocator, small_config());
  dag::ProfileJob job2(workload::constant_profile(8, 100));
  const JobTrace t2 =
      run_single_job(job2, exec, request, allocator, small_config());
  EXPECT_EQ(t1.quanta.front().request, 1);
  EXPECT_EQ(t2.quanta.front().request, 1);
  EXPECT_EQ(t1.quanta.size(), t2.quanta.size());
}

TEST(QuantumEngine, AdaptiveRequestTracksParallelismSwitch) {
  // Parallelism steps from 2 to 12; the A-Control request follows it.
  dag::ProfileJob job(workload::step_profile(2, 200, 12, 400));
  sched::BGreedyExecution exec;
  sched::AControlRequest request(sched::AControlConfig{0.0});  // one-step
  alloc::Unconstrained allocator;
  const JobTrace trace = run_single_job(job, exec, request, allocator,
                                        SingleJobConfig{.processors = 32,
                                                        .quantum_length = 50});
  ASSERT_TRUE(trace.finished());
  // Early full quanta measure A = 2; after the switch they measure 12; the
  // requests one quantum later match.
  const auto& quanta = trace.quanta;
  bool saw_low = false;
  bool saw_high = false;
  for (std::size_t i = 1; i < quanta.size(); ++i) {
    if (quanta[i - 1].full && quanta[i - 1].average_parallelism() > 0) {
      const double measured = quanta[i - 1].average_parallelism();
      EXPECT_EQ(quanta[i].request,
                static_cast<int>(std::llround(measured)));
      saw_low = saw_low || measured < 3.0;
      saw_high = saw_high || measured > 10.0;
    }
  }
  EXPECT_TRUE(saw_low);
  EXPECT_TRUE(saw_high);
}

}  // namespace
}  // namespace abg::sim
