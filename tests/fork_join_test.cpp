#include "workload/fork_join.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/run.hpp"
#include "metrics/parallelism_stats.hpp"
#include "sim/quantum_engine.hpp"

namespace abg::workload {
namespace {

TEST(ForkJoinWidths, AlternatesSerialAndParallel) {
  util::Rng rng(11);
  ForkJoinSpec spec;
  spec.transition_factor = 8.0;
  spec.phase_pairs = 3;
  spec.min_phase_levels = 2;
  spec.max_phase_levels = 5;
  const auto widths = fork_join_widths(rng, spec);
  // Only widths 1 and 8 appear, and both do.
  bool saw_serial = false;
  bool saw_parallel = false;
  for (const auto w : widths) {
    EXPECT_TRUE(w == 1 || w == 8) << "unexpected width " << w;
    saw_serial = saw_serial || w == 1;
    saw_parallel = saw_parallel || w == 8;
  }
  EXPECT_TRUE(saw_serial);
  EXPECT_TRUE(saw_parallel);
}

TEST(ForkJoinWidths, PhaseLengthsWithinRange) {
  util::Rng rng(13);
  ForkJoinSpec spec;
  spec.transition_factor = 4.0;
  spec.phase_pairs = 5;
  spec.min_phase_levels = 3;
  spec.max_phase_levels = 7;
  const auto widths = fork_join_widths(rng, spec);
  // Run-length encode and check each phase length.
  std::size_t i = 0;
  int phases = 0;
  while (i < widths.size()) {
    std::size_t j = i;
    while (j < widths.size() && widths[j] == widths[i]) {
      ++j;
    }
    const auto run = static_cast<dag::Steps>(j - i);
    EXPECT_GE(run, 3);
    // Adjacent same-width phases can merge in the encoding (serial phases
    // are all width 1 and never adjacent, but two parallel phases are
    // separated by a serial phase, so runs are at most one phase).
    EXPECT_LE(run, 7);
    ++phases;
    i = j;
  }
  EXPECT_EQ(phases, 10);  // 5 pairs = 10 phases
}

TEST(ForkJoinPhases, WidthsMatchPhaseExpansion) {
  ForkJoinSpec spec;
  spec.transition_factor = 5.0;
  spec.phase_pairs = 3;
  spec.min_phase_levels = 2;
  spec.max_phase_levels = 9;
  util::Rng a(31);
  util::Rng b(31);
  const auto phases = fork_join_phases(a, spec);
  const auto widths = fork_join_widths(b, spec);
  EXPECT_EQ(dag::builders::profile_from_phases(phases), widths);
  ASSERT_EQ(phases.size(), 6u);
  for (std::size_t i = 0; i < phases.size(); ++i) {
    EXPECT_EQ(phases[i].width, i % 2 == 0 ? 1 : 5);
    EXPECT_GE(phases[i].length, 2);
    EXPECT_LE(phases[i].length, 9);
  }
}

TEST(ForkJoinPhases, DagAndProfileShareCharacteristics) {
  ForkJoinSpec spec;
  spec.transition_factor = 4.0;
  spec.phase_pairs = 2;
  spec.min_phase_levels = 3;
  spec.max_phase_levels = 8;
  util::Rng rng(77);
  const auto phases = fork_join_phases(rng, spec);
  dag::DagJob dag_job{dag::builders::fork_join(phases)};
  dag::ProfileJob profile_job{dag::builders::profile_from_phases(phases)};
  EXPECT_EQ(dag_job.total_work(), profile_job.total_work());
  EXPECT_EQ(dag_job.critical_path(), profile_job.critical_path());
}

TEST(ForkJoinWidths, Deterministic) {
  ForkJoinSpec spec = figure5_spec(10.0, 100);
  util::Rng a(5);
  util::Rng b(5);
  EXPECT_EQ(fork_join_widths(a, spec), fork_join_widths(b, spec));
}

TEST(ForkJoinWidths, Validation) {
  util::Rng rng(1);
  ForkJoinSpec spec;
  spec.transition_factor = 0.5;
  EXPECT_THROW(fork_join_widths(rng, spec), std::invalid_argument);
  spec = ForkJoinSpec{};
  spec.phase_pairs = 0;
  EXPECT_THROW(fork_join_widths(rng, spec), std::invalid_argument);
  spec = ForkJoinSpec{};
  spec.min_phase_levels = 10;
  spec.max_phase_levels = 5;
  EXPECT_THROW(fork_join_widths(rng, spec), std::invalid_argument);
}

TEST(MakeForkJoinJob, JobCharacteristics) {
  util::Rng rng(17);
  ForkJoinSpec spec;
  spec.transition_factor = 6.0;
  spec.phase_pairs = 4;
  spec.min_phase_levels = 10;
  spec.max_phase_levels = 20;
  const auto job = make_fork_join_job(rng, spec);
  EXPECT_GE(job->critical_path(), 4 * 2 * 10);
  EXPECT_LE(job->critical_path(), 4 * 2 * 20);
  EXPECT_GT(job->total_work(), job->critical_path());
}

TEST(Figure5Spec, ScalesWithQuantumLength) {
  const ForkJoinSpec spec = figure5_spec(20.0, 1000);
  EXPECT_DOUBLE_EQ(spec.transition_factor, 20.0);
  EXPECT_EQ(spec.min_phase_levels, 2000);
  EXPECT_EQ(spec.max_phase_levels, 16000);
  EXPECT_THROW(figure5_spec(20.0, 1), std::invalid_argument);
}

TEST(ForkJoinJob, RealizedTransitionFactorNearTarget) {
  // Scheduling a generated job with ABG: the empirically measured
  // transition factor is on the order of the target (the parallel width),
  // since quanta alternate between serial- and parallel-dominated.
  const dag::Steps quantum_length = 200;
  util::Rng rng(23);
  const ForkJoinSpec spec = figure5_spec(16.0, quantum_length);
  const auto job = make_fork_join_job(rng, spec);
  const core::SchedulerSpec abg = core::abg_spec();
  const sim::JobTrace trace = core::run_single(
      abg, *job,
      sim::SingleJobConfig{.processors = 128,
                           .quantum_length = quantum_length});
  ASSERT_TRUE(trace.finished());
  const double measured = metrics::empirical_transition_factor(trace);
  EXPECT_GE(measured, 2.0);
  EXPECT_LE(measured, 40.0);
}

}  // namespace
}  // namespace abg::workload
