#include "sim/report.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/run.hpp"
#include "dag/profile_job.hpp"
#include "workload/profiles.hpp"

namespace abg::sim {
namespace {

TEST(Sparkline, EmptyInput) { EXPECT_TRUE(sparkline({}).empty()); }

TEST(Sparkline, ScalesToPeak) {
  const std::string s = sparkline({0.0, 5.0, 10.0});
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.front(), ' ');
  EXPECT_EQ(s.back(), '@');
  EXPECT_NE(s[1], ' ');
  EXPECT_NE(s[1], '@');
}

TEST(Sparkline, AllZeros) {
  EXPECT_EQ(sparkline({0.0, 0.0}), "  ");
}

TEST(Sparkline, UniformPositiveIsPeak) {
  EXPECT_EQ(sparkline({3.0, 3.0, 3.0}), "@@@");
}

TEST(FeedbackReport, ThreeRows) {
  JobTrace trace;
  sched::QuantumStats q;
  q.request = 4;
  q.allotment = 2;
  q.work = 20;
  q.cpl = 5.0;
  q.length = 10;
  trace.quanta.push_back(q);
  const std::string report = feedback_report(trace);
  EXPECT_NE(report.find("parallelism"), std::string::npos);
  EXPECT_NE(report.find("request"), std::string::npos);
  EXPECT_NE(report.find("allotment"), std::string::npos);
  EXPECT_EQ(std::count(report.begin(), report.end(), '\n'), 3);
}

class ReportOnSimulation : public ::testing::Test {
 protected:
  SimResult run() {
    std::vector<JobSubmission> subs;
    for (int j = 0; j < 3; ++j) {
      JobSubmission s;
      s.job = std::make_unique<dag::ProfileJob>(
          workload::constant_profile(8, 200));
      subs.push_back(std::move(s));
    }
    return core::run_set(core::abg_spec(), std::move(subs),
                         SimConfig{.processors = 16, .quantum_length = 50});
  }
};

TEST_F(ReportOnSimulation, UtilizationSeriesBounded) {
  const SimResult result = run();
  const auto series = machine_utilization_series(result, 16);
  ASSERT_FALSE(series.empty());
  for (const double u : series) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-9);
  }
  // Middle of the run: all three jobs converged, machine well used.
  EXPECT_GT(series[series.size() / 2], 0.5);
}

TEST_F(ReportOnSimulation, AggregateUtilizationConsistent) {
  const SimResult result = run();
  const double u = machine_utilization(result, 16);
  EXPECT_GT(u, 0.0);
  EXPECT_LE(u, 1.0);
  // total work = 3 * 1600 tasks; U = work / (makespan * P).
  EXPECT_NEAR(u, 4800.0 / (static_cast<double>(result.makespan) * 16.0),
              1e-12);
}

TEST(Report, UtilizationValidation) {
  SimResult empty;
  EXPECT_THROW(machine_utilization_series(empty, 0), std::invalid_argument);
  EXPECT_THROW(machine_utilization(empty, 0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(machine_utilization(empty, 4), 0.0);
  EXPECT_TRUE(machine_utilization_series(empty, 4).empty());
}

TEST_F(ReportOnSimulation, GanttChartShape) {
  const SimResult result = run();
  const std::string chart = gantt_chart(result, 16);
  // One row per job, all rows equal length.
  std::vector<std::string> rows;
  std::istringstream ss(chart);
  std::string line;
  while (std::getline(ss, line)) {
    rows.push_back(line);
  }
  ASSERT_EQ(rows.size(), 3u);
  for (const auto& row : rows) {
    EXPECT_EQ(row.size(), rows[0].size());
    EXPECT_EQ(row.rfind("job ", 0), 0u);
    EXPECT_EQ(row.back(), '|');
  }
}

TEST(Report, GanttValidation) {
  SimResult empty;
  EXPECT_THROW(gantt_chart(empty, 0), std::invalid_argument);
  EXPECT_TRUE(gantt_chart(empty, 4).empty());
}

TEST(Report, NonUniformQuantumLengthsRejected) {
  SimResult result;
  JobTrace t;
  sched::QuantumStats q1;
  q1.length = 10;
  sched::QuantumStats q2;
  q2.length = 20;
  t.quanta = {q1, q2};
  result.jobs.push_back(std::move(t));
  result.makespan = 30;
  EXPECT_THROW(machine_utilization_series(result, 4), std::invalid_argument);
}

}  // namespace
}  // namespace abg::sim
