#include "dag/dot.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "dag/builders.hpp"

namespace abg::dag {
namespace {

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = haystack.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

TEST(Dot, ChainEdges) {
  const std::string dot = to_dot(builders::chain(3));
  EXPECT_NE(dot.find("digraph job {"), std::string::npos);
  EXPECT_NE(dot.find("t0 -> t1;"), std::string::npos);
  EXPECT_NE(dot.find("t1 -> t2;"), std::string::npos);
  EXPECT_EQ(count_occurrences(dot, "->"), 2u);
}

TEST(Dot, CustomName) {
  DotOptions options;
  options.name = "my_dag";
  const std::string dot = to_dot(builders::chain(2), options);
  EXPECT_NE(dot.find("digraph my_dag {"), std::string::npos);
}

TEST(Dot, RankByLevelGroupsPeers) {
  const std::string dot = to_dot(builders::diamond(3));
  // Level 1 rank line groups the three middle tasks.
  EXPECT_NE(dot.find("{ rank=same; t1; t2; t3; }"), std::string::npos);
}

TEST(Dot, RanksCanBeDisabled) {
  DotOptions options;
  options.rank_by_level = false;
  const std::string dot = to_dot(builders::diamond(3), options);
  EXPECT_EQ(dot.find("rank=same"), std::string::npos);
}

TEST(Dot, LevelLabels) {
  DotOptions options;
  options.label_levels = true;
  const std::string dot = to_dot(builders::chain(2), options);
  EXPECT_NE(dot.find("label=\"0 (level 0)\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"1 (level 1)\""), std::string::npos);
}

TEST(Dot, EdgeCountMatchesStructure) {
  const DagStructure s = builders::fork_join({{1, 1}, {3, 2}, {1, 1}});
  const std::string dot = to_dot(s);
  EXPECT_EQ(count_occurrences(dot, "->"), s.edge_count());
}

TEST(Dot, ValidatesStructure) {
  DagStructure cyclic;
  cyclic.children = {{1}, {0}};
  EXPECT_THROW(to_dot(cyclic), std::invalid_argument);
}

TEST(Dot, EmptyDag) {
  const std::string dot = to_dot(DagStructure{});
  EXPECT_NE(dot.find("digraph job {"), std::string::npos);
  EXPECT_EQ(count_occurrences(dot, "->"), 0u);
}

}  // namespace
}  // namespace abg::dag
