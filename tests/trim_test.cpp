#include "metrics/trim.hpp"

#include <gtest/gtest.h>

namespace abg::metrics {
namespace {

sched::QuantumStats quantum(int request, int allotment, dag::TaskCount work,
                            double cpl, bool full = true,
                            dag::Steps length = 10) {
  sched::QuantumStats q;
  q.request = request;
  q.allotment = allotment;
  q.work = work;
  q.cpl = cpl;
  q.length = length;
  q.steps_used = length;
  q.full = full;
  return q;
}

TEST(ClassifyQuanta, AccountedRequiresDeprivedAndUnderParallel) {
  sim::JobTrace t;
  // Deprived (3 < 8) and under-parallel (3 < A = 10): accounted.
  t.quanta.push_back(quantum(8, 3, 30, 3.0));
  // Satisfied (a == d): deductible even though under-parallel.
  t.quanta.push_back(quantum(3, 3, 30, 3.0));
  // Deprived but allotment >= parallelism (5 >= A = 2): deductible.
  t.quanta.push_back(quantum(8, 5, 20, 10.0));
  // Non-full quantum.
  t.quanta.push_back(quantum(8, 3, 5, 1.0, /*full=*/false));
  const auto classes = classify_quanta(t);
  ASSERT_EQ(classes.size(), 4u);
  EXPECT_EQ(classes[0], QuantumClass::kAccounted);
  EXPECT_EQ(classes[1], QuantumClass::kDeductible);
  EXPECT_EQ(classes[2], QuantumClass::kDeductible);
  EXPECT_EQ(classes[3], QuantumClass::kNonFull);

  const TrimBreakdown b = count_classes(classes);
  EXPECT_EQ(b.accounted, 1u);
  EXPECT_EQ(b.deductible, 2u);
  EXPECT_EQ(b.non_full, 1u);
}

TEST(ClassifyQuanta, AllotmentEqualToParallelismIsDeductible) {
  sim::JobTrace t;
  // a = A = 4 exactly: not under-parallel (strict <), deductible.
  t.quanta.push_back(quantum(8, 4, 40, 10.0));
  EXPECT_EQ(classify_quanta(t)[0], QuantumClass::kDeductible);
}

TEST(TrimmedAvailability, NoTrimIsPlainAverage) {
  EXPECT_DOUBLE_EQ(trimmed_availability({4, 8, 12}, 10, 0), 8.0);
}

TEST(TrimmedAvailability, TrimsHighestQuanta) {
  // Trim 10 steps = 1 quantum (L = 10): drops the 12.
  EXPECT_DOUBLE_EQ(trimmed_availability({4, 8, 12}, 10, 10), 6.0);
  // Trim 11..20 steps = 2 quanta: drops 12 and 8.
  EXPECT_DOUBLE_EQ(trimmed_availability({4, 8, 12}, 10, 15), 4.0);
}

TEST(TrimmedAvailability, TrimEverythingIsZero) {
  EXPECT_DOUBLE_EQ(trimmed_availability({4, 8}, 10, 100), 0.0);
}

TEST(TrimmedAvailability, EmptySeries) {
  EXPECT_DOUBLE_EQ(trimmed_availability({}, 10, 5), 0.0);
}

TEST(TrimmedAvailability, RejectsBadArguments) {
  EXPECT_THROW(trimmed_availability({1}, 0, 5), std::invalid_argument);
  EXPECT_THROW(trimmed_availability({1}, 10, -1), std::invalid_argument);
}

TEST(TrimmedAvailability, AdversaryExampleFromPaper) {
  // The trim-analysis motivation: an allocator offering many processors
  // exactly when parallelism is low.  Raw average availability is high,
  // but the trimmed availability reflects what the job could actually use.
  const std::vector<int> availability{2, 2, 2, 2, 2, 2, 2, 2, 1000, 1000};
  const double raw = trimmed_availability(availability, 10, 0);
  const double trimmed = trimmed_availability(availability, 10, 20);
  EXPECT_GT(raw, 200.0);
  EXPECT_DOUBLE_EQ(trimmed, 2.0);
}

TEST(TrimmedAvailability, TraceOverloadUsesQuantumLength) {
  sim::JobTrace t;
  auto q1 = quantum(4, 4, 40, 10.0);
  q1.available = 6;
  auto q2 = quantum(4, 4, 40, 10.0);
  q2.available = 14;
  t.quanta.push_back(q1);
  t.quanta.push_back(q2);
  EXPECT_DOUBLE_EQ(trimmed_availability(t, 0), 10.0);
  EXPECT_DOUBLE_EQ(trimmed_availability(t, 10), 6.0);
}

}  // namespace
}  // namespace abg::metrics
