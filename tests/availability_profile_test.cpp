#include "alloc/availability_profile.hpp"

#include <gtest/gtest.h>

namespace abg::alloc {
namespace {

TEST(AvailabilityProfile, RejectsBadProfiles) {
  EXPECT_THROW(AvailabilityProfile({}), std::invalid_argument);
  EXPECT_THROW(AvailabilityProfile({4, -1}), std::invalid_argument);
}

TEST(AvailabilityProfile, ReplaysSequence) {
  AvailabilityProfile ap({2, 8, 0});
  EXPECT_EQ(ap.allocate({10}, 100).at(0), 2);
  EXPECT_EQ(ap.allocate({10}, 100).at(0), 8);
  EXPECT_EQ(ap.allocate({10}, 100).at(0), 0);
}

TEST(AvailabilityProfile, ClampsToLastEntryWhenExhausted) {
  AvailabilityProfile ap({2, 5});
  ap.allocate({10}, 100);
  ap.allocate({10}, 100);
  EXPECT_EQ(ap.allocate({10}, 100).at(0), 5);
  EXPECT_EQ(ap.allocate({10}, 100).at(0), 5);
}

TEST(AvailabilityProfile, Conservative) {
  AvailabilityProfile ap({8});
  EXPECT_EQ(ap.allocate({3}, 100).at(0), 3);
}

TEST(AvailabilityProfile, CappedByMachineSize) {
  AvailabilityProfile ap({50});
  EXPECT_EQ(ap.allocate({100}, 16).at(0), 16);
}

TEST(AvailabilityProfile, MultiJobDrawsFromSharedPool) {
  AvailabilityProfile ap({10});
  const auto a = ap.allocate({6, 6}, 100);
  EXPECT_EQ(a.at(0), 6);
  EXPECT_EQ(a.at(1), 4);
}

TEST(AvailabilityProfile, PoolPreviewsNextQuantum) {
  AvailabilityProfile ap({2, 9});
  EXPECT_EQ(ap.pool(100), 2);
  ap.allocate({1}, 100);
  EXPECT_EQ(ap.pool(100), 9);
  EXPECT_EQ(ap.pool(5), 5);  // capped by machine size
}

TEST(AvailabilityProfile, AvailabilityAtIsOneBased) {
  AvailabilityProfile ap({3, 7});
  EXPECT_EQ(ap.availability_at(1), 3);
  EXPECT_EQ(ap.availability_at(2), 7);
  EXPECT_EQ(ap.availability_at(9), 7);
  EXPECT_THROW(ap.availability_at(0), std::invalid_argument);
}

TEST(AvailabilityProfile, ResetReplaysFromStart) {
  AvailabilityProfile ap({1, 9});
  ap.allocate({10}, 100);
  ap.reset();
  EXPECT_EQ(ap.allocate({10}, 100).at(0), 1);
}

TEST(AvailabilityProfile, ClonePreservesProfileCursor) {
  // clone() must carry the quantum cursor: a copy taken mid-run continues
  // the availability sequence instead of replaying it from p(1).  (The
  // restart behavior was a bug — cloned allocators silently dropped their
  // rotation/cursor state; reset() is the explicit way to restart.)
  AvailabilityProfile ap({1, 9});
  ap.allocate({10}, 100);
  const auto clone = ap.clone();
  EXPECT_EQ(clone->allocate({10}, 100).at(0), 9);
  EXPECT_EQ(ap.allocate({10}, 100).at(0), 9);
  // reset() still restarts.
  clone->reset();
  EXPECT_EQ(clone->allocate({10}, 100).at(0), 1);
}

}  // namespace
}  // namespace abg::alloc
