// expand_weighted: variable-duration tasks as unit-task chains.
#include <gtest/gtest.h>

#include "dag/builders.hpp"
#include "dag/dag_job.hpp"

namespace abg::dag::builders {
namespace {

TEST(ExpandWeighted, Validation) {
  const DagStructure base = chain(2);
  EXPECT_THROW(expand_weighted(base, {1}), std::invalid_argument);
  EXPECT_THROW(expand_weighted(base, {1, 0}), std::invalid_argument);
}

TEST(ExpandWeighted, UnitDurationsAreIdentity) {
  const DagStructure base = diamond(3);
  const DagStructure out = expand_weighted(base, {1, 1, 1, 1, 1});
  ASSERT_EQ(out.node_count(), base.node_count());
  for (std::size_t i = 0; i < base.node_count(); ++i) {
    EXPECT_EQ(out.children[i], base.children[i]);
  }
}

TEST(ExpandWeighted, WorkIsSumOfDurations) {
  const DagStructure out = expand_weighted(chain(3), {2, 5, 1});
  DagJob job{out};
  EXPECT_EQ(job.total_work(), 8);
  // Serial chain of weighted tasks: critical path = total duration.
  EXPECT_EQ(job.critical_path(), 8);
}

TEST(ExpandWeighted, CriticalPathIsHeaviestPath) {
  // Diamond with middle durations 1, 7, 2: T_inf = 1 + 7 + 1 = 9.
  const DagStructure out =
      expand_weighted(diamond(3), {1, 1, 7, 2, 1});
  DagJob job{out};
  EXPECT_EQ(job.total_work(), 12);
  EXPECT_EQ(job.critical_path(), 9);
}

TEST(ExpandWeighted, NoTwoProcessorsOnOneTask) {
  // A single weighted task of duration 5 cannot be sped up by more
  // processors: 5 steps regardless.
  const DagStructure out = expand_weighted(chain(1), {5});
  DagJob job{out};
  dag::Steps steps = 0;
  while (!job.finished()) {
    job.step(10, PickOrder::kBreadthFirst);
    ++steps;
  }
  EXPECT_EQ(steps, 5);
}

TEST(ExpandWeighted, ProgressSurvivesPreemption) {
  // Task of duration 4 advanced 2 steps, starved, then resumed: total
  // work steps on it stays 4.
  const DagStructure out = expand_weighted(chain(1), {4});
  DagJob job{out};
  job.step(1, PickOrder::kFifo);
  job.step(1, PickOrder::kFifo);
  job.step(0, PickOrder::kFifo);  // preempted
  EXPECT_EQ(job.completed_work(), 2);
  job.step(1, PickOrder::kFifo);
  job.step(1, PickOrder::kFifo);
  EXPECT_TRUE(job.finished());
}

TEST(ExpandWeighted, ParallelWeightedPhases) {
  // Fork-join where branches have unequal durations: the measured
  // parallelism tapers as short branches finish.
  //   source (1) -> tasks of durations {2, 4, 8} -> sink (1)
  DagStructure base;
  base.children = {{1, 2, 3}, {4}, {4}, {4}, {}};
  const DagStructure out = expand_weighted(base, {1, 2, 4, 8, 1});
  DagJob job{out};
  EXPECT_EQ(job.total_work(), 16);
  EXPECT_EQ(job.critical_path(), 1 + 8 + 1);
  job.step(3, PickOrder::kFifo);  // source
  // All three branches ready; with 3 processors each advances in
  // lockstep.  After 2 steps the duration-2 branch is done.
  EXPECT_EQ(job.step(3, PickOrder::kFifo), 3);
  EXPECT_EQ(job.step(3, PickOrder::kFifo), 3);
  EXPECT_EQ(job.step(3, PickOrder::kFifo), 2);  // only two branches left
  while (!job.finished()) {
    job.step(3, PickOrder::kFifo);
  }
  EXPECT_EQ(job.completed_work(), 16);
}

}  // namespace
}  // namespace abg::dag::builders
