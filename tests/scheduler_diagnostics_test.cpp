#include "metrics/scheduler_diagnostics.hpp"

#include <gtest/gtest.h>

#include "core/run.hpp"
#include "dag/profile_job.hpp"
#include "sim/quantum_engine.hpp"
#include "workload/profiles.hpp"

namespace abg::metrics {
namespace {

sched::QuantumStats quantum(int request, int allotment, dag::TaskCount work,
                            dag::Steps length = 100) {
  sched::QuantumStats q;
  q.request = request;
  q.allotment = allotment;
  q.work = work;
  q.length = length;
  q.cpl = 1.0;
  q.full = true;
  return q;
}

TEST(ClassifyUtilization, Validation) {
  sim::JobTrace t;
  EXPECT_THROW(classify_utilization(t, 0.0), std::invalid_argument);
  EXPECT_THROW(classify_utilization(t, 1.0), std::invalid_argument);
}

TEST(ClassifyUtilization, ThreeWaySplit) {
  sim::JobTrace t;
  t.quanta.push_back(quantum(4, 4, 400));  // efficient + satisfied
  t.quanta.push_back(quantum(8, 4, 400));  // efficient + deprived
  t.quanta.push_back(quantum(4, 4, 100));  // inefficient (100 < 0.8*400)
  const UtilizationBreakdown b = classify_utilization(t, 0.8);
  EXPECT_EQ(b.efficient_satisfied, 1u);
  EXPECT_EQ(b.efficient_deprived, 1u);
  EXPECT_EQ(b.inefficient, 1u);
  EXPECT_EQ(b.total(), 3u);
}

TEST(ClassifyUtilization, EmptyTrace) {
  EXPECT_EQ(classify_utilization(sim::JobTrace{}).total(), 0u);
}

TEST(ReallocationCount, CountsChangesIncludingPlacement) {
  sim::JobTrace t;
  t.quanta.push_back(quantum(1, 1, 100));
  t.quanta.push_back(quantum(4, 4, 400));
  t.quanta.push_back(quantum(4, 4, 400));
  t.quanta.push_back(quantum(2, 2, 200));
  EXPECT_EQ(reallocation_count(t), 3u);  // 0->1, 1->4, 4->2
  EXPECT_EQ(processors_migrated(t), 1 + 3 + 2);
}

TEST(ReallocationCount, EmptyTrace) {
  EXPECT_EQ(reallocation_count(sim::JobTrace{}), 0u);
  EXPECT_EQ(processors_migrated(sim::JobTrace{}), 0);
}

TEST(JainFairness, PerfectWhenSlowdownsEqual) {
  sim::SimResult result;
  for (int j = 0; j < 3; ++j) {
    sim::JobTrace t;
    t.critical_path = 100;
    t.completion_step = 200;  // slowdown 2 for everyone
    result.jobs.push_back(std::move(t));
  }
  EXPECT_NEAR(jain_slowdown_fairness(result), 1.0, 1e-12);
}

TEST(JainFairness, PenalizesSkew) {
  sim::SimResult result;
  sim::JobTrace fast;
  fast.critical_path = 100;
  fast.completion_step = 100;  // slowdown 1
  sim::JobTrace slow;
  slow.critical_path = 100;
  slow.completion_step = 900;  // slowdown 9
  result.jobs.push_back(std::move(fast));
  result.jobs.push_back(std::move(slow));
  // (1+9)^2 / (2 * (1 + 81)) = 100/164.
  EXPECT_NEAR(jain_slowdown_fairness(result), 100.0 / 164.0, 1e-12);
}

TEST(JainFairness, RequiresFinishedJobs) {
  sim::SimResult empty;
  EXPECT_THROW(jain_slowdown_fairness(empty), std::invalid_argument);
}

TEST(JainFairness, DeqKeepsSlowdownsBalanced) {
  // Identical jobs under DEQ: slowdowns should be nearly equal.
  std::vector<sim::JobSubmission> subs;
  for (int j = 0; j < 4; ++j) {
    sim::JobSubmission s;
    s.job = std::make_unique<dag::ProfileJob>(
        workload::constant_profile(8, 200));
    subs.push_back(std::move(s));
  }
  const sim::SimResult result = core::run_set(
      core::abg_spec(), std::move(subs),
      sim::SimConfig{.processors = 16, .quantum_length = 25});
  EXPECT_GT(jain_slowdown_fairness(result), 0.95);
}

TEST(SchedulerFingerprints, AbgSettlesAGreedyChurns) {
  // The diagnostic the paper's Figure 1 argument implies: on a
  // constant-parallelism job ABG reallocates O(1) times while A-Greedy
  // reallocates roughly every other quantum forever.
  const auto make_job = [] {
    return workload::constant_parallelism_chains(10, 4000);
  };
  const sim::SingleJobConfig config{.processors = 64,
                                    .quantum_length = 100};
  const auto abg_job = make_job();
  const sim::JobTrace abg_trace =
      core::run_single(core::abg_spec(), *abg_job, config);
  const auto ag_job = make_job();
  const sim::JobTrace ag_trace =
      core::run_single(core::a_greedy_spec(), *ag_job, config);

  EXPECT_LE(reallocation_count(abg_trace), 5u);
  EXPECT_GE(reallocation_count(ag_trace), ag_trace.quanta.size() / 2);
  EXPECT_LT(processors_migrated(abg_trace),
            processors_migrated(ag_trace) / 4);

  // Utilization fingerprint: ABG almost always efficient-satisfied;
  // A-Greedy alternates with inefficient quanta.
  const UtilizationBreakdown abg_mix = classify_utilization(abg_trace);
  const UtilizationBreakdown ag_mix = classify_utilization(ag_trace);
  EXPECT_GE(abg_mix.efficient_satisfied, abg_trace.quanta.size() - 3);
  EXPECT_GE(ag_mix.inefficient, ag_trace.quanta.size() / 3);
}

}  // namespace
}  // namespace abg::metrics
