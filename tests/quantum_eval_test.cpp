// The skip-ahead evaluator contract (sim/quantum_eval.hpp): the
// closed-form quantum outcome must agree with ProfileJob's own executor —
// and, transitively, with the stepwise base-class loop ProfileJob is
// property-tested against — on every field, for any (profile, allotment,
// budget).  Plus the overflow guards on the engines' cycle accumulators:
// near-limit values must throw std::overflow_error instead of wrapping.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "dag/dag_job.hpp"
#include "dag/builders.hpp"
#include "dag/profile_job.hpp"
#include "sched/execution_policy.hpp"
#include "sim/job_runtime.hpp"
#include "sim/quantum_eval.hpp"
#include "util/rng.hpp"
#include "workload/profiles.hpp"

namespace abg::sim::quantum_eval {
namespace {

std::vector<dag::TaskCount> random_profile(util::Rng& rng) {
  const auto levels = static_cast<std::size_t>(rng.uniform_int(1, 12));
  std::vector<dag::TaskCount> widths(levels);
  for (auto& w : widths) {
    w = rng.uniform_int(1, 40);
  }
  return widths;
}

/// evaluate_quantum against ProfileJob::run_quantum from the same
/// position, over randomized profiles, allotments and budgets — including
/// mid-level starting positions reached by a prior partial quantum.
TEST(QuantumEvalTest, MatchesProfileJobExecutorEverywhere) {
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    util::Rng rng(util::Rng::derive_seed(991, seed));
    dag::ProfileJob job(random_profile(rng));
    while (!job.finished()) {
      const int procs = static_cast<int>(rng.uniform_int(0, 9));
      const auto budget = static_cast<dag::Steps>(rng.uniform_int(1, 25));
      const PhaseOutcome out =
          evaluate_quantum(job.phase_view(), procs, budget);
      const dag::QuantumExecution exec =
          job.run_quantum(procs, budget, dag::PickOrder::kBreadthFirst);
      ASSERT_EQ(out.work, exec.work) << "seed " << seed;
      ASSERT_DOUBLE_EQ(out.cpl, exec.cpl) << "seed " << seed;
      ASSERT_EQ(out.steps_used, exec.steps) << "seed " << seed;
      ASSERT_EQ(out.idle_steps, exec.idle_steps) << "seed " << seed;
      ASSERT_EQ(out.finished, exec.finished) << "seed " << seed;
      // The predicted end position must be the job's actual position.
      const dag::PhaseView after = job.phase_view();
      ASSERT_EQ(out.end_level, after.level) << "seed " << seed;
      if (!out.finished) {
        ASSERT_EQ(out.end_remaining, after.remaining_in_level)
            << "seed " << seed;
      }
      ASSERT_EQ(out.held_cycles,
                static_cast<dag::TaskCount>(procs) * out.steps_used);
      ASSERT_EQ(out.idle_cycles, out.held_cycles - out.work);
      if (procs == 0) {
        break;  // no progress possible; stop this job
      }
    }
  }
}

TEST(QuantumEvalTest, ZeroAllotmentIdlesTheBudget) {
  dag::ProfileJob job(workload::constant_profile(3, 5));
  const PhaseOutcome out = evaluate_quantum(job.phase_view(), 0, 17);
  EXPECT_EQ(out.steps_used, 17);
  EXPECT_EQ(out.idle_steps, 17);
  EXPECT_EQ(out.work, 0);
  EXPECT_EQ(out.held_cycles, 0);
  EXPECT_FALSE(out.finished);
}

TEST(QuantumEvalTest, PhasesCrossedCountsBarriers) {
  // Three levels of width 6 at 3 procs: 2 steps per level.
  dag::ProfileJob job(workload::constant_profile(6, 3));
  const PhaseOutcome out = evaluate_quantum(job.phase_view(), 3, 4);
  EXPECT_EQ(out.phases_crossed, 2);
  EXPECT_EQ(out.work, 12);
  EXPECT_FALSE(out.finished);
  const PhaseOutcome all = evaluate_quantum(job.phase_view(), 3, 100);
  EXPECT_EQ(all.phases_crossed, 3);
  EXPECT_EQ(all.steps_used, 6);
  EXPECT_TRUE(all.finished);
}

/// steps_to_finish is exact: running that many steps finishes the job,
/// one fewer does not.
TEST(QuantumEvalTest, StepsToFinishIsExact) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    util::Rng rng(util::Rng::derive_seed(992, seed));
    dag::ProfileJob job(random_profile(rng));
    const int procs = static_cast<int>(rng.uniform_int(1, 8));
    const dag::Steps cap = 10000;
    const dag::Steps fin = steps_to_finish(job.phase_view(), procs, cap);
    ASSERT_LE(fin, cap) << "seed " << seed;
    if (fin > 1) {
      const PhaseOutcome before =
          evaluate_quantum(job.phase_view(), procs, fin - 1);
      ASSERT_FALSE(before.finished) << "seed " << seed;
    }
    const PhaseOutcome at = evaluate_quantum(job.phase_view(), procs, fin);
    ASSERT_TRUE(at.finished) << "seed " << seed;
    ASSERT_EQ(at.steps_used, fin) << "seed " << seed;
  }
}

TEST(QuantumEvalTest, StepsToFinishCapAndEdgeCases) {
  dag::ProfileJob job(workload::constant_profile(10, 4));  // 40 work
  // 10 steps at 1 proc per level: 40 total > cap 5 -> cap + 1.
  EXPECT_EQ(steps_to_finish(job.phase_view(), 1, 5), 6);
  // Zero allotment cannot finish.
  EXPECT_EQ(steps_to_finish(job.phase_view(), 0, 5), 6);
  // Finished job needs zero steps.
  dag::ProfileJob done(std::vector<dag::TaskCount>{});
  EXPECT_EQ(steps_to_finish(done.phase_view(), 3, 5), 0);
}

TEST(QuantumEvalTest, SupportsSkipAheadDispatch) {
  dag::ProfileJob profile(workload::constant_profile(2, 3));
  EXPECT_TRUE(supports_skip_ahead(profile));
  dag::DagJob dag_job(
      dag::builders::barrier_profile(workload::constant_profile(2, 3)));
  EXPECT_FALSE(supports_skip_ahead(dag_job));
}

/// run_allotted_quantum: a penalty >= length voids the quantum (no
/// execution, all steps consumed), a partial penalty shortens it, and the
/// stamped fields follow the engines' shared convention.
TEST(QuantumEvalTest, RunAllottedQuantumStampsPenaltyAndAvailability) {
  sched::BGreedyExecution exec;
  dag::ProfileJob job(workload::constant_profile(8, 4));
  const sched::QuantumStats voided = run_allotted_quantum(
      job, exec, /*index=*/1, /*desire=*/3, /*allotment=*/2, /*length=*/10,
      /*penalty=*/10, /*leftover=*/5, /*start_step=*/70);
  EXPECT_EQ(voided.work, 0);
  EXPECT_EQ(voided.steps_used, 10);
  EXPECT_FALSE(voided.full);
  EXPECT_EQ(voided.available, 7);
  EXPECT_EQ(voided.start_step, 70);
  EXPECT_EQ(job.completed_work(), 0);

  const sched::QuantumStats partial = run_allotted_quantum(
      job, exec, 2, 3, 2, 10, /*penalty=*/4, 5, 80);
  EXPECT_EQ(partial.length, 10);
  EXPECT_EQ(partial.steps_used, 4 + 6);
  EXPECT_EQ(partial.work, 12);  // 6 steps at 2 procs, no barrier stall
  EXPECT_FALSE(partial.full);   // migration steps did no work
}

TEST(CycleGuardTest, AddDetectsOverflow) {
  dag::TaskCount acc = std::numeric_limits<dag::TaskCount>::max() - 10;
  add_cycles_checked(acc, 10, "test");
  EXPECT_EQ(acc, std::numeric_limits<dag::TaskCount>::max());
  EXPECT_THROW(add_cycles_checked(acc, 1, "test"), std::overflow_error);
  // The accumulator is untouched on failure.
  EXPECT_EQ(acc, std::numeric_limits<dag::TaskCount>::max());
}

TEST(CycleGuardTest, MulDetectsOverflow) {
  const dag::TaskCount big = std::numeric_limits<dag::TaskCount>::max() / 2;
  EXPECT_EQ(mul_cycles_checked(big, 2, "test"), big * 2);
  EXPECT_THROW(mul_cycles_checked(big, 3, "test"), std::overflow_error);
  EXPECT_THROW(
      mul_cycles_checked(std::numeric_limits<dag::TaskCount>::max(), 2,
                         "test"),
      std::overflow_error);
}

TEST(CycleGuardTest, NearLimitValuesRoundTrip) {
  // Values just under the threshold must pass untouched — the guard adds
  // no rounding or saturation.
  const dag::TaskCount limit = std::numeric_limits<dag::TaskCount>::max();
  dag::TaskCount acc = limit - 1;
  add_cycles_checked(acc, 1, "test");
  EXPECT_EQ(acc, limit);
  EXPECT_EQ(mul_cycles_checked(limit, 1, "test"), limit);
  EXPECT_EQ(mul_cycles_checked(0, limit, "test"), 0);
}

TEST(CycleGuardTest, ErrorMessageCarriesContext) {
  dag::TaskCount acc = std::numeric_limits<dag::TaskCount>::max();
  try {
    add_cycles_checked(acc, 1, "simulate_job_set_async");
    FAIL() << "expected overflow_error";
  } catch (const std::overflow_error& e) {
    EXPECT_NE(std::string(e.what()).find("simulate_job_set_async"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace abg::sim::quantum_eval
