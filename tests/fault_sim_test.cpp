// Fault injection through both simulation engines: strict no-op when
// disabled, processor failure/repair, job crash under both work-loss and
// both policy-restart semantics, allotment revocation, and the lost-work
// accounting balance.
#include <gtest/gtest.h>

#include <map>

#include "alloc/equipartition.hpp"
#include "dag/profile_job.hpp"
#include "fault/fault_plan.hpp"
#include "fault/resilience.hpp"
#include "sched/a_control.hpp"
#include "sched/execution_policy.hpp"
#include "sim/async_simulator.hpp"
#include "sim/simulator.hpp"
#include "sim/validate.hpp"
#include "util/rng.hpp"
#include "workload/profiles.hpp"

namespace abg::sim {
namespace {

std::vector<JobSubmission> wide_jobs(int count, dag::TaskCount width,
                                     dag::Steps levels) {
  std::vector<JobSubmission> subs;
  for (int j = 0; j < count; ++j) {
    JobSubmission s;
    s.job = std::make_unique<dag::ProfileJob>(
        workload::constant_profile(width, levels));
    subs.push_back(std::move(s));
  }
  return subs;
}

SimConfig base_config() {
  return SimConfig{.processors = 16, .quantum_length = 10};
}

SimResult run_sync(const SimConfig& config, int count = 3,
                   dag::TaskCount width = 8, dag::Steps levels = 60) {
  sched::BGreedyExecution exec;
  sched::AControlRequest proto;
  alloc::EquiPartition deq;
  return simulate_job_set(wide_jobs(count, width, levels), exec, proto, deq,
                          config);
}

SimResult run_async(const SimConfig& config, int count = 3,
                    dag::TaskCount width = 8, dag::Steps levels = 60) {
  sched::BGreedyExecution exec;
  sched::AControlRequest proto;
  return simulate_job_set_async(wide_jobs(count, width, levels), exec, proto,
                                config);
}

void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.total_waste, b.total_waste);
  EXPECT_EQ(a.quanta, b.quanta);
  EXPECT_DOUBLE_EQ(a.mean_response_time, b.mean_response_time);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    const JobTrace& ta = a.jobs[j];
    const JobTrace& tb = b.jobs[j];
    EXPECT_EQ(ta.completion_step, tb.completion_step);
    ASSERT_EQ(ta.quanta.size(), tb.quanta.size());
    for (std::size_t q = 0; q < ta.quanta.size(); ++q) {
      EXPECT_EQ(ta.quanta[q].start_step, tb.quanta[q].start_step);
      EXPECT_EQ(ta.quanta[q].request, tb.quanta[q].request);
      EXPECT_EQ(ta.quanta[q].allotment, tb.quanta[q].allotment);
      EXPECT_EQ(ta.quanta[q].available, tb.quanta[q].available);
      EXPECT_EQ(ta.quanta[q].work, tb.quanta[q].work);
      EXPECT_EQ(ta.quanta[q].steps_used, tb.quanta[q].steps_used);
    }
  }
}

void expect_all_valid(const SimResult& result, int processors) {
  const std::vector<std::string> issues =
      validate_result(result, processors);
  EXPECT_TRUE(issues.empty()) << issues.front();
}

void expect_balanced(const SimResult& faulty, const SimResult& reference) {
  const fault::ResilienceReport report =
      fault::analyze_resilience(faulty, reference);
  EXPECT_TRUE(report.accounting_balances())
      << "allotted " << report.allotted_cycles << " != work "
      << report.work_done << " + lost " << report.lost_work << " + waste "
      << report.waste;
}

TEST(FaultSim, NullAndEmptyPlansAreStrictNoOps) {
  const SimResult plain = run_sync(base_config());
  fault::FaultPlan empty;
  SimConfig with_empty = base_config();
  with_empty.faults = &empty;
  const SimResult gated = run_sync(with_empty);
  expect_identical(plain, gated);
  EXPECT_FALSE(gated.fault_log.enabled);
}

TEST(FaultSim, AsyncEmptyPlanIsStrictNoOp) {
  const SimResult plain = run_async(base_config());
  fault::FaultPlan empty;
  SimConfig with_empty = base_config();
  with_empty.faults = &empty;
  const SimResult gated = run_async(with_empty);
  expect_identical(plain, gated);
  EXPECT_TRUE(gated.averaged_allotments);
}

TEST(FaultSim, ProcessorFailureShrinksTheMachineMidRun) {
  const SimResult reference = run_sync(base_config());

  const fault::FaultPlan plan = fault::step_failure_plan(50, 8);
  SimConfig config = base_config();
  config.faults = &plan;
  const SimResult result = run_sync(config);

  expect_all_valid(result, config.processors);
  EXPECT_TRUE(result.fault_log.enabled);
  EXPECT_EQ(result.fault_log.failure_events, 1);
  EXPECT_EQ(result.fault_log.min_capacity, 8);
  EXPECT_GE(result.makespan, reference.makespan);

  // After the failure no global quantum may use more than the surviving
  // capacity.
  std::map<dag::Steps, int> usage;
  for (const JobTrace& t : result.jobs) {
    for (const auto& q : t.quanta) {
      usage[q.start_step] += q.allotment;
    }
  }
  for (const auto& [start, total] : usage) {
    if (start >= 50) {
      EXPECT_LE(total, 8) << "oversubscribed after failure at " << start;
    }
  }
  expect_balanced(result, reference);
}

TEST(FaultSim, RepairRestoresCapacity) {
  const fault::FaultPlan plan = fault::impulse_failure_plan(20, 12, 100);
  SimConfig config = base_config();
  config.faults = &plan;
  const SimResult result = run_sync(config, 3, 8, 200);

  expect_all_valid(result, config.processors);
  EXPECT_EQ(result.fault_log.failure_events, 1);
  EXPECT_EQ(result.fault_log.repair_events, 1);
  EXPECT_EQ(result.fault_log.min_capacity, 4);

  // After the repair the machine is whole again: some quantum uses more
  // than the outage capacity.
  std::map<dag::Steps, int> usage;
  for (const JobTrace& t : result.jobs) {
    for (const auto& q : t.quanta) {
      usage[q.start_step] += q.allotment;
    }
  }
  bool recovered = false;
  for (const auto& [start, total] : usage) {
    if (start >= 120 && total > 4) {
      recovered = true;
    }
  }
  EXPECT_TRUE(recovered);
}

TEST(FaultSim, CheckpointCrashForfeitsOnlyTheInFlightQuantum) {
  const SimResult reference = run_sync(base_config());

  fault::FaultPlan plan = fault::periodic_crash_plan(1, 35, 1000, 1);
  plan.work_loss = fault::WorkLoss::kCheckpointQuantum;
  SimConfig config = base_config();
  config.faults = &plan;
  const SimResult result = run_sync(config);

  expect_all_valid(result, config.processors);
  ASSERT_EQ(result.fault_log.crashes.size(), 1u);
  EXPECT_EQ(result.fault_log.crashes[0].job, 1u);
  EXPECT_EQ(result.fault_log.lost_work, 0);
  EXPECT_EQ(result.fault_log.discarded_cycles, 0);

  // The voided quantum is still in the trace: zero work, zero steps, its
  // whole allotment wasted.
  const JobTrace& victim = result.jobs[1];
  const auto slot = static_cast<std::size_t>(35 / 10);  // quantum of step 35
  bool found = false;
  for (const auto& q : victim.quanta) {
    if (q.start_step == static_cast<dag::Steps>(slot) * 10) {
      EXPECT_EQ(q.work, 0);
      EXPECT_EQ(q.steps_used, 0);
      EXPECT_FALSE(q.full);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(victim.finished());
  expect_balanced(result, reference);
}

TEST(FaultSim, ScratchCrashDiscardsCompletedWork) {
  const SimResult reference = run_sync(base_config());

  fault::FaultPlan plan = fault::periodic_crash_plan(0, 45, 1000, 1);
  plan.work_loss = fault::WorkLoss::kRestartFromScratch;
  SimConfig config = base_config();
  config.faults = &plan;
  const SimResult result = run_sync(config);

  expect_all_valid(result, config.processors);
  ASSERT_EQ(result.fault_log.crashes.size(), 1u);
  EXPECT_GT(result.fault_log.lost_work, 0);
  EXPECT_GE(result.fault_log.discarded_cycles,
            result.fault_log.lost_work);

  // The restarted trace starts over: quantum 1 of the victim begins after
  // the crash step.
  const JobTrace& victim = result.jobs[0];
  ASSERT_FALSE(victim.quanta.empty());
  EXPECT_EQ(victim.quanta[0].index, 1);
  EXPECT_GT(victim.quanta[0].start_step, 45);
  EXPECT_TRUE(victim.finished());
  EXPECT_EQ(victim.quanta.back().finished, true);
  expect_balanced(result, reference);
}

TEST(FaultSim, PolicyStatePreservedOrResetOnRestart) {
  // Crash late enough that A-Control's desire has grown past d(1).
  fault::FaultPlan preserve = fault::periodic_crash_plan(0, 55, 1000, 1);
  preserve.work_loss = fault::WorkLoss::kCheckpointQuantum;
  preserve.policy_on_restart = fault::PolicyOnRestart::kPreserve;
  SimConfig config = base_config();
  config.faults = &preserve;
  const SimResult kept = run_sync(config, 1, 12, 400);

  fault::FaultPlan reset = preserve;
  reset.policy_on_restart = fault::PolicyOnRestart::kReset;
  config.faults = &reset;
  const SimResult fresh = run_sync(config, 1, 12, 400);

  const auto first_after_crash = [](const SimResult& result) {
    const JobTrace& t = result.jobs[0];
    for (std::size_t q = 0; q + 1 < t.quanta.size(); ++q) {
      if (t.quanta[q].start_step <= 55 &&
          55 < t.quanta[q].start_step + t.quanta[q].length) {
        return std::pair<int, int>{t.quanta[q].request,
                                   t.quanta[q + 1].request};
      }
    }
    return std::pair<int, int>{-1, -1};
  };

  const auto [kept_crash_req, kept_next_req] = first_after_crash(kept);
  const auto [reset_crash_req, reset_next_req] = first_after_crash(fresh);
  ASSERT_GT(kept_crash_req, 1) << "desire never grew; test is vacuous";
  // Preserved: the restarted job re-requests its pre-crash desire.
  EXPECT_EQ(kept_next_req, kept_crash_req);
  // Reset: the restarted job re-requests d(1), its very first request.
  EXPECT_EQ(reset_next_req, fresh.jobs[0].quanta[0].request);
  EXPECT_LT(reset_next_req, reset_crash_req);
}

TEST(FaultSim, RestartDelayDefersReadmission) {
  fault::FaultPlan plan = fault::periodic_crash_plan(0, 25, 1000, 1);
  plan.restart_delay = 70;
  SimConfig config = base_config();
  config.faults = &plan;
  const SimResult result = run_sync(config, 1, 8, 100);

  const JobTrace& victim = result.jobs[0];
  // The quantum after the crash (step 25 lies in [20, 30)) may not start
  // before 30 + 70.
  bool checked = false;
  for (std::size_t q = 0; q + 1 < victim.quanta.size(); ++q) {
    if (victim.quanta[q].start_step == 20) {
      EXPECT_GE(victim.quanta[q + 1].start_step, 100);
      checked = true;
    }
  }
  EXPECT_TRUE(checked);
  EXPECT_TRUE(victim.finished());
}

TEST(FaultSim, AllotmentRevocationCapsTheVictim) {
  fault::FaultPlan plan;
  fault::FaultEvent revoke;
  revoke.step = 20;
  revoke.kind = fault::FaultKind::kAllotmentRevocation;
  revoke.job = 0;
  revoke.cap = 1;
  revoke.duration = 40;  // [20, 60)
  plan.events.push_back(revoke);
  SimConfig config = base_config();
  config.faults = &plan;
  const SimResult result = run_sync(config);

  expect_all_valid(result, config.processors);
  EXPECT_EQ(result.fault_log.revocation_events, 1);
  const JobTrace& victim = result.jobs[0];
  bool saw_window = false;
  for (const auto& q : victim.quanta) {
    if (q.start_step >= 20 && q.start_step < 60) {
      EXPECT_LE(q.allotment, 1)
          << "revocation ignored at " << q.start_step;
      saw_window = true;
    }
  }
  EXPECT_TRUE(saw_window);
}

TEST(FaultSim, AsyncCheckpointCrashKeepsExecutedWork) {
  const SimResult reference = run_async(base_config());

  fault::FaultPlan plan = fault::periodic_crash_plan(1, 37, 1000, 1);
  plan.work_loss = fault::WorkLoss::kCheckpointQuantum;
  SimConfig config = base_config();
  config.faults = &plan;
  const SimResult result = run_async(config);

  expect_all_valid(result, config.processors);
  ASSERT_EQ(result.fault_log.crashes.size(), 1u);
  EXPECT_EQ(result.fault_log.lost_work, 0);
  for (const JobTrace& t : result.jobs) {
    EXPECT_TRUE(t.finished());
  }
  expect_balanced(result, reference);
}

TEST(FaultSim, AsyncScratchCrashDiscardsWork) {
  const SimResult reference = run_async(base_config());

  fault::FaultPlan plan = fault::periodic_crash_plan(2, 41, 1000, 1);
  plan.work_loss = fault::WorkLoss::kRestartFromScratch;
  SimConfig config = base_config();
  config.faults = &plan;
  const SimResult result = run_async(config);

  expect_all_valid(result, config.processors);
  ASSERT_EQ(result.fault_log.crashes.size(), 1u);
  EXPECT_GT(result.fault_log.lost_work, 0);
  for (const JobTrace& t : result.jobs) {
    EXPECT_TRUE(t.finished());
  }
  expect_balanced(result, reference);
}

TEST(FaultSim, AsyncProcessorChurnCompletesAndBalances) {
  const SimResult reference = run_async(base_config());

  const fault::FaultPlan plan = fault::impulse_failure_plan(30, 10, 80);
  SimConfig config = base_config();
  config.faults = &plan;
  const SimResult result = run_async(config);

  expect_all_valid(result, config.processors);
  EXPECT_EQ(result.fault_log.min_capacity, 6);
  EXPECT_GE(result.makespan, reference.makespan);
  expect_balanced(result, reference);
}

TEST(FaultSim, AccountingBalancesUnderCombinedChurnAndCrashes) {
  util::Rng rng(2024);
  fault::FaultPlan plan =
      fault::poisson_churn_plan(rng, 400, 0.02, 60, 6);
  for (int j = 0; j < 3; ++j) {
    fault::FaultEvent crash;
    crash.step = 60 + 90 * j;
    crash.kind = fault::FaultKind::kJobCrash;
    crash.job = j;
    plan.events.push_back(crash);
  }
  plan.normalize();

  for (const fault::WorkLoss loss :
       {fault::WorkLoss::kCheckpointQuantum,
        fault::WorkLoss::kRestartFromScratch}) {
    for (const fault::PolicyOnRestart policy :
         {fault::PolicyOnRestart::kPreserve,
          fault::PolicyOnRestart::kReset}) {
      fault::FaultPlan variant = plan;
      variant.work_loss = loss;
      variant.policy_on_restart = policy;
      SimConfig config = base_config();
      config.faults = &variant;
      const SimResult reference = run_sync(base_config());
      const SimResult result = run_sync(config);
      expect_all_valid(result, config.processors);
      expect_balanced(result, reference);
      const SimResult async_result = run_async(config);
      expect_all_valid(async_result, config.processors);
      expect_balanced(async_result, run_async(base_config()));
    }
  }
}

}  // namespace
}  // namespace abg::sim
