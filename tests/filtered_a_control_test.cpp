#include <gtest/gtest.h>

#include "sched/a_control.hpp"

namespace abg::sched {
namespace {

QuantumStats stats_with_parallelism(double parallelism) {
  QuantumStats q;
  q.length = 100;
  q.steps_used = 100;
  q.cpl = 10.0;
  q.work = static_cast<dag::TaskCount>(parallelism * 10.0);
  q.full = true;
  return q;
}

TEST(FilteredAControl, Validation) {
  EXPECT_THROW(
      FilteredAControlRequest(FilteredAControlConfig{1.0, 0.5}),
      std::invalid_argument);
  EXPECT_THROW(
      FilteredAControlRequest(FilteredAControlConfig{0.2, 0.0}),
      std::invalid_argument);
  EXPECT_THROW(
      FilteredAControlRequest(FilteredAControlConfig{0.2, 1.5}),
      std::invalid_argument);
  EXPECT_NO_THROW(
      FilteredAControlRequest(FilteredAControlConfig{0.2, 1.0}));
}

TEST(FilteredAControl, UnitSmoothingMatchesPlainAControl) {
  FilteredAControlRequest filtered(FilteredAControlConfig{0.2, 1.0});
  AControlRequest plain(AControlConfig{0.2});
  for (const double a : {10.0, 4.0, 40.0, 40.0, 2.0}) {
    const int rf = filtered.next_request(stats_with_parallelism(a));
    const int rp = plain.next_request(stats_with_parallelism(a));
    EXPECT_EQ(rf, rp);
    EXPECT_NEAR(filtered.desire(), plain.desire(), 1e-12);
  }
}

TEST(FilteredAControl, FirstMeasurementSeedsFilter) {
  FilteredAControlRequest policy(FilteredAControlConfig{0.0, 0.5});
  policy.next_request(stats_with_parallelism(16.0));
  EXPECT_DOUBLE_EQ(policy.filtered_parallelism(), 16.0);
}

TEST(FilteredAControl, EwmaDampensSpike) {
  FilteredAControlRequest policy(FilteredAControlConfig{0.0, 0.5});
  policy.next_request(stats_with_parallelism(10.0));
  // One-quantum spike to 50: the filter admits only half the jump.
  policy.next_request(stats_with_parallelism(50.0));
  EXPECT_DOUBLE_EQ(policy.filtered_parallelism(), 30.0);
  // With r = 0 the desire follows the filtered value exactly.
  EXPECT_DOUBLE_EQ(policy.desire(), 30.0);
  // Back to 10: the spike decays geometrically instead of whiplashing.
  policy.next_request(stats_with_parallelism(10.0));
  EXPECT_DOUBLE_EQ(policy.filtered_parallelism(), 20.0);
}

TEST(FilteredAControl, ConvergesToConstantParallelism) {
  FilteredAControlRequest policy(FilteredAControlConfig{0.2, 0.5});
  int request = 0;
  for (int q = 0; q < 40; ++q) {
    request = policy.next_request(stats_with_parallelism(12.0));
  }
  EXPECT_EQ(request, 12);
  EXPECT_NEAR(policy.desire(), 12.0, 1e-6);
}

TEST(FilteredAControl, HoldsWithoutMeasurement) {
  FilteredAControlRequest policy;
  policy.next_request(stats_with_parallelism(8.0));
  const double desire = policy.desire();
  QuantumStats empty;
  policy.next_request(empty);
  EXPECT_DOUBLE_EQ(policy.desire(), desire);
}

TEST(FilteredAControl, ResetClearsFilter) {
  FilteredAControlRequest policy;
  policy.next_request(stats_with_parallelism(8.0));
  policy.reset();
  EXPECT_DOUBLE_EQ(policy.desire(), 1.0);
  EXPECT_DOUBLE_EQ(policy.filtered_parallelism(), 0.0);
}

TEST(FilteredAControl, CloneCopiesConfig) {
  FilteredAControlRequest policy(FilteredAControlConfig{0.3, 0.25});
  const auto clone = policy.clone();
  auto* typed = dynamic_cast<FilteredAControlRequest*>(clone.get());
  ASSERT_NE(typed, nullptr);
  EXPECT_DOUBLE_EQ(typed->config().convergence_rate, 0.3);
  EXPECT_DOUBLE_EQ(typed->config().smoothing, 0.25);
  EXPECT_EQ(typed->name(), "a-control-filtered");
}

}  // namespace
}  // namespace abg::sched
