#include "sim/trace.hpp"

#include <gtest/gtest.h>

namespace abg::sim {
namespace {

sched::QuantumStats quantum(int request, int allotment, dag::TaskCount work,
                            double cpl, dag::Steps length = 10) {
  sched::QuantumStats q;
  q.request = request;
  q.allotment = allotment;
  q.available = allotment + 2;
  q.work = work;
  q.cpl = cpl;
  q.length = length;
  q.steps_used = length;
  q.full = true;
  return q;
}

JobTrace sample_trace() {
  JobTrace t;
  t.release_step = 5;
  t.completion_step = 45;
  t.work = 100;
  t.critical_path = 20;
  t.quanta.push_back(quantum(1, 1, 10, 5.0));
  t.quanta.push_back(quantum(4, 3, 28, 7.0));
  t.quanta.push_back(quantum(8, 8, 62, 8.0));
  return t;
}

TEST(JobTrace, ResponseTime) {
  const JobTrace t = sample_trace();
  EXPECT_EQ(t.response_time(), 40);
}

TEST(JobTrace, ResponseTimeThrowsIfUnfinished) {
  JobTrace t;
  EXPECT_FALSE(t.finished());
  EXPECT_THROW(t.response_time(), std::logic_error);
}

TEST(JobTrace, TotalWaste) {
  const JobTrace t = sample_trace();
  // (1*10-10) + (3*10-28) + (8*10-62) = 0 + 2 + 18 = 20.
  EXPECT_EQ(t.total_waste(), 20);
}

TEST(JobTrace, TotalAllotted) {
  const JobTrace t = sample_trace();
  EXPECT_EQ(t.total_allotted(), 120);
}

TEST(JobTrace, Series) {
  const JobTrace t = sample_trace();
  EXPECT_EQ(t.request_series(), (std::vector<double>{1.0, 4.0, 8.0}));
  EXPECT_EQ(t.allotment_series(), (std::vector<int>{1, 3, 8}));
  EXPECT_EQ(t.availability_series(), (std::vector<int>{3, 5, 10}));
  const auto parallelism = t.parallelism_series();
  ASSERT_EQ(parallelism.size(), 3u);
  EXPECT_DOUBLE_EQ(parallelism[0], 2.0);
  EXPECT_DOUBLE_EQ(parallelism[1], 4.0);
  EXPECT_DOUBLE_EQ(parallelism[2], 7.75);
}

TEST(JobTrace, EmptyTraceDefaults) {
  JobTrace t;
  EXPECT_EQ(t.total_waste(), 0);
  EXPECT_EQ(t.total_allotted(), 0);
  EXPECT_TRUE(t.request_series().empty());
  EXPECT_TRUE(t.parallelism_series().empty());
}

}  // namespace
}  // namespace abg::sim
