#include "control/transfer_function.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace abg::control {
namespace {

TEST(TransferFunction, RejectsZeroDenominator) {
  EXPECT_THROW(TransferFunction(Polynomial({1.0}), Polynomial()),
               std::invalid_argument);
}

TEST(TransferFunction, PolesAndZeros) {
  // H(z) = (z - 2) / (z - 0.5).
  TransferFunction h(Polynomial({-2.0, 1.0}), Polynomial({-0.5, 1.0}));
  const auto poles = h.poles();
  ASSERT_EQ(poles.size(), 1u);
  EXPECT_NEAR(poles[0].real(), 0.5, 1e-12);
  const auto zeros = h.zeros();
  ASSERT_EQ(zeros.size(), 1u);
  EXPECT_NEAR(zeros[0].real(), 2.0, 1e-12);
}

TEST(TransferFunction, ZeroNumeratorHasNoZeros) {
  TransferFunction h(Polynomial(), Polynomial({1.0, 1.0}));
  EXPECT_TRUE(h.zeros().empty());
}

TEST(TransferFunction, EvalAndDcGain) {
  // H(z) = 1 / (z - 0.5); H(1) = 2.
  TransferFunction h(Polynomial({1.0}), Polynomial({-0.5, 1.0}));
  EXPECT_NEAR(h.dc_gain(), 2.0, 1e-12);
}

TEST(TransferFunction, EvalAtPoleThrows) {
  TransferFunction h(Polynomial({1.0}), Polynomial({-1.0, 1.0}));
  EXPECT_THROW(h.dc_gain(), std::invalid_argument);
}

TEST(TransferFunction, SeriesComposition) {
  // (1/(z-1)) * (2/1) = 2/(z-1).
  TransferFunction a(Polynomial({1.0}), Polynomial({-1.0, 1.0}));
  TransferFunction b(Polynomial({2.0}), Polynomial({1.0}));
  const TransferFunction c = a.series(b);
  EXPECT_EQ(c.num(), Polynomial({2.0}));
  EXPECT_EQ(c.den(), Polynomial({-1.0, 1.0}));
}

TEST(TransferFunction, FeedbackClosure) {
  // H = K/(z-1); H/(1+H) = K/(z-1+K).
  const double K = 0.75;
  TransferFunction open(Polynomial({K}), Polynomial({-1.0, 1.0}));
  const TransferFunction closed = open.feedback();
  EXPECT_EQ(closed.num(), Polynomial({K}));
  EXPECT_EQ(closed.den(), Polynomial({K - 1.0, 1.0}));
}

TEST(TransferFunction, SimulateFirstOrderStepResponse) {
  // T(z) = (1-p)/(z-p): unit-step response y[n] = 1 - p^(n) ... with one
  // step delay: y[0] = 0, y[n] = 1 - p^n.
  const double p = 0.6;
  TransferFunction t(Polynomial({1.0 - p}), Polynomial({-p, 1.0}));
  const auto y = t.simulate(unit_step(20));
  ASSERT_EQ(y.size(), 20u);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  for (std::size_t n = 1; n < y.size(); ++n) {
    EXPECT_NEAR(y[n], 1.0 - std::pow(p, static_cast<double>(n)), 1e-12);
  }
}

TEST(TransferFunction, SimulateImpulseResponse) {
  // T(z) = 1/(z-p): impulse response h[n] = p^(n-1) for n >= 1.
  const double p = 0.5;
  TransferFunction t(Polynomial({1.0}), Polynomial({-p, 1.0}));
  const auto y = t.simulate(impulse(10));
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  for (std::size_t n = 1; n < y.size(); ++n) {
    EXPECT_NEAR(y[n], std::pow(p, static_cast<double>(n - 1)), 1e-12);
  }
}

TEST(TransferFunction, SimulateStaticGain) {
  TransferFunction t(Polynomial({3.0}), Polynomial({1.0}));
  const auto y = t.simulate({1.0, 2.0, -1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
  EXPECT_DOUBLE_EQ(y[2], -3.0);
}

TEST(TransferFunction, SimulateSecondOrder) {
  // T(z) = 1 / (z^2 - z + 0.25) = 1/(z - 0.5)^2.  Verify against direct
  // recurrence y[n] = u[n-2] + y[n-1] - 0.25 y[n-2].
  TransferFunction t(Polynomial({1.0}), Polynomial({0.25, -1.0, 1.0}));
  const auto u = unit_step(15);
  const auto y = t.simulate(u);
  std::vector<double> ref(u.size(), 0.0);
  for (std::size_t n = 0; n < u.size(); ++n) {
    const double u2 = n >= 2 ? u[n - 2] : 0.0;
    const double y1 = n >= 1 ? ref[n - 1] : 0.0;
    const double y2 = n >= 2 ? ref[n - 2] : 0.0;
    ref[n] = u2 + y1 - 0.25 * y2;
  }
  for (std::size_t n = 0; n < u.size(); ++n) {
    EXPECT_NEAR(y[n], ref[n], 1e-12) << "n=" << n;
  }
}

TEST(TransferFunction, SimulateRejectsImproperSystem) {
  // deg(num) > deg(den): non-causal.
  TransferFunction t(Polynomial({0.0, 0.0, 1.0}), Polynomial({1.0, 1.0}));
  EXPECT_THROW(t.simulate(unit_step(5)), std::invalid_argument);
}

TEST(Inputs, UnitStepAndImpulse) {
  const auto u = unit_step(3, 2.0);
  EXPECT_EQ(u, (std::vector<double>{2.0, 2.0, 2.0}));
  const auto d = impulse(3, 5.0);
  EXPECT_EQ(d, (std::vector<double>{5.0, 0.0, 0.0}));
  EXPECT_TRUE(impulse(0).empty());
}

}  // namespace
}  // namespace abg::control
