#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace abg::util {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isinf(s.min()));
  EXPECT_TRUE(std::isinf(s.max()));
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, KnownMeanAndVariance) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Population variance is 4; unbiased sample variance = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.1 * i * i - 3.0 * i + 1.0;
    whole.add(x);
    (i < 20 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats s;
  s.add(1.0);
  s.add(2.0);
  RunningStats empty;
  s.merge(empty);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 1.5);

  RunningStats other;
  other.merge(s);
  EXPECT_EQ(other.count(), 2u);
  EXPECT_DOUBLE_EQ(other.mean(), 1.5);
}

TEST(Quantile, MedianOfOddCount) {
  EXPECT_DOUBLE_EQ(quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Quantile, InterpolatesBetweenOrderStatistics) {
  EXPECT_DOUBLE_EQ(quantile({0.0, 10.0}, 0.25), 2.5);
}

TEST(Quantile, Extremes) {
  const std::vector<double> xs{5.0, -1.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), -1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
}

TEST(Quantile, ClampsOutOfRangeQ) {
  EXPECT_DOUBLE_EQ(quantile({1.0, 2.0}, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(quantile({1.0, 2.0}, 1.5), 2.0);
}

// The documented empty-input contract: the vector helpers return quiet
// NaN, never throw, so aggregation pipelines can pass possibly-empty
// sample sets straight through (util::Json renders NaN as null).
TEST(Quantile, NanOnEmpty) { EXPECT_TRUE(std::isnan(quantile({}, 0.5))); }

TEST(MeanOf, Basic) {
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
  EXPECT_TRUE(std::isnan(mean_of({})));
}

TEST(GeometricMean, Basic) {
  EXPECT_NEAR(geometric_mean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geometric_mean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(GeometricMean, RejectsNonPositive) {
  EXPECT_THROW(geometric_mean({1.0, 0.0}), std::invalid_argument);
  EXPECT_TRUE(std::isnan(geometric_mean({})));
}

TEST(StddevOf, NanOnEmptyZeroOnSingle) {
  EXPECT_TRUE(std::isnan(stddev_of({})));
  EXPECT_DOUBLE_EQ(stddev_of({7.0}), 0.0);
  EXPECT_NEAR(stddev_of({1.0, 3.0}), std::sqrt(2.0), 1e-12);
}

TEST(ApproxEqual, RelativeAndAbsolute) {
  EXPECT_TRUE(approx_equal(1.0, 1.0));
  EXPECT_TRUE(approx_equal(1e12, 1e12 * (1 + 1e-10)));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
  EXPECT_TRUE(approx_equal(0.0, 1e-13));
}

TEST(CeilDiv, Basics) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(0, 5), 0);
  EXPECT_EQ(ceil_div(1, 1), 1);
}

}  // namespace
}  // namespace abg::util
