// Reallocation-overhead modeling in both engines.
#include <gtest/gtest.h>

#include "alloc/equipartition.hpp"
#include "alloc/unconstrained.hpp"
#include "core/run.hpp"
#include "dag/profile_job.hpp"
#include "sim/quantum_engine.hpp"
#include "sim/simulator.hpp"
#include "sim/validate.hpp"
#include "workload/profiles.hpp"

namespace abg::sim {
namespace {

TEST(ReallocationPenalty, Formula) {
  EXPECT_EQ(reallocation_penalty(0, 8, 2, 100), 16);
  EXPECT_EQ(reallocation_penalty(8, 0, 2, 100), 16);
  EXPECT_EQ(reallocation_penalty(8, 8, 2, 100), 0);
  EXPECT_EQ(reallocation_penalty(0, 100, 5, 100), 100);  // capped at L
  EXPECT_EQ(reallocation_penalty(3, 7, 0, 100), 0);      // free
}

TEST(Overhead, ZeroCostIdenticalToBaseline) {
  auto run = [](dag::Steps cost) {
    dag::ProfileJob job(workload::square_wave_profile(1, 60, 8, 60, 3));
    return core::run_single(
        core::abg_spec(), job,
        SingleJobConfig{.processors = 32,
                        .quantum_length = 30,
                        .reallocation_cost_per_proc = cost});
  };
  const JobTrace base = run(0);
  const JobTrace same = run(0);
  EXPECT_EQ(base.completion_step, same.completion_step);
  EXPECT_EQ(base.total_waste(), same.total_waste());
}

TEST(Overhead, SlowsCompletionAndAddsWaste) {
  auto run = [](dag::Steps cost) {
    dag::ProfileJob job(workload::square_wave_profile(1, 60, 8, 60, 3));
    return core::run_single(
        core::abg_spec(), job,
        SingleJobConfig{.processors = 32,
                        .quantum_length = 30,
                        .reallocation_cost_per_proc = cost});
  };
  const JobTrace free = run(0);
  const JobTrace costly = run(3);
  EXPECT_GT(costly.completion_step, free.completion_step);
  EXPECT_GT(costly.total_waste(), free.total_waste());
  // Work is conserved regardless of overhead.
  EXPECT_EQ(free.work, costly.work);
}

TEST(Overhead, PenaltyAccountingExact) {
  // Constant-width job: ABG's allotments go 1 (placement penalty cost*1),
  // then jump to 4 (penalty cost*3), then stay (no penalty).
  dag::ProfileJob job(workload::constant_profile(4, 400));
  const JobTrace trace = core::run_single(
      core::abg_spec(), job,
      SingleJobConfig{.processors = 32,
                      .quantum_length = 50,
                      .reallocation_cost_per_proc = 2});
  ASSERT_GE(trace.quanta.size(), 4u);
  // Quantum 1: allotment 1, placement penalty 2 steps -> 48 work steps;
  // the job measures A(1) = 4 and the desire moves to 0.2 + 0.8*4 = 3.4.
  EXPECT_EQ(trace.quanta[0].allotment, 1);
  EXPECT_EQ(trace.quanta[0].work, 48);
  EXPECT_FALSE(trace.quanta[0].full);
  // Quantum 2: request round(3.4) = 3: penalty 2*|3-1| = 4, budget 46;
  // 3 procs on width-4 barrier levels take 2 steps per level -> 23 levels
  // = 92 tasks.  Desire moves to 0.2*3.4 + 0.8*4 = 3.88.
  EXPECT_EQ(trace.quanta[1].allotment, 3);
  EXPECT_EQ(trace.quanta[1].work, 92);
  EXPECT_FALSE(trace.quanta[1].full);
  // Quantum 3: request 4: penalty 2, budget 48 -> 48 * 4 = 192 tasks.
  EXPECT_EQ(trace.quanta[2].allotment, 4);
  EXPECT_EQ(trace.quanta[2].work, 192);
  EXPECT_FALSE(trace.quanta[2].full);
  // Quantum 4: allotment unchanged -> no penalty, full quantum, 200 tasks.
  EXPECT_EQ(trace.quanta[3].allotment, 4);
  EXPECT_EQ(trace.quanta[3].work, 200);
  EXPECT_TRUE(trace.quanta[3].full);
}

TEST(Overhead, FullPenaltyQuantumMakesNoProgress) {
  // Cost so large the first quantum is pure migration.
  dag::ProfileJob job(workload::constant_profile(2, 40));
  const JobTrace trace = core::run_single(
      core::abg_spec(), job,
      SingleJobConfig{.processors = 8,
                      .quantum_length = 10,
                      .reallocation_cost_per_proc = 100});
  ASSERT_FALSE(trace.quanta.empty());
  EXPECT_EQ(trace.quanta[0].work, 0);
  EXPECT_EQ(trace.quanta[0].steps_used, 10);
  EXPECT_TRUE(trace.finished());  // allotment settles, penalties stop
}

TEST(Overhead, TracesStillValidate) {
  std::vector<JobSubmission> subs;
  for (int j = 0; j < 3; ++j) {
    JobSubmission s;
    s.job = std::make_unique<dag::ProfileJob>(
        workload::square_wave_profile(1, 40, 6, 40, 2));
    subs.push_back(std::move(s));
  }
  sched::BGreedyExecution exec;
  sched::AControlRequest proto;
  alloc::EquiPartition deq;
  const SimResult result = simulate_job_set(
      std::move(subs), exec, proto, deq,
      SimConfig{.processors = 16,
                .quantum_length = 25,
                .reallocation_cost_per_proc = 2});
  const auto issues = validate_result(result, 16);
  EXPECT_TRUE(issues.empty()) << (issues.empty() ? "" : issues.front());
}

TEST(Overhead, AGreedyPaysMoreThanAbgAtSteadyState) {
  // Constant parallelism: ABG settles (no further reallocation); A-Greedy
  // ping-pongs and pays migration every quantum.
  const auto make_job = [] {
    return workload::constant_parallelism_chains(10, 3000);
  };
  const SingleJobConfig config{.processors = 64,
                               .quantum_length = 100,
                               .reallocation_cost_per_proc = 3};
  const auto abg_job = make_job();
  const JobTrace abg_trace =
      core::run_single(core::abg_spec(), *abg_job, config);
  const auto ag_job = make_job();
  const JobTrace ag_trace =
      core::run_single(core::a_greedy_spec(), *ag_job, config);
  EXPECT_LT(abg_trace.response_time(), ag_trace.response_time());
  EXPECT_LT(abg_trace.total_waste(), ag_trace.total_waste());
}

}  // namespace
}  // namespace abg::sim
