#include "metrics/bounds.hpp"

#include <gtest/gtest.h>

namespace abg::metrics {
namespace {

TEST(Lemma2, RatiosAtSimpleValues) {
  // C_L = 2, r = 0.2: lower = 0.8/1.8, upper = 2*0.8/0.6.
  const Lemma2Bounds b = lemma2_bounds(2.0, 0.2);
  EXPECT_NEAR(b.lower_ratio, 0.8 / 1.8, 1e-12);
  EXPECT_NEAR(b.upper_ratio, 1.6 / 0.6, 1e-12);
}

TEST(Lemma2, OneStepConvergenceTightens) {
  // r = 0: lower = 1/C_L, upper = C_L.
  const Lemma2Bounds b = lemma2_bounds(4.0, 0.0);
  EXPECT_NEAR(b.lower_ratio, 0.25, 1e-12);
  EXPECT_NEAR(b.upper_ratio, 4.0, 1e-12);
}

TEST(Lemma2, UnitTransitionFactorPinsRequestToParallelism) {
  // C_L = 1 (constant parallelism): both ratios are 1.
  const Lemma2Bounds b = lemma2_bounds(1.0, 0.3);
  EXPECT_NEAR(b.lower_ratio, 1.0, 1e-12);
  EXPECT_NEAR(b.upper_ratio, 1.0, 1e-12);
}

TEST(Lemma2, RequiresRateBelowInverseTransition) {
  EXPECT_THROW(lemma2_bounds(5.0, 0.2), std::domain_error);
  EXPECT_THROW(lemma2_bounds(5.0, 0.25), std::domain_error);
  EXPECT_NO_THROW(lemma2_bounds(5.0, 0.19));
}

TEST(Lemma2, ValidatesInputs) {
  EXPECT_THROW(lemma2_bounds(0.5, 0.1), std::invalid_argument);
  EXPECT_THROW(lemma2_bounds(2.0, -0.1), std::invalid_argument);
  EXPECT_THROW(lemma2_bounds(2.0, 1.0), std::invalid_argument);
}

TEST(Theorem3, TrimStepsFormula) {
  // (C_L + 1 - 2r)/(1 - r) * T_inf + L with C_L=3, r=0.2, T_inf=100, L=50:
  // (3.6/0.8)*100 + 50 = 500.
  EXPECT_NEAR(theorem3_trim_steps(100, 3.0, 0.2, 50), 500.0, 1e-9);
}

TEST(Theorem3, TimeBoundFormula) {
  // 2*T1/Ptilde + trim term: 2*10000/20 + 500 = 1500.
  EXPECT_NEAR(theorem3_time_bound(10000, 100, 3.0, 0.2, 20.0, 50), 1500.0,
              1e-9);
}

TEST(Theorem3, ZeroAvailabilityDropsSpeedupTerm) {
  EXPECT_NEAR(theorem3_time_bound(10000, 100, 3.0, 0.2, 0.0, 50), 500.0,
              1e-9);
}

TEST(Theorem4, WasteBoundFormula) {
  // C_L (1-r)/(1 - C_L r) * T1 + P*L with C_L=2, r=0.2: 1.6/0.6*1000 +
  // 8*50.
  EXPECT_NEAR(theorem4_waste_bound(1000, 2.0, 0.2, 8, 50),
              1.6 / 0.6 * 1000.0 + 400.0, 1e-9);
}

TEST(Theorem4, RequiresRateCondition) {
  EXPECT_THROW(theorem4_waste_bound(1000, 5.0, 0.2, 8, 50),
               std::domain_error);
}

TEST(Theorem5, MakespanBoundFormula) {
  // c_w = (C+1-2Cr)/(1-Cr), c_t = (C+1-2r)/(1-r); C=2, r=0.2:
  // c_w = (3-0.8)/0.6 = 2.2/0.6; c_t = 2.6/0.8.
  const double expected =
      (2.2 / 0.6 + 2.6 / 0.8) * 100.0 + 50.0 * (4 + 2);
  EXPECT_NEAR(theorem5_makespan_bound(100.0, 2.0, 0.2, 50, 4), expected,
              1e-9);
}

TEST(Theorem5, ResponseBoundFormula) {
  // c_w = (2C+2-4Cr)/(1-Cr); C=2, r=0.2: (6-1.6)/0.6 = 4.4/0.6.
  const double expected =
      (4.4 / 0.6 + 2.6 / 0.8) * 100.0 + 50.0 * (4 + 2);
  EXPECT_NEAR(theorem5_response_bound(100.0, 2.0, 0.2, 50, 4), expected,
              1e-9);
}

TEST(Theorem5, RequiresRateCondition) {
  EXPECT_THROW(theorem5_makespan_bound(1.0, 10.0, 0.2, 50, 4),
               std::domain_error);
  EXPECT_THROW(theorem5_response_bound(1.0, 10.0, 0.2, 50, 4),
               std::domain_error);
}

TEST(Bounds, MonotoneInTransitionFactor) {
  // Larger C_L must never shrink any bound (sanity of the formulas).
  double prev_time = 0.0;
  double prev_waste = 0.0;
  for (double c = 1.0; c <= 4.0; c += 0.5) {
    const double t = theorem3_time_bound(1000, 100, c, 0.1, 16.0, 100);
    const double w = theorem4_waste_bound(1000, c, 0.1, 16, 100);
    EXPECT_GE(t, prev_time);
    EXPECT_GE(w, prev_waste);
    prev_time = t;
    prev_waste = w;
  }
}

}  // namespace
}  // namespace abg::metrics
