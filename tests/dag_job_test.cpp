#include "dag/dag_job.hpp"

#include <gtest/gtest.h>

#include "dag/builders.hpp"

namespace abg::dag {
namespace {

TEST(DagStructure, EdgeCount) {
  DagStructure s;
  s.children = {{1, 2}, {2}, {}};
  EXPECT_EQ(s.node_count(), 3u);
  EXPECT_EQ(s.edge_count(), 3u);
}

TEST(DagJob, RejectsSelfLoop) {
  DagStructure s;
  s.children = {{0}};
  EXPECT_THROW(DagJob{s}, std::invalid_argument);
}

TEST(DagJob, RejectsOutOfRangeEdge) {
  DagStructure s;
  s.children = {{5}};
  EXPECT_THROW(DagJob{s}, std::invalid_argument);
}

TEST(DagJob, RejectsCycle) {
  DagStructure s;
  s.children = {{1}, {2}, {0}};
  EXPECT_THROW(DagJob{s}, std::invalid_argument);
}

TEST(DagJob, EmptyJobIsFinished) {
  DagJob job{DagStructure{}};
  EXPECT_TRUE(job.finished());
  EXPECT_EQ(job.total_work(), 0);
  EXPECT_EQ(job.critical_path(), 0);
  EXPECT_EQ(job.ready_count(), 0);
  EXPECT_EQ(job.step(4, PickOrder::kFifo), 0);
}

TEST(DagJob, ChainLevelsAndCriticalPath) {
  DagJob job{builders::chain(5)};
  EXPECT_EQ(job.total_work(), 5);
  EXPECT_EQ(job.critical_path(), 5);
  for (NodeId i = 0; i < 5; ++i) {
    EXPECT_EQ(job.node_level(i), i);
  }
}

TEST(DagJob, DiamondLevels) {
  DagJob job{builders::diamond(3)};
  EXPECT_EQ(job.total_work(), 5);
  EXPECT_EQ(job.critical_path(), 3);
  EXPECT_EQ(job.node_level(0), 0u);
  EXPECT_EQ(job.node_level(1), 1u);
  EXPECT_EQ(job.node_level(2), 1u);
  EXPECT_EQ(job.node_level(3), 1u);
  EXPECT_EQ(job.node_level(4), 2u);
}

TEST(DagJob, LevelIsLongestPathNotShortest) {
  // 0 -> 2 and 0 -> 1 -> 2: node 2 is at level 2, not 1.
  DagStructure s;
  s.children = {{1, 2}, {2}, {}};
  DagJob job{s};
  EXPECT_EQ(job.node_level(2), 2u);
  EXPECT_EQ(job.critical_path(), 3);
}

TEST(DagJob, NodeLevelRejectsOutOfRange) {
  DagJob job{builders::chain(2)};
  EXPECT_THROW(job.node_level(5), std::invalid_argument);
}

TEST(DagJob, LevelSizes) {
  DagJob job{builders::diamond(4)};
  const auto& sizes = job.level_sizes();
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 1);
  EXPECT_EQ(sizes[1], 4);
  EXPECT_EQ(sizes[2], 1);
}

TEST(DagJob, ChainExecutesOneTaskPerStepRegardlessOfProcs) {
  DagJob job{builders::chain(4)};
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(job.finished());
    EXPECT_EQ(job.step(8, PickOrder::kBreadthFirst), 1);
  }
  EXPECT_TRUE(job.finished());
  EXPECT_EQ(job.completed_work(), 4);
}

TEST(DagJob, ChildrenBecomeReadyOnlyNextStep) {
  // Diamond: step 1 can only run the source even with many processors.
  DagJob job{builders::diamond(3)};
  EXPECT_EQ(job.ready_count(), 1);
  EXPECT_EQ(job.step(10, PickOrder::kBreadthFirst), 1);
  EXPECT_EQ(job.ready_count(), 3);
  EXPECT_EQ(job.step(10, PickOrder::kBreadthFirst), 3);
  EXPECT_EQ(job.step(10, PickOrder::kBreadthFirst), 1);
  EXPECT_TRUE(job.finished());
}

TEST(DagJob, StepHonorsProcessorLimit) {
  DagJob job{builders::diamond(5)};
  job.step(1, PickOrder::kBreadthFirst);
  EXPECT_EQ(job.step(2, PickOrder::kBreadthFirst), 2);
  EXPECT_EQ(job.step(2, PickOrder::kBreadthFirst), 2);
  EXPECT_EQ(job.step(2, PickOrder::kBreadthFirst), 1);
}

TEST(DagJob, ZeroProcessorsDoNothing) {
  DagJob job{builders::chain(2)};
  EXPECT_EQ(job.step(0, PickOrder::kFifo), 0);
  EXPECT_EQ(job.completed_work(), 0);
}

TEST(DagJob, NegativeProcessorsThrow) {
  DagJob job{builders::chain(2)};
  EXPECT_THROW(job.step(-1, PickOrder::kFifo), std::invalid_argument);
}

TEST(DagJob, LevelProgressFractional) {
  DagJob job{builders::diamond(4)};  // levels of sizes 1, 4, 1
  EXPECT_DOUBLE_EQ(job.level_progress(), 0.0);
  job.step(10, PickOrder::kBreadthFirst);  // source done
  EXPECT_DOUBLE_EQ(job.level_progress(), 1.0);
  job.step(2, PickOrder::kBreadthFirst);  // half the middle level
  EXPECT_DOUBLE_EQ(job.level_progress(), 1.5);
  job.step(2, PickOrder::kBreadthFirst);
  EXPECT_DOUBLE_EQ(job.level_progress(), 2.0);
  job.step(2, PickOrder::kBreadthFirst);  // sink
  EXPECT_DOUBLE_EQ(job.level_progress(), 3.0);
  EXPECT_TRUE(job.finished());
}

TEST(DagJob, BreadthFirstPrefersLowerLevels) {
  // Two independent chains of different structure: one source at level 0,
  // plus a node at level 1 already ready?  Construct: nodes 0,1 sources;
  // 0 -> 2.  After running node 0 and 1... instead simpler: sources at
  // level 0 = {0, 1}; 0 -> 2 (level 1).  With 1 processor per step,
  // breadth-first must run both level-0 sources before node 2.
  DagStructure s;
  s.children = {{2}, {}, {}};
  DagJob job{s};
  job.enable_completion_recording();
  job.step(1, PickOrder::kBreadthFirst);
  job.step(1, PickOrder::kBreadthFirst);
  job.step(1, PickOrder::kBreadthFirst);
  EXPECT_TRUE(job.finished());
  // Node 1 (level 0) completed before node 2 (level 1).
  EXPECT_LT(*job.completion_step(1), *job.completion_step(2));
}

TEST(DagJob, BGreedyLevelOrderInvariant) {
  // Paper Section 2: no task at level l completes later than any task at
  // level l+1 under B-Greedy.
  util::Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    DagJob job{builders::random_layered(rng, 12, 6, 0.4)};
    job.enable_completion_recording();
    util::Rng procs_rng = rng.split();
    while (!job.finished()) {
      job.step(static_cast<int>(procs_rng.uniform_int(1, 5)),
               PickOrder::kBreadthFirst);
    }
    const auto n = static_cast<NodeId>(job.total_work());
    for (NodeId a = 0; a < n; ++a) {
      for (NodeId b = 0; b < n; ++b) {
        if (job.node_level(a) + 1 == job.node_level(b)) {
          EXPECT_LE(*job.completion_step(a), *job.completion_step(b))
              << "level " << job.node_level(a) << " task finished after a "
              << "level " << job.node_level(b) << " task";
        }
      }
    }
  }
}

TEST(DagJob, FifoOrderCanViolateLevelOrder) {
  // Under FIFO the level-order invariant does not generally hold; this
  // documents the behavioural difference B-Greedy introduces.  Sources
  // 0 and 1; 0 -> 2.  FIFO runs 0, then (1, 2) are queued as [1, 2] — but
  // with 2 processors both run in one step, so completion times tie; use
  // one processor and check node 2 *can* complete before... with FIFO
  // order [1, 2], 1 runs first.  Make node 2 arrive before a later source
  // becomes ready: 0 -> 2, 1 independent, but 1 only becomes ready later
  // via 3 -> 1.  Nodes: 0, 3 sources; 0->2 (level 1); 3->1 (level 1).
  // FIFO after step 1 (runs 0 and 3): queue [2, 1]; both level 1 — not a
  // violation.  Instead: 0 source; 0->2->4 chain; 3 source with 3->1,
  // 1->5... Simplest demonstrable difference: deep chain vs wide level.
  DagStructure s;
  // 0 -> 1 -> 2 (chain, levels 0,1,2); 3, 4 sources (level 0).
  s.children = {{1}, {2}, {}, {}, {}};
  DagJob job{s};
  job.enable_completion_recording();
  // FIFO initial queue: [0, 3, 4].  1 processor.
  job.step(1, PickOrder::kFifo);  // runs 0; queue [3, 4, 1]
  job.step(1, PickOrder::kFifo);  // runs 3
  job.step(1, PickOrder::kFifo);  // runs 4
  job.step(1, PickOrder::kFifo);  // runs 1; queue [2]
  job.step(1, PickOrder::kFifo);  // runs 2
  EXPECT_TRUE(job.finished());
  // Level-1 task (node 1) completed after level-0 tasks, consistent here,
  // but node 1 completed at step 4 while the BF order would have completed
  // it at step 2 after its parent — FIFO delayed the chain behind the
  // unrelated sources.
  EXPECT_EQ(*job.completion_step(1), 4);
}

TEST(DagJob, FreshCloneRestartsFromScratch) {
  DagJob job{builders::diamond(3)};
  job.step(10, PickOrder::kBreadthFirst);
  job.step(10, PickOrder::kBreadthFirst);
  EXPECT_GT(job.completed_work(), 0);
  const auto clone = job.fresh_clone();
  EXPECT_EQ(clone->completed_work(), 0);
  EXPECT_FALSE(clone->finished());
  EXPECT_EQ(clone->total_work(), job.total_work());
  EXPECT_EQ(clone->critical_path(), job.critical_path());
  EXPECT_DOUBLE_EQ(clone->level_progress(), 0.0);
}

TEST(DagJob, CompletionRecordingMustPrecedeExecution) {
  DagJob job{builders::chain(2)};
  job.step(1, PickOrder::kFifo);
  EXPECT_THROW(job.enable_completion_recording(), std::logic_error);
}

TEST(DagJob, CompletionStepUnavailableWithoutRecording) {
  DagJob job{builders::chain(2)};
  job.step(1, PickOrder::kFifo);
  EXPECT_FALSE(job.completion_step(0).has_value());
}

TEST(DagJob, CompletionStepUnavailableForUnexecutedTask) {
  DagJob job{builders::chain(2)};
  job.enable_completion_recording();
  job.step(1, PickOrder::kFifo);
  EXPECT_TRUE(job.completion_step(0).has_value());
  EXPECT_FALSE(job.completion_step(1).has_value());
}

TEST(DagJob, RunQuantumDefaultLoopMatchesManualSteps) {
  DagJob a{builders::diamond(6)};
  DagJob b{builders::diamond(6)};
  const QuantumExecution exec = a.run_quantum(2, 4, PickOrder::kBreadthFirst);
  TaskCount manual_work = 0;
  for (int s = 0; s < 4 && !b.finished(); ++s) {
    manual_work += b.step(2, PickOrder::kBreadthFirst);
  }
  EXPECT_EQ(exec.work, manual_work);
  EXPECT_EQ(exec.steps, 4);
  EXPECT_DOUBLE_EQ(exec.cpl, b.level_progress());
  EXPECT_EQ(exec.finished, b.finished());
}

TEST(DagJob, RunQuantumStopsWhenFinished) {
  DagJob job{builders::chain(3)};
  const QuantumExecution exec = job.run_quantum(1, 10, PickOrder::kFifo);
  EXPECT_TRUE(exec.finished);
  EXPECT_EQ(exec.steps, 3);
  EXPECT_EQ(exec.work, 3);
  EXPECT_EQ(exec.idle_steps, 0);
}

TEST(DagJob, RunQuantumRejectsNegativeArguments) {
  DagJob job{builders::chain(3)};
  EXPECT_THROW(job.run_quantum(-1, 5, PickOrder::kFifo),
               std::invalid_argument);
  EXPECT_THROW(job.run_quantum(1, -5, PickOrder::kFifo),
               std::invalid_argument);
}

TEST(DagJob, DuplicateEdgesAreHarmless) {
  DagStructure s;
  s.children = {{1, 1}, {}};
  DagJob job{s};
  EXPECT_EQ(job.step(2, PickOrder::kFifo), 1);
  EXPECT_EQ(job.step(2, PickOrder::kFifo), 1);
  EXPECT_TRUE(job.finished());
  EXPECT_EQ(job.completed_work(), 2);
}

}  // namespace
}  // namespace abg::dag
