#include "open/arrival_process.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "util/rng.hpp"

namespace abg::open {
namespace {

std::vector<Arrival> draw(ArrivalProcess& process, std::uint64_t seed,
                          int count) {
  util::Rng rng = util::Rng::derive(seed, 1);
  process.reset();
  std::vector<Arrival> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    out.push_back(process.next(rng));
  }
  return out;
}

double empirical_mean_gap(const std::vector<Arrival>& arrivals) {
  return static_cast<double>(arrivals.back().release) /
         static_cast<double>(arrivals.size() - 1);
}

TEST(ArrivalKindNames, RoundTrip) {
  for (const ArrivalKind kind :
       {ArrivalKind::kNone, ArrivalKind::kPoisson, ArrivalKind::kMmpp,
        ArrivalKind::kDiurnal, ArrivalKind::kHeavyTail,
        ArrivalKind::kTrace}) {
    EXPECT_EQ(arrival_kind_from_name(to_string(kind)), kind);
  }
  EXPECT_THROW(arrival_kind_from_name("warp"), std::invalid_argument);
}

TEST(ArrivalProcesses, ReleasesMonotoneNonDecreasing) {
  for (const ArrivalKind kind :
       {ArrivalKind::kPoisson, ArrivalKind::kMmpp, ArrivalKind::kDiurnal,
        ArrivalKind::kHeavyTail}) {
    ArrivalConfig config;
    config.mean_gap = 40.0;
    const auto process = make_arrival_process(kind, config);
    const std::vector<Arrival> arrivals = draw(*process, 11, 500);
    EXPECT_EQ(arrivals.front().release, 0) << process->name();
    for (std::size_t i = 1; i < arrivals.size(); ++i) {
      EXPECT_GE(arrivals[i].release, arrivals[i - 1].release)
          << process->name() << " entry " << i;
    }
  }
}

TEST(ArrivalProcesses, DeterministicUnderDerivedStreams) {
  // (kind, config, seed) fully determines the stream: re-deriving the
  // same Rng and resetting the process replays it exactly.
  for (const ArrivalKind kind :
       {ArrivalKind::kPoisson, ArrivalKind::kMmpp, ArrivalKind::kDiurnal,
        ArrivalKind::kHeavyTail}) {
    ArrivalConfig config;
    config.mean_gap = 25.0;
    const auto process = make_arrival_process(kind, config);
    const std::vector<Arrival> first = draw(*process, 42, 200);
    const std::vector<Arrival> second = draw(*process, 42, 200);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
      EXPECT_EQ(first[i].release, second[i].release) << process->name();
      EXPECT_EQ(first[i].work_scale, second[i].work_scale)
          << process->name();
    }
    // A different stream index produces a different schedule.
    const std::vector<Arrival> other = draw(*process, 43, 200);
    EXPECT_NE(first.back().release, other.back().release)
        << process->name();
  }
}

TEST(ArrivalProcesses, PoissonEmpiricalMeanGap) {
  ArrivalConfig config;
  config.mean_gap = 100.0;
  const auto process =
      make_arrival_process(ArrivalKind::kPoisson, config);
  const std::vector<Arrival> arrivals = draw(*process, 7, 4000);
  EXPECT_NEAR(empirical_mean_gap(arrivals), 100.0, 10.0);
  for (const Arrival& a : arrivals) {
    EXPECT_EQ(a.work_scale, 1.0);
  }
}

TEST(ArrivalProcesses, MmppStationaryMeanGapMatchesConfig) {
  // Burst and calm regime gaps average to mean_gap under the symmetric
  // switch chain, whatever the burst factor.
  for (const double burst : {2.0, 8.0}) {
    ArrivalConfig config;
    config.mean_gap = 80.0;
    config.burst_factor = burst;
    config.switch_probability = 0.1;
    const auto process = make_arrival_process(ArrivalKind::kMmpp, config);
    const std::vector<Arrival> arrivals = draw(*process, 17, 8000);
    EXPECT_NEAR(empirical_mean_gap(arrivals), 80.0, 12.0)
        << "burst factor " << burst;
  }
}

TEST(ArrivalProcesses, MmppBurstinessRaisesGapVariance) {
  ArrivalConfig calm_config;
  calm_config.mean_gap = 50.0;
  ArrivalConfig bursty_config = calm_config;
  bursty_config.burst_factor = 16.0;
  bursty_config.switch_probability = 0.02;
  const auto poisson =
      make_arrival_process(ArrivalKind::kPoisson, calm_config);
  const auto mmpp =
      make_arrival_process(ArrivalKind::kMmpp, bursty_config);
  const auto gap_variance = [](const std::vector<Arrival>& arrivals) {
    const double mean = empirical_mean_gap(arrivals);
    double sum = 0.0;
    for (std::size_t i = 1; i < arrivals.size(); ++i) {
      const double gap = static_cast<double>(arrivals[i].release -
                                             arrivals[i - 1].release);
      sum += (gap - mean) * (gap - mean);
    }
    return sum / static_cast<double>(arrivals.size() - 1);
  };
  EXPECT_GT(gap_variance(draw(*mmpp, 5, 4000)),
            gap_variance(draw(*poisson, 5, 4000)));
}

TEST(ArrivalProcesses, DiurnalMeanGapNearConfigOverFullPeriods) {
  ArrivalConfig config;
  config.mean_gap = 50.0;
  config.period = 4000;
  config.amplitude = 0.6;
  const auto process =
      make_arrival_process(ArrivalKind::kDiurnal, config);
  const std::vector<Arrival> arrivals = draw(*process, 23, 8000);
  // The triangle modulation averages out over whole periods.
  EXPECT_NEAR(empirical_mean_gap(arrivals), 50.0, 10.0);
}

TEST(ArrivalProcesses, HeavyTailScalesBoundedWithParetoMean) {
  ArrivalConfig config;
  config.mean_gap = 30.0;
  config.tail_alpha = 1.5;
  config.tail_cap = 64.0;
  const auto process =
      make_arrival_process(ArrivalKind::kHeavyTail, config);
  const std::vector<Arrival> arrivals = draw(*process, 31, 8000);
  double sum = 0.0;
  for (const Arrival& a : arrivals) {
    EXPECT_GE(a.work_scale, 1.0);
    EXPECT_LE(a.work_scale, 64.0);
    sum += a.work_scale;
  }
  // Bounded-Pareto mean: a/(a-1) * (1 - cap^(1-a)) / (1 - cap^-a) ~ 2.65
  // at alpha 1.5, cap 64.
  EXPECT_NEAR(sum / static_cast<double>(arrivals.size()), 2.65, 0.4);
}

TEST(ArrivalProcesses, ValidationRejectsDegenerateConfigs) {
  ArrivalConfig config;
  config.mean_gap = 0.5;  // sub-step mean degenerates to batched release
  for (const ArrivalKind kind :
       {ArrivalKind::kPoisson, ArrivalKind::kMmpp, ArrivalKind::kDiurnal,
        ArrivalKind::kHeavyTail}) {
    EXPECT_THROW(make_arrival_process(kind, config), std::invalid_argument);
  }
  config.mean_gap = 2e12;  // would overflow the truncation bound
  EXPECT_THROW(make_arrival_process(ArrivalKind::kPoisson, config),
               std::invalid_argument);
  config.mean_gap = 100.0;
  config.burst_factor = 0.5;
  EXPECT_THROW(make_arrival_process(ArrivalKind::kMmpp, config),
               std::invalid_argument);
  config.burst_factor = 4.0;
  config.switch_probability = 0.0;
  EXPECT_THROW(make_arrival_process(ArrivalKind::kMmpp, config),
               std::invalid_argument);
  config.switch_probability = 0.05;
  config.amplitude = 1.0;
  EXPECT_THROW(make_arrival_process(ArrivalKind::kDiurnal, config),
               std::invalid_argument);
  config.amplitude = 0.8;
  config.tail_alpha = 0.0;
  EXPECT_THROW(make_arrival_process(ArrivalKind::kHeavyTail, config),
               std::invalid_argument);
  EXPECT_THROW(make_arrival_process(ArrivalKind::kNone, {}),
               std::invalid_argument);
  EXPECT_THROW(make_arrival_process(ArrivalKind::kTrace, {}),
               std::invalid_argument);
}

TEST(TraceArrivals, ReplaysEntriesThenTilesMonotonically) {
  const std::vector<Arrival> entries = {
      {0, 1.0}, {10, 2.0}, {30, 1.0}};
  const auto process = make_trace_arrivals(entries);
  util::Rng rng(1);
  std::vector<Arrival> seen;
  for (int i = 0; i < 9; ++i) {
    seen.push_back(process->next(rng));
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].work_scale, entries[i % 3].work_scale);
    if (i > 0) {
      EXPECT_GT(seen[i].release, seen[i - 1].release) << "entry " << i;
    }
  }
  // reset() rewinds to the untiled start.
  process->reset();
  EXPECT_EQ(process->next(rng).release, 0);
}

TEST(TraceArrivals, ValidatesEntries) {
  EXPECT_THROW(make_trace_arrivals({}), std::invalid_argument);
  EXPECT_THROW(make_trace_arrivals({{-1, 1.0}}), std::invalid_argument);
  EXPECT_THROW(make_trace_arrivals({{10, 1.0}, {5, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(make_trace_arrivals({{0, 0.0}}), std::invalid_argument);
  EXPECT_THROW(make_trace_arrivals({{0, -2.0}}), std::invalid_argument);
}

TEST(TraceIo, JsonlRoundTripIsExact) {
  const std::vector<Arrival> entries = {
      {0, 1.0}, {7, 3.5}, {7, 1.0}, {120, 0.25}};
  std::stringstream stream;
  write_arrival_trace(stream, entries);
  const std::vector<Arrival> parsed = read_arrival_trace(stream);
  ASSERT_EQ(parsed.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(parsed[i].release, entries[i].release);
    EXPECT_EQ(parsed[i].work_scale, entries[i].work_scale);
  }
}

TEST(TraceIo, DefaultWorkScaleOmittedAndRestored) {
  std::stringstream stream;
  write_arrival_trace(stream, {{5, 1.0}});
  EXPECT_EQ(stream.str(), "{\"release\":5}\n");
  const std::vector<Arrival> parsed = read_arrival_trace(stream);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].work_scale, 1.0);
}

TEST(TraceIo, ReaderNamesOffendingLine) {
  std::stringstream garbage("{\"release\":0}\nnot json\n");
  try {
    read_arrival_trace(garbage);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  std::stringstream negative("{\"release\":-3}\n");
  EXPECT_THROW(read_arrival_trace(negative), std::invalid_argument);
  std::stringstream unordered("{\"release\":9}\n{\"release\":2}\n");
  EXPECT_THROW(read_arrival_trace(unordered), std::invalid_argument);
  std::stringstream blank_ok("{\"release\":1}\n\n{\"release\":4}\n");
  EXPECT_EQ(read_arrival_trace(blank_ok).size(), 2u);
}

}  // namespace
}  // namespace abg::open
