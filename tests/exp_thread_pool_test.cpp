#include "exp/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace abg::exp {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, SingleThreadPoolIsSequential) {
  // With one worker, tasks run in submission order — no slot is written
  // out of turn.
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1);
  std::vector<int> order;
  for (int i = 0; i < 32; ++i) {
    pool.submit([&order, i] { order.push_back(i); });
  }
  pool.wait();
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(ThreadPool, ThreadCountIsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1);
  ThreadPool negative(-7);
  EXPECT_EQ(negative.thread_count(), 1);
}

TEST(ThreadPool, WaitRethrowsFirstTaskException) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  pool.submit([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 16; ++i) {
    pool.submit([&completed] { completed.fetch_add(1); });
  }
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // Independent tasks still ran despite the failure.
  EXPECT_EQ(completed.load(), 16);
  // The error is cleared: the pool remains usable.
  pool.submit([&completed] { completed.fetch_add(1); });
  EXPECT_NO_THROW(pool.wait());
  EXPECT_EQ(completed.load(), 17);
}

TEST(ThreadPool, SubmitFromWithinATask) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&pool, &count] {
    count.fetch_add(1);
    for (int i = 0; i < 8; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
  });
  pool.wait();
  EXPECT_EQ(count.load(), 9);
}

TEST(ThreadPool, ResolveThreadsHonoursExplicitRequest) {
  EXPECT_EQ(ThreadPool::resolve_threads(3), 3);
  EXPECT_EQ(ThreadPool::resolve_threads(1), 1);
  EXPECT_GE(ThreadPool::resolve_threads(0), 1);
  EXPECT_GE(ThreadPool::resolve_threads(-1), 1);
}

}  // namespace
}  // namespace abg::exp
