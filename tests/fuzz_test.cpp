// Randomized cross-cutting stress tests: random workloads x random
// schedulers x random allocators x random machine configs, every produced
// trace pushed through the consistency validator and cross-checked against
// global invariants.  These are the tests that catch interaction bugs no
// focused unit test anticipates.
#include <gtest/gtest.h>

#include <memory>

#include "alloc/availability_profile.hpp"
#include "alloc/equipartition.hpp"
#include "alloc/round_robin.hpp"
#include "alloc/unconstrained.hpp"
#include "core/run.hpp"
#include "sim/async_simulator.hpp"
#include "dag/builders.hpp"
#include "dag/dag_job.hpp"
#include "dag/profile_job.hpp"
#include "sim/validate.hpp"
#include "steal/schedulers.hpp"
#include "steal/work_stealing_job.hpp"
#include "workload/fork_join.hpp"
#include "workload/profiles.hpp"

namespace abg {
namespace {

std::unique_ptr<dag::Job> random_job(util::Rng& rng) {
  switch (rng.uniform_int(0, 5)) {
    case 0:
      return std::make_unique<dag::ProfileJob>(
          workload::random_walk_profile(rng, rng.uniform_int(1, 300), 24,
                                        2.0));
    case 1: {
      workload::ForkJoinSpec spec;
      spec.transition_factor = static_cast<double>(rng.uniform_int(1, 24));
      spec.phase_pairs = static_cast<int>(rng.uniform_int(1, 4));
      spec.min_phase_levels = 5;
      spec.max_phase_levels = 120;
      return workload::make_fork_join_job(rng, spec);
    }
    case 2:
      return std::make_unique<dag::DagJob>(dag::builders::random_layered(
          rng, rng.uniform_int(1, 40), rng.uniform_int(1, 10), 0.3));
    case 3:
      return std::make_unique<dag::DagJob>(dag::builders::series_parallel(
          rng, static_cast<int>(rng.uniform_int(0, 5)), 3));
    case 4:
      return std::make_unique<steal::WorkStealingJob>(
          dag::builders::random_layered(rng, rng.uniform_int(1, 30),
                                        rng.uniform_int(1, 8), 0.4),
          rng.engine()());
    default: {
      const auto width = rng.uniform_int(1, 12);
      std::vector<dag::Steps> durations(static_cast<std::size_t>(width) + 2);
      for (auto& d : durations) {
        d = rng.uniform_int(1, 9);
      }
      return std::make_unique<dag::DagJob>(dag::builders::expand_weighted(
          dag::builders::diamond(width), durations));
    }
  }
}

core::SchedulerSpec random_scheduler(util::Rng& rng, int processors) {
  switch (rng.uniform_int(0, 4)) {
    case 0:
      return core::abg_spec(
          core::AbgConfig{.convergence_rate = rng.uniform_real(0.0, 0.9)});
    case 1:
      return core::a_greedy_spec();
    case 2:
      return core::abg_auto_spec();
    case 3:
      return core::static_spec(
          static_cast<int>(rng.uniform_int(1, processors)));
    default:
      return core::SchedulerSpec{
          "filtered",
          std::make_unique<sched::BGreedyExecution>(),
          std::make_unique<sched::FilteredAControlRequest>(
              sched::FilteredAControlConfig{0.2,
                                            rng.uniform_real(0.1, 1.0)})};
  }
}

std::unique_ptr<alloc::Allocator> random_allocator(util::Rng& rng,
                                                   int processors) {
  switch (rng.uniform_int(0, 3)) {
    case 0:
      return std::make_unique<alloc::EquiPartition>();
    case 1:
      return std::make_unique<alloc::RoundRobin>();
    case 2:
      return std::make_unique<alloc::Unconstrained>();
    default: {
      std::vector<int> availability;
      const auto entries = rng.uniform_int(1, 16);
      for (int i = 0; i < entries; ++i) {
        availability.push_back(
            static_cast<int>(rng.uniform_int(1, processors)));
      }
      return std::make_unique<alloc::AvailabilityProfile>(
          std::move(availability));
    }
  }
}

class Fuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Fuzz, SingleJobTracesAlwaysValidate) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    const int processors = static_cast<int>(rng.uniform_int(1, 64));
    const auto job = random_job(rng);
    const auto spec = random_scheduler(rng, processors);
    const auto allocator = random_allocator(rng, processors);
    sim::SingleJobConfig config{
        .processors = processors,
        .quantum_length = rng.uniform_int(1, 60),
        .reallocation_cost_per_proc = rng.uniform_int(0, 1)};
    if (config.quantum_length < 8) {
      config.reallocation_cost_per_proc = 0;  // avoid by-design livelock
    }
    const sim::JobTrace trace =
        core::run_single(spec, *job, config, allocator.get());

    const auto issues = sim::validate_trace(trace);
    ASSERT_TRUE(issues.empty())
        << spec.name << " on " << allocator->name() << ": "
        << issues.front();
    ASSERT_TRUE(trace.finished());
    ASSERT_EQ(trace.work, job->total_work());
    ASSERT_GE(trace.response_time(), trace.critical_path);
    // Lower bound: a machine of P processors cannot beat T1/P rounded up.
    ASSERT_GE(trace.response_time(),
              (trace.work + processors - 1) / processors);
  }
}

TEST_P(Fuzz, JobSetResultsAlwaysValidate) {
  util::Rng rng(GetParam() ^ 0xF00DULL);
  for (int trial = 0; trial < 3; ++trial) {
    const int processors = static_cast<int>(rng.uniform_int(2, 32));
    const auto jobs = rng.uniform_int(1, 6);
    std::vector<sim::JobSubmission> subs;
    for (int j = 0; j < jobs; ++j) {
      sim::JobSubmission s;
      // Keep the set to centralized job types (work stealing included via
      // single-job fuzzing above).
      util::Rng job_rng = rng.split();
      s.job = std::make_unique<dag::ProfileJob>(
          workload::random_walk_profile(job_rng, rng.uniform_int(1, 150),
                                        16, 2.0));
      s.release_step = rng.uniform_int(0, 200);
      subs.push_back(std::move(s));
    }
    const auto spec = random_scheduler(rng, processors);
    auto allocator = std::make_unique<alloc::EquiPartition>();
    const bool use_async = rng.bernoulli(0.3);
    sim::SimConfig config{
        .processors = processors,
        .quantum_length = rng.uniform_int(1, 40),
        .max_active_jobs =
            static_cast<int>(rng.uniform_int(1, processors)),
        .reallocation_cost_per_proc = rng.uniform_int(0, 1)};
    if (use_async || config.quantum_length < 8) {
      // Tiny quanta with migration charges can livelock by design (every
      // quantum consumed by reallocation); that regime is exercised
      // deliberately in overhead_test, not fuzzed.
      config.reallocation_cost_per_proc = 0;
    }
    const sim::SimResult result =
        use_async ? sim::simulate_job_set_async(std::move(subs),
                                                *spec.execution,
                                                *spec.request, config)
                  : core::run_set(spec, std::move(subs), config,
                                  allocator.get());
    const auto issues = sim::validate_result(result, processors);
    ASSERT_TRUE(issues.empty())
        << spec.name << (use_async ? " (async)" : "") << ": "
        << issues.front();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz,
                         ::testing::Range<std::uint64_t>(1u, 13u),
                         [](const auto& param_info) {
                           return "Seed" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace abg
