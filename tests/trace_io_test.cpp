#include "sim/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/run.hpp"
#include "dag/profile_job.hpp"
#include "fault/fault_plan.hpp"
#include "workload/profiles.hpp"

namespace abg::sim {
namespace {

JobTrace sample_trace() {
  dag::ProfileJob job(workload::square_wave_profile(1, 20, 6, 20, 2));
  return core::run_single(
      core::abg_spec(), job,
      SingleJobConfig{.processors = 16, .quantum_length = 15});
}

void expect_round_trips(const JobTrace& original) {
  std::stringstream buffer;
  write_trace_csv(buffer, original);
  const JobTrace parsed = read_trace_csv(buffer);
  ASSERT_EQ(parsed.quanta.size(), original.quanta.size());
  for (std::size_t i = 0; i < original.quanta.size(); ++i) {
    const auto& a = original.quanta[i];
    const auto& b = parsed.quanta[i];
    EXPECT_EQ(a.index, b.index) << "quantum " << i;
    EXPECT_EQ(a.start_step, b.start_step) << "quantum " << i;
    EXPECT_EQ(a.request, b.request) << "quantum " << i;
    EXPECT_EQ(a.allotment, b.allotment) << "quantum " << i;
    EXPECT_EQ(a.available, b.available) << "quantum " << i;
    EXPECT_EQ(a.length, b.length) << "quantum " << i;
    EXPECT_EQ(a.steps_used, b.steps_used) << "quantum " << i;
    EXPECT_EQ(a.work, b.work) << "quantum " << i;
    EXPECT_NEAR(a.cpl, b.cpl, 1e-9) << "quantum " << i;
    EXPECT_EQ(a.full, b.full) << "quantum " << i;
    EXPECT_EQ(a.finished, b.finished) << "quantum " << i;
  }
}

std::vector<JobSubmission> two_job_set() {
  std::vector<JobSubmission> subs;
  for (int j = 0; j < 2; ++j) {
    JobSubmission s;
    s.job = std::make_unique<dag::ProfileJob>(
        workload::square_wave_profile(2, 24, 8, 40, 3));
    subs.push_back(std::move(s));
  }
  return subs;
}

SimResult faulted_run(fault::WorkLoss work_loss, EngineKind engine) {
  fault::FaultPlan plan = fault::periodic_crash_plan(
      /*job=*/0, /*first_step=*/30, /*period=*/90, /*count=*/2);
  plan.work_loss = work_loss;
  SimConfig config{.processors = 8, .quantum_length = 20};
  config.faults = &plan;
  config.engine = engine;
  return core::run_set(core::abg_spec(), two_job_set(), config);
}

TEST(TraceIo, RoundTripPreservesQuanta) { expect_round_trips(sample_trace()); }

TEST(TraceIo, CheckpointCrashTraceRoundTrips) {
  // Crash-voided quanta (steps_used < length, not finished) must survive
  // the CSV round-trip exactly; the crashed job keeps its pre-crash quanta
  // under checkpoint semantics.
  const SimResult result =
      faulted_run(fault::WorkLoss::kCheckpointQuantum, EngineKind::kSync);
  ASSERT_FALSE(result.fault_log.crashes.empty());
  for (const JobTrace& trace : result.jobs) {
    expect_round_trips(trace);
  }
}

TEST(TraceIo, ScratchCrashTraceRoundTrips) {
  // Restart-from-scratch clears the crashed job's trace; whatever quanta
  // remain (the rerun) must still round-trip.
  const SimResult result =
      faulted_run(fault::WorkLoss::kRestartFromScratch, EngineKind::kSync);
  ASSERT_FALSE(result.fault_log.crashes.empty());
  for (const JobTrace& trace : result.jobs) {
    expect_round_trips(trace);
  }
}

TEST(TraceIo, AsyncEngineTraceRoundTrips) {
  // The asynchronous engine's averaged allotments and per-job boundaries
  // produce quantum rows the sync engine never emits; the CSV format must
  // carry them unchanged.
  const SimResult result =
      faulted_run(fault::WorkLoss::kCheckpointQuantum, EngineKind::kAsync);
  ASSERT_TRUE(result.averaged_allotments);
  for (const JobTrace& trace : result.jobs) {
    expect_round_trips(trace);
  }
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  std::stringstream buffer;
  write_trace_csv(buffer, JobTrace{});
  EXPECT_TRUE(read_trace_csv(buffer).quanta.empty());
}

TEST(TraceIo, RejectsMissingHeader) {
  std::stringstream buffer("1,2,3\n");
  EXPECT_THROW(read_trace_csv(buffer), std::invalid_argument);
}

TEST(TraceIo, RejectsWrongColumnCount) {
  std::stringstream buffer;
  buffer << "index,start_step,request,allotment,available,length,"
         << "steps_used,work,cpl,full,finished\n1,2,3\n";
  EXPECT_THROW(read_trace_csv(buffer), std::invalid_argument);
}

TEST(TraceIo, RejectsMalformedNumbers) {
  std::stringstream buffer;
  buffer << "index,start_step,request,allotment,available,length,"
         << "steps_used,work,cpl,full,finished\n"
         << "x,0,1,1,1,10,10,10,5.0,1,0\n";
  EXPECT_THROW(read_trace_csv(buffer), std::invalid_argument);
}

TEST(TraceIo, RejectsEmptyStream) {
  std::stringstream buffer("");
  EXPECT_THROW(read_trace_csv(buffer), std::invalid_argument);
}

TEST(TraceIo, RejectsTruncatedRow) {
  // A row cut off mid-record (e.g. a crashed writer) has too few cells.
  std::stringstream buffer;
  buffer << "index,start_step,request,allotment,available,length,"
         << "steps_used,work,cpl,full,finished\n"
         << "1,0,1,1,1,10,10,10,5.0,1,0\n"
         << "2,10,1,1,1,10\n";
  EXPECT_THROW(read_trace_csv(buffer), std::invalid_argument);
}

TEST(TraceIo, RejectsExtraColumns) {
  std::stringstream buffer;
  buffer << "index,start_step,request,allotment,available,length,"
         << "steps_used,work,cpl,full,finished\n"
         << "1,0,1,1,1,10,10,10,5.0,1,0,99\n";
  EXPECT_THROW(read_trace_csv(buffer), std::invalid_argument);
}

TEST(TraceIo, RejectsNonNumericCellsInEveryNumericColumn) {
  const char* rows[] = {
      "oops,0,1,1,1,10,10,10,5.0,1,0",  // index
      "1,oops,1,1,1,10,10,10,5.0,1,0",  // start_step
      "1,0,oops,1,1,10,10,10,5.0,1,0",  // request
      "1,0,1,oops,1,10,10,10,5.0,1,0",  // allotment
      "1,0,1,1,oops,10,10,10,5.0,1,0",  // available
      "1,0,1,1,1,oops,10,10,5.0,1,0",   // length
      "1,0,1,1,1,10,oops,10,5.0,1,0",   // steps_used
      "1,0,1,1,1,10,10,oops,5.0,1,0",   // work
      "1,0,1,1,1,10,10,10,oops,1,0",    // cpl
  };
  for (const char* row : rows) {
    std::stringstream buffer;
    buffer << "index,start_step,request,allotment,available,length,"
           << "steps_used,work,cpl,full,finished\n"
           << row << '\n';
    EXPECT_THROW(read_trace_csv(buffer), std::invalid_argument)
        << "accepted row: " << row;
  }
}

TEST(TraceIo, RejectsOutOfRangeValues) {
  // Values that overflow the target integer types must be rejected, not
  // silently wrapped.
  const char* rows[] = {
      // request overflows int.
      "1,0,99999999999,1,1,10,10,10,5.0,1,0",
      // index overflows int64.
      "99999999999999999999999,0,1,1,1,10,10,10,5.0,1,0",
      // work overflows int64.
      "1,0,1,1,1,10,10,99999999999999999999999,5.0,1,0",
  };
  for (const char* row : rows) {
    std::stringstream buffer;
    buffer << "index,start_step,request,allotment,available,length,"
           << "steps_used,work,cpl,full,finished\n"
           << row << '\n';
    EXPECT_THROW(read_trace_csv(buffer), std::invalid_argument)
        << "accepted row: " << row;
  }
}

TEST(TraceIo, ResultSummaryShape) {
  std::vector<JobSubmission> subs;
  for (int j = 0; j < 2; ++j) {
    JobSubmission s;
    s.job = std::make_unique<dag::ProfileJob>(
        workload::constant_profile(3, 30));
    subs.push_back(std::move(s));
  }
  const SimResult result = core::run_set(
      core::abg_spec(), std::move(subs),
      SimConfig{.processors = 8, .quantum_length = 10});
  std::stringstream buffer;
  write_result_csv(buffer, result);
  std::string line;
  std::getline(buffer, line);
  EXPECT_EQ(line,
            "job,release,completion,response,work,critical_path,waste,"
            "quanta");
  int rows = 0;
  while (std::getline(buffer, line)) {
    if (!line.empty()) {
      ++rows;
    }
  }
  EXPECT_EQ(rows, 2);
}

}  // namespace
}  // namespace abg::sim
