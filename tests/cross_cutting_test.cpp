// Cross-cutting integration tests tying independent subsystems together:
// weighted allocation end-to-end, frequency response vs time-domain
// simulation, work-stealing jobs inside the multiprogrammed simulator,
// and Theorem 5 under the round-robin allocator (also fair and
// non-reserving).
#include <gtest/gtest.h>

#include <cmath>

#include "alloc/round_robin.hpp"
#include "alloc/weighted_equipartition.hpp"
#include "control/analysis.hpp"
#include "control/closed_loop.hpp"
#include "core/run.hpp"
#include "dag/builders.hpp"
#include "dag/profile_job.hpp"
#include "metrics/bounds.hpp"
#include "metrics/lower_bounds.hpp"
#include "metrics/parallelism_stats.hpp"
#include "sim/validate.hpp"
#include "steal/schedulers.hpp"
#include "steal/work_stealing_job.hpp"
#include "workload/job_set.hpp"
#include "workload/profiles.hpp"

namespace abg {
namespace {

TEST(WeightedPriority, HighWeightJobFinishesFirstEndToEnd) {
  // Two identical greedy jobs; weights 1 : 4.  The heavy job should finish
  // well before its peer, and both before a starvation bound.
  auto make_subs = [] {
    std::vector<sim::JobSubmission> subs;
    for (int j = 0; j < 2; ++j) {
      sim::JobSubmission s;
      s.job = std::make_unique<dag::ProfileJob>(
          workload::constant_profile(32, 500));
      subs.push_back(std::move(s));
    }
    return subs;
  };
  const sim::SimConfig config{.processors = 20, .quantum_length = 50};

  alloc::WeightedEquiPartition weighted({1.0, 4.0});
  const sim::SimResult result =
      core::run_set(core::abg_spec(), make_subs(), config, &weighted);
  ASSERT_TRUE(sim::validate_result(result, 20).empty());
  EXPECT_LT(result.jobs[1].completion_step, result.jobs[0].completion_step);

  // Versus plain DEQ the heavy job improves.  (The light job may also
  // finish earlier than under fair sharing: once the heavy job completes
  // it inherits the whole machine — shortest-effective-service ordering
  // can beat equal sharing for both.)
  const sim::SimResult fair =
      core::run_set(core::abg_spec(), make_subs(), config);
  EXPECT_LT(result.jobs[1].completion_step, fair.jobs[1].completion_step);
}

TEST(FrequencyResponse, MatchesTimeDomainSinusoid) {
  // Drive the ABG closed loop with a sinusoid and compare the steady-state
  // output amplitude against |T(e^{jw})|.
  const double r = 0.4;
  const double a = 10.0;
  const control::TransferFunction loop =
      control::abg_closed_loop(control::theorem1_gain(r, a), a);
  for (const double omega : {0.3, 1.0, 2.5}) {
    const std::size_t n = 4000;
    std::vector<double> input(n);
    for (std::size_t k = 0; k < n; ++k) {
      input[k] = std::sin(omega * static_cast<double>(k));
    }
    const auto output = loop.simulate(input);
    double peak = 0.0;
    for (std::size_t k = n / 2; k < n; ++k) {  // steady state only
      peak = std::max(peak, std::fabs(output[k]));
    }
    EXPECT_NEAR(peak, control::magnitude_response(loop, omega), 0.02)
        << "omega = " << omega;
  }
}

TEST(WorkStealingJobSet, RunsUnderDeqSimulator) {
  // Work-stealing jobs competing under DEQ: the whole two-level machinery
  // must compose, traces must validate, muggings occur when DEQ shrinks
  // allotments.
  std::vector<sim::JobSubmission> subs;
  for (int j = 0; j < 3; ++j) {
    sim::JobSubmission s;
    s.job = std::make_unique<steal::WorkStealingJob>(
        dag::builders::fork_join({{1, 50}, {12, 80}, {1, 50}}),
        static_cast<std::uint64_t>(j) * 31 + 7);
    subs.push_back(std::move(s));
  }
  steal::WorkStealingExecution execution;
  steal::AStealRequest prototype;
  alloc::RoundRobin allocator;
  const sim::SimResult result = sim::simulate_job_set(
      std::move(subs), execution, prototype, allocator,
      sim::SimConfig{.processors = 16, .quantum_length = 40});
  const auto issues = sim::validate_result(result, 16);
  ASSERT_TRUE(issues.empty()) << issues.front();
  for (const auto& t : result.jobs) {
    EXPECT_TRUE(t.finished());
  }
}

TEST(Theorem5UnderRoundRobin, BoundsStillHold) {
  // Theorem 5 only needs a fair, non-reserving, conservative allocator;
  // round-robin qualifies.
  util::Rng rng(4242);
  workload::JobSetSpec spec;
  spec.load = 1.0;
  spec.processors = 64;
  spec.min_transition_factor = 2.0;
  spec.max_transition_factor = 6.0;
  spec.min_phase_levels = 100;
  spec.max_phase_levels = 400;
  auto generated = workload::make_job_set(rng, spec);

  std::vector<metrics::JobSummary> summaries;
  std::vector<sim::JobSubmission> subs;
  for (auto& g : generated) {
    summaries.push_back(metrics::JobSummary{
        g.job->total_work(), g.job->critical_path(), 0});
    sim::JobSubmission s;
    s.job = std::move(g.job);
    subs.push_back(std::move(s));
  }
  alloc::RoundRobin allocator;
  const double rate = 0.05;
  const sim::SimResult result = core::run_set(
      core::abg_spec(core::AbgConfig{.convergence_rate = rate}),
      std::move(subs),
      sim::SimConfig{.processors = 64, .quantum_length = 200}, &allocator);

  double max_transition = 1.0;
  for (const auto& t : result.jobs) {
    max_transition = std::max(max_transition,
                              metrics::empirical_transition_factor(t));
  }
  ASSERT_LT(rate, 1.0 / max_transition);
  const double makespan_star = metrics::makespan_lower_bound(summaries, 64);
  const double response_star = metrics::response_lower_bound(summaries, 64);
  EXPECT_LE(static_cast<double>(result.makespan),
            1.05 * metrics::theorem5_makespan_bound(
                       makespan_star, max_transition, rate, 200,
                       summaries.size()));
  EXPECT_LE(result.mean_response_time,
            1.05 * metrics::theorem5_response_bound(
                       response_star, max_transition, rate, 200,
                       summaries.size()));
}

TEST(AutoRateScheduler, CompetitiveAcrossJobSet) {
  // ABG-auto on a job set: completes, validates, and stays within 1.4x of
  // hand-tuned ABG's makespan.
  util::Rng rng(99);
  workload::JobSetSpec spec;
  spec.load = 1.0;
  spec.processors = 64;
  spec.min_phase_levels = 100;
  spec.max_phase_levels = 400;
  const auto generated = workload::make_job_set(rng, spec);
  auto to_subs = [&generated] {
    std::vector<sim::JobSubmission> subs;
    for (const auto& g : generated) {
      sim::JobSubmission s;
      s.job = std::make_unique<dag::ProfileJob>(g.job->widths());
      subs.push_back(std::move(s));
    }
    return subs;
  };
  const sim::SimConfig config{.processors = 64, .quantum_length = 200};
  const auto fixed = core::run_set(core::abg_spec(), to_subs(), config);
  const auto tuned = core::run_set(core::abg_auto_spec(), to_subs(), config);
  ASSERT_TRUE(sim::validate_result(tuned, 64).empty());
  EXPECT_LT(static_cast<double>(tuned.makespan),
            1.4 * static_cast<double>(fixed.makespan));
}

}  // namespace
}  // namespace abg
