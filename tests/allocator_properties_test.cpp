// Property tests over all allocators: the invariants the paper's analysis
// relies on (conservativeness everywhere; fairness and non-reservation for
// the allocators that claim them), checked on randomized request vectors.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "alloc/availability_profile.hpp"
#include "alloc/equipartition.hpp"
#include "alloc/round_robin.hpp"
#include "alloc/unconstrained.hpp"
#include "alloc/weighted_equipartition.hpp"
#include "fault/fault_injector.hpp"
#include "fault/faulty_allocator.hpp"
#include "hier/hierarchical_allocator.hpp"
#include "util/rng.hpp"

namespace abg::alloc {
namespace {

struct AllocatorCase {
  std::string name;
  std::unique_ptr<Allocator> (*make)();
  bool shares_one_pool;  // sum of allotments bounded by P
  bool non_reserving;
  bool fair;
};

std::unique_ptr<Allocator> make_deq() {
  return std::make_unique<EquiPartition>();
}
std::unique_ptr<Allocator> make_rr() { return std::make_unique<RoundRobin>(); }
std::unique_ptr<Allocator> make_unconstrained() {
  return std::make_unique<Unconstrained>();
}
std::unique_ptr<Allocator> make_profile() {
  return std::make_unique<AvailabilityProfile>(
      std::vector<int>{3, 17, 0, 64, 5});
}

// A quiescent injector (no events fired): the fault decorator must be a
// strict pass-through, so the wrapped allocators claim every invariant
// their inner allocator claims.
const fault::FaultInjector& idle_injector() {
  static fault::FaultInjector injector{fault::FaultPlan{}};
  return injector;
}
std::unique_ptr<Allocator> make_faulty_deq() {
  return std::make_unique<fault::FaultyAllocator>(make_deq(),
                                                  idle_injector());
}
std::unique_ptr<Allocator> make_faulty_rr() {
  return std::make_unique<fault::FaultyAllocator>(make_rr(),
                                                  idle_injector());
}

// The hierarchical tree over DEQ groups.  Conservativeness, the pool bound
// and non-reservation hold at any group count; *global* fairness holds
// only at one group (the flat special case) — at more groups a job in a
// contended group can legitimately get less than a job in a quiet one, so
// the tree claims only within-group fairness (tested separately below).
template <int Groups>
std::unique_ptr<Allocator> make_hier_deq() {
  const EquiPartition prototype;
  return std::make_unique<hier::HierarchicalAllocator>(Groups, prototype);
}

class AllocatorProperties : public ::testing::TestWithParam<AllocatorCase> {};

TEST_P(AllocatorProperties, ConservativeOnRandomInputs) {
  const AllocatorCase& c = GetParam();
  util::Rng rng(1234);
  for (int trial = 0; trial < 200; ++trial) {
    const auto alloc = c.make();
    const auto jobs = rng.uniform_int(1, 12);
    std::vector<int> requests;
    for (int j = 0; j < jobs; ++j) {
      requests.push_back(static_cast<int>(rng.uniform_int(0, 40)));
    }
    const int machine = static_cast<int>(rng.uniform_int(0, 32));
    const auto a = alloc->allocate(requests, machine);
    ASSERT_EQ(a.size(), requests.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_GE(a[i], 0);
      ASSERT_LE(a[i], requests[i]) << c.name << " over-allocated job " << i;
    }
  }
}

TEST_P(AllocatorProperties, PoolBoundHolds) {
  const AllocatorCase& c = GetParam();
  if (!c.shares_one_pool) {
    GTEST_SKIP() << "allocator grants per-job independently";
  }
  util::Rng rng(987);
  const auto alloc = c.make();
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<int> requests;
    const auto jobs = rng.uniform_int(1, 10);
    for (int j = 0; j < jobs; ++j) {
      requests.push_back(static_cast<int>(rng.uniform_int(0, 50)));
    }
    const int machine = static_cast<int>(rng.uniform_int(0, 24));
    const int pool = alloc->pool(machine);
    ASSERT_LE(pool, machine);
    const auto a = alloc->allocate(requests, machine);
    ASSERT_LE(std::accumulate(a.begin(), a.end(), 0), pool);
  }
}

TEST_P(AllocatorProperties, NonReservingWhenClaimed) {
  const AllocatorCase& c = GetParam();
  if (!c.non_reserving) {
    GTEST_SKIP() << "allocator does not claim non-reservation";
  }
  util::Rng rng(555);
  const auto alloc = c.make();
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<int> requests;
    const auto jobs = rng.uniform_int(1, 10);
    for (int j = 0; j < jobs; ++j) {
      requests.push_back(static_cast<int>(rng.uniform_int(0, 30)));
    }
    const int machine = static_cast<int>(rng.uniform_int(1, 24));
    const auto a = alloc->allocate(requests, machine);
    const int assigned = std::accumulate(a.begin(), a.end(), 0);
    const int demanded = std::accumulate(requests.begin(), requests.end(), 0);
    ASSERT_EQ(assigned, std::min(machine, demanded))
        << c.name << " left processors idle while demand remained";
  }
}

TEST_P(AllocatorProperties, FairWhenClaimed) {
  // Fairness: all jobs receive an equal share (within the indivisible
  // remainder) unless they requested fewer.
  const AllocatorCase& c = GetParam();
  if (!c.fair) {
    GTEST_SKIP() << "allocator does not claim fairness";
  }
  util::Rng rng(777);
  const auto alloc = c.make();
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<int> requests;
    const auto jobs = rng.uniform_int(1, 8);
    for (int j = 0; j < jobs; ++j) {
      requests.push_back(static_cast<int>(rng.uniform_int(0, 30)));
    }
    const int machine = static_cast<int>(rng.uniform_int(1, 24));
    const auto a = alloc->allocate(requests, machine);
    // Any job that got strictly less than another job's allotment minus one
    // must have been fully satisfied.
    const int max_alloc = *std::max_element(a.begin(), a.end());
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i] < max_alloc - 1) {
        ASSERT_EQ(a[i], requests[i])
            << c.name << " under-served job " << i << " without cause";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAllocators, AllocatorProperties,
    ::testing::Values(
        AllocatorCase{"equi-partition", &make_deq, true, true, true},
        AllocatorCase{"round-robin", &make_rr, true, true, true},
        AllocatorCase{"unconstrained", &make_unconstrained, false, false,
                      false},
        AllocatorCase{"availability-profile", &make_profile, true, false,
                      false},
        AllocatorCase{"faulty-equi-partition", &make_faulty_deq, true, true,
                      true},
        AllocatorCase{"faulty-round-robin", &make_faulty_rr, true, true,
                      true},
        AllocatorCase{"hier-1-deq", &make_hier_deq<1>, true, true, true},
        AllocatorCase{"hier-4-deq", &make_hier_deq<4>, true, true, false},
        AllocatorCase{"hier-16-deq", &make_hier_deq<16>, true, true,
                      false}),
    [](const auto& param_info) {
      std::string n = param_info.param.name;
      for (char& ch : n) {
        if (ch == '-') {
          ch = '_';
        }
      }
      return n;
    });

TEST(FaultyAllocatorProperties, InvariantsHoldWhileCapacityShrinks) {
  // Walk a churn plan through the injector and check conservativeness and
  // the pool bound against the *surviving* capacity at every window.
  util::Rng plan_rng(31337);
  fault::FaultInjector injector(
      fault::poisson_churn_plan(plan_rng, 5000, 0.01, 300, 12));
  EquiPartition deq;
  fault::FaultyAllocator wrapped(deq, injector);

  util::Rng rng(4242);
  const int machine = 16;
  for (dag::Steps step = 0; step < 5000; step += 50) {
    injector.advance(step, step + 50);
    const int capacity = injector.capacity(machine);
    std::vector<int> requests;
    const auto jobs = rng.uniform_int(1, 8);
    for (int j = 0; j < jobs; ++j) {
      requests.push_back(static_cast<int>(rng.uniform_int(0, 24)));
    }
    const int pool = wrapped.pool(machine);
    ASSERT_LE(pool, capacity);
    const auto a = wrapped.allocate(requests, machine);
    ASSERT_EQ(a.size(), requests.size());
    int assigned = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_GE(a[i], 0);
      ASSERT_LE(a[i], requests[i]) << "over-allocation at step " << step;
      assigned += a[i];
    }
    ASSERT_LE(assigned, capacity)
        << "allocated beyond surviving capacity at step " << step;
  }
}

TEST(FaultyAllocatorProperties, RevocationNeverBreaksConservativeness) {
  fault::FaultPlan plan;
  util::Rng rng(99);
  for (int i = 0; i < 20; ++i) {
    fault::FaultEvent revoke;
    revoke.step = 10 * i;
    revoke.kind = fault::FaultKind::kAllotmentRevocation;
    revoke.job = static_cast<int>(rng.uniform_int(0, 5));
    revoke.cap = static_cast<int>(rng.uniform_int(0, 3));
    revoke.duration = rng.uniform_int(5, 40);
    plan.events.push_back(revoke);
  }
  fault::FaultInjector injector(plan);
  EquiPartition deq;
  fault::FaultyAllocator wrapped(deq, injector);

  for (dag::Steps step = 0; step < 300; step += 10) {
    injector.advance(step, step + 10);
    std::vector<int> requests;
    for (int j = 0; j < 6; ++j) {
      requests.push_back(static_cast<int>(rng.uniform_int(0, 20)));
    }
    const auto a = wrapped.allocate(requests, 16);
    int assigned = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_GE(a[i], 0);
      ASSERT_LE(a[i], requests[i]);
      ASSERT_LE(a[i], injector.allotment_cap(i));
      assigned += a[i];
    }
    ASSERT_LE(assigned + wrapped.last_revoked(), wrapped.pool(16));
  }
}

TEST(HierarchicalAllocatorProperties, OneGroupEqualsFlatAllocator) {
  // groups == 1 must be the flat allocator exactly, call for call, on the
  // same stateful request stream — the tree's flat-equivalence contract.
  util::Rng rng(606);
  EquiPartition flat;
  hier::HierarchicalAllocator tree(1, EquiPartition{});
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<int> requests;
    const auto jobs = rng.uniform_int(1, 12);
    for (int j = 0; j < jobs; ++j) {
      requests.push_back(static_cast<int>(rng.uniform_int(0, 40)));
    }
    const int machine = static_cast<int>(rng.uniform_int(1, 32));
    ASSERT_EQ(tree.allocate(requests, machine),
              flat.allocate(requests, machine))
        << "diverged at trial " << trial;
  }
}

TEST(HierarchicalAllocatorProperties, FairnessHoldsWithinEachGroup) {
  // Global fairness is traded away at groups > 1, but within one group the
  // inner DEQ still guarantees it: a member strictly below another member
  // of the *same group* (beyond the indivisible remainder) must have been
  // fully satisfied.
  util::Rng rng(8080);
  for (const int groups : {4, 16}) {
    hier::HierarchicalAllocator tree(groups, EquiPartition{});
    for (int trial = 0; trial < 100; ++trial) {
      std::vector<int> requests;
      const auto jobs = rng.uniform_int(1, 40);
      for (int j = 0; j < jobs; ++j) {
        requests.push_back(static_cast<int>(rng.uniform_int(0, 30)));
      }
      const int machine = static_cast<int>(rng.uniform_int(1, 48));
      const auto a = tree.allocate(requests, machine);
      ASSERT_EQ(a.size(), requests.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        for (std::size_t k = 0; k < a.size(); ++k) {
          const auto g = static_cast<std::size_t>(groups);
          if (i % g != k % g || a[i] >= a[k] - 1) {
            continue;
          }
          ASSERT_EQ(a[i], requests[i])
              << groups << " groups: job " << i << " under-served vs "
              << k << " in its own group";
        }
      }
    }
  }
}

TEST(AllocatorClone, PreservesRotationState) {
  // Regression for the dropped-state clone() bug: a clone taken mid-stream
  // must continue the original's allocation sequence exactly.  Rotation
  // (DEQ/RR/weighted) and the profile cursor are the state at stake.
  const auto check = [](std::unique_ptr<Allocator> original) {
    util::Rng rng(515);
    std::vector<int> requests(5, 0);
    // Warm the internal rotation/cursor, then fork.
    for (int warm = 0; warm < 7; ++warm) {
      for (int& r : requests) {
        r = static_cast<int>(rng.uniform_int(0, 9));
      }
      original->allocate(requests, 11);
    }
    const auto copy = original->clone();
    for (int trial = 0; trial < 20; ++trial) {
      for (int& r : requests) {
        r = static_cast<int>(rng.uniform_int(0, 9));
      }
      ASSERT_EQ(copy->allocate(requests, 11),
                original->allocate(requests, 11))
          << original->name() << " clone diverged at trial " << trial;
    }
  };
  check(std::make_unique<EquiPartition>());
  check(std::make_unique<RoundRobin>());
  check(std::make_unique<WeightedEquiPartition>(
      std::vector<double>{1.0, 2.0, 1.0, 3.0, 1.0}));
  check(std::make_unique<AvailabilityProfile>(
      std::vector<int>{3, 17, 0, 64, 5, 9, 2, 30}));
}

}  // namespace
}  // namespace abg::alloc

