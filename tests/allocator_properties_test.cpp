// Property tests over all allocators: the invariants the paper's analysis
// relies on (conservativeness everywhere; fairness and non-reservation for
// the allocators that claim them), checked on randomized request vectors.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "alloc/availability_profile.hpp"
#include "alloc/equipartition.hpp"
#include "alloc/round_robin.hpp"
#include "alloc/unconstrained.hpp"
#include "util/rng.hpp"

namespace abg::alloc {
namespace {

struct AllocatorCase {
  std::string name;
  std::unique_ptr<Allocator> (*make)();
  bool shares_one_pool;  // sum of allotments bounded by P
  bool non_reserving;
  bool fair;
};

std::unique_ptr<Allocator> make_deq() {
  return std::make_unique<EquiPartition>();
}
std::unique_ptr<Allocator> make_rr() { return std::make_unique<RoundRobin>(); }
std::unique_ptr<Allocator> make_unconstrained() {
  return std::make_unique<Unconstrained>();
}
std::unique_ptr<Allocator> make_profile() {
  return std::make_unique<AvailabilityProfile>(
      std::vector<int>{3, 17, 0, 64, 5});
}

class AllocatorProperties : public ::testing::TestWithParam<AllocatorCase> {};

TEST_P(AllocatorProperties, ConservativeOnRandomInputs) {
  const AllocatorCase& c = GetParam();
  util::Rng rng(1234);
  for (int trial = 0; trial < 200; ++trial) {
    const auto alloc = c.make();
    const auto jobs = rng.uniform_int(1, 12);
    std::vector<int> requests;
    for (int j = 0; j < jobs; ++j) {
      requests.push_back(static_cast<int>(rng.uniform_int(0, 40)));
    }
    const int machine = static_cast<int>(rng.uniform_int(0, 32));
    const auto a = alloc->allocate(requests, machine);
    ASSERT_EQ(a.size(), requests.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_GE(a[i], 0);
      ASSERT_LE(a[i], requests[i]) << c.name << " over-allocated job " << i;
    }
  }
}

TEST_P(AllocatorProperties, PoolBoundHolds) {
  const AllocatorCase& c = GetParam();
  if (!c.shares_one_pool) {
    GTEST_SKIP() << "allocator grants per-job independently";
  }
  util::Rng rng(987);
  const auto alloc = c.make();
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<int> requests;
    const auto jobs = rng.uniform_int(1, 10);
    for (int j = 0; j < jobs; ++j) {
      requests.push_back(static_cast<int>(rng.uniform_int(0, 50)));
    }
    const int machine = static_cast<int>(rng.uniform_int(0, 24));
    const int pool = alloc->pool(machine);
    ASSERT_LE(pool, machine);
    const auto a = alloc->allocate(requests, machine);
    ASSERT_LE(std::accumulate(a.begin(), a.end(), 0), pool);
  }
}

TEST_P(AllocatorProperties, NonReservingWhenClaimed) {
  const AllocatorCase& c = GetParam();
  if (!c.non_reserving) {
    GTEST_SKIP() << "allocator does not claim non-reservation";
  }
  util::Rng rng(555);
  const auto alloc = c.make();
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<int> requests;
    const auto jobs = rng.uniform_int(1, 10);
    for (int j = 0; j < jobs; ++j) {
      requests.push_back(static_cast<int>(rng.uniform_int(0, 30)));
    }
    const int machine = static_cast<int>(rng.uniform_int(1, 24));
    const auto a = alloc->allocate(requests, machine);
    const int assigned = std::accumulate(a.begin(), a.end(), 0);
    const int demanded = std::accumulate(requests.begin(), requests.end(), 0);
    ASSERT_EQ(assigned, std::min(machine, demanded))
        << c.name << " left processors idle while demand remained";
  }
}

TEST_P(AllocatorProperties, FairWhenClaimed) {
  // Fairness: all jobs receive an equal share (within the indivisible
  // remainder) unless they requested fewer.
  const AllocatorCase& c = GetParam();
  if (!c.fair) {
    GTEST_SKIP() << "allocator does not claim fairness";
  }
  util::Rng rng(777);
  const auto alloc = c.make();
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<int> requests;
    const auto jobs = rng.uniform_int(1, 8);
    for (int j = 0; j < jobs; ++j) {
      requests.push_back(static_cast<int>(rng.uniform_int(0, 30)));
    }
    const int machine = static_cast<int>(rng.uniform_int(1, 24));
    const auto a = alloc->allocate(requests, machine);
    // Any job that got strictly less than another job's allotment minus one
    // must have been fully satisfied.
    const int max_alloc = *std::max_element(a.begin(), a.end());
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i] < max_alloc - 1) {
        ASSERT_EQ(a[i], requests[i])
            << c.name << " under-served job " << i << " without cause";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAllocators, AllocatorProperties,
    ::testing::Values(
        AllocatorCase{"equi-partition", &make_deq, true, true, true},
        AllocatorCase{"round-robin", &make_rr, true, true, true},
        AllocatorCase{"unconstrained", &make_unconstrained, false, false,
                      false},
        AllocatorCase{"availability-profile", &make_profile, true, false,
                      false}),
    [](const auto& param_info) {
      std::string n = param_info.param.name;
      for (char& ch : n) {
        if (ch == '-') {
          ch = '_';
        }
      }
      return n;
    });

}  // namespace
}  // namespace abg::alloc
