#include "exp/journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/result_sink.hpp"
#include "exp/runner.hpp"

namespace abg::exp {
namespace {

RunSpec sample_spec() {
  RunSpec spec;
  spec.scheduler = SchedulerKind::kAbg;
  spec.workload.kind = WorkloadKind::kSquareWave;
  spec.workload.jobs = 2;
  spec.workload.levels = 100;
  spec.machine = {.processors = 16, .quantum_length = 50};
  spec.seed_index = 3;
  spec.group = "point=3";
  return spec;
}

RunRecord sample_record() {
  RunRecord record;
  record.run_id = 0;
  record.group = "point=3";
  record.scheduler = "abg";
  record.workload = "square-wave";
  record.fault = "none";
  record.seed = 12345;
  record.metrics = {{"makespan", 1234.5}, {"mean_a", 0.9376215}};
  return record;
}

/// RAII scratch file removed on destruction.
class ScratchFile {
 public:
  explicit ScratchFile(const std::string& name)
      : path_(testing::TempDir() + name) {
    std::remove(path_.c_str());
  }
  ~ScratchFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

  std::string contents() const {
    std::ifstream in(path_, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

  void overwrite(const std::string& text) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << text;
  }

 private:
  std::string path_;
};

TEST(SpecDigest, IsStableAndSensitiveToResultFields) {
  const RunSpec spec = sample_spec();
  EXPECT_EQ(spec_digest(spec), spec_digest(sample_spec()));

  RunSpec other = sample_spec();
  other.seed_index = 4;
  EXPECT_NE(spec_digest(spec), spec_digest(other));

  other = sample_spec();
  other.scheduler = SchedulerKind::kAGreedy;
  EXPECT_NE(spec_digest(spec), spec_digest(other));

  other = sample_spec();
  other.machine.quantum_length = 51;
  EXPECT_NE(spec_digest(spec), spec_digest(other));
}

TEST(SpecDigest, IgnoresObsAndDebugAndThreadKnobs) {
  // None of these can change the record, so resume must not treat them as
  // a different cell.
  const RunSpec spec = sample_spec();
  RunSpec other = sample_spec();
  other.hier_threads = 8;
  other.debug.hang = true;
  other.debug.fail_attempts = 2;
  EXPECT_EQ(spec_digest(spec), spec_digest(other));
}

TEST(GridDigest, DependsOnSeedOrderAndCells) {
  const std::vector<RunSpec> grid = {sample_spec(), sample_spec()};
  EXPECT_EQ(grid_digest(grid, 7), grid_digest(grid, 7));
  EXPECT_NE(grid_digest(grid, 7), grid_digest(grid, 8));
  EXPECT_NE(grid_digest(grid, 7), grid_digest({sample_spec()}, 7));
}

TEST(DigestToHex, IsFixedWidthLowercase) {
  EXPECT_EQ(digest_to_hex(0), "0000000000000000");
  EXPECT_EQ(digest_to_hex(0xDEADBEEFull), "00000000deadbeef");
  EXPECT_EQ(digest_to_hex(~0ull), "ffffffffffffffff");
}

TEST(RunJournal, RoundTripsCompletedCells) {
  ScratchFile file("journal_roundtrip.jsonl");
  const RunSpec spec = sample_spec();
  const std::uint64_t digest = spec_digest(spec);
  const RunRecord record = sample_record();
  {
    RunJournal journal(file.path(), 2008, 1, grid_digest({spec}, 2008));
    journal.record_start(0, digest, 0);
    journal.record_done(0, digest, record);
  }

  const JournalReplay replay = load_journal(file.path());
  EXPECT_EQ(replay.base_seed, 2008u);
  EXPECT_EQ(replay.cells, 1u);
  EXPECT_EQ(replay.grid, grid_digest({spec}, 2008));
  ASSERT_EQ(replay.completed.size(), 1u);

  const RunRecord* replayed = replay.completed_record(0, digest);
  ASSERT_NE(replayed, nullptr);
  EXPECT_EQ(replayed->group, record.group);
  EXPECT_EQ(replayed->seed, record.seed);
  ASSERT_EQ(replayed->metrics.size(), record.metrics.size());
  EXPECT_EQ(replayed->metrics[1].first, "mean_a");
  EXPECT_DOUBLE_EQ(replayed->metrics[1].second, 0.9376215);

  // A drifted spec at the same position must not be treated as completed.
  EXPECT_EQ(replay.completed_record(0, digest + 1), nullptr);
  EXPECT_EQ(replay.completed_record(1, digest), nullptr);
}

TEST(RunJournal, ReplayedRecordSerializesByteIdentically) {
  // The byte-exactness contract of --resume: a record that went through
  // the journal re-emits exactly what a fresh run would have written.
  ScratchFile file("journal_bytes.jsonl");
  const RunSpec spec = sample_spec();
  const std::uint64_t digest = spec_digest(spec);
  const RunRecord record = sample_record();
  {
    RunJournal journal(file.path(), 2008, 1, grid_digest({spec}, 2008));
    journal.record_done(0, digest, record);
  }
  const JournalReplay replay = load_journal(file.path());
  const RunRecord* replayed = replay.completed_record(0, digest);
  ASSERT_NE(replayed, nullptr);
  EXPECT_EQ(record_to_json(*replayed).dump(),
            record_to_json(record).dump());
}

TEST(RunJournal, ToleratesTornTrailingLine) {
  ScratchFile file("journal_torn.jsonl");
  const RunSpec spec = sample_spec();
  const std::uint64_t digest = spec_digest(spec);
  {
    RunJournal journal(file.path(), 9, 2, grid_digest({spec, spec}, 9));
    journal.record_done(0, digest, sample_record());
    journal.record_start(1, digest, 0);
  }
  // Tear the final line mid-JSON, as a crash during append would.
  std::string text = file.contents();
  ASSERT_EQ(text.back(), '\n');
  file.overwrite(text.substr(0, text.size() - 10));

  const JournalReplay replay = load_journal(file.path());
  EXPECT_EQ(replay.completed.size(), 1u);
  EXPECT_NE(replay.completed_record(0, digest), nullptr);
}

TEST(RunJournal, MalformedInteriorLineThrows) {
  ScratchFile file("journal_corrupt.jsonl");
  const RunSpec spec = sample_spec();
  {
    RunJournal journal(file.path(), 9, 1, grid_digest({spec}, 9));
    journal.record_done(0, spec_digest(spec), sample_record());
  }
  file.overwrite("this is not json\n" + file.contents());
  EXPECT_THROW(load_journal(file.path()), std::runtime_error);
}

TEST(RunJournal, MissingHeaderThrows) {
  ScratchFile file("journal_headerless.jsonl");
  file.overwrite("{\"kind\":\"start\",\"run_id\":0,\"spec\":\"00\"}\n");
  EXPECT_THROW(load_journal(file.path()), std::runtime_error);
  EXPECT_THROW(load_journal(file.path() + ".does-not-exist"),
               std::runtime_error);
}

TEST(RunJournal, QuarantineIsSupersededByLaterDone) {
  // A resumed sweep re-executes quarantined cells; when the re-execution
  // succeeds, the appended "done" must win over the older quarantine.
  ScratchFile file("journal_requarantine.jsonl");
  const RunSpec spec = sample_spec();
  const std::uint64_t digest = spec_digest(spec);
  {
    RunJournal journal(file.path(), 9, 1, grid_digest({spec}, 9));
    journal.record_failure(0, digest, 0, "timeout", "");
    journal.record_quarantine(0, digest, 1, "timeout");
  }
  {
    const JournalReplay replay = load_journal(file.path());
    EXPECT_TRUE(replay.completed.empty());
    ASSERT_EQ(replay.quarantined.size(), 1u);
    EXPECT_EQ(replay.quarantined.at(0), "timeout");
  }
  {
    RunJournal journal(file.path(), 9, 1, grid_digest({spec}, 9));
    journal.record_done(0, digest, sample_record());
  }
  const JournalReplay replay = load_journal(file.path());
  EXPECT_TRUE(replay.quarantined.empty());
  EXPECT_NE(replay.completed_record(0, digest), nullptr);
}

TEST(RunJournal, AppendingKeepsSingleHeader) {
  // Re-opening an existing journal (what --resume with --journal at the
  // same path does) appends events without writing a second header.
  ScratchFile file("journal_reopen.jsonl");
  const RunSpec spec = sample_spec();
  const std::uint64_t grid = grid_digest({spec}, 9);
  { RunJournal journal(file.path(), 9, 1, grid); }
  { RunJournal journal(file.path(), 9, 1, grid); }
  const std::string text = file.contents();
  std::size_t headers = 0;
  std::istringstream lines(text);
  for (std::string line; std::getline(lines, line);) {
    headers += line.find("\"kind\":\"journal\"") != std::string::npos;
  }
  EXPECT_EQ(headers, 1u);
}

TEST(RecordFromJson, RestoresOmittedDefaults) {
  // Omitted optional keys (engine, hier, failure) must come back as the
  // exact defaults record_to_json omitted them for, or a resumed record
  // would serialize differently from the original.
  RunRecord record = sample_record();
  const RunRecord parsed = record_from_json(record_to_json(record));
  EXPECT_EQ(parsed.engine, "sync");
  EXPECT_EQ(parsed.hier_groups, 0);
  EXPECT_EQ(parsed.hier_alloc, "");
  EXPECT_EQ(parsed.failure, "");
  EXPECT_EQ(record_to_json(parsed).dump(), record_to_json(record).dump());

  record.engine = "async";
  record.hier_groups = 4;
  record.hier_alloc = "deq";
  record.failure = "timeout";
  record.metrics.clear();
  const RunRecord parsed2 = record_from_json(record_to_json(record));
  EXPECT_EQ(parsed2.engine, "async");
  EXPECT_EQ(parsed2.hier_groups, 4);
  EXPECT_EQ(parsed2.failure, "timeout");
  EXPECT_EQ(record_to_json(parsed2).dump(), record_to_json(record).dump());
}

}  // namespace
}  // namespace abg::exp
