// Resilience analysis: lost-work accounting, makespan degradation, and
// per-disturbance recovery of the aggregate request signal.
#include "fault/resilience.hpp"

#include <gtest/gtest.h>

#include "alloc/equipartition.hpp"
#include "dag/profile_job.hpp"
#include "fault/fault_plan.hpp"
#include "sched/a_control.hpp"
#include "sched/execution_policy.hpp"
#include "sim/report.hpp"
#include "sim/simulator.hpp"
#include "workload/profiles.hpp"

namespace abg::fault {
namespace {

sim::SimResult run(const sim::SimConfig& config, int jobs = 3,
                   dag::Steps levels = 200) {
  std::vector<sim::JobSubmission> subs;
  for (int j = 0; j < jobs; ++j) {
    sim::JobSubmission s;
    s.job = std::make_unique<dag::ProfileJob>(
        workload::constant_profile(8, levels));
    subs.push_back(std::move(s));
  }
  sched::BGreedyExecution exec;
  sched::AControlRequest proto;
  alloc::EquiPartition deq;
  return sim::simulate_job_set(std::move(subs), exec, proto, deq, config);
}

sim::SimConfig config_of() {
  return sim::SimConfig{.processors = 16, .quantum_length = 10};
}

TEST(Resilience, FaultFreeRunAgainstItselfIsTrivial) {
  const sim::SimResult reference = run(config_of());
  const ResilienceReport report =
      analyze_resilience(reference, reference);
  EXPECT_TRUE(report.accounting_balances());
  EXPECT_EQ(report.lost_work, 0);
  EXPECT_DOUBLE_EQ(report.makespan_degradation, 1.0);
  EXPECT_TRUE(report.responses.empty());
  EXPECT_EQ(report.crash_events, 0u);
}

TEST(Resilience, StepFailureProducesADisturbanceResponse) {
  const sim::SimResult reference = run(config_of());

  const FaultPlan plan = step_failure_plan(60, 8);
  sim::SimConfig config = config_of();
  config.faults = &plan;
  const sim::SimResult faulty = run(config);

  const ResilienceReport report = analyze_resilience(faulty, reference);
  EXPECT_TRUE(report.accounting_balances());
  EXPECT_EQ(report.failure_events, 1);
  EXPECT_EQ(report.min_capacity, 8);
  EXPECT_GE(report.makespan_degradation, 1.0);
  ASSERT_EQ(report.responses.size(), 1u);
  EXPECT_EQ(report.responses[0].step, 60);
  // The run outlives the disturbance, so the signal must re-settle.
  EXPECT_GE(report.responses[0].recovery_quanta, 0);
  EXPECT_GE(report.max_overshoot, 0.0);
}

TEST(Resilience, ImpulseFailureYieldsOneResponsePerDisturbance) {
  const sim::SimResult reference = run(config_of());

  const FaultPlan plan = impulse_failure_plan(40, 8, 60);
  sim::SimConfig config = config_of();
  config.faults = &plan;
  const sim::SimResult faulty = run(config);

  const ResilienceReport report = analyze_resilience(faulty, reference);
  EXPECT_TRUE(report.accounting_balances());
  EXPECT_EQ(report.responses.size(), 2u);  // failure and repair
}

TEST(Resilience, CrashAccountingFeedsTheReport) {
  const sim::SimResult reference = run(config_of());

  FaultPlan plan = periodic_crash_plan(0, 45, 1000, 1);
  plan.work_loss = WorkLoss::kRestartFromScratch;
  sim::SimConfig config = config_of();
  config.faults = &plan;
  const sim::SimResult faulty = run(config);

  const ResilienceReport report = analyze_resilience(faulty, reference);
  EXPECT_TRUE(report.accounting_balances());
  EXPECT_EQ(report.crash_events, 1u);
  EXPECT_GT(report.lost_work, 0);
  EXPECT_GT(report.waste, 0);
}

TEST(Resilience, FormatMentionsTheKeyQuantities) {
  const sim::SimResult reference = run(config_of());
  const FaultPlan plan = step_failure_plan(60, 8);
  sim::SimConfig config = config_of();
  config.faults = &plan;
  const sim::SimResult faulty = run(config);

  const std::string text =
      sim::resilience_report(faulty, reference);
  EXPECT_NE(text.find("resilience:"), std::string::npos);
  EXPECT_NE(text.find("(balanced)"), std::string::npos);
  EXPECT_NE(text.find("makespan:"), std::string::npos);
  EXPECT_NE(text.find("disturbance @60"), std::string::npos);
  EXPECT_EQ(text.find("IMBALANCED"), std::string::npos);
}

TEST(Resilience, ImbalancedLogIsCalledOut) {
  ResilienceReport report;
  report.work_done = 10;
  report.allotted_cycles = 5;  // impossible: flags as imbalanced
  EXPECT_FALSE(report.accounting_balances());
  const std::string text = format_resilience_report(report);
  EXPECT_NE(text.find("IMBALANCED"), std::string::npos);
}

}  // namespace
}  // namespace abg::fault
