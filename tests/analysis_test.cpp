#include "control/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "control/closed_loop.hpp"

namespace abg::control {
namespace {

TEST(BiboStability, PoleInsideUnitCircle) {
  TransferFunction stable(Polynomial({0.5}), Polynomial({-0.5, 1.0}));
  EXPECT_TRUE(is_bibo_stable(stable));
}

TEST(BiboStability, PoleOnUnitCircleIsUnstable) {
  TransferFunction marginal(Polynomial({1.0}), Polynomial({-1.0, 1.0}));
  EXPECT_FALSE(is_bibo_stable(marginal));
}

TEST(BiboStability, PoleOutsideUnitCircleIsUnstable) {
  TransferFunction unstable(Polynomial({1.0}), Polynomial({-2.0, 1.0}));
  EXPECT_FALSE(is_bibo_stable(unstable));
}

TEST(BiboStability, ComplexPolePair) {
  // Poles at 0.5 ± 0.5i: |p| = 0.707 < 1.
  TransferFunction stable(Polynomial({1.0}), Polynomial({0.5, -1.0, 1.0}));
  EXPECT_TRUE(is_bibo_stable(stable));
}

TEST(SteadyStateError, UnityDcGainMeansZeroError) {
  TransferFunction t(Polynomial({0.4}), Polynomial({-0.6, 1.0}));
  EXPECT_NEAR(steady_state_error(t), 0.0, 1e-12);
}

TEST(SteadyStateError, NonUnityGain) {
  TransferFunction t(Polynomial({0.2}), Polynomial({-0.6, 1.0}));
  EXPECT_NEAR(steady_state_error(t), 0.5, 1e-12);
}

TEST(MagnitudeResponse, AbgLoopIsLowPass) {
  // T(z) = (1-r)/(z-r): unity DC gain, attenuation (1-r)/(1+r) at the
  // Nyquist frequency, monotone in between.
  const double r = 0.5;
  const TransferFunction loop =
      abg_closed_loop(theorem1_gain(r, 10.0), 10.0);
  EXPECT_NEAR(magnitude_response(loop, 0.0), 1.0, 1e-12);
  const double pi = 3.14159265358979323846;
  EXPECT_NEAR(magnitude_response(loop, pi), (1.0 - r) / (1.0 + r), 1e-12);
  double prev = 1.0;
  for (double w = 0.1; w <= pi; w += 0.1) {
    const double mag = magnitude_response(loop, w);
    EXPECT_LE(mag, prev + 1e-12);
    prev = mag;
  }
}

TEST(MagnitudeResponse, DeadbeatIsAllPass) {
  // r = 0: T(z) = 1/z — |T| = 1 at every frequency (pure delay).
  const TransferFunction loop =
      abg_closed_loop(theorem1_gain(0.0, 5.0), 5.0);
  for (double w : {0.0, 1.0, 2.0, 3.0}) {
    EXPECT_NEAR(magnitude_response(loop, w), 1.0, 1e-12);
  }
}

TEST(MagnitudeResponse, Validation) {
  const TransferFunction loop =
      abg_closed_loop(theorem1_gain(0.2, 5.0), 5.0);
  EXPECT_THROW(magnitude_response(loop, -0.1), std::invalid_argument);
  EXPECT_THROW(magnitude_response(loop, 4.0), std::invalid_argument);
}

TEST(AnalyzeSeries, RejectsBadInput) {
  EXPECT_THROW(analyze_series({}, 1.0), std::invalid_argument);
  EXPECT_THROW(analyze_series({1.0}, 0.0), std::invalid_argument);
}

TEST(AnalyzeSeries, ConvergentGeometricSeries) {
  // x(k) = 10 (1 - 0.5^k): converges to 10 at rate 0.5, no overshoot.
  std::vector<double> xs;
  for (int k = 1; k <= 30; ++k) {
    xs.push_back(10.0 * (1.0 - std::pow(0.5, k)));
  }
  const StepResponseMetrics m = analyze_series(xs, 10.0);
  EXPECT_TRUE(m.settled);
  EXPECT_NEAR(m.steady_state, 10.0, 0.05);
  EXPECT_LT(m.steady_state_error, 0.05);
  EXPECT_NEAR(m.max_overshoot, 0.0, 1e-9);
  EXPECT_NEAR(m.convergence_rate, 0.5, 1e-6);
  // The settled tail still decays within the 2% band: peak-to-peak at most
  // twice the band.
  EXPECT_LE(m.residual_oscillation, 0.4);
}

TEST(AnalyzeSeries, OscillatingSeriesNeverSettles) {
  std::vector<double> xs;
  for (int k = 0; k < 40; ++k) {
    xs.push_back(k % 2 == 0 ? 8.0 : 16.0);
  }
  const StepResponseMetrics m = analyze_series(xs, 10.0);
  EXPECT_FALSE(m.settled);
  EXPECT_GT(m.residual_oscillation, 7.0);
  EXPECT_GT(m.steady_state_error, 1.0);
}

TEST(AnalyzeSeries, OvershootMeasured) {
  const std::vector<double> xs{0.0, 5.0, 15.0, 12.0, 10.0, 10.0,
                               10.0, 10.0, 10.0, 10.0};
  const StepResponseMetrics m = analyze_series(xs, 10.0);
  EXPECT_NEAR(m.max_overshoot, 5.0, 0.5);
}

TEST(AnalyzeSeries, SettlingIndexFindsEntryIntoBand) {
  const std::vector<double> xs{0.0, 2.0, 9.99, 10.0, 10.0};
  const StepResponseMetrics m = analyze_series(xs, 10.0);
  EXPECT_TRUE(m.settled);
  EXPECT_EQ(m.settling_index, 2u);
}

TEST(AnalyzeSeries, LeavingBandResetsSettling) {
  const std::vector<double> xs{10.0, 10.0, 3.0, 10.0, 10.0};
  const StepResponseMetrics m = analyze_series(xs, 10.0);
  EXPECT_EQ(m.settling_index, 3u);
}

TEST(AnalyzeSeries, ImmediateConvergenceHasZeroRate) {
  // One-step convergence (ABG with r = 0): first sample already on target.
  const std::vector<double> xs{10.0, 10.0, 10.0};
  const StepResponseMetrics m = analyze_series(xs, 10.0);
  EXPECT_TRUE(m.settled);
  EXPECT_EQ(m.settling_index, 0u);
  EXPECT_DOUBLE_EQ(m.convergence_rate, 0.0);
}

TEST(AnalyzeSeries, AgreesWithSymbolicAnalysisOnAbgLoop) {
  // The empirical metrics on a simulated ABG closed loop must agree with
  // the symbolic transfer-function results.
  const double r = 0.25;
  const double A = 20.0;
  const TransferFunction t = abg_closed_loop(theorem1_gain(r, A), A);
  EXPECT_TRUE(is_bibo_stable(t));
  EXPECT_NEAR(steady_state_error(t), 0.0, 1e-12);
  // Simulated normalized response (reference 1), scaled to requests.
  auto y = t.simulate(unit_step(40));
  for (double& v : y) {
    v *= A;
  }
  const StepResponseMetrics m = analyze_series(y, A);
  EXPECT_TRUE(m.settled);
  EXPECT_NEAR(m.convergence_rate, r, 1e-6);
  EXPECT_NEAR(m.max_overshoot, 0.0, 1e-9);
}

}  // namespace
}  // namespace abg::control
