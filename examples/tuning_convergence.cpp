// Tuning A-Control's convergence rate r.
//
//   ./tuning_convergence [--seed=N] [--transition=C]
//
// Theorem 1 makes r the single knob of ABG: the closed-loop pole.  Small r
// reacts fast (r = 0 is one-step/deadbeat); large r smooths the request
// trajectory but lags parallelism changes — and the waste bound (Theorem 4)
// requires r < 1/C_L.  This example sweeps r on one job and reports running
// time, waste and the request path's control-theoretic metrics, echoing the
// paper's footnote 3 ("results do not deviate too much for all values of
// convergence rate less than 0.6").
#include <iostream>

#include "control/analysis.hpp"
#include "core/run.hpp"
#include "metrics/parallelism_stats.hpp"
#include "sim/quantum_engine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/fork_join.hpp"

int main(int argc, char** argv) {
  const abg::util::Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 3));
  const double transition = cli.get_double("transition", 12.0);
  const abg::dag::Steps quantum = 500;

  abg::util::Rng rng(seed);
  const auto job = abg::workload::make_fork_join_job(
      rng, abg::workload::figure5_spec(transition, quantum));
  std::cout << "Fork-join job: T1 = " << job->total_work()
            << ", T_inf = " << job->critical_path()
            << ", target C_L = " << transition << "\n\n";

  abg::util::Table table({"r", "time", "time/T_inf", "waste/T1",
                          "measured C_L", "quanta"});
  for (const double rate : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8}) {
    const auto clone = job->fresh_clone();
    const abg::sim::JobTrace trace = abg::core::run_single(
        abg::core::abg_spec(abg::core::AbgConfig{.convergence_rate = rate}),
        *clone,
        abg::sim::SingleJobConfig{.processors = 128,
                                  .quantum_length = quantum});
    table.add_row(
        {abg::util::format_double(rate, 1),
         std::to_string(trace.response_time()),
         abg::util::format_double(
             static_cast<double>(trace.response_time()) /
                 static_cast<double>(trace.critical_path), 3),
         abg::util::format_double(
             static_cast<double>(trace.total_waste()) /
                 static_cast<double>(trace.work), 3),
         abg::util::format_double(
             abg::metrics::empirical_transition_factor(trace), 2),
         std::to_string(trace.quanta.size())});
  }
  table.print(std::cout);
  std::cout << "\nNote: the Theorem 4 waste bound needs r < 1/C_L; rates\n"
            << "at or above that threshold lose the guarantee but often\n"
            << "still behave well on benign workloads (paper, Section 7).\n";
  return 0;
}
