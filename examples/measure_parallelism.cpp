// B-Greedy's parallelism measurement, illustrated on the paper's Figure 2
// example and on an arbitrary DAG.
//
//   ./measure_parallelism
//
// B-Greedy executes ready tasks lowest-level-first, which lets it count the
// quantum work T1(q) and the (fractional) quantum critical-path length
// T_inf(q) exactly, and report A(q) = T1(q)/T_inf(q) to the controller.
// A level only partially completed contributes completed/total.
#include <iostream>

#include "dag/builders.hpp"
#include "dag/dag_job.hpp"
#include "dag/profile_job.hpp"
#include "sched/execution_policy.hpp"
#include "util/table.hpp"

int main() {
  using abg::dag::PickOrder;

  std::cout << "== Figure 2 reconstruction ==\n"
            << "Three levels of five tasks; one task pre-completed.  The\n"
            << "quantum completes 4 + 5 + 3 = 12 tasks, advancing\n"
            << "0.8 + 1.0 + 0.6 = 2.4 levels.\n\n";

  abg::dag::ProfileJob job({5, 5, 5});
  job.step(1, PickOrder::kBreadthFirst);  // pre-complete one task

  abg::sched::BGreedyExecution bgreedy;
  const double before = job.level_progress();
  abg::dag::TaskCount work = 0;
  // Emulate one quantum with per-step allotments 4, 5, 3.
  for (const int allotment : {4, 5, 3}) {
    work += job.step(allotment, PickOrder::kBreadthFirst);
  }
  const double cpl = job.level_progress() - before;
  std::cout << "T1(q)    = " << work << "\n"
            << "T_inf(q) = " << abg::util::format_double(cpl, 2) << "\n"
            << "A(q)     = " << abg::util::format_double(
                                   static_cast<double>(work) / cpl, 2)
            << "   (the paper's example: 12 / 2.4 = 5)\n\n";

  std::cout << "== Measurement on an arbitrary DAG ==\n"
            << "A diamond DAG (source, 6 parallel tasks, sink) scheduled\n"
            << "with 3 processors, one quantum of 4 steps:\n\n";

  abg::dag::DagJob diamond{abg::dag::builders::diamond(6)};
  const abg::sched::QuantumStats stats =
      bgreedy.run_quantum(diamond, /*index=*/1, /*request=*/3,
                          /*allotment=*/3, /*quantum_length=*/4);
  abg::util::Table table({"T1(q)", "T_inf(q)", "A(q)", "alpha(q)", "beta(q)"});
  table.add_row({std::to_string(stats.work),
                 abg::util::format_double(stats.cpl, 3),
                 abg::util::format_double(stats.average_parallelism(), 3),
                 abg::util::format_double(stats.work_efficiency(), 3),
                 abg::util::format_double(stats.cpl_efficiency(), 3)});
  table.print(std::cout);
  std::cout << "\nGreedy guarantee (Inequality 5): alpha + beta >= 1: "
            << abg::util::format_double(
                   stats.work_efficiency() + stats.cpl_efficiency(), 3)
            << "\n";
  return 0;
}
