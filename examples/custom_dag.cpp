// Scheduling a hand-built DAG: the library is not limited to fork-join
// profiles — any acyclic dependency structure of unit tasks is a malleable
// job.
//
//   ./custom_dag
//
// Builds a small pipeline-with-fan-out DAG explicitly, prints its intrinsic
// characteristics, and schedules it with ABG on a 4-processor machine with
// very short quanta so the whole feedback loop is visible.
#include <iostream>

#include "core/run.hpp"
#include "dag/characteristics.hpp"
#include "dag/dag_job.hpp"
#include "sim/quantum_engine.hpp"
#include "util/table.hpp"

int main() {
  // A two-stage map-reduce-like DAG:
  //
  //          1  2  3  4          (stage A: 4 independent maps)
  //           \ | | /
  //    0 ----->  5               (reduce; also depends on a setup task 0)
  //            / | \.
  //           6  7  8            (stage B: 3 maps)
  //            \ | /
  //              9               (final reduce)
  abg::dag::DagStructure structure;
  structure.children.resize(10);
  structure.children[0] = {5};
  for (abg::dag::NodeId map_task : {1u, 2u, 3u, 4u}) {
    structure.children[map_task] = {5};
  }
  structure.children[5] = {6, 7, 8};
  for (abg::dag::NodeId map_task : {6u, 7u, 8u}) {
    structure.children[map_task] = {9};
  }

  abg::dag::DagJob job{structure};
  const abg::dag::JobCharacteristics c = abg::dag::characteristics_of(job);
  std::cout << "Custom DAG: " << structure.node_count() << " tasks, "
            << structure.edge_count() << " edges\n"
            << "T1 = " << c.work << ", T_inf = " << c.critical_path
            << ", average parallelism = "
            << abg::util::format_double(c.average_parallelism, 2)
            << ", widest level = " << c.max_level_width << "\n\n";

  std::cout << "Levels: ";
  for (abg::dag::NodeId id = 0; id < 10; ++id) {
    std::cout << job.node_level(id) << (id + 1 < 10 ? " " : "\n\n");
  }

  const abg::sim::JobTrace trace = abg::core::run_single(
      abg::core::abg_spec(), job,
      abg::sim::SingleJobConfig{.processors = 4, .quantum_length = 2});

  abg::util::Table table(
      {"quantum", "d(q)", "a(q)", "T1(q)", "T_inf(q)", "A(q)"});
  for (const auto& q : trace.quanta) {
    table.add_row({std::to_string(q.index), std::to_string(q.request),
                   std::to_string(q.allotment), std::to_string(q.work),
                   abg::util::format_double(q.cpl, 2),
                   abg::util::format_double(q.average_parallelism(), 2)});
  }
  table.print(std::cout);
  std::cout << "\nCompleted in " << trace.response_time()
            << " steps (critical path " << trace.critical_path << ").\n";
  return 0;
}
