// Scalability curves: why adaptivity matters.
//
//   ./scalability [--seed=N]
//
// Runs one fork-join job at fixed allotments (1, 2, 4, ... P) and prints
// its speedup / efficiency curve, then contrasts the best fixed
// allocation with ABG: the fixed allocation must choose between wasting
// processors in serial phases and starving the parallel ones; ABG gets
// both by following the parallelism.  Closes with a Gantt chart of a
// small multiprogrammed run.
#include <iostream>

#include "core/run.hpp"
#include "metrics/scalability.hpp"
#include "sim/quantum_engine.hpp"
#include "sim/report.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/fork_join.hpp"

int main(int argc, char** argv) {
  const abg::util::Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 4));
  const int processors = 64;
  const abg::dag::Steps quantum = 250;

  abg::util::Rng rng(seed);
  const auto job = abg::workload::make_fork_join_job(
      rng, abg::workload::figure5_spec(16.0, quantum));
  std::cout << "Fork-join job: T1 = " << job->total_work() << ", T_inf = "
            << job->critical_path() << " (max speedup "
            << abg::util::format_double(
                   static_cast<double>(job->total_work()) /
                       static_cast<double>(job->critical_path()), 2)
            << ")\n\n";

  abg::util::Table table({"p", "T(p)", "speedup", "efficiency"});
  const auto curve = abg::metrics::scalability_curve(
      *job, abg::metrics::power_of_two_counts(processors));
  for (const auto& point : curve) {
    table.add_row({std::to_string(point.processors),
                   std::to_string(point.time),
                   abg::util::format_double(point.speedup, 2),
                   abg::util::format_double(point.efficiency, 3)});
  }
  table.print(std::cout);

  const abg::sim::JobTrace trace = abg::core::run_single(
      abg::core::abg_spec(), *job,
      abg::sim::SingleJobConfig{.processors = processors,
                                .quantum_length = quantum});
  std::cout << "\nABG (adaptive): time " << trace.response_time()
            << ", mean allotment "
            << abg::util::format_double(
                   static_cast<double>(trace.total_allotted()) /
                       static_cast<double>(trace.response_time()), 1)
            << " processors, waste/T1 "
            << abg::util::format_double(
                   static_cast<double>(trace.total_waste()) /
                       static_cast<double>(trace.work), 3)
            << " — near the fixed-allocation speedup knee without its "
               "waste.\n";

  // A small multiprogrammed run, visualized.
  std::vector<abg::sim::JobSubmission> subs;
  for (int j = 0; j < 4; ++j) {
    abg::util::Rng job_rng = rng.split();
    abg::sim::JobSubmission s;
    s.job = abg::workload::make_fork_join_job(
        job_rng, abg::workload::figure5_spec(8.0 + 4.0 * j, quantum));
    s.release_step = 3 * quantum * j;
    subs.push_back(std::move(s));
  }
  const abg::sim::SimResult result = abg::core::run_set(
      abg::core::abg_spec(), std::move(subs),
      abg::sim::SimConfig{.processors = processors,
                          .quantum_length = quantum});
  std::cout << "\nGantt (one column per quantum, intensity = share of the "
            << "machine):\n\n"
            << abg::sim::gantt_chart(result, processors);
  return 0;
}
