// Quickstart: schedule one data-parallel fork-join job with ABG and print
// what happened, quantum by quantum.
//
//   ./quickstart [--seed=N] [--transition=C] [--processors=P] [--quantum=L]
//
// This is the paper's basic single-job scenario: an OS that grants every
// request (the job runs alone), B-Greedy execution measuring the job's
// average parallelism each quantum, and A-Control steering the processor
// request toward it.
#include <cstdio>
#include <iostream>

#include "core/run.hpp"
#include "metrics/parallelism_stats.hpp"
#include "sim/quantum_engine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/fork_join.hpp"

int main(int argc, char** argv) {
  const abg::util::Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const double transition = cli.get_double("transition", 16.0);
  const int processors = static_cast<int>(cli.get_int("processors", 128));
  const auto quantum = cli.get_int("quantum", 500);

  // 1. Generate a fork-join job whose parallel phases are `transition`
  //    tasks wide.
  abg::util::Rng rng(seed);
  const auto job = abg::workload::make_fork_join_job(
      rng, abg::workload::figure5_spec(transition, quantum));
  std::cout << "Job: T1 (work) = " << job->total_work()
            << ", T_inf (critical path) = " << job->critical_path()
            << ", average parallelism = "
            << static_cast<double>(job->total_work()) /
                   static_cast<double>(job->critical_path())
            << "\n\n";

  // 2. Run it to completion under ABG (B-Greedy + A-Control, r = 0.2).
  const abg::core::SchedulerSpec abg_sched = abg::core::abg_spec();
  const abg::sim::JobTrace trace = abg::core::run_single(
      abg_sched, *job,
      abg::sim::SingleJobConfig{.processors = processors,
                                .quantum_length = quantum});

  // 3. Inspect the feedback loop: request vs measured parallelism.
  abg::util::Table table(
      {"quantum", "request d(q)", "allotment a(q)", "work T1(q)",
       "cpl T_inf(q)", "parallelism A(q)", "waste"});
  for (const auto& q : trace.quanta) {
    table.add_row({std::to_string(q.index), std::to_string(q.request),
                   std::to_string(q.allotment), std::to_string(q.work),
                   abg::util::format_double(q.cpl, 2),
                   abg::util::format_double(q.average_parallelism(), 2),
                   std::to_string(q.waste())});
  }
  table.print(std::cout);

  std::cout << "\nCompleted in " << trace.response_time() << " steps ("
            << abg::util::format_double(
                   static_cast<double>(trace.response_time()) /
                       static_cast<double>(trace.critical_path), 2)
            << "x the critical path), wasting " << trace.total_waste()
            << " processor cycles ("
            << abg::util::format_double(
                   static_cast<double>(trace.total_waste()) /
                       static_cast<double>(trace.work), 3)
            << " per unit of work).\n";
  std::cout << "Empirical transition factor C_L = "
            << abg::util::format_double(
                   abg::metrics::empirical_transition_factor(trace), 2)
            << "\n";
  return 0;
}
