// Distributed work stealing vs centralized B-Greedy on the same DAG, with
// sparkline feedback reports.
//
//   ./work_stealing [--seed=N]
//
// The same fork-join DAG is executed three ways: ABG (centralized greedy,
// exact parallelism measurement), A-Steal (randomized work stealing with
// MIMD feedback) and ABP (work stealing with no feedback — it holds the
// whole machine).  The sparklines show each scheduler's request/allotment
// trajectory against the job's measured parallelism.
#include <iostream>

#include "core/run.hpp"
#include "dag/dag_job.hpp"
#include "sim/quantum_engine.hpp"
#include "sim/report.hpp"
#include "steal/schedulers.hpp"
#include "steal/work_stealing_job.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/fork_join.hpp"

int main(int argc, char** argv) {
  const abg::util::Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 12));
  const int processors = 64;
  const abg::dag::Steps quantum = 200;

  abg::util::Rng rng(seed);
  abg::workload::ForkJoinSpec spec;
  spec.transition_factor = 12.0;
  spec.phase_pairs = 3;
  spec.min_phase_levels = quantum;
  spec.max_phase_levels = 4 * quantum;
  const auto phases = abg::workload::fork_join_phases(rng, spec);
  const abg::dag::DagStructure structure =
      abg::dag::builders::fork_join(phases);

  const abg::sim::SingleJobConfig config{.processors = processors,
                                         .quantum_length = quantum};

  auto report = [&](const char* name, const abg::sim::JobTrace& trace,
                    const abg::steal::StealCounters* counters) {
    std::cout << "== " << name << " ==\n"
              << abg::sim::feedback_report(trace) << "time "
              << trace.response_time() << " steps ("
              << abg::util::format_double(
                     static_cast<double>(trace.response_time()) /
                         static_cast<double>(trace.critical_path), 2)
              << "x critical path), waste " << trace.total_waste()
              << " cycles";
    if (counters != nullptr) {
      std::cout << ", " << counters->steal_attempts << " steal attempts ("
                << counters->successful_steals << " successful), "
                << counters->muggings << " muggings";
    }
    std::cout << "\n\n";
  };

  {
    abg::dag::DagJob job{structure};
    std::cout << "Fork-join DAG: " << job.total_work() << " tasks, "
              << "critical path " << job.critical_path() << ", P = "
              << processors << ", L = " << quantum << "\n\n";
    report("ABG (centralized B-Greedy + A-Control)",
           abg::core::run_single(abg::core::abg_spec(), job, config),
           nullptr);
  }
  {
    abg::steal::WorkStealingJob job{
        structure, abg::util::Rng::derive_seed(seed, 0xABCD)};
    report("A-Steal (work stealing + MIMD feedback)",
           abg::core::run_single(abg::steal::a_steal_spec(), job, config),
           &job.counters());
  }
  {
    abg::steal::WorkStealingJob job{
        structure, abg::util::Rng::derive_seed(seed, 0xABCD)};
    report("ABP (work stealing, no feedback)",
           abg::core::run_single(abg::steal::abp_spec(processors), job,
                                 config),
           &job.counters());
  }
  return 0;
}
