// Multiprogrammed scheduling: a set of malleable jobs space-sharing one
// machine under dynamic equi-partitioning, with ABG and A-Greedy compared
// head-to-head on the identical job set.
//
//   ./multiprogrammed [--seed=N] [--load=X] [--processors=P] [--quantum=L]
//
// This is the paper's second simulation scenario (Figure 6): the OS-level
// allocator divides the machine fairly among the jobs' requests each
// quantum; global performance is measured as makespan and mean response
// time against their theoretical lower bounds.
#include <iostream>
#include <vector>

#include "core/run.hpp"
#include "metrics/lower_bounds.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/job_set.hpp"

namespace {

std::vector<abg::sim::JobSubmission> submissions_of(
    const std::vector<abg::workload::GeneratedJob>& jobs) {
  std::vector<abg::sim::JobSubmission> subs;
  subs.reserve(jobs.size());
  for (const auto& g : jobs) {
    abg::sim::JobSubmission s;
    s.job = std::make_unique<abg::dag::ProfileJob>(g.job->widths());
    subs.push_back(std::move(s));
  }
  return subs;
}

}  // namespace

int main(int argc, char** argv) {
  const abg::util::Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  const double load = cli.get_double("load", 1.0);
  const int processors = static_cast<int>(cli.get_int("processors", 128));
  const auto quantum = cli.get_int("quantum", 500);

  abg::util::Rng rng(seed);
  abg::workload::JobSetSpec spec;
  spec.load = load;
  spec.processors = processors;
  spec.min_phase_levels = quantum / 2;
  spec.max_phase_levels = 2 * quantum;
  const auto jobs = abg::workload::make_job_set(rng, spec);

  std::vector<abg::metrics::JobSummary> summaries;
  for (const auto& g : jobs) {
    summaries.push_back(abg::metrics::JobSummary{
        g.job->total_work(), g.job->critical_path(), 0});
  }
  std::cout << "Job set: " << jobs.size() << " fork-join jobs, realized load "
            << abg::util::format_double(
                   abg::workload::realized_load(jobs, processors), 2)
            << " on P = " << processors << "\n\n";

  const double makespan_star =
      abg::metrics::makespan_lower_bound(summaries, processors);
  const double response_star =
      abg::metrics::response_lower_bound(summaries, processors);

  const abg::sim::SimConfig config{.processors = processors,
                                   .quantum_length = quantum};
  abg::util::Table table({"scheduler", "makespan", "makespan/LB",
                          "mean response", "response/LB", "total waste"});
  for (const auto& sched :
       {abg::core::abg_spec(), abg::core::a_greedy_spec()}) {
    // Both schedulers run the byte-identical job set under DEQ.
    const abg::sim::SimResult result =
        abg::core::run_set(sched, submissions_of(jobs), config);
    table.add_row(
        {sched.name, std::to_string(result.makespan),
         abg::util::format_double(
             static_cast<double>(result.makespan) / makespan_star, 3),
         abg::util::format_double(result.mean_response_time, 1),
         abg::util::format_double(result.mean_response_time / response_star,
                                  3),
         std::to_string(result.total_waste)});
  }
  table.print(std::cout);
  std::cout << "\nLower bounds: makespan >= "
            << abg::util::format_double(makespan_star, 1)
            << ", mean response time >= "
            << abg::util::format_double(response_star, 1) << "\n";
  return 0;
}
