// Trim analysis walkthrough: why raw average availability is the wrong
// yardstick, and how the R-trimmed availability fixes it.
//
//   ./trim_analysis [--seed=N]
//
// An adversarial OS allocator floods the job with processors exactly when
// its parallelism is low (serial phases) and starves it when parallelism
// is high.  Speedup measured against the raw average availability looks
// terrible — no scheduler could have used those processors.  Trim analysis
// removes the few quanta with the highest availability and evaluates
// against the rest (Section 6.1); ABG achieves near-linear speedup by that
// yardstick, and its running time respects the Theorem 3 bound.
#include <cmath>
#include <iostream>

#include "alloc/availability_profile.hpp"
#include "core/run.hpp"
#include "metrics/bounds.hpp"
#include "metrics/parallelism_stats.hpp"
#include "metrics/trim.hpp"
#include "sim/quantum_engine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/fork_join.hpp"

int main(int argc, char** argv) {
  const abg::util::Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 5));
  const int processors = 128;
  const abg::dag::Steps quantum = 500;
  const double rate = 0.1;

  abg::util::Rng rng(seed);
  const auto job = abg::workload::make_fork_join_job(
      rng, abg::workload::figure5_spec(8.0, quantum));

  // The adversary: enormous availability on a few quanta (when the serial
  // prefix keeps requests at 1), scarcity otherwise.
  std::vector<int> availability;
  abg::util::Rng adv = rng.split();
  for (int q = 0; q < 400; ++q) {
    availability.push_back(q % 7 == 0 ? processors
                                      : static_cast<int>(
                                            adv.uniform_int(2, 12)));
  }
  abg::alloc::AvailabilityProfile allocator(availability);

  const abg::sim::JobTrace trace = abg::core::run_single(
      abg::core::abg_spec(abg::core::AbgConfig{.convergence_rate = rate}),
      *job,
      abg::sim::SingleJobConfig{.processors = processors,
                                .quantum_length = quantum},
      &allocator);

  const double transition = abg::metrics::empirical_transition_factor(trace);
  const double time = static_cast<double>(trace.response_time());
  const double total_steps =
      static_cast<double>(trace.quanta.size()) *
      static_cast<double>(quantum);

  std::cout << "Job: T1 = " << trace.work << ", T_inf = "
            << trace.critical_path << ", measured C_L = "
            << abg::util::format_double(transition, 2)
            << "; running time T = " << time
            << "; adversarial availability profile (flood every 7th "
            << "quantum)\n\n";

  // Sweep the trim budget: the raw average (R = 0) counts the adversary's
  // unusable floods; once the flooded quanta are trimmed, the remaining
  // availability reflects what the job could actually have used.
  abg::util::Table table(
      {"trim R (steps)", "trimmed availability", "speedup (T1/T)/avail"});
  for (const double frac : {0.0, 0.05, 0.10, 0.20, 0.30}) {
    const auto r = static_cast<abg::dag::Steps>(frac * total_steps);
    const double avail = abg::metrics::trimmed_availability(trace, r);
    table.add_row(
        {abg::util::format_double(static_cast<double>(r), 0),
         abg::util::format_double(avail, 1),
         avail > 0.0
             ? abg::util::format_double(
                   static_cast<double>(trace.work) / time / avail, 3)
             : "-"});
  }
  table.print(std::cout);

  // The Theorem 3 allowance itself: for fork-join jobs C_L*T_inf is of the
  // order of T1, so the theorem's trim can cover the entire run — the
  // bound then holds through its critical-path term alone.
  const double trim_steps = abg::metrics::theorem3_trim_steps(
      trace.critical_path, transition, rate, quantum);
  const double trimmed = abg::metrics::trimmed_availability(
      trace, static_cast<abg::dag::Steps>(std::ceil(trim_steps)));
  const double bound = abg::metrics::theorem3_time_bound(
      trace.work, trace.critical_path, transition, rate, trimmed, quantum);
  std::cout << "\nTheorem 3 allowance R = "
            << abg::util::format_double(trim_steps, 0) << " steps ("
            << abg::util::format_double(100.0 * trim_steps / total_steps, 0)
            << "% of the run" << (trim_steps >= total_steps ? ", i.e. all"
                                                            : "")
            << "), bound = " << abg::util::format_double(bound, 0)
            << ", T / bound = "
            << abg::util::format_double(time / bound, 3) << "\n";

  const auto classes = abg::metrics::classify_quanta(trace);
  const auto counts = abg::metrics::count_classes(classes);
  std::cout << "\nQuantum classification: " << counts.accounted
            << " accounted, " << counts.deductible << " deductible, "
            << counts.non_full << " non-full.\n"
            << "The raw average is dominated by the unusable floods; "
            << "trimming ~15% of the steps\n(the flooded quanta) yields "
            << "the availability the job was genuinely offered.\n";
  return 0;
}
