// Theorem 1 as a table: for each convergence rate r and job parallelism A,
// the closed-loop pole, BIBO stability and steady-state error computed
// symbolically from T(z) = (K/A)/(z - (1 - K/A)) with K = (1 - r)A, next
// to the same quantities measured from the actual ABG scheduler driving an
// actual constant-parallelism job.
//
//   ./control_theory_table [--csv]
#include <iostream>

#include "bench_util.hpp"
#include "control/analysis.hpp"
#include "control/closed_loop.hpp"
#include "workload/profiles.hpp"

int main(int argc, char** argv) {
  const abg::util::Cli cli(argc, argv);
  const abg::bench::StandardFlags flags(cli);
  const abg::bench::Machine machine{.processors = 512,
                                    .quantum_length = 200};

  std::cout << "Theorem 1: symbolic closed-loop analysis vs measured "
            << "scheduler behaviour\n\n";
  abg::util::Table table({"r", "A", "pole", "BIBO", "ss-error (sym)",
                          "ss-error (meas)", "overshoot (meas)",
                          "rate (meas)", "settled"});
  for (const double rate : {0.0, 0.2, 0.5, 0.8}) {
    for (const int parallelism : {10, 100}) {
      const double a = static_cast<double>(parallelism);
      const auto loop = abg::control::abg_closed_loop(
          abg::control::theorem1_gain(rate, a), a);
      const double pole =
          abg::control::abg_closed_loop_pole(
              abg::control::theorem1_gain(rate, a), a);
      const bool stable = abg::control::is_bibo_stable(loop);
      const double sym_error = abg::control::steady_state_error(loop);

      abg::dag::ProfileJob job(abg::workload::constant_profile(
          parallelism, 60 * machine.quantum_length));
      const abg::sim::JobTrace trace = abg::core::run_single(
          abg::core::abg_spec(
              abg::core::AbgConfig{.convergence_rate = rate}),
          job,
          abg::sim::SingleJobConfig{
              .processors = machine.processors,
              .quantum_length = machine.quantum_length});
      std::vector<double> requests = trace.request_series();
      if (requests.size() > 1) {
        requests.pop_back();
      }
      const auto measured =
          abg::control::analyze_series(requests, a, 0.02, /*rate_floor=*/4.0);

      table.add_row({abg::util::format_double(rate, 1),
                     std::to_string(parallelism),
                     abg::util::format_double(pole, 2),
                     stable ? "yes" : "NO",
                     abg::util::format_double(sym_error, 4),
                     abg::util::format_double(measured.steady_state_error, 2),
                     abg::util::format_double(measured.max_overshoot, 2),
                     abg::util::format_double(measured.convergence_rate, 2),
                     measured.settled ? "yes" : "NO"});
    }
  }
  abg::bench::emit(table, flags);
  std::cout << "\nExpected: pole = r, BIBO stable, zero steady-state error "
            << "and zero overshoot for every r in [0, 1); the measured "
            << "contraction rate tracks r up to integer rounding of "
            << "requests.\n";
  return 0;
}
