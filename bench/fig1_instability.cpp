// Figure 1: request instability of A-Greedy.
//
// A synthetic job whose parallelism stays constant; A-Greedy's
// multiplicative-increase multiplicative-decrease requests never settle —
// they ping-pong around the true parallelism forever.  The harness prints
// the request series next to the job parallelism, plus the
// control-theoretic instability metrics.
//
//   ./fig1_instability [--parallelism=A] [--quanta=N] [--csv]
#include <iostream>

#include "bench_util.hpp"
#include "control/analysis.hpp"
#include "workload/profiles.hpp"

int main(int argc, char** argv) {
  const abg::util::Cli cli(argc, argv);
  const abg::bench::StandardFlags flags(cli);
  const auto parallelism = cli.get_int("parallelism", 10);
  const auto quanta = cli.get_int("quanta", 16);
  const abg::bench::Machine machine;

  // A constant-parallelism job (independent chains) long enough to span
  // the requested quanta even when executed serially at first.
  const auto job = abg::workload::constant_parallelism_chains(
      parallelism, quanta * machine.quantum_length);
  const abg::sim::JobTrace trace = abg::core::run_single(
      abg::core::a_greedy_spec(), *job,
      abg::sim::SingleJobConfig{.processors = machine.processors,
                                .quantum_length = machine.quantum_length});

  std::cout << "Figure 1: A-Greedy processor requests on a job with "
            << "constant parallelism A = " << parallelism << "\n\n";
  abg::util::Table table({"quantum", "request", "parallelism"});
  for (const auto& q : trace.quanta) {
    table.add_row({std::to_string(q.index), std::to_string(q.request),
                   std::to_string(parallelism)});
  }
  abg::bench::emit(table, flags);

  std::vector<double> requests = trace.request_series();
  if (requests.size() > 1) {
    requests.pop_back();  // final non-full quantum
  }
  const abg::control::StepResponseMetrics m = abg::control::analyze_series(
      requests, static_cast<double>(parallelism));
  std::cout << "\nInstability metrics: settled = "
            << (m.settled ? "yes" : "NO")
            << ", steady-state error = "
            << abg::util::format_double(m.steady_state_error, 2)
            << ", max overshoot = "
            << abg::util::format_double(m.max_overshoot, 2)
            << ", residual oscillation (peak-to-peak) = "
            << abg::util::format_double(m.residual_oscillation, 2) << "\n";
  std::cout << "Paper claim: the request fluctuates even though the "
            << "parallelism is constant.\n";
  return 0;
}
