// A-Greedy parameter sensitivity: utilization threshold δ and
// responsiveness ρ.
//
// The paper fixes δ = 0.8, ρ = 2 ("the same parameter settings ... as in
// [12]") and compares against ABG at r = 0.2.  A fair comparison should
// check that A-Greedy's loss is not an artifact of a bad parameter choice:
// this harness sweeps both knobs on the Figure 5 workload and prints the
// best cell next to ABG's result.  The diagnostics columns show *why* the
// rule cannot settle: every cell keeps a large inefficient-quantum
// fraction — the multiplicative decrease fires no matter how the knobs are
// tuned.
//
//   ./agreedy_params [--seed=S] [--jobs=N] [--csv]
#include <iostream>

#include "bench_util.hpp"
#include "metrics/scheduler_diagnostics.hpp"
#include "sched/a_greedy_request.hpp"
#include "workload/fork_join.hpp"

int main(int argc, char** argv) {
  const abg::util::Cli cli(argc, argv);
  const abg::bench::StandardFlags flags(cli, 7);
  const auto jobs = static_cast<int>(cli.get_int("jobs", 8));
  const abg::bench::Machine machine{.processors = 128,
                                    .quantum_length = 500};
  const double transition = 20.0;

  std::cout << "A-Greedy parameter sweep on the Figure 5 workload "
            << "(C_L = " << transition << ", P = " << machine.processors
            << ", L = " << machine.quantum_length << ")\n\n";

  abg::util::Table table({"delta", "rho", "time/Tinf", "waste/T1",
                          "inefficient%", "reallocs/quantum"});

  double best_time = 1e300;
  std::vector<double> best_row;
  for (const double delta : {0.5, 0.65, 0.8, 0.95}) {
    for (const double rho : {1.5, 2.0, 3.0, 4.0}) {
      abg::util::RunningStats time_norm;
      abg::util::RunningStats waste_norm;
      abg::util::RunningStats inefficient;
      abg::util::RunningStats reallocs;
      abg::util::Rng root(flags.seed);
      for (int j = 0; j < jobs; ++j) {
        abg::util::Rng rng = root.split();
        const auto job = abg::workload::make_fork_join_job(
            rng, abg::workload::figure5_spec(transition,
                                             machine.quantum_length));
        const auto spec = abg::core::a_greedy_spec(
            abg::sched::AGreedyConfig{delta, rho});
        const abg::sim::JobTrace trace = abg::core::run_single(
            spec, *job,
            abg::sim::SingleJobConfig{
                .processors = machine.processors,
                .quantum_length = machine.quantum_length});
        time_norm.add(static_cast<double>(trace.response_time()) /
                      static_cast<double>(trace.critical_path));
        waste_norm.add(static_cast<double>(trace.total_waste()) /
                       static_cast<double>(trace.work));
        const auto mix =
            abg::metrics::classify_utilization(trace, delta);
        inefficient.add(static_cast<double>(mix.inefficient) /
                        static_cast<double>(std::max<std::size_t>(
                            1, mix.total())));
        reallocs.add(static_cast<double>(
                         abg::metrics::reallocation_count(trace)) /
                     static_cast<double>(trace.quanta.size()));
      }
      const std::vector<double> row{
          delta, rho, time_norm.mean(), waste_norm.mean(),
          100.0 * inefficient.mean(), reallocs.mean()};
      table.add_numeric_row(row, 3);
      if (time_norm.mean() < best_time) {
        best_time = time_norm.mean();
        best_row = row;
      }
    }
  }
  abg::bench::emit(table, flags);

  // ABG reference at the paper's r = 0.2 on the same jobs.
  abg::util::RunningStats abg_time;
  abg::util::RunningStats abg_waste;
  abg::util::RunningStats abg_reallocs;
  abg::util::Rng root(flags.seed);
  for (int j = 0; j < jobs; ++j) {
    abg::util::Rng rng = root.split();
    const auto job = abg::workload::make_fork_join_job(
        rng, abg::workload::figure5_spec(transition,
                                         machine.quantum_length));
    const abg::sim::JobTrace trace = abg::core::run_single(
        abg::core::abg_spec(), *job,
        abg::sim::SingleJobConfig{.processors = machine.processors,
                                  .quantum_length =
                                      machine.quantum_length});
    abg_time.add(static_cast<double>(trace.response_time()) /
                 static_cast<double>(trace.critical_path));
    abg_waste.add(static_cast<double>(trace.total_waste()) /
                  static_cast<double>(trace.work));
    abg_reallocs.add(
        static_cast<double>(abg::metrics::reallocation_count(trace)) /
        static_cast<double>(trace.quanta.size()));
  }
  std::cout << "\nBest A-Greedy cell: delta = " << best_row[0] << ", rho = "
            << best_row[1] << ": time/Tinf = "
            << abg::util::format_double(best_row[2], 3) << ", waste/T1 = "
            << abg::util::format_double(best_row[3], 3) << "\n"
            << "ABG (r = 0.2) reference:          time/Tinf = "
            << abg::util::format_double(abg_time.mean(), 3)
            << ", waste/T1 = "
            << abg::util::format_double(abg_waste.mean(), 3)
            << ", reallocs/quantum = "
            << abg::util::format_double(abg_reallocs.mean(), 3) << "\n";
  return 0;
}
