// Shared plumbing for the figure-reproduction harnesses: flag parsing
// conventions and the comparison runner used by Figures 5 and 6.
//
// Every harness prints (a) a human-readable aligned table, (b) the same
// series as CSV when --csv is passed, and (c) a summary line comparing the
// measured effect against the paper's headline claim.  `--full` switches
// from the fast default sweep to the paper-scale one.
#pragma once

#include <iostream>
#include <memory>
#include <vector>

#include "core/run.hpp"
#include "dag/profile_job.hpp"
#include "sim/quantum_engine.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace abg::bench {

/// Paper-standard machine parameters (Section 7.1).
struct Machine {
  int processors = 128;
  dag::Steps quantum_length = 1000;
};

/// The flag set every harness shares — parsed once here instead of the
/// copy-pasted get_bool/get_int blocks each binary used to carry:
///   --full       paper-scale sweep instead of the fast default,
///   --csv        machine-readable table output,
///   --seed=S     base seed (per-harness default).
struct StandardFlags {
  bool full = false;
  bool csv = false;
  std::uint64_t seed = 2008;

  explicit StandardFlags(const util::Cli& cli,
                         std::int64_t default_seed = 2008)
      : full(cli.get_bool("full", false)),
        csv(cli.get_bool("csv", false)),
        seed(static_cast<std::uint64_t>(cli.get_int("seed", default_seed))) {}
};

/// Worker threads for the harnesses that sweep through exp::SweepRunner:
/// --jobs=N, where N <= 0 selects hardware_concurrency.
inline int thread_count_flag(const util::Cli& cli) {
  return static_cast<int>(cli.get_int("jobs", 1));
}

/// Prints a table in the format selected by --csv.
inline void emit(const util::Table& table, const StandardFlags& flags) {
  if (flags.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

/// Runs the identical job under both ABG and A-Greedy in the paper's
/// unconstrained single-job setup and returns both traces.
struct HeadToHead {
  sim::JobTrace abg;
  sim::JobTrace a_greedy;
};

inline HeadToHead run_head_to_head(const dag::Job& job,
                                   const Machine& machine,
                                   double convergence_rate = 0.2) {
  const sim::SingleJobConfig config{
      .processors = machine.processors,
      .quantum_length = machine.quantum_length};
  HeadToHead out;
  {
    const auto clone = job.fresh_clone();
    out.abg = core::run_single(
        core::abg_spec(core::AbgConfig{.convergence_rate = convergence_rate}),
        *clone, config);
  }
  {
    const auto clone = job.fresh_clone();
    out.a_greedy = core::run_single(core::a_greedy_spec(), *clone, config);
  }
  return out;
}

}  // namespace abg::bench
