// Shared plumbing for the figure-reproduction harnesses: flag parsing
// conventions and the comparison runner used by Figures 5 and 6.
//
// Every harness prints (a) a human-readable aligned table, (b) the same
// series as CSV when --csv is passed, and (c) a summary line comparing the
// measured effect against the paper's headline claim.  `--full` switches
// from the fast default sweep to the paper-scale one.
#pragma once

#include <iostream>
#include <memory>
#include <vector>

#include "core/run.hpp"
#include "dag/profile_job.hpp"
#include "sim/quantum_engine.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace abg::bench {

/// Paper-standard machine parameters (Section 7.1).
struct Machine {
  int processors = 128;
  dag::Steps quantum_length = 1000;
};

/// Prints a table in the format selected by --csv.
inline void emit(const util::Table& table, const util::Cli& cli) {
  if (cli.get_bool("csv", false)) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

/// Runs the identical job under both ABG and A-Greedy in the paper's
/// unconstrained single-job setup and returns both traces.
struct HeadToHead {
  sim::JobTrace abg;
  sim::JobTrace a_greedy;
};

inline HeadToHead run_head_to_head(const dag::Job& job,
                                   const Machine& machine,
                                   double convergence_rate = 0.2) {
  const sim::SingleJobConfig config{
      .processors = machine.processors,
      .quantum_length = machine.quantum_length};
  HeadToHead out;
  {
    const auto clone = job.fresh_clone();
    out.abg = core::run_single(
        core::abg_spec(core::AbgConfig{.convergence_rate = convergence_rate}),
        *clone, config);
  }
  {
    const auto clone = job.fresh_clone();
    out.a_greedy = core::run_single(core::a_greedy_spec(), *clone, config);
  }
  return out;
}

}  // namespace abg::bench
