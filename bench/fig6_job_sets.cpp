// Figure 6: makespan and mean response time of ABG and A-Greedy on job
// sets space-sharing the machine under dynamic equi-partitioning.
//
// Paper setup (Section 7.2): job sets of varying load (average parallelism
// of the set / P), each set run under both schedulers coupled with DEQ;
// 5000 job sets total.  Panels:
//   (a) makespan / theoretical lower bound vs load,
//   (b) makespan ratio A-Greedy / ABG        (paper: 1.10-1.15 at light
//       load, converging to ~1 under heavy load),
//   (c) mean response time / lower bound vs load,
//   (d) response-time ratio A-Greedy / ABG.
//
//   ./fig6_job_sets [--full] [--sets=N] [--seed=S] [--csv]
#include <iostream>
#include <vector>

#include "alloc/round_robin.hpp"
#include "bench_util.hpp"
#include "util/bootstrap.hpp"
#include "metrics/lower_bounds.hpp"
#include "workload/job_set.hpp"

namespace {

std::vector<abg::sim::JobSubmission> submissions_of(
    const std::vector<abg::workload::GeneratedJob>& jobs) {
  std::vector<abg::sim::JobSubmission> subs;
  subs.reserve(jobs.size());
  for (const auto& g : jobs) {
    abg::sim::JobSubmission s;
    s.job = std::make_unique<abg::dag::ProfileJob>(g.job->widths());
    subs.push_back(std::move(s));
  }
  return subs;
}

}  // namespace

int main(int argc, char** argv) {
  const abg::util::Cli cli(argc, argv);
  const bool full = cli.get_bool("full", false);
  const auto sets_per_load =
      static_cast<int>(cli.get_int("sets", full ? 500 : 30));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2008));
  // --allocator=rr swaps dynamic equi-partitioning for round-robin (the
  // other fair allocator He et al. couple the schedulers with).
  const bool use_round_robin = cli.get("allocator", "deq") == "rr";
  const abg::bench::Machine machine;
  const std::vector<double> loads{0.25, 0.5, 1.0, 1.5, 2.0,
                                  3.0,  4.0, 5.0, 6.0};

  std::cout << "Figure 6: job sets under "
            << (use_round_robin ? "round-robin" : "dynamic equi-partitioning")
            << ", P = "
            << machine.processors << ", L = " << machine.quantum_length
            << ", " << sets_per_load << " sets per load\n\n";

  abg::util::Table table(
      {"load", "jobs", "M/LB ABG", "M/LB A-Greedy", "M ratio", "R/LB ABG",
       "R/LB A-Greedy", "R ratio"});
  std::vector<double> light_makespan_ratio;
  std::vector<double> light_response_ratio;
  std::vector<double> heavy_makespan_ratio;
  std::vector<double> heavy_response_ratio;

  abg::util::Rng root(seed);
  for (const double load : loads) {
    abg::util::RunningStats m_abg;
    abg::util::RunningStats m_ag;
    abg::util::RunningStats r_abg;
    abg::util::RunningStats r_ag;
    abg::util::RunningStats m_ratio;
    abg::util::RunningStats r_ratio;
    abg::util::RunningStats set_size;
    for (int s = 0; s < sets_per_load; ++s) {
      abg::util::Rng rng = root.split();
      abg::workload::JobSetSpec spec;
      spec.load = load;
      spec.processors = machine.processors;
      spec.min_phase_levels = machine.quantum_length / 2;
      spec.max_phase_levels = 2 * machine.quantum_length;
      const auto jobs = abg::workload::make_job_set(rng, spec);
      set_size.add(static_cast<double>(jobs.size()));

      std::vector<abg::metrics::JobSummary> summaries;
      for (const auto& g : jobs) {
        summaries.push_back(abg::metrics::JobSummary{
            g.job->total_work(), g.job->critical_path(), 0});
      }
      const double makespan_star = abg::metrics::makespan_lower_bound(
          summaries, machine.processors);
      const double response_star = abg::metrics::response_lower_bound(
          summaries, machine.processors);

      const abg::sim::SimConfig config{
          .processors = machine.processors,
          .quantum_length = machine.quantum_length};
      abg::alloc::RoundRobin rr_abg;
      abg::alloc::RoundRobin rr_ag;
      const auto abg_result = abg::core::run_set(
          abg::core::abg_spec(), submissions_of(jobs), config,
          use_round_robin ? &rr_abg : nullptr);
      const auto ag_result = abg::core::run_set(
          abg::core::a_greedy_spec(), submissions_of(jobs), config,
          use_round_robin ? &rr_ag : nullptr);

      m_abg.add(static_cast<double>(abg_result.makespan) / makespan_star);
      m_ag.add(static_cast<double>(ag_result.makespan) / makespan_star);
      r_abg.add(abg_result.mean_response_time / response_star);
      r_ag.add(ag_result.mean_response_time / response_star);
      const double mr = static_cast<double>(ag_result.makespan) /
                        static_cast<double>(abg_result.makespan);
      const double rr =
          ag_result.mean_response_time / abg_result.mean_response_time;
      m_ratio.add(mr);
      r_ratio.add(rr);
      if (load <= 1.5) {
        light_makespan_ratio.push_back(mr);
        light_response_ratio.push_back(rr);
      }
      if (load >= 4.0) {
        heavy_makespan_ratio.push_back(mr);
        heavy_response_ratio.push_back(rr);
      }
    }
    table.add_numeric_row({load, set_size.mean(), m_abg.mean(), m_ag.mean(),
                           m_ratio.mean(), r_abg.mean(), r_ag.mean(),
                           r_ratio.mean()},
                          3);
  }
  abg::bench::emit(table, cli);

  auto ci_text = [&](const std::vector<double>& samples,
                     std::uint64_t salt) {
    const abg::util::ConfidenceInterval ci =
        abg::util::bootstrap_mean(samples, seed ^ salt);
    return abg::util::format_double(ci.point, 3) + " [" +
           abg::util::format_double(ci.lower, 3) + ", " +
           abg::util::format_double(ci.upper, 3) + "]";
  };
  std::cout << "\nSummary (paper: ABG better by 10-15% at light load; "
            << "comparable under heavy load; 95% bootstrap CIs):\n"
            << "  light-load (<= 1.5) makespan ratio A-Greedy/ABG = "
            << ci_text(light_makespan_ratio, 0xA1)
            << ", response ratio = "
            << ci_text(light_response_ratio, 0xA2)
            << "\n  heavy-load (>= 4.0) makespan ratio = "
            << ci_text(heavy_makespan_ratio, 0xA3)
            << ", response ratio = "
            << ci_text(heavy_response_ratio, 0xA4) << "\n";
  return 0;
}
