// Figure 6: makespan and mean response time of ABG and A-Greedy on job
// sets space-sharing the machine under dynamic equi-partitioning.
//
// Paper setup (Section 7.2): job sets of varying load (average parallelism
// of the set / P), each set run under both schedulers coupled with DEQ;
// 5000 job sets total.  Panels:
//   (a) makespan / theoretical lower bound vs load,
//   (b) makespan ratio A-Greedy / ABG        (paper: 1.10-1.15 at light
//       load, converging to ~1 under heavy load),
//   (c) mean response time / lower bound vs load,
//   (d) response-time ratio A-Greedy / ABG.
//
// The sweep executes on the exp::SweepRunner thread pool: every (load,
// set, scheduler) triple is an independent RunSpec, schedulers share a
// seed index so both face identical job sets, and results are identical
// at any --jobs level.
//
//   ./fig6_job_sets [--full] [--sets=N] [--seed=S] [--csv] [--jobs=N]
//                   [--allocator=deq|rr] [--jsonl=PATH] [--json=PATH]
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "exp/result_sink.hpp"
#include "exp/runner.hpp"
#include "util/bootstrap.hpp"

int main(int argc, char** argv) {
  const abg::util::Cli cli(argc, argv);
  const abg::bench::StandardFlags flags(cli, 2008);
  const auto sets_per_load =
      static_cast<int>(cli.get_int("sets", flags.full ? 500 : 30));
  // --allocator=rr swaps dynamic equi-partitioning for round-robin (the
  // other fair allocator He et al. couple the schedulers with).
  const bool use_round_robin = cli.get("allocator", "deq") == "rr";
  const int threads = abg::bench::thread_count_flag(cli);
  const abg::bench::Machine machine;
  const std::vector<double> loads{0.25, 0.5, 1.0, 1.5, 2.0,
                                  3.0,  4.0, 5.0, 6.0};

  std::cout << "Figure 6: job sets under "
            << (use_round_robin ? "round-robin" : "dynamic equi-partitioning")
            << ", P = "
            << machine.processors << ", L = " << machine.quantum_length
            << ", " << sets_per_load << " sets per load, " << threads
            << " worker thread(s)\n\n";

  // Grid: loads x sets x {ABG, A-Greedy}.  Scheduler variants of the same
  // (load, set) share a seed index and therefore the exact job set.
  const std::vector<abg::exp::SchedulerKind> schedulers = {
      abg::exp::SchedulerKind::kAbg, abg::exp::SchedulerKind::kAGreedy};
  std::vector<abg::exp::RunSpec> specs;
  specs.reserve(loads.size() * static_cast<std::size_t>(sets_per_load) *
                schedulers.size());
  for (std::size_t li = 0; li < loads.size(); ++li) {
    for (int s = 0; s < sets_per_load; ++s) {
      for (const abg::exp::SchedulerKind scheduler : schedulers) {
        abg::exp::RunSpec spec;
        spec.scheduler = scheduler;
        spec.workload.kind = abg::exp::WorkloadKind::kJobSet;
        spec.workload.load = loads[li];
        spec.machine = {.processors = machine.processors,
                        .quantum_length = machine.quantum_length};
        spec.allocator = use_round_robin
                             ? abg::exp::AllocatorKind::kRoundRobin
                             : abg::exp::AllocatorKind::kDefault;
        spec.seed_index =
            li * static_cast<std::uint64_t>(sets_per_load) +
            static_cast<std::uint64_t>(s);
        spec.group = "load=" + abg::util::format_double(loads[li], 2);
        specs.push_back(std::move(spec));
      }
    }
  }

  abg::exp::SweepConfig sweep;
  sweep.threads = threads;
  sweep.base_seed = flags.seed;
  if (threads != 1) {
    sweep.on_progress = abg::exp::stderr_progress();
  }
  const std::vector<abg::exp::RunRecord> records =
      abg::exp::SweepRunner(sweep).run(specs);

  abg::util::Table table(
      {"load", "jobs", "M/LB ABG", "M/LB A-Greedy", "M ratio", "R/LB ABG",
       "R/LB A-Greedy", "R ratio"});
  std::vector<double> light_makespan_ratio;
  std::vector<double> light_response_ratio;
  std::vector<double> heavy_makespan_ratio;
  std::vector<double> heavy_response_ratio;

  // Records come back in grid order: (abg, a-greedy) pairs per set.
  std::size_t r = 0;
  for (const double load : loads) {
    abg::util::RunningStats m_abg;
    abg::util::RunningStats m_ag;
    abg::util::RunningStats r_abg;
    abg::util::RunningStats r_ag;
    abg::util::RunningStats m_ratio;
    abg::util::RunningStats r_ratio;
    abg::util::RunningStats set_size;
    for (int s = 0; s < sets_per_load; ++s) {
      const abg::exp::RunRecord& abg_rec = records[r++];
      const abg::exp::RunRecord& ag_rec = records[r++];
      set_size.add(abg_rec.metric("jobs"));
      m_abg.add(abg_rec.metric("makespan_over_lb"));
      m_ag.add(ag_rec.metric("makespan_over_lb"));
      r_abg.add(abg_rec.metric("response_over_lb"));
      r_ag.add(ag_rec.metric("response_over_lb"));
      const double mr = ag_rec.metric("makespan") / abg_rec.metric("makespan");
      const double rr = ag_rec.metric("mean_response_time") /
                        abg_rec.metric("mean_response_time");
      m_ratio.add(mr);
      r_ratio.add(rr);
      if (load <= 1.5) {
        light_makespan_ratio.push_back(mr);
        light_response_ratio.push_back(rr);
      }
      if (load >= 4.0) {
        heavy_makespan_ratio.push_back(mr);
        heavy_response_ratio.push_back(rr);
      }
    }
    table.add_numeric_row({load, set_size.mean(), m_abg.mean(), m_ag.mean(),
                           m_ratio.mean(), r_abg.mean(), r_ag.mean(),
                           r_ratio.mean()},
                          3);
  }
  abg::bench::emit(table, flags);

  auto ci_text = [&](const std::vector<double>& samples,
                     std::uint64_t salt) {
    const abg::util::ConfidenceInterval ci = abg::util::bootstrap_mean(
        samples, abg::util::Rng::derive_seed(flags.seed, salt));
    return abg::util::format_double(ci.point, 3) + " [" +
           abg::util::format_double(ci.lower, 3) + ", " +
           abg::util::format_double(ci.upper, 3) + "]";
  };
  std::cout << "\nSummary (paper: ABG better by 10-15% at light load; "
            << "comparable under heavy load; 95% bootstrap CIs):\n"
            << "  light-load (<= 1.5) makespan ratio A-Greedy/ABG = "
            << ci_text(light_makespan_ratio, 0xA1)
            << ", response ratio = "
            << ci_text(light_response_ratio, 0xA2)
            << "\n  heavy-load (>= 4.0) makespan ratio = "
            << ci_text(heavy_makespan_ratio, 0xA3)
            << ", response ratio = "
            << ci_text(heavy_response_ratio, 0xA4) << "\n";

  // Machine-readable trajectory: per-run JSONL and the aggregated summary.
  abg::exp::ResultSink sink("fig6_job_sets", flags.seed);
  sink.add_all(records);
  if (cli.has("jsonl")) {
    std::ofstream out(cli.get("jsonl", ""));
    sink.write_jsonl(out);
  }
  if (cli.has("json")) {
    std::ofstream out(cli.get("json", ""));
    sink.write_summary(out);
  }
  return 0;
}
