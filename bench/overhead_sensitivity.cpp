// Reallocation-overhead sensitivity: how the schedulers compare when
// processor reallocations are no longer free.
//
// The paper's simulations ignore reallocation overheads, but its central
// criticism of A-Greedy is precisely that request instability causes
// "unnecessary reallocation overheads and loss of localities".  This
// harness charges `cost` lost steps per processor moved at each quantum
// boundary and sweeps the cost: A-Greedy reallocates every quantum even at
// steady state (8 <-> 16 ping-pong), so its penalty grows with cost, while
// ABG's requests settle and stop paying.
//
//   ./overhead_sensitivity [--seed=S] [--jobs=N] [--csv]
#include <iostream>

#include "bench_util.hpp"
#include "workload/fork_join.hpp"

int main(int argc, char** argv) {
  const abg::util::Cli cli(argc, argv);
  const abg::bench::StandardFlags flags(cli, 7);
  const auto jobs = static_cast<int>(cli.get_int("jobs", 10));
  const abg::bench::Machine machine{.processors = 128,
                                    .quantum_length = 500};
  const double transition = 20.0;

  std::cout << "Reallocation-overhead sweep (cost = lost steps per "
            << "processor moved), fork-join jobs with C_L = " << transition
            << ", P = " << machine.processors << ", L = "
            << machine.quantum_length << "\n\n";

  abg::util::Table table({"cost", "time/Tinf ABG", "time/Tinf A-Greedy",
                          "time ratio", "waste/T1 ABG",
                          "waste/T1 A-Greedy", "waste ratio"});
  for (const abg::dag::Steps cost : {0, 1, 2, 5, 10, 20}) {
    abg::util::RunningStats abg_time;
    abg::util::RunningStats ag_time;
    abg::util::RunningStats abg_waste;
    abg::util::RunningStats ag_waste;
    abg::util::Rng root(flags.seed);
    for (int j = 0; j < jobs; ++j) {
      abg::util::Rng rng = root.split();
      const auto job = abg::workload::make_fork_join_job(
          rng, abg::workload::figure5_spec(transition,
                                           machine.quantum_length));
      abg::sim::SingleJobConfig config{
          .processors = machine.processors,
          .quantum_length = machine.quantum_length,
          .reallocation_cost_per_proc = cost};
      const auto abg_clone = job->fresh_clone();
      const abg::sim::JobTrace abg_trace = abg::core::run_single(
          abg::core::abg_spec(), *abg_clone, config);
      const auto ag_clone = job->fresh_clone();
      const abg::sim::JobTrace ag_trace = abg::core::run_single(
          abg::core::a_greedy_spec(), *ag_clone, config);
      const double cpl = static_cast<double>(job->critical_path());
      const double work = static_cast<double>(job->total_work());
      abg_time.add(static_cast<double>(abg_trace.response_time()) / cpl);
      ag_time.add(static_cast<double>(ag_trace.response_time()) / cpl);
      abg_waste.add(static_cast<double>(abg_trace.total_waste()) / work);
      ag_waste.add(static_cast<double>(ag_trace.total_waste()) / work);
    }
    table.add_numeric_row(
        {static_cast<double>(cost), abg_time.mean(), ag_time.mean(),
         ag_time.mean() / abg_time.mean(), abg_waste.mean(),
         ag_waste.mean(), ag_waste.mean() / abg_waste.mean()},
        3);
  }
  abg::bench::emit(table, flags);
  std::cout << "\nExpected: both schedulers slow down as reallocation gets "
            << "dearer, but A-Greedy degrades faster — its steady-state "
            << "request oscillation pays the migration cost every quantum "
            << "while ABG's settled requests stop paying.\n";
  return 0;
}
