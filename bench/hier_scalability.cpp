// Hierarchical scheduling scalability: wall-clock of the sharded set
// engine across job count x group count x worker threads.
//
// Each point simulates the identical job set (byte-identical results at
// every thread count — only the wall-clock moves), so the table reads
// directly as a scaling study: within one (njobs, groups) block the
// speedup column is wall-clock(threads=1) / wall-clock(threads=T), and
// the groups axis shows what desire aggregation buys over the flat
// 1-group tree.  The `rebalance_ms` column is the coordinator's
// aggregation latency (the "hier.rebalance" self-profile span).
//
// Defaults run a small sweep in seconds; --full runs the paper-scale
// >= 50k-job set.  Every run is recorded through exp::ResultSink into
// BENCH_hier_scalability.json (--sink-out=PATH to move, =none to
// disable), so CI tracks a scaling trajectory per change.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "dag/profile_job.hpp"
#include "exp/result_sink.hpp"
#include "obs/profile.hpp"
#include "workload/profiles.hpp"

namespace abg::bench {
namespace {

/// `njobs` small square-wave jobs with per-job width variation so the
/// per-group desires actually differ.
std::vector<sim::JobSubmission> make_submissions(int njobs,
                                                 std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<sim::JobSubmission> subs;
  subs.reserve(static_cast<std::size_t>(njobs));
  for (int i = 0; i < njobs; ++i) {
    const auto high = static_cast<dag::TaskCount>(2 + rng.uniform_int(0, 10));
    sim::JobSubmission s;
    s.job = std::make_unique<dag::ProfileJob>(
        workload::square_wave_profile(1, 25, high, 25, 2));
    subs.push_back(std::move(s));
  }
  return subs;
}

struct Point {
  int njobs = 0;
  int groups = 0;
  int threads = 0;
  double wall_ms = 0.0;
  double rebalance_ms = 0.0;
  double makespan = 0.0;
  double quanta = 0.0;
  /// Fraction of the run's wall-clock each pool worker spent executing
  /// group tasks (min / mean / max over workers).  A low min with a high
  /// max reads as packing imbalance, not barrier overhead.
  double busy_min = 0.0;
  double busy_mean = 0.0;
  double busy_max = 0.0;
};

Point run_point(int njobs, int groups, int threads, int processors,
                dag::Steps rebalance, std::uint64_t seed) {
  auto subs = make_submissions(njobs, seed);
  obs::Profiler profiler;
  std::vector<double> busy_seconds;
  sim::SimConfig config{.processors = processors, .quantum_length = 50};
  config.hier.groups = groups;
  config.hier.threads = threads;
  config.hier.rebalance_quanta = rebalance;
  config.hier.profiler = &profiler;
  config.hier.worker_busy_seconds = &busy_seconds;

  const auto start = std::chrono::steady_clock::now();
  const sim::SimResult result =
      core::run_set(core::abg_spec(), std::move(subs), config);
  const std::chrono::duration<double, std::milli> wall =
      std::chrono::steady_clock::now() - start;

  Point point;
  point.njobs = njobs;
  point.groups = groups;
  point.threads = threads;
  point.wall_ms = wall.count();
  point.rebalance_ms = profiler.span("hier.rebalance").seconds * 1000.0;
  point.makespan = static_cast<double>(result.makespan);
  point.quanta = static_cast<double>(result.quanta);
  if (!busy_seconds.empty() && wall.count() > 0.0) {
    const double wall_seconds = wall.count() / 1000.0;
    double sum = 0.0;
    point.busy_min = busy_seconds.front() / wall_seconds;
    for (const double seconds : busy_seconds) {
      const double fraction = seconds / wall_seconds;
      point.busy_min = std::min(point.busy_min, fraction);
      point.busy_max = std::max(point.busy_max, fraction);
      sum += fraction;
    }
    point.busy_mean = sum / static_cast<double>(busy_seconds.size());
  }
  return point;
}

}  // namespace
}  // namespace abg::bench

int main(int argc, char** argv) {
  using namespace abg;
  try {
    const util::Cli cli(argc, argv);
    const bench::StandardFlags flags(cli);
    const std::string sink_out =
        cli.get("sink-out", "BENCH_hier_scalability.json");

    // Epoch length between tree rebalances.  Coarser epochs amortise the
    // per-epoch barrier, which is what lets the group loops actually
    // scale with threads; 1 re-splits the machine every quantum.
    const auto rebalance =
        static_cast<dag::Steps>(cli.get_positive_int("rebalance", 8));

    // --jobs caps the thread axis (the CI smoke passes --jobs=2); <= 0
    // selects hardware concurrency.
    int max_threads = static_cast<int>(cli.get_int("jobs", 4));
    if (max_threads <= 0) {
      max_threads = std::max(1u, std::thread::hardware_concurrency());
    }
    std::vector<int> thread_axis;
    for (int t = 1; t <= max_threads; t *= 2) {
      thread_axis.push_back(t);
    }
    if (thread_axis.back() != max_threads) {
      thread_axis.push_back(max_threads);
    }

    const std::vector<int> njobs_axis =
        flags.full ? std::vector<int>{50000} : std::vector<int>{512};
    const std::vector<int> groups_axis =
        flags.full ? std::vector<int>{1, 8, 64} : std::vector<int>{1, 4, 16};
    const int processors = flags.full ? 256 : 64;

    util::Table table(
        {"njobs", "groups", "threads", "epoch", "wall_ms", "speedup",
         "efficiency", "busy_min", "busy_mean", "busy_max", "rebalance_ms",
         "makespan", "quanta"});
    exp::ResultSink sink("hier_scalability", flags.seed);
    std::int64_t run_id = 0;

    for (const int njobs : njobs_axis) {
      for (const int groups : groups_axis) {
        double serial_ms = 0.0;
        for (const int threads : thread_axis) {
          const bench::Point p = bench::run_point(
              njobs, groups, threads, processors, rebalance, flags.seed);
          if (threads == 1) {
            serial_ms = p.wall_ms;
          }
          const double speedup =
              p.wall_ms > 0.0 && serial_ms > 0.0 ? serial_ms / p.wall_ms
                                                 : 1.0;
          // Scaling efficiency: fraction of ideal linear speedup realised
          // at this thread count (1.0 = perfectly parallel).
          const double efficiency = speedup / static_cast<double>(threads);
          table.add_row({std::to_string(p.njobs), std::to_string(p.groups),
                         std::to_string(p.threads),
                         std::to_string(static_cast<long long>(rebalance)),
                         util::format_double(p.wall_ms, 2),
                         util::format_double(speedup, 2),
                         util::format_double(efficiency, 2),
                         util::format_double(p.busy_min, 2),
                         util::format_double(p.busy_mean, 2),
                         util::format_double(p.busy_max, 2),
                         util::format_double(p.rebalance_ms, 2),
                         util::format_double(p.makespan, 0),
                         util::format_double(p.quanta, 0)});

          exp::RunRecord record;
          record.run_id = run_id++;
          record.group = "njobs=" + std::to_string(njobs) +
                         "/groups=" + std::to_string(groups);
          record.workload = "hier-scalability";
          record.fault = "none";
          record.hier_groups = groups;
          record.seed = flags.seed;
          record.metrics.emplace_back("threads",
                                      static_cast<double>(threads));
          record.metrics.emplace_back("rebalance_quanta",
                                      static_cast<double>(rebalance));
          // Thread speedup is bounded by the host; on a 1-core box the
          // column only proves the barrier costs nothing.  Record the
          // regime the measurement was taken in.
          record.metrics.emplace_back(
              "host_cores", static_cast<double>(std::max(
                                1u, std::thread::hardware_concurrency())));
          record.metrics.emplace_back("wall_ms", p.wall_ms);
          record.metrics.emplace_back("speedup", speedup);
          record.metrics.emplace_back("efficiency", efficiency);
          record.metrics.emplace_back("busy_min", p.busy_min);
          record.metrics.emplace_back("busy_mean", p.busy_mean);
          record.metrics.emplace_back("busy_max", p.busy_max);
          record.metrics.emplace_back("rebalance_ms", p.rebalance_ms);
          record.metrics.emplace_back("makespan", p.makespan);
          record.metrics.emplace_back("quanta", p.quanta);
          sink.add(std::move(record));
        }
      }
    }

    bench::emit(table, flags);
    if (sink_out != "none") {
      std::ofstream out(sink_out);
      sink.write_summary(out);
      std::cout << "wrote " << sink_out << "\n";
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "hier_scalability: " << error.what() << "\n";
    return 1;
  }
}
