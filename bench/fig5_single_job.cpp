// Figure 5: running time and processor waste of ABG and A-Greedy on
// individual data-parallel jobs, as a function of the transition factor.
//
// Paper setup (Section 7.1): P = 128 processors, quantum length L = 1000,
// 50 fork-join jobs per transition factor in [2, 100], requests always
// granted (each job runs alone).  Panels:
//   (a) running time normalized by the critical path (optimal time),
//   (b) running-time ratio A-Greedy / ABG      (paper: ~1.2 on average),
//   (c) processor waste normalized by total work,
//   (d) waste ratio A-Greedy / ABG             (paper: ~2x, i.e. 50% less).
//
//   ./fig5_single_job [--full] [--jobs=N] [--step=K] [--seed=S] [--csv]
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "util/bootstrap.hpp"
#include "metrics/parallelism_stats.hpp"
#include "workload/fork_join.hpp"

int main(int argc, char** argv) {
  const abg::util::Cli cli(argc, argv);
  const abg::bench::StandardFlags flags(cli, 2008);
  const auto jobs_per_factor =
      static_cast<int>(cli.get_int("jobs", flags.full ? 50 : 25));
  const auto factor_step =
      static_cast<int>(cli.get_int("step", flags.full ? 2 : 3));
  const abg::bench::Machine machine;

  std::cout << "Figure 5: single jobs on P = " << machine.processors
            << ", L = " << machine.quantum_length << ", "
            << jobs_per_factor << " jobs per transition factor\n\n";

  abg::util::Table table({"C_L", "time/Tinf ABG", "time/Tinf A-Greedy",
                          "time ratio", "waste/T1 ABG", "waste/T1 A-Greedy",
                          "waste ratio", "measured C_L"});
  std::vector<double> all_time_ratios;
  std::vector<double> all_waste_ratios;

  abg::util::Rng root(flags.seed);
  for (int factor = 2; factor <= 100; factor += factor_step) {
    abg::util::RunningStats abg_time;
    abg::util::RunningStats ag_time;
    abg::util::RunningStats abg_waste;
    abg::util::RunningStats ag_waste;
    abg::util::RunningStats measured_factor;
    abg::util::RunningStats time_ratio;
    abg::util::RunningStats waste_ratio;
    for (int j = 0; j < jobs_per_factor; ++j) {
      abg::util::Rng rng = root.split();
      const auto job = abg::workload::make_fork_join_job(
          rng, abg::workload::figure5_spec(static_cast<double>(factor),
                                           machine.quantum_length));
      const abg::bench::HeadToHead traces =
          abg::bench::run_head_to_head(*job, machine);

      const double cpl = static_cast<double>(job->critical_path());
      const double work = static_cast<double>(job->total_work());
      const double t_abg =
          static_cast<double>(traces.abg.response_time()) / cpl;
      const double t_ag =
          static_cast<double>(traces.a_greedy.response_time()) / cpl;
      const double w_abg =
          static_cast<double>(traces.abg.total_waste()) / work;
      const double w_ag =
          static_cast<double>(traces.a_greedy.total_waste()) / work;
      abg_time.add(t_abg);
      ag_time.add(t_ag);
      abg_waste.add(w_abg);
      ag_waste.add(w_ag);
      time_ratio.add(t_ag / t_abg);
      all_time_ratios.push_back(t_ag / t_abg);
      if (w_abg > 0.0) {
        waste_ratio.add(w_ag / w_abg);
        all_waste_ratios.push_back(w_ag / w_abg);
      }
      measured_factor.add(
          abg::metrics::empirical_transition_factor(traces.abg));
    }
    table.add_numeric_row({static_cast<double>(factor), abg_time.mean(),
                           ag_time.mean(), time_ratio.mean(),
                           abg_waste.mean(), ag_waste.mean(),
                           waste_ratio.mean(), measured_factor.mean()},
                          3);
  }
  abg::bench::emit(table, flags);

  const abg::util::ConfidenceInterval time_ci =
      abg::util::bootstrap_mean(
          all_time_ratios, abg::util::Rng::derive_seed(flags.seed, 1));
  const abg::util::ConfidenceInterval waste_ci =
      abg::util::bootstrap_mean(
          all_waste_ratios, abg::util::Rng::derive_seed(flags.seed, 2));
  std::cout << "\nSummary: mean running-time ratio A-Greedy/ABG = "
            << abg::util::format_double(time_ci.point, 3) << "  [95% CI "
            << abg::util::format_double(time_ci.lower, 3) << ", "
            << abg::util::format_double(time_ci.upper, 3)
            << "]  (paper: ~1.2, i.e. 20% improvement)\n"
            << "         mean waste ratio A-Greedy/ABG = "
            << abg::util::format_double(waste_ci.point, 3) << "  [95% CI "
            << abg::util::format_double(waste_ci.lower, 3) << ", "
            << abg::util::format_double(waste_ci.upper, 3)
            << "]  (paper: ~2x, i.e. 50% reduction)\n";
  return 0;
}
