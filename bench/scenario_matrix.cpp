// Cross-scenario policy matrix: every scenario in the library against a
// panel of scheduling policies, on common random numbers.
//
// The policy panel pairs a request policy with an OS allocator:
//
//   * abg+deq      — ABG desires under dynamic equi-partitioning (the
//                    paper's setup),
//   * a-greedy+deq — A-Greedy desires under the same allocator (the
//                    paper's baseline),
//   * a-greedy+hesrpt — greedy desires under the size-aware heSRPT-style
//                    allocator (Berg et al.): the machine is split along
//                    (k/n)^(1/p) boundaries ranked by remaining work, so
//                    small jobs finish first.
//
// Scenarios are discovered as the checked-in library files (the fixed
// list below, resolved against --scenarios-dir); each (scenario, rep)
// pair shares a seed index across policies, so every policy faces the
// byte-identical workload.  A scenario whose file carries an arrival
// block streams through the open engine; closed scenarios run the
// standard closed set simulation.  Both paths report makespan, mean
// response and waste, which is what the matrix table compares.
//
//   ./scenario_matrix [--seed=S] [--reps=N] [--csv] [--jobs=N]
//                     [--scenarios-dir=DIR] [--jsonl=PATH] [--json=PATH]
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "exp/result_sink.hpp"
#include "exp/runner.hpp"
#include "scenario/library.hpp"
#include "util/table.hpp"

namespace {

struct Policy {
  const char* label;
  abg::exp::SchedulerKind scheduler;
  abg::exp::AllocatorKind allocator;
};

}  // namespace

int main(int argc, char** argv) {
  try {
    const abg::util::Cli cli(argc, argv);
    const abg::bench::StandardFlags flags(cli, 91);
    const auto reps = static_cast<int>(cli.get_positive_int("reps", 3));
    const int threads = abg::bench::thread_count_flag(cli);
    const std::string dir = cli.get("scenarios-dir", "scenarios");
    const std::string summary_path =
        cli.get("json", "BENCH_scenario_matrix.json");

    // The checked-in library (scenarios/): one file per generator family
    // plus the imported-trace example and the streaming variant.
    const std::vector<std::string> scenario_files = {
        "multiphase_mix.json",     "sublinear_classes.json",
        "mapreduce_shuffle.json",  "oscillator_adversary.json",
        "explicit_tiny.json",      "imported_cluster_sample.json",
        "open_poisson_mix.json",
    };
    const std::vector<Policy> policies = {
        {"abg+deq", abg::exp::SchedulerKind::kAbg,
         abg::exp::AllocatorKind::kDefault},
        {"a-greedy+deq", abg::exp::SchedulerKind::kAGreedy,
         abg::exp::AllocatorKind::kDefault},
        {"a-greedy+hesrpt", abg::exp::SchedulerKind::kAGreedy,
         abg::exp::AllocatorKind::kHesrpt},
    };

    std::cout << "Scenario x policy matrix: " << scenario_files.size()
              << " library scenarios, " << policies.size()
              << " policies, " << reps << " rep(s), " << threads
              << " worker thread(s)\n\n";

    // Grid: scenario x rep x policy, policy last so adjacent records
    // compare on the identical workload (shared seed index).
    std::vector<abg::exp::RunSpec> specs;
    std::uint64_t workload_index = 0;
    for (const std::string& file : scenario_files) {
      const std::string path = dir + "/" + file;
      // Loading up front surfaces a missing/invalid library file as a
      // startup error instead of a quarantined cell.
      const abg::scenario::ScenarioSpec& scenario =
          abg::scenario::load_cached(path);
      for (int rep = 0; rep < reps; ++rep) {
        for (const Policy& policy : policies) {
          abg::exp::RunSpec spec;
          spec.scheduler = policy.scheduler;
          spec.allocator = policy.allocator;
          spec.workload.kind = abg::exp::WorkloadKind::kScenario;
          spec.workload.scenario_path = path;
          if (scenario.machine.processors > 0) {
            spec.machine.processors = scenario.machine.processors;
          }
          if (scenario.machine.quantum > 0) {
            spec.machine.quantum_length = scenario.machine.quantum;
          }
          if (scenario.arrival.kind != abg::open::ArrivalKind::kNone) {
            spec.open.arrival = scenario.arrival.kind;
            if (scenario.arrival.jobs_total > 0) {
              spec.open.jobs_total = scenario.arrival.jobs_total;
            }
            if (scenario.arrival.load > 0.0) {
              spec.workload.load = scenario.arrival.load;
            }
          }
          spec.seed_index = workload_index;
          spec.group = "scenario=" + scenario.name;
          specs.push_back(std::move(spec));
        }
        ++workload_index;
      }
    }

    abg::exp::SweepConfig sweep;
    sweep.threads = threads;
    sweep.base_seed = flags.seed;
    if (threads != 1) {
      sweep.on_progress = abg::exp::stderr_progress();
    }
    const std::vector<abg::exp::RunRecord> records =
        abg::exp::SweepRunner(sweep).run(specs);

    // Records come back in grid order: one policy tuple per rep.
    abg::util::Table table({"scenario", "policy", "makespan", "M vs abg+deq",
                            "mean resp", "waste"});
    std::size_t r = 0;
    for (const std::string& file : scenario_files) {
      const abg::scenario::ScenarioSpec& scenario =
          abg::scenario::load_cached(dir + "/" + file);
      std::vector<abg::util::RunningStats> makespan(policies.size());
      std::vector<abg::util::RunningStats> response(policies.size());
      std::vector<abg::util::RunningStats> waste(policies.size());
      std::vector<abg::util::RunningStats> ratio(policies.size());
      for (int rep = 0; rep < reps; ++rep) {
        const std::size_t base = r;
        for (std::size_t p = 0; p < policies.size(); ++p) {
          const abg::exp::RunRecord& rec = records[base + p];
          makespan[p].add(rec.metric("makespan"));
          response[p].add(rec.metric("mean_response_time"));
          waste[p].add(rec.metric("total_waste"));
          ratio[p].add(rec.metric("makespan") /
                       records[base].metric("makespan"));
        }
        r += policies.size();
      }
      for (std::size_t p = 0; p < policies.size(); ++p) {
        table.add_row({scenario.name, policies[p].label,
                       abg::util::format_double(makespan[p].mean(), 0),
                       abg::util::format_double(ratio[p].mean(), 3),
                       abg::util::format_double(response[p].mean(), 1),
                       abg::util::format_double(waste[p].mean(), 0)});
      }
    }
    abg::bench::emit(table, flags);
    std::cout << "\nExpected shape: ABG leads on the adversarial and "
              << "multi-phase scenarios (desire feedback tracks the "
              << "parallelism swings); the size-aware heSRPT-style "
              << "allocator wins mean response on the sublinear class mix "
              << "by draining small jobs first.\n";

    // Machine-readable artifacts, written atomically (temp + rename).
    abg::exp::ResultSink sink("scenario_matrix", flags.seed);
    sink.add_all(records);
    if (cli.has("jsonl")) {
      sink.write_jsonl_file(cli.get("jsonl", ""));
    }
    if (summary_path != "none") {
      sink.write_summary_file(summary_path);
      std::cout << "\nwrote summary to " << summary_path << "\n";
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "scenario_matrix: " << error.what() << "\n";
    return 2;
  }
}
