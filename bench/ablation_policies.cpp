// Ablations over ABG's two design choices and its single parameter:
//
//   1. Execution policy x request policy grid: is the win from B-Greedy's
//      breadth-first measurement, from A-Control, or both?  (On barrier
//      fork-join jobs the execution orders coincide; the request policy is
//      what differentiates.  A static allocation brackets from below.)
//   2. Convergence-rate sweep (paper footnote 3: results stable for
//      r < 0.6).
//   3. Quantum-length sweep (paper Section 9 names dynamic quantum
//      adjustment as future work; this shows the sensitivity that
//      motivates it).
//
//   ./ablation_policies [--seed=S] [--jobs=N] [--csv]
#include <iostream>
#include <memory>

#include "alloc/equipartition.hpp"
#include "alloc/unconstrained.hpp"
#include "bench_util.hpp"
#include "sched/a_control.hpp"
#include "sched/a_greedy_request.hpp"
#include "sched/quantum_length.hpp"
#include "sim/async_simulator.hpp"
#include "workload/fork_join.hpp"
#include "workload/job_set.hpp"

namespace {

struct GridCell {
  const char* name;
  abg::core::SchedulerSpec (*make)();
};

abg::core::SchedulerSpec bgreedy_acontrol() { return abg::core::abg_spec(); }
abg::core::SchedulerSpec greedy_agreedy() {
  return abg::core::a_greedy_spec();
}
abg::core::SchedulerSpec greedy_acontrol() {
  return abg::core::SchedulerSpec{
      "greedy+a-control", std::make_unique<abg::sched::GreedyExecution>(),
      std::make_unique<abg::sched::AControlRequest>()};
}
abg::core::SchedulerSpec bgreedy_agreedy() {
  return abg::core::SchedulerSpec{
      "b-greedy+a-greedy", std::make_unique<abg::sched::BGreedyExecution>(),
      std::make_unique<abg::sched::AGreedyRequest>()};
}
abg::core::SchedulerSpec static_full() {
  return abg::core::static_spec(128);
}
abg::core::SchedulerSpec abg_auto() { return abg::core::abg_auto_spec(); }

}  // namespace

int main(int argc, char** argv) {
  const abg::util::Cli cli(argc, argv);
  const abg::bench::StandardFlags flags(cli, 99);
  const auto jobs = static_cast<int>(cli.get_int("jobs", 6));
  const abg::bench::Machine machine{.processors = 128,
                                    .quantum_length = 500};
  const double target_transition = 20.0;

  const GridCell grid[] = {
      {"ABG (b-greedy + a-control)", &bgreedy_acontrol},
      {"ABG auto-rate (r from C_est)", &abg_auto},
      {"greedy + a-control", &greedy_acontrol},
      {"b-greedy + a-greedy-request", &bgreedy_agreedy},
      {"A-Greedy (greedy + MIMD)", &greedy_agreedy},
      {"static 128 procs", &static_full},
  };

  std::cout << "Ablation 1: execution x request policy grid ("
            << jobs << " fork-join jobs, target C_L = " << target_transition
            << ")\n\n";
  abg::util::Table grid_table(
      {"scheduler", "time/Tinf", "waste/T1", "quanta"});
  for (const GridCell& cell : grid) {
    abg::util::RunningStats time_norm;
    abg::util::RunningStats waste_norm;
    abg::util::RunningStats quanta;
    abg::util::Rng root(flags.seed);
    for (int j = 0; j < jobs; ++j) {
      abg::util::Rng rng = root.split();
      const auto job = abg::workload::make_fork_join_job(
          rng, abg::workload::figure5_spec(target_transition,
                                           machine.quantum_length));
      const auto spec = cell.make();
      const abg::sim::JobTrace trace = abg::core::run_single(
          spec, *job,
          abg::sim::SingleJobConfig{.processors = machine.processors,
                                    .quantum_length =
                                        machine.quantum_length});
      time_norm.add(static_cast<double>(trace.response_time()) /
                    static_cast<double>(trace.critical_path));
      waste_norm.add(static_cast<double>(trace.total_waste()) /
                     static_cast<double>(trace.work));
      quanta.add(static_cast<double>(trace.quanta.size()));
    }
    grid_table.add_row({cell.name,
                        abg::util::format_double(time_norm.mean(), 3),
                        abg::util::format_double(waste_norm.mean(), 3),
                        abg::util::format_double(quanta.mean(), 1)});
  }
  abg::bench::emit(grid_table, flags);

  std::cout << "\nAblation 2: convergence rate sweep (same jobs)\n\n";
  abg::util::Table rate_table({"r", "time/Tinf", "waste/T1"});
  for (const double rate :
       {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    abg::util::RunningStats time_norm;
    abg::util::RunningStats waste_norm;
    abg::util::Rng root(flags.seed);
    for (int j = 0; j < jobs; ++j) {
      abg::util::Rng rng = root.split();
      const auto job = abg::workload::make_fork_join_job(
          rng, abg::workload::figure5_spec(target_transition,
                                           machine.quantum_length));
      const abg::sim::JobTrace trace = abg::core::run_single(
          abg::core::abg_spec(
              abg::core::AbgConfig{.convergence_rate = rate}),
          *job,
          abg::sim::SingleJobConfig{.processors = machine.processors,
                                    .quantum_length =
                                        machine.quantum_length});
      time_norm.add(static_cast<double>(trace.response_time()) /
                    static_cast<double>(trace.critical_path));
      waste_norm.add(static_cast<double>(trace.total_waste()) /
                     static_cast<double>(trace.work));
    }
    rate_table.add_numeric_row({rate, time_norm.mean(), waste_norm.mean()},
                               3);
  }
  abg::bench::emit(rate_table, flags);

  std::cout << "\nAblation 3: quantum length sweep (ABG, r = 0.2)\n\n";
  abg::util::Table quantum_table({"L", "time/Tinf", "waste/T1", "quanta"});
  for (const abg::dag::Steps quantum : {100, 250, 500, 1000, 2000, 4000}) {
    abg::util::RunningStats time_norm;
    abg::util::RunningStats waste_norm;
    abg::util::RunningStats quanta;
    abg::util::Rng root(flags.seed);
    for (int j = 0; j < jobs; ++j) {
      abg::util::Rng rng = root.split();
      // Job shape held fixed (defined in levels of the 500-step reference
      // quantum) while L varies.
      const auto job = abg::workload::make_fork_join_job(
          rng, abg::workload::figure5_spec(target_transition, 500));
      const abg::sim::JobTrace trace = abg::core::run_single(
          abg::core::abg_spec(), *job,
          abg::sim::SingleJobConfig{.processors = machine.processors,
                                    .quantum_length = quantum});
      time_norm.add(static_cast<double>(trace.response_time()) /
                    static_cast<double>(trace.critical_path));
      waste_norm.add(static_cast<double>(trace.total_waste()) /
                     static_cast<double>(trace.work));
      quanta.add(static_cast<double>(trace.quanta.size()));
    }
    quantum_table.add_numeric_row(
        {static_cast<double>(quantum), time_norm.mean(), waste_norm.mean(),
         quanta.mean()},
        3);
  }
  abg::bench::emit(quantum_table, flags);
  std::cout << "\nLong quanta amortize reallocation but react slowly; "
            << "short quanta track parallelism closely at the cost of "
            << "convergence transients each phase change.\n";

  std::cout << "\nAblation 4: dynamic quantum length (Section 9 future "
            << "work) — fixed L vs stability-adaptive L in [250, 4000]\n\n";
  abg::util::Table dynamic_table(
      {"policy", "time/Tinf", "waste/T1", "quanta"});
  for (const bool adaptive : {false, true}) {
    abg::util::RunningStats time_norm;
    abg::util::RunningStats waste_norm;
    abg::util::RunningStats quanta;
    abg::util::Rng root(flags.seed);
    for (int j = 0; j < jobs; ++j) {
      abg::util::Rng rng = root.split();
      const auto job = abg::workload::make_fork_join_job(
          rng, abg::workload::figure5_spec(target_transition, 500));
      abg::sched::BGreedyExecution exec;
      abg::sched::AControlRequest request;
      abg::alloc::Unconstrained allocator;
      std::unique_ptr<abg::sched::QuantumLengthPolicy> length_policy;
      if (adaptive) {
        length_policy = std::make_unique<abg::sched::AdaptiveQuantumLength>(
            abg::sched::AdaptiveQuantumConfig{250, 4000, 0.2, 2});
      } else {
        length_policy =
            std::make_unique<abg::sched::FixedQuantumLength>(1000);
      }
      const abg::sim::JobTrace trace = abg::sim::run_single_job(
          *job, exec, request, *length_policy, allocator,
          abg::sim::SingleJobConfig{.processors = machine.processors,
                                    .quantum_length = 1000});
      time_norm.add(static_cast<double>(trace.response_time()) /
                    static_cast<double>(trace.critical_path));
      waste_norm.add(static_cast<double>(trace.total_waste()) /
                     static_cast<double>(trace.work));
      quanta.add(static_cast<double>(trace.quanta.size()));
    }
    dynamic_table.add_row(
        {adaptive ? "adaptive [250,4000]" : "fixed 1000",
         abg::util::format_double(time_norm.mean(), 3),
         abg::util::format_double(waste_norm.mean(), 3),
         abg::util::format_double(quanta.mean(), 1)});
  }
  abg::bench::emit(dynamic_table, flags);
  std::cout << "\nThe adaptive policy shortens quanta through parallelism "
            << "transitions (less stale-allotment waste) and lengthens "
            << "them during stable phases (fewer reallocations).\n";

  std::cout << "\nAblation 5: synchronous vs per-job (asynchronous) "
            << "quantum boundaries under DEQ\n\n";
  abg::util::Table sync_table(
      {"boundaries", "scheduler", "makespan", "mean response",
       "waste/work"});
  {
    abg::util::Rng rng(flags.seed);
    abg::workload::JobSetSpec set_spec;
    set_spec.load = 1.0;
    set_spec.processors = machine.processors;
    set_spec.min_phase_levels = 250;
    set_spec.max_phase_levels = 1000;
    const auto generated = abg::workload::make_job_set(rng, set_spec);
    double total_work = 0.0;
    for (const auto& g : generated) {
      total_work += static_cast<double>(g.job->total_work());
    }
    auto subs_for = [&generated] {
      std::vector<abg::sim::JobSubmission> subs;
      for (const auto& g : generated) {
        abg::sim::JobSubmission s;
        s.job = std::make_unique<abg::dag::ProfileJob>(g.job->widths());
        subs.push_back(std::move(s));
      }
      return subs;
    };
    const abg::sim::SimConfig config{.processors = machine.processors,
                                     .quantum_length = 500};
    for (const bool is_abg : {true, false}) {
      const auto spec =
          is_abg ? abg::core::abg_spec() : abg::core::a_greedy_spec();
      abg::alloc::EquiPartition deq;
      const auto sync = abg::sim::simulate_job_set(
          subs_for(), *spec.execution, *spec.request, deq, config);
      const auto async = abg::sim::simulate_job_set_async(
          subs_for(), *spec.execution, *spec.request, config);
      sync_table.add_row(
          {"global", spec.name, std::to_string(sync.makespan),
           abg::util::format_double(sync.mean_response_time, 0),
           abg::util::format_double(
               static_cast<double>(sync.total_waste) / total_work, 3)});
      sync_table.add_row(
          {"per-job", spec.name, std::to_string(async.makespan),
           abg::util::format_double(async.mean_response_time, 0),
           abg::util::format_double(
               static_cast<double>(async.total_waste) / total_work, 3)});
    }
  }
  abg::bench::emit(sync_table, flags);
  std::cout << "\nAsynchrony is a modeling detail: both schedulers keep "
            << "their relative ordering whether quanta share global "
            << "boundaries or drift per job.\n";
  return 0;
}
