// Makespan under arbitrary release times (the arbitrary-release case of
// Theorem 5, which Figure 6 does not exercise: its job sets are batched).
//
// Job sets arrive according to staggered and memoryless (Poisson-like)
// release schedules at several arrival intensities; ABG and A-Greedy are
// compared on makespan normalized by the release-aware lower bound
// max(ΣT1/P, max_j(release_j + T∞_j)).
//
// The sweep executes on the exp::SweepRunner thread pool: every (schedule,
// gap, set, scheduler) tuple is an independent RunSpec built on the
// workload release axis, scheduler variants share a seed index (identical
// job sets AND identical release draws), and results are byte-identical
// at any --jobs level.  The monitored path makes long sweeps durable:
// --journal appends every cell's lifecycle, --resume replays completed
// cells verbatim, and the final artifacts are written atomically.
//
//   ./arrivals_makespan [--seed=S] [--sets=N] [--csv] [--jobs=N]
//                       [--jsonl=PATH] [--json=PATH]
//                       [--journal=PATH] [--resume=PATH]
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "exp/journal.hpp"
#include "exp/result_sink.hpp"
#include "exp/runner.hpp"
#include "util/atomic_file.hpp"

int main(int argc, char** argv) {
  try {
    const abg::util::Cli cli(argc, argv);
    const abg::bench::StandardFlags flags(cli, 77);
    const auto sets = static_cast<int>(cli.get_int("sets", 10));
    const int threads = abg::bench::thread_count_flag(cli);
    const abg::bench::Machine machine;
    const std::string summary_path =
        cli.get("json", "BENCH_arrivals_makespan.json");

    const std::vector<abg::exp::ReleaseKind> schedules = {
        abg::exp::ReleaseKind::kStaggered, abg::exp::ReleaseKind::kPoisson};
    const std::vector<double> gaps = {500.0, 2000.0, 8000.0};
    const std::vector<abg::exp::SchedulerKind> schedulers = {
        abg::exp::SchedulerKind::kAbg, abg::exp::SchedulerKind::kAGreedy};

    std::cout << "Makespan with arbitrary release times (Theorem 5's "
              << "general case), " << sets
              << " job sets per row, load 1.0, " << threads
              << " worker thread(s)\n\n";

    // Grid: schedules x gaps x sets x {ABG, A-Greedy}, scheduler last so
    // adjacent records pair up.  The seed index enumerates the workload-
    // shaping dimensions only, so both schedulers replay the exact same
    // job set and release schedule (common random numbers).
    std::vector<abg::exp::RunSpec> specs;
    specs.reserve(schedules.size() * gaps.size() *
                  static_cast<std::size_t>(sets) * schedulers.size());
    const std::uint64_t workload_points =
        schedules.size() * gaps.size() * static_cast<std::uint64_t>(sets);
    std::uint64_t workload_index = 0;
    for (const abg::exp::ReleaseKind schedule : schedules) {
      for (const double gap : gaps) {
        for (int s = 0; s < sets; ++s) {
          for (const abg::exp::SchedulerKind scheduler : schedulers) {
            abg::exp::RunSpec spec;
            spec.scheduler = scheduler;
            spec.workload.kind = abg::exp::WorkloadKind::kJobSet;
            spec.workload.load = 1.0;
            spec.workload.release = schedule;
            spec.workload.release_gap = gap;
            spec.machine = {.processors = machine.processors,
                            .quantum_length = machine.quantum_length};
            spec.seed_index = workload_index;
            spec.group = "release=" + abg::exp::to_string(schedule) +
                         ",gap=" + abg::util::format_double(gap, 0);
            specs.push_back(std::move(spec));
          }
          ++workload_index;
        }
      }
    }
    (void)workload_points;

    // Durability: --journal appends cell lifecycles; --resume replays a
    // journal of the identical grid and keeps appending to it.
    const std::string resume_path = cli.get("resume", "");
    std::string journal_path = cli.get("journal", "");
    if (!resume_path.empty()) {
      if (!journal_path.empty() && journal_path != resume_path) {
        throw std::invalid_argument(
            "--resume already names the journal; drop --journal or make "
            "them equal");
      }
      journal_path = resume_path;
    }
    const std::uint64_t grid = abg::exp::grid_digest(specs, flags.seed);
    std::optional<abg::exp::JournalReplay> replay;
    if (!resume_path.empty()) {
      replay.emplace(abg::exp::load_journal(resume_path));
      if (replay->grid != grid) {
        throw std::invalid_argument(
            "--resume: journal " + resume_path +
            " records a different grid; refusing to mix sweeps");
      }
    }
    std::optional<abg::exp::RunJournal> journal;
    if (!journal_path.empty()) {
      journal.emplace(journal_path, flags.seed, specs.size(), grid);
    }

    abg::exp::SweepConfig sweep;
    sweep.threads = threads;
    sweep.base_seed = flags.seed;
    sweep.robustness.journal = journal.has_value() ? &*journal : nullptr;
    sweep.robustness.resume = replay.has_value() ? &*replay : nullptr;
    if (threads != 1) {
      sweep.on_progress = abg::exp::stderr_progress();
    }
    const abg::exp::SweepOutcome outcome =
        abg::exp::SweepRunner(sweep).run_monitored(specs);
    const std::vector<abg::exp::RunRecord>& records = outcome.records;
    if (outcome.resumed > 0) {
      std::cout << "resumed " << outcome.resumed
                << " completed cell(s) from " << resume_path << ", executed "
                << outcome.executed << "\n\n";
    }

    // Records come back in grid order: (abg, a-greedy) pairs per set.
    abg::util::Table table({"arrivals", "mean gap", "M/LB ABG",
                            "M/LB A-Greedy", "M ratio"});
    std::size_t r = 0;
    for (const abg::exp::ReleaseKind schedule : schedules) {
      for (const double gap : gaps) {
        abg::util::RunningStats abg_norm;
        abg::util::RunningStats ag_norm;
        abg::util::RunningStats ratio;
        for (int s = 0; s < sets; ++s) {
          const abg::exp::RunRecord& abg_rec = records[r++];
          const abg::exp::RunRecord& ag_rec = records[r++];
          if (!abg_rec.failure.empty() || !ag_rec.failure.empty()) {
            continue;  // quarantined pair: no metrics to aggregate
          }
          abg_norm.add(abg_rec.metric("makespan_over_lb"));
          ag_norm.add(ag_rec.metric("makespan_over_lb"));
          ratio.add(ag_rec.metric("makespan") / abg_rec.metric("makespan"));
        }
        table.add_row({abg::exp::to_string(schedule),
                       abg::util::format_double(gap, 0),
                       abg::util::format_double(abg_norm.mean(), 3),
                       abg::util::format_double(ag_norm.mean(), 3),
                       abg::util::format_double(ratio.mean(), 3)});
      }
    }
    abg::bench::emit(table, flags);
    std::cout << "\nBoth schedulers must stay above 1.0x the lower bound; "
              << "ABG's advantage persists across arrival patterns and "
              << "fades as arrivals spread out (each job increasingly runs "
              << "alone).\n";

    // Machine-readable artifacts, written atomically (temp + rename).
    abg::exp::ResultSink sink("arrivals_makespan", flags.seed);
    sink.add_all(records);
    if (cli.has("jsonl")) {
      sink.write_jsonl_file(cli.get("jsonl", ""));
    }
    if (summary_path != "none") {
      sink.write_summary_file(summary_path);
      std::cout << "\nwrote summary to " << summary_path << "\n";
    }
    return outcome.quarantined > 0 ? 3 : 0;
  } catch (const std::exception& error) {
    std::cerr << "arrivals_makespan: " << error.what() << "\n";
    return 2;
  }
}
