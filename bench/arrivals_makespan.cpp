// Makespan under arbitrary release times (the arbitrary-release case of
// Theorem 5, which Figure 6 does not exercise: its job sets are batched).
//
// Job sets arrive according to staggered and memoryless (Poisson-like)
// release schedules at several arrival intensities; ABG and A-Greedy are
// compared on makespan normalized by the release-aware lower bound
// max(ΣT1/P, max_j(release_j + T∞_j)).
//
//   ./arrivals_makespan [--seed=S] [--sets=N] [--csv]
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "metrics/lower_bounds.hpp"
#include "workload/arrivals.hpp"
#include "workload/job_set.hpp"

namespace {

struct SetOutcome {
  double abg_over_bound = 0.0;
  double ag_over_bound = 0.0;
  double ratio = 0.0;
};

SetOutcome run_one(abg::util::Rng rng, const abg::bench::Machine& machine,
                   bool poisson, double mean_gap) {
  abg::workload::JobSetSpec spec;
  spec.load = 1.0;
  spec.processors = machine.processors;
  spec.min_phase_levels = machine.quantum_length / 2;
  spec.max_phase_levels = 2 * machine.quantum_length;
  const auto jobs = abg::workload::make_job_set(rng, spec);

  abg::util::Rng arrival_rng = rng.split();
  const std::vector<abg::dag::Steps> releases =
      poisson ? abg::workload::poisson_releases(arrival_rng, jobs.size(),
                                                mean_gap)
              : abg::workload::staggered_releases(
                    jobs.size(),
                    static_cast<abg::dag::Steps>(mean_gap));

  std::vector<abg::metrics::JobSummary> summaries;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    summaries.push_back(abg::metrics::JobSummary{
        jobs[i].job->total_work(), jobs[i].job->critical_path(),
        releases[i]});
  }
  const double bound =
      abg::metrics::makespan_lower_bound(summaries, machine.processors);

  auto submissions = [&] {
    std::vector<abg::sim::JobSubmission> subs;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      abg::sim::JobSubmission s;
      s.job = std::make_unique<abg::dag::ProfileJob>(jobs[i].job->widths());
      s.release_step = releases[i];
      subs.push_back(std::move(s));
    }
    return subs;
  };
  const abg::sim::SimConfig config{.processors = machine.processors,
                                   .quantum_length =
                                       machine.quantum_length};
  const auto abg_result =
      abg::core::run_set(abg::core::abg_spec(), submissions(), config);
  const auto ag_result =
      abg::core::run_set(abg::core::a_greedy_spec(), submissions(), config);

  SetOutcome out;
  out.abg_over_bound = static_cast<double>(abg_result.makespan) / bound;
  out.ag_over_bound = static_cast<double>(ag_result.makespan) / bound;
  out.ratio = static_cast<double>(ag_result.makespan) /
              static_cast<double>(abg_result.makespan);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const abg::util::Cli cli(argc, argv);
  const abg::bench::StandardFlags flags(cli, 77);
  const auto sets = static_cast<int>(cli.get_int("sets", 10));
  const abg::bench::Machine machine;

  std::cout << "Makespan with arbitrary release times (Theorem 5's general "
            << "case), " << sets << " job sets per row, load 1.0\n\n";
  abg::util::Table table({"arrivals", "mean gap", "M/LB ABG",
                          "M/LB A-Greedy", "M ratio"});
  for (const bool poisson : {false, true}) {
    for (const double gap : {500.0, 2000.0, 8000.0}) {
      abg::util::RunningStats abg_norm;
      abg::util::RunningStats ag_norm;
      abg::util::RunningStats ratio;
      abg::util::Rng root(flags.seed);
      for (int s = 0; s < sets; ++s) {
        const SetOutcome out =
            run_one(root.split(), machine, poisson, gap);
        abg_norm.add(out.abg_over_bound);
        ag_norm.add(out.ag_over_bound);
        ratio.add(out.ratio);
      }
      table.add_row({poisson ? "poisson" : "staggered",
                     abg::util::format_double(gap, 0),
                     abg::util::format_double(abg_norm.mean(), 3),
                     abg::util::format_double(ag_norm.mean(), 3),
                     abg::util::format_double(ratio.mean(), 3)});
    }
  }
  abg::bench::emit(table, flags);
  std::cout << "\nBoth schedulers must stay above 1.0x the lower bound; "
            << "ABG's advantage persists across arrival patterns and fades "
            << "as arrivals spread out (each job increasingly runs "
            << "alone).\n";
  return 0;
}
