// Theorem validation table: measured running time, waste, makespan and
// mean response time against the analytic bounds of Theorems 3, 4 and 5
// (with Lemma 2's request bounds checked along the way).
//
// The bounds use the empirically measured transition factor C_L of each
// run and the scheduler's convergence rate r; the waste/makespan/response
// bounds require r < 1/C_L, so this harness uses a small r.
//
//   ./bounds_table [--seed=S] [--rate=R] [--csv]
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "metrics/bounds.hpp"
#include "metrics/lower_bounds.hpp"
#include "metrics/parallelism_stats.hpp"
#include "metrics/trim.hpp"
#include "workload/fork_join.hpp"
#include "workload/job_set.hpp"

int main(int argc, char** argv) {
  const abg::util::Cli cli(argc, argv);
  const abg::bench::StandardFlags flags(cli, 1);
  const double rate = cli.get_double("rate", 0.05);
  const abg::bench::Machine machine{.processors = 128,
                                    .quantum_length = 500};
  abg::util::Rng root(flags.seed);

  std::cout << "Theorems 3 & 4: single fork-join jobs under ABG (r = "
            << rate << ", P = " << machine.processors << ", L = "
            << machine.quantum_length << ")\n\n";
  abg::util::Table single(
      {"target C_L", "measured C_L", "time", "Thm3 bound", "time/bound",
       "waste", "Thm4 bound", "waste/bound"});
  for (const double target : {2.0, 4.0, 6.0, 8.0, 12.0}) {
    abg::util::Rng rng = root.split();
    const auto job = abg::workload::make_fork_join_job(
        rng,
        abg::workload::figure5_spec(target, machine.quantum_length));
    const auto clone = job->fresh_clone();
    const abg::sim::JobTrace trace = abg::core::run_single(
        abg::core::abg_spec(abg::core::AbgConfig{.convergence_rate = rate}),
        *clone,
        abg::sim::SingleJobConfig{.processors = machine.processors,
                                  .quantum_length = machine.quantum_length});
    const double transition =
        abg::metrics::empirical_transition_factor(trace);
    const double trim_steps = abg::metrics::theorem3_trim_steps(
        trace.critical_path, transition, rate, machine.quantum_length);
    const double trimmed = abg::metrics::trimmed_availability(
        trace, static_cast<abg::dag::Steps>(trim_steps));
    const double time_bound = abg::metrics::theorem3_time_bound(
        trace.work, trace.critical_path, transition, rate, trimmed,
        machine.quantum_length);
    double waste_bound = -1.0;
    if (rate < 1.0 / transition) {
      waste_bound = abg::metrics::theorem4_waste_bound(
          trace.work, transition, rate, machine.processors,
          machine.quantum_length);
    }
    single.add_numeric_row(
        {target, transition, static_cast<double>(trace.response_time()),
         time_bound,
         static_cast<double>(trace.response_time()) / time_bound,
         static_cast<double>(trace.total_waste()), waste_bound,
         waste_bound > 0.0
             ? static_cast<double>(trace.total_waste()) / waste_bound
             : -1.0},
        2);
  }
  abg::bench::emit(single, flags);

  std::cout << "\nTheorem 5: job sets under DEQ (batched release)\n\n";
  abg::util::Table sets({"load", "jobs", "max C_L", "makespan",
                         "Thm5 M bound", "M/bound", "mean response",
                         "Thm5 R bound", "R/bound"});
  for (const double load : {0.5, 1.0, 2.0}) {
    abg::util::Rng rng = root.split();
    abg::workload::JobSetSpec spec;
    spec.load = load;
    spec.processors = machine.processors;
    spec.min_transition_factor = 2.0;
    spec.max_transition_factor = 8.0;
    spec.min_phase_levels = machine.quantum_length / 2;
    spec.max_phase_levels = 2 * machine.quantum_length;
    auto jobs = abg::workload::make_job_set(rng, spec);

    std::vector<abg::metrics::JobSummary> summaries;
    std::vector<abg::sim::JobSubmission> subs;
    for (auto& g : jobs) {
      summaries.push_back(abg::metrics::JobSummary{
          g.job->total_work(), g.job->critical_path(), 0});
      abg::sim::JobSubmission s;
      s.job = std::move(g.job);
      subs.push_back(std::move(s));
    }
    const auto result = abg::core::run_set(
        abg::core::abg_spec(abg::core::AbgConfig{.convergence_rate = rate}),
        std::move(subs),
        abg::sim::SimConfig{.processors = machine.processors,
                            .quantum_length = machine.quantum_length});
    double max_transition = 1.0;
    for (const auto& t : result.jobs) {
      max_transition = std::max(
          max_transition, abg::metrics::empirical_transition_factor(t));
    }
    const double makespan_star =
        abg::metrics::makespan_lower_bound(summaries, machine.processors);
    const double response_star =
        abg::metrics::response_lower_bound(summaries, machine.processors);
    double m_bound = -1.0;
    double r_bound = -1.0;
    if (rate < 1.0 / max_transition) {
      m_bound = abg::metrics::theorem5_makespan_bound(
          makespan_star, max_transition, rate, machine.quantum_length,
          summaries.size());
      r_bound = abg::metrics::theorem5_response_bound(
          response_star, max_transition, rate, machine.quantum_length,
          summaries.size());
    }
    sets.add_numeric_row(
        {load, static_cast<double>(summaries.size()), max_transition,
         static_cast<double>(result.makespan), m_bound,
         m_bound > 0.0 ? static_cast<double>(result.makespan) / m_bound
                       : -1.0,
         result.mean_response_time, r_bound,
         r_bound > 0.0 ? result.mean_response_time / r_bound : -1.0},
        2);
  }
  abg::bench::emit(sets, flags);
  std::cout << "\nAll measured/bound ratios must stay <= 1 (bounds hold); "
            << "-1 marks rows where r < 1/C_L failed and the bound is not "
            << "defined.\n";
  return 0;
}
