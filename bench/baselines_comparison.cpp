// Four-way baseline comparison: ABG and A-Greedy (centralized greedy
// execution) against A-Steal and ABP (distributed work stealing), all on
// byte-identical fork-join DAGs.
//
// A-Steal and ABP come from the paper's related work (Section 8; Agrawal
// et al. [2] found A-Steal far more efficient than ABP).  The centralized
// schedulers run the branch-chain fork-join DAG through DagJob; the
// work-stealing schedulers run the same DagStructure through
// WorkStealingJob (steal attempts and idle workers burn allotted cycles).
//
//   ./baselines_comparison [--seed=S] [--jobs=N] [--csv]
#include <iostream>

#include "bench_util.hpp"
#include "dag/dag_job.hpp"
#include "steal/schedulers.hpp"
#include "steal/work_stealing_job.hpp"
#include "workload/fork_join.hpp"

int main(int argc, char** argv) {
  const abg::util::Cli cli(argc, argv);
  const abg::bench::StandardFlags flags(cli, 42);
  const auto jobs = static_cast<int>(cli.get_int("jobs", 6));
  const abg::bench::Machine machine{.processors = 64, .quantum_length = 200};

  std::cout << "Baselines: ABG / A-Greedy (centralized) vs A-Steal / ABP "
            << "(work stealing) on identical fork-join DAGs\n"
            << "P = " << machine.processors << ", L = "
            << machine.quantum_length << ", " << jobs
            << " jobs per transition factor\n\n";

  abg::util::Table table({"C_L", "scheduler", "time/Tinf", "waste/T1",
                          "steals/T1"});
  for (const double transition : {4.0, 8.0, 16.0}) {
    struct Acc {
      abg::util::RunningStats time;
      abg::util::RunningStats waste;
      abg::util::RunningStats steals;
    };
    Acc acc[4];
    const char* names[4] = {"ABG", "A-Greedy", "A-Steal", "ABP"};

    abg::util::Rng root(flags.seed);
    for (int j = 0; j < jobs; ++j) {
      abg::util::Rng rng = root.split();
      abg::workload::ForkJoinSpec spec;
      spec.transition_factor = transition;
      spec.phase_pairs = 4;
      spec.min_phase_levels = machine.quantum_length;
      spec.max_phase_levels = 6 * machine.quantum_length;
      const auto phases = abg::workload::fork_join_phases(rng, spec);
      const abg::dag::DagStructure structure =
          abg::dag::builders::fork_join(phases);

      const abg::sim::SingleJobConfig config{
          .processors = machine.processors,
          .quantum_length = machine.quantum_length};

      auto record = [&](int idx, const abg::sim::JobTrace& trace,
                        std::int64_t steal_attempts) {
        acc[idx].time.add(static_cast<double>(trace.response_time()) /
                          static_cast<double>(trace.critical_path));
        acc[idx].waste.add(static_cast<double>(trace.total_waste()) /
                           static_cast<double>(trace.work));
        acc[idx].steals.add(static_cast<double>(steal_attempts) /
                            static_cast<double>(trace.work));
      };

      {
        abg::dag::DagJob job{structure};
        record(0, abg::core::run_single(abg::core::abg_spec(), job, config),
               0);
      }
      {
        abg::dag::DagJob job{structure};
        record(1,
               abg::core::run_single(abg::core::a_greedy_spec(), job, config),
               0);
      }
      {
        abg::steal::WorkStealingJob job{structure, rng.split().engine()()};
        const abg::sim::JobTrace trace =
            abg::core::run_single(abg::steal::a_steal_spec(), job, config);
        record(2, trace, job.counters().steal_attempts);
      }
      {
        abg::steal::WorkStealingJob job{structure, rng.split().engine()()};
        const abg::sim::JobTrace trace = abg::core::run_single(
            abg::steal::abp_spec(machine.processors), job, config);
        record(3, trace, job.counters().steal_attempts);
      }
    }
    for (int s = 0; s < 4; ++s) {
      table.add_row({abg::util::format_double(transition, 0), names[s],
                     abg::util::format_double(acc[s].time.mean(), 3),
                     abg::util::format_double(acc[s].waste.mean(), 3),
                     abg::util::format_double(acc[s].steals.mean(), 3)});
    }
  }
  abg::bench::emit(table, flags);

  std::cout << "\nExpected shape: ABG lowest waste; A-Steal close behind "
            << "(steal attempts add overhead); ABP pays for holding the "
            << "whole machine through serial phases; A-Greedy oscillates "
            << "between over- and under-allocation.\n";
  return 0;
}
