// Figure 4: transient and steady-state behaviour of (a) ABG and
// (b) A-Greedy on a synthetic job with constant parallelism.
//
// The paper shows 8 scheduling quanta with ABG at convergence rate 0.2 and
// A-Greedy with multiplicative factor 2.  ABG climbs monotonically to the
// job parallelism and stays there (BIBO stable, zero steady-state error,
// zero overshoot, rate r); A-Greedy oscillates with overshoot.
//
//   ./fig4_transient [--parallelism=A] [--rate=R] [--quanta=N] [--csv]
#include <iostream>

#include "bench_util.hpp"
#include "control/analysis.hpp"
#include "workload/profiles.hpp"

int main(int argc, char** argv) {
  const abg::util::Cli cli(argc, argv);
  const abg::bench::StandardFlags flags(cli);
  const auto parallelism = cli.get_int("parallelism", 10);
  const double rate = cli.get_double("rate", 0.2);
  const auto quanta = cli.get_int("quanta", 8);
  const abg::bench::Machine machine;

  const auto prototype = abg::workload::constant_parallelism_chains(
      parallelism, (quanta + 4) * machine.quantum_length);
  const abg::bench::HeadToHead traces =
      abg::bench::run_head_to_head(*prototype, machine, rate);

  std::cout << "Figure 4: processor requests over the first " << quanta
            << " quanta (job parallelism " << parallelism << ", ABG r = "
            << rate << ", A-Greedy rho = 2)\n\n";
  abg::util::Table table(
      {"quantum", "ABG request", "A-Greedy request", "parallelism"});
  for (int q = 0; q < quanta; ++q) {
    const auto i = static_cast<std::size_t>(q);
    const int abg_request = i < traces.abg.quanta.size()
                                ? traces.abg.quanta[i].request
                                : -1;
    const int ag_request = i < traces.a_greedy.quanta.size()
                               ? traces.a_greedy.quanta[i].request
                               : -1;
    table.add_row({std::to_string(q + 1), std::to_string(abg_request),
                   std::to_string(ag_request),
                   std::to_string(parallelism)});
  }
  abg::bench::emit(table, flags);

  auto metrics_for = [&](const abg::sim::JobTrace& trace) {
    std::vector<double> requests = trace.request_series();
    if (requests.size() > 1) {
      requests.pop_back();
    }
    return abg::control::analyze_series(requests,
                                        static_cast<double>(parallelism));
  };
  const auto abg_metrics = metrics_for(traces.abg);
  const auto ag_metrics = metrics_for(traces.a_greedy);

  std::cout << "\n              settled  ss-error  overshoot  oscillation\n";
  auto line = [](const char* name,
                 const abg::control::StepResponseMetrics& m) {
    std::cout << name << (m.settled ? "yes" : "NO ") << "      "
              << abg::util::format_double(m.steady_state_error, 2)
              << "      " << abg::util::format_double(m.max_overshoot, 2)
              << "       "
              << abg::util::format_double(m.residual_oscillation, 2) << "\n";
  };
  line("ABG:          ", abg_metrics);
  line("A-Greedy:     ", ag_metrics);
  std::cout << "\nTheorem 1 (ABG): BIBO stability, zero steady-state "
            << "error, zero overshoot, convergence rate r = "
            << abg::util::format_double(rate, 2) << " (measured "
            << abg::util::format_double(abg_metrics.convergence_rate, 2)
            << ").\n";
  return 0;
}
