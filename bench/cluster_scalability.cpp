// Cluster scheduling study: makespan and machine-utilization spread
// across router policies x machine counts, ABG vs A-Greedy per machine.
//
// Each point routes the identical labeled job set onto an M-machine
// cluster (uniform machines; processors per machine fixed, so the total
// capacity grows with M) and simulates every machine through the unified
// engine core.  The utilization columns come from the driver's
// kClusterMachineSummary events: per machine, executed cycles over
// (processors x makespan); the spread (max - min) is the imbalance the
// router left behind after migration had its say.  A good router keeps
// the spread flat as M grows; a bad one strands capacity on idle
// machines and the makespan column pays for it.
//
// Defaults run the full >= 8-machine x 4-router matrix in seconds;
// --full widens the machine axis.  Every run is recorded through
// exp::ResultSink into BENCH_cluster_scalability.json (--sink-out=PATH
// to move, =none to disable).
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cluster/router.hpp"
#include "dag/profile_job.hpp"
#include "exp/result_sink.hpp"
#include "obs/event_bus.hpp"
#include "workload/profiles.hpp"

namespace abg::bench {
namespace {

/// `njobs` square-wave jobs over four width classes, labeled so the
/// class-affinity router has real classes to key on (class = width
/// bucket, exactly what co-locating by shape should group).
std::vector<sim::JobSubmission> make_submissions(int njobs,
                                                 std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<sim::JobSubmission> subs;
  subs.reserve(static_cast<std::size_t>(njobs));
  for (int i = 0; i < njobs; ++i) {
    const int klass = i % 4;
    const auto high = static_cast<dag::TaskCount>(
        2 + 4 * klass + rng.uniform_int(0, 3));
    sim::JobSubmission s;
    s.job = std::make_unique<dag::ProfileJob>(
        workload::square_wave_profile(1, 20, high, 20, 3));
    s.name = "class" + std::to_string(klass);
    subs.push_back(std::move(s));
  }
  return subs;
}

/// Captures the per-machine summaries the cluster driver publishes right
/// before kRunEnd.
struct MachineSummarySink final : obs::Sink {
  struct Summary {
    int processors = 0;
    dag::TaskCount executed = 0;
  };
  std::vector<Summary> machines;

  void on_event(const obs::Event& event) override {
    if (event.kind == obs::EventKind::kClusterMachineSummary) {
      machines.push_back(Summary{event.processors, event.work});
    }
  }
};

struct Point {
  double wall_ms = 0.0;
  double makespan = 0.0;
  double quanta = 0.0;
  /// Per-machine utilization = executed cycles / (processors x makespan);
  /// spread = max - min over the machines.
  double util_min = 0.0;
  double util_mean = 0.0;
  double util_max = 0.0;
  double util_spread = 0.0;
};

Point run_point(const core::SchedulerSpec& spec, int njobs, int machines,
                const std::string& router, int per_machine_processors,
                dag::Steps migration_period, int threads,
                std::uint64_t seed) {
  auto subs = make_submissions(njobs, seed);

  obs::EventBus bus;
  MachineSummarySink summaries;
  bus.subscribe(&summaries);

  sim::SimConfig config{.processors = per_machine_processors,
                        .quantum_length = 50};
  config.cluster.machines = machines;
  config.cluster.router = router;
  config.cluster.migration_period = migration_period;
  config.cluster.threads = threads;
  config.obs.event_bus = &bus;

  const auto start = std::chrono::steady_clock::now();
  const sim::SimResult result = core::run_set(spec, std::move(subs), config);
  const std::chrono::duration<double, std::milli> wall =
      std::chrono::steady_clock::now() - start;

  Point point;
  point.wall_ms = wall.count();
  point.makespan = static_cast<double>(result.makespan);
  point.quanta = static_cast<double>(result.quanta);
  if (!summaries.machines.empty() && result.makespan > 0) {
    double sum = 0.0;
    point.util_min = 2.0;  // above any utilization; first machine lowers it
    for (const MachineSummarySink::Summary& m : summaries.machines) {
      const double capacity = static_cast<double>(m.processors) *
                              static_cast<double>(result.makespan);
      const double util =
          capacity > 0.0 ? static_cast<double>(m.executed) / capacity : 0.0;
      point.util_min = std::min(point.util_min, util);
      point.util_max = std::max(point.util_max, util);
      sum += util;
    }
    point.util_mean = sum / static_cast<double>(summaries.machines.size());
    point.util_spread = point.util_max - point.util_min;
  }
  return point;
}

}  // namespace
}  // namespace abg::bench

int main(int argc, char** argv) {
  using namespace abg;
  try {
    const util::Cli cli(argc, argv);
    const bench::StandardFlags flags(cli);
    const std::string sink_out =
        cli.get("sink-out", "BENCH_cluster_scalability.json");
    const int threads = std::max(1, bench::thread_count_flag(cli));
    const auto migration_period = static_cast<dag::Steps>(
        cli.get_non_negative_int("migration-period", 8));
    const int njobs =
        static_cast<int>(cli.get_positive_int("njobs", flags.full ? 512 : 96));
    const int per_machine =
        static_cast<int>(cli.get_positive_int("machine-procs", 32));

    const std::vector<int> machines_axis =
        flags.full ? std::vector<int>{1, 2, 4, 8, 16, 32}
                   : std::vector<int>{1, 2, 4, 8};
    const std::vector<std::string>& routers = cluster::router_names();

    const std::vector<std::string> scheduler_names = {"abg", "a-greedy"};

    util::Table table({"sched", "router", "machines", "wall_ms", "makespan",
                       "quanta", "util_min", "util_mean", "util_max",
                       "util_spread"});
    exp::ResultSink sink("cluster_scalability", flags.seed);
    std::int64_t run_id = 0;

    for (const std::string& sched_name : scheduler_names) {
      const core::SchedulerSpec spec = sched_name == "abg"
                                           ? core::abg_spec()
                                           : core::a_greedy_spec();
      for (const std::string& router : routers) {
        for (const int machines : machines_axis) {
          const bench::Point p = bench::run_point(
              spec, njobs, machines, router, per_machine, migration_period,
              threads, flags.seed);
          table.add_row({sched_name, router, std::to_string(machines),
                         util::format_double(p.wall_ms, 2),
                         util::format_double(p.makespan, 0),
                         util::format_double(p.quanta, 0),
                         util::format_double(p.util_min, 3),
                         util::format_double(p.util_mean, 3),
                         util::format_double(p.util_max, 3),
                         util::format_double(p.util_spread, 3)});

          exp::RunRecord record;
          record.run_id = run_id++;
          record.group = "sched=" + sched_name + "/router=" + router;
          record.scheduler = sched_name;
          record.workload = "cluster-scalability";
          record.fault = "none";
          record.cluster_machines = machines;
          record.router = router;
          record.seed = flags.seed;
          record.metrics.emplace_back("machines",
                                      static_cast<double>(machines));
          record.metrics.emplace_back("machine_procs",
                                      static_cast<double>(per_machine));
          record.metrics.emplace_back("migration_period",
                                      static_cast<double>(migration_period));
          record.metrics.emplace_back("wall_ms", p.wall_ms);
          record.metrics.emplace_back("makespan", p.makespan);
          record.metrics.emplace_back("quanta", p.quanta);
          record.metrics.emplace_back("util_min", p.util_min);
          record.metrics.emplace_back("util_mean", p.util_mean);
          record.metrics.emplace_back("util_max", p.util_max);
          record.metrics.emplace_back("util_spread", p.util_spread);
          sink.add(std::move(record));
        }
      }
    }

    bench::emit(table, flags);
    if (sink_out != "none") {
      std::ofstream out(sink_out);
      sink.write_summary(out);
      std::cout << "wrote " << sink_out << "\n";
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "cluster_scalability: " << error.what() << "\n";
    return 1;
  }
}
