// Fault-resilience comparison: ABG vs A-Greedy under processor churn,
// outages and job crashes.
//
// For each scheduler the identical seeded job set is run fault-free (the
// reference) and then under four disturbance patterns:
//
//   step     — permanent loss of half the machine mid-run;
//   impulse  — a transient outage of half the machine;
//   poisson  — seeded Poisson single-processor churn;
//   crash    — periodic crashes of job 0 (checkpoint recovery).
//
// The table reports makespan degradation versus the fault-free reference,
// the worst per-disturbance recovery time and overshoot of the aggregate
// request signal, lost work, and whether the lost-work accounting
// balances (allotted = work + lost + waste).
//
//   ./fault_resilience [--seed=S] [--jobs=N] [--full] [--csv]
//                      [--crash-policy=checkpoint|scratch]
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "fault/fault_plan.hpp"
#include "fault/resilience.hpp"
#include "sim/validate.hpp"
#include "workload/profiles.hpp"

namespace {

using abg::fault::FaultPlan;

std::vector<abg::sim::JobSubmission> build_jobs(std::uint64_t seed,
                                                int count,
                                                abg::dag::Steps levels) {
  abg::util::Rng rng(seed);
  std::vector<abg::sim::JobSubmission> subs;
  for (int j = 0; j < count; ++j) {
    abg::sim::JobSubmission s;
    // Square waves of varying parallelism so the request signal has
    // structure for the disturbance to perturb.
    const auto low = static_cast<abg::dag::TaskCount>(
        rng.uniform_int(1, 4));
    const auto high = static_cast<abg::dag::TaskCount>(
        rng.uniform_int(8, 24));
    const auto phase = rng.uniform_int(levels / 8, levels / 3);
    s.job = std::make_unique<abg::dag::ProfileJob>(
        abg::workload::square_wave_profile(low, high, phase, levels, 4));
    subs.push_back(std::move(s));
  }
  return subs;
}

struct Scenario {
  std::string name;
  FaultPlan plan;
};

std::string fmt_recovery(std::int64_t quanta) {
  return quanta < 0 ? std::string("never") : std::to_string(quanta);
}

}  // namespace

int main(int argc, char** argv) {
  const abg::util::Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  const bool full = cli.get_bool("full", false);
  const auto jobs =
      static_cast<int>(cli.get_int("jobs", full ? 12 : 4));
  const abg::bench::Machine machine{
      .processors = full ? 128 : 32,
      .quantum_length = full ? 1000 : 50};
  const abg::dag::Steps levels = full ? 4000 : 600;
  const bool scratch = cli.get("crash-policy", "checkpoint") == "scratch";

  const abg::sim::SimConfig reference_config{
      .processors = machine.processors,
      .quantum_length = machine.quantum_length};

  struct SchedulerEntry {
    std::string name;
    abg::core::SchedulerSpec (*make)();
  };
  const std::vector<SchedulerEntry> schedulers = {
      {"ABG", [] { return abg::core::abg_spec(); }},
      {"A-Greedy", [] { return abg::core::a_greedy_spec(); }},
  };

  abg::util::Table table({"scheduler", "scenario", "makespan", "degradation",
                          "recovery (quanta)", "overshoot", "lost work",
                          "crashes", "balance"});

  for (const SchedulerEntry& entry : schedulers) {
    const abg::sim::SimResult reference = abg::core::run_set(
        entry.make(), build_jobs(seed, jobs, levels), reference_config,
        nullptr);

    // Anchor the disturbances inside the reference run.
    const abg::dag::Steps mid = reference.makespan / 3;
    const abg::dag::Steps l = machine.quantum_length;
    const int half = machine.processors / 2;

    std::vector<Scenario> scenarios;
    scenarios.push_back({"step", abg::fault::step_failure_plan(mid, half)});
    scenarios.push_back(
        {"impulse",
         abg::fault::impulse_failure_plan(mid, half, 8 * l)});
    {
      abg::util::Rng churn_rng(seed + 1);
      scenarios.push_back(
          {"poisson",
           abg::fault::poisson_churn_plan(
               churn_rng, reference.makespan,
               1.0 / static_cast<double>(4 * l), 6 * l,
               machine.processors / 4)});
    }
    {
      FaultPlan crash = abg::fault::periodic_crash_plan(
          0, mid, std::max<abg::dag::Steps>(1, reference.makespan / 4), 2);
      crash.work_loss = scratch
                            ? abg::fault::WorkLoss::kRestartFromScratch
                            : abg::fault::WorkLoss::kCheckpointQuantum;
      scenarios.push_back({"crash", std::move(crash)});
    }

    for (const Scenario& scenario : scenarios) {
      abg::sim::SimConfig config = reference_config;
      config.faults = &scenario.plan;
      const abg::sim::SimResult faulty = abg::core::run_set(
          entry.make(), build_jobs(seed, jobs, levels), config, nullptr);
      for (const std::string& issue :
           abg::sim::validate_result(faulty, machine.processors)) {
        std::cerr << "VALIDATION (" << entry.name << "/" << scenario.name
                  << "): " << issue << "\n";
      }
      const abg::fault::ResilienceReport report =
          abg::fault::analyze_resilience(faulty, reference);
      table.add_row(
          {entry.name, scenario.name, std::to_string(report.makespan),
           abg::util::format_double(report.makespan_degradation, 3),
           fmt_recovery(report.max_recovery_quanta),
           abg::util::format_double(report.max_overshoot, 1),
           std::to_string(report.lost_work),
           std::to_string(report.crash_events),
           report.accounting_balances() ? "ok" : "IMBALANCED"});
    }
  }

  std::cout << "fault resilience, P = " << machine.processors << ", L = "
            << machine.quantum_length << ", jobs = " << jobs
            << ", crash policy = " << (scratch ? "scratch" : "checkpoint")
            << "\n\n";
  abg::bench::emit(table, cli);
  std::cout << "\nEvery row's accounting must balance; recovery is the "
               "worst settle time of the aggregate request signal over "
               "all disturbances of the scenario.\n";
  return 0;
}
