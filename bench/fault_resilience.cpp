// Fault-resilience comparison: ABG vs A-Greedy under processor churn,
// outages and job crashes.
//
// For each scheduler the identical seeded job set is run fault-free (the
// reference) and then under four disturbance patterns:
//
//   step     — permanent loss of half the machine mid-run;
//   impulse  — a transient outage of half the machine;
//   poisson  — seeded Poisson single-processor churn;
//   crash    — periodic crashes of job 0 (checkpoint recovery).
//
// The table reports makespan degradation versus the fault-free reference,
// the worst per-disturbance recovery time and overshoot of the aggregate
// request signal, lost work, and whether the lost-work accounting
// balances (allotted = work + lost + waste).
//
// Every (scheduler, scenario) cell is an independent RunSpec on the
// exp::SweepRunner pool; each run simulates its own fault-free reference
// (the disturbances are anchored on its makespan) before replaying the
// identical workload under the plan.
//
//   ./fault_resilience [--seed=S] [--set-size=N] [--full] [--csv]
//                      [--jobs=N] [--crash-policy=checkpoint|scratch]
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "exp/runner.hpp"

namespace {

std::string fmt_recovery(double quanta) {
  return quanta < 0 ? std::string("never")
                    : std::to_string(static_cast<std::int64_t>(quanta));
}

}  // namespace

int main(int argc, char** argv) {
  const abg::util::Cli cli(argc, argv);
  const abg::bench::StandardFlags flags(cli, 7);
  const auto set_size =
      static_cast<int>(cli.get_int("set-size", flags.full ? 12 : 4));
  const abg::bench::Machine machine{
      .processors = flags.full ? 128 : 32,
      .quantum_length = flags.full ? 1000 : 50};
  const abg::dag::Steps levels = flags.full ? 4000 : 600;
  const bool scratch = cli.get("crash-policy", "checkpoint") == "scratch";
  const int threads = abg::bench::thread_count_flag(cli);

  const std::vector<abg::exp::SchedulerKind> schedulers = {
      abg::exp::SchedulerKind::kAbg, abg::exp::SchedulerKind::kAGreedy};
  const std::vector<abg::exp::FaultScenario> scenarios = {
      abg::exp::FaultScenario::kStep, abg::exp::FaultScenario::kImpulse,
      abg::exp::FaultScenario::kPoisson, abg::exp::FaultScenario::kCrash};

  // Every cell shares seed index 0: one workload, disturbed four ways,
  // under each scheduler.
  std::vector<abg::exp::RunSpec> specs;
  for (const abg::exp::SchedulerKind scheduler : schedulers) {
    for (const abg::exp::FaultScenario scenario : scenarios) {
      abg::exp::RunSpec spec;
      spec.scheduler = scheduler;
      spec.workload.kind = abg::exp::WorkloadKind::kSquareWave;
      spec.workload.jobs = set_size;
      spec.workload.levels = levels;
      spec.machine = {.processors = machine.processors,
                      .quantum_length = machine.quantum_length};
      spec.faults.scenario = scenario;
      spec.faults.fraction = 0.5;
      spec.faults.scratch = scratch;
      spec.group = abg::exp::to_string(scenario);
      specs.push_back(std::move(spec));
    }
  }

  abg::exp::SweepConfig sweep;
  sweep.threads = threads;
  sweep.base_seed = flags.seed;
  const std::vector<abg::exp::RunRecord> records =
      abg::exp::SweepRunner(sweep).run(specs);

  abg::util::Table table({"scheduler", "scenario", "makespan", "degradation",
                          "recovery (quanta)", "overshoot", "lost work",
                          "crashes", "balance"});
  std::size_t r = 0;
  for (const abg::exp::SchedulerKind scheduler : schedulers) {
    const std::string name =
        scheduler == abg::exp::SchedulerKind::kAbg ? "ABG" : "A-Greedy";
    for (std::size_t cell = 0; cell < scenarios.size(); ++cell) {
      const abg::exp::RunRecord& rec = records[r++];
      if (rec.metric("validation_issues") > 0) {
        std::cerr << "VALIDATION (" << name << "/" << rec.group << "): "
                  << rec.metric("validation_issues")
                  << " issue(s); rerun via abg_sim --faults for details\n";
      }
      table.add_row(
          {name, rec.group,
           std::to_string(static_cast<std::int64_t>(rec.metric("makespan"))),
           abg::util::format_double(rec.metric("makespan_degradation"), 3),
           fmt_recovery(rec.metric("recovery_quanta")),
           abg::util::format_double(rec.metric("overshoot"), 1),
           std::to_string(static_cast<std::int64_t>(rec.metric("lost_work"))),
           std::to_string(static_cast<std::int64_t>(rec.metric("crashes"))),
           rec.metric("accounting_balanced") > 0 ? "ok" : "IMBALANCED"});
    }
  }

  std::cout << "fault resilience, P = " << machine.processors << ", L = "
            << machine.quantum_length << ", jobs = " << set_size
            << ", crash policy = " << (scratch ? "scratch" : "checkpoint")
            << "\n\n";
  abg::bench::emit(table, flags);
  std::cout << "\nEvery row's accounting must balance; recovery is the "
               "worst settle time of the aggregate request signal over "
               "all disturbances of the scenario.\n";
  return 0;
}
