// Google-benchmark microbenchmarks: raw throughput of the simulation
// substrate.  These are engineering benchmarks (not paper figures) — they
// document that the closed-form ProfileJob path is what makes the
// paper-scale sweeps (5000 job sets at L = 1000) tractable.
//
// A custom main() funnels every measured run through exp::ResultSink and
// writes BENCH_throughput.json (override with --sink-out=PATH, disable
// with --sink-out=none; --sink-jsonl=PATH additionally dumps per-run
// records), so the repository tracks a throughput trajectory per change.
// --profile-out=PATH additionally writes a BENCH_profile.json-format
// self-profile (one span per measured benchmark plus bench.total).  All
// artifacts go through util::write_file_atomic, so an interrupted bench
// never leaves a torn JSON behind.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "alloc/equipartition.hpp"
#include "core/run.hpp"
#include "exp/result_sink.hpp"
#include "dag/builders.hpp"
#include "dag/dag_job.hpp"
#include "dag/profile_job.hpp"
#include "obs/event_bus.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_sink.hpp"
#include "obs/perfetto.hpp"
#include "obs/profile.hpp"
#include "obs/trace_sink.hpp"
#include "sim/simulator.hpp"
#include "util/atomic_file.hpp"
#include "workload/fork_join.hpp"
#include "workload/job_set.hpp"
#include "workload/profiles.hpp"

namespace {

void BM_ProfileJobQuantum(benchmark::State& state) {
  // One quantum of closed-form execution over many levels.
  const auto widths = abg::workload::square_wave_profile(
      1, 100, 64, 100, 50);
  abg::dag::ProfileJob job(widths);
  for (auto _ : state) {
    auto clone = job.fresh_clone();
    abg::dag::TaskCount total = 0;
    while (!clone->finished()) {
      total += clone->run_quantum(64, 1000,
                                  abg::dag::PickOrder::kBreadthFirst)
                   .work;
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          job.total_work());
}
BENCHMARK(BM_ProfileJobQuantum);

void BM_DagJobStep(benchmark::State& state) {
  // Explicit-DAG execution (per-task bookkeeping).
  abg::util::Rng rng(7);
  const auto structure = abg::dag::builders::random_layered(rng, 400, 64,
                                                            0.05);
  abg::dag::DagJob job(structure);
  for (auto _ : state) {
    auto clone = job.fresh_clone();
    abg::dag::TaskCount total = 0;
    while (!clone->finished()) {
      total += clone->step(16, abg::dag::PickOrder::kBreadthFirst);
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          job.total_work());
}
BENCHMARK(BM_DagJobStep);

void BM_EquiPartition(benchmark::State& state) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  abg::alloc::EquiPartition deq;
  std::vector<int> requests(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    requests[i] = static_cast<int>(1 + (i * 37) % 100);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(deq.allocate(requests, 128));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(jobs));
}
BENCHMARK(BM_EquiPartition)->Arg(4)->Arg(32)->Arg(128);

void BM_SingleJobAbg(benchmark::State& state) {
  // Full feedback loop: one fork-join job end to end under ABG.
  abg::util::Rng rng(11);
  const auto job = abg::workload::make_fork_join_job(
      rng, abg::workload::figure5_spec(20.0, 1000));
  const abg::core::SchedulerSpec spec = abg::core::abg_spec();
  for (auto _ : state) {
    auto clone = job->fresh_clone();
    const auto trace = abg::core::run_single(
        spec, *clone,
        abg::sim::SingleJobConfig{.processors = 128,
                                  .quantum_length = 1000});
    benchmark::DoNotOptimize(trace.completion_step);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          job->total_work());
}
BENCHMARK(BM_SingleJobAbg);

void BM_JobSetSimulation(benchmark::State& state) {
  // A whole multiprogrammed job set under DEQ: the unit of work of the
  // Figure 6 sweep.
  const double load = static_cast<double>(state.range(0)) / 10.0;
  for (auto _ : state) {
    state.PauseTiming();
    abg::util::Rng rng(23);
    abg::workload::JobSetSpec spec;
    spec.load = load;
    spec.processors = 128;
    spec.min_phase_levels = 500;
    spec.max_phase_levels = 2000;
    auto jobs = abg::workload::make_job_set(rng, spec);
    std::vector<abg::sim::JobSubmission> subs;
    for (auto& g : jobs) {
      abg::sim::JobSubmission s;
      s.job = std::move(g.job);
      subs.push_back(std::move(s));
    }
    state.ResumeTiming();
    const auto result = abg::core::run_set(
        abg::core::abg_spec(), std::move(subs),
        abg::sim::SimConfig{.processors = 128, .quantum_length = 1000});
    benchmark::DoNotOptimize(result.makespan);
  }
}
BENCHMARK(BM_JobSetSimulation)->Arg(5)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_JobSetSimulationObserved(benchmark::State& state) {
  // Same job set as BM_JobSetSimulation but with the full observability
  // stack attached (Perfetto trace sink + metrics sink), quantifying what
  // --trace-out/--metrics-out cost relative to the unobserved run above.
  const double load = static_cast<double>(state.range(0)) / 10.0;
  for (auto _ : state) {
    state.PauseTiming();
    abg::util::Rng rng(23);
    abg::workload::JobSetSpec spec;
    spec.load = load;
    spec.processors = 128;
    spec.min_phase_levels = 500;
    spec.max_phase_levels = 2000;
    auto jobs = abg::workload::make_job_set(rng, spec);
    std::vector<abg::sim::JobSubmission> subs;
    for (auto& g : jobs) {
      abg::sim::JobSubmission s;
      s.job = std::move(g.job);
      subs.push_back(std::move(s));
    }
    abg::obs::PerfettoTrace trace;
    abg::obs::SimTraceSink trace_sink(trace);
    abg::obs::MetricsRegistry registry;
    abg::obs::MetricsSink metrics_sink(registry);
    abg::obs::EventBus bus;
    bus.subscribe(&trace_sink);
    bus.subscribe(&metrics_sink);
    abg::sim::SimConfig config{.processors = 128, .quantum_length = 1000};
    config.obs.event_bus = &bus;
    state.ResumeTiming();
    const auto result = abg::core::run_set(abg::core::abg_spec(),
                                           std::move(subs), config);
    benchmark::DoNotOptimize(result.makespan);
    benchmark::DoNotOptimize(trace.event_count());
  }
}
BENCHMARK(BM_JobSetSimulationObserved)
    ->Arg(5)
    ->Arg(20)
    ->Unit(benchmark::kMillisecond);

/// Console reporter that additionally records every run in a ResultSink
/// and, when a profiler is attached, one profile span per benchmark
/// (seconds = measured wall time, items = iterations).
class SinkReporter : public benchmark::ConsoleReporter {
 public:
  SinkReporter(abg::exp::ResultSink* sink, abg::obs::Profiler* profiler)
      : sink_(sink), profiler_(profiler) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) {
        continue;
      }
      abg::exp::RunRecord record;
      record.run_id = next_id_++;
      record.group = run.benchmark_name();
      record.scheduler = "";
      record.workload = "micro";
      record.fault = "none";
      record.metrics.emplace_back("real_time_ns", run.GetAdjustedRealTime());
      record.metrics.emplace_back("cpu_time_ns", run.GetAdjustedCPUTime());
      record.metrics.emplace_back("iterations",
                                  static_cast<double>(run.iterations));
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        record.metrics.emplace_back("items_per_second",
                                    items->second.value);
      }
      sink_->add(std::move(record));
      if (profiler_ != nullptr) {
        // real_accumulated_time is whole-run seconds, independent of the
        // benchmark's display time unit.
        profiler_->record("bench." + run.benchmark_name(),
                          run.real_accumulated_time, run.iterations);
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  abg::exp::ResultSink* sink_;
  abg::obs::Profiler* profiler_;
  std::int64_t next_id_ = 0;
};

/// Strips `--name=value` from argv and returns its value (or `fallback`).
std::string take_flag(int& argc, char** argv, const std::string& name,
                      const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      for (int j = i; j + 1 < argc; ++j) {
        argv[j] = argv[j + 1];
      }
      --argc;
      return arg.substr(prefix.size());
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string sink_out =
      take_flag(argc, argv, "sink-out", "BENCH_throughput.json");
  const std::string sink_jsonl = take_flag(argc, argv, "sink-jsonl", "none");
  const std::string profile_out = take_flag(argc, argv, "profile-out", "none");

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  abg::exp::ResultSink sink("throughput", 0);
  abg::obs::Profiler profiler;
  SinkReporter reporter(&sink,
                        profile_out != "none" ? &profiler : nullptr);
  {
    auto total = profiler.time("bench.total");
    benchmark::RunSpecifiedBenchmarks(&reporter);
  }
  benchmark::Shutdown();

  if (sink_out != "none") {
    abg::util::write_file_atomic(
        sink_out, [&sink](std::ostream& os) { sink.write_summary(os); });
  }
  if (sink_jsonl != "none") {
    abg::util::write_file_atomic(
        sink_jsonl, [&sink](std::ostream& os) { sink.write_jsonl(os); });
  }
  if (profile_out != "none") {
    abg::util::write_file_atomic(
        profile_out,
        [&profiler](std::ostream& os) { profiler.write(os); });
  }
  return 0;
}
