// Google-benchmark microbenchmarks: raw throughput of the simulation
// substrate.  These are engineering benchmarks (not paper figures) — they
// document that the closed-form ProfileJob path is what makes the
// paper-scale sweeps (5000 job sets at L = 1000) tractable.
//
// The BM_SimSteps family is the repo's headline raw-speed metric: each
// variant runs a phase-structured job set to completion on one engine
// axis (sync | async | sharded | open) and one job-shape class (square |
// serial | wide) and reports simulated-steps/sec (items == simulated
// steps advanced), which is what the skip-ahead evaluator is measured by.
//
// A custom main() funnels every measured run through exp::ResultSink and
// writes BENCH_micro_throughput.json (override with --sink-out=PATH,
// disable with --sink-out=none; --sink-jsonl=PATH additionally dumps
// per-run records), so the repository tracks a throughput trajectory per
// change; the committed root-level BENCH_micro_throughput.json is the
// regression baseline `trace_check bench` compares against in CI.
// --profile-out=PATH additionally writes a BENCH_profile.json-format
// self-profile (one span per measured benchmark plus bench.total).  All
// artifacts go through util::write_file_atomic, so an interrupted bench
// never leaves a torn JSON behind.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "alloc/equipartition.hpp"
#include "core/run.hpp"
#include "exp/result_sink.hpp"
#include "dag/builders.hpp"
#include "dag/dag_job.hpp"
#include "dag/profile_job.hpp"
#include "obs/event_bus.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_sink.hpp"
#include "obs/perfetto.hpp"
#include "obs/profile.hpp"
#include "obs/trace_sink.hpp"
#include "sim/simulator.hpp"
#include "util/atomic_file.hpp"
#include "workload/fork_join.hpp"
#include "workload/job_set.hpp"
#include "workload/profiles.hpp"

namespace {

void BM_ProfileJobQuantum(benchmark::State& state) {
  // One quantum of closed-form execution over many levels.
  const auto widths = abg::workload::square_wave_profile(
      1, 100, 64, 100, 50);
  abg::dag::ProfileJob job(widths);
  for (auto _ : state) {
    auto clone = job.fresh_clone();
    abg::dag::TaskCount total = 0;
    while (!clone->finished()) {
      total += clone->run_quantum(64, 1000,
                                  abg::dag::PickOrder::kBreadthFirst)
                   .work;
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          job.total_work());
}
BENCHMARK(BM_ProfileJobQuantum);

void BM_DagJobStep(benchmark::State& state) {
  // Explicit-DAG execution (per-task bookkeeping).
  abg::util::Rng rng(7);
  const auto structure = abg::dag::builders::random_layered(rng, 400, 64,
                                                            0.05);
  abg::dag::DagJob job(structure);
  for (auto _ : state) {
    auto clone = job.fresh_clone();
    abg::dag::TaskCount total = 0;
    while (!clone->finished()) {
      total += clone->step(16, abg::dag::PickOrder::kBreadthFirst);
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          job.total_work());
}
BENCHMARK(BM_DagJobStep);

void BM_EquiPartition(benchmark::State& state) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  abg::alloc::EquiPartition deq;
  std::vector<int> requests(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    requests[i] = static_cast<int>(1 + (i * 37) % 100);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(deq.allocate(requests, 128));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(jobs));
}
BENCHMARK(BM_EquiPartition)->Arg(4)->Arg(32)->Arg(128);

void BM_SingleJobAbg(benchmark::State& state) {
  // Full feedback loop: one fork-join job end to end under ABG.
  abg::util::Rng rng(11);
  const auto job = abg::workload::make_fork_join_job(
      rng, abg::workload::figure5_spec(20.0, 1000));
  const abg::core::SchedulerSpec spec = abg::core::abg_spec();
  for (auto _ : state) {
    auto clone = job->fresh_clone();
    const auto trace = abg::core::run_single(
        spec, *clone,
        abg::sim::SingleJobConfig{.processors = 128,
                                  .quantum_length = 1000});
    benchmark::DoNotOptimize(trace.completion_step);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          job->total_work());
}
BENCHMARK(BM_SingleJobAbg);

void BM_JobSetSimulation(benchmark::State& state) {
  // A whole multiprogrammed job set under DEQ: the unit of work of the
  // Figure 6 sweep.
  const double load = static_cast<double>(state.range(0)) / 10.0;
  for (auto _ : state) {
    state.PauseTiming();
    abg::util::Rng rng(23);
    abg::workload::JobSetSpec spec;
    spec.load = load;
    spec.processors = 128;
    spec.min_phase_levels = 500;
    spec.max_phase_levels = 2000;
    auto jobs = abg::workload::make_job_set(rng, spec);
    std::vector<abg::sim::JobSubmission> subs;
    for (auto& g : jobs) {
      abg::sim::JobSubmission s;
      s.job = std::move(g.job);
      subs.push_back(std::move(s));
    }
    state.ResumeTiming();
    const auto result = abg::core::run_set(
        abg::core::abg_spec(), std::move(subs),
        abg::sim::SimConfig{.processors = 128, .quantum_length = 1000});
    benchmark::DoNotOptimize(result.makespan);
  }
}
BENCHMARK(BM_JobSetSimulation)->Arg(5)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_JobSetSimulationObserved(benchmark::State& state) {
  // Same job set as BM_JobSetSimulation but with the full observability
  // stack attached (Perfetto trace sink + metrics sink), quantifying what
  // --trace-out/--metrics-out cost relative to the unobserved run above.
  const double load = static_cast<double>(state.range(0)) / 10.0;
  for (auto _ : state) {
    state.PauseTiming();
    abg::util::Rng rng(23);
    abg::workload::JobSetSpec spec;
    spec.load = load;
    spec.processors = 128;
    spec.min_phase_levels = 500;
    spec.max_phase_levels = 2000;
    auto jobs = abg::workload::make_job_set(rng, spec);
    std::vector<abg::sim::JobSubmission> subs;
    for (auto& g : jobs) {
      abg::sim::JobSubmission s;
      s.job = std::move(g.job);
      subs.push_back(std::move(s));
    }
    abg::obs::PerfettoTrace trace;
    abg::obs::SimTraceSink trace_sink(trace);
    abg::obs::MetricsRegistry registry;
    abg::obs::MetricsSink metrics_sink(registry);
    abg::obs::EventBus bus;
    bus.subscribe(&trace_sink);
    bus.subscribe(&metrics_sink);
    abg::sim::SimConfig config{.processors = 128, .quantum_length = 1000};
    config.obs.event_bus = &bus;
    state.ResumeTiming();
    const auto result = abg::core::run_set(abg::core::abg_spec(),
                                           std::move(subs), config);
    benchmark::DoNotOptimize(result.makespan);
    benchmark::DoNotOptimize(trace.event_count());
  }
}
BENCHMARK(BM_JobSetSimulationObserved)
    ->Arg(5)
    ->Arg(20)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Simulated-steps/sec per engine axis and per job-shape class.
//
// Shapes (all phase-structured ProfileJobs, the workload class the
// skip-ahead evaluator targets):
//   square — fork-join square wave (1 <-> 64): the paper's alternation,
//            many short phases, exercises phase-crossing math.
//   serial — long near-serial chain (width 2): span-dominated, the
//            stride planner should jump whole quanta at a time.
//   wide   — constant width 256 > P: work-dominated full quanta, few
//            phase transitions.
// Items processed == simulated steps advanced (makespan per run), so the
// reported items_per_second is simulated-steps/sec on that axis.

std::vector<abg::dag::TaskCount> shape_widths(const std::string& shape) {
  if (shape == "square") {
    return abg::workload::square_wave_profile(1, 40, 64, 40, 60);
  }
  if (shape == "serial") {
    return abg::workload::constant_profile(2, 4000);
  }
  return abg::workload::constant_profile(256, 1500);  // wide
}

std::vector<abg::sim::JobSubmission> make_shaped_set(const std::string& shape,
                                                     std::size_t jobs) {
  const auto widths = shape_widths(shape);
  std::vector<abg::sim::JobSubmission> subs;
  subs.reserve(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    abg::sim::JobSubmission s;
    s.job = std::make_unique<abg::dag::ProfileJob>(widths);
    s.release_step = static_cast<abg::dag::Steps>(i * 500);
    subs.push_back(std::move(s));
  }
  return subs;
}

void BM_SimSteps(benchmark::State& state, const std::string& axis,
                 const std::string& shape) {
  std::int64_t steps = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto subs = make_shaped_set(shape, 8);
    abg::sim::SimConfig config{.processors = 128, .quantum_length = 1000};
    if (axis == "async") {
      config.engine = abg::sim::EngineKind::kAsync;
    } else if (axis == "sharded") {
      config.hier.groups = 4;
    }
    state.ResumeTiming();
    const auto result = abg::core::run_set(abg::core::abg_spec(),
                                           std::move(subs), config);
    steps += result.makespan;
    benchmark::DoNotOptimize(result.makespan);
  }
  state.SetItemsProcessed(steps);
}
BENCHMARK_CAPTURE(BM_SimSteps, sync_square, "sync", "square");
BENCHMARK_CAPTURE(BM_SimSteps, sync_serial, "sync", "serial");
BENCHMARK_CAPTURE(BM_SimSteps, sync_wide, "sync", "wide");
BENCHMARK_CAPTURE(BM_SimSteps, async_square, "async", "square");
BENCHMARK_CAPTURE(BM_SimSteps, async_serial, "async", "serial");
BENCHMARK_CAPTURE(BM_SimSteps, async_wide, "async", "wide");
BENCHMARK_CAPTURE(BM_SimSteps, sharded_square, "sharded", "square");
BENCHMARK_CAPTURE(BM_SimSteps, sharded_serial, "sharded", "serial");
BENCHMARK_CAPTURE(BM_SimSteps, sharded_wide, "sharded", "wide");

void BM_SimStepsOpen(benchmark::State& state) {
  // Open-system axis: the default square-wave factory under a Poisson
  // stream (the streaming driver shares the sync per-quantum block).
  std::int64_t steps = 0;
  for (auto _ : state) {
    abg::open::OpenConfig config;
    config.processors = 64;
    config.quantum_length = 100;
    config.jobs_total = 400;
    config.load = 0.8;
    const auto result =
        abg::core::run_open(abg::core::abg_spec(), config, 11);
    steps += result.makespan;
    benchmark::DoNotOptimize(result.makespan);
  }
  state.SetItemsProcessed(steps);
}
BENCHMARK(BM_SimStepsOpen);

/// Console reporter that additionally records every run in a ResultSink
/// and, when a profiler is attached, one profile span per benchmark
/// (seconds = measured wall time, items = iterations).
class SinkReporter : public benchmark::ConsoleReporter {
 public:
  SinkReporter(abg::exp::ResultSink* sink, abg::obs::Profiler* profiler)
      : sink_(sink), profiler_(profiler) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) {
        continue;
      }
      abg::exp::RunRecord record;
      record.run_id = next_id_++;
      record.group = run.benchmark_name();
      record.scheduler = "";
      record.workload = "micro";
      record.fault = "none";
      record.metrics.emplace_back("real_time_ns", run.GetAdjustedRealTime());
      record.metrics.emplace_back("cpu_time_ns", run.GetAdjustedCPUTime());
      record.metrics.emplace_back("iterations",
                                  static_cast<double>(run.iterations));
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        record.metrics.emplace_back("items_per_second",
                                    items->second.value);
      }
      sink_->add(std::move(record));
      if (profiler_ != nullptr) {
        // real_accumulated_time is whole-run seconds, independent of the
        // benchmark's display time unit.
        profiler_->record("bench." + run.benchmark_name(),
                          run.real_accumulated_time, run.iterations);
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  abg::exp::ResultSink* sink_;
  abg::obs::Profiler* profiler_;
  std::int64_t next_id_ = 0;
};

/// Strips `--name=value` from argv and returns its value (or `fallback`).
std::string take_flag(int& argc, char** argv, const std::string& name,
                      const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      for (int j = i; j + 1 < argc; ++j) {
        argv[j] = argv[j + 1];
      }
      --argc;
      return arg.substr(prefix.size());
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string sink_out =
      take_flag(argc, argv, "sink-out", "BENCH_micro_throughput.json");
  const std::string sink_jsonl = take_flag(argc, argv, "sink-jsonl", "none");
  const std::string profile_out = take_flag(argc, argv, "profile-out", "none");

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  abg::exp::ResultSink sink("throughput", 0);
  abg::obs::Profiler profiler;
  SinkReporter reporter(&sink,
                        profile_out != "none" ? &profiler : nullptr);
  {
    auto total = profiler.time("bench.total");
    benchmark::RunSpecifiedBenchmarks(&reporter);
  }
  benchmark::Shutdown();

  if (sink_out != "none") {
    abg::util::write_file_atomic(
        sink_out, [&sink](std::ostream& os) { sink.write_summary(os); });
  }
  if (sink_jsonl != "none") {
    abg::util::write_file_atomic(
        sink_jsonl, [&sink](std::ostream& os) { sink.write_jsonl(os); });
  }
  if (profile_out != "none") {
    abg::util::write_file_atomic(
        profile_out,
        [&profiler](std::ostream& os) { profiler.write(os); });
  }
  return 0;
}
