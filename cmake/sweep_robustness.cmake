# Watchdog / retry / quarantine smoke for abg_sweep, driven by the hidden
# test hooks (--test-hang-run pins one cell in a cancellable busy-wait;
# --test-fail-run makes a cell's first N attempts throw).
#
# Asserts the full degraded-coverage contract:
#   - a hung run is killed at --run-timeout, retried with backoff, and
#     quarantined after --max-retries — sweep exits 3 (degraded), not 1;
#   - the quarantine appears in the table output, the summary JSON and the
#     journal (which still validates);
#   - a transiently failing run is retried to success and the sweep stays
#     exit 0 with artifacts intact.
#
# Expects: -DABG_SWEEP=<binary> -DTRACE_CHECK=<binary> -DWORK_DIR=<scratch>
file(MAKE_DIRECTORY "${WORK_DIR}")

set(grid
  --param scheduler=abg,a-greedy
  --param load=0.5
  --param quantum=50
  --param processors=32
  --reps=1 --seed=19 --quiet)

# --- Hung run: timeout -> retries -> quarantine -> exit 3. ---------------
# The journal is append-only by design, so stale state from a previous
# ctest invocation must be cleared for the event counts to be exact.
file(REMOVE ${WORK_DIR}/hang.journal)
execute_process(
  COMMAND "${ABG_SWEEP}" ${grid} --jobs=2
          --run-timeout=0.3 --max-retries=1 --backoff=0.05
          --test-hang-run=1
          --jsonl=${WORK_DIR}/hang.jsonl --summary=${WORK_DIR}/hang.json
          --journal=${WORK_DIR}/hang.journal
  RESULT_VARIABLE status OUTPUT_VARIABLE out ERROR_QUIET)
if(NOT status EQUAL 3)
  message(FATAL_ERROR
    "quarantined sweep: expected exit 3 (degraded), got ${status}:\n${out}")
endif()
if(NOT out MATCHES "QUARANTINED 1 run")
  message(FATAL_ERROR "missing quarantine report:\n${out}")
endif()
if(NOT out MATCHES "timeout")
  message(FATAL_ERROR "quarantine report does not name the cause:\n${out}")
endif()
if(NOT out MATCHES "1 retry, 2 timeout")
  message(FATAL_ERROR "missing retry/timeout accounting:\n${out}")
endif()

file(READ ${WORK_DIR}/hang.json summary)
if(NOT summary MATCHES "\"quarantined_runs\":1")
  message(FATAL_ERROR "summary does not count the quarantined run")
endif()
file(READ ${WORK_DIR}/hang.jsonl jsonl)
if(NOT jsonl MATCHES "\"failure\":\"timeout\"")
  message(FATAL_ERROR "JSONL does not carry the failure record")
endif()

execute_process(
  COMMAND "${TRACE_CHECK}" journal ${WORK_DIR}/hang.journal
  RESULT_VARIABLE status OUTPUT_VARIABLE out)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "journal of quarantined sweep invalid:\n${out}")
endif()
if(NOT out MATCHES "1 quarantines")
  message(FATAL_ERROR "journal does not record the quarantine:\n${out}")
endif()

# --- Transient failure: retry succeeds, coverage complete, exit 0. -------
execute_process(
  COMMAND "${ABG_SWEEP}" ${grid} --jobs=2
          --max-retries=2 --backoff=0.05
          --test-fail-run=0:2
          --jsonl=${WORK_DIR}/flaky.jsonl --summary=${WORK_DIR}/flaky.json
  RESULT_VARIABLE status OUTPUT_VARIABLE out ERROR_QUIET)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "flaky sweep: expected exit 0, got ${status}:\n${out}")
endif()
if(NOT out MATCHES "2 retries")
  message(FATAL_ERROR "flaky sweep did not report its retries:\n${out}")
endif()
if(out MATCHES "QUARANTINED")
  message(FATAL_ERROR "flaky sweep must not quarantine:\n${out}")
endif()

# Retries leave no trace: artifacts equal a clean run of the same grid.
execute_process(
  COMMAND "${ABG_SWEEP}" ${grid} --jobs=1
          --jsonl=${WORK_DIR}/clean.jsonl --summary=${WORK_DIR}/clean.json
  RESULT_VARIABLE status OUTPUT_QUIET)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "clean sweep failed (${status})")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/flaky.jsonl ${WORK_DIR}/clean.jsonl
  RESULT_VARIABLE jsonl_diff)
if(NOT jsonl_diff EQUAL 0)
  message(FATAL_ERROR "retried sweep's JSONL differs from a clean run")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/flaky.json ${WORK_DIR}/clean.json
  RESULT_VARIABLE summary_diff)
if(NOT summary_diff EQUAL 0)
  message(FATAL_ERROR "retried sweep's summary differs from a clean run")
endif()
