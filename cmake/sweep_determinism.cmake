# Runs abg_sweep twice on the same small grid — single-threaded and with 4
# worker threads — and fails unless the JSONL records, the summary JSON and
# the merged metrics registry are byte-identical.  This is the CLI-level
# guarantee behind every BENCH_*.json trajectory: thread count never
# changes results (metric merges are commutative, so even the merged
# registry is order-independent).
#
# Expects: -DABG_SWEEP=<path to binary> -DWORK_DIR=<scratch dir>
file(MAKE_DIRECTORY "${WORK_DIR}")

set(grid
  --param scheduler=abg,a-greedy
  --param load=0.5,1.5
  --param quantum=50
  --param processors=32
  --reps=2 --seed=77 --quiet)

execute_process(
  COMMAND "${ABG_SWEEP}" ${grid} --jobs=1
          --jsonl=${WORK_DIR}/serial.jsonl --summary=${WORK_DIR}/serial.json
          --metrics-out=${WORK_DIR}/serial_metrics.json
  RESULT_VARIABLE serial_status
  OUTPUT_QUIET)
if(NOT serial_status EQUAL 0)
  message(FATAL_ERROR "abg_sweep --jobs=1 failed (${serial_status})")
endif()

execute_process(
  COMMAND "${ABG_SWEEP}" ${grid} --jobs=4
          --jsonl=${WORK_DIR}/pool.jsonl --summary=${WORK_DIR}/pool.json
          --metrics-out=${WORK_DIR}/pool_metrics.json
  RESULT_VARIABLE pool_status
  OUTPUT_QUIET)
if(NOT pool_status EQUAL 0)
  message(FATAL_ERROR "abg_sweep --jobs=4 failed (${pool_status})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${WORK_DIR}/serial.jsonl" "${WORK_DIR}/pool.jsonl"
  RESULT_VARIABLE jsonl_diff)
if(NOT jsonl_diff EQUAL 0)
  message(FATAL_ERROR "JSONL differs between --jobs=1 and --jobs=4")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${WORK_DIR}/serial.json" "${WORK_DIR}/pool.json"
  RESULT_VARIABLE summary_diff)
if(NOT summary_diff EQUAL 0)
  message(FATAL_ERROR "summary JSON differs between --jobs=1 and --jobs=4")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${WORK_DIR}/serial_metrics.json" "${WORK_DIR}/pool_metrics.json"
  RESULT_VARIABLE metrics_diff)
if(NOT metrics_diff EQUAL 0)
  message(FATAL_ERROR "metrics JSON differs between --jobs=1 and --jobs=4")
endif()
