# Importer round-trip: export a scenario's jobs as a JSONL trace,
# re-import the trace as a new scenario file, and prove
#
#   (a) import -> export is idempotent: exporting the imported scenario
#       reproduces the first trace byte for byte (under a different seed,
#       because an explicit scenario consumes no randomness), and
#   (b) sweeping the original and the imported scenario produces
#       byte-identical result artifacts — same group labels (identity is
#       the scenario *name*, not the file path), same jobs, same metrics.
#
# Expects: -DABG_SWEEP=<path> -DTRACE_CHECK=<path>
#          -DSCENARIOS_DIR=<repo scenarios/> -DWORK_DIR=<scratch dir>
file(MAKE_DIRECTORY "${WORK_DIR}")

set(original ${SCENARIOS_DIR}/explicit_tiny.json)

execute_process(
  COMMAND "${TRACE_CHECK}" export ${original} ${WORK_DIR}/first.jsonl
          --seed=5
  RESULT_VARIABLE export_status
  OUTPUT_QUIET)
if(NOT export_status EQUAL 0)
  message(FATAL_ERROR "trace_check export failed (${export_status})")
endif()

execute_process(
  COMMAND "${TRACE_CHECK}" import ${WORK_DIR}/first.jsonl
          ${WORK_DIR}/imported.json
  RESULT_VARIABLE import_status
  OUTPUT_QUIET)
if(NOT import_status EQUAL 0)
  message(FATAL_ERROR "trace_check import failed (${import_status})")
endif()

# (a) Re-export under a different seed: an explicit scenario ignores the
# RNG, so the bytes must match the first export exactly.
execute_process(
  COMMAND "${TRACE_CHECK}" export ${WORK_DIR}/imported.json
          ${WORK_DIR}/second.jsonl --seed=9
  RESULT_VARIABLE reexport_status
  OUTPUT_QUIET)
if(NOT reexport_status EQUAL 0)
  message(FATAL_ERROR "trace_check re-export failed (${reexport_status})")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${WORK_DIR}/first.jsonl" "${WORK_DIR}/second.jsonl"
  RESULT_VARIABLE trace_diff)
if(NOT trace_diff EQUAL 0)
  message(FATAL_ERROR "export -> import -> export is not idempotent")
endif()

# (b) Identical sweep artifacts from the original and the imported file.
set(grid --param scheduler=abg,a-greedy --param allocator=deq,hesrpt
    --reps=2 --seed=12 --jobs=2 --quiet)
execute_process(
  COMMAND "${ABG_SWEEP}" --scenario ${original} ${grid}
          --jsonl=${WORK_DIR}/original.jsonl
          --summary=${WORK_DIR}/original.json
  RESULT_VARIABLE original_status
  OUTPUT_QUIET)
if(NOT original_status EQUAL 0)
  message(FATAL_ERROR "sweep of the original scenario failed "
                      "(${original_status})")
endif()
execute_process(
  COMMAND "${ABG_SWEEP}" --scenario ${WORK_DIR}/imported.json ${grid}
          --jsonl=${WORK_DIR}/roundtrip.jsonl
          --summary=${WORK_DIR}/roundtrip.json
  RESULT_VARIABLE roundtrip_status
  OUTPUT_QUIET)
if(NOT roundtrip_status EQUAL 0)
  message(FATAL_ERROR "sweep of the imported scenario failed "
                      "(${roundtrip_status})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${WORK_DIR}/original.jsonl" "${WORK_DIR}/roundtrip.jsonl"
  RESULT_VARIABLE jsonl_diff)
if(NOT jsonl_diff EQUAL 0)
  message(FATAL_ERROR
          "round-tripped sweep JSONL differs from the original's")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${WORK_DIR}/original.json" "${WORK_DIR}/roundtrip.json"
  RESULT_VARIABLE summary_diff)
if(NOT summary_diff EQUAL 0)
  message(FATAL_ERROR
          "round-tripped sweep summary differs from the original's")
endif()
