# Kill-and-resume determinism check for abg_sweep's crash-safe execution.
#
# The scenario: a sweep is interrupted after completing some cells — here
# simulated by running the full sweep with a journal and then truncating
# the journal mid-line, exactly the file a SIGKILL during an append leaves
# behind (a valid JSONL prefix plus one torn trailing line).  `--resume`
# must replay the complete lines, re-execute only the rest, and produce a
# JSONL file and summary byte-identical to the uninterrupted reference —
# at --jobs 1 and --jobs 4, and on a hierarchical grid running the sharded
# multi-threaded engine (--hier-threads 2).
#
# Expects: -DABG_SWEEP=<binary> -DTRACE_CHECK=<binary> -DWORK_DIR=<scratch>
file(MAKE_DIRECTORY "${WORK_DIR}")

set(grid
  --param scheduler=abg,a-greedy
  --param load=0.5,1.5
  --param quantum=50
  --param processors=32
  --reps=2 --seed=77 --quiet)

set(hier_grid
  --param scheduler=abg
  --param load=0.5,1.5
  --param quantum=50
  --param processors=32
  --hier-groups=2 --hier-threads=2
  --reps=2 --seed=41 --quiet)

# Runs one scenario: reference sweep, journaled sweep, truncate, resume at
# the given job count, byte-compare.
function(check_resume name jobs)
  set(gridvar ${ARGN})
  set(ref ${WORK_DIR}/${name}_ref)
  set(res ${WORK_DIR}/${name}_res)

  execute_process(
    COMMAND "${ABG_SWEEP}" ${gridvar} --jobs=1
            --jsonl=${ref}.jsonl --summary=${ref}.json
    RESULT_VARIABLE status OUTPUT_QUIET)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "${name}: reference sweep failed (${status})")
  endif()

  # The journal is append-only; clear any state from a previous ctest run
  # so the truncation below tears this sweep's events, not stale ones.
  file(REMOVE ${res}.journal)
  execute_process(
    COMMAND "${ABG_SWEEP}" ${gridvar} --jobs=${jobs}
            --jsonl=${res}_full.jsonl --summary=${res}_full.json
            --journal=${res}.journal
    RESULT_VARIABLE status OUTPUT_QUIET)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "${name}: journaled sweep failed (${status})")
  endif()

  # Tear the journal as a crash would: drop the last 200 bytes, cutting
  # the final "done" line mid-JSON and discarding at least one record.
  # (head -c, not file(READ)+file(WRITE): CMake's string round-trip
  # appends a newline, which would heal the tear into a complete —
  # invalid — line.)
  file(SIZE ${res}.journal journal_size)
  math(EXPR keep "${journal_size} - 200")
  if(keep LESS 80)
    message(FATAL_ERROR "${name}: journal too small to truncate")
  endif()
  execute_process(
    COMMAND head -c ${keep} ${res}.journal
    OUTPUT_FILE ${res}.torn.journal
    RESULT_VARIABLE status)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "${name}: truncating journal failed (${status})")
  endif()

  # The torn journal must still validate (torn tail is part of the format).
  execute_process(
    COMMAND "${TRACE_CHECK}" journal ${res}.torn.journal
    RESULT_VARIABLE status OUTPUT_QUIET)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "${name}: trace_check rejected torn journal")
  endif()

  execute_process(
    COMMAND "${ABG_SWEEP}" ${gridvar} --jobs=${jobs}
            --jsonl=${res}.jsonl --summary=${res}.json
            --resume=${res}.torn.journal
    RESULT_VARIABLE status
    OUTPUT_VARIABLE resume_out)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "${name}: resumed sweep failed (${status})")
  endif()
  if(NOT resume_out MATCHES "resumed [1-9]")
    message(FATAL_ERROR
      "${name}: resume did not report resumed cells:\n${resume_out}")
  endif()

  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${res}.jsonl ${ref}.jsonl
    RESULT_VARIABLE jsonl_diff)
  if(NOT jsonl_diff EQUAL 0)
    message(FATAL_ERROR "${name}: resumed JSONL differs from reference")
  endif()

  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${res}.json ${ref}.json
    RESULT_VARIABLE summary_diff)
  if(NOT summary_diff EQUAL 0)
    message(FATAL_ERROR "${name}: resumed summary differs from reference")
  endif()
endfunction()

check_resume(serial 1 ${grid})
check_resume(pool 4 ${grid})
check_resume(hier 2 ${hier_grid})
