# Exit-code contract of trace_check: scripts (CI, fixtures) react to the
# code, so each failure class must map to its documented value —
#   0 ok / 2 usage / 3 missing file / 4 parse error / 5 invariant.
#
# Expects: -DTRACE_CHECK=<binary> -DWORK_DIR=<scratch dir>
file(MAKE_DIRECTORY "${WORK_DIR}")

function(expect_code code)
  execute_process(
    COMMAND "${TRACE_CHECK}" ${ARGN}
    RESULT_VARIABLE status OUTPUT_QUIET ERROR_QUIET)
  if(NOT status EQUAL ${code})
    message(FATAL_ERROR
      "trace_check ${ARGN}: expected exit ${code}, got ${status}")
  endif()
endfunction()

# Usage errors.
expect_code(2)
expect_code(2 metrics)
expect_code(2 bogus-mode ${WORK_DIR}/whatever.json)

# Missing file.
expect_code(3 metrics ${WORK_DIR}/does-not-exist.json)
expect_code(3 journal ${WORK_DIR}/does-not-exist.jsonl)

# Parse errors.
file(WRITE ${WORK_DIR}/garbage.json "this is not json")
expect_code(4 metrics ${WORK_DIR}/garbage.json)
expect_code(4 trace ${WORK_DIR}/garbage.json)
file(WRITE ${WORK_DIR}/garbage.jsonl
  "{\"kind\":\"journal\",\"base_seed\":1,\"cells\":1,\"grid_digest\":\"0000000000000000\"}\nnot json\n{\"kind\":\"start\"}\n")
expect_code(4 journal ${WORK_DIR}/garbage.jsonl)

# Invariant violations: parses, wrong shape.
file(WRITE ${WORK_DIR}/empty_object.json "{}")
expect_code(5 metrics ${WORK_DIR}/empty_object.json)
expect_code(5 trace ${WORK_DIR}/empty_object.json)
expect_code(5 profile ${WORK_DIR}/empty_object.json)
file(WRITE ${WORK_DIR}/headerless.jsonl
  "{\"kind\":\"start\",\"run_id\":0,\"spec\":\"0000000000000000\",\"attempt\":0}\n")
expect_code(5 journal ${WORK_DIR}/headerless.jsonl)
file(WRITE ${WORK_DIR}/bad_kind.jsonl
  "{\"kind\":\"journal\",\"base_seed\":1,\"cells\":2,\"grid_digest\":\"0000000000000000\"}\n{\"kind\":\"nonsense\",\"run_id\":0,\"spec\":\"0000000000000000\"}\n")
expect_code(5 journal ${WORK_DIR}/bad_kind.jsonl)
file(WRITE ${WORK_DIR}/bad_run_id.jsonl
  "{\"kind\":\"journal\",\"base_seed\":1,\"cells\":2,\"grid_digest\":\"0000000000000000\"}\n{\"kind\":\"start\",\"run_id\":7,\"spec\":\"0000000000000000\",\"attempt\":0}\n")
expect_code(5 journal ${WORK_DIR}/bad_run_id.jsonl)

# A valid journal with a torn trailing line is OK (exit 0) — that is the
# crash-recovery contract, not a failure.
file(WRITE ${WORK_DIR}/torn.jsonl
  "{\"kind\":\"journal\",\"base_seed\":1,\"cells\":2,\"grid_digest\":\"0000000000000000\"}\n{\"kind\":\"start\",\"run_id\":0,\"spec\":\"0000000000000000\",\"attempt\":0}\n{\"kind\":\"do")
expect_code(0 journal ${WORK_DIR}/torn.jsonl)
