# Scenario-axis determinism: the same scenario sweep — one closed library
# scenario plus the streaming (arrival-block) one, crossed with an
# allocator axis — run with --jobs=1 and --jobs=4 must produce
# byte-identical JSONL records and summary JSON.  This extends the
# sweep-level determinism contract to the scenario front-end: scenario
# loading (the library cache), generator sampling and the open-factory
# path all sit inside the per-run derived RNG streams, so thread count
# must never perturb them.
#
# Expects: -DABG_SWEEP=<path> -DSCENARIOS_DIR=<repo scenarios/>
#          -DWORK_DIR=<scratch dir>
file(MAKE_DIRECTORY "${WORK_DIR}")

set(grid
  --scenario ${SCENARIOS_DIR}/explicit_tiny.json
  --scenario ${SCENARIOS_DIR}/open_poisson_mix.json
  --param scheduler=abg,a-greedy
  --param allocator=deq,hesrpt
  --reps=2 --seed=41 --quiet)

execute_process(
  COMMAND "${ABG_SWEEP}" ${grid} --jobs=1
          --jsonl=${WORK_DIR}/serial.jsonl --summary=${WORK_DIR}/serial.json
  RESULT_VARIABLE serial_status
  OUTPUT_QUIET)
if(NOT serial_status EQUAL 0)
  message(FATAL_ERROR "scenario sweep --jobs=1 failed (${serial_status})")
endif()

execute_process(
  COMMAND "${ABG_SWEEP}" ${grid} --jobs=4
          --jsonl=${WORK_DIR}/pool.jsonl --summary=${WORK_DIR}/pool.json
  RESULT_VARIABLE pool_status
  OUTPUT_QUIET)
if(NOT pool_status EQUAL 0)
  message(FATAL_ERROR "scenario sweep --jobs=4 failed (${pool_status})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${WORK_DIR}/serial.jsonl" "${WORK_DIR}/pool.jsonl"
  RESULT_VARIABLE jsonl_diff)
if(NOT jsonl_diff EQUAL 0)
  message(FATAL_ERROR
          "scenario JSONL differs between --jobs=1 and --jobs=4")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${WORK_DIR}/serial.json" "${WORK_DIR}/pool.json"
  RESULT_VARIABLE summary_diff)
if(NOT summary_diff EQUAL 0)
  message(FATAL_ERROR
          "scenario summary differs between --jobs=1 and --jobs=4")
endif()
