#include "dag/topology.hpp"

#include <algorithm>
#include <stdexcept>

namespace abg::dag {

std::size_t DagStructure::edge_count() const {
  std::size_t edges = 0;
  for (const auto& c : children) {
    edges += c.size();
  }
  return edges;
}

std::shared_ptr<const Topology> build_topology(DagStructure structure) {
  const std::size_t n = structure.node_count();
  auto topo = std::make_shared<Topology>();
  topo->level.assign(n, 0);
  topo->initial_parents.assign(n, 0);

  for (std::size_t i = 0; i < n; ++i) {
    for (const NodeId child : structure.children[i]) {
      if (child >= n) {
        throw std::invalid_argument("Topology: edge to out-of-range node id");
      }
      if (child == i) {
        throw std::invalid_argument("Topology: self-loop");
      }
      ++topo->initial_parents[child];
    }
  }

  // Kahn's algorithm; assigns level(v) = 1 + max over parents.
  std::vector<std::uint32_t> pending = topo->initial_parents;
  std::vector<NodeId> queue;
  queue.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (pending[i] == 0) {
      queue.push_back(static_cast<NodeId>(i));
    }
  }
  std::size_t processed = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    ++processed;
    for (const NodeId v : structure.children[u]) {
      topo->level[v] = std::max(topo->level[v], topo->level[u] + 1);
      if (--pending[v] == 0) {
        queue.push_back(v);
      }
    }
  }
  if (processed != n) {
    throw std::invalid_argument("Topology: dependency graph contains a cycle");
  }

  std::uint32_t max_level = 0;
  for (std::size_t i = 0; i < n; ++i) {
    max_level = std::max(max_level, topo->level[i]);
  }
  topo->level_size.assign(n > 0 ? max_level + 1 : 0, 0);
  for (std::size_t i = 0; i < n; ++i) {
    ++topo->level_size[topo->level[i]];
  }
  topo->critical_path = n > 0 ? static_cast<Steps>(max_level) + 1 : 0;
  topo->structure = std::move(structure);
  return topo;
}

}  // namespace abg::dag
