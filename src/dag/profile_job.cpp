#include "dag/profile_job.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace abg::dag {

ProfileJob::ProfileJob(std::vector<TaskCount> level_widths) {
  for (const TaskCount w : level_widths) {
    if (w < 1) {
      throw std::invalid_argument("ProfileJob: level width must be >= 1");
    }
  }
  total_work_ =
      std::accumulate(level_widths.begin(), level_widths.end(), TaskCount{0});
  widths_ = std::make_shared<const std::vector<TaskCount>>(
      std::move(level_widths));
  remaining_in_level_ = widths_->empty() ? 0 : (*widths_)[0];
}

bool ProfileJob::finished() const { return level_ >= widths_->size(); }

TaskCount ProfileJob::step(int procs, PickOrder /*order*/) {
  if (procs < 0) {
    throw std::invalid_argument("ProfileJob::step: negative processor count");
  }
  if (finished() || procs == 0) {
    return 0;
  }
  const TaskCount done =
      std::min<TaskCount>(procs, remaining_in_level_);
  remaining_in_level_ -= done;
  completed_ += done;
  if (remaining_in_level_ == 0) {
    ++level_;
    if (!finished()) {
      remaining_in_level_ = (*widths_)[level_];
    }
  }
  return done;
}

QuantumExecution ProfileJob::run_quantum(int procs, Steps budget,
                                         PickOrder /*order*/) {
  if (procs < 0 || budget < 0) {
    throw std::invalid_argument(
        "ProfileJob::run_quantum: negative procs or budget");
  }
  QuantumExecution out;
  const double cpl_before = level_progress();
  if (procs == 0) {
    // No processors: the quantum elapses with no progress.
    out.steps = finished() ? 0 : budget;
    out.idle_steps = out.steps;
    out.finished = finished();
    out.cpl = 0.0;
    return out;
  }
  Steps left = budget;
  while (left > 0 && !finished()) {
    // Steps needed to drain the current level at `procs` tasks per step.
    // The barrier means the final (possibly partial) step of a level cannot
    // spill into the next level.
    const Steps need = static_cast<Steps>(
        (remaining_in_level_ + procs - 1) / procs);
    if (need <= left) {
      out.work += remaining_in_level_;
      completed_ += remaining_in_level_;
      remaining_in_level_ = 0;
      left -= need;
      out.steps += need;
      ++level_;
      if (!finished()) {
        remaining_in_level_ = (*widths_)[level_];
      }
    } else {
      const TaskCount done = static_cast<TaskCount>(left) * procs;
      // done < remaining_in_level_ here, since need > left.
      remaining_in_level_ -= done;
      completed_ += done;
      out.work += done;
      out.steps += left;
      left = 0;
    }
  }
  out.cpl = level_progress() - cpl_before;
  out.finished = finished();
  return out;
}

Steps ProfileJob::critical_path() const {
  return static_cast<Steps>(widths_->size());
}

double ProfileJob::level_progress() const {
  if (finished()) {
    return static_cast<double>(widths_->size());
  }
  const double frac =
      1.0 - static_cast<double>(remaining_in_level_) /
                static_cast<double>((*widths_)[level_]);
  return static_cast<double>(level_) + frac;
}

TaskCount ProfileJob::ready_count() const {
  return finished() ? 0 : remaining_in_level_;
}

std::unique_ptr<Job> ProfileJob::fresh_clone() const {
  auto clone = std::unique_ptr<ProfileJob>(new ProfileJob(*this));
  clone->level_ = 0;
  clone->completed_ = 0;
  clone->remaining_in_level_ = widths_->empty() ? 0 : (*widths_)[0];
  return clone;
}

TaskCount ProfileJob::width_at(std::size_t level) const {
  if (level >= widths_->size()) {
    throw std::invalid_argument("ProfileJob::width_at: level out of range");
  }
  return (*widths_)[level];
}

}  // namespace abg::dag
