#include "dag/job.hpp"

#include <stdexcept>

namespace abg::dag {

QuantumExecution Job::run_quantum(int procs, Steps budget, PickOrder order) {
  if (procs < 0 || budget < 0) {
    throw std::invalid_argument("Job::run_quantum: negative procs or budget");
  }
  QuantumExecution out;
  const double cpl_before = level_progress();
  for (Steps s = 0; s < budget; ++s) {
    if (finished()) {
      break;
    }
    const TaskCount done = step(procs, order);
    ++out.steps;
    out.work += done;
    if (done == 0) {
      ++out.idle_steps;
    }
  }
  out.cpl = level_progress() - cpl_before;
  out.finished = finished();
  return out;
}

}  // namespace abg::dag
