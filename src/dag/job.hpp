// Malleable-job abstraction.
//
// Following the paper (and Agrawal et al., PPoPP'06), a malleable job is a
// dynamically unfolding DAG of unit-size tasks.  A task scheduler executes
// the job one unit time step at a time with however many processors the OS
// allotted for the current scheduling quantum; on each step it may run up to
// `procs` ready tasks.
//
// Two measurements drive the feedback algorithms:
//   * completed work        — T1(q), tasks finished in the quantum, and
//   * fractional level progress — T∞(q), the number of DAG levels advanced,
//     where a partially completed level contributes completed/total
//     (Figure 2 of the paper: 0.8 + 1 + 0.6 = 2.4).
// Jobs therefore maintain a running `level_progress()` counter; the quantum
// engine differences it across quantum boundaries.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace abg::dag {

/// Count of unit tasks or processor cycles.
using TaskCount = std::int64_t;

/// Unit time steps.
using Steps = std::int64_t;

/// Order in which an execution policy picks ready tasks within a step.
enum class PickOrder {
  /// Any ready task; we use arrival (FIFO) order.  This is the plain greedy
  /// scheduler that A-Greedy builds on.
  kFifo,
  /// Lowest-level-first (breadth-first).  This is B-Greedy's order; it
  /// guarantees no task at level l completes later than any task at
  /// level l+1, which makes the per-quantum parallelism measurement exact.
  kBreadthFirst,
};

/// Outcome of executing (up to) one scheduling quantum of a job.
struct QuantumExecution {
  /// Tasks completed during the quantum: the quantum work T1(q).
  TaskCount work = 0;
  /// Fractional levels advanced during the quantum: the quantum
  /// critical-path length T∞(q).
  double cpl = 0.0;
  /// Unit steps consumed; equals the requested step budget unless the job
  /// finished early.
  Steps steps = 0;
  /// Steps on which no task executed (allotment of zero, or job drained).
  Steps idle_steps = 0;
  /// True when the job's last task completed during this quantum.
  bool finished = false;
};

/// Read-only view of a job's remaining phase structure, exposed by jobs
/// whose execution is a pure function of (level widths, position): level
/// `level` has `remaining_in_level` tasks left, and every later level
/// `l > level` has its full `(*widths)[l]` tasks left.  A null `widths`
/// means the job has no closed form and engines must run it stepwise.
/// The skip-ahead evaluator (sim/quantum_eval.hpp) consumes this view to
/// compute whole-quantum outcomes without mutating the job.
struct PhaseView {
  const std::vector<TaskCount>* widths = nullptr;
  std::size_t level = 0;
  TaskCount remaining_in_level = 0;
};

/// A malleable job: a DAG of unit tasks executed step-by-step.
class Job {
 public:
  virtual ~Job() = default;

  /// True when every task has been executed.
  virtual bool finished() const = 0;

  /// Executes one unit time step with at most `procs` processors, picking
  /// ready tasks in the given order.  Tasks completed in this step make
  /// their children ready only from the next step onward.  Returns the
  /// number of tasks executed.  Requires procs >= 0.
  virtual TaskCount step(int procs, PickOrder order) = 0;

  /// Executes up to `budget` unit steps with a fixed allotment `procs`,
  /// stopping early if the job finishes.  The default implementation loops
  /// over step(); subclasses may provide a closed-form fast path.
  virtual QuantumExecution run_quantum(int procs, Steps budget,
                                       PickOrder order);

  /// Total work T1 of the job (number of tasks in the whole DAG).
  virtual TaskCount total_work() const = 0;

  /// Critical-path length T∞ (number of tasks on the longest chain).
  virtual Steps critical_path() const = 0;

  /// Tasks executed so far.
  virtual TaskCount completed_work() const = 0;

  /// Running fractional-level counter: sum over levels of the fraction of
  /// that level already completed.  Monotone from 0 to T∞.
  virtual double level_progress() const = 0;

  /// Number of currently ready (executable) tasks.
  virtual TaskCount ready_count() const = 0;

  /// The job's remaining phase structure, when it admits a closed form.
  /// The default — a null view — opts out; engines then advance the job
  /// stepwise.  The returned pointer must stay valid until the job is next
  /// mutated.
  virtual PhaseView phase_view() const { return {}; }

  /// Deep copy in the *initial* (unexecuted) state, regardless of how much
  /// of this instance has already run.  Used to replay the identical job
  /// under different schedulers.
  virtual std::unique_ptr<Job> fresh_clone() const = 0;
};

}  // namespace abg::dag
