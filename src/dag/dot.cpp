#include "dag/dot.hpp"

#include <sstream>

namespace abg::dag {

std::string to_dot(const DagStructure& structure, const DotOptions& options) {
  const auto topo = build_topology(structure);
  std::ostringstream out;
  out << "digraph " << options.name << " {\n";
  out << "  rankdir=TB;\n  node [shape=circle];\n";

  const std::size_t n = topo->structure.node_count();
  if (options.label_levels) {
    for (std::size_t i = 0; i < n; ++i) {
      out << "  t" << i << " [label=\"" << i << " (level "
          << topo->level[i] << ")\"];\n";
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      out << "  t" << i << " [label=\"" << i << "\"];\n";
    }
  }

  if (options.rank_by_level && !topo->level_size.empty()) {
    for (std::size_t l = 0; l < topo->level_size.size(); ++l) {
      out << "  { rank=same;";
      for (std::size_t i = 0; i < n; ++i) {
        if (topo->level[i] == l) {
          out << " t" << i << ";";
        }
      }
      out << " }\n";
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    for (const NodeId child : topo->structure.children[i]) {
      out << "  t" << i << " -> t" << child << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace abg::dag
