#include "dag/characteristics.hpp"

#include <algorithm>

#include "dag/profile_job.hpp"

namespace abg::dag {

JobCharacteristics characteristics_of(const Job& job) {
  JobCharacteristics c;
  c.work = job.total_work();
  c.critical_path = job.critical_path();
  c.average_parallelism =
      c.critical_path > 0
          ? static_cast<double>(c.work) / static_cast<double>(c.critical_path)
          : 0.0;
  if (const auto* profile = dynamic_cast<const ProfileJob*>(&job)) {
    for (const TaskCount w : profile->widths()) {
      c.max_level_width = std::max(c.max_level_width, w);
    }
  } else if (const auto* dagjob = dynamic_cast<const DagJob*>(&job)) {
    for (const TaskCount w : dagjob->level_sizes()) {
      c.max_level_width = std::max(c.max_level_width, w);
    }
  }
  return c;
}

std::vector<TaskCount> level_histogram(const DagStructure& structure) {
  // DagJob's constructor validates and computes levels; reuse it.
  const DagJob job{structure};
  return job.level_sizes();
}

}  // namespace abg::dag
