// Explicit-DAG malleable job.
//
// DagJob executes an arbitrary directed acyclic graph of unit tasks.  It is
// the fully general job model: any dependency structure, any parallelism
// profile.  (Fork-join data-parallel jobs — the paper's workload — have a
// much faster closed-form representation in ProfileJob; a property test
// checks the two agree on fork-join DAGs.)
//
// The level of a task is the length of the longest chain from any source to
// it (sources at level 0); the paper's critical-path length T∞ is the number
// of tasks on the longest chain, i.e. max level + 1.  Ready tasks are kept
// both in FIFO arrival order and bucketed by level so either pick order runs
// in O(1) amortized per executed task.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "dag/job.hpp"
#include "dag/topology.hpp"

namespace abg::dag {

/// A malleable job over an explicit DAG.
class DagJob final : public Job {
 public:
  /// Validates the structure (in-range ids, acyclic) and precomputes the
  /// level of every task.  Throws std::invalid_argument on a cyclic or
  /// malformed structure.
  explicit DagJob(DagStructure structure);

  bool finished() const override { return completed_ == total_work(); }
  TaskCount step(int procs, PickOrder order) override;
  TaskCount total_work() const override;
  Steps critical_path() const override;
  TaskCount completed_work() const override { return completed_; }
  double level_progress() const override { return level_progress_; }
  TaskCount ready_count() const override { return ready_; }
  std::unique_ptr<Job> fresh_clone() const override;

  /// Level (longest chain from a source, 0-based) of a task.
  std::uint32_t node_level(NodeId id) const;

  /// Number of tasks at each level.
  const std::vector<TaskCount>& level_sizes() const;

  /// When enabled, records the 1-based step index at which each task
  /// completes (for schedule-order invariant tests).  Must be called before
  /// the first step.
  void enable_completion_recording();

  /// Completion step of a task, if recording was enabled and the task has
  /// executed.
  std::optional<Steps> completion_step(NodeId id) const;

  /// The shared immutable topology (levels, level sizes, structure).
  const Topology& topology() const { return *topo_; }

 private:
  explicit DagJob(std::shared_ptr<const Topology> topo);
  void initialize_runtime_state();
  void enqueue_ready(NodeId id);
  /// Pops the next ready task in the given order, or nullopt when drained.
  std::optional<NodeId> pop_ready(PickOrder order);

  std::shared_ptr<const Topology> topo_;
  std::vector<std::uint32_t> pending_parents_;
  std::vector<bool> executed_;
  std::deque<NodeId> fifo_;
  std::vector<std::vector<NodeId>> buckets_;
  std::size_t min_bucket_ = 0;
  TaskCount ready_ = 0;
  TaskCount completed_ = 0;
  double level_progress_ = 0.0;
  Steps current_step_ = 0;
  std::vector<Steps> completion_step_;  // empty unless recording enabled
  std::vector<NodeId> selected_;        // per-step scratch buffer
};

}  // namespace abg::dag
