// Graphviz (DOT) export of job DAGs.
//
// Visual inspection of the dependency structure is the quickest way to
// understand why a scheduler measured the parallelism it did; to_dot
// renders any DagStructure with tasks ranked by level, optionally
// annotated with per-level widths.
#pragma once

#include <string>

#include "dag/topology.hpp"

namespace abg::dag {

/// Options for DOT rendering.
struct DotOptions {
  /// Graph name (must be a valid DOT identifier).
  std::string name = "job";
  /// Place tasks of equal level on the same rank (horizontal row).
  bool rank_by_level = true;
  /// Label each task with "id (level l)" instead of just the id.
  bool label_levels = false;
};

/// Renders the DAG as a DOT digraph.  Validates the structure (throws
/// std::invalid_argument on cycles / bad ids).
std::string to_dot(const DagStructure& structure,
                   const DotOptions& options = {});

}  // namespace abg::dag
