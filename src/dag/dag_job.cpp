#include "dag/dag_job.hpp"

#include <algorithm>
#include <stdexcept>

#include "dag/topology.hpp"

namespace abg::dag {

DagJob::DagJob(DagStructure structure)
    : DagJob(build_topology(std::move(structure))) {}

DagJob::DagJob(std::shared_ptr<const Topology> topo) : topo_(std::move(topo)) {
  initialize_runtime_state();
}

void DagJob::initialize_runtime_state() {
  const std::size_t n = topo_->structure.node_count();
  pending_parents_ = topo_->initial_parents;
  executed_.assign(n, false);
  fifo_.clear();
  buckets_.assign(topo_->level_size.size(), {});
  min_bucket_ = 0;
  ready_ = 0;
  completed_ = 0;
  level_progress_ = 0.0;
  current_step_ = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (pending_parents_[i] == 0) {
      enqueue_ready(static_cast<NodeId>(i));
    }
  }
}

void DagJob::enqueue_ready(NodeId id) {
  fifo_.push_back(id);
  const std::uint32_t lvl = topo_->level[id];
  buckets_[lvl].push_back(id);
  min_bucket_ = std::min<std::size_t>(min_bucket_, lvl);
  ++ready_;
}

std::optional<NodeId> DagJob::pop_ready(PickOrder order) {
  if (order == PickOrder::kFifo) {
    while (!fifo_.empty()) {
      const NodeId id = fifo_.front();
      fifo_.pop_front();
      if (!executed_[id]) {
        return id;
      }
    }
    return std::nullopt;
  }
  // Breadth-first: lowest non-empty level bucket.  Entries for tasks already
  // executed via the other structure are skipped lazily.
  while (min_bucket_ < buckets_.size()) {
    auto& bucket = buckets_[min_bucket_];
    while (!bucket.empty()) {
      const NodeId id = bucket.back();
      bucket.pop_back();
      if (!executed_[id]) {
        return id;
      }
    }
    ++min_bucket_;
  }
  return std::nullopt;
}

TaskCount DagJob::step(int procs, PickOrder order) {
  if (procs < 0) {
    throw std::invalid_argument("DagJob::step: negative processor count");
  }
  ++current_step_;
  selected_.clear();
  for (int p = 0; p < procs; ++p) {
    const auto id = pop_ready(order);
    if (!id.has_value()) {
      break;
    }
    selected_.push_back(*id);
    executed_[*id] = true;
    --ready_;
  }
  // Completions take effect at the end of the step: children become ready
  // only for subsequent steps.
  for (const NodeId id : selected_) {
    ++completed_;
    level_progress_ +=
        1.0 / static_cast<double>(topo_->level_size[topo_->level[id]]);
    if (!completion_step_.empty()) {
      completion_step_[id] = current_step_;
    }
    for (const NodeId child : topo_->structure.children[id]) {
      if (--pending_parents_[child] == 0) {
        enqueue_ready(child);
      }
    }
  }
  return static_cast<TaskCount>(selected_.size());
}

TaskCount DagJob::total_work() const {
  return static_cast<TaskCount>(topo_->structure.node_count());
}

Steps DagJob::critical_path() const { return topo_->critical_path; }

std::unique_ptr<Job> DagJob::fresh_clone() const {
  return std::unique_ptr<Job>(new DagJob(topo_));
}

std::uint32_t DagJob::node_level(NodeId id) const {
  if (id >= topo_->level.size()) {
    throw std::invalid_argument("DagJob::node_level: id out of range");
  }
  return topo_->level[id];
}

const std::vector<TaskCount>& DagJob::level_sizes() const {
  return topo_->level_size;
}

void DagJob::enable_completion_recording() {
  if (current_step_ != 0) {
    throw std::logic_error(
        "DagJob::enable_completion_recording: job already started");
  }
  completion_step_.assign(topo_->structure.node_count(), 0);
  if (completion_step_.empty()) {
    completion_step_.assign(1, 0);  // keep non-empty as the "enabled" marker
  }
}

std::optional<Steps> DagJob::completion_step(NodeId id) const {
  if (completion_step_.empty() || id >= executed_.size() || !executed_[id]) {
    return std::nullopt;
  }
  return completion_step_[id];
}

}  // namespace abg::dag
