// Intrinsic job characteristics.
//
// The paper's analysis is parameterised by three job-intrinsic quantities:
// work T1, critical-path length T∞, and (new in this paper) the transition
// factor C_L.  The first two are pure DAG properties computed here; the
// transition factor additionally depends on the quantum length and is
// computed in metrics/parallelism_stats.hpp from a realized A(q) series.
#pragma once

#include <vector>

#include "dag/dag_job.hpp"
#include "dag/job.hpp"

namespace abg::dag {

/// Static characteristics of a job's DAG.
struct JobCharacteristics {
  /// Total number of unit tasks, T1.
  TaskCount work = 0;
  /// Number of tasks on the longest dependency chain, T∞.
  Steps critical_path = 0;
  /// Average parallelism T1 / T∞ (0 for an empty job).
  double average_parallelism = 0.0;
  /// Widest level of the DAG: an upper bound on instantaneous parallelism.
  TaskCount max_level_width = 0;
};

/// Characteristics of any job in its initial state.
JobCharacteristics characteristics_of(const Job& job);

/// Number of tasks at each level of the structure (level = longest chain
/// from a source, 0-based).  Validates acyclicity.
std::vector<TaskCount> level_histogram(const DagStructure& structure);

}  // namespace abg::dag
