// Level-barrier (fork-join) malleable job.
//
// The paper's experimental workload is data-parallel jobs with fork-join
// structure: the DAG alternates serial and parallel phases, and every task
// at level l+1 depends (via the fork/join tasks) on the completion of all
// tasks at level l.  Such a job is fully described by its sequence of level
// widths.  ProfileJob exploits this: execution state is just (current level,
// tasks remaining in it), each unit step completes min(procs, remaining)
// tasks, and a whole scheduling quantum can be executed in closed form in
// O(levels spanned) instead of O(quantum length).  This is what makes the
// paper-scale experiments (5000 job sets, L = 1000) tractable.
//
// ProfileJob is behaviourally identical to a DagJob built over the
// equivalent barrier DAG (property-tested), for both pick orders: under a
// barrier every ready task is at the same level, so FIFO and breadth-first
// coincide.
#pragma once

#include <memory>
#include <vector>

#include "dag/job.hpp"

namespace abg::dag {

/// A malleable job defined by per-level task counts with barriers between
/// consecutive levels.
class ProfileJob final : public Job {
 public:
  /// Constructs from level widths.  Every width must be >= 1.  An empty
  /// profile is a zero-work job that is already finished.
  explicit ProfileJob(std::vector<TaskCount> level_widths);

  bool finished() const override;
  TaskCount step(int procs, PickOrder order) override;
  QuantumExecution run_quantum(int procs, Steps budget,
                               PickOrder order) override;
  TaskCount total_work() const override { return total_work_; }
  Steps critical_path() const override;
  TaskCount completed_work() const override { return completed_; }
  double level_progress() const override;
  TaskCount ready_count() const override;
  PhaseView phase_view() const override {
    return PhaseView{widths_.get(), level_, remaining_in_level_};
  }
  std::unique_ptr<Job> fresh_clone() const override;

  /// The level widths this job was built from.
  const std::vector<TaskCount>& widths() const { return *widths_; }

  /// Exact parallelism profile: width of the level that would execute at
  /// each step under `procs` processors is not well defined a priori, but
  /// the *instantaneous parallelism* (ready tasks with unlimited
  /// processors) at level l is simply widths()[l].
  TaskCount width_at(std::size_t level) const;

 private:
  std::shared_ptr<const std::vector<TaskCount>> widths_;
  TaskCount total_work_ = 0;
  std::size_t level_ = 0;          // current level index
  TaskCount remaining_in_level_ = 0;
  TaskCount completed_ = 0;
};

}  // namespace abg::dag
