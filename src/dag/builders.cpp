#include "dag/builders.hpp"

#include <stdexcept>
#include <utility>

namespace abg::dag::builders {

namespace {

void require_positive(TaskCount value, const char* what) {
  if (value < 1) {
    throw std::invalid_argument(std::string("builders: ") + what +
                                " must be >= 1");
  }
}

}  // namespace

DagStructure chain(TaskCount length) {
  require_positive(length, "chain length");
  DagStructure dag;
  dag.children.resize(static_cast<std::size_t>(length));
  for (TaskCount i = 0; i + 1 < length; ++i) {
    dag.children[static_cast<std::size_t>(i)].push_back(
        static_cast<NodeId>(i + 1));
  }
  return dag;
}

DagStructure diamond(TaskCount width) {
  require_positive(width, "diamond width");
  DagStructure dag;
  const std::size_t n = static_cast<std::size_t>(width) + 2;
  dag.children.resize(n);
  const NodeId sink = static_cast<NodeId>(n - 1);
  for (TaskCount i = 0; i < width; ++i) {
    const NodeId mid = static_cast<NodeId>(i + 1);
    dag.children[0].push_back(mid);
    dag.children[mid].push_back(sink);
  }
  return dag;
}

DagStructure barrier_profile(const std::vector<TaskCount>& widths) {
  DagStructure dag;
  std::size_t total = 0;
  for (const TaskCount w : widths) {
    require_positive(w, "profile level width");
    total += static_cast<std::size_t>(w);
  }
  dag.children.resize(total);
  std::size_t level_start = 0;
  for (std::size_t l = 0; l + 1 < widths.size(); ++l) {
    const std::size_t w = static_cast<std::size_t>(widths[l]);
    const std::size_t next_start = level_start + w;
    const std::size_t next_w = static_cast<std::size_t>(widths[l + 1]);
    for (std::size_t i = 0; i < w; ++i) {
      auto& edges = dag.children[level_start + i];
      edges.reserve(next_w);
      for (std::size_t j = 0; j < next_w; ++j) {
        edges.push_back(static_cast<NodeId>(next_start + j));
      }
    }
    level_start = next_start;
  }
  return dag;
}

DagStructure fork_join(const std::vector<PhaseSpec>& phases) {
  DagStructure dag;
  std::size_t total = 0;
  for (const PhaseSpec& p : phases) {
    require_positive(p.width, "phase width");
    if (p.length < 1) {
      throw std::invalid_argument("builders: phase length must be >= 1");
    }
    total += static_cast<std::size_t>(p.width) *
             static_cast<std::size_t>(p.length);
  }
  dag.children.resize(total);

  // `frontier` holds the tasks whose completion gates the next phase.
  std::vector<NodeId> frontier;
  std::size_t next_id = 0;
  for (const PhaseSpec& p : phases) {
    const std::size_t w = static_cast<std::size_t>(p.width);
    std::vector<NodeId> heads(w);
    std::vector<NodeId> tails(w);
    for (std::size_t b = 0; b < w; ++b) {
      // Build one branch: a chain of p.length tasks.
      NodeId prev = static_cast<NodeId>(next_id++);
      heads[b] = prev;
      for (Steps k = 1; k < p.length; ++k) {
        const NodeId cur = static_cast<NodeId>(next_id++);
        dag.children[prev].push_back(cur);
        prev = cur;
      }
      tails[b] = prev;
    }
    // Fork: every frontier task precedes every branch head.  (The frontier
    // is a single task except when the job starts with a parallel phase or
    // two parallel phases are adjacent, in which case this degenerates to a
    // barrier join-fork.)
    for (const NodeId f : frontier) {
      for (const NodeId h : heads) {
        dag.children[f].push_back(h);
      }
    }
    frontier = std::move(tails);
  }
  return dag;
}

DagStructure random_layered(util::Rng& rng, Steps levels, TaskCount max_width,
                            double edge_prob) {
  if (levels < 1) {
    throw std::invalid_argument("builders: levels must be >= 1");
  }
  require_positive(max_width, "max_width");
  std::vector<std::vector<NodeId>> layers(static_cast<std::size_t>(levels));
  std::size_t next_id = 0;
  for (auto& layer : layers) {
    const auto w = static_cast<std::size_t>(rng.uniform_int(1, max_width));
    layer.resize(w);
    for (auto& id : layer) {
      id = static_cast<NodeId>(next_id++);
    }
  }
  DagStructure dag;
  dag.children.resize(next_id);
  for (std::size_t l = 1; l < layers.size(); ++l) {
    const auto& parents = layers[l - 1];
    for (const NodeId child : layers[l]) {
      bool has_parent = false;
      for (const NodeId parent : parents) {
        if (rng.bernoulli(edge_prob)) {
          dag.children[parent].push_back(child);
          has_parent = true;
        }
      }
      if (!has_parent) {
        const auto pick = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(parents.size()) - 1));
        dag.children[parents[pick]].push_back(child);
      }
    }
  }
  return dag;
}

std::vector<TaskCount> profile_from_phases(
    const std::vector<PhaseSpec>& phases) {
  std::vector<TaskCount> widths;
  for (const PhaseSpec& p : phases) {
    require_positive(p.width, "phase width");
    if (p.length < 1) {
      throw std::invalid_argument("builders: phase length must be >= 1");
    }
    widths.insert(widths.end(), static_cast<std::size_t>(p.length), p.width);
  }
  return widths;
}

DagStructure out_tree(Steps depth, TaskCount fanout) {
  if (depth < 1) {
    throw std::invalid_argument("builders: tree depth must be >= 1");
  }
  require_positive(fanout, "tree fanout");
  DagStructure dag;
  // Level l has fanout^l nodes, ids assigned level by level.
  std::size_t level_start = 0;
  std::size_t level_size = 1;
  dag.children.resize(1);
  for (Steps l = 0; l + 1 < depth; ++l) {
    const std::size_t next_start = level_start + level_size;
    const std::size_t next_size =
        level_size * static_cast<std::size_t>(fanout);
    dag.children.resize(next_start + next_size);
    for (std::size_t i = 0; i < level_size; ++i) {
      auto& edges = dag.children[level_start + i];
      for (TaskCount f = 0; f < fanout; ++f) {
        edges.push_back(static_cast<NodeId>(
            next_start + i * static_cast<std::size_t>(fanout) +
            static_cast<std::size_t>(f)));
      }
    }
    level_start = next_start;
    level_size = next_size;
  }
  return dag;
}

DagStructure in_tree(Steps depth, TaskCount fanout) {
  // Reverse every edge of the out-tree.
  const DagStructure out = out_tree(depth, fanout);
  DagStructure dag;
  dag.children.resize(out.node_count());
  for (std::size_t parent = 0; parent < out.node_count(); ++parent) {
    for (const NodeId child : out.children[parent]) {
      dag.children[child].push_back(static_cast<NodeId>(parent));
    }
  }
  return dag;
}

DagStructure grid(Steps rows, Steps cols) {
  if (rows < 1 || cols < 1) {
    throw std::invalid_argument("builders: grid dimensions must be >= 1");
  }
  DagStructure dag;
  const auto r = static_cast<std::size_t>(rows);
  const auto c = static_cast<std::size_t>(cols);
  dag.children.resize(r * c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      const std::size_t id = i * c + j;
      if (i + 1 < r) {
        dag.children[id].push_back(static_cast<NodeId>(id + c));
      }
      if (j + 1 < c) {
        dag.children[id].push_back(static_cast<NodeId>(id + 1));
      }
    }
  }
  return dag;
}

namespace {

/// Appends a sub-DAG and returns its (entry, exit) node ids.  The sub-DAG
/// always has a unique entry and exit (series-parallel with explicit
/// fork/join tasks).
std::pair<NodeId, NodeId> build_sp(util::Rng& rng, int depth, int max_branch,
                                   DagStructure& dag) {
  auto new_node = [&dag]() {
    dag.children.emplace_back();
    return static_cast<NodeId>(dag.children.size() - 1);
  };
  if (depth <= 0) {
    const NodeId task = new_node();
    return {task, task};
  }
  const auto shape = rng.uniform_int(0, 2);
  if (shape == 0) {  // single task
    const NodeId task = new_node();
    return {task, task};
  }
  if (shape == 1) {  // series composition
    const auto [entry_a, exit_a] = build_sp(rng, depth - 1, max_branch, dag);
    const auto [entry_b, exit_b] = build_sp(rng, depth - 1, max_branch, dag);
    dag.children[exit_a].push_back(entry_b);
    return {entry_a, exit_b};
  }
  // Parallel composition between explicit fork and join tasks.
  const NodeId fork_task = new_node();
  const NodeId join_task = new_node();
  const auto branches = rng.uniform_int(2, max_branch);
  for (std::int64_t b = 0; b < branches; ++b) {
    const auto [entry, exit] = build_sp(rng, depth - 1, max_branch, dag);
    dag.children[fork_task].push_back(entry);
    dag.children[exit].push_back(join_task);
  }
  return {fork_task, join_task};
}

}  // namespace

DagStructure expand_weighted(const DagStructure& structure,
                             const std::vector<Steps>& durations) {
  if (durations.size() != structure.node_count()) {
    throw std::invalid_argument(
        "expand_weighted: one duration per task required");
  }
  std::size_t total = 0;
  for (const Steps d : durations) {
    if (d < 1) {
      throw std::invalid_argument("expand_weighted: duration must be >= 1");
    }
    total += static_cast<std::size_t>(d);
  }
  // First link (head) of each task's chain; the tail is head + dur - 1.
  std::vector<NodeId> head(structure.node_count());
  std::size_t next_id = 0;
  for (std::size_t i = 0; i < structure.node_count(); ++i) {
    head[i] = static_cast<NodeId>(next_id);
    next_id += static_cast<std::size_t>(durations[i]);
  }
  DagStructure out;
  out.children.resize(total);
  for (std::size_t i = 0; i < structure.node_count(); ++i) {
    const NodeId first = head[i];
    const auto tail =
        static_cast<NodeId>(first + static_cast<NodeId>(durations[i]) - 1);
    for (NodeId link = first; link < tail; ++link) {
      out.children[link].push_back(link + 1);
    }
    for (const NodeId child : structure.children[i]) {
      out.children[tail].push_back(head[child]);
    }
  }
  return out;
}

DagStructure series_parallel(util::Rng& rng, int depth, int max_branch) {
  if (depth < 0) {
    throw std::invalid_argument("builders: series-parallel depth must be >= 0");
  }
  if (max_branch < 2) {
    throw std::invalid_argument("builders: max_branch must be >= 2");
  }
  DagStructure dag;
  build_sp(rng, depth, max_branch, dag);
  return dag;
}

}  // namespace abg::dag::builders
