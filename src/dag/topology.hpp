// Validated, immutable DAG topology.
//
// Shared by every executor over an explicit DAG (the centralized DagJob
// and the distributed WorkStealingJob): the dependency structure plus the
// derived per-task levels (longest chain from a source, 0-based), level
// sizes and initial parent counts.  Built once per DAG and shared between
// job clones via shared_ptr.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dag/job.hpp"

namespace abg::dag {

/// Task identifier within one DAG: 0 .. node_count-1.
using NodeId = std::uint32_t;

/// Pure dependency structure of a job's DAG.
struct DagStructure {
  /// children[i] lists the tasks that depend directly on task i.
  std::vector<std::vector<NodeId>> children;

  /// Number of tasks.
  std::size_t node_count() const { return children.size(); }

  /// Total number of dependency edges.
  std::size_t edge_count() const;
};

/// Immutable per-DAG derived data.
struct Topology {
  DagStructure structure;
  /// Level of each task: longest chain from a source, 0-based.
  std::vector<std::uint32_t> level;
  /// Number of tasks at each level.
  std::vector<TaskCount> level_size;
  /// Number of direct parents of each task.
  std::vector<std::uint32_t> initial_parents;
  /// Number of tasks on the longest chain (max level + 1; 0 when empty).
  Steps critical_path = 0;
};

/// Validates the DAG (in-range ids, no self-loops, acyclic) and computes
/// the derived data.  Throws std::invalid_argument on a malformed or
/// cyclic structure.
std::shared_ptr<const Topology> build_topology(DagStructure structure);

}  // namespace abg::dag
