// Constructors for the DAG shapes used throughout tests, examples and
// experiments.
//
// The paper's workload is fork-join data-parallel jobs; we provide both the
// exact branch-chain fork-join DAG (serial task forks to `width` parallel
// branch chains that join back) and the level-barrier approximation used by
// ProfileJob, plus generic shapes (chains, diamonds, random layered DAGs)
// for exercising the scheduler on non-fork-join dependency structures.
#pragma once

#include <vector>

#include "dag/dag_job.hpp"
#include "dag/job.hpp"
#include "util/rng.hpp"

namespace abg::dag::builders {

/// One phase of a fork-join job: `length` consecutive levels of `width`
/// parallel tasks.  width == 1 is a serial phase.
struct PhaseSpec {
  TaskCount width = 1;
  Steps length = 1;
};

/// A linear chain of `length` tasks (T1 = T∞ = length).
DagStructure chain(TaskCount length);

/// Source task, `width` independent tasks, sink task (T∞ = 3).
DagStructure diamond(TaskCount width);

/// Complete-bipartite barriers between consecutive levels of the given
/// widths: every task of level l precedes every task of level l+1.  This is
/// the explicit-DAG equivalent of ProfileJob (used to property-test the
/// closed-form execution).
DagStructure barrier_profile(const std::vector<TaskCount>& widths);

/// Branch-chain fork-join DAG: for each parallel phase of width w and
/// length len, w independent chains of len tasks forked from the preceding
/// serial task and joined into the following one.  Serial phases are chains.
DagStructure fork_join(const std::vector<PhaseSpec>& phases);

/// Random layered DAG: `levels` layers whose sizes are drawn uniformly from
/// [1, max_width]; each non-source task takes each previous-layer task as a
/// parent with probability `edge_prob` and always has at least one parent,
/// so the layer index is exactly the task's level.
DagStructure random_layered(util::Rng& rng, Steps levels, TaskCount max_width,
                            double edge_prob);

/// The level-width sequence corresponding to a phase list, for building the
/// equivalent ProfileJob.
std::vector<TaskCount> profile_from_phases(const std::vector<PhaseSpec>& phases);

/// Complete out-tree (spawn tree): a root whose descendants branch with
/// the given fanout for `depth` levels.  T∞ = depth; parallelism grows
/// geometrically toward the leaves.  Requires depth >= 1 and fanout >= 1.
DagStructure out_tree(Steps depth, TaskCount fanout);

/// Complete in-tree (reduction): fanout^(depth-1) leaves reduced pairwise
/// (fanout-wise) to a single root.  The mirror image of out_tree.
DagStructure in_tree(Steps depth, TaskCount fanout);

/// Wavefront grid (stencil): task (i, j) precedes (i+1, j) and (i, j+1).
/// T1 = rows*cols, T∞ = rows + cols − 1; the parallelism profile is the
/// anti-diagonal width (a ramp up and back down).  Requires rows, cols
/// >= 1.
DagStructure grid(Steps rows, Steps cols);

/// Random series-parallel DAG built by recursive composition: a unit task,
/// a series of two sub-DAGs, or a parallel composition of 2..max_branch
/// sub-DAGs between fork and join tasks.  `depth` bounds the recursion.
DagStructure series_parallel(util::Rng& rng, int depth, int max_branch);

/// Expands a DAG of *weighted* tasks into the equivalent unit-task DAG:
/// task i becomes a chain of durations[i] unit tasks, with every
/// dependency edge attached from the last link of the producer to the
/// first link of the consumer.  One processor-step then equals one unit of
/// a task's work, progress survives preemption, and two processors can
/// never work on the same task simultaneously — so all of the library's
/// unit-task machinery (measurement, bounds, schedulers) applies to
/// variable-duration workloads unchanged.  Requires durations[i] >= 1 and
/// durations.size() == structure.node_count().
DagStructure expand_weighted(const DagStructure& structure,
                             const std::vector<Steps>& durations);

}  // namespace abg::dag::builders
