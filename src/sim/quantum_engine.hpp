// Single-job quantum engine.
//
// Drives one malleable job through the two-level feedback loop against an
// allocator: request → allotment → execute quantum → measure → next
// request.  This is the machinery behind the paper's first simulation set
// (Figures 1, 4 and 5) and the trim-analysis experiments; the
// multiprogrammed simulator (sim/simulator.hpp) generalizes it to job sets.
#pragma once

#include "alloc/allocator.hpp"
#include "dag/job.hpp"
#include "fault/fault_log.hpp"
#include "fault/fault_plan.hpp"
#include "obs/obs_config.hpp"
#include "sched/execution_policy.hpp"
#include "sched/quantum_length.hpp"
#include "sched/request_policy.hpp"
#include "sim/trace.hpp"

namespace abg::sim {

/// Parameters of a single-job run.
struct SingleJobConfig {
  /// Machine size P.
  int processors = 128;
  /// Quantum length L in unit steps.
  dag::Steps quantum_length = 1000;
  /// Safety bound on total steps; the engine throws std::runtime_error if
  /// the job has not finished by then (0 = derive a generous bound from the
  /// job's work and critical path).
  dag::Steps max_steps = 0;
  /// Reallocation overhead: when the allotment changes between quanta the
  /// job loses `cost * |Δa|` steps (capped at the quantum) to processor
  /// migration before useful work resumes — the overhead the paper's
  /// simulations ignore but its introduction names as the cost of request
  /// instability.  The job's initial allocation is also charged (a job
  /// must be placed).  0 reproduces the paper's overhead-free setting.
  dag::Steps reallocation_cost_per_proc = 0;
  /// Optional fault plan (see fault/fault_plan.hpp); job index 0 is this
  /// job.  Null or empty is a strict no-op.  Under restart-from-scratch
  /// recovery the engine continues on an internal fresh clone and the
  /// caller's job object is left partially executed.  The plan must
  /// outlive the call.
  const fault::FaultPlan* faults = nullptr;
  /// When set, the run's fault log (crashes, lost work, capacity history)
  /// is copied here — the JobTrace return value has nowhere to carry it.
  fault::FaultLog* fault_log_out = nullptr;
  /// Observability hooks (see obs/obs_config.hpp); the default publishes
  /// nothing and takes the exact pre-observability code path.
  obs::ObsConfig obs = {};
};

/// Steps lost to processor migration when the allotment changes from
/// `previous_allotment` to `allotment` at cost `cost_per_proc` steps per
/// processor moved, capped at the quantum length.
dag::Steps reallocation_penalty(int previous_allotment, int allotment,
                                dag::Steps cost_per_proc,
                                dag::Steps quantum_length);

/// Runs `job` to completion under the given policies and allocator and
/// returns its trace.  The request policy is reset before the run; the
/// allocator is used as-is (reset it yourself to replay a profile).
JobTrace run_single_job(dag::Job& job, const sched::ExecutionPolicy& execution,
                        sched::RequestPolicy& request,
                        alloc::Allocator& allocator,
                        const SingleJobConfig& config);

/// As above, but with a quantum-length policy choosing each quantum's
/// length (Section 9's dynamic-quantum extension; the base overload is
/// equivalent to FixedQuantumLength(config.quantum_length)).  The
/// quantum-length policy is reset before the run; config.quantum_length is
/// ignored in favor of the policy.
JobTrace run_single_job(dag::Job& job, const sched::ExecutionPolicy& execution,
                        sched::RequestPolicy& request,
                        sched::QuantumLengthPolicy& quantum_length,
                        alloc::Allocator& allocator,
                        const SingleJobConfig& config);

}  // namespace abg::sim
