// Skip-ahead quantum evaluation.
//
// For phase-structured jobs (dag::PhaseView: level widths + position) the
// outcome of running a whole quantum at a fixed allotment is closed-form:
// each level of width w takes ceil(w / a) steps behind its barrier, so
// work, span, phases crossed, held/idle cycles and the completion step
// follow from a walk over the levels the quantum spans — O(phase
// transitions), not O(steps).  This module is that arithmetic, factored
// out of the engines:
//
//   * evaluate_quantum — the full quantum outcome, non-mutating.  The
//     differential tests pin it step-for-step against the stepwise
//     executor; engines and tools can use it to predict a quantum without
//     touching the job.
//   * steps_to_finish — exact steps until completion at a fixed
//     allotment, capped (the async engine's stride planner uses this to
//     find the next completion event without running anything).
//   * supports_skip_ahead — whether a job exposes a phase view at all.
//   * run_allotted_quantum — the one per-quantum execution block shared
//     by the synchronous engine, the sharded group loops and the open
//     streaming driver (reallocation penalty, execution-policy dispatch,
//     availability and trace stamping).  Centralizing it keeps the three
//     call sites byte-identical by construction.
//
// Engines fall back to stepwise execution whenever closed form does not
// apply: jobs without a phase view (explicit DAGs), fault windows (crash /
// capacity events need sub-quantum resolution), and — in the async
// engine — any step where an event (boundary, completion, admission,
// repartition) lands inside the planned stride.
#pragma once

#include <cstdint>

#include "dag/job.hpp"
#include "sched/execution_policy.hpp"
#include "sched/quantum_stats.hpp"

namespace abg::sim::quantum_eval {

/// Closed-form outcome of one quantum at a fixed allotment.
struct PhaseOutcome {
  /// Tasks completed: the quantum work T1(q).
  dag::TaskCount work = 0;
  /// Fractional levels advanced: the quantum critical-path T∞(q).
  double cpl = 0.0;
  /// Unit steps consumed (== budget unless the job finishes early).
  dag::Steps steps_used = 0;
  /// Steps on which no task executed (allotment of zero).
  dag::Steps idle_steps = 0;
  /// Level barriers fully crossed during the quantum.
  std::int64_t phases_crossed = 0;
  /// Processor cycles held: allotment · steps_used.
  dag::TaskCount held_cycles = 0;
  /// Held cycles that executed no task (the quantum's exact waste).
  dag::TaskCount idle_cycles = 0;
  /// True when the job's last task completes within the budget.
  bool finished = false;
  /// Position after the quantum: current level and the partial-phase
  /// remainder (tasks left in it).  end_level == widths size when
  /// finished.
  std::size_t end_level = 0;
  dag::TaskCount end_remaining = 0;
};

/// Computes the outcome of running up to `budget` steps at allotment
/// `procs` from the position described by `view`, without mutating
/// anything.  Mirrors the stepwise executor exactly (property-tested):
/// barriers mean a level's final partial step cannot spill into the next
/// level, and a zero allotment idles the whole budget.  Requires a
/// non-null view, procs >= 0 and budget >= 0.
PhaseOutcome evaluate_quantum(const dag::PhaseView& view, int procs,
                              dag::Steps budget);

/// Exact steps until the job finishes at a fixed allotment, or `cap + 1`
/// when it cannot finish within `cap` steps (including procs == 0 with
/// work remaining).  Requires a non-null view, procs >= 0 and cap >= 0.
dag::Steps steps_to_finish(const dag::PhaseView& view, int procs,
                           dag::Steps cap);

/// True when the job exposes a phase structure the evaluator understands.
bool supports_skip_ahead(const dag::Job& job);

/// Runs one allotted quantum of `job` through the execution policy and
/// stamps the stats the way every whole-quantum engine records them: a
/// reallocation penalty consumes quantum steps up front (a penalty >=
/// length voids the quantum entirely), availability is the allotment plus
/// the machine's leftover, and the stats carry the boundary's start step.
sched::QuantumStats run_allotted_quantum(dag::Job& job,
                                         const sched::ExecutionPolicy& execution,
                                         std::int64_t index, int desire,
                                         int allotment, dag::Steps length,
                                         dag::Steps penalty, int leftover,
                                         dag::Steps start_step);

}  // namespace abg::sim::quantum_eval
