// Multiprogrammed two-level scheduling simulator.
//
// Simulates a machine with P processors and global scheduling quanta of
// length L shared by a set of malleable jobs (the paper's second simulation
// set, Figure 6).  At every quantum boundary the allocator divides the
// machine among the requests of the active (released, unfinished) jobs;
// each job then executes the quantum with its own task scheduler.  Jobs
// released mid-quantum become active at the next boundary.  Allotments are
// fixed within a quantum: a job finishing early wastes the remainder of its
// allotted cycles, exactly as in the paper's accounting.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "alloc/allocator.hpp"
#include "dag/job.hpp"
#include "fault/fault_log.hpp"
#include "fault/fault_plan.hpp"
#include "obs/obs_config.hpp"
#include "sched/execution_policy.hpp"
#include "sched/quantum_length.hpp"
#include "sched/request_policy.hpp"
#include "sim/trace.hpp"
#include "util/cancel.hpp"

namespace abg::obs {
class Profiler;
}  // namespace abg::obs

namespace abg::sim {

/// Which boundary model a job-set run uses.  Both are thin policies over
/// the unified core in sim/engine_core.hpp.
enum class EngineKind {
  /// Global synchronous quantum boundaries shared by all jobs
  /// (simulate_job_set — the setup the paper's Figure 6 implies).
  kSync,
  /// Per-job quantum boundaries with repartition on every event
  /// (simulate_job_set_async).
  kAsync,
};

/// "sync" / "async".
std::string_view to_string(EngineKind kind);

/// Parses "sync" / "async"; throws std::invalid_argument otherwise.
EngineKind engine_kind_from_name(std::string_view name);

/// One job submitted to the simulator.
struct JobSubmission {
  std::unique_ptr<dag::Job> job;
  /// Release (arrival) step; 0 for batched release.
  dag::Steps release_step = 0;
  /// Optional label carried through to the result.
  std::string name;
};

/// Hierarchical allocation parameters (see hier/desire_aggregator.hpp and
/// sim/sharded_engine.hpp).  The default — 0 groups — selects the flat
/// engines and is a strict no-op.
struct HierConfig {
  /// Number of allocation groups; 0 = flat path, >= 1 = sharded engine
  /// (jobs dealt to groups by submission index mod groups).
  int groups = 0;
  /// Group/root allocator name ("deq" | "rr"); empty clones the run's
  /// machine allocator per group instead, which is what makes the 1-group
  /// case byte-identical to the flat path under the same allocator.
  std::string allocator;
  /// Rebalance epoch in quanta: the root re-splits the machine over the
  /// groups' aggregated desires every this many quanta (>= 1).  1 re-splits
  /// at every global boundary (tightest coupling, most synchronization);
  /// larger epochs let group loops run further between barriers.
  dag::Steps rebalance_quanta = 1;
  /// Worker threads for the group loops; <= 0 selects hardware
  /// concurrency.  Results are byte-identical at any thread count.
  int threads = 1;
  /// Optional self-profiling: accumulates span "hier.rebalance"
  /// (wall-clock aggregation latency; items = rebalances).  Wall-clock by
  /// design — never touches the deterministic outputs.
  obs::Profiler* profiler = nullptr;
  /// Optional out-param: filled with each pool worker's wall-clock busy
  /// seconds after the run (index = worker; see ThreadPool).  Wall-clock
  /// observation only — never touches the deterministic outputs.
  std::vector<double>* worker_busy_seconds = nullptr;
};

/// One NUMA-shaped region of a cluster machine: `processors` contiguous
/// processors whose reallocation traffic costs `cost_multiplier` times the
/// run's per-processor reallocation cost (cluster/cluster_spec.hpp).
struct ClusterRegion {
  int processors = 0;
  double cost_multiplier = 1.0;
};

/// One machine of a simulated cluster.  Regions partition the machine's
/// processors in order; an empty region list means one uniform region
/// (multiplier 1.0), which reproduces the flat reallocation penalty.
struct ClusterMachine {
  int processors = 0;
  std::vector<ClusterRegion> regions;
};

/// Cluster-mode parameters (see cluster/cluster_engine.hpp).  The default
/// — 0 machines — selects the flat engines and is a strict no-op.
struct ClusterConfig {
  /// Number of machines; 0 = flat path, >= 1 = the cluster driver (jobs
  /// placed by the router, one engine loop per machine).
  int machines = 0;
  /// Router policy name ("least-loaded" | "round-robin" | "desire-aware" |
  /// "class-affinity"); empty selects "least-loaded".
  std::string router;
  /// Inter-machine migration epoch in quanta: every this many quanta the
  /// coordinator checks desire imbalance and migrates queued jobs from
  /// over-quota machines, charging one quantum of transfer debt.  0 — the
  /// default — disables migration entirely.
  dag::Steps migration_period = 0;
  /// Worker threads for the machine loops; <= 0 selects hardware
  /// concurrency.  Results are byte-identical at any thread count.
  int threads = 1;
  /// Explicit machine shapes.  Empty — the default — builds `machines`
  /// uniform machines of SimConfig::processors each; when non-empty the
  /// size must equal `machines`.
  std::vector<ClusterMachine> shapes;
};

/// Simulation parameters.
struct SimConfig {
  /// Machine size P.
  int processors = 128;
  /// Quantum length L in unit steps.
  dag::Steps quantum_length = 1000;
  /// Safety bound on simulated steps (0 = derive from total work).
  dag::Steps max_steps = 0;
  /// Admission cap: at most this many jobs run concurrently; released jobs
  /// beyond it wait in an FCFS queue (by release step, ties by submission
  /// order).  0 means the cap is P — the paper's analysis requires
  /// |J| <= P so every running job can hold a processor.
  int max_active_jobs = 0;
  /// Reallocation overhead: a job whose allotment changed between quanta
  /// loses `cost * |Δa|` steps (capped at L) to migration at the start of
  /// the quantum.  0 reproduces the paper's overhead-free setting.
  dag::Steps reallocation_cost_per_proc = 0;
  /// Optional fault plan (processor churn, job crashes, allotment
  /// revocations; see fault/fault_plan.hpp).  Null or empty is a strict
  /// no-op: the engine takes exactly the fault-free code path and its
  /// output is identical to a run without the field.  The plan must
  /// outlive the simulation call.
  const fault::FaultPlan* faults = nullptr;
  /// Boundary model used by drivers that dispatch on the config
  /// (core::run_set, the exp sweep layer).  Direct calls to
  /// simulate_job_set / simulate_job_set_async ignore this field — the
  /// entry point already names the engine.
  EngineKind engine = EngineKind::kSync;
  /// Optional quantum-length policy (Section 9's dynamic-quantum
  /// extension).  Null reproduces the fixed-length setting byte-for-byte.
  /// Sync engine: consulted once per global boundary — with the sole job's
  /// stats when exactly one job ran the quantum, with machine-aggregated
  /// stats otherwise.  Async engine: cloned per job and consulted at that
  /// job's own boundaries.  Reset at the start of the run; must outlive
  /// the simulation call.
  sched::QuantumLengthPolicy* quantum_length_policy = nullptr;
  /// Observability hooks (see obs/obs_config.hpp).  The default — no event
  /// bus — keeps the engine on the exact pre-observability code path; with
  /// a bus attached the engine publishes lifecycle, allocation, quantum
  /// and fault events to its sinks.  Sinks observe only: results are
  /// byte-identical with or without them.  Must outlive the call.
  obs::ObsConfig obs = {};
  /// Hierarchical allocation (0 groups = flat, the default).  When groups
  /// >= 1, core::run_set dispatches to the sharded set engine
  /// (sim/sharded_engine.hpp), which requires the sync boundary model and
  /// supports no fault plan or quantum-length policy.
  HierConfig hier = {};
  /// Cluster mode (0 machines = flat, the default).  When machines >= 1,
  /// core::run_set dispatches to the cluster driver
  /// (cluster/cluster_engine.hpp), which requires the sync boundary model
  /// and composes with neither fault plans, quantum-length policies, nor
  /// hierarchical allocation.
  ClusterConfig cluster = {};
  /// Optional cooperative cancellation (see util/cancel.hpp).  Polled at
  /// quantum boundaries; a cancelled run unwinds by throwing
  /// util::CancelledError.  Null — the default — is a strict no-op.  Must
  /// outlive the simulation call.
  const util::CancelToken* cancel = nullptr;
  /// Async engine only: advance in closed-form strides between events
  /// instead of unit steps (see sim/quantum_eval.hpp).  Results are
  /// byte-identical either way — false is the stepwise reference mode for
  /// the differential tests, not a feature switch.  Fault plans force
  /// unit steps regardless.  The sync engine executes whole quanta in
  /// closed form already and ignores this field.
  bool skip_ahead = true;
};

/// Result of simulating a job set.
struct SimResult {
  /// Per-job traces, in submission order.
  std::vector<JobTrace> jobs;
  /// Completion step of the last job.
  dag::Steps makespan = 0;
  /// Mean of per-job response times (completion − release).
  double mean_response_time = 0.0;
  /// Total wasted processor cycles across all jobs.
  dag::TaskCount total_waste = 0;
  /// Number of global quanta simulated.
  std::int64_t quanta = 0;
  /// Log of applied disturbances; `fault_log.enabled` is true only when
  /// the run had a non-empty fault plan attached.
  fault::FaultLog fault_log;
  /// True when per-quantum allotments are rounded time averages (the
  /// asynchronous engine) rather than constants held for the whole
  /// quantum, in which case instantaneous machine-capacity checks cannot
  /// be reconstructed from the traces.
  bool averaged_allotments = false;
};

/// Simulates the job set to completion.  Each job gets its own clone of the
/// `request` prototype (feedback state is per-job); the stateless execution
/// policy is shared.  The allocator is reset at the start of the run.
SimResult simulate_job_set(std::vector<JobSubmission> submissions,
                           const sched::ExecutionPolicy& execution,
                           const sched::RequestPolicy& request_prototype,
                           alloc::Allocator& allocator,
                           const SimConfig& config);

}  // namespace abg::sim
