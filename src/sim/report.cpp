#include "sim/report.hpp"

#include <algorithm>
#include <stdexcept>

#include "fault/resilience.hpp"

namespace abg::sim {

namespace {

constexpr std::string_view kLevels = " .:-=+*#%@";

}  // namespace

std::string sparkline(const std::vector<double>& values) {
  if (values.empty()) {
    return {};
  }
  double peak = 0.0;
  for (const double v : values) {
    peak = std::max(peak, v);
  }
  std::string out;
  out.reserve(values.size());
  for (const double v : values) {
    if (peak <= 0.0 || v <= 0.0) {
      out.push_back(kLevels.front());
      continue;
    }
    const auto idx = static_cast<std::size_t>(
        (v / peak) * static_cast<double>(kLevels.size() - 1) + 0.5);
    out.push_back(kLevels[std::min(idx, kLevels.size() - 1)]);
  }
  return out;
}

std::string feedback_report(const JobTrace& trace) {
  std::vector<double> allotments;
  allotments.reserve(trace.quanta.size());
  for (const int a : trace.allotment_series()) {
    allotments.push_back(static_cast<double>(a));
  }
  std::string out;
  out += "parallelism A(q): " + sparkline(trace.parallelism_series()) + "\n";
  out += "request     d(q): " + sparkline(trace.request_series()) + "\n";
  out += "allotment   a(q): " + sparkline(allotments) + "\n";
  return out;
}

std::vector<double> machine_utilization_series(const SimResult& result,
                                               int processors) {
  if (processors < 1) {
    throw std::invalid_argument(
        "machine_utilization_series: processors must be >= 1");
  }
  dag::Steps quantum_length = 0;
  for (const JobTrace& t : result.jobs) {
    for (const auto& q : t.quanta) {
      if (quantum_length == 0) {
        quantum_length = q.length;
      } else if (q.length != quantum_length) {
        throw std::invalid_argument(
            "machine_utilization_series: non-uniform quantum lengths");
      }
    }
  }
  if (quantum_length == 0) {
    return {};
  }
  const auto slots = static_cast<std::size_t>(
      (result.makespan + quantum_length - 1) / quantum_length);
  std::vector<double> series(slots, 0.0);
  for (const JobTrace& t : result.jobs) {
    for (const auto& q : t.quanta) {
      const auto slot =
          static_cast<std::size_t>(q.start_step / quantum_length);
      if (slot < series.size()) {
        series[slot] += static_cast<double>(q.allotment) /
                        static_cast<double>(processors);
      }
    }
  }
  return series;
}

std::string gantt_chart(const SimResult& result, int processors) {
  if (processors < 1) {
    throw std::invalid_argument("gantt_chart: processors must be >= 1");
  }
  dag::Steps quantum_length = 0;
  for (const JobTrace& t : result.jobs) {
    for (const auto& q : t.quanta) {
      if (quantum_length == 0) {
        quantum_length = q.length;
      } else if (q.length != quantum_length) {
        throw std::invalid_argument(
            "gantt_chart: non-uniform quantum lengths");
      }
    }
  }
  if (quantum_length == 0) {
    return {};
  }
  const auto slots = static_cast<std::size_t>(
      (result.makespan + quantum_length - 1) / quantum_length);
  std::string out;
  for (std::size_t j = 0; j < result.jobs.size(); ++j) {
    std::vector<double> share(slots, 0.0);
    for (const auto& q : result.jobs[j].quanta) {
      const auto slot =
          static_cast<std::size_t>(q.start_step / quantum_length);
      if (slot < slots) {
        share[slot] = static_cast<double>(q.allotment);
      }
    }
    // Scale against the machine size (not the row peak) so rows are
    // comparable.
    std::string row;
    row.reserve(slots);
    for (const double s : share) {
      const auto idx = static_cast<std::size_t>(
          s / static_cast<double>(processors) *
              static_cast<double>(kLevels.size() - 1) +
          0.5);
      row.push_back(kLevels[std::min(idx, kLevels.size() - 1)]);
    }
    out += "job " + std::to_string(j) + " |" + row + "|\n";
  }
  return out;
}

double machine_utilization(const SimResult& result, int processors) {
  if (processors < 1) {
    throw std::invalid_argument(
        "machine_utilization: processors must be >= 1");
  }
  if (result.makespan <= 0) {
    return 0.0;
  }
  dag::TaskCount work = 0;
  for (const JobTrace& t : result.jobs) {
    work += t.work;
  }
  return static_cast<double>(work) /
         (static_cast<double>(result.makespan) *
          static_cast<double>(processors));
}

std::string resilience_report(const SimResult& faulty,
                              const SimResult& reference) {
  return fault::format_resilience_report(
      fault::analyze_resilience(faulty, reference));
}

}  // namespace abg::sim
