// Per-job execution traces.
//
// Every quantum a job runs produces a QuantumStats record; a JobTrace is
// the full history plus the job's intrinsic characteristics, from which all
// of the paper's per-job measurements are derived: running time, processor
// waste, the request/parallelism series of Figures 1 and 4, and the
// empirical transition factor.
#pragma once

#include <vector>

#include "dag/job.hpp"
#include "sched/quantum_stats.hpp"

namespace abg::sim {

/// Complete record of one job's scheduled execution.
struct JobTrace {
  /// Step at which the job was released.
  dag::Steps release_step = 0;
  /// Step at which the job's last task completed; -1 if it never finished.
  dag::Steps completion_step = -1;
  /// The job's total work T1.
  dag::TaskCount work = 0;
  /// The job's critical-path length T∞.
  dag::Steps critical_path = 0;
  /// Per-quantum statistics in execution order.
  std::vector<sched::QuantumStats> quanta;

  bool finished() const { return completion_step >= 0; }

  /// Response (running) time: completion − release, in unit steps.
  /// Requires the job to have finished.
  dag::Steps response_time() const;

  /// Total wasted processor cycles: Σ_q a(q)·L − T1(q).
  dag::TaskCount total_waste() const;

  /// Total processor cycles allotted: Σ_q a(q)·L.
  dag::TaskCount total_allotted() const;

  /// The request series d(1), d(2), ...
  std::vector<double> request_series() const;

  /// The measured parallelism series A(1), A(2), ...
  std::vector<double> parallelism_series() const;

  /// The allotment series a(1), a(2), ...
  std::vector<int> allotment_series() const;

  /// The availability series p(1), p(2), ...
  std::vector<int> availability_series() const;
};

}  // namespace abg::sim
