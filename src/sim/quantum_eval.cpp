#include "sim/quantum_eval.hpp"

#include <stdexcept>

namespace abg::sim::quantum_eval {

namespace {

double fractional_progress(const dag::PhaseView& view, std::size_t level,
                           dag::TaskCount remaining) {
  const auto levels = view.widths->size();
  if (level >= levels) {
    return static_cast<double>(levels);
  }
  const double frac = 1.0 - static_cast<double>(remaining) /
                                static_cast<double>((*view.widths)[level]);
  return static_cast<double>(level) + frac;
}

}  // namespace

PhaseOutcome evaluate_quantum(const dag::PhaseView& view, int procs,
                              dag::Steps budget) {
  if (view.widths == nullptr) {
    throw std::invalid_argument("evaluate_quantum: job has no phase view");
  }
  if (procs < 0 || budget < 0) {
    throw std::invalid_argument(
        "evaluate_quantum: negative procs or budget");
  }
  const std::vector<dag::TaskCount>& widths = *view.widths;
  std::size_t level = view.level;
  dag::TaskCount remaining = view.remaining_in_level;

  PhaseOutcome out;
  out.end_level = level;
  out.end_remaining = remaining;
  const bool finished_before = level >= widths.size();
  const double progress_before = fractional_progress(view, level, remaining);
  if (procs == 0) {
    // No processors: the quantum elapses with no progress (a finished job
    // consumes nothing).
    out.steps_used = finished_before ? 0 : budget;
    out.idle_steps = out.steps_used;
    out.finished = finished_before;
    return out;
  }
  dag::Steps left = budget;
  while (left > 0 && level < widths.size()) {
    // Steps to drain the current level at `procs` tasks per step; the
    // barrier keeps the final partial step from spilling into the next
    // level.
    const auto need = static_cast<dag::Steps>((remaining + procs - 1) / procs);
    if (need <= left) {
      out.work += remaining;
      left -= need;
      out.steps_used += need;
      ++out.phases_crossed;
      ++level;
      remaining = level < widths.size() ? widths[level] : 0;
    } else {
      const dag::TaskCount done = static_cast<dag::TaskCount>(left) * procs;
      remaining -= done;  // done < remaining since need > left
      out.work += done;
      out.steps_used += left;
      left = 0;
    }
  }
  out.end_level = level;
  out.end_remaining = remaining;
  out.finished = level >= widths.size();
  out.cpl = fractional_progress(view, level, remaining) - progress_before;
  out.held_cycles =
      static_cast<dag::TaskCount>(procs) * out.steps_used;
  out.idle_cycles = out.held_cycles - out.work;
  return out;
}

dag::Steps steps_to_finish(const dag::PhaseView& view, int procs,
                           dag::Steps cap) {
  if (view.widths == nullptr) {
    throw std::invalid_argument("steps_to_finish: job has no phase view");
  }
  if (procs < 0 || cap < 0) {
    throw std::invalid_argument("steps_to_finish: negative procs or cap");
  }
  const std::vector<dag::TaskCount>& widths = *view.widths;
  std::size_t level = view.level;
  if (level >= widths.size()) {
    return 0;
  }
  if (procs == 0) {
    return cap + 1;  // no progress is possible
  }
  dag::TaskCount remaining = view.remaining_in_level;
  dag::Steps steps = 0;
  while (level < widths.size()) {
    steps += static_cast<dag::Steps>((remaining + procs - 1) / procs);
    if (steps > cap) {
      return cap + 1;
    }
    ++level;
    remaining = level < widths.size() ? widths[level] : 0;
  }
  return steps;
}

bool supports_skip_ahead(const dag::Job& job) {
  return job.phase_view().widths != nullptr;
}

sched::QuantumStats run_allotted_quantum(
    dag::Job& job, const sched::ExecutionPolicy& execution, std::int64_t index,
    int desire, int allotment, dag::Steps length, dag::Steps penalty,
    int leftover, dag::Steps start_step) {
  sched::QuantumStats stats;
  if (penalty < length) {
    stats = execution.run_quantum(job, index, desire, allotment,
                                  length - penalty);
  } else {
    stats.index = index;
    stats.request = desire;
    stats.allotment = allotment;
    stats.finished = job.finished();
  }
  stats.length = length;
  stats.steps_used += penalty;
  if (penalty > 0) {
    stats.full = false;  // the migration steps did no work
  }
  stats.available = allotment + leftover;
  stats.start_step = start_step;
  return stats;
}

}  // namespace abg::sim::quantum_eval
