#include "sim/engine_core.hpp"

#include <algorithm>
#include <cassert>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "fault/fault_injector.hpp"
#include "fault/faulty_allocator.hpp"
#include "obs/event_bus.hpp"
#include "sim/quantum_engine.hpp"
#include "sim/quantum_eval.hpp"

namespace abg::sim {

std::string_view to_string(EngineKind kind) {
  switch (kind) {
    case EngineKind::kSync:
      return "sync";
    case EngineKind::kAsync:
      return "async";
  }
  return "sync";
}

EngineKind engine_kind_from_name(std::string_view name) {
  if (name == "sync") {
    return EngineKind::kSync;
  }
  if (name == "async") {
    return EngineKind::kAsync;
  }
  throw std::invalid_argument("unknown engine '" + std::string(name) +
                              "' (expected sync|async)");
}

dag::Steps fault_bound_slack(const fault::FaultPlan& plan,
                             dag::TaskCount total_work,
                             dag::Steps quantum_length) {
  const auto crashes = static_cast<dag::Steps>(plan.crash_count());
  const auto events = static_cast<dag::Steps>(plan.events.size());
  return plan.last_event_step() + plan.restart_delay * crashes +
         8 * total_work * crashes + 64 * quantum_length * events;
}

namespace {

/// Fault machinery for one run.  Only constructed when a non-empty plan is
/// attached; the fault-free path is byte-identical to a run without the
/// plan.
struct FaultSession {
  bool faulty = false;
  std::optional<fault::FaultInjector> injector;
  std::optional<fault::FaultyAllocator> faulty_allocator;
  alloc::Allocator* machine = nullptr;

  FaultSession(alloc::Allocator& base, const fault::FaultPlan* plan) {
    faulty = plan != nullptr && !plan->empty();
    if (faulty) {
      injector.emplace(*plan);
      faulty_allocator.emplace(base, *injector);
      machine = &*faulty_allocator;
    } else {
      machine = &base;
    }
  }
};

/// Resolves the configured bus to null when it has no sinks, so every hook
/// site below is one pointer test on the hot path.
obs::EventBus* active_bus(const CoreConfig& config) {
  return config.bus != nullptr && config.bus->active() ? config.bus : nullptr;
}

/// Publishes the run-start event and one submit event per ingested job.
void publish_intake(obs::EventBus* bus, const JobBatch& batch,
                    const CoreConfig& config) {
  if (bus == nullptr) {
    return;
  }
  obs::Event start;
  start.kind = obs::EventKind::kRunStart;
  start.processors = config.processors;
  start.quantum_length = config.quantum_length;
  start.job_count = static_cast<std::int64_t>(batch.size());
  bus->publish(start);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    obs::Event e;
    e.kind = obs::EventKind::kJobSubmit;
    e.step = batch.jobs[i].trace.release_step;
    e.job = static_cast<std::int64_t>(i);
    e.work = batch.jobs[i].trace.work;
    e.critical_path = batch.jobs[i].trace.critical_path;
    bus->publish(e);
  }
}

void publish_admit(obs::EventBus* bus, std::size_t job, dag::Steps now,
                   int desire) {
  obs::Event e;
  e.kind = obs::EventKind::kJobAdmit;
  e.step = now;
  e.job = static_cast<std::int64_t>(job);
  e.desire = desire;
  bus->publish(e);
}

void publish_allocation(obs::EventBus* bus, dag::Steps now, int pool,
                        const std::vector<int>& allotments,
                        std::int64_t active_jobs) {
  obs::Event e;
  e.kind = obs::EventKind::kAllocation;
  e.step = now;
  e.pool = pool;
  for (const int a : allotments) {
    e.assigned += a;
  }
  e.active_jobs = active_jobs;
  bus->publish(e);
}

/// Publishes a quantum record exactly as it entered the trace.
void publish_quantum(obs::EventBus* bus, std::size_t job,
                     const sched::QuantumStats& stats) {
  obs::Event e;
  e.kind = obs::EventKind::kQuantum;
  e.step = stats.start_step;
  e.job = static_cast<std::int64_t>(job);
  e.stats = &stats;
  bus->publish(e);
}

void publish_complete(obs::EventBus* bus, std::size_t job, dag::Steps step) {
  obs::Event e;
  e.kind = obs::EventKind::kJobComplete;
  e.step = step;
  e.job = static_cast<std::int64_t>(job);
  bus->publish(e);
}

void publish_crash(obs::EventBus* bus, std::size_t job, dag::Steps now,
                   const fault::CrashRecord& record, dag::Steps restart_step) {
  obs::Event e;
  e.kind = obs::EventKind::kJobCrash;
  e.step = now;
  e.job = static_cast<std::int64_t>(job);
  e.lost_work = record.lost_work;
  e.restart_step = restart_step;
  bus->publish(e);
}

void publish_run_end(obs::EventBus* bus, dag::Steps makespan) {
  if (bus == nullptr) {
    return;
  }
  obs::Event e;
  e.kind = obs::EventKind::kRunEnd;
  e.step = makespan;
  e.makespan = makespan;
  bus->publish(e);
}

/// Tallies a consumed fault window into the log: disturbance steps and
/// per-kind event counters (crashes are counted via log.crashes when they
/// are applied to a running job).  Non-crash events are also published to
/// the bus when one is attached.
void log_window_events(const fault::WindowFaults& window,
                       fault::FaultLog& log, obs::EventBus* bus) {
  for (const fault::FaultEvent& e : window.applied) {
    log.disturbance_steps.push_back(e.step);
    switch (e.kind) {
      case fault::FaultKind::kProcessorFailure:
        ++log.failure_events;
        break;
      case fault::FaultKind::kProcessorRepair:
        ++log.repair_events;
        break;
      case fault::FaultKind::kAllotmentRevocation:
        ++log.revocation_events;
        break;
      case fault::FaultKind::kJobCrash:
        continue;  // counted via log.crashes when applied
    }
    if (bus != nullptr) {
      obs::Event ev;
      ev.kind = obs::EventKind::kFault;
      ev.step = e.step;
      ev.fault = e.kind;
      bus->publish(ev);
    }
  }
}

void commit_crash(fault::FaultLog& log, const fault::CrashRecord& record) {
  log.crashes.push_back(record);
  log.lost_work += record.lost_work;
  log.discarded_cycles += record.discarded_cycles;
}

/// Per-slot remaining work for a size-aware allocator: total minus
/// completed for active jobs, 0 for everything else.  `buffer` is reused
/// across quanta to keep the hot path allocation-free.
const std::vector<double>& remaining_work(const JobBatch& batch,
                                          std::vector<double>& buffer) {
  buffer.assign(batch.size(), 0.0);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (batch.active(i)) {
      const JobRuntime& st = batch.jobs[i];
      buffer[i] = static_cast<double>(st.job->total_work() -
                                      st.job->completed_work());
    }
  }
  return buffer;
}

/// Moves per-job traces into the result and derives the aggregate metrics
/// (identical in both boundary models).
void aggregate_result(JobBatch& batch, SimResult& result) {
  batch.flush_quanta();
  double response_sum = 0.0;
  for (JobRuntime& st : batch.jobs) {
    result.makespan = std::max(result.makespan, st.trace.completion_step);
    response_sum += static_cast<double>(st.trace.response_time());
    result.total_waste += st.trace.total_waste();
    result.jobs.push_back(std::move(st.trace));
  }
  result.mean_response_time =
      batch.empty() ? 0.0
                    : response_sum / static_cast<double>(batch.size());
}

}  // namespace

SimResult run_global_quanta(JobBatch& batch, const IntakeTotals& totals,
                            const sched::ExecutionPolicy& execution,
                            alloc::Allocator& allocator,
                            const CoreConfig& config) {
  FaultSession session(allocator, config.faults);
  const bool faulty = session.faulty;
  alloc::Allocator& machine = *session.machine;
  const dag::Steps max_steps = config.max_steps;
  obs::EventBus* const bus = active_bus(config);
  publish_intake(bus, batch, config);

  SimResult result;
  if (faulty) {
    result.fault_log.enabled = true;
    result.fault_log.min_capacity = config.processors;
  }
  fault::FaultLog& log = result.fault_log;
  dag::Steps now = 0;
  dag::Steps length = config.quantum_length;
  std::vector<std::size_t> active_idx;
  std::vector<int> requests;
  std::vector<double> sized;
  // (job, staged slot) pairs whose feedback is deferred past the bound
  // check below.
  std::vector<std::pair<std::size_t, std::size_t>> feedback;
  std::size_t remaining = totals.remaining;

  while (remaining > 0) {
    if (config.cancel != nullptr && config.cancel->cancelled()) {
      throw util::CancelledError(
          std::string(config.context) + ": run cancelled (" +
              util::to_string(config.cancel->cause()) + ")",
          config.cancel->cause());
    }
    // Consume fault events for the quantum [now, now + length).  Events
    // inside windows skipped by the idle fast-path below are consumed
    // lazily on the next boundary; failures/repairs net out and crashes of
    // non-running jobs are no-ops, so laziness is sound.
    fault::WindowFaults window;
    if (faulty) {
      // Crash recovery below reads and may clear traces mid-run, so a
      // faulty run keeps them materialized every boundary.
      batch.flush_quanta();
      window = session.injector->advance(now, now + length);
      log_window_events(window, log, bus);
      log.min_capacity = std::min(
          log.min_capacity, session.injector->capacity(config.processors));
    }

    // Admit jobs eligible by the current boundary, FCFS by eligible step
    // (ties by submission order), up to the admission cap.
    active_idx.clear();
    requests.clear();
    std::size_t active_count = batch.active_count();
    while (active_count < config.max_active) {
      const std::size_t best = batch.next_admission(now);
      if (best == batch.size()) {
        break;
      }
      JobRuntime& st = batch.jobs[best];
      batch.regime[best] = JobRegime::kActive;
      if (st.resumed) {
        st.resumed = false;  // keep the preserved desire
      } else {
        batch.desire[best] = st.request->first_request();
      }
      if (bus != nullptr) {
        publish_admit(bus, best, now, batch.desire[best]);
      }
      ++active_count;
    }
    // One request slot per submitted job, in stable submission order:
    // inactive (unreleased, queued, finished) jobs request 0.  Stable
    // positions let positional allocators (per-job weights) work across
    // job completions.
    requests.assign(batch.size(), 0);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch.active(i)) {
        active_idx.push_back(i);
        requests[i] = batch.desire[i];
      }
    }

    if (active_idx.empty()) {
      // All remaining jobs are eligible in the future: idle to the next
      // eligibility boundary.
      const dag::Steps gap = batch.next_eligible_step(max_steps) - now;
      const dag::Steps quanta_to_skip = std::max<dag::Steps>(1, gap / length);
      now += quanta_to_skip * length;
      if (now >= max_steps) {
        throw std::runtime_error(std::string(config.context) +
                                 ": exceeded step bound");
      }
      continue;
    }

    ++result.quanta;
    const int pool = machine.pool(config.processors);
    const std::vector<int> allotments =
        machine.size_aware()
            ? machine.allocate_sized(requests, remaining_work(batch, sized),
                                     config.processors)
            : machine.allocate(requests, config.processors);
    int assigned = 0;
    for (const int a : allotments) {
      assigned += a;
    }
    // Revoked processors are held by the revoker, not idle: exclude them
    // from the leftover availability reported to jobs.
    const int revoked = faulty ? session.faulty_allocator->last_revoked() : 0;
    const int leftover = std::max(0, pool - assigned - revoked);
    if (bus != nullptr) {
      publish_allocation(bus, now, pool, allotments,
                         static_cast<std::int64_t>(active_idx.size()));
    }

    // Which active jobs crash during this quantum.
    std::vector<std::size_t> crash_victims;
    if (faulty) {
      for (const fault::FaultEvent& e : window.crashes) {
        const auto j = static_cast<std::size_t>(e.job);
        if (j < batch.size() && batch.active(j) &&
            std::find(crash_victims.begin(), crash_victims.end(), j) ==
                crash_victims.end()) {
          crash_victims.push_back(j);
        }
      }
    }

    // Inputs for the optional quantum-length policy, gathered as stats are
    // produced: the sole job's stats verbatim when exactly one job ran the
    // quantum (the single-job feedback loop), machine-aggregated stats
    // otherwise.
    sched::QuantumStats qlen_agg;
    qlen_agg.full = true;
    sched::QuantumStats qlen_sole;
    std::size_t qlen_count = 0;
    bool qlen_sole_valid = false;

    feedback.clear();
    for (const std::size_t i : active_idx) {
      JobRuntime& st = batch.jobs[i];
      const int allotment = allotments[i];
      if (faulty) {
        log.allotted_cycles += static_cast<dag::TaskCount>(allotment) *
                               static_cast<dag::TaskCount>(length);
      }
      const bool crashed =
          faulty && std::find(crash_victims.begin(), crash_victims.end(),
                              i) != crash_victims.end();
      if (crashed) {
        // The job held its allotment when the crash hit: the whole
        // quantum is forfeited.  Under checkpoint recovery the voided
        // quantum stays in the trace as pure waste; under
        // restart-from-scratch the entire trace so far is discarded and
        // the job restarts as a fresh DAG.
        ++st.local_quantum;
        sched::QuantumStats stats;
        stats.index = st.local_quantum;
        stats.start_step = now;
        stats.request = batch.desire[i];
        stats.allotment = allotment;
        stats.available = allotment + leftover;
        stats.length = length;
        st.trace.quanta.push_back(stats);
        if (bus != nullptr) {
          publish_quantum(bus, i, stats);
        }
        if (config.quantum_length_policy != nullptr) {
          ++qlen_count;
          qlen_sole_valid = false;
          qlen_agg.work += stats.work;
          qlen_agg.allotment += stats.allotment;
          qlen_agg.request += stats.request;
          qlen_agg.cpl = std::max(qlen_agg.cpl, stats.cpl);
          qlen_agg.full = qlen_agg.full && stats.full;
        }
        fault::CrashRecord record;
        record.job = i;
        record.step = now;
        if (config.faults->work_loss == fault::WorkLoss::kRestartFromScratch) {
          record.lost_work = st.job->completed_work();
          record.discarded_cycles = st.trace.total_allotted();
          st.restart_from_scratch();
          st.trace.quanta.clear();
          st.local_quantum = 0;
        }
        if (config.faults->policy_on_restart ==
            fault::PolicyOnRestart::kReset) {
          st.request->reset();
          batch.desire[i] = st.request->first_request();
        } else {
          st.resumed = true;  // re-admission keeps the preserved desire
        }
        commit_crash(log, record);
        batch.previous_allotment[i] = 0;
        batch.regime[i] = JobRegime::kQueued;
        batch.eligible_step[i] = now + length + config.faults->restart_delay;
        if (bus != nullptr) {
          publish_crash(bus, i, now, record, batch.eligible_step[i]);
        }
        continue;
      }
      ++st.local_quantum;
      const dag::Steps penalty = reallocation_penalty(
          batch.previous_allotment[i], allotment,
          config.reallocation_cost_per_proc, length);
      batch.previous_allotment[i] = allotment;
      const sched::QuantumStats stats = quantum_eval::run_allotted_quantum(
          *st.job, execution, st.local_quantum, batch.desire[i], allotment,
          length, penalty, leftover, now);
      const std::size_t slot = batch.stage_quantum(i, stats);
      if (bus != nullptr) {
        publish_quantum(bus, i, stats);
      }
      if (config.quantum_length_policy != nullptr) {
        ++qlen_count;
        qlen_sole = stats;
        qlen_sole_valid = true;
        qlen_agg.work += stats.work;
        qlen_agg.allotment += stats.allotment;
        qlen_agg.request += stats.request;
        qlen_agg.cpl = std::max(qlen_agg.cpl, stats.cpl);
        qlen_agg.full = qlen_agg.full && stats.full;
      }
      if (stats.finished) {
        st.trace.completion_step = now + stats.steps_used;
        batch.regime[i] = JobRegime::kDone;
        --remaining;
        if (bus != nullptr) {
          publish_complete(bus, i, st.trace.completion_step);
        }
      } else {
        feedback.emplace_back(i, slot);
      }
    }

    now += length;
    if (remaining > 0 && now >= max_steps) {
      throw std::runtime_error(std::string(config.context) +
                               ": exceeded step bound; " +
                               config.stall_reason);
    }
    // Quantum-boundary feedback.  next_request is deferred until after the
    // bound check so a stalled run throws before touching the (possibly
    // caller-owned) request policy again — the historic single-job
    // contract.  Each job has its own policy state, so the deferral is
    // otherwise unobservable.
    for (const auto& [i, slot] : feedback) {
      JobRuntime& st = batch.jobs[i];
      batch.desire[i] = st.request->next_request(batch.staged(slot));
    }
    batch.maybe_flush();
    if (config.quantum_length_policy != nullptr && remaining > 0) {
      if (qlen_count == 1 && qlen_sole_valid) {
        length = config.quantum_length_policy->next_length(qlen_sole);
      } else {
        qlen_agg.index = result.quanta;
        qlen_agg.start_step = now - length;
        qlen_agg.length = length;
        qlen_agg.steps_used = length;
        qlen_agg.available = pool;
        length = config.quantum_length_policy->next_length(qlen_agg);
      }
      if (length < 1) {
        throw std::logic_error(
            std::string(config.context) +
            ": quantum-length policy returned length < 1");
      }
    }
  }

  aggregate_result(batch, result);
  publish_run_end(bus, result.makespan);
  return result;
}

SimResult run_per_job_quanta(JobBatch& batch, const IntakeTotals& totals,
                             const sched::ExecutionPolicy& execution,
                             alloc::Allocator& allocator,
                             const CoreConfig& config) {
  FaultSession session(allocator, config.faults);
  const bool faulty = session.faulty;
  alloc::Allocator& machine = *session.machine;
  const dag::Steps max_steps = config.max_steps;
  obs::EventBus* const bus = active_bus(config);
  publish_intake(bus, batch, config);

  // Each job's boundary schedule is its own, so each job gets its own
  // quantum-length policy state (a clone of the run's prototype).
  for (JobRuntime& st : batch.jobs) {
    st.quantum_target = config.quantum_length;
    if (config.quantum_length_policy != nullptr) {
      st.quantum_policy = config.quantum_length_policy->clone();
      st.quantum_policy->reset();
    }
  }
  // Stride planning applies only when every step of the span is
  // event-free, which a fault plan cannot guarantee: its windows are
  // consumed per unit step, so a faulty run is driven stepwise.
  const bool skip_ahead = config.skip_ahead && !faulty;

  SimResult result;
  result.averaged_allotments = true;
  if (faulty) {
    result.fault_log.enabled = true;
    result.fault_log.min_capacity = config.processors;
  }
  fault::FaultLog& log = result.fault_log;
  dag::Steps now = 0;
  bool partition_dirty = true;
  std::vector<double> sized;
  std::size_t remaining = totals.remaining;

  // Rounded-up allotted cycles of the in-flight quantum, matching how
  // finalize_quantum will record it in the trace.
  auto rounded_cycles = [](const JobRuntime& st) {
    const dag::TaskCount procs =
        (st.held_cycles + st.quantum_target - 1) / st.quantum_target;
    return procs * static_cast<dag::TaskCount>(st.quantum_target);
  };

  // Stages the record and returns its slot so callers can publish from /
  // amend the staged copy until the next flush.
  auto finalize_quantum = [&](std::size_t i, bool finished) -> std::size_t {
    JobRuntime& st = batch.jobs[i];
    sched::QuantumStats stats;
    stats.index = st.local_quantum;
    stats.start_step = st.quantum_start;
    stats.request = batch.desire[i];
    stats.length = st.quantum_target;
    stats.steps_used = finished ? st.quantum_elapsed : st.quantum_target;
    stats.work = st.job->completed_work() - st.work_before;
    stats.cpl = st.job->level_progress() - st.progress_before;
    stats.finished = finished;
    // Time-averaged processors held, rounded UP so work <= allotment *
    // length stays invariant; the exact waste is accumulated separately.
    stats.allotment = static_cast<int>(
        (st.held_cycles + st.quantum_target - 1) / st.quantum_target);
    stats.request = std::max(stats.request, stats.allotment);
    stats.available = stats.allotment;
    stats.full = !finished && st.idle_steps == 0 && stats.allotment > 0;
    if (faulty) {
      // Mirror the trace's rounded accounting so the balance identity
      // holds exactly against total_allotted()/total_waste().
      log.allotted_cycles += static_cast<dag::TaskCount>(stats.allotment) *
                             static_cast<dag::TaskCount>(st.quantum_target);
    }
    return batch.stage_quantum(i, stats);
  };

  // Opens a fresh quantum for the job at the current step.
  auto begin_quantum = [&](JobRuntime& st) {
    st.quantum_start = now;
    st.quantum_elapsed = 0;
    st.work_before = st.job->completed_work();
    st.progress_before = st.job->level_progress();
    st.held_cycles = 0;
    st.idle_cycles = 0;
    st.idle_steps = 0;
  };

  while (remaining > 0) {
    if (config.cancel != nullptr && config.cancel->cancelled()) {
      throw util::CancelledError(
          std::string(config.context) + ": run cancelled (" +
              util::to_string(config.cancel->cause()) + ")",
          config.cancel->cause());
    }
    // Consume fault events for the unit step [now, now + 1).  Events in
    // ranges skipped by the idle fast-path are consumed lazily on the
    // next iteration, which is sound: failures/repairs net out and a
    // crash can only hit an active job.
    if (faulty) {
      // Crash recovery below reads and may clear traces mid-run, and
      // admission continues a checkpointed trace's quantum numbering, so a
      // faulty run keeps traces materialized every step.
      batch.flush_quanta();
      const fault::WindowFaults window = session.injector->advance(now, now + 1);
      log_window_events(window, log, bus);
      log.min_capacity = std::min(
          log.min_capacity, session.injector->capacity(config.processors));
      if (window.capacity_changed) {
        partition_dirty = true;
      }
      for (const fault::FaultEvent& e : window.crashes) {
        const auto j = static_cast<std::size_t>(e.job);
        if (j >= batch.size() || !batch.active(j)) {
          continue;  // crash of an inactive job is a no-op
        }
        JobRuntime& st = batch.jobs[j];
        fault::CrashRecord record;
        record.job = j;
        record.step = now;
        if (config.faults->work_loss == fault::WorkLoss::kCheckpointQuantum) {
          // The work executed so far survives (there is no rollback in a
          // live DAG): close the in-flight quantum early as a checkpoint.
          const std::size_t slot = finalize_quantum(j, /*finished=*/false);
          batch.staged_mutable(slot).steps_used = st.quantum_elapsed;
          batch.staged_mutable(slot).full = false;
          if (bus != nullptr) {
            publish_quantum(bus, j, batch.staged(slot));
          }
        } else {
          // Restart from scratch: the whole trace so far, including the
          // in-flight quantum, is discarded and the job restarts fresh.
          record.lost_work = st.job->completed_work();
          record.discarded_cycles =
              st.trace.total_allotted() + rounded_cycles(st);
          log.allotted_cycles += rounded_cycles(st);
          st.restart_from_scratch();
          st.trace.quanta.clear();
        }
        if (config.faults->policy_on_restart ==
            fault::PolicyOnRestart::kReset) {
          st.request->reset();
          if (st.quantum_policy) {
            st.quantum_policy->reset();
          }
          st.resumed = false;
        } else {
          st.resumed = true;  // re-admission keeps the preserved desire
        }
        commit_crash(log, record);
        batch.regime[j] = JobRegime::kQueued;
        batch.allotment[j] = 0;
        batch.previous_allotment[j] = 0;
        st.migration_debt = 0;
        batch.eligible_step[j] = now + 1 + config.faults->restart_delay;
        if (bus != nullptr) {
          publish_crash(bus, j, now, record, batch.eligible_step[j]);
        }
        partition_dirty = true;
      }
    }

    // Admission, FCFS by eligible (release or post-crash restart) step.
    std::size_t active_count = batch.active_count();
    while (active_count < config.max_active) {
      const std::size_t best = batch.next_admission(now);
      if (best == batch.size()) {
        break;
      }
      JobRuntime& st = batch.jobs[best];
      batch.regime[best] = JobRegime::kActive;
      if (st.resumed) {
        st.resumed = false;  // keep the preserved desire
      } else {
        batch.desire[best] = st.request->first_request();
      }
      // Continues the trace after a checkpoint crash; 1 on first
      // admission and after a from-scratch restart.
      st.local_quantum =
          static_cast<std::int64_t>(st.trace.quanta.size()) + 1;
      if (st.quantum_policy && st.local_quantum == 1) {
        st.quantum_target = st.quantum_policy->initial_length();
      }
      begin_quantum(st);
      if (bus != nullptr) {
        publish_admit(bus, best, now, batch.desire[best]);
      }
      partition_dirty = true;
      ++active_count;
    }

    if (active_count == 0) {
      // Idle-skip to the next eligibility boundary.
      const dag::Steps next_release = batch.next_eligible_step(max_steps);
      now = std::max(now + 1, next_release);
      if (now >= max_steps) {
        throw std::runtime_error(std::string(config.context) +
                                 ": step bound hit");
      }
      continue;
    }

    // Re-partition on any event.
    if (partition_dirty) {
      std::vector<int> requests(batch.size(), 0);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (batch.active(i)) {
          requests[i] = batch.desire[i];
        }
      }
      const std::vector<int> allotments =
          machine.size_aware()
              ? machine.allocate_sized(requests,
                                       remaining_work(batch, sized),
                                       config.processors)
              : machine.allocate(requests, config.processors);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (!batch.active(i)) {
          continue;
        }
        if (config.reallocation_cost_per_proc > 0) {
          // A repartition that moves this job's processors charges
          // cost·|Δa| migration steps, accumulated as debt and capped at
          // one quantum — the unit-step realization of the synchronous
          // engine's up-front penalty.
          JobRuntime& st = batch.jobs[i];
          const dag::Steps penalty = reallocation_penalty(
              batch.previous_allotment[i], allotments[i],
              config.reallocation_cost_per_proc, st.quantum_target);
          st.migration_debt =
              std::min(st.quantum_target, st.migration_debt + penalty);
        }
        batch.previous_allotment[i] = allotments[i];
        batch.allotment[i] = allotments[i];
      }
      if (bus != nullptr) {
        publish_allocation(bus, now, machine.pool(config.processors),
                           allotments,
                           static_cast<std::int64_t>(active_count));
      }
      partition_dirty = false;
    }

    // Plan the stride: the longest span guaranteed event-free, so jumping
    // it wholesale is indistinguishable from running it step by step.
    // Unit steps (stride 1 through the stepwise body) whenever closed
    // form does not apply: fault plans (handled above via skip_ahead) or
    // an active job without a phase view.
    dag::Steps stride = 1;
    bool batched = false;
    if (skip_ahead) {
      batched = true;
      stride = max_steps - now;  // the bound check below fires on time
      for (std::size_t i = 0; i < batch.size() && batched; ++i) {
        if (!batch.active(i)) {
          continue;
        }
        JobRuntime& st = batch.jobs[i];
        // Next boundary of this job's own quantum clock.
        stride = std::min(stride, st.quantum_target - st.quantum_elapsed);
        const dag::PhaseView view = st.job->phase_view();
        if (view.widths == nullptr) {
          batched = false;
          break;
        }
        // Next completion: migration debt delays execution, then the
        // phase walk gives the exact finish distance (cap+1 = "not
        // within the stride", which leaves the stride unconstrained).
        const int allot = batch.allotment[i];
        if (allot > 0 && st.migration_debt < stride) {
          const dag::Steps cap = stride - st.migration_debt;
          const dag::Steps fin =
              quantum_eval::steps_to_finish(view, allot, cap);
          if (fin <= cap) {
            stride = std::min(stride, st.migration_debt + fin);
          }
        }
      }
      if (batched && active_count < config.max_active) {
        // Next admission: every queued unfinished job became eligible
        // strictly in the future (the drain above admitted the rest).  At
        // the cap this cannot constrain the stride — a slot only frees at
        // a completion, which already bounds it.
        for (std::size_t i = 0; i < batch.size(); ++i) {
          if (batch.regime[i] == JobRegime::kQueued) {
            stride = std::min(stride, batch.eligible_step[i] - now);
          }
        }
      }
      if (!batched) {
        stride = 1;
      }
      assert(stride >= 1);
    }

    if (batched) {
      // Advance every active job by the stride in closed form.  The
      // planner guarantees no job finishes strictly inside the span, so
      // run_quantum consumes it fully; accounting matches the stepwise
      // body summed over `stride` iterations.
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (!batch.active(i)) {
          continue;
        }
        JobRuntime& st = batch.jobs[i];
        const int allot = batch.allotment[i];
        const dag::Steps debt = std::min(stride, st.migration_debt);
        if (debt > 0) {
          // Migration steps: the job holds its allotment but executes
          // nothing, so the cycles land in idle_cycles (waste).
          st.migration_debt -= debt;
          const dag::TaskCount held =
              mul_cycles_checked(allot, debt, config.context);
          add_cycles_checked(st.held_cycles, held, config.context);
          add_cycles_checked(st.idle_cycles, held, config.context);
          st.idle_steps += debt;
        }
        const dag::Steps run = stride - debt;
        if (run > 0) {
          const dag::QuantumExecution exec =
              st.job->run_quantum(allot, run, execution.order());
          assert(exec.steps == run);
          const dag::TaskCount held =
              mul_cycles_checked(allot, run, config.context);
          add_cycles_checked(st.held_cycles, held, config.context);
          add_cycles_checked(st.idle_cycles, held - exec.work,
                             config.context);
          st.idle_steps += exec.idle_steps;
        }
        st.quantum_elapsed += stride;
      }
    } else {
      // One unit step for every active job.
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (!batch.active(i)) {
          continue;
        }
        JobRuntime& st = batch.jobs[i];
        dag::TaskCount done = 0;
        if (st.migration_debt > 0) {
          // A migration step: the job holds its allotment but executes
          // nothing, so the cycles land in idle_cycles (waste) and the
          // quantum cannot be full.
          --st.migration_debt;
        } else {
          done = st.job->step(batch.allotment[i], execution.order());
        }
        ++st.quantum_elapsed;
        add_cycles_checked(st.held_cycles, batch.allotment[i],
                           config.context);
        add_cycles_checked(
            st.idle_cycles,
            static_cast<dag::TaskCount>(batch.allotment[i]) - done,
            config.context);
        if (done == 0) {
          ++st.idle_steps;
        }
      }
    }
    now += stride;
    result.quanta += stride;  // counts unit steps of engine activity

    // Post-step events: completions and quantum boundaries.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (!batch.active(i)) {
        continue;
      }
      JobRuntime& st = batch.jobs[i];
      if (st.job->finished()) {
        const std::size_t slot = finalize_quantum(i, /*finished=*/true);
        st.trace.completion_step = now;
        batch.regime[i] = JobRegime::kDone;
        --remaining;
        if (bus != nullptr) {
          publish_quantum(bus, i, batch.staged(slot));
          publish_complete(bus, i, now);
        }
        partition_dirty = true;
        continue;
      }
      if (st.quantum_elapsed == st.quantum_target) {
        const std::size_t slot = finalize_quantum(i, /*finished=*/false);
        if (bus != nullptr) {
          publish_quantum(bus, i, batch.staged(slot));
        }
        batch.desire[i] = st.request->next_request(batch.staged(slot));
        if (st.quantum_policy) {
          st.quantum_target =
              st.quantum_policy->next_length(batch.staged(slot));
          if (st.quantum_target < 1) {
            throw std::logic_error(
                std::string(config.context) +
                ": quantum-length policy returned length < 1");
          }
        }
        ++st.local_quantum;
        begin_quantum(st);
        partition_dirty = true;
      }
    }
    batch.maybe_flush();

    if (remaining > 0 && now >= max_steps) {
      throw std::runtime_error(std::string(config.context) +
                               ": exceeded step bound");
    }
  }

  aggregate_result(batch, result);
  publish_run_end(bus, result.makespan);
  return result;
}

}  // namespace abg::sim
