// Asynchronous-quanta multiprogrammed simulator.
//
// The synchronous simulator (sim/simulator.hpp) assumes all jobs share
// global quantum boundaries — the standard simplification (and the setup
// Figure 6 implies).  In the two-level model as described, however, each
// job's scheduling quanta are its own: a job measures and re-requests
// every L steps *from its admission*, so boundaries interleave
// arbitrarily.  This engine simulates that: processors are re-partitioned
// (dynamic equi-partitioning over the active jobs' current requests)
// whenever ANY event occurs — a job boundary, an admission, or a
// completion — which means a job's allotment can change mid-quantum when
// a neighbour's boundary triggers reclamation.
//
// Accounting consequences, reflected in the produced QuantumStats:
//   * `allotment` is the round of the time-averaged processors held over
//     the quantum (the allotment is no longer constant within a quantum);
//   * `available` is the time-averaged allotment plus unassigned
//     processors;
//   * waste = held processor-steps − work, accumulated exactly.
//
// Everything downstream (request policies, traces, metrics) is unchanged:
// feedback still sees per-quantum T1(q), T∞(q), capacity.
#pragma once

#include "alloc/allocator.hpp"
#include "sched/execution_policy.hpp"
#include "sched/request_policy.hpp"
#include "sim/simulator.hpp"

namespace abg::sim {

/// Simulates the job set with per-job quantum boundaries and
/// equi-partition reclamation at every event.  Jobs are admitted FCFS up
/// to the admission cap, as in the synchronous engine.  Reallocation
/// overhead (config.reallocation_cost_per_proc) is charged as migration
/// debt: a repartition that moves a job's processors costs cost·|Δa|
/// unit steps (capped at one quantum) during which the job holds its
/// allotment but executes nothing — the per-event realization of the
/// synchronous engine's up-front penalty.
SimResult simulate_job_set_async(std::vector<JobSubmission> submissions,
                                 const sched::ExecutionPolicy& execution,
                                 const sched::RequestPolicy& request_prototype,
                                 const SimConfig& config);

/// As above with an explicit allocator dividing the machine at each
/// repartition instead of the built-in dynamic equi-partitioning.  The
/// allocator is reset at the start of the run.
SimResult simulate_job_set_async(std::vector<JobSubmission> submissions,
                                 const sched::ExecutionPolicy& execution,
                                 const sched::RequestPolicy& request_prototype,
                                 alloc::Allocator& allocator,
                                 const SimConfig& config);

}  // namespace abg::sim
