#include "sim/lpt_pack.hpp"

#include <algorithm>
#include <numeric>

namespace abg::sim {

std::vector<std::size_t> lpt_order(const std::vector<std::size_t>& weights) {
  std::vector<std::size_t> order(weights.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&weights](std::size_t a, std::size_t b) {
                     return weights[a] > weights[b];
                   });
  return order;
}

}  // namespace abg::sim
