#include "sim/async_simulator.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "alloc/equipartition.hpp"
#include "fault/fault_injector.hpp"
#include "fault/faulty_allocator.hpp"

namespace abg::sim {

namespace {

struct AsyncJobState {
  std::unique_ptr<dag::Job> job;
  std::unique_ptr<sched::RequestPolicy> request;
  JobTrace trace;
  int desire = 1;
  int allotment = 0;
  /// Step from which the job may be (re-)admitted: the release step, or
  /// after a crash the crash step plus one plus the restart delay.
  dag::Steps eligible_step = 0;
  /// A crashed job with preserved policy state resumes with its last
  /// desire instead of first_request() on re-admission.
  bool resumed = false;
  bool active = false;
  bool done = false;
  // Current-quantum accumulators.
  std::int64_t local_quantum = 0;
  dag::Steps quantum_elapsed = 0;
  dag::Steps quantum_start = 0;
  dag::TaskCount work_before = 0;
  double progress_before = 0.0;
  dag::TaskCount held_cycles = 0;     // Σ allotment over quantum steps
  dag::TaskCount idle_cycles = 0;     // Σ (allotment − executed) per step
  dag::Steps idle_steps = 0;
};

}  // namespace

SimResult simulate_job_set_async(std::vector<JobSubmission> submissions,
                                 const sched::ExecutionPolicy& execution,
                                 const sched::RequestPolicy& request_prototype,
                                 const SimConfig& config) {
  if (config.processors < 1) {
    throw std::invalid_argument(
        "simulate_job_set_async: processors must be >= 1");
  }
  if (config.quantum_length < 1) {
    throw std::invalid_argument(
        "simulate_job_set_async: quantum length must be >= 1");
  }
  if (config.reallocation_cost_per_proc != 0) {
    throw std::invalid_argument(
        "simulate_job_set_async: reallocation overhead is not supported");
  }

  std::vector<AsyncJobState> states;
  states.reserve(submissions.size());
  dag::TaskCount total_work = 0;
  dag::Steps latest_release = 0;
  for (auto& sub : submissions) {
    if (!sub.job) {
      throw std::invalid_argument("simulate_job_set_async: null job");
    }
    if (sub.release_step < 0) {
      throw std::invalid_argument(
          "simulate_job_set_async: negative release step");
    }
    AsyncJobState st;
    st.job = std::move(sub.job);
    st.request = request_prototype.clone();
    st.request->reset();
    st.trace.release_step = sub.release_step;
    st.eligible_step = sub.release_step;
    st.trace.work = st.job->total_work();
    st.trace.critical_path = st.job->critical_path();
    total_work += st.trace.work;
    latest_release = std::max(latest_release, sub.release_step);
    if (st.job->finished()) {
      st.done = true;
      st.trace.completion_step = sub.release_step;
    }
    states.push_back(std::move(st));
  }

  // Fault machinery only exists when a non-empty plan is attached; the
  // fault-free path below is byte-identical to a run without the plan.
  const bool faulty = config.faults != nullptr && !config.faults->empty();
  dag::Steps max_steps =
      config.max_steps > 0
          ? config.max_steps
          : latest_release + 8 * total_work + 64 * config.quantum_length;
  if (faulty && config.max_steps == 0) {
    const auto crashes =
        static_cast<dag::Steps>(config.faults->crash_count());
    const auto events =
        static_cast<dag::Steps>(config.faults->events.size());
    max_steps += config.faults->last_event_step() +
                 config.faults->restart_delay * crashes +
                 8 * total_work * crashes +
                 64 * config.quantum_length * events;
  }
  const std::size_t max_active =
      config.max_active_jobs > 0
          ? static_cast<std::size_t>(config.max_active_jobs)
          : static_cast<std::size_t>(config.processors);

  alloc::EquiPartition deq;
  std::optional<fault::FaultInjector> injector;
  std::optional<fault::FaultyAllocator> faulty_allocator;
  if (faulty) {
    injector.emplace(*config.faults);
    faulty_allocator.emplace(deq, *injector);
  }
  alloc::Allocator& machine =
      faulty ? static_cast<alloc::Allocator&>(*faulty_allocator) : deq;

  SimResult result;
  result.averaged_allotments = true;
  if (faulty) {
    result.fault_log.enabled = true;
    result.fault_log.min_capacity = config.processors;
  }
  fault::FaultLog& log = result.fault_log;
  dag::Steps now = 0;
  bool partition_dirty = true;
  std::size_t remaining = 0;
  for (const AsyncJobState& st : states) {
    remaining += st.done ? 0u : 1u;
  }

  // Rounded-up allotted cycles of the in-flight quantum, matching how
  // finalize_quantum will record it in the trace.
  auto rounded_cycles = [&](const AsyncJobState& st) {
    const dag::TaskCount procs =
        (st.held_cycles + config.quantum_length - 1) / config.quantum_length;
    return procs * static_cast<dag::TaskCount>(config.quantum_length);
  };

  auto finalize_quantum = [&](AsyncJobState& st, bool finished) {
    sched::QuantumStats stats;
    stats.index = st.local_quantum;
    stats.start_step = st.quantum_start;
    stats.request = st.desire;
    stats.length = config.quantum_length;
    stats.steps_used = finished ? st.quantum_elapsed : config.quantum_length;
    stats.work = st.job->completed_work() - st.work_before;
    stats.cpl = st.job->level_progress() - st.progress_before;
    stats.finished = finished;
    // Time-averaged processors held, rounded UP so work <= allotment *
    // length stays invariant; the exact waste is accumulated separately.
    stats.allotment = static_cast<int>(
        (st.held_cycles + config.quantum_length - 1) /
        config.quantum_length);
    stats.request = std::max(stats.request, stats.allotment);
    stats.available = stats.allotment;
    stats.full = !finished && st.idle_steps == 0 && stats.allotment > 0;
    st.trace.quanta.push_back(stats);
    if (faulty) {
      // Mirror the trace's rounded accounting so the balance identity
      // holds exactly against total_allotted()/total_waste().
      log.allotted_cycles +=
          static_cast<dag::TaskCount>(stats.allotment) *
          static_cast<dag::TaskCount>(config.quantum_length);
    }
  };

  while (remaining > 0) {
    // Consume fault events for the unit step [now, now + 1).  Events in
    // ranges skipped by the idle fast-path are consumed lazily on the
    // next iteration, which is sound: failures/repairs net out and a
    // crash can only hit an active job.
    if (faulty) {
      const fault::WindowFaults window = injector->advance(now, now + 1);
      for (const fault::FaultEvent& e : window.applied) {
        log.disturbance_steps.push_back(e.step);
        switch (e.kind) {
          case fault::FaultKind::kProcessorFailure:
            ++log.failure_events;
            break;
          case fault::FaultKind::kProcessorRepair:
            ++log.repair_events;
            break;
          case fault::FaultKind::kAllotmentRevocation:
            ++log.revocation_events;
            break;
          case fault::FaultKind::kJobCrash:
            break;  // counted via log.crashes when applied
        }
      }
      log.min_capacity =
          std::min(log.min_capacity, injector->capacity(config.processors));
      if (window.capacity_changed) {
        partition_dirty = true;
      }
      for (const fault::FaultEvent& e : window.crashes) {
        const auto j = static_cast<std::size_t>(e.job);
        if (j >= states.size() || !states[j].active) {
          continue;  // crash of an inactive job is a no-op
        }
        AsyncJobState& st = states[j];
        fault::CrashRecord record;
        record.job = j;
        record.step = now;
        if (config.faults->work_loss ==
            fault::WorkLoss::kCheckpointQuantum) {
          // The work executed so far survives (there is no rollback in a
          // live DAG): close the in-flight quantum early as a checkpoint.
          finalize_quantum(st, /*finished=*/false);
          st.trace.quanta.back().steps_used = st.quantum_elapsed;
          st.trace.quanta.back().full = false;
        } else {
          // Restart from scratch: the whole trace so far, including the
          // in-flight quantum, is discarded and the job restarts fresh.
          record.lost_work = st.job->completed_work();
          record.discarded_cycles =
              st.trace.total_allotted() + rounded_cycles(st);
          log.allotted_cycles += rounded_cycles(st);
          st.job = st.job->fresh_clone();
          st.trace.quanta.clear();
        }
        if (config.faults->policy_on_restart ==
            fault::PolicyOnRestart::kReset) {
          st.request->reset();
          st.resumed = false;
        } else {
          st.resumed = true;  // re-admission keeps the preserved desire
        }
        log.crashes.push_back(record);
        log.lost_work += record.lost_work;
        log.discarded_cycles += record.discarded_cycles;
        st.active = false;
        st.allotment = 0;
        st.eligible_step = now + 1 + config.faults->restart_delay;
        partition_dirty = true;
      }
    }

    // Admission, FCFS by eligible (release or post-crash restart) step.
    std::size_t active_count = 0;
    for (const AsyncJobState& st : states) {
      active_count += st.active ? 1u : 0u;
    }
    while (active_count < max_active) {
      std::size_t best = states.size();
      for (std::size_t i = 0; i < states.size(); ++i) {
        const AsyncJobState& st = states[i];
        if (st.done || st.active || st.eligible_step > now) {
          continue;
        }
        if (best == states.size() ||
            st.eligible_step < states[best].eligible_step) {
          best = i;
        }
      }
      if (best == states.size()) {
        break;
      }
      AsyncJobState& st = states[best];
      st.active = true;
      if (st.resumed) {
        st.resumed = false;  // keep the preserved desire
      } else {
        st.desire = st.request->first_request();
      }
      // Continues the trace after a checkpoint crash; 1 on first
      // admission and after a from-scratch restart.
      st.local_quantum =
          static_cast<std::int64_t>(st.trace.quanta.size()) + 1;
      st.quantum_start = now;
      st.quantum_elapsed = 0;
      st.work_before = st.job->completed_work();
      st.progress_before = st.job->level_progress();
      st.held_cycles = 0;
      st.idle_cycles = 0;
      st.idle_steps = 0;
      partition_dirty = true;
      ++active_count;
    }

    if (active_count == 0) {
      // Idle-skip to the next eligibility boundary.
      dag::Steps next_release = max_steps;
      for (const AsyncJobState& st : states) {
        if (!st.done) {
          next_release = std::min(next_release, st.eligible_step);
        }
      }
      now = std::max(now + 1, next_release);
      if (now >= max_steps) {
        throw std::runtime_error("simulate_job_set_async: step bound hit");
      }
      continue;
    }

    // Re-partition on any event.
    if (partition_dirty) {
      std::vector<int> requests(states.size(), 0);
      for (std::size_t i = 0; i < states.size(); ++i) {
        if (states[i].active) {
          requests[i] = states[i].desire;
        }
      }
      const std::vector<int> allotments =
          machine.allocate(requests, config.processors);
      for (std::size_t i = 0; i < states.size(); ++i) {
        if (states[i].active) {
          states[i].allotment = allotments[i];
        }
      }
      partition_dirty = false;
    }

    // One unit step for every active job.
    for (AsyncJobState& st : states) {
      if (!st.active) {
        continue;
      }
      const dag::TaskCount done =
          st.job->step(st.allotment, execution.order());
      ++st.quantum_elapsed;
      st.held_cycles += st.allotment;
      st.idle_cycles += static_cast<dag::TaskCount>(st.allotment) - done;
      if (done == 0) {
        ++st.idle_steps;
      }
    }
    ++now;
    ++result.quanta;  // counts unit steps of engine activity

    // Post-step events: completions and quantum boundaries.
    for (AsyncJobState& st : states) {
      if (!st.active) {
        continue;
      }
      if (st.job->finished()) {
        finalize_quantum(st, /*finished=*/true);
        st.trace.completion_step = now;
        st.active = false;
        st.done = true;
        --remaining;
        partition_dirty = true;
        continue;
      }
      if (st.quantum_elapsed == config.quantum_length) {
        finalize_quantum(st, /*finished=*/false);
        st.desire = st.request->next_request(st.trace.quanta.back());
        ++st.local_quantum;
        st.quantum_start = now;
        st.quantum_elapsed = 0;
        st.work_before = st.job->completed_work();
        st.progress_before = st.job->level_progress();
        st.held_cycles = 0;
        st.idle_cycles = 0;
        st.idle_steps = 0;
        partition_dirty = true;
      }
    }

    if (remaining > 0 && now >= max_steps) {
      throw std::runtime_error(
          "simulate_job_set_async: exceeded step bound");
    }
  }

  double response_sum = 0.0;
  for (AsyncJobState& st : states) {
    result.makespan = std::max(result.makespan, st.trace.completion_step);
    response_sum += static_cast<double>(st.trace.response_time());
    // Consistent with the per-quantum stats (which round the held
    // processor average up), so validate_result's cross-checks apply; the
    // rounding overstates waste by at most one quantum per quantum.
    result.total_waste += st.trace.total_waste();
    result.jobs.push_back(std::move(st.trace));
  }
  result.mean_response_time =
      states.empty() ? 0.0
                     : response_sum / static_cast<double>(states.size());
  return result;
}

}  // namespace abg::sim
