#include "sim/async_simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "alloc/equipartition.hpp"

namespace abg::sim {

namespace {

struct AsyncJobState {
  std::unique_ptr<dag::Job> job;
  std::unique_ptr<sched::RequestPolicy> request;
  JobTrace trace;
  int desire = 1;
  int allotment = 0;
  bool active = false;
  bool done = false;
  // Current-quantum accumulators.
  std::int64_t local_quantum = 0;
  dag::Steps quantum_elapsed = 0;
  dag::Steps quantum_start = 0;
  dag::TaskCount work_before = 0;
  double progress_before = 0.0;
  dag::TaskCount held_cycles = 0;     // Σ allotment over quantum steps
  dag::TaskCount idle_cycles = 0;     // Σ (allotment − executed) per step
  dag::Steps idle_steps = 0;
};

}  // namespace

SimResult simulate_job_set_async(std::vector<JobSubmission> submissions,
                                 const sched::ExecutionPolicy& execution,
                                 const sched::RequestPolicy& request_prototype,
                                 const SimConfig& config) {
  if (config.processors < 1) {
    throw std::invalid_argument(
        "simulate_job_set_async: processors must be >= 1");
  }
  if (config.quantum_length < 1) {
    throw std::invalid_argument(
        "simulate_job_set_async: quantum length must be >= 1");
  }
  if (config.reallocation_cost_per_proc != 0) {
    throw std::invalid_argument(
        "simulate_job_set_async: reallocation overhead is not supported");
  }

  std::vector<AsyncJobState> states;
  states.reserve(submissions.size());
  dag::TaskCount total_work = 0;
  dag::Steps latest_release = 0;
  for (auto& sub : submissions) {
    if (!sub.job) {
      throw std::invalid_argument("simulate_job_set_async: null job");
    }
    if (sub.release_step < 0) {
      throw std::invalid_argument(
          "simulate_job_set_async: negative release step");
    }
    AsyncJobState st;
    st.job = std::move(sub.job);
    st.request = request_prototype.clone();
    st.request->reset();
    st.trace.release_step = sub.release_step;
    st.trace.work = st.job->total_work();
    st.trace.critical_path = st.job->critical_path();
    total_work += st.trace.work;
    latest_release = std::max(latest_release, sub.release_step);
    if (st.job->finished()) {
      st.done = true;
      st.trace.completion_step = sub.release_step;
    }
    states.push_back(std::move(st));
  }

  const dag::Steps max_steps =
      config.max_steps > 0
          ? config.max_steps
          : latest_release + 8 * total_work + 64 * config.quantum_length;
  const std::size_t max_active =
      config.max_active_jobs > 0
          ? static_cast<std::size_t>(config.max_active_jobs)
          : static_cast<std::size_t>(config.processors);

  alloc::EquiPartition deq;
  SimResult result;
  dag::Steps now = 0;
  bool partition_dirty = true;
  std::size_t remaining = 0;
  for (const AsyncJobState& st : states) {
    remaining += st.done ? 0u : 1u;
  }

  auto finalize_quantum = [&](AsyncJobState& st, bool finished) {
    sched::QuantumStats stats;
    stats.index = st.local_quantum;
    stats.start_step = st.quantum_start;
    stats.request = st.desire;
    stats.length = config.quantum_length;
    stats.steps_used = finished ? st.quantum_elapsed : config.quantum_length;
    stats.work = st.job->completed_work() - st.work_before;
    stats.cpl = st.job->level_progress() - st.progress_before;
    stats.finished = finished;
    // Time-averaged processors held, rounded UP so work <= allotment *
    // length stays invariant; the exact waste is accumulated separately.
    stats.allotment = static_cast<int>(
        (st.held_cycles + config.quantum_length - 1) /
        config.quantum_length);
    stats.request = std::max(stats.request, stats.allotment);
    stats.available = stats.allotment;
    stats.full = !finished && st.idle_steps == 0 && stats.allotment > 0;
    st.trace.quanta.push_back(stats);
  };

  while (remaining > 0) {
    // Admission, FCFS by release step.
    std::size_t active_count = 0;
    for (const AsyncJobState& st : states) {
      active_count += st.active ? 1u : 0u;
    }
    while (active_count < max_active) {
      std::size_t best = states.size();
      for (std::size_t i = 0; i < states.size(); ++i) {
        const AsyncJobState& st = states[i];
        if (st.done || st.active || st.trace.release_step > now) {
          continue;
        }
        if (best == states.size() ||
            st.trace.release_step < states[best].trace.release_step) {
          best = i;
        }
      }
      if (best == states.size()) {
        break;
      }
      AsyncJobState& st = states[best];
      st.active = true;
      st.desire = st.request->first_request();
      st.local_quantum = 1;
      st.quantum_start = now;
      st.quantum_elapsed = 0;
      st.work_before = st.job->completed_work();
      st.progress_before = st.job->level_progress();
      st.held_cycles = 0;
      st.idle_cycles = 0;
      st.idle_steps = 0;
      partition_dirty = true;
      ++active_count;
    }

    if (active_count == 0) {
      // Idle-skip to the next release.
      dag::Steps next_release = max_steps;
      for (const AsyncJobState& st : states) {
        if (!st.done) {
          next_release = std::min(next_release, st.trace.release_step);
        }
      }
      now = std::max(now + 1, next_release);
      if (now >= max_steps) {
        throw std::runtime_error("simulate_job_set_async: step bound hit");
      }
      continue;
    }

    // Re-partition on any event.
    if (partition_dirty) {
      std::vector<int> requests(states.size(), 0);
      for (std::size_t i = 0; i < states.size(); ++i) {
        if (states[i].active) {
          requests[i] = states[i].desire;
        }
      }
      const std::vector<int> allotments =
          deq.allocate(requests, config.processors);
      for (std::size_t i = 0; i < states.size(); ++i) {
        if (states[i].active) {
          states[i].allotment = allotments[i];
        }
      }
      partition_dirty = false;
    }

    // One unit step for every active job.
    for (AsyncJobState& st : states) {
      if (!st.active) {
        continue;
      }
      const dag::TaskCount done =
          st.job->step(st.allotment, execution.order());
      ++st.quantum_elapsed;
      st.held_cycles += st.allotment;
      st.idle_cycles += static_cast<dag::TaskCount>(st.allotment) - done;
      if (done == 0) {
        ++st.idle_steps;
      }
    }
    ++now;
    ++result.quanta;  // counts unit steps of engine activity

    // Post-step events: completions and quantum boundaries.
    for (AsyncJobState& st : states) {
      if (!st.active) {
        continue;
      }
      if (st.job->finished()) {
        finalize_quantum(st, /*finished=*/true);
        st.trace.completion_step = now;
        st.active = false;
        st.done = true;
        --remaining;
        partition_dirty = true;
        continue;
      }
      if (st.quantum_elapsed == config.quantum_length) {
        finalize_quantum(st, /*finished=*/false);
        st.desire = st.request->next_request(st.trace.quanta.back());
        ++st.local_quantum;
        st.quantum_start = now;
        st.quantum_elapsed = 0;
        st.work_before = st.job->completed_work();
        st.progress_before = st.job->level_progress();
        st.held_cycles = 0;
        st.idle_cycles = 0;
        st.idle_steps = 0;
        partition_dirty = true;
      }
    }

    if (remaining > 0 && now >= max_steps) {
      throw std::runtime_error(
          "simulate_job_set_async: exceeded step bound");
    }
  }

  double response_sum = 0.0;
  for (AsyncJobState& st : states) {
    result.makespan = std::max(result.makespan, st.trace.completion_step);
    response_sum += static_cast<double>(st.trace.response_time());
    // Consistent with the per-quantum stats (which round the held
    // processor average up), so validate_result's cross-checks apply; the
    // rounding overstates waste by at most one quantum per quantum.
    result.total_waste += st.trace.total_waste();
    result.jobs.push_back(std::move(st.trace));
  }
  result.mean_response_time =
      states.empty() ? 0.0
                     : response_sum / static_cast<double>(states.size());
  return result;
}

}  // namespace abg::sim
