#include "sim/quantum_engine.hpp"

#include <algorithm>
#include <stdexcept>

namespace abg::sim {

namespace {

dag::Steps default_step_bound(const dag::Job& job,
                              const SingleJobConfig& config,
                              dag::Steps max_quantum) {
  // A job always making progress on >= 1 processor needs at most T1 steps;
  // add slack for quantum rounding and pathological feedback.
  const dag::Steps slack = std::max(config.quantum_length, max_quantum);
  const dag::Steps work_bound = 4 * job.total_work() + 8 * slack;
  return std::max<dag::Steps>(work_bound, 64 * slack);
}

}  // namespace

dag::Steps reallocation_penalty(int previous_allotment, int allotment,
                                dag::Steps cost_per_proc,
                                dag::Steps quantum_length) {
  if (cost_per_proc <= 0) {
    return 0;
  }
  const auto delta = static_cast<dag::Steps>(
      allotment > previous_allotment ? allotment - previous_allotment
                                     : previous_allotment - allotment);
  return std::min(quantum_length, cost_per_proc * delta);
}

JobTrace run_single_job(dag::Job& job, const sched::ExecutionPolicy& execution,
                        sched::RequestPolicy& request,
                        alloc::Allocator& allocator,
                        const SingleJobConfig& config) {
  sched::FixedQuantumLength fixed(
      config.quantum_length >= 1 ? config.quantum_length : 1);
  return run_single_job(job, execution, request, fixed, allocator, config);
}

JobTrace run_single_job(dag::Job& job, const sched::ExecutionPolicy& execution,
                        sched::RequestPolicy& request,
                        sched::QuantumLengthPolicy& quantum_length,
                        alloc::Allocator& allocator,
                        const SingleJobConfig& config) {
  if (config.processors < 1) {
    throw std::invalid_argument("run_single_job: processors must be >= 1");
  }
  if (config.quantum_length < 1) {
    throw std::invalid_argument(
        "run_single_job: quantum length must be >= 1");
  }
  request.reset();
  quantum_length.reset();

  JobTrace trace;
  trace.work = job.total_work();
  trace.critical_path = job.critical_path();
  if (job.finished()) {
    trace.completion_step = 0;
    return trace;
  }

  dag::Steps length = quantum_length.initial_length();
  const dag::Steps max_steps =
      config.max_steps > 0
          ? config.max_steps
          : default_step_bound(job, config, length);
  int desire = request.first_request();
  int previous_allotment = 0;
  dag::Steps now = 0;
  std::int64_t q = 0;
  while (!job.finished()) {
    ++q;
    const int pool = allocator.pool(config.processors);
    const std::vector<int> allotments =
        allocator.allocate({desire}, config.processors);
    const int allotment = allotments.at(0);
    // Migration penalty: the quantum's first `penalty` steps do no work.
    const dag::Steps penalty = reallocation_penalty(
        previous_allotment, allotment, config.reallocation_cost_per_proc,
        length);
    previous_allotment = allotment;
    sched::QuantumStats stats;
    if (penalty < length) {
      stats = execution.run_quantum(job, q, desire, allotment,
                                    length - penalty);
    } else {
      stats.index = q;
      stats.request = desire;
      stats.allotment = allotment;
      stats.finished = job.finished();
    }
    stats.length = length;
    stats.steps_used += penalty;
    if (penalty > 0) {
      stats.full = false;  // the migration steps did no work
    }
    stats.available = allotment + std::max(0, pool - allotment);
    stats.start_step = now;
    trace.quanta.push_back(stats);
    if (stats.finished) {
      trace.completion_step = now + stats.steps_used;
    }
    now += length;
    if (!job.finished()) {
      if (now >= max_steps) {
        throw std::runtime_error(
            "run_single_job: exceeded step bound; feedback loop is not "
            "making progress");
      }
      desire = request.next_request(stats);
      length = quantum_length.next_length(stats);
      if (length < 1) {
        throw std::logic_error(
            "run_single_job: quantum-length policy returned length < 1");
      }
    }
  }
  return trace;
}

}  // namespace abg::sim
