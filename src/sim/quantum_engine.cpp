#include "sim/quantum_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "sim/engine_core.hpp"
#include "sim/job_runtime.hpp"

namespace abg::sim {

namespace {

dag::Steps default_step_bound(const dag::Job& job,
                              const SingleJobConfig& config,
                              dag::Steps max_quantum) {
  // A job always making progress on >= 1 processor needs at most T1 steps;
  // add slack for quantum rounding and pathological feedback.
  const dag::Steps slack = std::max(config.quantum_length, max_quantum);
  const dag::Steps work_bound = 4 * job.total_work() + 8 * slack;
  return std::max<dag::Steps>(work_bound, 64 * slack);
}

}  // namespace

dag::Steps reallocation_penalty(int previous_allotment, int allotment,
                                dag::Steps cost_per_proc,
                                dag::Steps quantum_length) {
  if (cost_per_proc <= 0) {
    return 0;
  }
  const auto delta = static_cast<dag::Steps>(
      allotment > previous_allotment ? allotment - previous_allotment
                                     : previous_allotment - allotment);
  return std::min(quantum_length, cost_per_proc * delta);
}

JobTrace run_single_job(dag::Job& job, const sched::ExecutionPolicy& execution,
                        sched::RequestPolicy& request,
                        alloc::Allocator& allocator,
                        const SingleJobConfig& config) {
  sched::FixedQuantumLength fixed(
      config.quantum_length >= 1 ? config.quantum_length : 1);
  return run_single_job(job, execution, request, fixed, allocator, config);
}

JobTrace run_single_job(dag::Job& job, const sched::ExecutionPolicy& execution,
                        sched::RequestPolicy& request,
                        sched::QuantumLengthPolicy& quantum_length,
                        alloc::Allocator& allocator,
                        const SingleJobConfig& config) {
  if (config.processors < 1) {
    throw std::invalid_argument("run_single_job: processors must be >= 1");
  }
  if (config.quantum_length < 1) {
    throw std::invalid_argument(
        "run_single_job: quantum length must be >= 1");
  }
  request.reset();
  quantum_length.reset();

  if (job.finished()) {  // zero-work job
    JobTrace trace;
    trace.work = job.total_work();
    trace.critical_path = job.critical_path();
    trace.completion_step = 0;
    return trace;
  }

  const dag::Steps initial_length = quantum_length.initial_length();
  if (initial_length < 1) {
    throw std::logic_error(
        "run_single_job: quantum-length policy returned length < 1");
  }
  dag::Steps max_steps = config.max_steps > 0
                             ? config.max_steps
                             : default_step_bound(job, config, initial_length);
  const bool faulty = config.faults != nullptr && !config.faults->empty();
  if (faulty && config.max_steps == 0) {
    max_steps += fault_bound_slack(
        *config.faults, job.total_work(),
        std::max(config.quantum_length, initial_length));
  }

  // A job set of one over the unified core: the caller's job and request
  // policy are borrowed (no owning pointers), the allocator is used as-is.
  JobBatch batch;
  {
    JobRuntime st;
    st.job = &job;
    st.request = &request;
    st.trace.work = job.total_work();
    st.trace.critical_path = job.critical_path();
    batch.append(std::move(st));
  }
  IntakeTotals totals;
  totals.total_work = batch.jobs.front().trace.work;
  totals.latest_release = 0;
  totals.remaining = 1;

  CoreConfig core;
  core.context = "run_single_job";
  core.processors = config.processors;
  core.quantum_length = initial_length;
  core.max_steps = max_steps;
  core.max_active = 1;
  core.reallocation_cost_per_proc = config.reallocation_cost_per_proc;
  core.faults = config.faults;
  core.quantum_length_policy = &quantum_length;
  core.stall_reason = "feedback loop is not making progress";
  core.bus = config.obs.event_bus;
  SimResult result = run_global_quanta(batch, totals, execution, allocator,
                                       core);
  if (config.fault_log_out != nullptr) {
    *config.fault_log_out = std::move(result.fault_log);
  }
  return std::move(result.jobs.front());
}

}  // namespace abg::sim
