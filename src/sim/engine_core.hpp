// Unified event-driven simulation core.
//
// One engine, two boundary policies.  Every simulation entry point in this
// library — run_single_job (Figures 1/4/5), simulate_job_set (synchronous
// global quanta, Figure 6) and simulate_job_set_async (per-job quantum
// boundaries) — is a thin wrapper that validates its inputs, resolves its
// safety bound, and hands a vector of JobRuntime states to one of two loop
// drivers here:
//
//   * run_global_quanta — all jobs share quantum boundaries.  Per
//     boundary: consume fault window, admit FCFS up to the cap, allocate
//     once for everyone, run each active job a whole quantum (charging
//     reallocation penalties against the quantum), feed completed stats
//     back to the request policies, and let the optional quantum-length
//     policy pick the next boundary.  A job set of one with the machine
//     allocator *is* the single-job engine.
//
//   * run_per_job_quanta — each job's quanta are counted from its own
//     admission; the machine is re-partitioned over the active jobs'
//     requests whenever any event occurs (admission, boundary, completion,
//     capacity change), so allotments can change mid-quantum and the
//     recorded per-quantum allotment is a rounded time average.  Between
//     events the system evolves deterministically at fixed allotments, so
//     the driver plans the distance to the next event (quantum boundary,
//     completion, admission eligibility, step bound) and advances all
//     active jobs by that stride in closed form (sim/quantum_eval.hpp) —
//     O(events + phase transitions) instead of O(steps) — falling back to
//     unit steps under fault plans and for jobs without a phase view.
//     Reallocation penalties are charged as *migration debt*: each
//     repartition that moves a job's processors adds cost·|Δa| pending
//     migration steps (capped at the quantum length) during which the job
//     holds its allotment but executes nothing — the unit-step realization
//     of the synchronous engine's up-front penalty.
//
// Both drivers share the machinery the three engines used to duplicate:
// FCFS admission with the max_active cap, fault-plan application
// (checkpoint/scratch crash recovery, preserve/reset policy state,
// capacity churn via FaultyAllocator), per-quantum accounting
// (T1(q), T∞(q), waste, availability) and JobTrace/QuantumStats emission.
//
// Regression contract: with the features a wrapper historically exposed,
// the refactored wrappers produce byte-identical traces, metrics and
// exception messages.  Error strings are assembled from `context` so each
// entry point keeps its historic prefix.
#pragma once

#include <vector>

#include "alloc/allocator.hpp"
#include "fault/fault_plan.hpp"
#include "sched/execution_policy.hpp"
#include "sched/quantum_length.hpp"
#include "sim/job_runtime.hpp"
#include "sim/simulator.hpp"

namespace abg::obs {
class EventBus;
}  // namespace abg::obs

namespace abg::sim {

/// Resolved configuration handed to a loop driver.  Wrappers translate
/// their public config structs into this: bounds resolved (> 0), caps
/// resolved, message prefix fixed.
struct CoreConfig {
  /// Message prefix for exceptions ("simulate_job_set", ...).
  const char* context = "engine_core";
  /// Machine size P.
  int processors = 0;
  /// Fixed quantum length — or, when `quantum_length_policy` is set, the
  /// already-resolved initial length (the core never re-queries
  /// initial_length()).
  dag::Steps quantum_length = 0;
  /// Resolved safety bound on simulated steps (> 0).
  dag::Steps max_steps = 0;
  /// Resolved admission cap (> 0).
  std::size_t max_active = 0;
  /// Reallocation overhead per moved processor (0 = overhead-free).
  dag::Steps reallocation_cost_per_proc = 0;
  /// Optional fault plan; null or empty is a strict no-op.
  const fault::FaultPlan* faults = nullptr;
  /// Optional quantum-length policy.  Global driver: consulted once per
  /// global boundary (with the sole job's stats when exactly one job ran
  /// the quantum — the single-job feedback loop — or machine-aggregated
  /// stats otherwise).  Per-job driver: cloned per job, consulted at that
  /// job's own boundaries.  Must outlive the run; reset by the wrapper.
  sched::QuantumLengthPolicy* quantum_length_policy = nullptr;
  /// Suffix of the stalled-progress error, after "<context>: exceeded
  /// step bound; " (the historic messages differ per entry point).
  const char* stall_reason = "scheduling is not making progress";
  /// Optional observability bus.  Null (or a bus with no sinks) keeps the
  /// engine on the exact pre-observability code path: each hook site pays
  /// one pointer test and nothing else.  Sinks observe; they cannot
  /// influence the run.
  obs::EventBus* bus = nullptr;
  /// Optional cooperative cancellation token, polled at the top of every
  /// boundary iteration.  A cancelled run throws util::CancelledError.
  /// Null — the default — costs one pointer test per boundary.
  const util::CancelToken* cancel = nullptr;
  /// Per-job driver only: advance in closed-form strides between events
  /// (sim/quantum_eval.hpp) instead of unit steps.  Outputs are identical
  /// either way — the differential tests pin it — so false exists as the
  /// reference mode for those tests and for debugging, not as a feature
  /// switch.  Fault plans force unit steps regardless.
  bool skip_ahead = true;
};

/// Drives `batch` to completion with global synchronous quantum
/// boundaries.  The allocator is used as-is (wrappers decide whether to
/// reset it).
SimResult run_global_quanta(JobBatch& batch, const IntakeTotals& totals,
                            const sched::ExecutionPolicy& execution,
                            alloc::Allocator& allocator,
                            const CoreConfig& config);

/// Drives `batch` to completion with per-job quantum boundaries and
/// repartition-on-every-event.  Time advances in planned strides: between
/// events (boundaries, completions, admissions, repartitions) the system
/// is closed-form for phase-structured jobs, so the driver jumps whole
/// event-free spans at once (config.skip_ahead) and falls back to unit
/// steps under faults or for jobs without a phase view.  Sets
/// SimResult::averaged_allotments; `SimResult::quanta` counts unit steps
/// of engine activity (identical under either advance mode).
SimResult run_per_job_quanta(JobBatch& batch, const IntakeTotals& totals,
                             const sched::ExecutionPolicy& execution,
                             alloc::Allocator& allocator,
                             const CoreConfig& config);

/// Extra steps to add to a derived (config.max_steps == 0) safety bound
/// when a non-empty fault plan is attached: crashes redo work and outages
/// stall progress, so the bound widens by the work each crash can force to
/// be repeated, a window per event, and the plan's own horizon.
dag::Steps fault_bound_slack(const fault::FaultPlan& plan,
                             dag::TaskCount total_work,
                             dag::Steps quantum_length);

}  // namespace abg::sim
