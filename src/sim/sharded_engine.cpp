#include "sim/sharded_engine.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "exp/thread_pool.hpp"
#include "hier/desire_aggregator.hpp"
#include "hier/hierarchical_allocator.hpp"
#include "obs/event_bus.hpp"
#include "obs/profile.hpp"
#include "sim/engine_core.hpp"
#include "sim/job_runtime.hpp"
#include "sim/lpt_pack.hpp"
#include "sim/quantum_engine.hpp"
#include "sim/quantum_eval.hpp"

namespace abg::sim {

namespace {

constexpr const char* kContext = "simulate_job_set_sharded";

/// Run-wide constants shared by every group loop (read-only during an
/// epoch, so group tasks can touch them without synchronization).
struct SharedConfig {
  const sched::ExecutionPolicy* execution = nullptr;
  dag::Steps length = 0;
  dag::Steps max_steps = 0;
  std::size_t max_active = 0;
  dag::Steps reallocation_cost_per_proc = 0;
};

/// One allocation group: its members' runtime states, its own allocator,
/// and a re-entrant quantum loop the coordinator advances epoch by epoch.
struct GroupEngine {
  JobBatch batch;
  /// Original submission index of batch slot k (for deterministic merge).
  std::vector<std::size_t> original;
  std::unique_ptr<alloc::Allocator> allocator;
  std::size_t remaining = 0;
  dag::Steps now = 0;
  std::int64_t quanta = 0;
  dag::TaskCount executed_work = 0;
  dag::TaskCount allotted_cycles = 0;

  // Scratch buffers reused across quanta.
  std::vector<std::size_t> active_idx;
  std::vector<int> requests;
  std::vector<std::size_t> feedback;

  /// Aggregated desire of the group for the epoch ending at `horizon`:
  /// the live desires of its active jobs plus one processor per queued
  /// job that becomes eligible inside the epoch (its real desire is
  /// unknown until admission; one is the conservative floor).
  int aggregated_desire(dag::Steps horizon) const {
    int desire = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch.done(i)) {
        continue;
      }
      if (batch.active(i)) {
        desire += batch.desire[i];
      } else if (batch.eligible_step[i] < horizon) {
        desire += 1;
      }
    }
    return desire;
  }

  /// Runs the group's quantum loop until the epoch boundary, the group's
  /// completion, or the step bound.  The body replicates the fault-free
  /// synchronous loop of engine_core.cpp against `budget` processors, so
  /// the 1-group trace is byte-identical to the flat engine's.
  void advance(dag::Steps epoch_end, int budget, const SharedConfig& shared) {
    const dag::Steps length = shared.length;
    while (remaining > 0 && now < epoch_end) {
      active_idx.clear();
      std::size_t active_count = batch.active_count();
      while (active_count < shared.max_active) {
        const std::size_t best = batch.next_admission(now);
        if (best == batch.size()) {
          break;
        }
        batch.regime[best] = JobRegime::kActive;
        batch.desire[best] = batch.jobs[best].request->first_request();
        ++active_count;
      }
      requests.assign(batch.size(), 0);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (batch.active(i)) {
          active_idx.push_back(i);
          requests[i] = batch.desire[i];
        }
      }

      if (active_idx.empty()) {
        // All remaining jobs of this group are eligible in the future:
        // idle to the next eligibility boundary (possibly overshooting
        // the epoch — boundaries stay aligned since epochs are whole
        // quanta, and the coordinator simply skips the group until the
        // epoch clock catches up).
        const dag::Steps gap =
            batch.next_eligible_step(shared.max_steps) - now;
        const dag::Steps quanta_to_skip =
            std::max<dag::Steps>(1, gap / length);
        now += quanta_to_skip * length;
        if (now >= shared.max_steps) {
          throw std::runtime_error(std::string(kContext) +
                                   ": exceeded step bound");
        }
        continue;
      }

      ++quanta;
      const int pool = allocator->pool(budget);
      const std::vector<int> allotments =
          allocator->allocate(requests, budget);
      int assigned = 0;
      for (const int a : allotments) {
        assigned += a;
      }
      const int leftover = std::max(0, pool - assigned);

      feedback.clear();
      for (const std::size_t i : active_idx) {
        JobRuntime& st = batch.jobs[i];
        const int allotment = allotments[i];
        ++st.local_quantum;
        const dag::Steps penalty = reallocation_penalty(
            batch.previous_allotment[i], allotment,
            shared.reallocation_cost_per_proc, length);
        batch.previous_allotment[i] = allotment;
        const sched::QuantumStats stats = quantum_eval::run_allotted_quantum(
            *st.job, *shared.execution, st.local_quantum, batch.desire[i],
            allotment, length, penalty, leftover, now);
        st.trace.quanta.push_back(stats);
        executed_work += stats.work;
        allotted_cycles += static_cast<dag::TaskCount>(allotment) *
                           static_cast<dag::TaskCount>(length);
        if (stats.finished) {
          st.trace.completion_step = now + stats.steps_used;
          batch.regime[i] = JobRegime::kDone;
          --remaining;
        } else {
          feedback.push_back(i);
        }
      }

      now += length;
      if (remaining > 0 && now >= shared.max_steps) {
        throw std::runtime_error(std::string(kContext) +
                                 ": exceeded step bound; scheduling is not "
                                 "making progress");
      }
      for (const std::size_t i : feedback) {
        JobRuntime& st = batch.jobs[i];
        batch.desire[i] = st.request->next_request(st.trace.quanta.back());
      }
    }
  }
};

}  // namespace

SimResult simulate_job_set_sharded(
    std::vector<JobSubmission> submissions,
    const sched::ExecutionPolicy& execution,
    const sched::RequestPolicy& request_prototype,
    alloc::Allocator& allocator, const SimConfig& config) {
  if (config.processors < 1) {
    throw std::invalid_argument(std::string(kContext) +
                                ": processors must be >= 1");
  }
  if (config.quantum_length < 1) {
    throw std::invalid_argument(std::string(kContext) +
                                ": quantum length must be >= 1");
  }
  if (config.hier.groups < 1) {
    throw std::invalid_argument(std::string(kContext) +
                                ": hier groups must be >= 1");
  }
  if (config.hier.rebalance_quanta < 1) {
    throw std::invalid_argument(std::string(kContext) +
                                ": hier rebalance epoch must be >= 1 quanta");
  }
  if (config.engine == EngineKind::kAsync) {
    throw std::invalid_argument(
        std::string(kContext) +
        ": hierarchical allocation requires the sync boundary model");
  }
  if (config.faults != nullptr && !config.faults->empty()) {
    throw std::invalid_argument(
        std::string(kContext) +
        ": fault plans are not supported with hierarchical allocation");
  }
  if (config.quantum_length_policy != nullptr) {
    throw std::invalid_argument(
        std::string(kContext) +
        ": quantum-length policies are not supported with hierarchical "
        "allocation");
  }
  allocator.reset();

  const auto group_count = static_cast<std::size_t>(config.hier.groups);
  const std::size_t n = submissions.size();

  // Partition submissions into groups, remembering original indices.
  std::vector<std::vector<JobSubmission>> group_submissions(group_count);
  std::vector<GroupEngine> groups(group_count);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t g = hier::group_of(i, group_count);
    group_submissions[g].push_back(std::move(submissions[i]));
    groups[g].original.push_back(i);
  }

  // Per-group intake; the safety bound uses the *global* totals so the
  // 1-group bound matches the flat engine's formula bit for bit.
  IntakeTotals totals;
  std::size_t total_remaining = 0;
  for (std::size_t g = 0; g < group_count; ++g) {
    IntakeTotals group_totals;
    groups[g].batch = intake_submissions(std::move(group_submissions[g]),
                                         request_prototype, kContext,
                                         group_totals);
    groups[g].remaining = group_totals.remaining;
    totals.total_work += group_totals.total_work;
    totals.latest_release =
        std::max(totals.latest_release, group_totals.latest_release);
    totals.remaining += group_totals.remaining;
    total_remaining += group_totals.remaining;
  }

  SharedConfig shared;
  shared.execution = &execution;
  shared.length = config.quantum_length;
  shared.max_steps = config.max_steps > 0
                         ? config.max_steps
                         : totals.latest_release + 8 * totals.total_work +
                               64 * config.quantum_length;
  // The admission cap applies per group (each group runs its own FCFS
  // queue); the flat default — cap P — is preserved at one group.
  shared.max_active = config.max_active_jobs > 0
                          ? static_cast<std::size_t>(config.max_active_jobs)
                          : static_cast<std::size_t>(config.processors);
  shared.reallocation_cost_per_proc = config.reallocation_cost_per_proc;

  // The tree: a root clone for the aggregator plus one allocator clone
  // per group — of the named group allocator, or of the machine allocator
  // (which is what makes 1 group ≡ flat under the same allocator).
  const auto make_level = [&]() -> std::unique_ptr<alloc::Allocator> {
    if (config.hier.allocator.empty()) {
      return allocator.clone();
    }
    return hier::make_group_allocator(config.hier.allocator);
  };
  hier::DesireAggregator aggregator(config.hier.groups, make_level());
  for (GroupEngine& group : groups) {
    group.allocator = make_level();
    group.allocator->reset();
  }

  // Observability: coordinator-thread publishing only (the bus is
  // unsynchronized; group loops must not touch it).
  obs::EventBus* bus = config.obs.event_bus != nullptr &&
                               config.obs.event_bus->active()
                           ? config.obs.event_bus
                           : nullptr;
  if (bus != nullptr) {
    obs::Event start;
    start.kind = obs::EventKind::kRunStart;
    start.processors = config.processors;
    start.quantum_length = config.quantum_length;
    start.job_count = static_cast<std::int64_t>(n);
    bus->publish(start);
    // One submit event per job, in original submission order.
    std::vector<const JobTrace*> traces(n, nullptr);
    for (const GroupEngine& group : groups) {
      for (std::size_t k = 0; k < group.batch.size(); ++k) {
        traces[group.original[k]] = &group.batch.jobs[k].trace;
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      obs::Event e;
      e.kind = obs::EventKind::kJobSubmit;
      e.step = traces[i]->release_step;
      e.job = static_cast<std::int64_t>(i);
      e.work = traces[i]->work;
      e.critical_path = traces[i]->critical_path;
      bus->publish(e);
    }
  }

  exp::ThreadPool pool(exp::ThreadPool::resolve_threads(config.hier.threads));
  const dag::Steps epoch_length =
      config.hier.rebalance_quanta * config.quantum_length;
  dag::Steps epoch_start = 0;
  std::vector<int> desires(group_count, 0);
  std::vector<std::size_t> weights(group_count, 0);

  while (total_remaining > 0) {
    if (config.cancel != nullptr && config.cancel->cancelled()) {
      throw util::CancelledError(
          std::string(kContext) + ": run cancelled (" +
              util::to_string(config.cancel->cause()) + ")",
          config.cancel->cause());
    }
    const dag::Steps epoch_end = epoch_start + epoch_length;
    std::vector<int> budgets;
    {
      // Desire aggregation + root split, timed as the coordination cost of
      // the epoch (the serial section between parallel group phases).
      std::optional<obs::Profiler::Scope> scope;
      if (config.hier.profiler != nullptr) {
        scope.emplace(config.hier.profiler, "hier.rebalance", 1);
      }
      for (std::size_t g = 0; g < group_count; ++g) {
        desires[g] = groups[g].aggregated_desire(epoch_end);
      }
      budgets = aggregator.split(desires, config.processors);
    }
    if (bus != nullptr) {
      obs::Event e;
      e.kind = obs::EventKind::kHierRebalance;
      e.step = epoch_start;
      e.hier_groups = config.hier.groups;
      e.pool = config.processors;
      for (const int b : budgets) {
        e.assigned += b;
      }
      for (const int d : desires) {
        e.desire += d;
      }
      for (const GroupEngine& group : groups) {
        if (group.remaining > 0) {
          ++e.active_jobs;  // live groups this epoch
        }
      }
      bus->publish(e);
    }

    // Longest-first group→worker packing (active jobs as the size
    // estimate): heterogeneous groups start their stragglers first so the
    // short groups pack around them instead of idling the pool at the
    // barrier.  Order only affects wall-clock, never results.
    for (std::size_t g = 0; g < group_count; ++g) {
      weights[g] = groups[g].remaining;
    }
    for (const std::size_t g : lpt_order(weights)) {
      GroupEngine& group = groups[g];
      if (group.remaining == 0 || group.now >= epoch_end) {
        continue;  // finished, or idle-skipped past this epoch
      }
      const int budget = budgets[g];
      pool.submit(
          [&group, epoch_end, budget, &shared] {
            group.advance(epoch_end, budget, shared);
          });
    }
    pool.wait();  // barrier: rethrows the first group exception

    total_remaining = 0;
    for (const GroupEngine& group : groups) {
      total_remaining += group.remaining;
    }
    epoch_start = epoch_end;
  }

  if (config.hier.worker_busy_seconds != nullptr) {
    *config.hier.worker_busy_seconds = pool.worker_busy_seconds();
  }

  // Deterministic merge: traces by original submission index, aggregate
  // metrics exactly as engine_core's aggregate_result derives them.
  SimResult result;
  result.jobs.resize(n);
  double response_sum = 0.0;
  for (GroupEngine& group : groups) {
    result.quanta += group.quanta;
    for (std::size_t k = 0; k < group.batch.size(); ++k) {
      JobTrace& trace = group.batch.jobs[k].trace;
      result.makespan = std::max(result.makespan, trace.completion_step);
      response_sum += static_cast<double>(trace.response_time());
      result.total_waste += trace.total_waste();
      result.jobs[group.original[k]] = std::move(trace);
    }
  }
  result.mean_response_time =
      n == 0 ? 0.0 : response_sum / static_cast<double>(n);

  if (bus != nullptr) {
    // Replay the per-quantum stream from the coordinator.  The group loops
    // must not publish concurrently (the bus is unsynchronized), but after
    // the final barrier the merged traces are complete, so sinks receive
    // the same per-job quantum records the flat engine emits live — just
    // grouped by job instead of interleaved by step.
    for (std::size_t j = 0; j < result.jobs.size(); ++j) {
      const JobTrace& trace = result.jobs[j];
      for (const sched::QuantumStats& stats : trace.quanta) {
        obs::Event e;
        e.kind = obs::EventKind::kQuantum;
        e.step = stats.start_step;
        e.job = static_cast<std::int64_t>(j);
        e.stats = &stats;
        bus->publish(e);
      }
      obs::Event done;
      done.kind = obs::EventKind::kJobComplete;
      done.step = trace.completion_step;
      done.job = static_cast<std::int64_t>(j);
      bus->publish(done);
    }
    for (std::size_t g = 0; g < group_count; ++g) {
      obs::Event e;
      e.kind = obs::EventKind::kHierGroupSummary;
      e.step = groups[g].now;
      e.job = static_cast<std::int64_t>(g);
      e.hier_groups = config.hier.groups;
      e.work = groups[g].executed_work;
      e.allotted_cycles = groups[g].allotted_cycles;
      e.active_jobs = static_cast<std::int64_t>(groups[g].batch.size());
      bus->publish(e);
    }
    obs::Event end;
    end.kind = obs::EventKind::kRunEnd;
    end.step = result.makespan;
    end.makespan = result.makespan;
    bus->publish(end);
  }
  return result;
}

}  // namespace abg::sim
