// Sharded set engine: the hierarchical tree driven on worker threads.
//
// Jobs are partitioned into allocation groups (submission index mod
// groups); each group runs its own synchronous quantum loop — admission,
// group-allocator water-fill over its budget, per-job execution, feedback —
// exactly the fault-free sync loop of engine_core.cpp, but against the
// group's budget instead of the whole machine.  A coordinator advances the
// run in *rebalance epochs* of `hier.rebalance_quanta` quanta: it rolls
// the groups' desires up, splits the machine over them (DesireAggregator),
// dispatches every live group's epoch onto an exp::ThreadPool, and
// barriers before the next split.
//
// Determinism is the same discipline as the sweep runner: each group's
// loop touches only its own state, budgets are computed single-threaded
// between barriers, and results merge by submission index — so output is
// byte-identical at any `hier.threads`.  With one group the budget is
// always the whole machine and the trace is byte-identical to flat
// simulate_job_set under the same allocator (the golden-fixture contract).
//
// Scope: sync boundary model only; no fault plan, no quantum-length
// policy (std::invalid_argument otherwise).  Observability events are
// published from the coordinator thread only — run lifecycle, one
// kHierRebalance per epoch, per-group kHierGroupSummary records, and the
// per-quantum stream *replayed* from the merged traces after the final
// barrier (group loops run concurrently and the bus is unsynchronized,
// so they never publish live; sinks still see every quantum record,
// grouped by job instead of interleaved by step).
#pragma once

#include "sim/simulator.hpp"

namespace abg::sim {

/// Simulates the job set to completion on the hierarchical tree.  Requires
/// config.hier.groups >= 1.  `allocator` is reset and used as the
/// prototype for the root and every group when config.hier.allocator is
/// empty; otherwise that name ("deq" | "rr") is instantiated per level and
/// `allocator` is unused.
SimResult simulate_job_set_sharded(
    std::vector<JobSubmission> submissions,
    const sched::ExecutionPolicy& execution,
    const sched::RequestPolicy& request_prototype,
    alloc::Allocator& allocator, const SimConfig& config);

}  // namespace abg::sim
