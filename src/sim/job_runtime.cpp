#include "sim/job_runtime.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace abg::sim {

JobBatch intake_submissions(std::vector<JobSubmission> submissions,
                            const sched::RequestPolicy& request_prototype,
                            const char* context, IntakeTotals& totals) {
  JobBatch batch;
  batch.jobs.reserve(submissions.size());
  for (auto& sub : submissions) {
    if (!sub.job) {
      throw std::invalid_argument(std::string(context) + ": null job");
    }
    if (sub.release_step < 0) {
      throw std::invalid_argument(std::string(context) +
                                  ": negative release step");
    }
    JobRuntime st;
    st.owned_job = std::move(sub.job);
    st.job = st.owned_job.get();
    st.owned_request = request_prototype.clone();
    st.request = st.owned_request.get();
    st.request->reset();
    st.trace.release_step = sub.release_step;
    st.trace.work = st.job->total_work();
    st.trace.critical_path = st.job->critical_path();
    totals.total_work += st.trace.work;
    totals.latest_release = std::max(totals.latest_release, sub.release_step);
    const bool finished = st.job->finished();
    if (finished) {  // zero-work job
      st.trace.completion_step = sub.release_step;
    }
    const std::size_t i = batch.append(std::move(st));
    batch.eligible_step[i] = sub.release_step;
    if (finished) {
      batch.regime[i] = JobRegime::kDone;
    }
  }
  totals.remaining = static_cast<std::size_t>(
      std::count_if(batch.regime.begin(), batch.regime.end(),
                    [](JobRegime r) { return r != JobRegime::kDone; }));
  return batch;
}

}  // namespace abg::sim
