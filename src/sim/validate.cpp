#include "sim/validate.hpp"

#include <cmath>
#include <map>
#include <sstream>

namespace abg::sim {

namespace {

void check(std::vector<std::string>& issues, bool ok,
           const std::string& message) {
  if (!ok) {
    issues.push_back(message);
  }
}

std::string at_quantum(std::size_t i, const std::string& what) {
  std::ostringstream oss;
  oss << "quantum " << (i + 1) << ": " << what;
  return oss.str();
}

}  // namespace

std::vector<std::string> validate_trace(const JobTrace& trace) {
  std::vector<std::string> issues;

  dag::TaskCount total_work = 0;
  double total_cpl = 0.0;
  for (std::size_t i = 0; i < trace.quanta.size(); ++i) {
    const auto& q = trace.quanta[i];
    check(issues, q.index == static_cast<std::int64_t>(i + 1),
          at_quantum(i, "non-sequential index"));
    check(issues, q.length >= 1, at_quantum(i, "non-positive length"));
    check(issues, q.allotment >= 0 && q.allotment <= q.request,
          at_quantum(i, "allotment outside [0, request]"));
    check(issues, q.available >= q.allotment,
          at_quantum(i, "availability below allotment"));
    check(issues, q.work >= 0, at_quantum(i, "negative work"));
    check(issues,
          q.work <= static_cast<dag::TaskCount>(q.allotment) *
                        static_cast<dag::TaskCount>(q.length),
          at_quantum(i, "work exceeds allotment capacity"));
    // Note: per-quantum cpl is NOT bounded by the quantum length on
    // irregular DAGs — one step may complete tasks on several levels whose
    // sizes are small (e.g. independent branches of different depths), so
    // the fractional progress Σ 1/|level| can exceed 1 per step.  Only the
    // whole-job total is bounded (by T∞, checked below).
    check(issues, q.cpl >= -1e-9,
          at_quantum(i, "negative critical-path progress"));
    check(issues, q.steps_used >= 0 && q.steps_used <= q.length,
          at_quantum(i, "steps_used outside [0, length]"));
    check(issues, q.waste() >= 0, at_quantum(i, "negative waste"));
    check(issues, !q.full || q.steps_used == q.length,
          at_quantum(i, "full quantum with unused steps"));
    const bool is_last = i + 1 == trace.quanta.size();
    check(issues, !q.finished || is_last,
          at_quantum(i, "finished flag before the final quantum"));
    // Work implies positive cpl (completed tasks advance some level
    // fractionally).
    check(issues, q.work == 0 || q.cpl > 0.0,
          at_quantum(i, "work done without critical-path progress"));
    total_work += q.work;
    total_cpl += q.cpl;
  }

  check(issues, total_work <= trace.work,
        "total quantum work exceeds the job's T1");
  if (trace.finished()) {
    check(issues, total_work == trace.work,
          "finished job's quantum work does not sum to T1");
    check(issues,
          std::fabs(total_cpl - static_cast<double>(trace.critical_path)) <
              1e-6 * std::max<double>(1.0,
                                      static_cast<double>(
                                          trace.critical_path)),
          "finished job's quantum cpl does not sum to T_inf");
    check(issues,
          trace.quanta.empty() || trace.quanta.back().finished ||
              trace.work == 0,
          "finished trace whose last quantum is not marked finished");
    check(issues, trace.completion_step >= trace.release_step,
          "completion before release");
  }
  return issues;
}

ValidationReport validate_result_report(const SimResult& result,
                                        int processors) {
  ValidationReport report;
  std::vector<std::string>& issues = report.issues;
  if (processors < 1) {
    issues.emplace_back("processors must be >= 1");
    return report;
  }
  dag::Steps max_completion = 0;
  double response_sum = 0.0;
  dag::TaskCount waste_sum = 0;
  for (std::size_t j = 0; j < result.jobs.size(); ++j) {
    const JobTrace& t = result.jobs[j];
    for (std::string& issue : validate_trace(t)) {
      issues.push_back("job " + std::to_string(j) + ": " + issue);
    }
    if (!t.finished()) {
      issues.push_back("job " + std::to_string(j) + ": never finished");
      continue;
    }
    max_completion = std::max(max_completion, t.completion_step);
    response_sum += static_cast<double>(t.response_time());
    waste_sum += t.total_waste();
  }
  check(issues, result.makespan == max_completion,
        "makespan is not the max completion step");
  if (!result.jobs.empty()) {
    const double mean =
        response_sum / static_cast<double>(result.jobs.size());
    check(issues,
          std::fabs(result.mean_response_time - mean) <
              1e-9 * std::max(1.0, mean),
          "mean response time does not match the per-job mean");
  }
  check(issues, result.total_waste == waste_sum,
        "total waste does not match the per-job sum");

  // Machine bound at every instant, by interval sweep: each quantum holds
  // its allotment for its full length [start, start + length), so the
  // running sum of +allotment at each start and -allotment at each end
  // must never exceed P.  This handles non-uniform and unaligned quantum
  // lengths.
  if (result.averaged_allotments) {
    report.notes.emplace_back(
        "instantaneous machine-capacity checks skipped: allotments are "
        "rounded time averages (asynchronous engine)");
  } else {
    std::map<dag::Steps, int> deltas;
    for (const JobTrace& t : result.jobs) {
      for (const auto& q : t.quanta) {
        if (q.allotment > 0 && q.length > 0) {
          deltas[q.start_step] += q.allotment;
          deltas[q.start_step + q.length] -= q.allotment;
        }
      }
    }
    int held = 0;
    for (const auto& [step, delta] : deltas) {
      held += delta;
      check(issues, held <= processors,
            "machine oversubscribed at step " + std::to_string(step));
    }
  }
  return report;
}

std::vector<std::string> validate_result(const SimResult& result,
                                         int processors) {
  return validate_result_report(result, processors).issues;
}

}  // namespace abg::sim
