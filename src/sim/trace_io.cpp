#include "sim/trace_io.hpp"

#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace abg::sim {

namespace {

constexpr std::string_view kQuantumHeader =
    "index,start_step,request,allotment,available,length,steps_used,work,"
    "cpl,full,finished";

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream ss(line);
  while (std::getline(ss, cell, ',')) {
    cells.push_back(cell);
  }
  return cells;
}

}  // namespace

void write_trace_csv(std::ostream& os, const JobTrace& trace) {
  // Full round-trip precision for the fractional cpl column.
  const auto old_precision = os.precision(
      std::numeric_limits<double>::max_digits10);
  os << kQuantumHeader << '\n';
  for (const auto& q : trace.quanta) {
    os << q.index << ',' << q.start_step << ',' << q.request << ','
       << q.allotment << ',' << q.available << ',' << q.length << ','
       << q.steps_used << ',' << q.work << ',' << q.cpl << ','
       << (q.full ? 1 : 0) << ',' << (q.finished ? 1 : 0) << '\n';
  }
  os.precision(old_precision);
}

JobTrace read_trace_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kQuantumHeader) {
    throw std::invalid_argument("read_trace_csv: missing or wrong header");
  }
  JobTrace trace;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    const auto cells = split_csv_line(line);
    if (cells.size() != 11) {
      throw std::invalid_argument("read_trace_csv: wrong column count");
    }
    try {
      sched::QuantumStats q;
      q.index = std::stoll(cells[0]);
      q.start_step = std::stoll(cells[1]);
      q.request = std::stoi(cells[2]);
      q.allotment = std::stoi(cells[3]);
      q.available = std::stoi(cells[4]);
      q.length = std::stoll(cells[5]);
      q.steps_used = std::stoll(cells[6]);
      q.work = std::stoll(cells[7]);
      q.cpl = std::stod(cells[8]);
      q.full = cells[9] == "1";
      q.finished = cells[10] == "1";
      trace.quanta.push_back(q);
    } catch (const std::exception&) {
      throw std::invalid_argument("read_trace_csv: malformed row: " + line);
    }
  }
  return trace;
}

void write_result_csv(std::ostream& os, const SimResult& result) {
  os << "job,release,completion,response,work,critical_path,waste,quanta\n";
  for (std::size_t j = 0; j < result.jobs.size(); ++j) {
    const JobTrace& t = result.jobs[j];
    os << j << ',' << t.release_step << ',' << t.completion_step << ','
       << (t.finished() ? t.response_time() : -1) << ',' << t.work << ','
       << t.critical_path << ',' << t.total_waste() << ','
       << t.quanta.size() << '\n';
  }
}

}  // namespace abg::sim
