// Trace serialization.
//
// Writes traces and simulation results as CSV for external analysis /
// replotting.  One row per quantum with every recorded field, plus a
// per-job summary form for whole simulations.  Parsing back is supported
// for the quantum CSV so experiment pipelines can round-trip.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace abg::sim {

/// Writes one trace as CSV: header plus one row per quantum with columns
/// index, start_step, request, allotment, available, length, steps_used,
/// work, cpl, full, finished.
void write_trace_csv(std::ostream& os, const JobTrace& trace);

/// Parses a CSV produced by write_trace_csv back into quantum stats.
/// Throws std::invalid_argument on malformed input.  (Job-level fields —
/// T1, T∞, release, completion — are not part of the quantum CSV and are
/// left default.)
JobTrace read_trace_csv(std::istream& is);

/// Writes a whole result as a per-job summary CSV: job, release,
/// completion, response, work, critical_path, waste, quanta.
void write_result_csv(std::ostream& os, const SimResult& result);

}  // namespace abg::sim
