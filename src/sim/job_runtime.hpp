// Per-job runtime state shared by every simulation engine, batched
// structure-of-arrays.
//
// All three engines (single-job, synchronous global quanta, asynchronous
// per-job quanta) track the same per-job bookkeeping: the executable job,
// its private clone of the request-policy prototype, the trace being
// assembled, the feedback desire, admission eligibility and crash/restart
// flags.  The hot per-boundary passes — admission scans, desire
// collection, regime counting, stride planning — touch only a few small
// fields per job, so those live in JobBatch as contiguous lanes (desire,
// allotment, previous_allotment, eligible_step, regime) the engines sweep
// cache-line by cache-line, while the cold per-job state (job pointers,
// policy clones, the growing trace, quantum accumulators) stays in
// JobRuntime, one element per lane slot.
//
// This header is an engine-internal contract (consumed by
// sim/engine_core.hpp); external code interacts with the engines through
// sim/quantum_engine.hpp, sim/simulator.hpp and sim/async_simulator.hpp.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "dag/job.hpp"
#include "sched/quantum_length.hpp"
#include "sched/request_policy.hpp"
#include "sim/simulator.hpp"

namespace abg::sim {

/// Adds `delta` cycles to an accumulator with an overflow check.  Cycle
/// counters sum allotment · steps products; at large P over long quanta
/// (or under a runaway quantum-length policy) they can approach the
/// TaskCount range, and a silent wrap would corrupt waste accounting —
/// fail loudly instead.
inline void add_cycles_checked(dag::TaskCount& acc, dag::TaskCount delta,
                               const char* what) {
  dag::TaskCount out = 0;
  if (__builtin_add_overflow(acc, delta, &out)) {
    throw std::overflow_error(std::string(what) +
                              ": cycle accumulator overflow");
  }
  acc = out;
}

/// allotment · steps with an overflow check, for the same accumulators.
inline dag::TaskCount mul_cycles_checked(dag::TaskCount a, dag::TaskCount b,
                                         const char* what) {
  dag::TaskCount out = 0;
  if (__builtin_mul_overflow(a, b, &out)) {
    throw std::overflow_error(std::string(what) +
                              ": cycle product overflow");
  }
  return out;
}

/// Lifecycle lane of one batch slot.
enum class JobRegime : std::uint8_t {
  /// Submitted but not running: unreleased, queued behind the admission
  /// cap, or awaiting a post-crash restart.
  kQueued = 0,
  /// Admitted and holding a processor allotment.
  kActive = 1,
  /// Finished (or zero-work at submission).
  kDone = 2,
};

/// Cold runtime state of one job inside an engine run.
///
/// The job and request policy are working pointers: engines that own their
/// jobs (the multiprogrammed simulators, which take submissions by value)
/// keep the owning unique_ptr alongside, while run_single_job borrows the
/// caller's objects.  A restart-from-scratch crash recovery always moves to
/// an owned fresh clone, so a borrowed original is left as-is (partially
/// executed) and the restarted run continues on engine-owned state.
struct JobRuntime {
  dag::Job* job = nullptr;
  std::unique_ptr<dag::Job> owned_job;
  sched::RequestPolicy* request = nullptr;
  std::unique_ptr<sched::RequestPolicy> owned_request;
  /// Per-job clone of the run's quantum-length policy (asynchronous engine
  /// only — each job has its own boundary schedule, hence its own policy
  /// state).  Null when the run uses a fixed quantum length.
  std::unique_ptr<sched::QuantumLengthPolicy> quantum_policy;
  JobTrace trace;
  /// 1-based index of the quantum in flight (or last completed).
  std::int64_t local_quantum = 0;
  /// A checkpoint-crashed job with preserved policy state resumes with
  /// its last desire instead of first_request() on re-admission.
  bool resumed = false;

  // Current-quantum accumulators (asynchronous engine: quanta are counted
  // from the job's own admission and executed in unit steps or planned
  // strides).
  /// Length of the in-flight quantum (the run's fixed L, or the per-job
  /// quantum-length policy's current choice).
  dag::Steps quantum_target = 0;
  dag::Steps quantum_elapsed = 0;
  dag::Steps quantum_start = 0;
  dag::TaskCount work_before = 0;
  double progress_before = 0.0;
  dag::TaskCount held_cycles = 0;  // Σ allotment over quantum steps
  dag::TaskCount idle_cycles = 0;  // Σ (allotment − executed) per step
  dag::Steps idle_steps = 0;
  /// Outstanding migration steps: while positive, the job holds its
  /// allotment but executes no work (the asynchronous realization of the
  /// reallocation penalty; see engine_core.hpp).
  dag::Steps migration_debt = 0;

  /// Replaces the job with a fresh clone (restart-from-scratch recovery).
  /// The replacement is always engine-owned, whether or not the original
  /// was.
  void restart_from_scratch() {
    owned_job = job->fresh_clone();
    job = owned_job.get();
  }
};

/// One quantum record awaiting its flush into the owning job's trace.
struct PendingQuantum {
  std::uint32_t job = 0;
  sched::QuantumStats stats;
};

/// Structure-of-arrays batch of job runtime states.  Lane i and jobs[i]
/// describe the same submission; lanes are kept in lockstep by append().
struct JobBatch {
  /// Current feedback desire d(q) (valid while kActive or resumed).
  std::vector<int> desire;
  /// Current allotment (asynchronous engine: held between repartitions).
  std::vector<int> allotment;
  /// Allotment of the previous quantum (or repartition), for reallocation-
  /// penalty charging; 0 after (re-)admission so the initial placement is
  /// charged too.
  std::vector<int> previous_allotment;
  /// Step from which the job may be (re-)admitted: the release step, or
  /// after a crash the end of the crash quantum plus the restart delay.
  std::vector<dag::Steps> eligible_step;
  std::vector<JobRegime> regime;
  std::vector<JobRuntime> jobs;

  std::size_t size() const { return jobs.size(); }
  bool empty() const { return jobs.empty(); }
  bool active(std::size_t i) const { return regime[i] == JobRegime::kActive; }
  bool done(std::size_t i) const { return regime[i] == JobRegime::kDone; }

  /// Appends one slot with default lanes (desire 1, no allotment,
  /// eligible at step 0, queued) and returns its index.
  std::size_t append(JobRuntime runtime) {
    jobs.push_back(std::move(runtime));
    desire.push_back(1);
    allotment.push_back(0);
    previous_allotment.push_back(0);
    eligible_step.push_back(0);
    regime.push_back(JobRegime::kQueued);
    return jobs.size() - 1;
  }

  std::size_t active_count() const {
    std::size_t count = 0;
    for (const JobRegime r : regime) {
      count += r == JobRegime::kActive ? 1u : 0u;
    }
    return count;
  }

  /// FCFS admission candidate: the queued job with the lowest eligible
  /// step (ties by submission order), or size() when none is eligible.
  /// Candidates are scanned in submission order; releases are not
  /// required to be sorted.
  std::size_t next_admission(dag::Steps now) const {
    std::size_t best = size();
    for (std::size_t i = 0; i < size(); ++i) {
      if (regime[i] != JobRegime::kQueued || eligible_step[i] > now) {
        continue;
      }
      if (best == size() || eligible_step[i] < eligible_step[best]) {
        best = i;
      }
    }
    return best;
  }

  /// Earliest step at which any unfinished job becomes eligible, for the
  /// idle fast-path; `bound` when none exists.
  dag::Steps next_eligible_step(dag::Steps bound) const {
    dag::Steps next_release = bound;
    for (std::size_t i = 0; i < size(); ++i) {
      if (regime[i] != JobRegime::kDone) {
        next_release = std::min(next_release, eligible_step[i]);
      }
    }
    return next_release;
  }

  // Batched trace appends.  The engine hot loops append one QuantumStats
  // per job per boundary into per-job trace vectors — a scattered write
  // pattern on wide batches.  stage_quantum() buffers the records in one
  // contiguous pending lane instead; flush_quanta() distributes them in
  // staging order, so a trace is byte-identical to one built by direct
  // push_back (the golden fixtures pin this).  Engines flush at epoch
  // boundaries: when the buffer reaches kFlushCapacity, before any code
  // path that reads or clears a trace mid-run (crash recovery), and at
  // aggregation.
  std::vector<PendingQuantum> pending;
  static constexpr std::size_t kFlushCapacity = 4096;

  /// Buffers one quantum record for job `i`; returns its slot for
  /// staged()/staged_mutable() reads until the next flush.
  std::size_t stage_quantum(std::size_t i,
                            const sched::QuantumStats& stats) {
    pending.push_back(PendingQuantum{static_cast<std::uint32_t>(i), stats});
    return pending.size() - 1;
  }

  const sched::QuantumStats& staged(std::size_t slot) const {
    return pending[slot].stats;
  }
  sched::QuantumStats& staged_mutable(std::size_t slot) {
    return pending[slot].stats;
  }

  /// Moves every pending record into its job's trace, in staging order.
  void flush_quanta() {
    for (const PendingQuantum& p : pending) {
      jobs[p.job].trace.quanta.push_back(p.stats);
    }
    pending.clear();
  }

  void maybe_flush() {
    if (pending.size() >= kFlushCapacity) {
      flush_quanta();
    }
  }
};

/// Totals accumulated while ingesting submissions, needed by the engines'
/// safety-bound formulas and completion tracking.
struct IntakeTotals {
  dag::TaskCount total_work = 0;
  dag::Steps latest_release = 0;
  /// Number of jobs not already finished at submission (zero-work jobs
  /// complete at their release step without entering the engine loop).
  std::size_t remaining = 0;
};

/// Validates and ingests a submission list into a runtime batch: each job
/// gets its own reset clone of the request prototype, its trace seeded with
/// release/work/critical-path, and zero-work jobs are marked done at their
/// release step.  Throws std::invalid_argument (prefixed with `context`)
/// on a null job or negative release step, matching the engines' historic
/// messages.
JobBatch intake_submissions(std::vector<JobSubmission> submissions,
                            const sched::RequestPolicy& request_prototype,
                            const char* context, IntakeTotals& totals);

}  // namespace abg::sim
