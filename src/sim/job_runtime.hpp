// Per-job runtime state shared by every simulation engine.
//
// All three engines (single-job, synchronous global quanta, asynchronous
// per-job quanta) track the same per-job bookkeeping: the executable job,
// its private clone of the request-policy prototype, the trace being
// assembled, the feedback desire, admission eligibility and crash/restart
// flags.  JobRuntime is the union of that state; fields used by only one
// boundary model are documented as such and cost nothing when unused.
//
// This header is an engine-internal contract (consumed by
// sim/engine_core.hpp); external code interacts with the engines through
// sim/quantum_engine.hpp, sim/simulator.hpp and sim/async_simulator.hpp.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dag/job.hpp"
#include "sched/quantum_length.hpp"
#include "sched/request_policy.hpp"
#include "sim/simulator.hpp"

namespace abg::sim {

/// Runtime state of one job inside an engine run.
///
/// The job and request policy are working pointers: engines that own their
/// jobs (the multiprogrammed simulators, which take submissions by value)
/// keep the owning unique_ptr alongside, while run_single_job borrows the
/// caller's objects.  A restart-from-scratch crash recovery always moves to
/// an owned fresh clone, so a borrowed original is left as-is (partially
/// executed) and the restarted run continues on engine-owned state.
struct JobRuntime {
  dag::Job* job = nullptr;
  std::unique_ptr<dag::Job> owned_job;
  sched::RequestPolicy* request = nullptr;
  std::unique_ptr<sched::RequestPolicy> owned_request;
  /// Per-job clone of the run's quantum-length policy (asynchronous engine
  /// only — each job has its own boundary schedule, hence its own policy
  /// state).  Null when the run uses a fixed quantum length.
  std::unique_ptr<sched::QuantumLengthPolicy> quantum_policy;
  JobTrace trace;
  int desire = 1;
  /// Allotment of the previous quantum (or repartition), for reallocation-
  /// penalty charging; 0 after (re-)admission so the initial placement is
  /// charged too.
  int previous_allotment = 0;
  /// Current allotment (asynchronous engine: held between repartitions).
  int allotment = 0;
  /// 1-based index of the quantum in flight (or last completed).
  std::int64_t local_quantum = 0;
  /// Step from which the job may be (re-)admitted: the release step, or
  /// after a crash the end of the crash quantum plus the restart delay.
  dag::Steps eligible_step = 0;
  /// A checkpoint-crashed job with preserved policy state resumes with
  /// its last desire instead of first_request() on re-admission.
  bool resumed = false;
  bool active = false;
  bool done = false;

  // Current-quantum accumulators (asynchronous engine: quanta are counted
  // from the job's own admission and executed in unit steps).
  /// Length of the in-flight quantum (the run's fixed L, or the per-job
  /// quantum-length policy's current choice).
  dag::Steps quantum_target = 0;
  dag::Steps quantum_elapsed = 0;
  dag::Steps quantum_start = 0;
  dag::TaskCount work_before = 0;
  double progress_before = 0.0;
  dag::TaskCount held_cycles = 0;  // Σ allotment over quantum steps
  dag::TaskCount idle_cycles = 0;  // Σ (allotment − executed) per step
  dag::Steps idle_steps = 0;
  /// Outstanding migration steps: while positive, the job holds its
  /// allotment but executes no work (the asynchronous realization of the
  /// reallocation penalty; see engine_core.hpp).
  dag::Steps migration_debt = 0;

  /// Replaces the job with a fresh clone (restart-from-scratch recovery).
  /// The replacement is always engine-owned, whether or not the original
  /// was.
  void restart_from_scratch() {
    owned_job = job->fresh_clone();
    job = owned_job.get();
  }
};

/// Totals accumulated while ingesting submissions, needed by the engines'
/// safety-bound formulas and completion tracking.
struct IntakeTotals {
  dag::TaskCount total_work = 0;
  dag::Steps latest_release = 0;
  /// Number of jobs not already finished at submission (zero-work jobs
  /// complete at their release step without entering the engine loop).
  std::size_t remaining = 0;
};

/// Validates and ingests a submission list into runtime states: each job
/// gets its own reset clone of the request prototype, its trace seeded with
/// release/work/critical-path, and zero-work jobs are marked done at their
/// release step.  Throws std::invalid_argument (prefixed with `context`)
/// on a null job or negative release step, matching the engines' historic
/// messages.
std::vector<JobRuntime> intake_submissions(
    std::vector<JobSubmission> submissions,
    const sched::RequestPolicy& request_prototype, const char* context,
    IntakeTotals& totals);

}  // namespace abg::sim
