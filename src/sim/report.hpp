// Human-readable schedule reports.
//
// Turns traces into the artifacts one actually inspects when debugging a
// scheduler: per-quantum ASCII sparklines of requests / allotments /
// measured parallelism for a single job, and the machine-utilization
// timeline of a whole simulation (fraction of P assigned per global
// quantum, reconstructed from the quanta's global start steps).
#pragma once

#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace abg::sim {

/// Scales `values` into an ASCII sparkline (one character per sample,
/// ' ' for 0 up to '@' for the maximum).  Empty input gives an empty
/// string.
std::string sparkline(const std::vector<double>& values);

/// Three-row sparkline report of a job's feedback loop: measured
/// parallelism A(q), request d(q), allotment a(q).
std::string feedback_report(const JobTrace& trace);

/// Fraction of the machine assigned per global quantum over the whole
/// simulation, index 0 = the quantum starting at step 0.  Quanta with no
/// active job contribute 0.  Requires processors >= 1 and a uniform
/// quantum length across the result.
std::vector<double> machine_utilization_series(const SimResult& result,
                                               int processors);

/// Aggregate machine utilization: total completed work divided by
/// makespan * P (1.0 = every processor busy until the last completion).
double machine_utilization(const SimResult& result, int processors);

/// ASCII Gantt chart of a whole simulation: one row per job, one column
/// per global quantum, cell intensity = the job's share of the machine in
/// that quantum (' ' idle/inactive up to '@' = the whole machine).  Rows
/// are labelled "job N |".  Requires uniform quantum lengths and
/// processors >= 1.
std::string gantt_chart(const SimResult& result, int processors);

/// Resilience summary of a faulty run against its fault-free reference:
/// disturbance counts, the lost-work accounting balance, makespan
/// degradation, and per-disturbance recovery of the aggregate request
/// signal (see fault/resilience.hpp for the underlying analysis).
std::string resilience_report(const SimResult& faulty,
                              const SimResult& reference);

}  // namespace abg::sim
