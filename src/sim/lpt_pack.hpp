// Size-aware shard→worker submission order.
//
// The sharded and cluster drivers advance their shards (groups, machines)
// between barriers on a fixed FIFO thread pool.  Submitting shards in
// index order lets a long shard land last and stretch the barrier by its
// full epoch; submitting longest-first (LPT list scheduling, with the
// shard's active-job count as the size estimate) starts the stragglers
// while the short shards pack around them.  The order only changes *when*
// a shard's task starts — every shard still runs exactly once per epoch
// against its own state — so results stay byte-identical at any thread
// count and to the index-order schedule (the golden fixtures pin this).
#pragma once

#include <cstddef>
#include <vector>

namespace abg::sim {

/// Returns the indices of `weights` ordered largest weight first, ties by
/// ascending index.  Deterministic for equal inputs.
std::vector<std::size_t> lpt_order(const std::vector<std::size_t>& weights);

}  // namespace abg::sim
