#include "sim/trace.hpp"

#include <stdexcept>

namespace abg::sim {

dag::Steps JobTrace::response_time() const {
  if (!finished()) {
    throw std::logic_error("JobTrace::response_time: job did not finish");
  }
  return completion_step - release_step;
}

dag::TaskCount JobTrace::total_waste() const {
  dag::TaskCount waste = 0;
  for (const auto& q : quanta) {
    waste += q.waste();
  }
  return waste;
}

dag::TaskCount JobTrace::total_allotted() const {
  dag::TaskCount cycles = 0;
  for (const auto& q : quanta) {
    cycles += static_cast<dag::TaskCount>(q.allotment) *
              static_cast<dag::TaskCount>(q.length);
  }
  return cycles;
}

std::vector<double> JobTrace::request_series() const {
  std::vector<double> out;
  out.reserve(quanta.size());
  for (const auto& q : quanta) {
    out.push_back(static_cast<double>(q.request));
  }
  return out;
}

std::vector<double> JobTrace::parallelism_series() const {
  std::vector<double> out;
  out.reserve(quanta.size());
  for (const auto& q : quanta) {
    out.push_back(q.average_parallelism());
  }
  return out;
}

std::vector<int> JobTrace::allotment_series() const {
  std::vector<int> out;
  out.reserve(quanta.size());
  for (const auto& q : quanta) {
    out.push_back(q.allotment);
  }
  return out;
}

std::vector<int> JobTrace::availability_series() const {
  std::vector<int> out;
  out.reserve(quanta.size());
  for (const auto& q : quanta) {
    out.push_back(q.available);
  }
  return out;
}

}  // namespace abg::sim
