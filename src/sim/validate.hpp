// Trace and result consistency checking.
//
// A JobTrace encodes many redundant facts (per-quantum work vs allotment,
// step accounting, completion bookkeeping, the greedy efficiency
// relations); validate_trace cross-checks them all and returns a list of
// human-readable violations.  The integration tests run every produced
// trace through it, and simulation users can do the same to catch
// scheduler bugs early.
#pragma once

#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace abg::sim {

/// Returns all internal inconsistencies of the trace (empty = valid).
/// Checks: sequential quantum indexes, allotment within [0, request],
/// work within the allotment's capacity, fractional cpl within
/// [0, length], step accounting, the finished flag appearing exactly on
/// the final quantum, totals matching the job's T1 / T∞ when finished,
/// availability >= allotment, and non-negative waste.
std::vector<std::string> validate_trace(const JobTrace& trace);

/// Validates every job trace of a result plus the aggregates: makespan is
/// the max completion, mean response time is the mean of per-job response
/// times, total waste is the sum, and — when quantum lengths are uniform —
/// no global quantum oversubscribes the machine.
std::vector<std::string> validate_result(const SimResult& result,
                                         int processors);

}  // namespace abg::sim
