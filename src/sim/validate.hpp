// Trace and result consistency checking.
//
// A JobTrace encodes many redundant facts (per-quantum work vs allotment,
// step accounting, completion bookkeeping, the greedy efficiency
// relations); validate_trace cross-checks them all and returns a list of
// human-readable violations.  The integration tests run every produced
// trace through it, and simulation users can do the same to catch
// scheduler bugs early.
#pragma once

#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace abg::sim {

/// Returns all internal inconsistencies of the trace (empty = valid).
/// Checks: sequential quantum indexes, allotment within [0, request],
/// work within the allotment's capacity, fractional cpl within
/// [0, length], step accounting, the finished flag appearing exactly on
/// the final quantum, totals matching the job's T1 / T∞ when finished,
/// availability >= allotment, and non-negative waste.
std::vector<std::string> validate_trace(const JobTrace& trace);

/// Outcome of validating a SimResult.  `issues` are hard inconsistencies
/// (empty = valid); `notes` are advisory — checks that could not run on
/// this result and why (e.g. the instantaneous machine-capacity sweep is
/// skipped when allotments are rounded time averages).  Notes never make
/// a result invalid.
struct ValidationReport {
  std::vector<std::string> issues;
  std::vector<std::string> notes;

  bool valid() const { return issues.empty(); }
};

/// Validates every job trace of a result plus the aggregates: makespan is
/// the max completion, mean response time is the mean of per-job response
/// times, total waste is the sum, and no instant oversubscribes the
/// machine.  The capacity sweep degrades to a note for results with
/// `averaged_allotments` set (the asynchronous engine), where sums of
/// per-window averages can legitimately exceed P.
ValidationReport validate_result_report(const SimResult& result,
                                        int processors);

/// The issues of validate_result_report (empty = valid), for callers that
/// do not care about advisory notes.
std::vector<std::string> validate_result(const SimResult& result,
                                         int processors);

}  // namespace abg::sim
