#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/engine_core.hpp"
#include "sim/job_runtime.hpp"

namespace abg::sim {

SimResult simulate_job_set(std::vector<JobSubmission> submissions,
                           const sched::ExecutionPolicy& execution,
                           const sched::RequestPolicy& request_prototype,
                           alloc::Allocator& allocator,
                           const SimConfig& config) {
  if (config.processors < 1) {
    throw std::invalid_argument("simulate_job_set: processors must be >= 1");
  }
  if (config.quantum_length < 1) {
    throw std::invalid_argument(
        "simulate_job_set: quantum length must be >= 1");
  }
  allocator.reset();

  IntakeTotals totals;
  JobBatch batch = intake_submissions(std::move(submissions),
                                      request_prototype, "simulate_job_set",
                                      totals);

  // With a quantum-length policy the first boundary is the policy's
  // choice and the derived safety bound is widened to the larger of the
  // two lengths; without one this resolves to config.quantum_length and
  // the arithmetic below is the historic formula, bit for bit.
  dag::Steps initial_length = config.quantum_length;
  if (config.quantum_length_policy != nullptr) {
    config.quantum_length_policy->reset();
    initial_length = config.quantum_length_policy->initial_length();
    if (initial_length < 1) {
      throw std::logic_error(
          "simulate_job_set: quantum-length policy returned length < 1");
    }
  }
  const dag::Steps bound_length =
      std::max(config.quantum_length, initial_length);
  dag::Steps max_steps =
      config.max_steps > 0
          ? config.max_steps
          : totals.latest_release + 8 * totals.total_work + 64 * bound_length;
  const bool faulty = config.faults != nullptr && !config.faults->empty();
  if (faulty && config.max_steps == 0) {
    max_steps +=
        fault_bound_slack(*config.faults, totals.total_work, bound_length);
  }

  CoreConfig core;
  core.context = "simulate_job_set";
  core.processors = config.processors;
  core.quantum_length = initial_length;
  core.max_steps = max_steps;
  core.max_active = config.max_active_jobs > 0
                        ? static_cast<std::size_t>(config.max_active_jobs)
                        : static_cast<std::size_t>(config.processors);
  core.reallocation_cost_per_proc = config.reallocation_cost_per_proc;
  core.faults = config.faults;
  core.quantum_length_policy = config.quantum_length_policy;
  core.stall_reason = "scheduling is not making progress";
  core.bus = config.obs.event_bus;
  core.cancel = config.cancel;
  return run_global_quanta(batch, totals, execution, allocator, core);
}

}  // namespace abg::sim
